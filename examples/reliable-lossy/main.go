// reliable-lossy: the §2.3 premise in action — "the underlying network
// is not reliable, and therefore mechanisms for detecting or tolerating
// transmission errors are already in place". Cells are dropped in the
// network; the board's AAL5 framing checks discard damaged PDUs, UDP
// loses those messages outright, and the RDP transport (the same
// x-kernel graph, a different protocol — §1's protocol independence)
// retransmits until everything arrives.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xkernel"
)

const (
	messages = 15
	msgBytes = 3000
	lossRate = 0.01 // 1% of cells vanish A→B
)

func transfer(protoName string) (delivered, intact int, retx int64, took time.Duration) {
	tb := core.NewTestbed(core.Options{
		Profile: hostsim.DEC3000_600(),
		Driver:  driver.Config{Cache: driver.CacheNone},
		Link:    atm.LinkConfig{LossRate: lossRate},
		Seed:    7,
	})
	defer tb.Shutdown()

	var tx, rx xkernel.Session
	var err error
	switch protoName {
	case "udp":
		tx, err = tb.A.UDP.Open(proto.UDPOpen{Remote: 2, VCI: 60, SrcPort: 1, DstPort: 2, Checksum: true})
		if err == nil {
			rx, err = tb.B.UDP.Open(proto.UDPOpen{Remote: 1, VCI: 60, SrcPort: 2, DstPort: 1, Checksum: true})
		}
	case "rdp":
		tx, err = tb.A.RDP.Open(proto.RDPOpen{Remote: 2, VCI: 60, Window: 4})
		if err == nil {
			rx, err = tb.B.RDP.Open(proto.RDPOpen{Remote: 1, VCI: 60, Window: 4})
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	expected := make([][]byte, messages)
	for i := range expected {
		expected[i] = workload.Payload(msgBytes, byte(i))
	}
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		delivered++
		for _, want := range expected {
			if bytes.Equal(b, want) {
				intact++
				return
			}
		}
	})
	var start, end sim.Time
	tb.Eng.Go("sender", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < messages; i++ {
			m, err := msg.FromBytes(tb.A.Host.Kernel, workload.Payload(msgBytes, byte(i)))
			if err != nil {
				log.Fatal(err)
			}
			if err := tx.Push(p, m); err != nil {
				log.Fatal(err)
			}
			if protoName == "udp" {
				tb.A.Drv.Flush(p)
			}
		}
		if w, ok := tx.(proto.WaitAckedSession); ok {
			w.WaitAcked(p)
		}
		end = p.Now()
	})
	tb.Eng.RunUntil(tb.Eng.Now().Add(2 * time.Second))
	return delivered, intact, tb.A.RDP.Stats().Retransmits, time.Duration(end - start)
}

func main() {
	fmt.Printf("%d × %d-byte messages across links losing %.1f%% of cells:\n\n",
		messages, msgBytes, lossRate*100)

	d, i, _, took := transfer("udp")
	fmt.Printf("UDP/IP (checksum on):\n")
	fmt.Printf("  delivered %d/%d (%d intact) in %v — losses are silent\n\n", d, messages, i, took)

	d, i, retx, took := transfer("rdp")
	fmt.Printf("RDP (go-back-N over the same IP, same driver, same VCI machinery):\n")
	fmt.Printf("  delivered %d/%d (%d intact) in %v with %d retransmissions\n", d, messages, i, took, retx)
	fmt.Printf("\nThe x-kernel graph is protocol-independent (§1): swapping the\n")
	fmt.Printf("transport changed reliability semantics without touching the\n")
	fmt.Printf("driver, the board firmware, or the VCI path binding.\n")
}
