// Quickstart: build the two-host OSIRIS testbed, send a message from a
// test program on host A to one on host B over the UDP/IP stack and the
// four striped 155 Mbps links, and verify it arrives intact.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// A testbed is two simulated DEC 3000/600s with OSIRIS boards linked
	// back to back.
	tb := core.NewTestbed(core.Options{
		Profile: hostsim.DEC3000_600(),
		Driver:  driver.Config{Cache: driver.CacheNone},
	})
	defer tb.Shutdown()

	// Open a UDP session on each side of the same VCI — the x-kernel
	// binds one VCI per connection path.
	const vci = 42
	send, err := tb.A.UDP.Open(proto.UDPOpen{Remote: 2, VCI: vci, SrcPort: 7, DstPort: 7, Checksum: true})
	if err != nil {
		log.Fatal(err)
	}
	recv, err := tb.B.UDP.Open(proto.UDPOpen{Remote: 1, VCI: vci, SrcPort: 7, DstPort: 7, Checksum: true})
	if err != nil {
		log.Fatal(err)
	}

	payload := workload.Payload(40_000, 1) // > one MTU: IP fragments it
	var delivered []byte
	var deliveredAt sim.Time
	recv.SetHandler(func(p *sim.Proc, m *msg.Message) {
		delivered, _ = m.Bytes()
		deliveredAt = p.Now()
	})

	// Test programs are simulated processes; everything below runs on
	// the virtual clock.
	tb.Eng.Go("sender", func(p *sim.Proc) {
		m, err := msg.FromBytes(tb.A.Host.Kernel, payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sending %d bytes at t=%v\n", m.Len(), time.Duration(p.Now()))
		if err := send.Push(p, m); err != nil {
			log.Fatal(err)
		}
		tb.A.Drv.Flush(p) // wait for transmit completion (tail advance)
	})
	tb.Eng.Run()

	if !bytes.Equal(delivered, payload) {
		log.Fatalf("delivery failed: got %d bytes", len(delivered))
	}
	fmt.Printf("delivered %d bytes intact at t=%v\n", len(delivered), time.Duration(deliveredAt))
	fmt.Printf("IP fragments: %d sent, %d received; cells on the wire: %d\n",
		tb.A.IP.Stats().FragsSent, tb.B.IP.Stats().FragsRecv, tb.A.Board.Stats().CellsTx)
	fmt.Printf("receive interrupts on B: %d (one per burst, not one per PDU)\n",
		tb.B.Board.Stats().RxIRQs)
}
