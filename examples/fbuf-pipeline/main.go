// fbuf-pipeline: the §3.1 microkernel scenario — network data crossing
// three protection domains (device driver → multiplexing server →
// multimedia application). With early demultiplexing, the driver places
// each incoming PDU in a *cached* fbuf already mapped along the path;
// the comparison shows the order-of-magnitude gap to uncached fbufs and
// to a traditional copy.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fbuf"
	"repro/internal/hostsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	frameBytes = 32 * 1024 // one video frame
	frames     = 64
	hotVCI     = 7
)

func main() {
	e := sim.NewEngine(1)
	h := hostsim.New(e, hostsim.DEC5000_200(), 8192)
	mgr := fbuf.NewManager(h, 0)

	drv := fbuf.NewDomain(h, "driver")
	srv := fbuf.NewDomain(h, "av-server")
	app := fbuf.NewDomain(h, "player")
	chain := []*fbuf.Domain{drv, srv, app}

	run := func(name string, deliver func(p *sim.Proc, data []byte) error) time.Duration {
		var elapsed time.Duration
		e.Go(name, func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < frames; i++ {
				if err := deliver(p, workload.Payload(frameBytes, byte(i))); err != nil {
					log.Fatal(err)
				}
			}
			elapsed = time.Duration(p.Now() - start)
		})
		e.Run()
		return elapsed
	}

	// Connection setup: preallocate the hot path's cached fbufs (this is
	// the one-time cost early demultiplexing amortizes away).
	e.Go("setup", func(p *sim.Proc) {
		if err := mgr.DefinePath(p, hotVCI, chain, 4, frameBytes); err != nil {
			log.Fatal(err)
		}
	})
	e.Run()

	cached := run("cached", func(p *sim.Proc, data []byte) error {
		f, err := mgr.Alloc(p, hotVCI, drv, frameBytes)
		if err != nil {
			return err
		}
		if err := f.Write(drv, 0, data); err != nil {
			return err
		}
		if err := f.Transfer(p, drv, srv); err != nil {
			return err
		}
		if err := f.Transfer(p, srv, app); err != nil {
			return err
		}
		if _, err := f.Read(app, 0, 16); err != nil {
			return err
		}
		mgr.Free(f)
		return nil
	})

	uncached := run("uncached", func(p *sim.Proc, data []byte) error {
		// A cold VCI: no preallocated pool, so every frame pays the
		// per-page mapping cost twice.
		f, err := mgr.AllocUncached(p, drv, frameBytes)
		if err != nil {
			return err
		}
		if err := f.Write(drv, 0, data); err != nil {
			return err
		}
		if err := f.Transfer(p, drv, srv); err != nil {
			return err
		}
		if err := f.Transfer(p, srv, app); err != nil {
			return err
		}
		return nil // uncached fbufs are not pooled per path
	})

	pages := frameBytes / h.Mem.PageSize()
	copied := run("copy", func(p *sim.Proc, data []byte) error {
		mgr.CopyTransfer(p, pages) // driver → server
		mgr.CopyTransfer(p, pages) // server → app
		return nil
	})
	e.Shutdown()

	perFrame := func(d time.Duration) float64 { return d.Seconds() * 1e6 / frames }
	mbps := func(d time.Duration) float64 {
		return float64(frames*frameBytes) * 8 / d.Seconds() / 1e6
	}
	fmt.Printf("3-domain delivery of %d × %d KB frames (DEC 5000/200 model):\n", frames, frameBytes/1024)
	fmt.Printf("  cached fbufs:    %8.1f µs/frame  (%7.1f Mbps)\n", perFrame(cached), mbps(cached))
	fmt.Printf("  uncached fbufs:  %8.1f µs/frame  (%7.1f Mbps)\n", perFrame(uncached), mbps(uncached))
	fmt.Printf("  copying:         %8.1f µs/frame  (%7.1f Mbps)\n", perFrame(copied), mbps(copied))
	fmt.Printf("\ncached vs uncached: %.1fx — \"an order of magnitude difference\" (§3.1)\n",
		float64(uncached)/float64(cached))
	s := mgr.Stats()
	fmt.Printf("manager: %d cached transfers, %d uncached, %d pages mapped on the data path\n",
		s.CachedTransfers, s.UncachedTransfers, s.PagesMapped)
}
