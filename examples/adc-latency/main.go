// adc-latency: the §3.2/§4 headline — user-to-user messaging through an
// application device channel costs the same as kernel-to-kernel
// messaging, because the ADC removes the kernel from both the control
// and the data path. For contrast, the same user-to-user exchange routed
// through the kernel (traps plus a cross-domain copy each way) is also
// measured.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/adc"
	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/workload"
)

const msgBytes = 1024

// rig builds two hosts linked both ways and returns the engine + hosts
// + boards.
func rig() (*sim.Engine, [2]*hostsim.Host, [2]*board.Board) {
	e := sim.NewEngine(3)
	var hs [2]*hostsim.Host
	var bs [2]*board.Board
	for i := range hs {
		hs[i] = hostsim.New(e, hostsim.DEC3000_600(), 4096)
		bs[i] = board.New(e, hs[i], board.Config{Name: fmt.Sprintf("b%d", i)})
	}
	wire := func(from, to int) {
		g := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
		links := make([]*atm.Link, g.Width())
		for i := range links {
			links[i] = g.Link(i)
		}
		bs[from].AttachTxLinks(links)
		bs[to].AttachRxLinks(g)
	}
	wire(0, 1)
	wire(1, 0)
	return e, hs, bs
}

// pingPong measures the RTT of one round trip given each side's driver,
// transmit buffer, and an extra per-hop cost models (crossings).
func pingPong(e *sim.Engine, drv [2]*driver.Driver, space [2]*mem.AddressSpace,
	txVA [2]mem.VirtAddr, hs [2]*hostsim.Host, perHop time.Duration) time.Duration {
	data := workload.Payload(msgBytes, 9)
	done := sim.NewCond(e)
	replied := false
	var ptB *driver.Path
	drv[1].OpenPath(50, func(p *sim.Proc, m *msg.Message) {
		if perHop > 0 {
			hs[1].Compute(p, perHop) // kernel→user delivery crossing
		}
		b, _ := m.Bytes()
		if perHop > 0 {
			hs[1].Compute(p, perHop) // user→kernel send crossing
		}
		space[1].WriteVirt(txVA[1], b)
		reply := msg.New(msg.Fragment{Space: space[1], VA: txVA[1], Len: len(b)})
		drv[1].Send(p, ptB, reply, nil)
	})
	ptB = drv[1].OpenPath(51, nil)
	drv[0].OpenPath(51, func(p *sim.Proc, m *msg.Message) {
		if perHop > 0 {
			hs[0].Compute(p, perHop)
		}
		replied = true
		done.Broadcast()
	})
	ptA := drv[0].OpenPath(50, nil)
	var rtt time.Duration
	e.Go("pinger", func(p *sim.Proc) {
		if perHop > 0 {
			hs[0].Compute(p, perHop) // user→kernel send crossing
		}
		space[0].WriteVirt(txVA[0], data)
		m := msg.New(msg.Fragment{Space: space[0], VA: txVA[0], Len: len(data)})
		start := p.Now()
		if err := drv[0].Send(p, ptA, m, nil); err != nil {
			log.Fatal(err)
		}
		for !replied {
			done.Wait(p)
		}
		rtt = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	return rtt
}

func main() {
	// 1. Kernel-to-kernel: test programs linked into the kernel.
	e, hs, bs := rig()
	var drv [2]*driver.Driver
	var space [2]*mem.AddressSpace
	var tx [2]mem.VirtAddr
	for i := range drv {
		drv[i] = driver.New(e, hs[i], bs[i], driver.Config{Cache: driver.CacheNone})
		space[i] = hs[i].Kernel
		va, err := space[i].Alloc(msgBytes)
		if err != nil {
			log.Fatal(err)
		}
		tx[i] = va
	}
	e.RunUntil(e.Now().Add(10 * time.Millisecond)) // let driver init settle
	kernel := pingPong(e, drv, space, tx, hs, 0)

	// 2. User-to-user through ADCs: applications drive the adaptor
	// directly from their own domains.
	e2, hs2, bs2 := rig()
	var drv2 [2]*driver.Driver
	var space2 [2]*mem.AddressSpace
	var tx2 [2]mem.VirtAddr
	setup := sim.NewCond(e2)
	ready := false
	e2.Go("os-setup", func(p *sim.Proc) {
		for i := range drv2 {
			app := adc.NewAppDomain(hs2[i], fmt.Sprintf("app%d", i))
			mgr := adc.NewManager(hs2[i], bs2[i])
			a, err := mgr.Open(p, app, []atm.VCI{50, 51}, adc.Config{})
			if err != nil {
				log.Fatal(err)
			}
			drv2[i] = a.Driver()
			space2[i] = app.Space
			va, _, err := a.TxBuffer(0)
			if err != nil {
				log.Fatal(err)
			}
			tx2[i] = va
		}
		ready = true
		setup.Broadcast()
	})
	e2.RunUntil(e2.Now().Add(10 * time.Millisecond))
	if !ready {
		log.Fatal("ADC setup did not finish")
	}
	user := pingPong(e2, drv2, space2, tx2, hs2, 0)

	// 3. User-to-user through the kernel: every message pays traps and a
	// cross-domain data copy on each side.
	e3, hs3, bs3 := rig()
	var drv3 [2]*driver.Driver
	var space3 [2]*mem.AddressSpace
	var tx3 [2]mem.VirtAddr
	for i := range drv3 {
		drv3[i] = driver.New(e3, hs3[i], bs3[i], driver.Config{Cache: driver.CacheNone})
		space3[i] = hs3[i].Kernel
		va, err := space3[i].Alloc(msgBytes)
		if err != nil {
			log.Fatal(err)
		}
		tx3[i] = va
	}
	e3.RunUntil(e3.Now().Add(10 * time.Millisecond))
	prof := hs3[0].Prof
	perHop := prof.SyscallCost + prof.CopyPerPage // trap + one-page copy
	viaKernel := pingPong(e3, drv3, space3, tx3, hs3, perHop)

	fmt.Printf("1 KB round-trip latency on the DEC 3000/600 model:\n")
	fmt.Printf("  kernel-to-kernel:            %8.1f µs\n", kernel.Seconds()*1e6)
	fmt.Printf("  user-to-user via ADC:        %8.1f µs\n", user.Seconds()*1e6)
	fmt.Printf("  user-to-user via kernel:     %8.1f µs\n", viaKernel.Seconds()*1e6)
	diff := user - kernel
	if diff < 0 {
		diff = -diff
	}
	fmt.Printf("\nADC vs kernel difference: %.1f µs (%.1f%%) — \"within the error margins\" (§4)\n",
		diff.Seconds()*1e6, 100*float64(diff)/float64(kernel))
}
