// fanin-server: eight clients hammer one server through a VCI-routed
// cell switch — the N-node generalization of the paper's back-to-back
// apparatus. Each client gets its own VCI (the §3.1 early-demux key,
// which is also exactly what the switch routes on), so the server's
// board runs one AAL5 reassembly per client concurrently as the flows
// interleave in the fabric.
//
// Two regimes are shown. Paced: bursts staggered so they never overlap
// at the server, every payload verified byte for byte. Overload: all
// clients at full rate — 8× the server channel — and the switch's
// bounded output queue overflows; drops are counted, and whatever does
// arrive is still intact (the AAL5 trailer and UDP checksum discard
// damaged PDUs, never deliver them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// -metrics attaches a telemetry registry to each regime's cluster and
// writes both canonical snapshots to the given file. Stdout is
// byte-identical with or without it — CI diffs the two — which pins the
// tentpole invariant: observing the system must not change what it does.
var flagMetrics = flag.String("metrics", "", "write both regimes' canonical telemetry snapshots to this JSON file")

// -percell forces the switch's per-cell queue/arbiter machine instead of
// train-preserving forwarding. Stdout is byte-identical either way — CI
// diffs the two — pinning that the arithmetic fast path computes exactly
// what the per-cell fabric does.
var flagPerCell = flag.Bool("percell", false, "force the switch's per-cell fabric instead of train forwarding")

func registry() *metrics.Registry {
	if *flagMetrics == "" {
		return nil
	}
	return metrics.New()
}

func main() {
	flag.Parse()
	w := workload.DefaultFanIn()

	// Paced regime: lossless fan-in under the server's receive ceiling.
	// Each regime gets its own registry (metric names are per-topology).
	pacedReg := registry()
	cl := core.NewCluster(core.Options{Metrics: pacedReg, PerCellFabric: *flagPerCell}, w.Clients+1)
	res, err := cl.RunFanIn(w)
	if err != nil {
		log.Fatal(err)
	}
	cl.Shutdown()

	fmt.Printf("fan-in: %d clients × %d messages × %d KB through a %d-port switch\n\n",
		w.Clients, w.Messages, w.MessageBytes/1024, w.Clients+1)
	tab := stats.Table{
		Title: "paced (bursts staggered, aggregate under the host receive ceiling)",
		Cols:  []string{"client", "delivered", "goodput (Mbps)"},
	}
	for _, c := range res.Clients {
		tab.AddRow(fmt.Sprintf("%d", c.Client),
			fmt.Sprintf("%d/%d", c.Delivered, c.Sent),
			fmt.Sprintf("%.1f", c.Mbps))
	}
	fmt.Print(tab.Render())
	fmt.Printf("aggregate: %d/%d messages, %.1f Mbps server-side, %d corrupt, %d switch drops\n\n",
		res.Delivered, res.Sent, res.AggregateMbps, res.Corrupt, res.SwitchDropped)
	if res.Delivered != res.Sent || res.Corrupt != 0 || res.SwitchDropped != 0 {
		log.Fatal("paced run was not lossless")
	}

	// Overload regime: incast collapse at the switch's output port.
	overReg := registry()
	over, err := core.RunFanIn(core.Options{Metrics: overReg, PerCellFabric: *flagPerCell}, w.Clients, w.MessageBytes, w.Messages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overload (no pacing: %d × 622 Mbps into one 622 Mbps port)\n", w.Clients)
	fmt.Printf("  delivered: %d/%d messages, goodput %.1f Mbps\n", over.Delivered, over.Sent, over.AggregateMbps)
	if over.Shortfall > 0 {
		// The whole point of the overload regime: UDP incast loss is not
		// an aggregate rounding error, it is specific clients' messages
		// gone for good. Name the victims.
		fmt.Printf("  SHORTFALL: %d messages never arrived —", over.Shortfall)
		for _, c := range over.Clients {
			if c.Shortfall > 0 {
				fmt.Printf(" client%d:%d", c.Client, c.Shortfall)
			}
		}
		fmt.Printf("\n  (unreliable transport: lost PDUs stay lost; `osiris-bench -incast` runs the same pattern over adaptive RDP)\n")
	}
	fmt.Printf("  switch cells: %d forwarded, %d dropped at the output queue\n", over.SwitchForwarded, over.SwitchDropped)
	fmt.Printf("  corrupt deliveries: %d (loss surfaces as missing PDUs, never damaged ones)\n\n", over.Corrupt)

	// Per-port fabric counters: the incast signature is that port 0 (the
	// server's egress) takes every drop and the queue high-water pegs at
	// capacity, while the client ports stay clean.
	ptab := stats.Table{
		Title: "per-port fabric counters (overload)",
		Cols:  []string{"port", "role", "cells in", "forwarded", "dropped", "queue high-water"},
	}
	for _, p := range over.Ports {
		role := "server"
		if p.Port > 0 {
			role = fmt.Sprintf("client %d", p.Port-1)
		}
		ptab.AddRow(fmt.Sprintf("%d", p.Port), role,
			fmt.Sprintf("%d", p.In), fmt.Sprintf("%d", p.Forwarded),
			fmt.Sprintf("%d", p.Dropped), fmt.Sprintf("%d", p.HighWater))
	}
	fmt.Print(ptab.Render())
	if over.SwitchDropped == 0 {
		log.Fatal("overload recorded no switch drops")
	}
	if over.Corrupt != 0 {
		log.Fatal("overload corrupted a delivery")
	}

	if *flagMetrics != "" {
		doc := struct {
			Schema      string `json:"schema"`
			Experiments []struct {
				Name    string          `json:"name"`
				Metrics []metrics.Value `json:"metrics"`
			} `json:"experiments"`
		}{Schema: "fanin-metrics/1"}
		for _, e := range []struct {
			name string
			reg  *metrics.Registry
		}{{"paced", pacedReg}, {"overload", overReg}} {
			doc.Experiments = append(doc.Experiments, struct {
				Name    string          `json:"name"`
				Metrics []metrics.Value `json:"metrics"`
			}{Name: e.name, Metrics: e.reg.Snapshot(false)})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*flagMetrics, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		// Stderr, not stdout: stdout must diff clean against a -metrics-less run.
		fmt.Fprintf(os.Stderr, "wrote %s\n", *flagMetrics)
	}
}
