// priority-overload: the §3.1 corollary of early demultiplexing —
// because the adaptor knows each cell's data path (VCI) before storing
// it, receive buffering is accounted per path. Under receiver overload
// the low-priority channel's free-buffer queue runs dry first, so the
// BOARD drops low-priority packets before they consume any host
// processing, while high-priority traffic flows untouched.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/dpm"
	"repro/internal/hostsim"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	e := sim.NewEngine(2)
	h := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	b := board.New(e, h, board.Config{})
	mix := workload.DefaultPriorityMix()

	// Two channels: a high-priority video stream and a low-priority bulk
	// stream. The host provisions generous buffering for the former and
	// a single buffer for the latter.
	hi := b.OpenChannel(1, mix.HighPriority, nil)
	lo := b.OpenChannel(2, mix.LowPriority, nil)
	b.BindVCI(21, 1)
	b.BindVCI(22, 2)

	data := workload.Payload(mix.MessageBytes, 4)
	supply := func(p *sim.Proc, ch *board.Channel, n int) {
		for i := 0; i < n; i++ {
			frames, err := h.Mem.AllocContiguous(mix.MessageBytes / h.Mem.PageSize())
			if err != nil {
				log.Fatal(err)
			}
			ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: h.Mem.FrameAddr(frames[0]), Len: uint32(mix.MessageBytes)})
		}
	}

	var hiGot, loGot, hiIntact int
	e.Go("experiment", func(p *sim.Proc) {
		supply(p, hi, mix.Messages*2)
		supply(p, lo, 1) // overload: the bulk stream gets almost nothing

		// Interleave bursts on both VCIs, as a congested switch would
		// deliver them.
		for k := 0; k < mix.Messages; k++ {
			for _, vci := range []atm.VCI{21, 22} {
				cells := atm.Segment(vci, data, 4, false)
				for i := range cells {
					for !b.InjectCell(cells[i], i%4) {
						p.Sleep(2 * time.Microsecond)
					}
					p.Sleep(700 * time.Nanosecond)
				}
			}
		}
		p.Sleep(time.Millisecond)

		// Drain both receive rings; only complete, intact PDUs count.
		drain := func(ch *board.Channel) (got, intact int) {
			var buf []byte
			for {
				d, ok := ch.RecvRing.TryPop(p, dpm.Host)
				if !ok {
					return got, intact
				}
				buf = append(buf, h.Mem.Read(d.Addr, int(d.Len))...)
				if d.Flags&queue.FlagEOP != 0 {
					got++
					if bytes.Equal(buf, data) {
						intact++
					}
					buf = nil
				}
			}
		}
		hiGot, hiIntact = drain(hi)
		loGot, _ = drain(lo)
	})
	e.Run()
	e.Shutdown()

	s := b.Stats()
	fmt.Printf("receiver overload: %d messages per stream, low-priority stream starved of buffers\n", mix.Messages)
	fmt.Printf("  high-priority (VCI 21): %d/%d delivered, %d intact\n", hiGot, mix.Messages, hiIntact)
	fmt.Printf("  low-priority  (VCI 22): %d/%d delivered\n", loGot, mix.Messages)
	fmt.Printf("  dropped by the BOARD before any host processing: %d PDUs\n", s.PDUsDropped)
	fmt.Printf("  host interrupts taken: %d (none for dropped traffic)\n", s.RxIRQs)
}
