// striping-skew: §2.6 — the OSIRIS interface stripes cells over four
// physical links, and the network introduces bounded misordering
// ("skew"). This example sends messages across heavily skewed links
// under each reassembly strategy and reports what survives:
//
//   - four-aal5:      four concurrent AAL5 reassemblies (the paper's
//     preferred strategy) — correct under skew;
//   - seqnum:         per-cell sequence numbers — correct under skew;
//   - arrival-order:  no skew handling — silently corrupts.
//
// It also shows the §2.6 corollary: skew destroys the double-cell DMA
// combining opportunity.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/dpm"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(strategy board.ReassemblyStrategy, skew atm.SkewModel, dma board.DMAMode) (delivered, intact int, combined, single int64) {
	tb := core.NewTestbed(core.Options{
		Profile: hostsim.DEC3000_600(),
		Driver:  driver.Config{Cache: driver.CacheNone},
		Board:   board.Config{Strategy: strategy, RxDMA: dma},
		Link:    atm.LinkConfig{Skew: skew},
	})
	defer tb.Shutdown()

	send, err := tb.A.Raw.Open(proto.RawOpen{VCI: 60})
	if err != nil {
		log.Fatal(err)
	}
	recv, err := tb.B.Raw.Open(proto.RawOpen{VCI: 60})
	if err != nil {
		log.Fatal(err)
	}
	const msgs = 6
	payload := workload.Payload(20_000, 3)
	recv.SetHandler(func(p *sim.Proc, m *msg.Message) {
		delivered++
		b, _ := m.Bytes()
		if bytes.Equal(b, payload) {
			intact++
		}
	})
	tb.Eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			m, err := msg.FromBytes(tb.A.Host.Kernel, payload)
			if err != nil {
				log.Fatal(err)
			}
			if err := send.Push(p, m); err != nil {
				log.Fatal(err)
			}
			tb.A.Drv.Flush(p)
		}
	})
	tb.Eng.RunUntil(tb.Eng.Now().Add(200 * time.Millisecond))
	s := tb.B.Board.Stats()
	return delivered, intact, s.CombinedDMAs, s.SingleDMAs
}

func main() {
	// Heavy but bounded skew: per-link constant offsets (path length /
	// multiplexing) plus random queueing delay.
	skew := atm.ConstantSkew{PerLink: []time.Duration{0, 11 * time.Microsecond, 4 * time.Microsecond, 17 * time.Microsecond}}

	fmt.Println("6 × 20 KB messages over 4 striped links with heavy skew:")
	for _, s := range []board.ReassemblyStrategy{board.FourAAL5, board.SeqNum, board.ArrivalOrder} {
		delivered, intact, _, _ := run(s, skew, board.SingleCell)
		verdict := "CORRECT"
		if intact < delivered {
			verdict = "CORRUPTED"
		}
		if delivered == 0 {
			verdict = "LOST"
		}
		fmt.Printf("  %-14s delivered %d/6, intact %d/6  → %s\n", s, delivered, intact, verdict)
	}

	fmt.Println("\ndouble-cell DMA combining (§2.6: skew suppresses it).")
	fmt.Println("Cells delivered back-to-back into the board's FIFO, so the")
	fmt.Println("receive processor can always peek at a second header:")
	c0, s0 := combineRatio(0)
	c1, s1 := combineRatio(3)
	ratio := func(c, s int64) float64 {
		if c+s == 0 {
			return 0
		}
		return float64(2*c) / float64(2*c+s)
	}
	fmt.Printf("  no skew:          %4d combined / %4d single DMAs  (%.0f%% of cells combined)\n", c0, s0, 100*ratio(c0, s0))
	fmt.Printf("  one link lagging: %4d combined / %4d single DMAs  (%.0f%% of cells combined)\n", c1, s1, 100*ratio(c1, s1))
	fmt.Println("(in host-to-host operation combining also depends on the sender")
	fmt.Println(" outpacing the receiver's DMA — the §4 closing observation)")
}

// combineRatio drives one board directly: a 16 KB PDU's cells injected
// back-to-back with one link lagging by `lag` cells, counting the DMA
// mix the receive processor achieves.
func combineRatio(lag int) (combined, single int64) {
	e := sim.NewEngine(5)
	h := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	b := board.New(e, h, board.Config{RxDMA: board.DoubleCell, Strategy: board.FourAAL5})
	b.BindVCI(9, 0)
	ch := b.KernelChannel()
	data := workload.Payload(16384, 8)
	e.Go("feeder", func(p *sim.Proc) {
		// Supply receive buffers.
		for i := 0; i < 4; i++ {
			frames, err := h.Mem.AllocContiguous(4)
			if err != nil {
				log.Fatal(err)
			}
			ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: h.Mem.FrameAddr(frames[0]), Len: 16384})
		}
		cells := atm.Segment(9, data, 4, false)
		perLink := make([][]atm.Cell, 4)
		for i := range cells {
			perLink[i%4] = append(perLink[i%4], cells[i])
		}
		idx := make([]int, 4)
		for round := 0; ; round++ {
			progress := false
			for l := 0; l < 4; l++ {
				turn := round
				if l == 1 {
					turn = round - lag
				}
				if turn >= 0 && idx[l] < len(perLink[l]) && idx[l] <= turn {
					for !b.InjectCell(perLink[l][idx[l]], l) {
						p.Sleep(2 * time.Microsecond)
					}
					idx[l]++
					progress = true
				}
			}
			done := true
			for l := 0; l < 4; l++ {
				if idx[l] < len(perLink[l]) {
					done = false
				}
			}
			if done {
				return
			}
			if !progress {
				p.Sleep(time.Microsecond)
			}
		}
	})
	e.RunUntil(e.Now().Add(100 * time.Millisecond))
	e.Shutdown()
	st := b.Stats()
	return st.CombinedDMAs, st.SingleDMAs
}
