package repro

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xkernel"
)

// TestConfigurationMatrixSmoke drives a verified end-to-end transfer
// through every combination of machine profile, receive DMA mode,
// reassembly strategy, cache policy, and checksum setting — the whole
// configuration space a user of this library can select.
func TestConfigurationMatrixSmoke(t *testing.T) {
	type combo struct {
		prof     func() hostsim.Profile
		dma      board.DMAMode
		strategy board.ReassemblyStrategy
		cache    driver.CachePolicy
		checksum bool
	}
	var combos []combo
	for _, prof := range []func() hostsim.Profile{hostsim.DEC5000_200, hostsim.DEC3000_600} {
		for _, dma := range []board.DMAMode{board.SingleCell, board.DoubleCell} {
			for _, strat := range []board.ReassemblyStrategy{board.FourAAL5, board.SeqNum} {
				for _, cache := range []driver.CachePolicy{driver.CacheLazy, driver.CacheEager, driver.CacheNone} {
					for _, cs := range []bool{false, true} {
						combos = append(combos, combo{prof, dma, strat, cache, cs})
					}
				}
			}
		}
	}
	data := workload.Payload(20_000, 3)
	for i, c := range combos {
		prof := c.prof()
		tb := core.NewTestbed(core.Options{
			Profile:  prof,
			Board:    board.Config{RxDMA: c.dma, Strategy: c.strategy},
			Driver:   driver.Config{Cache: c.cache},
			Checksum: c.checksum,
			Seed:     int64(i + 1),
		})
		tx, rx, err := openUDPPair(tb, 10, c.checksum)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		var got []byte
		rx.SetHandler(func(p *sim.Proc, m *msg.Message) { got, _ = m.Bytes() })
		tb.Eng.Go("send", func(p *sim.Proc) {
			m, err := msg.FromBytes(tb.A.Host.Kernel, data)
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Push(p, m); err != nil {
				t.Error(err)
			}
			tb.A.Drv.Flush(p)
		})
		tb.Eng.RunUntil(tb.Eng.Now().Add(100 * time.Millisecond))
		if !bytes.Equal(got, data) {
			t.Errorf("combo %d (%s dma=%v strat=%v cache=%v cs=%v): message corrupted or lost (%d bytes)",
				i, prof.Name, c.dma, c.strategy, c.cache, c.checksum, len(got))
		}
		tb.Shutdown()
	}
	t.Logf("verified %d configuration combinations", len(combos))
}

func openUDPPair(tb *core.Testbed, vci atm.VCI, checksum bool) (tx, rx xkernel.Session, err error) {
	tx, err = tb.A.UDP.Open(proto.UDPOpen{Remote: 2, VCI: vci, SrcPort: 1, DstPort: 2, Checksum: checksum})
	if err != nil {
		return nil, nil, err
	}
	rx, err = tb.B.UDP.Open(proto.UDPOpen{Remote: 1, VCI: vci, SrcPort: 2, DstPort: 1, Checksum: checksum})
	return tx, rx, err
}

// TestFullRunDeterminism re-runs a nontrivial mixed workload twice and
// demands identical virtual end times and statistics — the property
// that makes every number in EXPERIMENTS.md exactly regenerable.
func TestFullRunDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		opt := core.Options{
			Profile:  hostsim.DEC5000_200(),
			Driver:   driver.Config{Cache: driver.CacheLazy},
			Checksum: true,
			Link:     atm.LinkConfig{Skew: atm.QueueingSkew{Max: 5 * time.Microsecond}, LossRate: 0.002},
			Board:    board.Config{Strategy: board.FourAAL5, RxDMA: board.DoubleCell},
			Seed:     1234,
		}
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		tx, rx, err := openUDPPair(tb, 10, true)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		rx.SetHandler(func(p *sim.Proc, m *msg.Message) { n++ })
		tb.Eng.Go("send", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				m, _ := msg.FromBytes(tb.A.Host.Kernel, workload.Payload(6000, byte(i)))
				tx.Push(p, m)
				tb.A.Drv.Flush(p)
			}
		})
		end := tb.Eng.RunUntil(tb.Eng.Now().Add(50 * time.Millisecond))
		return end, int64(n), tb.B.Board.Stats().CellsRx
	}
	e1, n1, c1 := run()
	e2, n2, c2 := run()
	if e1 != e2 || n1 != n2 || c1 != c2 {
		t.Errorf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", e1, n1, c1, e2, n2, c2)
	}
}

// TestBidirectionalSimultaneousTraffic runs full-rate traffic both ways
// at once — each host transmitting and receiving simultaneously, the
// case where one host's transmit DMA, receive DMA, and CPU all contend.
func TestBidirectionalSimultaneousTraffic(t *testing.T) {
	tb := core.NewTestbed(core.Options{
		Profile: hostsim.DEC3000_600(),
		Driver:  driver.Config{Cache: driver.CacheNone},
	})
	defer tb.Shutdown()
	ab, baRx, err := openUDPPair(tb, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse direction on its own VCI.
	ba, err := tb.B.UDP.Open(proto.UDPOpen{Remote: 1, VCI: 11, SrcPort: 3, DstPort: 4})
	if err != nil {
		t.Fatal(err)
	}
	abRx, err := tb.A.UDP.Open(proto.UDPOpen{Remote: 2, VCI: 11, SrcPort: 4, DstPort: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	dataAB := workload.Payload(16000, 1)
	dataBA := workload.Payload(16000, 2)
	gotAB, gotBA := 0, 0
	baRx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		if b, _ := m.Bytes(); bytes.Equal(b, dataAB) {
			gotAB++
		}
	})
	abRx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		if b, _ := m.Bytes(); bytes.Equal(b, dataBA) {
			gotBA++
		}
	})
	tb.Eng.Go("a-sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(tb.A.Host.Kernel, dataAB)
			ab.Push(p, m)
		}
		tb.A.Drv.Flush(p)
	})
	tb.Eng.Go("b-sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(tb.B.Host.Kernel, dataBA)
			ba.Push(p, m)
		}
		tb.B.Drv.Flush(p)
	})
	tb.Eng.RunUntil(tb.Eng.Now().Add(100 * time.Millisecond))
	if gotAB != n || gotBA != n {
		t.Errorf("bidirectional delivery: A→B %d/%d, B→A %d/%d", gotAB, n, gotBA, n)
	}
}
