// Command osiris-sim runs one configurable experiment on the simulated
// OSIRIS testbed and prints the measurement plus a breakdown of what the
// hardware and software did — the tool for exploring the design space
// the paper's lessons came from.
//
// Examples:
//
//	osiris-sim -mode latency -machine 5000 -proto udp -size 4096
//	osiris-sim -mode rx -machine 3000 -dma double -checksum
//	osiris-sim -mode tx -machine 3000 -size 65536
//	osiris-sim -mode latency -skew 10us -strategy four-aal5
//	osiris-sim -mode rx -trace rx.trace.json   # then load in Perfetto
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/trace"
)

var (
	flagMode      = flag.String("mode", "latency", "experiment: latency | rx | tx")
	flagMachine   = flag.String("machine", "5000", "host model: 5000 (DECstation 5000/200) | 3000 (DEC 3000/600)")
	flagProto     = flag.String("proto", "udp", "protocol for latency mode: atm | udp")
	flagSize      = flag.Int("size", 4096, "message size in bytes")
	flagCount     = flag.Int("count", 8, "messages (throughput) or rounds (latency)")
	flagDMA       = flag.String("dma", "single", "receive DMA mode: single | double")
	flagTxPolicy  = flag.String("txdma", "boundary-stop", "transmit DMA policy: boundary-stop | fixed-cell | arbitrary")
	flagCache     = flag.String("cache", "", "cache policy: lazy | eager | none (default lazy on 5000, none on 3000)")
	flagChecksum  = flag.Bool("checksum", false, "enable the UDP data checksum")
	flagMTU       = flag.Int("mtu", 16*1024, "IP MTU")
	flagSkew      = flag.Duration("skew", 0, "max per-cell queueing skew across links (e.g. 10us)")
	flagStrategy  = flag.String("strategy", "four-aal5", "reassembly strategy: four-aal5 | seqnum | arrival-order")
	flagSeed      = flag.Int64("seed", 1, "simulation seed")
	flagTrace     = flag.String("trace", "", "write the run's timeline as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
	flagTraceCats = flag.String("tracecats", "", "print textual trace events (comma-separated categories: cell,pdu,irq,drop,proto,drv; 'all' for everything)")
	flagTraceN    = flag.Int("trace-limit", 200, "max textual trace events to print (most recent)")
)

func main() {
	flag.Parse()
	opt, err := buildOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	arm := func(tb *core.Testbed) *core.Testbed {
		if *flagTraceCats != "" {
			currentRecorder = trace.NewRecorder(*flagTraceN)
			if *flagTraceCats != "all" {
				currentRecorder.Filter(strings.Split(*flagTraceCats, ",")...)
			}
			tb.Eng.SetTracer(currentRecorder.Hook())
		}
		if *flagTrace != "" {
			currentTimeline = trace.NewTimeline()
			currentTimeline.Attach(tb.Eng, "testbed")
		}
		return tb
	}

	switch *flagMode {
	case "latency":
		kind := core.UDPIP
		if *flagProto == "atm" {
			kind = core.ATMRaw
		}
		tb := arm(core.NewTestbed(opt))
		rtt, err := tb.RunLatency(kind, *flagSize, *flagCount)
		fail(err)
		fmt.Printf("round-trip latency: %v (%.1f µs) for %d-byte %v messages\n",
			rtt, rtt.Seconds()*1e6, *flagSize, kind)
		report(tb)
	case "rx":
		tb := arm(core.NewTestbed(opt))
		mbps, err := tb.RunReceiveThroughput(*flagSize, *flagCount)
		fail(err)
		fmt.Printf("receive-side throughput: %.1f Mbps (%d-byte messages, board-generated)\n", mbps, *flagSize)
		report(tb)
	case "tx":
		opt.TxIsolated = true
		tb := arm(core.NewTestbed(opt))
		mbps, err := tb.RunTransmitThroughput(*flagSize, *flagCount)
		fail(err)
		cells, bytes := tb.SinkStats()
		fmt.Printf("transmit-side throughput: %.1f Mbps (%d-byte messages)\n", mbps, *flagSize)
		fmt.Printf("cells out: %d (%d payload bytes)\n", cells, bytes)
		report(tb)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *flagMode)
		os.Exit(2)
	}
}

// currentRecorder holds the armed textual trace recorder, if any.
var currentRecorder *trace.Recorder

// currentTimeline holds the armed typed-event timeline, if any.
var currentTimeline *trace.Timeline

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func buildOptions() (core.Options, error) {
	var opt core.Options
	switch *flagMachine {
	case "5000":
		opt.Profile = hostsim.DEC5000_200()
		opt.Driver.Cache = driver.CacheLazy
	case "3000":
		opt.Profile = hostsim.DEC3000_600()
		opt.Driver.Cache = driver.CacheNone
	default:
		return opt, fmt.Errorf("unknown machine %q", *flagMachine)
	}
	switch *flagCache {
	case "":
	case "lazy":
		opt.Driver.Cache = driver.CacheLazy
	case "eager":
		opt.Driver.Cache = driver.CacheEager
	case "none":
		opt.Driver.Cache = driver.CacheNone
	default:
		return opt, fmt.Errorf("unknown cache policy %q", *flagCache)
	}
	switch *flagDMA {
	case "single":
		opt.Board.RxDMA = board.SingleCell
	case "double":
		opt.Board.RxDMA = board.DoubleCell
	default:
		return opt, fmt.Errorf("unknown dma mode %q", *flagDMA)
	}
	switch *flagTxPolicy {
	case "boundary-stop":
		opt.Board.TxPolicy = board.BoundaryStop
	case "fixed-cell":
		opt.Board.TxPolicy = board.FixedCell
	case "arbitrary":
		opt.Board.TxPolicy = board.ArbitraryLength
	default:
		return opt, fmt.Errorf("unknown txdma policy %q", *flagTxPolicy)
	}
	switch *flagStrategy {
	case "four-aal5":
		opt.Board.Strategy = board.FourAAL5
	case "seqnum":
		opt.Board.Strategy = board.SeqNum
	case "arrival-order":
		opt.Board.Strategy = board.ArrivalOrder
	default:
		return opt, fmt.Errorf("unknown strategy %q", *flagStrategy)
	}
	opt.Checksum = *flagChecksum
	opt.MTU = *flagMTU
	opt.Seed = *flagSeed
	if *flagSkew > 0 {
		opt.Link.Skew = atm.QueueingSkew{Max: *flagSkew}
	}
	return opt, nil
}

func report(tb *core.Testbed) {
	defer tb.Shutdown()
	if rec := currentRecorder; rec != nil {
		fmt.Printf("\n--- trace (last %d events; %d categories) ---\n", rec.Len(), len(rec.Counts()))
		rec.Dump(os.Stdout)
	}
	if tl := currentTimeline; tl != nil {
		f, err := os.Create(*flagTrace)
		fail(err)
		fail(tl.WriteChrome(f))
		fail(f.Close())
		fmt.Printf("wrote %d trace events to %s\n", tl.Len(), *flagTrace)
	}
	fmt.Printf("\n--- breakdown (virtual time %v) ---\n", time.Duration(tb.Eng.Now()))
	for _, n := range []struct {
		name string
		node *core.Node
	}{{"host A", tb.A}, {"host B", tb.B}} {
		bs := n.node.Board.Stats()
		ds := n.node.Drv.Stats()
		bus := n.node.Host.Bus.Stats()
		fmt.Printf("%s board: cellsTx=%d cellsRx=%d pduTx=%d pduRx=%d combinedDMA=%d singleDMA=%d splitCells=%d rxIRQ=%d txIRQ=%d drops=%d\n",
			n.name, bs.CellsTx, bs.CellsRx, bs.PDUsTx, bs.PDUsRx, bs.CombinedDMAs, bs.SingleDMAs, bs.SplitCellsTx, bs.RxIRQs, bs.TxIRQs, bs.PDUsDropped)
		fmt.Printf("%s driver: txPDU=%d txBufs=%d rxPDU=%d rxBufs=%d stalls=%d cksumErr=%d recoveries=%d\n",
			n.name, ds.TxPDUs, ds.TxBuffers, ds.RxPDUs, ds.RxBuffers, ds.TxStalls, ds.RxChecksumErr, ds.Recoveries)
		fmt.Printf("%s bus: dmaRd=%d(%dw) dmaWr=%d(%dw) pioWords=%d cpuMemWords=%d busy=%v\n",
			n.name, bus.DMAReadTxns, bus.DMAReadWords, bus.DMAWriteTxns, bus.DMAWriteWords, bus.PIOWords, bus.CPUMemWords, n.node.Host.Bus.BusyTime())
		cs := n.node.Host.Cache.Stats()
		fmt.Printf("%s cache: readHit=%d readMiss=%d stale=%d invalWords=%d\n",
			n.name, cs.ReadHits, cs.ReadMisses, cs.StaleReads, cs.InvalidatedWords)
		is := n.node.IP.Stats()
		us := n.node.UDP.Stats()
		fmt.Printf("%s proto: ipFragsTx=%d ipFragsRx=%d udpRx=%d udpCksumErr=%d recovered=%d dropped=%d\n",
			n.name, is.FragsSent, is.FragsRecv, us.Received, us.ChecksumErr, us.Recovered, is.Dropped+int64(us.Dropped))
	}
}
