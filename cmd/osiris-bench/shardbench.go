package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

var (
	flagShardBench    = flag.Bool("shardbench", false, "measure the sharded engine's scaling on a switched fan-in workload (writes -shardbenchout)")
	flagShardBenchOut = flag.String("shardbenchout", "BENCH_shards.json", "output path for the shard-scaling JSON report")
	flagShardCounts   = flag.String("shardcounts", "1,2,4,8", "comma-separated shard counts to measure")
)

func init() { extraSections = append(extraSections, runShardBench) }

// shardBenchPoint is one shard count's measurement. Events can differ
// slightly between shard counts (a shard with an empty local queue skips
// wakeups a serial engine would execute), so events/s denominators are
// per-point; the Fingerprint hashes only the simulated results, which
// must be byte-identical at every count.
type shardBenchPoint struct {
	Shards          int     `json:"shards"`
	EffectiveShards int     `json:"effective_shards"`
	WallSeconds     float64 `json:"wall_seconds"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	Speedup         float64 `json:"speedup"`
	Fingerprint     string  `json:"fingerprint"`
}

// shardBenchReport is the BENCH_shards.json schema. Invariant records
// whether every measured shard count produced the same result
// fingerprint — the determinism contract of the conservative-parallel
// scheduler, checked on every run of this section. Speedup is bounded
// by min(shards, GOMAXPROCS): on a single-CPU host every point measures
// ~1.0× or below (barrier overhead), which is why the report records
// num_cpu and gomaxprocs alongside the points.
type shardBenchReport struct {
	reportHeader
	NumCPU     int               `json:"num_cpu"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Workload   string            `json:"workload"`
	Invariant  bool              `json:"invariant"`
	Points     []shardBenchPoint `json:"points"`
}

// runShardBench runs one switched fan-in incast — 7 clients at one
// server through the cell fabric, the topology with the most shard
// boundaries to cross — once per requested shard count, measuring wall
// time and events/s and fingerprinting the simulated outcome. A
// fingerprint mismatch is a determinism violation in the engine, so the
// section writes its report and exits nonzero.
func runShardBench() {
	if !*flagShardBench {
		return
	}
	fmt.Println("== Sharded engine scaling (fan-in incast) ==")

	var counts []int
	for _, f := range strings.Split(*flagShardCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "shardbench: bad -shardcounts entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	const clients, msgSize = 7, 8192
	count := 30
	if *flagQuick {
		count = 8
	}
	w := workload.FanIn{
		Clients: clients, MessageBytes: msgSize, Messages: count,
		Gap:     time.Millisecond,
		Stagger: 250 * time.Microsecond,
	}

	report := shardBenchReport{
		reportHeader: newReportHeader("osiris-shardbench/1"),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workload:     fmt.Sprintf("fanin %dx%d switched incast, %d msgs/client", clients, msgSize, count),
		Invariant:    true,
	}

	var serialWall float64
	for _, k := range counts {
		opt := core.Options{Shards: k}
		cl := core.NewCluster(opt, clients+1)
		start := time.Now()
		res, err := cl.RunFanIn(w)
		wall := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: shards=%d: %v\n", k, err)
			cl.Shutdown()
			os.Exit(1)
		}
		// The fingerprint covers the full result struct and the final
		// virtual clock — everything deterministic — and deliberately
		// excludes the event count (see shardBenchPoint).
		h := sha256.New()
		fmt.Fprintf(h, "%+v|%v\n", res, cl.Now())
		fp := fmt.Sprintf("%x", h.Sum(nil))
		pt := shardBenchPoint{
			Shards:          k,
			EffectiveShards: cl.Plan().Shards,
			WallSeconds:     wall,
			Events:          cl.Events(),
			Fingerprint:     fp,
		}
		cl.Shutdown()
		if wall > 0 {
			pt.EventsPerSec = float64(pt.Events) / wall
		}
		if serialWall == 0 {
			serialWall = wall
		}
		pt.Speedup = serialWall / wall
		if len(report.Points) > 0 && fp != report.Points[0].Fingerprint {
			report.Invariant = false
			fmt.Fprintf(os.Stderr, "shardbench: DETERMINISM VIOLATION at shards=%d: %.12s… != %.12s…\n",
				k, fp, report.Points[0].Fingerprint)
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("shards=%-2d (effective %d)  wall %7.3fs  %8.0f events/s  speedup %5.2fx\n",
			k, pt.EffectiveShards, pt.WallSeconds, pt.EventsPerSec, pt.Speedup)
	}
	if report.Invariant {
		fmt.Printf("results byte-identical across shard counts (fingerprint %.12s…)\n", report.Points[0].Fingerprint)
	}

	writeReport("shardbench", *flagShardBenchOut, report)
	if !report.Invariant {
		os.Exit(1)
	}
}
