package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// reportHeader is the common prefix of the BENCH_*.json artifacts that
// record wall-clock measurements. Artifacts that must be byte-identical
// run to run (BENCH_faults.json, which CI diffs across worker counts)
// carry only a schema string — never embed this header there, the
// timestamp would break the diff.
type reportHeader struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
}

// newReportHeader stamps a schema name with the generation time and
// toolchain version.
func newReportHeader(schema string) reportHeader {
	return reportHeader{
		Schema:    schema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
}

// writeReport marshals v indented, appends the trailing newline, and
// writes it to path. The JSON artifacts are the bench harness's whole
// product, so failing to write one is fatal; label prefixes the error
// with the section that was reporting.
func writeReport(label, path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
