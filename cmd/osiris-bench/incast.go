package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/parexp"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	flagIncast    = flag.Bool("incast", false, "incast plane: adaptive vs legacy RDP under 8:1 fan-in (collapse smoke + goodput-vs-offered-load curve)")
	flagIncastOut = flag.String("incastout", "BENCH_incast.json", "output path for the incast JSON report")
)

func init() { extraSections = append(extraSections, runIncast) }

// incastScenario names one (workload, fabric, transport) combination of
// the incast plane, together with its full result. The report is a
// fixed function of the configuration — no wall-clock timestamps — so
// CI can diff it across worker counts, shard counts, and fabric modes.
type incastScenario struct {
	Name          string             `json:"name"`
	Adaptive      bool               `json:"adaptive"`
	Clients       int                `json:"clients"`
	MessageBytes  int                `json:"message_bytes"`
	Messages      int                `json:"messages"`
	GapNS         int64              `json:"gap_ns"`
	QueueCells    int                `json:"queue_cells"`
	MarkThreshold int                `json:"mark_threshold"`
	Result        *core.IncastResult `json:"result"`
}

// incastGaps is the pacing grid of the goodput-vs-offered-load curve:
// gap 0 is the unpaced collapse regime, the rest walk the offered load
// down through the knee.
func incastGaps() []time.Duration {
	if *flagQuick {
		return []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond}
	}
	return []time.Duration{
		0,
		250 * time.Microsecond,
		500 * time.Microsecond,
		time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
	}
}

// runIncast drives the reliable-transport incast plane in two regimes.
//
// Collapse smoke: the unpaced 8×16 KB fan-in through the default
// 256-cell switch queue — the workload that collapses the unreliable
// stack (examples/fanin-server) and starves the legacy fixed-timer RDP.
// The adaptive transport must deliver every message; anything less
// exits nonzero, which is the CI gate.
//
// Curve: 4 KB messages through a deeper (1024-cell) queue with ECN
// marking at 128, swept over pacing gaps, adaptive vs legacy — the
// goodput-vs-offered-load table showing no collapse past the knee.
func runIncast() {
	if !(*flagIncast || *flagAll) {
		return
	}

	type spec struct {
		name          string
		adaptive      bool
		w             workload.FanIn
		queueCells    int
		markThreshold int
	}
	var specs []spec

	collapse := workload.DefaultFanIn()
	collapse.Gap = 0
	collapse.Stagger = 0
	for _, ad := range []bool{true, false} {
		specs = append(specs, spec{
			name:          fmt.Sprintf("incast/collapse/%s", transportName(ad)),
			adaptive:      ad,
			w:             collapse,
			queueCells:    0, // default 256
			markThreshold: 64,
		})
	}

	curve := workload.FanIn{Clients: 8, MessageBytes: 4096, Messages: 32}
	if *flagQuick {
		curve.Messages = 16
	}
	for _, gap := range incastGaps() {
		for _, ad := range []bool{true, false} {
			w := curve
			w.Gap = gap
			specs = append(specs, spec{
				name:          fmt.Sprintf("incast/curve/%s/gap=%s", transportName(ad), gap),
				adaptive:      ad,
				w:             w,
				queueCells:    1024,
				markThreshold: 128,
			})
		}
	}

	var jobs []parexp.Job
	for _, sp := range specs {
		sp := sp
		jobs = append(jobs, parexp.Job{
			Name: sp.name,
			Seed: core.DefaultSeed,
			// The unpaced points churn the longest; start them first.
			Cost: float64(sp.w.MessageBytes) / float64(1+sp.w.Gap),
			Run: func() (any, error) {
				opt := core.Options{
					Shards:              *flagShards,
					PerCellFabric:       *flagPerCell,
					FabricQueueCells:    sp.queueCells,
					FabricMarkThreshold: sp.markThreshold,
				}
				return core.RunIncastRDP(opt, core.IncastRDP{Workload: sp.w, Adaptive: sp.adaptive})
			},
		})
	}
	jobs = selected(jobs)
	if len(jobs) == 0 {
		return
	}

	fmt.Println("== Incast plane: reliable fan-in, adaptive vs legacy RDP ==")
	byName := map[string]*core.IncastResult{}
	for _, r := range runJobs(jobs) {
		if r.Err != nil {
			os.Exit(1)
		}
		byName[r.Name] = r.Value.(*core.IncastResult)
	}

	var report struct {
		Schema    string           `json:"schema"`
		Scenarios []incastScenario `json:"scenarios"`
	}
	report.Schema = "osiris-incast/1"
	for _, sp := range specs {
		res, ok := byName[sp.name]
		if !ok {
			continue
		}
		qc := sp.queueCells
		if qc == 0 {
			qc = 256
		}
		report.Scenarios = append(report.Scenarios, incastScenario{
			Name:          sp.name,
			Adaptive:      sp.adaptive,
			Clients:       sp.w.Clients,
			MessageBytes:  sp.w.MessageBytes,
			Messages:      sp.w.Messages,
			GapNS:         int64(sp.w.Gap),
			QueueCells:    qc,
			MarkThreshold: sp.markThreshold,
			Result:        res,
		})
	}

	// Collapse smoke: the headline claim, rendered and enforced.
	ctab := stats.Table{
		Title: fmt.Sprintf("unpaced %d×%dKB collapse (256-cell queue)", collapse.Clients, collapse.MessageBytes/1024),
		Cols:  []string{"transport", "delivered", "shortfall", "goodput Mbps", "retx", "timeouts", "switch drops"},
	}
	smokeFailed := false
	for _, ad := range []bool{true, false} {
		res := byName[fmt.Sprintf("incast/collapse/%s", transportName(ad))]
		if res == nil {
			continue
		}
		ctab.AddRow(transportName(ad),
			fmt.Sprintf("%d/%d", res.Delivered, res.Sent),
			fmt.Sprint(res.Shortfall),
			fmt.Sprintf("%.1f", res.GoodputMbps),
			fmt.Sprint(res.Retransmits),
			fmt.Sprint(res.Timeouts),
			fmt.Sprint(res.SwitchDropped))
		if ad && !res.Lossless() {
			smokeFailed = true
		}
	}
	fmt.Println(ctab.Render())

	// Goodput-vs-offered-load: the no-collapse-past-the-knee table.
	ktab := stats.Table{
		Title: "goodput vs offered load, 8×4KB (1024-cell queue, ECN mark at 128)",
		Cols: []string{
			"gap", "offered Mbps", "adaptive Mbps", "adaptive short",
			"legacy Mbps", "legacy short", "ECN echo", "ECN backoff", "drops",
		},
	}
	for _, gap := range incastGaps() {
		a := byName[fmt.Sprintf("incast/curve/adaptive/gap=%s", gap)]
		l := byName[fmt.Sprintf("incast/curve/legacy/gap=%s", gap)]
		if a == nil && l == nil {
			continue
		}
		row := []string{fmt.Sprint(gap), "?", "?", "?", "?", "?", "?", "?", "?"}
		if a != nil {
			row[1] = fmt.Sprintf("%.1f", a.OfferedMbps)
			row[2] = fmt.Sprintf("%.1f", a.GoodputMbps)
			row[3] = fmt.Sprint(a.Shortfall)
			row[6] = fmt.Sprint(a.EcnEchoed)
			row[7] = fmt.Sprint(a.EcnBackoffs)
			row[8] = fmt.Sprint(a.SwitchDropped)
		}
		if l != nil {
			row[4] = fmt.Sprintf("%.1f", l.GoodputMbps)
			row[5] = fmt.Sprint(l.Shortfall)
		}
		ktab.AddRow(row...)
	}
	fmt.Println(ktab.Render())
	fmt.Println("every delivery is verified byte for byte at the server; shortfall counts messages the horizon expired on")

	// No reportHeader: the artifact must be byte-identical run to run
	// (CI diffs it across shard counts and fabric modes), so it carries
	// no timestamp.
	writeReport("incast", *flagIncastOut, report)

	if smokeFailed {
		fmt.Fprintln(os.Stderr, "incast: adaptive transport failed the unpaced lossless bar")
		os.Exit(1)
	}
}

func transportName(adaptive bool) string {
	if adaptive {
		return "adaptive"
	}
	return "legacy"
}
