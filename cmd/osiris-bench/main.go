// Command osiris-bench regenerates the paper's evaluation (§4): Table 1
// and Figures 2-4, printing the paper's published values next to the
// simulation's, plus the ablation experiments from DESIGN.md.
//
// Every table row, figure point, ablation cell, and loss-sweep rate is
// an independent, seeded, deterministic simulation, so the harness fans
// them across a parexp worker pool (-workers). Results merge in
// canonical submission order: stdout and every JSON artifact are
// byte-identical for any worker count.
//
// Orthogonally, -shards partitions each simulated system itself over a
// conservative-parallel engine group (sim.ShardGroup); results stay
// byte-identical at any shard count, and -shardbench measures the
// scaling and checks that invariant.
//
// Usage:
//
//	osiris-bench -all                # everything (a few minutes of CPU)
//	osiris-bench -all -workers=8     # same output, several times faster
//	osiris-bench -table1
//	osiris-bench -fig2 -quick        # coarser sweeps, fewer messages
//	osiris-bench -run 'fig3/double.*65536'   # single sweep points by name
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/parexp"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	flagAll     = flag.Bool("all", false, "run every table and figure")
	flagTable1  = flag.Bool("table1", false, "Table 1: round-trip latencies")
	flagFig2    = flag.Bool("fig2", false, "Figure 2: DEC 5000/200 receive-side throughput")
	flagFig3    = flag.Bool("fig3", false, "Figure 3: DEC 3000/600 receive-side throughput")
	flagFig4    = flag.Bool("fig4", false, "Figure 4: transmit-side throughput")
	flagQuick   = flag.Bool("quick", false, "coarser sweeps and fewer messages per point")
	flagWorkers = flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS, 1 = serial)")
	flagShards  = flag.Int("shards", 1, "engine shards per simulated system (1 = serial engine; >1 runs each testbed/cluster on a conservative-parallel shard group — results are byte-identical)")
	flagRun     = flag.String("run", "", "regexp selecting experiment jobs by name, e.g. 'fig3/double.*65536' (enables all sections unless some are given)")
	flagPerCell = flag.Bool("percell", false, "force the switch's per-cell fabric instead of train forwarding (results are byte-identical; CI diffs the two)")
)

// runFilter is the compiled -run expression (nil when unset).
var runFilter *regexp.Regexp

func main() {
	flag.Parse()
	if *flagRun != "" {
		re, err := regexp.Compile(*flagRun)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osiris-bench: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		runFilter = re
		// -run alone means "search every regular section for matches".
		if !(*flagAll || *flagTable1 || *flagFig2 || *flagFig3 || *flagFig4 || *flagAblations || *flagFaults || *flagIncast || *flagTenants) {
			*flagAll = true
		}
	}
	if !(*flagAll || *flagTable1 || *flagFig2 || *flagFig3 || *flagFig4 || *flagAblations || *flagSimBench || *flagFaults || *flagIncast || *flagTenants || *flagParBench || *flagShardBench || *flagMetrics) {
		flag.Usage()
		os.Exit(2)
	}
	if *flagAll || *flagTable1 {
		table1()
	}
	if *flagAll || *flagFig2 {
		figure2()
	}
	if *flagAll || *flagFig3 {
		figure3()
	}
	if *flagAll || *flagFig4 {
		figure4()
	}
	for _, fn := range extraSections {
		fn()
	}
}

// workers resolves the -workers flag: 0 (or negative) means one worker
// per available CPU.
func workers() int {
	if *flagWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return *flagWorkers
}

// selected applies the -run filter to a section's job batch; with no
// filter every job survives. A section whose batch filters to nothing
// skips itself entirely (no header, no work).
func selected(jobs []parexp.Job) []parexp.Job {
	if runFilter == nil {
		return jobs
	}
	var kept []parexp.Job
	for _, j := range jobs {
		if runFilter.MatchString(j.Name) {
			kept = append(kept, j)
		}
	}
	return kept
}

// runJobs executes pre-selected jobs on the worker pool, reports
// failures to stderr in canonical order, and returns the results
// (canonical order, names preserved). Renderers look results up by job
// name, so filtered-out jobs simply leave gaps.
func runJobs(jobs []parexp.Job) []parexp.Result {
	results := parexp.Run(workers(), jobs)
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, r.Err)
		}
	}
	return results
}

func rounds() int {
	if *flagQuick {
		return 2
	}
	return 5
}

func msgs() int {
	if *flagQuick {
		return 6
	}
	return 12
}

func sweepSizes() []int {
	if *flagQuick {
		return []int{1024, 8192, 65536, 262144}
	}
	return workload.FigureSizes()
}

// dsOptions and alOptions are the two machine profiles of §4. Both pick
// up -shards, so every table row and figure point can run its simulated
// system on a sharded engine group; the printed numbers are identical
// either way (the shard-invariance tests pin this).
func dsOptions() core.Options {
	return core.Options{Profile: hostsim.DEC5000_200(), Driver: driver.Config{Cache: driver.CacheLazy}, Shards: *flagShards, PerCellFabric: *flagPerCell}
}

func alOptions() core.Options {
	return core.Options{Profile: hostsim.DEC3000_600(), Driver: driver.Config{Cache: driver.CacheNone}, Shards: *flagShards, PerCellFabric: *flagPerCell}
}

func table1() {
	paper := map[string]map[int]float64{
		"DEC5000/200 ATM":    {1: 353, 1024: 417, 2048: 486, 4096: 778},
		"DEC5000/200 UDP/IP": {1: 598, 1024: 659, 2048: 725, 4096: 1011},
		"DEC3000/600 ATM":    {1: 154, 1024: 215, 2048: 283, 4096: 449},
		"DEC3000/600 UDP/IP": {1: 316, 1024: 376, 2048: 446, 4096: 619},
	}
	type t1point struct {
		opt  core.Options
		kind core.ProtoKind
		size int
	}
	var jobs []parexp.Job
	meta := map[string]t1point{}
	for _, row := range []struct {
		opt  core.Options
		kind core.ProtoKind
	}{
		{dsOptions(), core.ATMRaw},
		{dsOptions(), core.UDPIP},
		{alOptions(), core.ATMRaw},
		{alOptions(), core.UDPIP},
	} {
		for _, size := range workload.Table1Sizes() {
			row, size := row, size
			name := fmt.Sprintf("table1/%s/%s/%d", row.opt.Profile.Name, row.kind, size)
			meta[name] = t1point{row.opt, row.kind, size}
			jobs = append(jobs, parexp.Job{
				Name: name,
				Seed: core.DefaultSeed,
				Cost: float64(size),
				Run: func() (any, error) {
					tb := core.NewTestbed(row.opt)
					defer tb.Shutdown()
					return tb.RunLatency(row.kind, size, rounds())
				},
			})
		}
	}
	jobs = selected(jobs)
	if len(jobs) == 0 {
		return
	}
	fmt.Println("== Table 1: Round-Trip Latencies (µs) ==")
	tab := stats.Table{Cols: []string{"machine", "protocol", "size", "paper µs", "sim µs", "ratio"}}
	for _, r := range runJobs(jobs) {
		if r.Err != nil {
			continue
		}
		pt := meta[r.Name]
		key := pt.opt.Profile.Name + " " + pt.kind.String()
		want := paper[key][pt.size]
		got := r.Value.(time.Duration).Seconds() * 1e6
		tab.AddRow(pt.opt.Profile.Name, pt.kind.String(), fmt.Sprint(pt.size),
			fmt.Sprintf("%.0f", want), fmt.Sprintf("%.0f", got), fmt.Sprintf("%.2f", got/want))
	}
	fmt.Println(tab.Render())
}

type rxCurve struct {
	name string
	opt  core.Options
}

// receiveJobs builds one job per (curve, size) point of a receive-side
// figure. Jobs are named <fig>/<curve>/<size>; sizes serve as cost
// hints so the pool starts the big points first.
func receiveJobs(fig string, curves []rxCurve, sizes []int) []parexp.Job {
	var jobs []parexp.Job
	for _, c := range curves {
		for _, size := range sizes {
			c, size := c, size
			jobs = append(jobs, parexp.Job{
				Name: fmt.Sprintf("%s/%s/%d", fig, c.name, size),
				Seed: core.DefaultSeed,
				Cost: float64(size),
				Run: func() (any, error) {
					tb := core.NewTestbed(c.opt)
					defer tb.Shutdown()
					return tb.RunReceiveThroughput(size, msgs())
				},
			})
		}
	}
	return jobs
}

// figureSeries folds point results back into per-curve series, in curve
// order, skipping failed or filtered-out points.
func figureSeries(fig string, curves []rxCurve, sizes []int, results []parexp.Result) []stats.Series {
	byName := map[string]parexp.Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	var series []stats.Series
	for _, c := range curves {
		s := stats.Series{Name: c.name}
		for _, size := range sizes {
			r, ok := byName[fmt.Sprintf("%s/%s/%d", fig, c.name, size)]
			if !ok || r.Err != nil {
				continue
			}
			s.Add(float64(size), r.Value.(float64))
		}
		series = append(series, s)
	}
	return series
}

func receiveFigure(title, fig string, curves []rxCurve, paperNote string) {
	sizes := sweepSizes()
	jobs := selected(receiveJobs(fig, curves, sizes))
	if len(jobs) == 0 {
		return
	}
	fmt.Printf("== %s ==\n", title)
	results := runJobs(jobs)
	fmt.Println(stats.RenderFigure(title, "message bytes", "Mbps", figureSeries(fig, curves, sizes, results)))
	fmt.Println(paperNote)
}

func figure2() {
	ds := dsOptions()
	dbl := ds
	dbl.Board = board.Config{RxDMA: board.DoubleCell}
	eager := ds
	eager.Driver = driver.Config{Cache: driver.CacheEager}
	cs := ds
	cs.Checksum = true
	receiveFigure("Figure 2: DEC 5000/200 UDP/IP receive-side throughput", "fig2",
		[]rxCurve{
			{"double-cell DMA", dbl},
			{"single-cell DMA", ds},
			{"single-cell, cache invalidated", eager},
			{"single-cell, UDP checksum (text: ~80 Mbps)", cs},
		},
		"paper plateaus: double 379, single 340, invalidated 250 Mbps; CPU-touched ~80 Mbps")
}

// fig3Curves is the Figure 3 sweep's curve set — shared with -parbench,
// which uses this exact grid as its scaling workload.
func fig3Curves() []rxCurve {
	al := alOptions()
	dbl := al
	dbl.Board = board.Config{RxDMA: board.DoubleCell}
	dblCS := dbl
	dblCS.Checksum = true
	sglCS := al
	sglCS.Checksum = true
	return []rxCurve{
		{"double-cell DMA", dbl},
		{"double-cell, UDP-CS", dblCS},
		{"single-cell DMA", al},
		{"single-cell, UDP-CS", sglCS},
	}
}

func figure3() {
	receiveFigure("Figure 3: DEC 3000/600 UDP/IP receive-side throughput", "fig3",
		fig3Curves(),
		"paper plateaus: double ~516 (link-limited), double+CS 438, single ~460 Mbps")
}

func figure4() {
	curves := []rxCurve{
		{"3000/600", alOptions()},
		{"3000/600, UDP-CS", func() core.Options { o := alOptions(); o.Checksum = true; return o }()},
		{"5000/200", dsOptions()},
	}
	sizes := sweepSizes()
	var jobs []parexp.Job
	for _, c := range curves {
		for _, size := range sizes {
			c, size := c, size
			jobs = append(jobs, parexp.Job{
				Name: fmt.Sprintf("fig4/%s/%d", c.name, size),
				Seed: core.DefaultSeed,
				Cost: float64(size),
				Run: func() (any, error) {
					opt := c.opt
					opt.TxIsolated = true
					tb := core.NewTestbed(opt)
					defer tb.Shutdown()
					return tb.RunTransmitThroughput(size, msgs())
				},
			})
		}
	}
	jobs = selected(jobs)
	if len(jobs) == 0 {
		return
	}
	fmt.Println("== Figure 4: UDP/IP transmit-side throughput ==")
	results := runJobs(jobs)
	fmt.Println(stats.RenderFigure("Figure 4: transmit side", "message bytes", "Mbps",
		figureSeries("fig4", curves, sizes, results)))
	fmt.Println("paper: max 325 Mbps, limited by single-cell DMA TURBOchannel overhead")
}
