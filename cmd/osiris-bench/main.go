// Command osiris-bench regenerates the paper's evaluation (§4): Table 1
// and Figures 2-4, printing the paper's published values next to the
// simulation's, plus the ablation experiments from DESIGN.md.
//
// Usage:
//
//	osiris-bench -all            # everything (a few minutes of CPU)
//	osiris-bench -table1
//	osiris-bench -fig2 -quick    # coarser sweeps, fewer messages
package main

import (
	"flag"
	"fmt"
	"os"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	flagAll    = flag.Bool("all", false, "run every table and figure")
	flagTable1 = flag.Bool("table1", false, "Table 1: round-trip latencies")
	flagFig2   = flag.Bool("fig2", false, "Figure 2: DEC 5000/200 receive-side throughput")
	flagFig3   = flag.Bool("fig3", false, "Figure 3: DEC 3000/600 receive-side throughput")
	flagFig4   = flag.Bool("fig4", false, "Figure 4: transmit-side throughput")
	flagQuick  = flag.Bool("quick", false, "coarser sweeps and fewer messages per point")
)

func main() {
	flag.Parse()
	if !(*flagAll || *flagTable1 || *flagFig2 || *flagFig3 || *flagFig4 || *flagAblations || *flagSimBench || *flagFaults) {
		flag.Usage()
		os.Exit(2)
	}
	if *flagAll || *flagTable1 {
		table1()
	}
	if *flagAll || *flagFig2 {
		figure2()
	}
	if *flagAll || *flagFig3 {
		figure3()
	}
	if *flagAll || *flagFig4 {
		figure4()
	}
	for _, fn := range extraSections {
		fn()
	}
}

func rounds() int {
	if *flagQuick {
		return 2
	}
	return 5
}

func msgs() int {
	if *flagQuick {
		return 6
	}
	return 12
}

func sweepSizes() []int {
	if *flagQuick {
		return []int{1024, 8192, 65536, 262144}
	}
	return workload.FigureSizes()
}

func dsOptions() core.Options {
	return core.Options{Profile: hostsim.DEC5000_200(), Driver: driver.Config{Cache: driver.CacheLazy}}
}

func alOptions() core.Options {
	return core.Options{Profile: hostsim.DEC3000_600(), Driver: driver.Config{Cache: driver.CacheNone}}
}

func table1() {
	fmt.Println("== Table 1: Round-Trip Latencies (µs) ==")
	paper := map[string]map[int]float64{
		"DEC5000/200 ATM":    {1: 353, 1024: 417, 2048: 486, 4096: 778},
		"DEC5000/200 UDP/IP": {1: 598, 1024: 659, 2048: 725, 4096: 1011},
		"DEC3000/600 ATM":    {1: 154, 1024: 215, 2048: 283, 4096: 449},
		"DEC3000/600 UDP/IP": {1: 316, 1024: 376, 2048: 446, 4096: 619},
	}
	tab := stats.Table{Cols: []string{"machine", "protocol", "size", "paper µs", "sim µs", "ratio"}}
	for _, row := range []struct {
		opt  core.Options
		kind core.ProtoKind
	}{
		{dsOptions(), core.ATMRaw},
		{dsOptions(), core.UDPIP},
		{alOptions(), core.ATMRaw},
		{alOptions(), core.UDPIP},
	} {
		for _, size := range workload.Table1Sizes() {
			tb := core.NewTestbed(row.opt)
			rtt, err := tb.RunLatency(row.kind, size, rounds())
			tb.Shutdown()
			if err != nil {
				fmt.Fprintf(os.Stderr, "table1 %v %d: %v\n", row.kind, size, err)
				continue
			}
			key := row.opt.Profile.Name + " " + row.kind.String()
			want := paper[key][size]
			got := rtt.Seconds() * 1e6
			tab.AddRow(row.opt.Profile.Name, row.kind.String(), fmt.Sprint(size),
				fmt.Sprintf("%.0f", want), fmt.Sprintf("%.0f", got), fmt.Sprintf("%.2f", got/want))
		}
	}
	fmt.Println(tab.Render())
}

type rxCurve struct {
	name string
	opt  core.Options
}

func receiveFigure(title string, curves []rxCurve, paperNote string) {
	fmt.Printf("== %s ==\n", title)
	var series []stats.Series
	for _, c := range curves {
		s := stats.Series{Name: c.name}
		for _, size := range sweepSizes() {
			tb := core.NewTestbed(c.opt)
			mbps, err := tb.RunReceiveThroughput(size, msgs())
			tb.Shutdown()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s %s %d: %v\n", title, c.name, size, err)
				continue
			}
			s.Add(float64(size), mbps)
		}
		series = append(series, s)
	}
	fmt.Println(stats.RenderFigure(title, "message bytes", "Mbps", series))
	fmt.Println(paperNote)
}

func figure2() {
	ds := dsOptions()
	dbl := ds
	dbl.Board = board.Config{RxDMA: board.DoubleCell}
	eager := ds
	eager.Driver = driver.Config{Cache: driver.CacheEager}
	cs := ds
	cs.Checksum = true
	receiveFigure("Figure 2: DEC 5000/200 UDP/IP receive-side throughput",
		[]rxCurve{
			{"double-cell DMA", dbl},
			{"single-cell DMA", ds},
			{"single-cell, cache invalidated", eager},
			{"single-cell, UDP checksum (text: ~80 Mbps)", cs},
		},
		"paper plateaus: double 379, single 340, invalidated 250 Mbps; CPU-touched ~80 Mbps")
}

func figure3() {
	al := alOptions()
	dbl := al
	dbl.Board = board.Config{RxDMA: board.DoubleCell}
	dblCS := dbl
	dblCS.Checksum = true
	sglCS := al
	sglCS.Checksum = true
	receiveFigure("Figure 3: DEC 3000/600 UDP/IP receive-side throughput",
		[]rxCurve{
			{"double-cell DMA", dbl},
			{"double-cell, UDP-CS", dblCS},
			{"single-cell DMA", al},
			{"single-cell, UDP-CS", sglCS},
		},
		"paper plateaus: double ~516 (link-limited), double+CS 438, single ~460 Mbps")
}

func figure4() {
	fmt.Println("== Figure 4: UDP/IP transmit-side throughput ==")
	var series []stats.Series
	curves := []struct {
		name string
		opt  core.Options
	}{
		{"3000/600", alOptions()},
		{"3000/600, UDP-CS", func() core.Options { o := alOptions(); o.Checksum = true; return o }()},
		{"5000/200", dsOptions()},
	}
	for _, c := range curves {
		s := stats.Series{Name: c.name}
		for _, size := range sweepSizes() {
			opt := c.opt
			opt.TxIsolated = true
			tb := core.NewTestbed(opt)
			mbps, err := tb.RunTransmitThroughput(size, msgs())
			tb.Shutdown()
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig4 %s %d: %v\n", c.name, size, err)
				continue
			}
			s.Add(float64(size), mbps)
		}
		series = append(series, s)
	}
	fmt.Println(stats.RenderFigure("Figure 4: transmit side", "message bytes", "Mbps", series))
	fmt.Println("paper: max 325 Mbps, limited by single-cell DMA TURBOchannel overhead")
}
