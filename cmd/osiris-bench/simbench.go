package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/parexp"
	"repro/internal/workload"
)

var (
	flagSimBench = flag.Bool("simbench", false, "wall-clock benchmarks of the simulation core (writes -benchout)")
	flagBenchOut = flag.String("benchout", "BENCH_simcore.json", "output path for the simbench JSON report")
	flagBenchRef = flag.String("benchbaseline", "", "optional previous simbench JSON to embed as the before column")
	flagCPUProf  = flag.String("cpuprofile", "", "write a CPU profile of the simbench workloads to this file")
	flagMemProf  = flag.String("memprofile", "", "write an allocation profile of the simbench workloads to this file")
	flagReps     = flag.Int("benchreps", 3, "repetitions per simbench workload (best wall time is reported)")
	flagAlloGate = flag.Float64("allocgate", 0, "fail (exit 1) if fanin_4x8k exceeds this many allocs per cell (0 disables; allocation counts are deterministic, unlike wall time)")
)

func init() { extraSections = append(extraSections, runSimBench) }

// simBenchResult is one workload's measurement. The wall-clock fields
// (WallSeconds, EventsPerSec, NsPerCell, AllocsPerCell) vary run to run
// with the host machine; the Check map holds the simulated results,
// which must be bit-for-bit stable for a fixed seed.
type simBenchResult struct {
	Name          string             `json:"name"`
	WallSeconds   float64            `json:"wall_seconds"`
	SimSeconds    float64            `json:"sim_seconds"`
	Events        uint64             `json:"events"`
	Cells         int64              `json:"cells"`
	Allocs        uint64             `json:"allocs"`
	EventsPerSec  float64            `json:"events_per_sec"`
	NsPerCell     float64            `json:"ns_per_cell"`
	AllocsPerCell float64            `json:"allocs_per_cell"`
	Check         map[string]float64 `json:"check"`
}

// simBenchReport is the BENCH_simcore.json schema. Baseline carries the
// same workloads measured before the event-core overhaul when a previous
// report is supplied with -benchbaseline.
type simBenchReport struct {
	reportHeader
	Baseline []simBenchResult `json:"baseline,omitempty"`
	Results  []simBenchResult `json:"results"`
}

// bestResults runs every workload -benchreps times (a fresh system each
// repetition) as parexp jobs named simbench/<workload>/rep<i>, and
// keeps, per workload, the repetition with the lowest wall time; the
// simulated quantities are deterministic, so only the wall-clock noise
// varies and the Check map is taken from the first surviving rep.
// Workloads whose reps were all filtered out by -run are omitted.
//
// Wall-clock and allocation figures are clean at -workers=1 (the
// measurement discipline the committed BENCH_simcore.json uses);
// parallel workers co-run repetitions, which inflates both, so parallel
// simbench is for smoke coverage, not for quotable numbers.
func bestResults(workloads []struct {
	name string
	fn   func() simBenchResult
}) []simBenchResult {
	reps := *flagReps
	if reps < 1 {
		reps = 1
	}
	var jobs []parexp.Job
	for _, w := range workloads {
		w := w
		for i := 0; i < reps; i++ {
			jobs = append(jobs, parexp.Job{
				Name: fmt.Sprintf("simbench/%s/rep%d", w.name, i),
				Run:  func() (any, error) { return w.fn(), nil },
			})
		}
	}
	results := runJobs(selected(jobs))
	var out []simBenchResult
	for _, w := range workloads {
		var best *simBenchResult
		for _, r := range results {
			if r.Err != nil || !strings.HasPrefix(r.Name, "simbench/"+w.name+"/") {
				continue
			}
			rep := r.Value.(simBenchResult)
			if best == nil {
				best = &rep
			} else if rep.WallSeconds < best.WallSeconds {
				rep.Check = best.Check // identical by determinism
				best = &rep
			}
		}
		if best != nil {
			out = append(out, *best)
		}
	}
	return out
}

// measure runs fn with the memory accounting bracketed, attributing the
// wall time, allocation delta, executed events, and simulated cells to
// one named workload. Setup (testbed construction) happens in the
// caller, outside the bracket, so steady-state per-cell costs dominate.
func measure(name string, fn func() (events uint64, simTime time.Duration, cells int64, check map[string]float64)) simBenchResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	events, simTime, cells, check := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	r := simBenchResult{
		Name:        name,
		WallSeconds: wall.Seconds(),
		SimSeconds:  simTime.Seconds(),
		Events:      events,
		Cells:       cells,
		Allocs:      allocs,
		Check:       check,
	}
	if wall > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
	}
	if cells > 0 {
		r.NsPerCell = float64(wall.Nanoseconds()) / float64(cells)
		r.AllocsPerCell = float64(allocs) / float64(cells)
	}
	return r
}

// benchFig3Receive measures the Figure 3 receive path: the DEC 3000/600
// double-cell DMA configuration absorbing fictitious UDP/IP traffic —
// the workload whose plateau the paper shows is link-limited, so any
// simulator overhead here directly stretches the wall clock.
func benchFig3Receive() simBenchResult {
	opt := alOptions()
	opt.Board = board.Config{RxDMA: board.DoubleCell}
	tb := core.NewTestbed(opt)
	defer tb.Shutdown()
	const msgSize, count = 65536, 32
	return measure("fig3_receive_64k", func() (uint64, time.Duration, int64, map[string]float64) {
		ev0 := tb.Events()
		mbps, err := tb.RunReceiveThroughput(msgSize, count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench fig3: %v\n", err)
		}
		st := tb.B.Board.Stats()
		return tb.Events() - ev0, time.Duration(tb.Now()), st.CellsRx, map[string]float64{
			"mbps":     mbps,
			"cells_rx": float64(st.CellsRx),
		}
	})
}

// benchFanIn measures the switched fan-in workload: 4 clients pushing
// UDP/IP messages at one server through the cell switch, paced into the
// partial-overload regime where the server's board — not the fabric —
// is the bottleneck and sheds load at its receive FIFO.
//
// The earlier form of this bench blasted all 4 clients at full rate
// with no pacing. That is sustained 4× incast: the switch's output
// queue tail-drops ~35% of cells, and because the four VCIs' cells
// interleave round-robin through the congested queue, every single
// message loses at least one cell — the committed report showed
// `delivered: 0` / `aggregate_mbps: 0` against 6538 switch drops.
// Investigation (deterministic replay across pacing configurations)
// showed the delivery accounting is correct; the workload choice made
// the check structurally zero, so it pinned nothing about the delivery
// path. The paced configuration below keeps a congestion signature
// (board FIFO drops, damaged-PDU discards) while most messages deliver
// and are verified byte for byte, so every check value carries signal:
// a regression in pacing, switching, reassembly, or delivery accounting
// moves at least one of them.
func benchFanIn() simBenchResult {
	const clients, msgSize, count = 4, 8192, 25
	cl := core.NewCluster(core.Options{Shards: *flagShards, PerCellFabric: *flagPerCell}, clients+1)
	defer cl.Shutdown()
	return measure("fanin_4x8k", func() (uint64, time.Duration, int64, map[string]float64) {
		ev0 := cl.Events()
		res, err := cl.RunFanIn(workload.FanIn{
			Clients: clients, MessageBytes: msgSize, Messages: count,
			Gap:     2 * time.Millisecond,
			Stagger: 500 * time.Microsecond,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench fanin: %v\n", err)
			return cl.Events() - ev0, time.Duration(cl.Now()), 0, nil
		}
		bs := cl.Nodes[0].Board.Stats()
		cells := res.SwitchForwarded + res.SwitchDropped
		return cl.Events() - ev0, time.Duration(cl.Now()), cells, map[string]float64{
			"delivered":        float64(res.Delivered),
			"aggregate_mbps":   res.AggregateMbps,
			"switch_forwarded": float64(res.SwitchForwarded),
			"switch_dropped":   float64(res.SwitchDropped),
			"fifo_dropped":     float64(bs.CellsDroppedFIFO),
			"pdus_dropped":     float64(bs.PDUsDropped),
		}
	})
}

func runSimBench() {
	if !*flagSimBench {
		return
	}
	fmt.Println("== Simulator core wall-clock benchmarks ==")
	if *flagMemProf != "" {
		// Per-cell allocation counts are small multiplied by many; the
		// default 512 KB sampling rate would see a handful of samples
		// for the whole run. Record every allocation when profiling —
		// wall-clock numbers from a profiled run are not quotable anyway.
		runtime.MemProfileRate = 1
	}
	if *flagCPUProf != "" {
		f, err := os.Create(*flagCPUProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	report := simBenchReport{
		reportHeader: newReportHeader("osiris-simbench/1"),
		Results: bestResults([]struct {
			name string
			fn   func() simBenchResult
		}{
			{"fig3_receive_64k", benchFig3Receive},
			{"fanin_4x8k", benchFanIn},
		}),
	}

	if *flagBenchRef != "" {
		data, err := os.ReadFile(*flagBenchRef)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: benchbaseline: %v\n", err)
			os.Exit(1)
		}
		var prev simBenchReport
		if err := json.Unmarshal(data, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: benchbaseline: %v\n", err)
			os.Exit(1)
		}
		report.Baseline = prev.Results
	}

	if *flagMemProf != "" {
		f, err := os.Create(*flagMemProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: memprofile: %v\n", err)
		}
		f.Close()
	}

	for _, r := range report.Results {
		fmt.Printf("%-18s %8.0f events/s  %7.0f ns/cell  %6.2f allocs/cell  (sim %v in wall %v)\n",
			r.Name, r.EventsPerSec, r.NsPerCell, r.AllocsPerCell,
			time.Duration(r.SimSeconds*1e9).Round(time.Microsecond),
			time.Duration(r.WallSeconds*1e9).Round(time.Microsecond))
	}

	writeReport("simbench", *flagBenchOut, report)

	if *flagAlloGate > 0 {
		for _, r := range report.Results {
			if r.Name != "fanin_4x8k" {
				continue
			}
			if r.AllocsPerCell > *flagAlloGate {
				fmt.Fprintf(os.Stderr, "simbench: allocgate: %s at %.3f allocs/cell exceeds the %.3f gate\n",
					r.Name, r.AllocsPerCell, *flagAlloGate)
				os.Exit(1)
			}
			fmt.Printf("allocgate: %s %.3f allocs/cell within %.3f\n", r.Name, r.AllocsPerCell, *flagAlloGate)
		}
	}
}
