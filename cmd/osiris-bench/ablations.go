package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dpm"
	"repro/internal/driver"
	"repro/internal/fbuf"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

var flagAblations = flag.Bool("ablations", false, "run the design-choice ablation experiments")

func init() { extraSections = append(extraSections, runAblations) }

// extraSections lets auxiliary files contribute output sections.
var extraSections []func()

func runAblations() {
	if !(*flagAblations || *flagAll) {
		return
	}
	fmt.Println("== Ablations (design choices of §2-§3) ==")
	tab := stats.Table{Cols: []string{"experiment", "variant", "result"}}

	// §2.1.1 lock-free vs spin-lock rings.
	ringTime := func(spin bool) time.Duration {
		e := sim.NewEngine(1)
		d := dpm.New(e, bus.New(e, bus.Config{}))
		const ops = 400
		var push func(p *sim.Proc) bool
		var pop func(p *sim.Proc) bool
		if spin {
			r := queue.NewSpinRing(d, dpm.SendLock, 0, 16)
			push = func(p *sim.Proc) bool { return r.TryPush(p, dpm.Host, queue.Desc{}) }
			pop = func(p *sim.Proc) bool { _, ok := r.TryPop(p, dpm.Board); return ok }
		} else {
			r := queue.NewRing(d, 0, 16)
			push = func(p *sim.Proc) bool { return r.TryPush(p, dpm.Host, queue.Desc{}) }
			pop = func(p *sim.Proc) bool { _, ok := r.TryPop(p, dpm.Board); return ok }
		}
		done := 0
		e.Go("host", func(p *sim.Proc) {
			for i := 0; i < ops; {
				if push(p) {
					i++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		e.Go("board", func(p *sim.Proc) {
			for done < ops {
				if pop(p) {
					done++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		end := e.Run()
		e.Shutdown()
		return time.Duration(end) / ops
	}
	tab.AddRow("§2.1.1 host/board queue", "lock-free 1R1W", fmt.Sprintf("%v/op", ringTime(false)))
	tab.AddRow("", "spin-lock", fmt.Sprintf("%v/op", ringTime(true)))

	// §2.3 lazy vs eager invalidation (16 KB receive on the DECstation).
	inval := func(policy driver.CachePolicy) float64 {
		opt := dsOptions()
		opt.Driver = driver.Config{Cache: policy}
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunReceiveThroughput(16384, 8)
		if err != nil {
			return 0
		}
		return mbps
	}
	tab.AddRow("§2.3 cache invalidation", "lazy", fmt.Sprintf("%.0f Mbps", inval(driver.CacheLazy)))
	tab.AddRow("", "eager", fmt.Sprintf("%.0f Mbps", inval(driver.CacheEager)))

	// §2.4 wiring.
	wire := func(slow bool) time.Duration {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC5000_200(), 1024)
		var cost time.Duration
		e.Go("w", func(p *sim.Proc) {
			start := p.Now()
			h.WirePages(p, 4, slow)
			cost = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return cost
	}
	tab.AddRow("§2.4 wiring (4 pages)", "low-level primitive", wire(false).String())
	tab.AddRow("", "standard service", wire(true).String())

	// §2.6 skew vs reassembly strategies (delivery intact over skewed links).
	skew := atm.ConstantSkew{PerLink: []time.Duration{0, 9 * time.Microsecond, 3 * time.Microsecond, 14 * time.Microsecond}}
	strat := func(s board.ReassemblyStrategy) string {
		opt := alOptions()
		opt.Board = board.Config{Strategy: s}
		opt.Link.Skew = skew
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		tx, err := tb.A.Raw.Open(proto.RawOpen{VCI: 61})
		if err != nil {
			return "error"
		}
		rx, err := tb.B.Raw.Open(proto.RawOpen{VCI: 61})
		if err != nil {
			return "error"
		}
		data := workload.Payload(8000, 5)
		verdict := "loses"
		rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
			b, _ := m.Bytes()
			if string(b) == string(data) {
				verdict = "correct"
			} else {
				verdict = "CORRUPTS"
			}
		})
		tb.Eng.Go("s", func(p *sim.Proc) {
			m, _ := msg.FromBytes(tb.A.Host.Kernel, data)
			tx.Push(p, m)
			tb.A.Drv.Flush(p)
		})
		tb.Eng.RunUntil(tb.Eng.Now().Add(50 * time.Millisecond))
		return verdict
	}
	tab.AddRow("§2.6 reassembly under skew", "four-aal5", strat(board.FourAAL5))
	tab.AddRow("", "seqnum", strat(board.SeqNum))
	tab.AddRow("", "arrival-order", strat(board.ArrivalOrder))

	// §3.1 fbuf transfer cost.
	fb := func(cached bool) time.Duration {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC5000_200(), 2048)
		m := fbuf.NewManager(h, 0)
		a := fbuf.NewDomain(h, "a")
		bdom := fbuf.NewDomain(h, "b")
		var cost time.Duration
		e.Go("x", func(p *sim.Proc) {
			var f *fbuf.Fbuf
			var err error
			if cached {
				if err = m.DefinePath(p, 7, []*fbuf.Domain{a, bdom}, 1, 16384); err != nil {
					return
				}
				f, err = m.Alloc(p, 7, a, 16384)
			} else {
				f, err = m.AllocUncached(p, a, 16384)
			}
			if err != nil {
				return
			}
			start := p.Now()
			f.Transfer(p, a, bdom)
			cost = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return cost
	}
	tab.AddRow("§3.1 fbuf transfer (16 KB)", "cached", fb(true).String())
	tab.AddRow("", "uncached", fb(false).String())

	// §2.3 premise: loss + reliability (RDP over a lossy network).
	lossy := func() string {
		opt := alOptions()
		opt.Link.LossRate = 0.01
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		tx, err := tb.A.RDP.Open(proto.RDPOpen{Remote: 2, VCI: 60, Window: 4})
		if err != nil {
			return "error"
		}
		rxs, err := tb.B.RDP.Open(proto.RDPOpen{Remote: 1, VCI: 60, Window: 4})
		if err != nil {
			return "error"
		}
		got := 0
		rxs.SetHandler(func(p *sim.Proc, m *msg.Message) { got++ })
		tb.Eng.Go("s", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				mm, _ := msg.FromBytes(tb.A.Host.Kernel, workload.Payload(3000, byte(i)))
				tx.Push(p, mm)
			}
		})
		tb.Eng.RunUntil(tb.Eng.Now().Add(time.Second))
		return fmt.Sprintf("%d/10 delivered, %d retransmits", got, tb.A.RDP.Stats().Retransmits)
	}
	tab.AddRow("§2.3 1% cell loss + RDP", "go-back-N", lossy())

	fmt.Println(tab.Render())
}
