package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dpm"
	"repro/internal/driver"
	"repro/internal/fbuf"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/parexp"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

var flagAblations = flag.Bool("ablations", false, "run the design-choice ablation experiments")

func init() { extraSections = append(extraSections, runAblations) }

// extraSections lets auxiliary files contribute output sections.
var extraSections []func()

// ringTime measures §2.1.1's queue-discipline ablation: one push/pop
// pair over a lock-free or a spin-lock host/board ring.
func ringTime(spin bool) time.Duration {
	e := sim.NewEngine(1)
	d := dpm.New(e, bus.New(e, bus.Config{}))
	const ops = 400
	var push func(p *sim.Proc) bool
	var pop func(p *sim.Proc) bool
	if spin {
		r := queue.NewSpinRing(d, dpm.SendLock, 0, 16)
		push = func(p *sim.Proc) bool { return r.TryPush(p, dpm.Host, queue.Desc{}) }
		pop = func(p *sim.Proc) bool { _, ok := r.TryPop(p, dpm.Board); return ok }
	} else {
		r := queue.NewRing(d, 0, 16)
		push = func(p *sim.Proc) bool { return r.TryPush(p, dpm.Host, queue.Desc{}) }
		pop = func(p *sim.Proc) bool { _, ok := r.TryPop(p, dpm.Board); return ok }
	}
	done := 0
	e.Go("host", func(p *sim.Proc) {
		for i := 0; i < ops; {
			if push(p) {
				i++
			} else {
				p.Sleep(200 * time.Nanosecond)
			}
		}
	})
	e.Go("board", func(p *sim.Proc) {
		for done < ops {
			if pop(p) {
				done++
			} else {
				p.Sleep(200 * time.Nanosecond)
			}
		}
	})
	end := e.Run()
	e.Shutdown()
	return time.Duration(end) / ops
}

// inval measures §2.3's cache-invalidation ablation: a 16 KB receive on
// the DECstation under the given policy.
func inval(policy driver.CachePolicy) float64 {
	opt := dsOptions()
	opt.Driver = driver.Config{Cache: policy}
	tb := core.NewTestbed(opt)
	defer tb.Shutdown()
	mbps, err := tb.RunReceiveThroughput(16384, 8)
	if err != nil {
		return 0
	}
	return mbps
}

// wire measures §2.4's page-wiring ablation.
func wire(slow bool) time.Duration {
	e := sim.NewEngine(1)
	h := hostsim.New(e, hostsim.DEC5000_200(), 1024)
	var cost time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		h.WirePages(p, 4, slow)
		cost = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	return cost
}

// strat measures §2.6: delivery correctness under link skew for one
// reassembly strategy.
func strat(s board.ReassemblyStrategy) string {
	skew := atm.ConstantSkew{PerLink: []time.Duration{0, 9 * time.Microsecond, 3 * time.Microsecond, 14 * time.Microsecond}}
	opt := alOptions()
	opt.Board = board.Config{Strategy: s}
	opt.Link.Skew = skew
	tb := core.NewTestbed(opt)
	defer tb.Shutdown()
	tx, err := tb.A.Raw.Open(proto.RawOpen{VCI: 61})
	if err != nil {
		return "error"
	}
	rx, err := tb.B.Raw.Open(proto.RawOpen{VCI: 61})
	if err != nil {
		return "error"
	}
	data := workload.Payload(8000, 5)
	verdict := "loses"
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		if string(b) == string(data) {
			verdict = "correct"
		} else {
			verdict = "CORRUPTS"
		}
	})
	tb.Go(0, "s", func(p *sim.Proc) {
		m, _ := msg.FromBytes(tb.A.Host.Kernel, data)
		tx.Push(p, m)
		tb.A.Drv.Flush(p)
	})
	tb.RunUntil(tb.Now().Add(50 * time.Millisecond))
	return verdict
}

// fb measures §3.1's fbuf transfer cost, cached vs uncached path.
func fb(cached bool) time.Duration {
	e := sim.NewEngine(1)
	h := hostsim.New(e, hostsim.DEC5000_200(), 2048)
	m := fbuf.NewManager(h, 0)
	a := fbuf.NewDomain(h, "a")
	bdom := fbuf.NewDomain(h, "b")
	var cost time.Duration
	e.Go("x", func(p *sim.Proc) {
		var f *fbuf.Fbuf
		var err error
		if cached {
			if err = m.DefinePath(p, 7, []*fbuf.Domain{a, bdom}, 1, 16384); err != nil {
				return
			}
			f, err = m.Alloc(p, 7, a, 16384)
		} else {
			f, err = m.AllocUncached(p, a, 16384)
		}
		if err != nil {
			return
		}
		start := p.Now()
		f.Transfer(p, a, bdom)
		cost = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	return cost
}

// lossy measures the §2.3 premise: RDP delivery over a 1%-lossy link.
// LossRate draws from the shared engine RNG per cell, which is
// partition-dependent, so this ablation always runs on the serial
// engine regardless of -shards.
func lossy() string {
	opt := alOptions()
	opt.Link.LossRate = 0.01
	opt.Shards = 0
	tb := core.NewTestbed(opt)
	defer tb.Shutdown()
	tx, err := tb.A.RDP.Open(proto.RDPOpen{Remote: 2, VCI: 60, Window: 4})
	if err != nil {
		return "error"
	}
	rxs, err := tb.B.RDP.Open(proto.RDPOpen{Remote: 1, VCI: 60, Window: 4})
	if err != nil {
		return "error"
	}
	got := 0
	rxs.SetHandler(func(p *sim.Proc, m *msg.Message) { got++ })
	tb.Go(0, "s", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			mm, _ := msg.FromBytes(tb.A.Host.Kernel, workload.Payload(3000, byte(i)))
			tx.Push(p, mm)
		}
	})
	tb.RunUntil(tb.Now().Add(time.Second))
	return fmt.Sprintf("%d/10 delivered, %d retransmits", got, tb.A.RDP.Stats().Retransmits)
}

func runAblations() {
	if !(*flagAblations || *flagAll) {
		return
	}

	// Each variant is one independent simulation; the experiment/variant
	// labels reproduce the table layout (the experiment label only on its
	// first variant's row).
	cells := []struct {
		job        string // ablations/<slug>
		experiment string
		variant    string
		run        func() string
	}{
		{"ring/lockfree", "§2.1.1 host/board queue", "lock-free 1R1W", func() string { return fmt.Sprintf("%v/op", ringTime(false)) }},
		{"ring/spinlock", "", "spin-lock", func() string { return fmt.Sprintf("%v/op", ringTime(true)) }},
		{"inval/lazy", "§2.3 cache invalidation", "lazy", func() string { return fmt.Sprintf("%.0f Mbps", inval(driver.CacheLazy)) }},
		{"inval/eager", "", "eager", func() string { return fmt.Sprintf("%.0f Mbps", inval(driver.CacheEager)) }},
		{"wiring/primitive", "§2.4 wiring (4 pages)", "low-level primitive", func() string { return wire(false).String() }},
		{"wiring/standard", "", "standard service", func() string { return wire(true).String() }},
		{"skew/four-aal5", "§2.6 reassembly under skew", "four-aal5", func() string { return strat(board.FourAAL5) }},
		{"skew/seqnum", "", "seqnum", func() string { return strat(board.SeqNum) }},
		{"skew/arrival-order", "", "arrival-order", func() string { return strat(board.ArrivalOrder) }},
		{"fbuf/cached", "§3.1 fbuf transfer (16 KB)", "cached", func() string { return fb(true).String() }},
		{"fbuf/uncached", "", "uncached", func() string { return fb(false).String() }},
		{"rdp-loss/go-back-n", "§2.3 1% cell loss + RDP", "go-back-N", func() string { return lossy() }},
	}
	var jobs []parexp.Job
	for _, c := range cells {
		c := c
		jobs = append(jobs, parexp.Job{
			Name: "ablations/" + c.job,
			Run:  func() (any, error) { return c.run(), nil },
		})
	}
	jobs = selected(jobs)
	if len(jobs) == 0 {
		return
	}
	fmt.Println("== Ablations (design choices of §2-§3) ==")
	results := runJobs(jobs)
	byName := map[string]parexp.Result{}
	for _, r := range results {
		byName[r.Name] = r
	}

	tab := stats.Table{Cols: []string{"experiment", "variant", "result"}}
	for _, c := range cells {
		r, ok := byName["ablations/"+c.job]
		if !ok || r.Err != nil {
			continue
		}
		tab.AddRow(c.experiment, c.variant, r.Value.(string))
	}
	fmt.Println(tab.Render())
}
