package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/stats"
)

var (
	flagFaults     = flag.Bool("faults", false, "fault plane: RDP goodput/retransmit/reclaim curves under burst cell loss")
	flagFaultsOut  = flag.String("faultsout", "BENCH_faults.json", "output path for the loss-sweep JSON report")
	flagFaultsSeed = flag.Int64("faultsseed", 0, "simulation seed for the loss sweep (0 = the default seed)")
)

func init() { extraSections = append(extraSections, runFaults) }

// runFaults sweeps burst cell-loss rates over the two-host testbed with
// the full fault mix on (Gilbert–Elliott loss plus a little corruption
// and duplication) and the degradation machinery armed (reassembly
// timeouts, CRC check, duplicate filter, RDP backoff with a retry cap).
// The report is a fixed function of the seed: running it twice writes
// byte-identical JSON, which is the reproducibility contract the
// determinism tests enforce.
func runFaults() {
	if !(*flagFaults || *flagAll) {
		return
	}
	cfg := core.LossSweep{
		CorruptProb: 0.0005,
		DupProb:     0.0005,
		Seed:        *flagFaultsSeed,
		Workers:     workers(),
		// Side-by-side recovery comparison: every rate reruns over the
		// adaptive transport with the same seed and fault stream.
		AdaptiveColumn: true,
	}
	if *flagQuick {
		cfg.Rates = []float64{0, 0.001, 0.01, 0.05}
		cfg.Messages = 16
	}
	// The per-rate jobs run inside core.RunLossSweep (named
	// faults/rate=<r>), so apply the -run filter to the rate grid here;
	// a filter that matches no rate skips the whole section. Note a
	// filtered run writes the JSON artifact with only the selected
	// rates — a debugging aid, not a reference report.
	if runFilter != nil {
		rates := cfg.Rates
		if rates == nil {
			rates = core.DefaultLossRates()
		}
		var kept []float64
		for _, r := range rates {
			if runFilter.MatchString(fmt.Sprintf("faults/rate=%g", r)) {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			return
		}
		cfg.Rates = kept
	}
	fmt.Println("== Fault plane: RDP delivery under burst cell loss ==")
	res, err := core.RunLossSweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: %v\n", err)
		os.Exit(1)
	}

	tab := stats.Table{Cols: []string{
		"loss", "delivered", "goodput Mbps", "retx", "timeouts",
		"cells lost", "reasm TO", "aborts", "CRC drop", "dup rej",
	}}
	for _, pt := range res.Points {
		tab.AddRow(
			fmt.Sprintf("%.3f", pt.MeanLoss),
			fmt.Sprintf("%d/%d", pt.Delivered, pt.Sent),
			fmt.Sprintf("%.1f", pt.GoodputMbps),
			fmt.Sprint(pt.Retransmits),
			fmt.Sprint(pt.Timeouts),
			fmt.Sprint(pt.CellsLost),
			fmt.Sprint(pt.PDUsTimedOut),
			fmt.Sprint(pt.RxAborted),
			fmt.Sprint(pt.PDUsCRCDropped),
			fmt.Sprint(pt.DupCellsRej),
		)
	}
	fmt.Println(tab.Render())

	// Recovery comparison: fixed 2 ms timer with exponential backoff vs
	// the RTT-estimated adaptive timer, same seeds and fault streams.
	atab := stats.Table{
		Title: "fixed-timer vs adaptive (RTT-estimated) recovery",
		Cols: []string{
			"loss", "fixed goodput", "fixed retx", "fixed TO",
			"adaptive goodput", "adaptive retx", "adaptive TO", "fast retx", "rtt samples",
		},
	}
	for _, pt := range res.Points {
		if pt.Adaptive == nil {
			continue
		}
		atab.AddRow(
			fmt.Sprintf("%.3f", pt.MeanLoss),
			fmt.Sprintf("%.1f", pt.GoodputMbps),
			fmt.Sprint(pt.Retransmits),
			fmt.Sprint(pt.Timeouts),
			fmt.Sprintf("%.1f", pt.Adaptive.GoodputMbps),
			fmt.Sprint(pt.Adaptive.Retransmits),
			fmt.Sprint(pt.Adaptive.Timeouts),
			fmt.Sprint(pt.Adaptive.FastRetx),
			fmt.Sprint(pt.Adaptive.RTTSamples),
		)
	}
	fmt.Println(atab.Render())
	fmt.Println("every delivery is verified byte for byte; loss surfaces as retransmission effort, never corruption")

	// No reportHeader here: this artifact must be byte-identical run to
	// run for a fixed seed (CI diffs it across worker counts), so it
	// carries no timestamp.
	report := struct {
		Schema string `json:"schema"`
		*core.LossSweepResult
	}{"osiris-faults/1", res}
	writeReport("faults", *flagFaultsOut, report)
}
