package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/parexp"
)

var (
	flagParBench    = flag.Bool("parbench", false, "measure the parallel runner's scaling over the Figure 3 sweep (writes -parbenchout)")
	flagParBenchOut = flag.String("parbenchout", "BENCH_parallel.json", "output path for the scaling JSON report")
	flagParWorkers  = flag.String("parworkers", "1,2,4,8", "comma-separated worker counts to measure")
)

func init() { extraSections = append(extraSections, runParBench) }

// parBenchPoint is one worker count's measurement over the fixed sweep.
type parBenchPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup"`
	Efficiency  float64 `json:"efficiency"`
	JobP50Ms    float64 `json:"job_p50_ms"`
	JobP95Ms    float64 `json:"job_p95_ms"`
}

// parBenchReport is the BENCH_parallel.json schema. Fingerprint hashes
// every job's simulated result in canonical order; Invariant records
// whether all measured worker counts produced the same fingerprint —
// the determinism contract, checked on every run of this section.
type parBenchReport struct {
	reportHeader
	NumCPU      int             `json:"num_cpu"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Workload    string          `json:"workload"`
	Jobs        int             `json:"jobs"`
	Fingerprint string          `json:"fingerprint"`
	Invariant   bool            `json:"invariant"`
	Points      []parBenchPoint `json:"points"`
}

// fingerprintResults hashes the canonical-order (name, value, error)
// triples — the deterministic payload, excluding wall/alloc noise.
func fingerprintResults(results []parexp.Result) string {
	h := sha256.New()
	for _, r := range results {
		fmt.Fprintf(h, "%s|%v|%v\n", r.Name, r.Value, r.Err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runParBench runs the full Figure 3 receive sweep once per requested
// worker count and reports wall time, speedup and efficiency relative
// to the serial (-workers=1) run, and per-job latency percentiles. The
// sweep jobs are the real evaluation workload, not a synthetic load, so
// the curve predicts how much -workers buys `osiris-bench -all`.
//
// Speedup is bounded by min(workers, GOMAXPROCS): on a single-CPU host
// every point measures ~1.0× (scheduling overhead aside), which is why
// the report records num_cpu and gomaxprocs alongside the points.
func runParBench() {
	if !*flagParBench {
		return
	}
	fmt.Println("== Parallel runner scaling (Figure 3 sweep) ==")

	var counts []int
	for _, f := range strings.Split(*flagParWorkers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "parbench: bad -parworkers entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	jobs := receiveJobs("fig3", fig3Curves(), sweepSizes())
	report := parBenchReport{
		reportHeader: newReportHeader("osiris-parbench/1"),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workload:     "fig3 receive sweep",
		Jobs:         len(jobs),
		Invariant:    true,
	}

	var serialWall float64
	for _, w := range counts {
		start := time.Now()
		results := parexp.Run(w, jobs)
		wall := time.Since(start).Seconds()
		fp := fingerprintResults(results)
		if report.Fingerprint == "" {
			report.Fingerprint = fp
		} else if fp != report.Fingerprint {
			report.Invariant = false
			fmt.Fprintf(os.Stderr, "parbench: DETERMINISM VIOLATION at workers=%d: %s != %s\n",
				w, fp, report.Fingerprint)
		}
		if serialWall == 0 {
			serialWall = wall
		}
		walls := parexp.Walls(results)
		pt := parBenchPoint{
			Workers:     w,
			WallSeconds: wall,
			Speedup:     serialWall / wall,
			Efficiency:  serialWall / wall / float64(w),
			JobP50Ms:    float64(parexp.Percentile(walls, 50).Microseconds()) / 1e3,
			JobP95Ms:    float64(parexp.Percentile(walls, 95).Microseconds()) / 1e3,
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("workers=%-2d  wall %7.3fs  speedup %5.2fx  efficiency %4.0f%%  job p50 %7.1fms  p95 %7.1fms\n",
			w, pt.WallSeconds, pt.Speedup, pt.Efficiency*100, pt.JobP50Ms, pt.JobP95Ms)
	}
	if report.Invariant {
		fmt.Printf("results byte-identical across worker counts (fingerprint %.12s…)\n", report.Fingerprint)
	}

	writeReport("parbench", *flagParBenchOut, report)
}
