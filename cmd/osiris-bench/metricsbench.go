package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	flagMetrics    = flag.Bool("metrics", false, "run instrumented experiments and write the canonical telemetry snapshot (-metricsout)")
	flagMetricsOut = flag.String("metricsout", "BENCH_metrics.json", "output path for the telemetry snapshot JSON")
)

func init() { extraSections = append(extraSections, runMetricsBench) }

// metricsExperiment is one instrumented run's canonical snapshot. Only
// simulated-behaviour metrics appear (diagnostics are excluded), so the
// whole document is byte-identical per seed at any -shards/-workers
// count — CI diffs it across both.
type metricsExperiment struct {
	Name    string          `json:"name"`
	Metrics []metrics.Value `json:"metrics"`
}

// metricsReport is the BENCH_metrics.json schema. Deliberately no
// reportHeader: the artifact is byte-compared run to run, and the
// header's timestamp would break the diff (same rule as
// BENCH_faults.json).
type metricsReport struct {
	Schema      string              `json:"schema"`
	Experiments []metricsExperiment `json:"experiments"`
}

// metricsFanIn instruments the paced 4×8 KB fan-in of -simbench: every
// board, driver, RDP, and fabric port registers its families, plus the
// end-to-end delivery-latency sketch. The paced regime keeps a real
// congestion signature (server-port queue drops, FIFO sheds) while most
// messages deliver, so the snapshot exercises every metric kind.
func metricsFanIn() metricsExperiment {
	const clients, msgSize, count = 4, 8192, 25
	reg := metrics.New()
	cl := core.NewCluster(core.Options{Shards: *flagShards, Metrics: reg, PerCellFabric: *flagPerCell}, clients+1)
	defer cl.Shutdown()
	res, err := cl.RunFanIn(workload.FanIn{
		Clients: clients, MessageBytes: msgSize, Messages: count,
		Gap:     2 * time.Millisecond,
		Stagger: 500 * time.Microsecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics fanin: %v\n", err)
		os.Exit(1)
	}
	// Print the canonical count, not reg.Len(): diagnostic entries vary
	// with the shard count and stdout is diffed across it too.
	snap := reg.Snapshot(false)
	fmt.Printf("fanin_4x8k: delivered %d/%d, %d canonical metrics\n",
		res.Delivered, res.Sent, len(snap))
	return metricsExperiment{Name: "fanin_4x8k", Metrics: snap}
}

// metricsFig3 instruments the Figure 3 receive path (DEC 3000/600,
// double-cell DMA, 64 KB messages): the board's FIFO/reassembly
// families under the link-limited workload the paper centers on.
func metricsFig3() metricsExperiment {
	reg := metrics.New()
	opt := alOptions()
	opt.Board = board.Config{RxDMA: board.DoubleCell}
	opt.Metrics = reg
	tb := core.NewTestbed(opt)
	defer tb.Shutdown()
	const msgSize, count = 65536, 16
	mbps, err := tb.RunReceiveThroughput(msgSize, count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics fig3: %v\n", err)
		os.Exit(1)
	}
	snap := reg.Snapshot(false)
	fmt.Printf("fig3_receive_64k: %.1f Mbps, %d canonical metrics\n", mbps, len(snap))
	return metricsExperiment{Name: "fig3_receive_64k", Metrics: snap}
}

// headline renders the metrics whose name matches one of the prefixes —
// the table EXPERIMENTS.md quotes.
func headline(exp metricsExperiment, prefixes ...string) string {
	tab := stats.Table{Cols: []string{"metric", "kind", "value"}}
	for _, v := range exp.Metrics {
		keep := false
		for _, p := range prefixes {
			if strings.HasPrefix(v.Name, p) {
				keep = true
				break
			}
		}
		if !keep {
			continue
		}
		val := fmt.Sprint(v.Value)
		if v.Kind == "quantile" {
			parts := make([]string, 0, len(v.Quantiles))
			for _, q := range v.Quantiles {
				parts = append(parts, fmt.Sprintf("p%02.0f=%.1f", q.Q*100, q.V))
			}
			val = fmt.Sprintf("n=%d %s", v.Count, strings.Join(parts, " "))
		}
		tab.AddRow(v.Name, v.Kind, val)
	}
	return tab.Render()
}

func runMetricsBench() {
	if !*flagMetrics {
		return
	}
	fmt.Println("== Telemetry snapshots (canonical, seed-stable) ==")
	report := metricsReport{
		Schema:      "osiris-metrics/1",
		Experiments: []metricsExperiment{metricsFanIn(), metricsFig3()},
	}
	fmt.Println(headline(report.Experiments[0], "fabric/port0/", "fanin/", "n0/board/rx_fifo"))
	writeReport("metrics", *flagMetricsOut, report)
}
