package main

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/parexp"
	"repro/internal/stats"
)

var (
	flagTenants    = flag.Bool("tenants", false, "multi-tenant plane: virtual-ADC scale-out sweep with churn, misbehaving-tenant isolation smoke, demux allocgate")
	flagTenantsOut = flag.String("tenantsout", "BENCH_tenants.json", "output path for the tenants JSON report")
)

func init() { extraSections = append(extraSections, runTenants) }

// tenantsScenario names one multi-tenant configuration together with its
// full result. Everything in it derives from simulated time and
// deterministic counters, so CI diffs the report across runs and shard
// counts byte for byte.
type tenantsScenario struct {
	Name      string              `json:"name"`
	Churn     int                 `json:"churn"`
	FbufPaths int                 `json:"fbuf_paths"`
	Result    *core.TenantsResult `json:"result"`
}

// tenantsDemux is the VCI-demux microbenchmark: the open-addressed
// receive table with the full sweep's tenant count bound. Allocation
// counts are deterministic (the allocgate pins them at zero); wall time
// is not, so it rides under a wall_ key that CI strips before diffing.
type tenantsDemux struct {
	BoundVCIs     int     `json:"bound_vcis"`
	LookupsPerRep int     `json:"lookups_per_rep"`
	AllocsPerCell float64 `json:"allocs_per_cell"`
	WallNsPerCell float64 `json:"wall_ns_per_cell"`
}

// tenantsScaling records the sweep's per-PDU cost growth from its first
// to its last point; the smoke gate requires it to stay well under
// linear in the tenant count.
type tenantsScaling struct {
	FirstTenants int     `json:"first_tenants"`
	LastTenants  int     `json:"last_tenants"`
	PerPDURatio  float64 `json:"per_pdu_ratio"`
}

func tenantCounts() []int {
	if *flagQuick {
		return []int{8, 64, 256}
	}
	return []int{8, 64, 256, 1024}
}

// runTenants drives the multi-tenant plane in three parts.
//
// Sweep: 8 → 1024 concurrent virtual-ADC tenants (far past the
// adaptor's 15 queue-page pairs) with connection churn running
// alongside, all PDUs verified at the receiver. The smoke gate requires
// zero shortfall at every point and per-PDU cost growth well under
// linear in the tenant count.
//
// Isolation: the seeded misbehaving-tenant scenario — a full-blast
// sender paired with a never-reaping receiver, sharing the adaptor with
// paced innocents. Every innocent must still land ≥90% of its PDUs and
// the hog must show board-level drops, or the run exits nonzero.
//
// Demux: the open-addressed VCI table with 1024 tenants bound,
// measured directly. Allocations per cell must be exactly zero (the
// allocgate); wall ns/cell is reported under a wall_ JSON key so CI can
// strip it before diffing the artifact.
func runTenants() {
	if !(*flagTenants || *flagAll) {
		return
	}

	type spec struct {
		name string
		w    core.Tenants
	}
	churn := 32
	if *flagQuick {
		churn = 16
	}
	counts := tenantCounts()
	var specs []spec
	for _, n := range counts {
		specs = append(specs, spec{
			name: fmt.Sprintf("tenants/sweep/%d", n),
			w:    core.Tenants{Tenants: n, PDUs: 2, PDUBytes: 1024, Churn: churn},
		})
	}
	hogName := "tenants/hog/32"
	specs = append(specs, spec{
		name: hogName,
		w:    core.Tenants{Tenants: 32, PDUs: 4, PDUBytes: 1024, Misbehave: true},
	})

	var jobs []parexp.Job
	for _, sp := range specs {
		sp := sp
		jobs = append(jobs, parexp.Job{
			Name: sp.name,
			Seed: core.DefaultSeed,
			// The big tenant counts dominate; start them first.
			Cost: float64(sp.w.Tenants),
			Run: func() (any, error) {
				opt := core.Options{Shards: *flagShards, PerCellFabric: *flagPerCell}
				return core.RunTenants(opt, sp.w)
			},
		})
	}
	jobs = selected(jobs)
	if len(jobs) == 0 {
		return
	}

	fmt.Println("== Multi-tenant plane: virtual-ADC scale-out, fairness, demux ==")
	byName := map[string]*core.TenantsResult{}
	for _, r := range runJobs(jobs) {
		if r.Err != nil {
			os.Exit(1)
		}
		byName[r.Name] = r.Value.(*core.TenantsResult)
	}

	var smoke string
	fail := func(format string, args ...any) {
		if smoke == "" {
			smoke = fmt.Sprintf(format, args...)
		}
	}

	// Sweep table: per-PDU cost and cache behavior vs tenant count.
	tab := stats.Table{
		Title: fmt.Sprintf("virtual-ADC scale-out (2×1KB PDUs/tenant, %d churn cycles)", churn),
		Cols: []string{"tenants", "delivered", "churn", "mux ch", "VCIs",
			"per-PDU µs", "goodput Mbps", "fbuf hit", "fbuf miss", "evict"},
	}
	for _, n := range counts {
		res := byName[fmt.Sprintf("tenants/sweep/%d", n)]
		if res == nil {
			continue
		}
		tab.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%d/%d", res.Delivered, res.Sent),
			fmt.Sprintf("%d/%d", res.ChurnDelivered, res.ChurnCycles),
			fmt.Sprint(res.MuxChannels),
			fmt.Sprint(res.PeakBoundVCIs),
			fmt.Sprintf("%.1f", res.PerPDUCost.Seconds()*1e6),
			fmt.Sprintf("%.1f", res.GoodputMbps),
			fmt.Sprint(res.FbufHits),
			fmt.Sprint(res.FbufMisses),
			fmt.Sprint(res.FbufEvictions))
		if res.Shortfall != 0 {
			fail("tenants: sweep point %d lost %d PDUs", n, res.Shortfall)
		}
		if res.Violations != 0 {
			fail("tenants: sweep point %d raised %d protection violations", n, res.Violations)
		}
	}
	fmt.Println(tab.Render())

	// Isolation table: the misbehaving tenant against the fairness
	// mechanisms (DRR transmit quantum, per-channel FIFO quota,
	// receive-ring drop grace).
	var scaling *tenantsScaling
	first := byName[fmt.Sprintf("tenants/sweep/%d", counts[0])]
	last := byName[fmt.Sprintf("tenants/sweep/%d", counts[len(counts)-1])]
	if first != nil && last != nil && first.PerPDUCost > 0 {
		scaling = &tenantsScaling{
			FirstTenants: first.Tenants,
			LastTenants:  last.Tenants,
			PerPDURatio:  float64(last.PerPDUCost) / float64(first.PerPDUCost),
		}
		scale := float64(last.Tenants) / float64(first.Tenants)
		fmt.Printf("per-PDU cost %d→%d tenants: ×%.2f (linear would be ×%.0f)\n",
			first.Tenants, last.Tenants, scaling.PerPDURatio, scale)
		// Sub-linear bar with margin: the multiplexing cost per PDU may
		// not grow past half the tenant-count ratio.
		if !(scaling.PerPDURatio*2 < scale) {
			fail("tenants: per-PDU cost grew ×%.2f over a ×%.0f tenant scale-out; demux/mux cost is not sub-linear",
				scaling.PerPDURatio, scale)
		}
	}

	if hog := byName[hogName]; hog != nil {
		htab := stats.Table{
			Title: "misbehaving tenant: full-blast sender, never-reaping receiver, 32 paced innocents",
			Cols: []string{"min delivered", "isolated", "hog sent",
				"quota drops", "ring drops", "violations"},
		}
		htab.AddRow(fmt.Sprintf("%d/%d", hog.MinDelivered, hog.PDUs),
			fmt.Sprint(hog.Isolated),
			fmt.Sprint(hog.HogSent),
			fmt.Sprint(hog.QuotaDropped),
			fmt.Sprint(hog.RingDropped),
			fmt.Sprint(hog.Violations))
		fmt.Println(htab.Render())
		if !hog.Isolated {
			fail("tenants: innocents not isolated from the hog (min %d/%d delivered)",
				hog.MinDelivered, hog.PDUs)
		}
		if hog.HogSent == 0 || (hog.QuotaDropped == 0 && hog.RingDropped == 0) {
			fail("tenants: hog scenario vacuous (sent %d, quota drops %d, ring drops %d)",
				hog.HogSent, hog.QuotaDropped, hog.RingDropped)
		}
	}

	// Demux microbenchmark and allocgate: deterministic allocation count
	// on stdout (CI diffs it), nondeterministic wall time on stderr.
	dm := measureTenantsDemux()
	fmt.Printf("demux: %d VCIs bound, %g allocs/cell (gate: 0)\n", dm.BoundVCIs, dm.AllocsPerCell)
	fmt.Fprintf(os.Stderr, "demux wall: %.1f ns/cell at %d tenants\n", dm.WallNsPerCell, dm.BoundVCIs)
	if dm.AllocsPerCell != 0 {
		fail("tenants: demux lookup allocates (%g allocs/cell at %d tenants)",
			dm.AllocsPerCell, dm.BoundVCIs)
	}

	var report struct {
		Schema    string            `json:"schema"`
		Scenarios []tenantsScenario `json:"scenarios"`
		Scaling   *tenantsScaling   `json:"scaling,omitempty"`
		Demux     tenantsDemux      `json:"demux"`
	}
	report.Schema = "osiris-tenants/1"
	for _, sp := range specs {
		res, ok := byName[sp.name]
		if !ok {
			continue
		}
		fp := sp.w.FbufPaths
		if fp == 0 {
			fp = 16 // fbuf.DefaultMaxCachedPaths
		}
		report.Scenarios = append(report.Scenarios, tenantsScenario{
			Name:      sp.name,
			Churn:     sp.w.Churn,
			FbufPaths: fp,
			Result:    res,
		})
	}
	report.Scaling = scaling
	report.Demux = dm

	// No reportHeader: the artifact must be byte-identical run to run
	// and at any shard count (CI diffs it with the wall_ keys stripped),
	// so it carries no timestamp.
	writeReport("tenants", *flagTenantsOut, report)

	if smoke != "" {
		fmt.Fprintln(os.Stderr, smoke)
		os.Exit(1)
	}
}

// measureTenantsDemux measures the receive demultiplexer directly: the
// open-addressed VCI table with 1024 tenants bound, the sweep's largest
// point. AllocsPerRun is exact and repeatable — it is the allocgate —
// while the wall-clock figure is advisory.
func measureTenantsDemux() tenantsDemux {
	const nVCIs = 1024
	var tab board.VCITable
	ch := &board.Channel{Index: 3}
	vcis := make([]atm.VCI, nVCIs)
	for i := range vcis {
		vcis[i] = atm.VCI(100 + i)
		tab.Bind(vcis[i], ch)
	}
	var sink *board.Channel
	sweep := func() {
		for _, v := range vcis {
			sink = tab.Lookup(v)
		}
	}
	allocs := testing.AllocsPerRun(200, sweep)
	const reps = 2000
	start := time.Now()
	for r := 0; r < reps; r++ {
		sweep()
	}
	wall := time.Since(start)
	if sink == nil {
		fmt.Fprintln(os.Stderr, "tenants: demux lookup returned nil")
		os.Exit(1)
	}
	return tenantsDemux{
		BoundVCIs:     tab.Len(),
		LookupsPerRep: nVCIs,
		AllocsPerCell: allocs / nVCIs,
		WallNsPerCell: float64(wall.Nanoseconds()) / float64(reps*nVCIs),
	}
}
