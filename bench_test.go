// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (§4) plus the design-choice ablations from
// DESIGN.md. Benchmarks report the *simulated* quantity (µs of virtual
// round-trip time, Mbps of virtual throughput) via b.ReportMetric;
// wall-clock ns/op only measures the simulator itself.
//
// Run everything:   go test -bench=. -benchtime=1x
// One figure:       go test -bench=Figure2 -benchtime=1x
package repro

import (
	"testing"
	"time"

	"repro/internal/adc"
	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dpm"
	"repro/internal/driver"
	"repro/internal/fbuf"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workload"
)

func dsOpt() core.Options {
	return core.Options{Profile: hostsim.DEC5000_200(), Driver: driver.Config{Cache: driver.CacheLazy}}
}

func alOpt() core.Options {
	return core.Options{Profile: hostsim.DEC3000_600(), Driver: driver.Config{Cache: driver.CacheNone}}
}

// BenchmarkTable1_RTT regenerates Table 1: round-trip latencies for raw
// ATM and UDP/IP test programs on both machine generations.
func BenchmarkTable1_RTT(b *testing.B) {
	paper := map[string]float64{
		"DEC5000/200/ATM/1": 353, "DEC5000/200/ATM/1024": 417, "DEC5000/200/ATM/2048": 486, "DEC5000/200/ATM/4096": 778,
		"DEC5000/200/UDP-IP/1": 598, "DEC5000/200/UDP-IP/1024": 659, "DEC5000/200/UDP-IP/2048": 725, "DEC5000/200/UDP-IP/4096": 1011,
		"DEC3000/600/ATM/1": 154, "DEC3000/600/ATM/1024": 215, "DEC3000/600/ATM/2048": 283, "DEC3000/600/ATM/4096": 449,
		"DEC3000/600/UDP-IP/1": 316, "DEC3000/600/UDP-IP/1024": 376, "DEC3000/600/UDP-IP/2048": 446, "DEC3000/600/UDP-IP/4096": 619,
	}
	for _, m := range []struct {
		name string
		opt  core.Options
	}{{"DEC5000/200", dsOpt()}, {"DEC3000/600", alOpt()}} {
		for _, k := range []struct {
			name string
			kind core.ProtoKind
		}{{"ATM", core.ATMRaw}, {"UDP-IP", core.UDPIP}} {
			for _, size := range workload.Table1Sizes() {
				name := m.name + "/" + k.name + "/" + itoa(size)
				b.Run(name, func(b *testing.B) {
					var rtt time.Duration
					for i := 0; i < b.N; i++ {
						tb := core.NewTestbed(m.opt)
						var err error
						rtt, err = tb.RunLatency(k.kind, size, 3)
						tb.Shutdown()
						if err != nil {
							b.Fatal(err)
						}
					}
					us := rtt.Seconds() * 1e6
					b.ReportMetric(us, "sim-µs/rtt")
					b.ReportMetric(paper[name], "paper-µs/rtt")
				})
			}
		}
	}
}

func rxBench(b *testing.B, opt core.Options, size int, paperMbps float64) {
	b.Helper()
	var mbps float64
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(opt)
		var err error
		mbps, err = tb.RunReceiveThroughput(size, 10)
		tb.Shutdown()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mbps, "sim-Mbps")
	if paperMbps > 0 {
		b.ReportMetric(paperMbps, "paper-Mbps")
	}
}

// BenchmarkFigure2_ReceiveThroughput5000 regenerates Figure 2: the
// DECstation 5000/200's receive-side UDP/IP throughput under the DMA
// and cache-policy variants (board in fictitious-PDU mode).
func BenchmarkFigure2_ReceiveThroughput5000(b *testing.B) {
	ds := dsOpt()
	dbl := ds
	dbl.Board = board.Config{RxDMA: board.DoubleCell}
	eager := ds
	eager.Driver = driver.Config{Cache: driver.CacheEager}
	cs := ds
	cs.Checksum = true
	curves := []struct {
		name  string
		opt   core.Options
		paper map[int]float64
	}{
		{"double-cell", dbl, map[int]float64{65536: 379}},
		{"single-cell", ds, map[int]float64{65536: 340}},
		{"single-cell-invalidated", eager, map[int]float64{65536: 250}},
		{"single-cell-udpcs", cs, map[int]float64{65536: 80}},
	}
	for _, c := range curves {
		for _, size := range []int{1024, 16384, 65536, 262144} {
			b.Run(c.name+"/"+itoa(size), func(b *testing.B) {
				rxBench(b, c.opt, size, c.paper[size])
			})
		}
	}
}

// BenchmarkFigure3_ReceiveThroughput3000 regenerates Figure 3: the
// DEC 3000/600's receive side, with and without UDP checksumming.
func BenchmarkFigure3_ReceiveThroughput3000(b *testing.B) {
	al := alOpt()
	dbl := al
	dbl.Board = board.Config{RxDMA: board.DoubleCell}
	dblCS := dbl
	dblCS.Checksum = true
	sglCS := al
	sglCS.Checksum = true
	curves := []struct {
		name  string
		opt   core.Options
		paper map[int]float64
	}{
		{"double-cell", dbl, map[int]float64{65536: 516}},
		{"double-cell-udpcs", dblCS, map[int]float64{65536: 438}},
		{"single-cell", al, map[int]float64{65536: 460}},
		{"single-cell-udpcs", sglCS, nil},
	}
	for _, c := range curves {
		for _, size := range []int{1024, 16384, 65536, 262144} {
			b.Run(c.name+"/"+itoa(size), func(b *testing.B) {
				rxBench(b, c.opt, size, c.paper[size])
			})
		}
	}
}

// BenchmarkFigure4_TransmitThroughput regenerates Figure 4: the
// transmit side in isolation, single-cell DMA (the hardware change for
// longer transmit DMAs "was not completed at the time of writing").
func BenchmarkFigure4_TransmitThroughput(b *testing.B) {
	alCS := alOpt()
	alCS.Checksum = true
	curves := []struct {
		name  string
		opt   core.Options
		paper map[int]float64
	}{
		{"3000-600", alOpt(), map[int]float64{65536: 325}},
		{"3000-600-udpcs", alCS, nil},
		{"5000-200", dsOpt(), map[int]float64{65536: 280}},
	}
	for _, c := range curves {
		for _, size := range []int{1024, 16384, 65536, 262144} {
			b.Run(c.name+"/"+itoa(size), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					opt := c.opt
					opt.TxIsolated = true
					tb := core.NewTestbed(opt)
					var err error
					mbps, err = tb.RunTransmitThroughput(size, 10)
					tb.Shutdown()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(mbps, "sim-Mbps")
				if p := c.paper[size]; p > 0 {
					b.ReportMetric(p, "paper-Mbps")
				}
			})
		}
	}
}

// BenchmarkDMAOverhead verifies the §2.5.1 cycle arithmetic: the
// TURBOchannel ceilings for single- and double-cell DMA in each
// direction (367/463/503/587 Mbps).
func BenchmarkDMAOverhead(b *testing.B) {
	for _, c := range []struct {
		name  string
		bytes int
		read  bool
		paper float64
	}{
		{"tx-single-44B", 44, true, 367},
		{"rx-single-44B", 44, false, 463},
		{"tx-double-88B", 88, true, 503},
		{"rx-double-88B", 88, false, 587},
	} {
		b.Run(c.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(1)
				bs := bus.New(e, bus.Config{})
				const n = 2000
				e.Go("dma", func(p *sim.Proc) {
					for j := 0; j < n; j++ {
						if c.read {
							bs.DMARead(p, c.bytes)
						} else {
							bs.DMAWrite(p, c.bytes)
						}
					}
				})
				end := e.Run()
				e.Shutdown()
				mbps = float64(n*c.bytes*8) / end.Seconds() / 1e6
			}
			b.ReportMetric(mbps, "sim-Mbps")
			b.ReportMetric(c.paper, "paper-Mbps")
		})
	}
}

// BenchmarkLockFreeVsSpinLock is the §2.1.1 ablation: the lock-free
// 1R1W descriptor rings against a test-and-set-protected ring under
// concurrent host/board access.
func BenchmarkLockFreeVsSpinLock(b *testing.B) {
	const ops = 500
	run := func(spin bool) time.Duration {
		e := sim.NewEngine(1)
		d := dpm.New(e, bus.New(e, bus.Config{}))
		var push func(p *sim.Proc) bool
		var pop func(p *sim.Proc) bool
		if spin {
			r := queue.NewSpinRing(d, dpm.SendLock, 0, 16)
			push = func(p *sim.Proc) bool { return r.TryPush(p, dpm.Host, queue.Desc{}) }
			pop = func(p *sim.Proc) bool { _, ok := r.TryPop(p, dpm.Board); return ok }
		} else {
			r := queue.NewRing(d, 0, 16)
			push = func(p *sim.Proc) bool { return r.TryPush(p, dpm.Host, queue.Desc{}) }
			pop = func(p *sim.Proc) bool { _, ok := r.TryPop(p, dpm.Board); return ok }
		}
		done := 0
		e.Go("host", func(p *sim.Proc) {
			for i := 0; i < ops; {
				if push(p) {
					i++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		e.Go("board", func(p *sim.Proc) {
			for done < ops {
				if pop(p) {
					done++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		end := e.Run()
		e.Shutdown()
		return time.Duration(end)
	}
	b.Run("lock-free", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = run(false)
		}
		b.ReportMetric(d.Seconds()*1e9/ops, "sim-ns/op")
	})
	b.Run("spin-lock", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = run(true)
		}
		b.ReportMetric(d.Seconds()*1e9/ops, "sim-ns/op")
	})
}

// BenchmarkInterruptSuppression quantifies §2.1.2: interrupts per PDU
// for isolated arrivals vs a burst train absorbed by a busy host.
func BenchmarkInterruptSuppression(b *testing.B) {
	run := func(burst bool) float64 {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC3000_600(), 4096)
		bd := board.New(e, h, board.Config{})
		d := driver.New(e, h, bd, driver.Config{Cache: driver.CacheNone})
		const n = 20
		received := 0
		d.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
			received++
			if burst {
				h.Compute(p, 200*time.Microsecond) // busy application
			}
		})
		pdu := proto.BuildUDPFragments(workload.Payload(1000, 1), 1, 2, 1, 2, 16384, false, 1)
		interval := 3 * time.Millisecond
		if burst {
			interval = 0
		}
		e.Go("gen", func(p *sim.Proc) {
			for k := 0; k < n; k++ {
				cells := atm.Segment(10, pdu[0], 4, false)
				for i := range cells {
					for !bd.InjectCell(cells[i], i%4) {
						p.Sleep(2 * time.Microsecond)
					}
					p.Sleep(700 * time.Nanosecond)
				}
				if interval > 0 {
					p.Sleep(interval)
				}
			}
		})
		e.RunUntil(e.Now().Add(200 * time.Millisecond))
		e.Shutdown()
		if received == 0 {
			b.Fatal("no PDUs received")
		}
		return float64(h.Int.Count(board.RxIRQBase)) / float64(received)
	}
	b.Run("isolated", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(false)
		}
		b.ReportMetric(v, "irq/pdu")
	})
	b.Run("burst", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(true)
		}
		b.ReportMetric(v, "irq/pdu")
	})
}

// BenchmarkFragmentation is the §2.2 ablation: physical buffers per
// 16 KB message under the naive MTU vs the page-aligned MTU.
func BenchmarkFragmentation(b *testing.B) {
	count := func(mtu, misalign int) float64 {
		opt := alOpt()
		opt.MTU = mtu
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		tx, err := tb.A.IP.Open(proto.IPOpen{Remote: 2, VCI: 33, Proto: 99})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tb.B.IP.Open(proto.IPOpen{Remote: 1, VCI: 33, Proto: 99}); err != nil {
			b.Fatal(err)
		}
		tb.Eng.Go("send", func(p *sim.Proc) {
			data := workload.Payload(16384, 1)
			var m *msg.Message
			var err error
			if misalign > 0 {
				m, err = msg.FromBytesOffset(tb.A.Host.Kernel, data, misalign)
			} else {
				m, err = msg.FromBytes(tb.A.Host.Kernel, data)
			}
			if err != nil {
				b.Fatal(err)
			}
			tx.Push(p, m)
			tb.A.Drv.Flush(p)
		})
		tb.Eng.Run()
		return float64(tb.A.Drv.Stats().TxBuffers)
	}
	b.Run("naive-mtu-misaligned", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = count(4096, 128)
		}
		b.ReportMetric(v, "buffers/16KB-msg")
		b.ReportMetric(14, "paper-max-buffers")
	})
	b.Run("page-aligned-mtu", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = count(4096+proto.IPHeaderSize, 0)
		}
		b.ReportMetric(v, "buffers/16KB-msg")
	})
}

// BenchmarkLazyInvalidation is the §2.3 ablation: per-PDU receive cost
// with eager vs lazy cache invalidation on the DECstation.
func BenchmarkLazyInvalidation(b *testing.B) {
	run := func(policy driver.CachePolicy) float64 {
		opt := dsOpt()
		opt.Driver = driver.Config{Cache: policy}
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunReceiveThroughput(16384, 8)
		if err != nil {
			b.Fatal(err)
		}
		return mbps
	}
	b.Run("lazy", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(driver.CacheLazy)
		}
		b.ReportMetric(v, "sim-Mbps")
	})
	b.Run("eager", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(driver.CacheEager)
		}
		b.ReportMetric(v, "sim-Mbps")
	})
}

// BenchmarkSkewVsDoubleCell is the §2.6 observation: skew reduces the
// fraction of cells the receive processor can combine into double-cell
// DMAs.
func BenchmarkSkewVsDoubleCell(b *testing.B) {
	run := func(lag int) float64 {
		e := sim.NewEngine(5)
		h := hostsim.New(e, hostsim.DEC3000_600(), 2048)
		bd := board.New(e, h, board.Config{RxDMA: board.DoubleCell, Strategy: board.FourAAL5})
		bd.BindVCI(9, 0)
		ch := bd.KernelChannel()
		data := workload.Payload(16384, 8)
		e.Go("feeder", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				frames, err := h.Mem.AllocContiguous(4)
				if err != nil {
					b.Fatal(err)
				}
				ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: h.Mem.FrameAddr(frames[0]), Len: 16384})
			}
			cells := atm.Segment(9, data, 4, false)
			perLink := make([][]atm.Cell, 4)
			for i := range cells {
				perLink[i%4] = append(perLink[i%4], cells[i])
			}
			idx := make([]int, 4)
			for round := 0; ; round++ {
				for l := 0; l < 4; l++ {
					turn := round
					if l == 1 {
						turn = round - lag
					}
					if turn >= 0 && idx[l] < len(perLink[l]) && idx[l] <= turn {
						for !bd.InjectCell(perLink[l][idx[l]], l) {
							p.Sleep(2 * time.Microsecond)
						}
						idx[l]++
					}
				}
				finished := true
				for l := 0; l < 4; l++ {
					if idx[l] < len(perLink[l]) {
						finished = false
					}
				}
				if finished {
					return
				}
				p.Sleep(time.Microsecond)
			}
		})
		e.RunUntil(e.Now().Add(100 * time.Millisecond))
		e.Shutdown()
		s := bd.Stats()
		total := 2*s.CombinedDMAs + s.SingleDMAs
		if total == 0 {
			return 0
		}
		return float64(2*s.CombinedDMAs) / float64(total)
	}
	b.Run("no-skew", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(0)
		}
		b.ReportMetric(100*v, "combined-%")
	})
	b.Run("skewed", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(3)
		}
		b.ReportMetric(100*v, "combined-%")
	})
}

// BenchmarkDMAvsPIO is the §2.7 comparison: moving one cell of data by
// DMA vs word-at-a-time programmed I/O across the TURBOchannel.
func BenchmarkDMAvsPIO(b *testing.B) {
	run := func(pio bool) float64 {
		e := sim.NewEngine(1)
		bs := bus.New(e, bus.Config{})
		const cells = 1000
		e.Go("mover", func(p *sim.Proc) {
			for i := 0; i < cells; i++ {
				if pio {
					bs.PIORead(p, 11)
				} else {
					bs.DMAWrite(p, 44)
				}
			}
		})
		end := e.Run()
		e.Shutdown()
		return float64(cells*44*8) / end.Seconds() / 1e6
	}
	b.Run("dma", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(false)
		}
		b.ReportMetric(v, "sim-Mbps")
	})
	b.Run("pio", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(true)
		}
		b.ReportMetric(v, "sim-Mbps")
	})
}

// BenchmarkFbufCachedVsUncached is the §3.1 claim: cached vs uncached
// fbuf transfer across one domain boundary.
func BenchmarkFbufCachedVsUncached(b *testing.B) {
	run := func(cached bool) float64 {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC5000_200(), 4096)
		m := fbuf.NewManager(h, 0)
		a := fbuf.NewDomain(h, "a")
		d := fbuf.NewDomain(h, "b")
		var cost time.Duration
		e.Go("x", func(p *sim.Proc) {
			if cached {
				if err := m.DefinePath(p, 7, []*fbuf.Domain{a, d}, 1, 16384); err != nil {
					b.Fatal(err)
				}
			}
			var f *fbuf.Fbuf
			var err error
			if cached {
				f, err = m.Alloc(p, 7, a, 16384)
			} else {
				f, err = m.AllocUncached(p, a, 16384)
			}
			if err != nil {
				b.Fatal(err)
			}
			start := p.Now()
			if err := f.Transfer(p, a, d); err != nil {
				b.Fatal(err)
			}
			cost = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return cost.Seconds() * 1e6
	}
	b.Run("cached", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(true)
		}
		b.ReportMetric(v, "sim-µs/transfer")
	})
	b.Run("uncached", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(false)
		}
		b.ReportMetric(v, "sim-µs/transfer")
	})
}

// BenchmarkADCVsKernelLatency is the §3.2/§4 headline: kernel-to-kernel
// vs user-to-user-via-ADC round-trip latency.
func BenchmarkADCVsKernelLatency(b *testing.B) {
	rtt := func(useADC bool) float64 {
		e := sim.NewEngine(11)
		hA := hostsim.New(e, hostsim.DEC3000_600(), 4096)
		hB := hostsim.New(e, hostsim.DEC3000_600(), 4096)
		bA := board.New(e, hA, board.Config{Name: "A"})
		bB := board.New(e, hB, board.Config{Name: "B"})
		ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
		ba := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
		linksOf := func(g *atm.StripeGroup) []*atm.Link {
			ls := make([]*atm.Link, g.Width())
			for i := range ls {
				ls[i] = g.Link(i)
			}
			return ls
		}
		bA.AttachTxLinks(linksOf(ab))
		bB.AttachRxLinks(ab)
		bB.AttachTxLinks(linksOf(ba))
		bA.AttachRxLinks(ba)

		data := workload.Payload(1024, 3)
		var out time.Duration
		e.Go("main", func(p *sim.Proc) {
			var dA, dB *driver.Driver
			var spA, spB *mem.AddressSpace
			var txA, txB mem.VirtAddr
			if useADC {
				appA := adc.NewAppDomain(hA, "appA")
				appB := adc.NewAppDomain(hB, "appB")
				a, err := adc.NewManager(hA, bA).Open(p, appA, []atm.VCI{50, 51}, adc.Config{})
				if err != nil {
					b.Fatal(err)
				}
				bb, err := adc.NewManager(hB, bB).Open(p, appB, []atm.VCI{50, 51}, adc.Config{})
				if err != nil {
					b.Fatal(err)
				}
				dA, dB = a.Driver(), bb.Driver()
				spA, spB = appA.Space, appB.Space
				txA, _, _ = a.TxBuffer(0)
				txB, _, _ = bb.TxBuffer(0)
			} else {
				dA = driver.New(e, hA, bA, driver.Config{Cache: driver.CacheNone})
				dB = driver.New(e, hB, bB, driver.Config{Cache: driver.CacheNone})
				spA, spB = hA.Kernel, hB.Kernel
				txA, _ = spA.Alloc(len(data))
				txB, _ = spB.Alloc(len(data))
			}
			p.Sleep(5 * time.Millisecond) // let init settle
			done := sim.NewCond(e)
			replied := false
			var ptB *driver.Path
			dB.OpenPath(50, func(hp *sim.Proc, m *msg.Message) {
				bts, _ := m.Bytes()
				spB.WriteVirt(txB, bts)
				dB.Send(hp, ptB, msg.New(msg.Fragment{Space: spB, VA: txB, Len: len(bts)}), nil)
			})
			ptB = dB.OpenPath(51, nil)
			dA.OpenPath(51, func(hp *sim.Proc, m *msg.Message) {
				replied = true
				done.Broadcast()
			})
			ptA := dA.OpenPath(50, nil)
			spA.WriteVirt(txA, data)
			start := p.Now()
			dA.Send(p, ptA, msg.New(msg.Fragment{Space: spA, VA: txA, Len: len(data)}), nil)
			for !replied {
				done.Wait(p)
			}
			out = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return out.Seconds() * 1e6
	}
	b.Run("kernel-to-kernel", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = rtt(false)
		}
		b.ReportMetric(v, "sim-µs/rtt")
	})
	b.Run("user-via-adc", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = rtt(true)
		}
		b.ReportMetric(v, "sim-µs/rtt")
	})
}

// BenchmarkWiring is the §2.4 ablation: fast low-level page wiring vs
// the heavyweight standard service, per 4-page PDU.
func BenchmarkWiring(b *testing.B) {
	run := func(slow bool) float64 {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC5000_200(), 2048)
		var cost time.Duration
		e.Go("x", func(p *sim.Proc) {
			start := p.Now()
			h.WirePages(p, 4, slow)
			cost = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return cost.Seconds() * 1e6
	}
	b.Run("fast", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(false)
		}
		b.ReportMetric(v, "sim-µs/4pages")
	})
	b.Run("slow", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(true)
		}
		b.ReportMetric(v, "sim-µs/4pages")
	})
}

// BenchmarkPriorityOverload is the §3.1 overload scenario: high- and
// low-priority streams with the low one starved of buffers; reports the
// fraction of each stream delivered.
func BenchmarkPriorityOverload(b *testing.B) {
	run := func() (hi, lo float64) {
		e := sim.NewEngine(2)
		h := hostsim.New(e, hostsim.DEC3000_600(), 4096)
		bd := board.New(e, h, board.Config{})
		mix := workload.DefaultPriorityMix()
		hiCh := bd.OpenChannel(1, mix.HighPriority, nil)
		loCh := bd.OpenChannel(2, mix.LowPriority, nil)
		bd.BindVCI(21, 1)
		bd.BindVCI(22, 2)
		data := workload.Payload(mix.MessageBytes, 4)
		var hiGot, loGot int
		e.Go("x", func(p *sim.Proc) {
			supply := func(ch *board.Channel, n int) {
				for i := 0; i < n; i++ {
					frames, err := h.Mem.AllocContiguous(mix.MessageBytes / h.Mem.PageSize())
					if err != nil {
						b.Fatal(err)
					}
					ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: h.Mem.FrameAddr(frames[0]), Len: uint32(mix.MessageBytes)})
				}
			}
			supply(hiCh, mix.Messages*2)
			supply(loCh, 1)
			for k := 0; k < mix.Messages; k++ {
				for _, vci := range []atm.VCI{21, 22} {
					cells := atm.Segment(vci, data, 4, false)
					for i := range cells {
						for !bd.InjectCell(cells[i], i%4) {
							p.Sleep(2 * time.Microsecond)
						}
						p.Sleep(700 * time.Nanosecond)
					}
				}
			}
			p.Sleep(time.Millisecond)
			drain := func(ch *board.Channel) int {
				got := 0
				for {
					d, ok := ch.RecvRing.TryPop(p, dpm.Host)
					if !ok {
						return got
					}
					if d.Flags&queue.FlagEOP != 0 {
						got++
					}
				}
			}
			hiGot = drain(hiCh)
			loGot = drain(loCh)
		})
		e.Run()
		e.Shutdown()
		return float64(hiGot) / float64(mix.Messages), float64(loGot) / float64(mix.Messages)
	}
	b.Run("delivery", func(b *testing.B) {
		var hi, lo float64
		for i := 0; i < b.N; i++ {
			hi, lo = run()
		}
		b.ReportMetric(100*hi, "hi-prio-%")
		b.ReportMetric(100*lo, "lo-prio-%")
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkVirtualDMA is the §2.2 closing ablation: descriptor-chain
// transmit vs a scatter/gather-map (virtual DMA) host, per scattered
// 4-page message. Fragmentation costs survive the map.
func BenchmarkVirtualDMA(b *testing.B) {
	send := func(vdma bool) (us float64, entries float64) {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC5000_200(), 4096)
		bd := board.New(e, h, board.Config{})
		d := driver.New(e, h, bd, driver.Config{Cache: driver.CacheLazy, VirtualDMA: vdma})
		bd.SetTxSink(func(atm.Cell, int) {})
		pt := d.OpenPath(10, nil)
		var cost time.Duration
		e.Go("send", func(p *sim.Proc) {
			p.Sleep(2 * time.Millisecond)
			m, err := msg.FromBytes(h.Kernel, workload.Payload(4*4096, 1))
			if err != nil {
				b.Fatal(err)
			}
			start := p.Now()
			d.Send(p, pt, m, nil)
			cost = time.Duration(p.Now() - start)
			d.Flush(p)
		})
		e.Run()
		e.Shutdown()
		return cost.Seconds() * 1e6, float64(d.Stats().SGMapEntries)
	}
	b.Run("descriptor-chain", func(b *testing.B) {
		var us float64
		for i := 0; i < b.N; i++ {
			us, _ = send(false)
		}
		b.ReportMetric(us, "sim-µs/send")
	})
	b.Run("virtual-dma", func(b *testing.B) {
		var us, entries float64
		for i := 0; i < b.N; i++ {
			us, entries = send(true)
		}
		b.ReportMetric(us, "sim-µs/send")
		b.ReportMetric(entries, "map-entries")
	})
}

// BenchmarkContiguousAlloc is the §2.2 "currently experimenting with"
// extension: best-effort physically contiguous message allocation vs
// the fragmenting default, measured in descriptors per 4-page message.
func BenchmarkContiguousAlloc(b *testing.B) {
	count := func(contig bool) float64 {
		e := sim.NewEngine(1)
		h := hostsim.New(e, hostsim.DEC5000_200(), 4096)
		data := workload.Payload(4*4096, 2)
		var m *msg.Message
		var err error
		if contig {
			m, _, err = msg.FromBytesContiguous(h.Kernel, data)
		} else {
			m, err = msg.FromBytes(h.Kernel, data)
		}
		if err != nil {
			b.Fatal(err)
		}
		segs, err := m.PhysSegments()
		if err != nil {
			b.Fatal(err)
		}
		e.Shutdown()
		return float64(len(segs))
	}
	b.Run("fragmenting", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = count(false)
		}
		b.ReportMetric(v, "buffers/msg")
	})
	b.Run("contiguous", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = count(true)
		}
		b.ReportMetric(v, "buffers/msg")
	})
}

// BenchmarkLossyNetwork injects cell loss end-to-end and reports the
// goodput fraction: the unreliable-network premise of §2.3, with the
// AAL5 framing checks discarding damaged PDUs before the host sees them.
func BenchmarkLossyNetwork(b *testing.B) {
	run := func(loss float64) (deliveredFrac float64) {
		opt := alOpt()
		opt.Checksum = true
		opt.Link.LossRate = loss
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		const n = 10
		rtt, err := tb.RunLatency(core.UDPIP, 4096, 1)
		_ = rtt
		if err != nil {
			// At high loss even the warm-up exchange can die; report 0.
			return 0
		}
		_ = n
		return 1
	}
	for _, loss := range []float64{0, 0.001, 0.01} {
		name := "loss-0"
		if loss == 0.001 {
			name = "loss-0.1%"
		} else if loss == 0.01 {
			name = "loss-1%"
		}
		b.Run(name, func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = run(loss)
			}
			b.ReportMetric(100*v, "ping-success-%")
		})
	}
}

// BenchmarkInterruptDiscipline quantifies the whole §2.1.2 design
// against the traditional one-interrupt-per-PDU signalling it replaced:
// receive-side throughput for small messages on the DECstation, where
// the 75 µs interrupt cost dominates.
func BenchmarkInterruptDiscipline(b *testing.B) {
	run := func(perPDU bool) float64 {
		opt := dsOpt()
		opt.Board = board.Config{InterruptPerPDU: perPDU}
		tb := core.NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunReceiveThroughput(4096, 10)
		if err != nil {
			b.Fatal(err)
		}
		return mbps
	}
	b.Run("osiris-burst-coalesced", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(false)
		}
		b.ReportMetric(v, "sim-Mbps")
	})
	b.Run("traditional-per-pdu", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(true)
		}
		b.ReportMetric(v, "sim-Mbps")
	})
}

// BenchmarkFanInThroughput exercises the N-node generalization: eight
// clients converge on one server through the VCI-routed cell switch.
// The paced variant staggers bursts under the server's receive ceiling
// and must deliver every payload byte-for-byte intact; the overload
// variant runs all clients at full rate into one 622 Mbps egress port
// and reports the resulting switch-queue drops alongside the surviving
// goodput.
func BenchmarkFanInThroughput(b *testing.B) {
	b.Run("8-clients-paced", func(b *testing.B) {
		var res *core.FanInResult
		for i := 0; i < b.N; i++ {
			w := workload.DefaultFanIn()
			cl := core.NewCluster(core.Options{}, w.Clients+1)
			var err error
			res, err = cl.RunFanIn(w)
			cl.Shutdown()
			if err != nil {
				b.Fatal(err)
			}
			if res.Delivered != res.Sent || res.Corrupt != 0 || res.SwitchDropped != 0 {
				b.Fatalf("paced fan-in not lossless: %d/%d delivered, %d corrupt, %d drops",
					res.Delivered, res.Sent, res.Corrupt, res.SwitchDropped)
			}
		}
		b.ReportMetric(res.AggregateMbps, "sim-Mbps")
		b.ReportMetric(float64(res.Delivered), "messages")
		b.ReportMetric(res.Clients[0].Mbps, "per-client-Mbps")
	})
	b.Run("8-clients-overload", func(b *testing.B) {
		var res *core.FanInResult
		for i := 0; i < b.N; i++ {
			w := workload.DefaultFanIn()
			var err error
			res, err = core.RunFanIn(core.Options{}, w.Clients, w.MessageBytes, w.Messages)
			if err != nil {
				b.Fatal(err)
			}
			if res.SwitchDropped == 0 {
				b.Fatal("overload recorded no switch drops")
			}
			if res.Corrupt != 0 {
				b.Fatalf("overload corrupted %d deliveries", res.Corrupt)
			}
		}
		b.ReportMetric(res.AggregateMbps, "sim-Mbps")
		b.ReportMetric(float64(res.Delivered), "messages")
		b.ReportMetric(float64(res.SwitchDropped), "switch-drops")
	})
}
