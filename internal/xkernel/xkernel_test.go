package xkernel

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/sim"
)

// fakeProto is a minimal in-memory protocol for framework tests: a
// session's Push loops straight back up through its handler.
type fakeProto struct{ name string }

func (f *fakeProto) Name() string { return f.name }

func (f *fakeProto) Open(addr any) (Session, error) {
	return &fakeSession{}, nil
}

type fakeSession struct {
	h      Handler
	pushed int
	closed bool
}

func (s *fakeSession) Push(p *sim.Proc, m *msg.Message) error {
	s.pushed++
	if s.h != nil {
		s.h(p, m)
	}
	return nil
}
func (s *fakeSession) SetHandler(h Handler) { s.h = h }
func (s *fakeSession) Close()               { s.closed = true }

func TestGraphRegisterLookup(t *testing.T) {
	g := NewGraph("kernel")
	g.Register(&fakeProto{name: "a"})
	g.Register(&fakeProto{name: "b"})
	if g.Domain() != "kernel" {
		t.Errorf("Domain = %q", g.Domain())
	}
	pr, err := g.Lookup("a")
	if err != nil || pr.Name() != "a" {
		t.Errorf("Lookup(a) = %v, %v", pr, err)
	}
	if _, err := g.Lookup("zzz"); err == nil {
		t.Error("lookup of missing protocol succeeded")
	}
	if n := len(g.Protocols()); n != 2 {
		t.Errorf("Protocols = %d", n)
	}
}

func TestGraphDuplicatePanics(t *testing.T) {
	g := NewGraph("d")
	g.Register(&fakeProto{name: "x"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	g.Register(&fakeProto{name: "x"})
}

func TestSessionLoopback(t *testing.T) {
	g := NewGraph("d")
	g.Register(&fakeProto{name: "loop"})
	pr, _ := g.Lookup("loop")
	s, err := pr.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	s.SetHandler(func(p *sim.Proc, m *msg.Message) { seen++ })
	e := sim.NewEngine(1)
	e.Go("t", func(p *sim.Proc) {
		s.Push(p, msg.New())
		s.Push(p, msg.New())
	})
	e.Run()
	e.Shutdown()
	if seen != 2 {
		t.Errorf("handler saw %d", seen)
	}
	s.Close()
	if !s.(*fakeSession).closed {
		t.Error("Close did not propagate")
	}
}

// Graphs in separate domains are independent — the "replicated
// application-linked protocol stack" property (§3.2).
func TestIndependentDomainGraphs(t *testing.T) {
	kernel := NewGraph("kernel")
	app := NewGraph("app")
	kernel.Register(&fakeProto{name: "udp"})
	if _, err := app.Lookup("udp"); err == nil {
		t.Error("app graph sees kernel protocols")
	}
	app.Register(&fakeProto{name: "udp"}) // no conflict across domains
}
