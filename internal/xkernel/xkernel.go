// Package xkernel provides the x-kernel style protocol framework the
// paper's host software is built on (§1): protocols that open sessions,
// sessions that push messages down and deliver messages up, and paths —
// the session chain serving one application-level connection, which the
// OSIRIS driver binds to a VCI (§3.1).
//
// The framework is deliberately protocol-independent: the same graph
// machinery composes the UDP/IP-like stack of package proto, the raw
// ATM test protocol, or an application-linked stack replicated into a
// user domain for an ADC (§3.2).
package xkernel

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/sim"
)

// Handler delivers an inbound message up to the next layer.
type Handler func(p *sim.Proc, m *msg.Message)

// Session is one end of a channel at some protocol layer.
type Session interface {
	// Push sends a message down through this session.
	Push(p *sim.Proc, m *msg.Message) error
	// SetHandler installs the upward delivery function.
	SetHandler(h Handler)
	// Close tears the session down.
	Close()
}

// Protocol opens sessions toward a participant address. Address types
// are protocol-specific.
type Protocol interface {
	Name() string
	Open(addr any) (Session, error)
}

// Graph is a registry of protocols configured into one protection
// domain — the kernel's graph, or the replicated application-linked
// graph of an ADC domain.
type Graph struct {
	domain string
	protos map[string]Protocol
}

// NewGraph returns an empty graph for the named domain.
func NewGraph(domain string) *Graph {
	return &Graph{domain: domain, protos: make(map[string]Protocol)}
}

// Domain returns the protection domain name the graph belongs to.
func (g *Graph) Domain() string { return g.domain }

// Register adds a protocol to the graph.
func (g *Graph) Register(pr Protocol) {
	if _, dup := g.protos[pr.Name()]; dup {
		panic("xkernel: duplicate protocol " + pr.Name())
	}
	g.protos[pr.Name()] = pr
}

// Lookup finds a protocol by name.
func (g *Graph) Lookup(name string) (Protocol, error) {
	pr, ok := g.protos[name]
	if !ok {
		return nil, fmt.Errorf("xkernel: %s: no protocol %q", g.domain, name)
	}
	return pr, nil
}

// Protocols returns the registered protocol names (for diagnostics).
func (g *Graph) Protocols() []string {
	out := make([]string, 0, len(g.protos))
	for name := range g.protos {
		out = append(out, name)
	}
	return out
}
