// Package trace records categorized simulation events for debugging and
// for understanding where time goes — the software-visibility tool the
// paper's authors effectively had by instrumenting the i960 firmware.
//
// Components emit through the engine's tracer hook (sim.Engine.Tracef)
// with a "category:" prefix; a Recorder parses, filters, ring-buffers,
// and renders them. With no tracer installed the emission sites are
// no-ops.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Category names used by the instrumented components.
const (
	CatCell  = "cell"  // cells transmitted/received by a board
	CatPDU   = "pdu"   // PDU-level events (queued, delivered, dropped)
	CatIRQ   = "irq"   // host interrupts
	CatDrop  = "drop"  // losses: FIFO overflow, no buffers, AAL5 errors
	CatProto = "proto" // protocol decisions (recoveries, retransmits)
	CatDrv   = "drv"   // driver activity (stalls, reclaim)
)

// Event is one recorded trace record.
type Event struct {
	At  sim.Time
	Cat string
	Msg string
}

func (e Event) String() string {
	return fmt.Sprintf("%12.3fµs [%-5s] %s", e.At.Microseconds(), e.Cat, e.Msg)
}

// Recorder collects events into a bounded ring buffer.
type Recorder struct {
	limit   int
	events  []Event
	start   int // ring start when full
	full    bool
	allow   map[string]bool // nil = everything
	dropped int64
}

// NewRecorder returns a recorder keeping at most limit events (the
// oldest are discarded first). limit 0 means 4096.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 4096
	}
	return &Recorder{limit: limit}
}

// Filter restricts recording to the given categories (empty = all).
func (r *Recorder) Filter(cats ...string) {
	if len(cats) == 0 {
		r.allow = nil
		return
	}
	r.allow = make(map[string]bool, len(cats))
	for _, c := range cats {
		r.allow[strings.TrimSpace(c)] = true
	}
}

// Hook returns a function suitable for sim.Engine.SetTracer. Emission
// sites format their message as "category: ..."; anything without a
// recognizable prefix lands in category "misc".
func (r *Recorder) Hook() func(t sim.Time, format string, args ...any) {
	return func(t sim.Time, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		cat := "misc"
		if i := strings.IndexByte(msg, ':'); i > 0 && i <= 8 {
			cat = msg[:i]
			msg = strings.TrimSpace(msg[i+1:])
		}
		r.Record(Event{At: t, Cat: cat, Msg: msg})
	}
}

// Record appends one event, applying the filter and ring bound.
func (r *Recorder) Record(e Event) {
	if r.allow != nil && !r.allow[e.Cat] {
		r.dropped++
		return
	}
	if len(r.events) < r.limit {
		r.events = append(r.events, e)
		return
	}
	r.full = true
	r.events[r.start] = e
	r.start = (r.start + 1) % r.limit
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event {
	if !r.full {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, r.limit)
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Len reports the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Filtered reports how many events the filter rejected.
func (r *Recorder) Filtered() int64 { return r.dropped }

// Dump writes the retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Counts returns the number of retained events per category.
func (r *Recorder) Counts() map[string]int {
	out := make(map[string]int)
	for _, e := range r.Events() {
		out[e.Cat]++
	}
	return out
}
