package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"

	"repro/internal/sim"
)

// Timeline collects typed trace records (sim.TraceEvent) from one or
// more engines and exports them as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Each attached engine gets its own lane (a Chrome "process"), and
// each distinct component within a lane gets a named thread track.
// In a sharded run every engine's goroutine appends only to its own
// lane, and export happens after the run quiesces, so no locking is
// needed; the export merge is canonical — ordered by (time, lane
// attach order, emission index) — making the JSON byte-identical per
// seed at any shard count for deterministic configs.
type Timeline struct {
	lanes []*lane
}

type lane struct {
	label string
	evs   []sim.TraceEvent
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Attach installs the timeline as eng's typed-trace recorder, under
// the given lane label (e.g. "shard0"). Call before the run starts.
func (tl *Timeline) Attach(eng *sim.Engine, label string) {
	ln := &lane{label: label}
	tl.lanes = append(tl.lanes, ln)
	eng.SetRecorder(func(ev sim.TraceEvent) { ln.evs = append(ln.evs, ev) })
}

// Len reports the total number of recorded events.
func (tl *Timeline) Len() int {
	n := 0
	for _, ln := range tl.lanes {
		n += len(ln.evs)
	}
	return n
}

// merged returns every event with its lane index, in canonical order.
func (tl *Timeline) merged() []laneEvent {
	out := make([]laneEvent, 0, tl.Len())
	for li, ln := range tl.lanes {
		for ei, ev := range ln.evs {
			out = append(out, laneEvent{ev: ev, lane: li, idx: ei})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		return a.idx < b.idx
	})
	return out
}

type laneEvent struct {
	ev   sim.TraceEvent
	lane int
	idx  int
}

// chromeEvent is one record in the Chrome trace-event format. Ts/Dur
// are microseconds of simulated time.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the timeline as Chrome trace-event JSON. The
// output is deterministic: canonical event order, first-seen track
// numbering, and sorted JSON object keys (encoding/json sorts map
// keys).
func (tl *Timeline) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type trackKey struct {
		lane int
		comp string
	}
	tids := make(map[trackKey]int)
	merged := tl.merged()

	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Metadata: one process per lane, one named thread per component,
	// numbered in first-appearance order of the canonical merge.
	for _, le := range merged {
		k := trackKey{lane: le.lane, comp: le.ev.Comp}
		if _, ok := tids[k]; ok {
			continue
		}
		tid := len(tids)
		tids[k] = tid
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: le.lane, Tid: tid,
			Args: map[string]any{"name": le.ev.Comp},
		}); err != nil {
			return err
		}
	}
	for li, ln := range tl.lanes {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: li, Tid: 0,
			Args: map[string]any{"name": ln.label},
		}); err != nil {
			return err
		}
	}

	for _, le := range merged {
		ev := le.ev
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(ev.Ph),
			Ts:   ev.At.Microseconds(),
			Pid:  le.lane,
			Tid:  tids[trackKey{lane: le.lane, comp: ev.Comp}],
		}
		switch ev.Ph {
		case 'X':
			d := ev.Dur.Microseconds()
			ce.Dur = &d
		case 'C':
			ce.Args = map[string]any{"value": ev.Arg}
		default: // instants carry their argument when nonzero
			if ev.Arg != 0 {
				ce.Args = map[string]any{"value": ev.Arg}
			}
		}
		if err := emit(ce); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
