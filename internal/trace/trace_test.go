package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
)

func TestRecorderParsesCategories(t *testing.T) {
	r := NewRecorder(16)
	hook := r.Hook()
	hook(100, "cell: tx vci=%d", 5)
	hook(200, "no category here")
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Cat != "cell" || evs[0].Msg != "tx vci=5" || evs[0].At != 100 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Cat != "misc" {
		t.Errorf("event 1 cat = %q", evs[1].Cat)
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(16)
	r.Filter("irq", "drop")
	hook := r.Hook()
	hook(1, "cell: noisy")
	hook(2, "irq: important")
	hook(3, "drop: also important")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Filtered() != 1 {
		t.Errorf("Filtered = %d", r.Filtered())
	}
	r.Filter() // reset to everything
	hook(4, "cell: now kept")
	if r.Len() != 3 {
		t.Errorf("len after reset = %d", r.Len())
	}
}

func TestRecorderRingBuffer(t *testing.T) {
	r := NewRecorder(4)
	hook := r.Hook()
	for i := 0; i < 10; i++ {
		hook(sim.Time(i), "pdu: n=%d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	// Oldest retained is event 6.
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Errorf("ring window wrong: %v..%v", evs[0].At, evs[3].At)
	}
}

func TestRecorderDumpAndCounts(t *testing.T) {
	r := NewRecorder(8)
	hook := r.Hook()
	hook(1500, "irq: rx ch0")
	hook(2500, "irq: rx ch1")
	hook(3500, "drop: lost")
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[irq") || !strings.Contains(out, "rx ch0") {
		t.Errorf("dump:\n%s", out)
	}
	counts := r.Counts()
	if counts["irq"] != 2 || counts["drop"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestEndToEndTraceCapture(t *testing.T) {
	// Attach a recorder to a real transfer and verify the instrumented
	// components produced the expected categories.
	tb := core.NewTestbed(core.Options{
		Profile: hostsim.DEC3000_600(),
		Driver:  driver.Config{Cache: driver.CacheNone},
	})
	defer tb.Shutdown()
	rec := NewRecorder(100_000)
	tb.Eng.SetTracer(rec.Hook())

	tx, err := tb.A.Raw.Open(proto.RawOpen{VCI: 44})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := tb.B.Raw.Open(proto.RawOpen{VCI: 44})
	if err != nil {
		t.Fatal(err)
	}
	got := false
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) { got = true })
	tb.Eng.Go("send", func(p *sim.Proc) {
		m, _ := msg.FromBytes(tb.A.Host.Kernel, make([]byte, 3000))
		tx.Push(p, m)
		tb.A.Drv.Flush(p)
	})
	tb.Eng.RunUntil(tb.Eng.Now().Add(50 * time.Millisecond))
	if !got {
		t.Fatal("message lost")
	}
	counts := rec.Counts()
	if counts["cell"] != int(atm.CellsFor(3000)) {
		t.Errorf("cell events = %d, want %d", counts["cell"], atm.CellsFor(3000))
	}
	if counts["pdu"] < 3 { // tx start + rx complete + driver deliver
		t.Errorf("pdu events = %d", counts["pdu"])
	}
	if counts["irq"] != 1 {
		t.Errorf("irq events = %d, want 1", counts["irq"])
	}
	_ = board.RxIRQBase
}

func TestTracingDisabledIsFree(t *testing.T) {
	// Without a tracer, Tracing() gates every instrumented site.
	e := sim.NewEngine(1)
	if e.Tracing() {
		t.Error("fresh engine claims tracing")
	}
	e.SetTracer(func(sim.Time, string, ...any) {})
	if !e.Tracing() {
		t.Error("tracer installed but Tracing() false")
	}
	e.SetTracer(nil)
	if e.Tracing() {
		t.Error("tracer cleared but Tracing() true")
	}
}
