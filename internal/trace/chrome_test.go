package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func emitSample(tl *Timeline) *sim.Engine {
	e := sim.NewEngine(1)
	tl.Attach(e, "shard0")
	e.At(1000, func() {
		e.Emit(sim.TraceEvent{At: e.Now(), Ph: 'i', Comp: "board", Cat: CatIRQ, Name: "rx-irq"})
		e.Emit(sim.TraceEvent{At: e.Now(), Ph: 'C', Comp: "port0", Cat: "q", Name: "depth", Arg: 3})
	})
	e.At(5000, func() {
		e.Emit(sim.TraceEvent{At: 2000, Dur: 3000, Ph: 'X', Comp: "board", Cat: CatPDU, Name: "reasm", Arg: 9180})
	})
	e.Run()
	return e
}

func TestTimelineChromeExport(t *testing.T) {
	tl := NewTimeline()
	emitSample(tl)
	if tl.Len() != 3 {
		t.Fatalf("timeline recorded %d events, want 3", tl.Len())
	}

	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}

	var spans, instants, counters, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Name != "reasm" || ev.Ts != 2 || ev.Dur != 3 {
				t.Errorf("span = %+v, want reasm ts=2µs dur=3µs", ev)
			}
		case "i":
			instants++
		case "C":
			counters++
			if ev.Args["value"] != float64(3) {
				t.Errorf("counter args = %v", ev.Args)
			}
		case "M":
			meta++
		}
	}
	if spans != 1 || instants != 1 || counters != 1 {
		t.Errorf("spans/instants/counters = %d/%d/%d, want 1/1/1", spans, instants, counters)
	}
	if meta < 3 { // two thread_name tracks + one process_name
		t.Errorf("metadata records = %d, want >= 3", meta)
	}
	if !strings.Contains(buf.String(), `"name":"shard0"`) {
		t.Errorf("lane label missing from process_name metadata")
	}
}

func TestTimelineExportDeterministic(t *testing.T) {
	render := func() string {
		tl := NewTimeline()
		emitSample(tl)
		var buf bytes.Buffer
		if err := tl.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("chrome export not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestRecorderUnaffectedByTypedEvents(t *testing.T) {
	// Typed records and the printf tracer are independent planes on
	// the same engine.
	e := sim.NewEngine(1)
	r := NewRecorder(16)
	e.SetTracer(r.Hook())
	tl := NewTimeline()
	tl.Attach(e, "main")
	e.At(10, func() {
		e.Tracef("irq: rx")
		e.Emit(sim.TraceEvent{At: e.Now(), Ph: 'i', Comp: "b", Cat: CatIRQ, Name: "rx-irq"})
	})
	e.Run()
	if r.Len() != 1 || tl.Len() != 1 {
		t.Fatalf("recorder/timeline = %d/%d events, want 1/1", r.Len(), tl.Len())
	}
}
