package hostsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{DEC5000_200(), DEC3000_600()} {
		if p.CPUHz == 0 || p.PageSize == 0 || p.InterruptCost == 0 {
			t.Errorf("%s: zero fields", p.Name)
		}
	}
	ds := DEC5000_200()
	if !ds.Bus.Serialized {
		t.Error("5000/200 must have a serialized bus")
	}
	if ds.InterruptCost != 75*time.Microsecond {
		t.Errorf("5000/200 interrupt cost = %v, want 75µs (§2.1.2)", ds.InterruptCost)
	}
	if ds.CacheSize != 64*1024 {
		t.Errorf("5000/200 cache = %d, want 64KB (§2.3)", ds.CacheSize)
	}
	alpha := DEC3000_600()
	if alpha.Bus.Serialized {
		t.Error("3000/600 must have a crossbar (non-serialized) bus")
	}
}

func TestCycleTime(t *testing.T) {
	p := DEC5000_200()
	if p.CycleTime() != 40*time.Nanosecond {
		t.Errorf("cycle = %v", p.CycleTime())
	}
	if p.Cycles(100) != 4*time.Microsecond {
		t.Errorf("Cycles(100) = %v", p.Cycles(100))
	}
}

func TestComputeSerializesOnCPU(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	var aDone, bDone sim.Time
	e.Go("a", func(p *sim.Proc) {
		h.Compute(p, 10*time.Microsecond)
		aDone = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		h.Compute(p, 10*time.Microsecond)
		bDone = p.Now()
	})
	e.Run()
	e.Shutdown()
	if aDone != sim.Time(10*time.Microsecond) || bDone != sim.Time(20*time.Microsecond) {
		t.Errorf("aDone=%v bDone=%v, want 10µs/20µs", aDone, bDone)
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	e.Go("a", func(p *sim.Proc) {
		h.Compute(p, 0)
		if p.Now() != 0 {
			t.Error("zero compute advanced time")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestCPUReadDataReturnsBytesAndCharges(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	f, _ := h.Mem.AllocFrame()
	pa := h.Mem.FrameAddr(f)
	want := make([]byte, 256)
	for i := range want {
		want[i] = byte(i)
	}
	h.Mem.Write(pa, want)
	var got []byte
	var took time.Duration
	e.Go("reader", func(p *sim.Proc) {
		start := p.Now()
		got = h.CPUReadData(p, []mem.PhysBuffer{{Addr: pa, Len: 256}})
		took = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	if string(got) != string(want) {
		t.Error("data mismatch")
	}
	if took == 0 {
		t.Error("read charged no time")
	}
	// Second read (cached) must be cheaper.
	var took2 time.Duration
	e2 := sim.NewEngine(1)
	h2 := New(e2, DEC5000_200(), 64)
	h2.Mem.Write(pa, want)
	e2.Go("reader", func(p *sim.Proc) {
		h2.CPUReadData(p, []mem.PhysBuffer{{Addr: pa, Len: 256}})
		start := p.Now()
		h2.CPUReadData(p, []mem.PhysBuffer{{Addr: pa, Len: 256}})
		took2 = time.Duration(p.Now() - start)
	})
	e2.Run()
	e2.Shutdown()
	if took2 >= took {
		t.Errorf("cached read (%v) not cheaper than cold read (%v)", took2, took)
	}
}

func TestInternetChecksum(t *testing.T) {
	// RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
	// (before complement).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd length.
	if InternetChecksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Error("odd-length checksum wrong")
	}
	if InternetChecksum(nil) != 0xFFFF {
		t.Error("empty checksum wrong")
	}
}

func TestChecksumDetectsStaleCache(t *testing.T) {
	// A checksum computed over stale cache contents differs from one
	// over fresh memory — the error-detection mechanism the lazy
	// invalidation scheme relies on (§2.3).
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	f, _ := h.Mem.AllocFrame()
	pa := h.Mem.FrameAddr(f)
	old := make([]byte, 64)
	fresh := make([]byte, 64)
	for i := range fresh {
		fresh[i] = byte(i + 1)
	}
	h.Mem.Write(pa, old)
	var stale, clean uint16
	e.Go("p", func(p *sim.Proc) {
		h.CPUReadData(p, []mem.PhysBuffer{{Addr: pa, Len: 64}}) // cache old
		h.Cache.DMAWrite(pa, fresh)                             // DMA under the cache
		stale = h.Checksum(p, []mem.PhysBuffer{{Addr: pa, Len: 64}})
		h.InvalidateData(p, []mem.PhysBuffer{{Addr: pa, Len: 64}})
		clean = h.Checksum(p, []mem.PhysBuffer{{Addr: pa, Len: 64}})
	})
	e.Run()
	e.Shutdown()
	if stale == clean {
		t.Error("stale and clean checksums identical; cache model broken")
	}
	if clean != InternetChecksum(fresh) {
		t.Error("clean checksum != direct checksum")
	}
}

func TestInvalidateDataCharges(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	var took time.Duration
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		h.InvalidateData(p, []mem.PhysBuffer{{Addr: 0, Len: 16384}})
		took = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	// 16 KB = 4096 words ≈ 4096 cycles = 163.84 µs at 25 MHz.
	want := h.Prof.Cycles(4096)
	if took != want {
		t.Errorf("invalidate took %v, want %v", took, want)
	}
}

func TestWireFastVsSlow(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	var fast, slow time.Duration
	e.Go("p", func(p *sim.Proc) {
		s := p.Now()
		h.WirePages(p, 4, false)
		fast = time.Duration(p.Now() - s)
		s = p.Now()
		h.WirePages(p, 4, true)
		slow = time.Duration(p.Now() - s)
	})
	e.Run()
	e.Shutdown()
	if slow != time.Duration(h.Prof.WireSlowFactor)*fast {
		t.Errorf("slow=%v fast=%v factor=%d", slow, fast, h.Prof.WireSlowFactor)
	}
}

func TestInterruptDispatch(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	var handled sim.Time
	h.Int.Handle(1, func(p *sim.Proc) { handled = p.Now() })
	e.At(1000, func() { h.Int.Assert(1) })
	e.Run()
	e.Shutdown()
	want := sim.Time(1000).Add(h.Prof.InterruptCost)
	if handled != want {
		t.Errorf("handler ran at %v, want %v", handled, want)
	}
	if h.Int.Count(1) != 1 {
		t.Errorf("count = %d", h.Int.Count(1))
	}
}

func TestInterruptCoalescing(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	runs := 0
	h.Int.Handle(2, func(p *sim.Proc) { runs++ })
	e.At(100, func() {
		h.Int.Assert(2)
		h.Int.Assert(2) // still pending: coalesced
		h.Int.Assert(2)
	})
	e.Run()
	e.Shutdown()
	if runs != 1 {
		t.Errorf("handler ran %d times, want 1", runs)
	}
	if h.Int.Count(2) != 1 {
		t.Errorf("Count = %d, want 1 (coalesced asserts don't count)", h.Int.Count(2))
	}
	h.Int.ResetCounts()
	if h.Int.Count(2) != 0 {
		t.Error("ResetCounts failed")
	}
}

func TestInterruptAfterHandlerRunsAgain(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	runs := 0
	h.Int.Handle(3, func(p *sim.Proc) { runs++ })
	e.At(100, func() { h.Int.Assert(3) })
	e.At(sim.Time(200*time.Microsecond), func() { h.Int.Assert(3) })
	e.Run()
	e.Shutdown()
	if runs != 2 {
		t.Errorf("handler ran %d times, want 2", runs)
	}
}

func TestUnhandledInterruptIsSafe(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, DEC5000_200(), 64)
	e.At(10, func() { h.Int.Assert(99) })
	e.Run()
	e.Shutdown()
	if h.Int.Count(99) != 1 {
		t.Error("unhandled interrupt not counted")
	}
}

// Property: InternetChecksum detects any single-byte change.
func TestChecksumDetectsChangeQuick(t *testing.T) {
	f := func(data []byte, idx uint16, delta byte) bool {
		if len(data) == 0 || delta == 0 {
			return true
		}
		i := int(idx) % len(data)
		orig := InternetChecksum(data)
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] += delta
		if string(mut) == string(data) {
			return true
		}
		// Ones-complement sums have one ambiguity (0x00 vs 0xFF word
		// values); tolerate identical sums only when bytes changed
		// between 0x00/0xFF complement pairs.
		if InternetChecksum(mut) == orig {
			return mut[i] == 0xFF || data[i] == 0xFF || mut[i] == 0 || data[i] == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
