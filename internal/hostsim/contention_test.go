package hostsim

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestComputeStretchesUnderDMAContention(t *testing.T) {
	// §4: "DMA traffic increases the average memory access latency
	// experienced by the CPU." On the serialized 5000/200, CPU work takes
	// longer while DMA hammers the bus.
	elapsed := func(withDMA bool) time.Duration {
		e := sim.NewEngine(1)
		h := New(e, DEC5000_200(), 64)
		if withDMA {
			e.Go("dma", func(p *sim.Proc) {
				for i := 0; i < 2000; i++ {
					h.Bus.DMAWrite(p, 44)
				}
			})
		}
		var took time.Duration
		e.Go("cpu", func(p *sim.Proc) {
			start := p.Now()
			h.Compute(p, 200*time.Microsecond)
			took = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return took
	}
	quiet := elapsed(false)
	contended := elapsed(true)
	if quiet != 200*time.Microsecond {
		t.Errorf("uncontended compute took %v, want exactly 200µs", quiet)
	}
	// FIFO arbitration alternates CPU and DMA transactions, so the CPU
	// sees a modest but real stretch (the dominant §4 effect is the
	// reverse direction, tested below).
	if contended <= quiet+10*time.Microsecond {
		t.Errorf("contended compute %v not measurably above quiet %v", contended, quiet)
	}
}

func TestComputeDoesNotStretchOnCrossbar(t *testing.T) {
	// The 3000/600's crossbar decouples CPU memory traffic from DMA.
	e := sim.NewEngine(1)
	h := New(e, DEC3000_600(), 64)
	e.Go("dma", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			h.Bus.DMAWrite(p, 44)
		}
	})
	var took time.Duration
	e.Go("cpu", func(p *sim.Proc) {
		start := p.Now()
		h.Compute(p, 200*time.Microsecond)
		took = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	if took != 200*time.Microsecond {
		t.Errorf("crossbar compute took %v under DMA, want exactly 200µs", took)
	}
}

func TestDMAStretchedByCPUTrafficOnlyWhenSerialized(t *testing.T) {
	// The dual of the above: CPU activity steals DMA bandwidth on the
	// DECstation (463 → ~340 Mbps in §4) but not on the Alpha.
	dmaTime := func(prof Profile) time.Duration {
		e := sim.NewEngine(1)
		h := New(e, prof, 64)
		var took sim.Time
		e.Go("dma", func(p *sim.Proc) {
			for i := 0; i < 1000; i++ {
				h.Bus.DMAWrite(p, 44)
			}
			took = p.Now()
		})
		e.Go("cpu", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				h.Compute(p, 100*time.Microsecond)
			}
		})
		e.Run()
		e.Shutdown()
		return time.Duration(took)
	}
	ds := dmaTime(DEC5000_200())
	al := dmaTime(DEC3000_600())
	// 1000 × 19 cycles × 40ns = 760µs unimpeded.
	if al != 760*time.Microsecond {
		t.Errorf("crossbar DMA took %v, want exactly 760µs", al)
	}
	if ds <= al {
		t.Errorf("serialized DMA (%v) not slower than crossbar (%v)", ds, al)
	}
}

func TestCheckgsumThroughputCeilings(t *testing.T) {
	// Checksumming a fresh (uncached) 16 KB buffer: the 5000/200 should
	// land in the tens-of-Mbps region (§4's 80 Mbps, without the
	// concurrent DMA here), the Alpha far above it.
	rate := func(prof Profile) float64 {
		e := sim.NewEngine(1)
		h := New(e, prof, 64)
		f, _ := h.Mem.AllocFrame()
		_ = f
		var took time.Duration
		e.Go("cs", func(p *sim.Proc) {
			start := p.Now()
			h.Checksum(p, []mem.PhysBuffer{{Addr: 0, Len: 16384}})
			took = time.Duration(p.Now() - start)
		})
		e.Run()
		e.Shutdown()
		return 16384 * 8 / took.Seconds() / 1e6
	}
	ds := rate(DEC5000_200())
	al := rate(DEC3000_600())
	if ds < 60 || ds > 250 {
		t.Errorf("5000/200 checksum rate %.0f Mbps outside plausible band", ds)
	}
	if al < 3*ds {
		t.Errorf("Alpha checksum (%.0f) not ≫ DECstation (%.0f)", al, ds)
	}
}
