// Package hostsim models the host workstation: CPU cost accounting,
// interrupt dispatch, and the machine profiles of the paper's two
// platforms — the DECstation 5000/200 (25 MHz MIPS R3000) and the
// DEC 3000/600 (175 MHz Alpha).
//
// The profiles encode two kinds of constants. Hardware constants come
// straight from the paper (§2.1.2, §2.3, §2.5.1, §4): TURBOchannel
// cycle prices, the 75 µs interrupt service time, the 64 KB incoherent
// cache. Software path costs (driver and protocol per-PDU times) are
// calibrated so the simulated Table 1 latencies land on the published
// ones; the calibration is documented in EXPERIMENTS.md and each
// constant is annotated below.
package hostsim

import (
	"time"

	"repro/internal/bus"
	"repro/internal/cache"
)

// Profile describes one host machine model.
type Profile struct {
	Name string

	// CPUHz prices one CPU cycle.
	CPUHz int64

	// Bus is the TURBOchannel configuration, including whether CPU
	// memory traffic serializes with DMA (§2.7, §4).
	Bus bus.Config

	// CacheSize, CacheLine and CachePolicy configure the data cache.
	CacheSize   int
	CacheLine   int
	CachePolicy cache.CoherencePolicy

	// PageSize is the VM page size.
	PageSize int

	// InterruptCost is the kernel's interrupt service overhead
	// (75 µs on the DECstation, §2.1.2).
	InterruptCost time.Duration

	// ThreadDispatch is the cost of scheduling a driver thread from the
	// interrupt handler.
	ThreadDispatch time.Duration

	// DriverTxPerPDU / DriverRxPerPDU are the fixed driver costs per
	// PDU, excluding per-buffer work (calibrated).
	DriverTxPerPDU time.Duration
	DriverRxPerPDU time.Duration

	// DriverPerBuffer is the marginal driver cost of each physical
	// buffer descriptor beyond the first (§2.2: "the per-PDU processing
	// cost in the host driver increases with the number of physical
	// buffers").
	DriverPerBuffer time.Duration

	// ProtoSendPerPDU / ProtoRecvPerPDU are the UDP/IP processing costs
	// per PDU, excluding checksumming (calibrated from the paper's
	// 200 µs UDP/IP service time on the DECstation, §2.1.2).
	ProtoSendPerPDU time.Duration
	ProtoRecvPerPDU time.Duration

	// ChecksumCyclesPerWord is the ALU cost of the Internet checksum
	// per 32-bit word, on top of the memory traffic to fetch the data.
	ChecksumCyclesPerWord int

	// WirePerPage is the cost of wiring one page with the low-level
	// Mach primitive; WireSlowFactor multiplies it for the standard
	// vm_wire-style service the paper found "surprisingly" expensive
	// (§2.4).
	WirePerPage    time.Duration
	WireSlowFactor int

	// SyscallCost is one user/kernel protection boundary crossing (trap,
	// argument validation, return) — what an ADC bypasses on the data
	// path (§3.2).
	SyscallCost time.Duration

	// FbufTransfer is the cost of passing a *cached* fbuf across a
	// protection domain boundary: a reference hand-off, no mapping work
	// (§3.1).
	FbufTransfer time.Duration

	// FbufMapPerPage is the per-page cost of mapping an *uncached* fbuf
	// into a domain — the order-of-magnitude penalty cached fbufs avoid.
	FbufMapPerPage time.Duration

	// CopyPerPage is the per-page cost of a traditional cross-domain
	// data copy, the baseline both fbuf flavours beat.
	CopyPerPage time.Duration

	// SGMapPerEntry is the cost of installing one scatter/gather map
	// entry for virtual-address DMA (§2.2: on machines like the RISC
	// System/6000 and DEC 3000, "it may be necessary to update the map
	// for each individual message", so fragmentation remains a concern).
	SGMapPerEntry time.Duration

	// CPUMemTrafficRatio is the fraction of general CPU busy time whose
	// loads/stores occupy the memory path. On the DECstation every
	// memory transaction occupies the TURBOchannel, so CPU work directly
	// steals DMA bandwidth (§4); on the crossbar Alpha it is 0.
	CPUMemTrafficRatio float64

	// ComputeChunk is the granularity at which CPU work interleaves
	// with the memory path (default 2µs).
	ComputeChunk time.Duration
}

// CycleTime returns the duration of one CPU cycle.
func (p Profile) CycleTime() time.Duration {
	return time.Duration(int64(time.Second) / p.CPUHz)
}

// Cycles converts a CPU cycle count into time.
func (p Profile) Cycles(n int) time.Duration { return time.Duration(n) * p.CycleTime() }

// DEC5000_200 models the DECstation 5000/200: 25 MHz R3000, serialized
// TURBOchannel/memory, 64 KB incoherent write-through cache, 75 µs
// interrupts.
//
// Calibration targets (Table 1, §4): ATM RTT 353 µs at 1 byte, UDP/IP
// RTT 598 µs; UDP/IP service time ≈ 200 µs/PDU; CPU-touched receive
// throughput ≈ 80 Mbps.
func DEC5000_200() Profile {
	return Profile{
		Name:  "DEC5000/200",
		CPUHz: 25_000_000,
		Bus: bus.Config{
			ClockHz:    25_000_000,
			Serialized: true,
			// The R3000's miss penalty across the shared path was severe;
			// this overhead, with the serialized-bus contention, yields
			// the ~80 Mbps CPU-touched ceiling of §4.
			MemReadOverhead:  14,
			MemWriteOverhead: 6,
		},
		CacheSize:   64 * 1024,
		CacheLine:   16,
		CachePolicy: cache.Incoherent,
		PageSize:    4096,

		InterruptCost:  75 * time.Microsecond, // §2.1.2, measured
		ThreadDispatch: 6 * time.Microsecond,

		DriverTxPerPDU:  12 * time.Microsecond,
		DriverRxPerPDU:  16 * time.Microsecond,
		DriverPerBuffer: 6 * time.Microsecond,

		ProtoSendPerPDU: 60 * time.Microsecond,
		ProtoRecvPerPDU: 62 * time.Microsecond,

		ChecksumCyclesPerWord: 2,

		WirePerPage:    4 * time.Microsecond,
		WireSlowFactor: 8,

		SyscallCost:    20 * time.Microsecond,
		FbufTransfer:   8 * time.Microsecond,
		FbufMapPerPage: 90 * time.Microsecond,
		CopyPerPage:    170 * time.Microsecond,
		SGMapPerEntry:  3 * time.Microsecond,

		CPUMemTrafficRatio: 0.75,
		ComputeChunk:       2 * time.Microsecond,
	}
}

// DEC3000_600 models the DEC 3000/600: 175 MHz Alpha, buffered crossbar
// (DMA concurrent with cache traffic), DMA-coherent cache.
//
// Calibration targets (Table 1, §4): ATM RTT 154 µs at 1 byte, UDP/IP
// RTT 316 µs; receive throughput approaching the 516 Mbps link limit,
// 438 Mbps with checksumming.
func DEC3000_600() Profile {
	return Profile{
		Name:  "DEC3000/600",
		CPUHz: 175_000_000,
		Bus: bus.Config{
			// The TURBOchannel itself still runs at 25 MHz; the crossbar
			// decouples it from CPU/memory traffic, and the private
			// memory port is much faster.
			ClockHz:          25_000_000,
			MemClockHz:       100_000_000,
			Serialized:       false,
			MemReadOverhead:  4,
			MemWriteOverhead: 2,
		},
		CacheSize:   2 * 1024 * 1024, // 2 MB board-level cache
		CacheLine:   32,
		CachePolicy: cache.DMAUpdate,
		PageSize:    4096, // the OSF/1 Alpha used 8 KB; 4 KB keeps workloads comparable

		InterruptCost:  20 * time.Microsecond,
		ThreadDispatch: 8 * time.Microsecond,

		DriverTxPerPDU:  9 * time.Microsecond,
		DriverRxPerPDU:  14 * time.Microsecond,
		DriverPerBuffer: 1500 * time.Nanosecond,

		ProtoSendPerPDU: 36 * time.Microsecond,
		ProtoRecvPerPDU: 40 * time.Microsecond,

		ChecksumCyclesPerWord: 8,

		WirePerPage:    800 * time.Nanosecond,
		WireSlowFactor: 8,

		SyscallCost:    5 * time.Microsecond,
		FbufTransfer:   2 * time.Microsecond,
		FbufMapPerPage: 22 * time.Microsecond,
		CopyPerPage:    30 * time.Microsecond,
		SGMapPerEntry:  600 * time.Nanosecond,

		CPUMemTrafficRatio: 0,
		ComputeChunk:       2 * time.Microsecond,
	}
}
