package hostsim

import (
	"time"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Host assembles one workstation: CPU, memory, cache, TURBOchannel and
// interrupt controller, plus the kernel's address space.
type Host struct {
	Eng    *sim.Engine
	Prof   Profile
	Mem    *mem.Memory
	Cache  *cache.Cache
	Bus    *bus.Bus
	CPU    *sim.Resource
	Int    *IntController
	Kernel *mem.AddressSpace

	segPool [][]mem.PhysBuffer // scratch slices for per-PDU segment lists
}

// New builds a host from a profile. memPages sizes physical memory (0
// means 8192 pages = 32 MB at 4 KB pages).
func New(e *sim.Engine, prof Profile, memPages int) *Host {
	if memPages == 0 {
		memPages = 8192
	}
	m := mem.New(mem.Config{PageSize: prof.PageSize, Pages: memPages, Seed: 0x05121994})
	b := bus.New(e, prof.Bus)
	h := &Host{
		Eng:   e,
		Prof:  prof,
		Mem:   m,
		Cache: cache.New(m, cache.Config{Size: prof.CacheSize, LineSize: prof.CacheLine, Policy: prof.CachePolicy}),
		Bus:   b,
		CPU:   sim.NewResource(e, prof.Name+"-cpu"),
	}
	h.Int = newIntController(h)
	h.Kernel = m.NewSpace(prof.Name + "-kernel")
	return h
}

// Compute charges d of CPU time to p, serializing with other CPU users.
// The profile's CPUMemTrafficRatio fraction of the work additionally
// occupies the memory path in ComputeChunk slices, so on a serialized
// machine CPU activity steals bus bandwidth from concurrent DMA — and
// contended DMA stretches the CPU work in turn (§4).
func (h *Host) Compute(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	r := h.Prof.CPUMemTrafficRatio
	if r <= 0 {
		h.CPU.Use(p, d)
		return
	}
	h.CPU.Acquire(p)
	chunk := h.Prof.ComputeChunk
	if chunk <= 0 {
		chunk = 2 * time.Microsecond
	}
	for d > 0 {
		c := chunk
		if c > d {
			c = d
		}
		memPart := time.Duration(float64(c) * r)
		if cpuPart := c - memPart; cpuPart > 0 {
			p.Sleep(cpuPart)
		}
		h.Bus.CPUOccupy(p, memPart)
		d -= c
	}
	h.CPU.Release()
}

// CPUReadData reads the given physical segments through the data cache,
// charging the CPU touch cost (one cycle per word) plus bus transactions
// for every cache miss; on a serialized machine those transactions
// contend with DMA. It returns the bytes the CPU observed — stale bytes
// included, if the cache was stale (§2.3).
func (h *Host) CPUReadData(p *sim.Proc, segs []mem.PhysBuffer) []byte {
	total := 0
	for _, seg := range segs {
		total += seg.Len
	}
	out := make([]byte, total)
	line := h.Cache.LineSize()
	base := 0
	for _, seg := range segs {
		buf := out[base : base+seg.Len]
		// Read line by line so misses are individually priced.
		for off := 0; off < seg.Len; {
			a := uint32(seg.Addr) + uint32(off)
			n := line - int(a)%line
			if n > seg.Len-off {
				n = seg.Len - off
			}
			_, misses := h.Cache.Read(mem.PhysAddr(a), buf[off:off+n])
			if misses > 0 {
				h.Bus.CPUMemRead(p, misses*(line/4))
			}
			off += n
		}
		words := (seg.Len + 3) / 4
		h.Compute(p, h.Prof.Cycles(words))
		base += seg.Len
	}
	return out
}

// GetSegs pops an empty physical-segment scratch slice for a per-PDU
// AppendPhysSegments call; PutSegs returns it (grown or not) to the pool.
// The cooperative scheduler only switches procs inside simulated
// operations, so a pop/use/push sequence never interleaves with another
// proc's even when the user of the slice blocks in between.
func (h *Host) GetSegs() []mem.PhysBuffer {
	if n := len(h.segPool); n > 0 {
		s := h.segPool[n-1]
		h.segPool = h.segPool[:n-1]
		return s[:0]
	}
	return make([]mem.PhysBuffer, 0, 16)
}

// PutSegs returns a slice obtained from GetSegs to the pool.
func (h *Host) PutSegs(s []mem.PhysBuffer) {
	h.segPool = append(h.segPool, s)
}

// CPUWriteData writes data to physical address pa through the cache,
// charging the CPU touch cost and write-through bus traffic.
func (h *Host) CPUWriteData(p *sim.Proc, pa mem.PhysAddr, data []byte) {
	h.Cache.Write(pa, data)
	words := (len(data) + 3) / 4
	h.Compute(p, h.Prof.Cycles(words))
	h.Bus.CPUMemWrite(p, words)
}

// InvalidateData performs an explicit cache invalidation of the given
// segments, charging one CPU cycle per 32-bit word (§2.3).
func (h *Host) InvalidateData(p *sim.Proc, segs []mem.PhysBuffer) {
	total := 0
	for _, seg := range segs {
		total += h.Cache.Invalidate(seg.Addr, seg.Len)
	}
	h.Compute(p, h.Prof.Cycles(total))
}

// Checksum computes the Internet checksum over the given physical
// segments as the CPU would: reading every word through the cache (with
// miss traffic) plus the ALU cost per word. It returns the 16-bit
// checksum over the bytes the CPU actually observed.
func (h *Host) Checksum(p *sim.Proc, segs []mem.PhysBuffer) uint16 {
	data := h.CPUReadData(p, segs)
	words := (len(data) + 3) / 4
	h.Compute(p, h.Prof.Cycles(words*h.Prof.ChecksumCyclesPerWord))
	return InternetChecksum(data)
}

// InternetChecksum is the RFC 1071 ones-complement sum over data.
func InternetChecksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// WirePages charges the cost of wiring n pages using the fast low-level
// primitive (§2.4); slow selects the heavyweight standard service.
func (h *Host) WirePages(p *sim.Proc, n int, slow bool) {
	cost := time.Duration(n) * h.Prof.WirePerPage
	if slow {
		cost *= time.Duration(h.Prof.WireSlowFactor)
	}
	h.Compute(p, cost)
}

// IntController dispatches board interrupts to registered handlers.
// Interrupts are level-triggered and coalescing: asserting a line that
// is already pending is a no-op, matching the OSIRIS receive-side
// "interrupt only on empty→non-empty transition" discipline (§2.1.2).
type IntController struct {
	host     *Host
	handlers map[int]func(p *sim.Proc)
	pending  map[int]bool
	counts   map[int]int64
}

func newIntController(h *Host) *IntController {
	return &IntController{
		host:     h,
		handlers: make(map[int]func(p *sim.Proc)),
		pending:  make(map[int]bool),
		counts:   make(map[int]int64),
	}
}

// Handle registers the handler for an interrupt line. The handler runs
// in proc context after the interrupt service overhead has been charged.
func (ic *IntController) Handle(line int, fn func(p *sim.Proc)) {
	ic.handlers[line] = fn
}

// Assert raises an interrupt line. Safe to call from event context (the
// board's side). The kernel's interrupt service cost is charged on the
// host CPU before the handler body runs.
func (ic *IntController) Assert(line int) {
	if ic.pending[line] {
		return
	}
	ic.pending[line] = true
	ic.counts[line]++
	ic.host.Eng.Go("irq", func(p *sim.Proc) {
		ic.host.Compute(p, ic.host.Prof.InterruptCost)
		ic.pending[line] = false
		if fn := ic.handlers[line]; fn != nil {
			fn(p)
		}
	})
}

// Count returns how many times the line was asserted (not coalesced).
func (ic *IntController) Count(line int) int64 { return ic.counts[line] }

// ResetCounts zeroes the per-line assertion counters.
func (ic *IntController) ResetCounts() { ic.counts = make(map[int]int64) }
