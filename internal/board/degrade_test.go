package board

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/queue"
	"repro/internal/sim"
)

// TestReasmTimeoutReclaimsLostEOM is the regression test for the
// stranded-reassembly leak: a PDU whose final (Last/EOM) cell is lost
// used to hold its receive buffers and reassembly state forever. With
// ReasmTimeout set, the board must abort the reassembly, send an abort
// marker behind the interior buffers it already streamed to the host,
// reclaim every buffer, and keep serving clean PDUs afterwards.
func TestReasmTimeoutReclaimsLostEOM(t *testing.T) {
	const timeout = 2 * time.Millisecond
	r := newRig(t, Config{ReasmTimeout: timeout})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(5000, 7)
	data2 := pattern(3000, 8)
	var descs []queue.Desc
	var got2 []byte
	var ok2 bool
	r.eng.Go("host", func(p *sim.Proc) {
		// 2048-byte buffers force interior buffers to stream to the host
		// before the PDU completes — the case that needs the marker.
		r.supplyFree(t, p, ch, 8, 2048)
		cells := atm.Segment(5, data, 4, false)
		for i := range cells[:len(cells)-1] { // the Last/EOM cell is lost
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		// Collect pushes until the abort marker arrives.
		deadline := p.Now().Add(10 * timeout)
		for p.Now() < deadline {
			d, popped := ch.RecvRing.TryPop(p, dpm.Host)
			if !popped {
				p.Sleep(5 * time.Microsecond)
				continue
			}
			descs = append(descs, d)
			if d.Flags&queue.FlagErr != 0 {
				break
			}
		}
		// Degradation must be graceful: a clean PDU flows end to end
		// right after the abort, reusing the reclaimed buffers.
		cells2 := atm.Segment(5, data2, 4, false)
		for i := range cells2 {
			r.b.InjectCell(cells2[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		got2, ok2 = r.recvPDU(p, ch, 20*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()

	if len(descs) == 0 || descs[len(descs)-1].Flags&queue.FlagErr == 0 {
		t.Fatalf("no abort marker delivered; got %d descriptors", len(descs))
	}
	for _, d := range descs[:len(descs)-1] {
		if d.Flags&queue.FlagErr != 0 || d.Flags&queue.FlagEOP != 0 {
			t.Fatalf("unexpected flags before the marker: %+v", d)
		}
	}
	st := r.b.Stats()
	if st.PDUsTimedOut != 1 {
		t.Errorf("PDUsTimedOut = %d, want 1", st.PDUsTimedOut)
	}
	if st.RxAbortMarkers != 1 {
		t.Errorf("RxAbortMarkers = %d, want 1", st.RxAbortMarkers)
	}
	if st.PDUsDropped != 0 {
		t.Errorf("PDUsDropped = %d, want 0 (timeouts are counted separately)", st.PDUsDropped)
	}
	if n := r.b.OpenReassemblies(); n != 0 {
		t.Errorf("OpenReassemblies = %d, want 0", n)
	}
	if n := r.b.HeldReasmBufs(); n != 0 {
		t.Errorf("HeldReasmBufs = %d, want 0", n)
	}
	if !ok2 {
		t.Fatal("clean PDU after the abort was not delivered")
	}
	if !bytes.Equal(got2, data2) {
		t.Error("clean PDU after the abort is corrupted")
	}
	if st.PDUsRx != 1 {
		t.Errorf("PDUsRx = %d, want 1", st.PDUsRx)
	}
}

// TestReasmTimeoutWithoutPushesIsSilent covers the easy half: when
// nothing streamed to the host yet, a timed-out reassembly is reclaimed
// with no marker — the host never learns the PDU existed.
func TestReasmTimeoutWithoutPushesIsSilent(t *testing.T) {
	const timeout = 2 * time.Millisecond
	r := newRig(t, Config{ReasmTimeout: timeout})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(5000, 9)
	r.eng.Go("host", func(p *sim.Proc) {
		// One 16 KB buffer holds the whole PDU, so nothing is pushed
		// before completion.
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, false)
		for i := range cells[:len(cells)-1] {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		p.Sleep(10 * timeout)
		if d, popped := ch.RecvRing.TryPop(p, dpm.Host); popped {
			t.Errorf("unexpected descriptor delivered: %+v", d)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	st := r.b.Stats()
	if st.PDUsTimedOut != 1 || st.RxAbortMarkers != 0 {
		t.Errorf("PDUsTimedOut = %d RxAbortMarkers = %d, want 1 and 0", st.PDUsTimedOut, st.RxAbortMarkers)
	}
	if r.b.OpenReassemblies() != 0 || r.b.HeldReasmBufs() != 0 {
		t.Errorf("reassembly state leaked: open=%d held=%d", r.b.OpenReassemblies(), r.b.HeldReasmBufs())
	}
}

// TestDuplicateCellRejection injects each cell of a SeqNum-strategy PDU
// twice; with RejectDuplicates the replays are discarded, the PDU
// delivers intact, and the per-cause counter records every replay.
func TestDuplicateCellRejection(t *testing.T) {
	r := newRig(t, Config{Strategy: SeqNum, RejectDuplicates: true})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(3000, 10)
	var got []byte
	var ok bool
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, true)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
			if !cells[i].Last {
				// Replay every cell but the Last: a replay arriving after
				// the PDU completed opens a fresh reassembly and is
				// indistinguishable from a new PDU (errorDetected or the
				// timeout handles it, not the duplicate filter).
				r.b.InjectCell(cells[i], i%4)
				p.Sleep(700 * time.Nanosecond)
			}
		}
		got, ok = r.recvPDU(p, ch, 20*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("PDU did not survive duplicated cells")
	}
	st := r.b.Stats()
	if want := int64(len(atm.Segment(5, data, 4, true)) - 1); st.CellsDuplicate != want {
		t.Errorf("CellsDuplicate = %d, want %d", st.CellsDuplicate, want)
	}
	if st.PDUsRx != 1 || st.PDUsDropped != 0 {
		t.Errorf("delivery stats off: %+v", st)
	}
}

// TestCorruptCellDroppedByCRC flips one payload bit in an interior cell;
// with CheckCRC the board's recomputed AAL5 CRC disagrees with the
// trailer and the PDU is discarded before reaching the host.
func TestCorruptCellDroppedByCRC(t *testing.T) {
	r := newRig(t, Config{CheckCRC: true})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(3000, 11)
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, false)
		cells[3].Payload[17] ^= 0x40 // one flipped bit, framing intact
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		if _, ok := r.recvPDU(p, ch, 10*time.Millisecond); ok {
			t.Error("corrupted PDU was delivered")
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	st := r.b.Stats()
	if st.PDUsCRCDropped != 1 {
		t.Errorf("PDUsCRCDropped = %d, want 1", st.PDUsCRCDropped)
	}
	if st.PDUsRx != 0 {
		t.Errorf("PDUsRx = %d, want 0", st.PDUsRx)
	}
	if r.b.OpenReassemblies() != 0 || r.b.HeldReasmBufs() != 0 {
		t.Errorf("reassembly state leaked: open=%d held=%d", r.b.OpenReassemblies(), r.b.HeldReasmBufs())
	}
}

// TestCleanPDUPassesCRC is the control for the CRC path: with CheckCRC
// on, an uncorrupted PDU still delivers byte-exact.
func TestCleanPDUPassesCRC(t *testing.T) {
	r := newRig(t, Config{CheckCRC: true})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(5000, 12)
	var got []byte
	var ok bool
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 2048) // multi-buffer: exercises the shadow across pushes
		cells := atm.Segment(5, data, 4, false)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		got, ok = r.recvPDU(p, ch, 20*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("clean PDU failed under CheckCRC")
	}
	if st := r.b.Stats(); st.PDUsCRCDropped != 0 || st.PDUsRx != 1 {
		t.Errorf("stats off: %+v", st)
	}
}
