package board

import (
	"encoding/binary"
	"testing"

	"repro/internal/atm"
	"repro/internal/mem"
	"repro/internal/queue"
)

// FuzzReasmIngest drives the reassembly state machine directly with
// arbitrary cell streams — malformed lengths, wild sequence numbers,
// replays, merged PDUs — and checks the two properties the firmware
// depends on: it never panics, and every receive buffer it pops is
// handed back exactly once (pushed, scratched, or aborted); a
// double-free here would corrupt the free-buffer accounting on real
// hardware.
func FuzzReasmIngest(f *testing.F) {
	// Seeds: a clean 3-cell PDU under each strategy, then malformed ones.
	clean := func(strat byte) []byte {
		var s []byte
		cells := atm.Segment(5, make([]byte, 100), 4, true)
		for i, c := range cells {
			rec := make([]byte, 6)
			binary.LittleEndian.PutUint16(rec[0:], uint16(c.Seq))
			rec[2] = byte(c.Len)
			if c.EOM {
				rec[3] |= 1
			}
			if c.Last {
				rec[3] |= 2
			}
			rec[4] = byte(i % 4)
			rec[5] = c.Payload[40] // one trailer byte of entropy
			s = append(s, rec...)
		}
		_ = strat
		return s
	}
	f.Add(byte(0), clean(0))
	f.Add(byte(1), clean(1))
	f.Add(byte(2), clean(2))
	f.Add(byte(1), []byte{0xff, 0xff, 0xff, 0x03, 0x00, 0x00}) // huge seq, Last, oversized len
	f.Add(byte(0), []byte{0x00, 0x00, 0x05, 0x02, 0x00, 0x00}) // Last shorter than the trailer
	f.Add(byte(2), []byte{0x00, 0x00, 0x00, 0x00, 0x07, 0x00}) // link out of range

	f.Fuzz(func(t *testing.T, strat byte, stream []byte) {
		const width = 4
		strategy := []ReassemblyStrategy{FourAAL5, SeqNum, ArrivalOrder}[int(strat)%3]
		rs := newReasmState(nil, 5, width)

		live := 0
		returned := map[mem.PhysAddr]int{}
		pop := func() (queue.Desc, bool) {
			if live >= 64 {
				return queue.Desc{}, false
			}
			live++
			return queue.Desc{Addr: mem.PhysAddr(live * 0x10000), Len: 256}, true
		}
		account := func(descs []queue.Desc) {
			for _, d := range descs {
				returned[d.Addr]++
			}
		}

		for len(stream) >= 6 {
			rec := stream[:6]
			stream = stream[6:]
			rc := rxCell{
				c: atm.Cell{
					VCI:  5,
					Seq:  uint32(binary.LittleEndian.Uint16(rec[0:])),
					Len:  int(rec[2]) - 100, // range [-100, 155]: exercises negative and oversized
					EOM:  rec[3]&1 != 0,
					Last: rec[3]&2 != 0,
				},
				link: int(rec[4]) % width,
			}
			if rc.c.Len > 0 {
				for i := 0; i < rc.c.Len && i < atm.CellPayload; i++ {
					rc.c.Payload[i] = rec[5] + byte(i)
				}
			}
			if rs.duplicate(strategy, rc) {
				continue
			}
			off, dataLen, complete, ok := rs.ingest(strategy, rc, width)
			if !ok {
				continue
			}
			if off < 0 || dataLen < 0 || dataLen > rc.c.Len {
				t.Fatalf("ingest returned off=%d dataLen=%d for len=%d", off, dataLen, rc.c.Len)
			}
			rs.record(off, rc.c.Payload[:dataLen])
			segs, _ := rs.extent(off, dataLen, nil, pop)
			total := 0
			for _, s := range segs {
				total += s.Len
			}
			if total > dataLen {
				t.Fatalf("extents cover %d bytes for a %d-byte write", total, dataLen)
			}
			if complete {
				rs.crcOK()
				pushes, scratch := rs.duePushes(true)
				account(pushes)
				account(scratch)
				rs = newReasmState(nil, 5, width)
			} else {
				if rs.errorDetected(width) {
					account(rs.abort())
					rs = newReasmState(nil, 5, width)
					continue
				}
				pushes, _ := rs.duePushes(false)
				account(pushes)
			}
		}
		account(rs.abort())

		if len(returned) != live {
			t.Fatalf("popped %d buffers, %d accounted for", live, len(returned))
		}
		for addr, n := range returned {
			if n != 1 {
				t.Fatalf("buffer %#x returned %d times", uint64(addr), n)
			}
		}
	})
}
