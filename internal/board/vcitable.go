package board

import "repro/internal/atm"

// VCITable is the receive demultiplexer: an open-addressed hash table
// from VCI to channel, replacing the Go map on the per-cell hot path.
// The paper's early-demultiplexing decision (§3.1) puts this lookup in
// front of every arriving cell, so it must stay O(1), allocation-free,
// and branch-light at any tenant count — a Go map lookup hashes through
// an interface-free fast path but still costs a function call, bucket
// probing, and (under growth) write barriers; the open-addressed table
// is a single multiplicative hash plus a linear probe over a dense
// slot array.
//
// Invariants:
//   - capacity is a power of two; load factor is kept below 3/4, so
//     probe sequences stay short and Lookup needs no bounds checks
//     beyond the mask;
//   - deletion uses backward-shift compaction (no tombstones), so churn
//     (open/close cycling) cannot degrade probe lengths over time;
//   - growth happens only in Bind — control-plane work at connection
//     setup — never in Lookup, keeping the data path zero-alloc.
//
// The zero value is an empty table.
type VCITable struct {
	slots []vciSlot
	mask  uint32
	n     int
}

type vciSlot struct {
	ch  *Channel // nil marks an empty slot
	vci atm.VCI
}

// vciHash spreads the 16-bit VCI over the table with a multiplicative
// (Fibonacci) hash; adjacent VCIs — the common allocation pattern —
// land far apart, keeping probe clusters short.
func vciHash(v atm.VCI) uint32 { return uint32(v) * 0x9E3779B1 }

// Lookup returns the channel bound to v, or nil. Zero allocations,
// no calls, one multiply and a masked linear probe.
func (t *VCITable) Lookup(v atm.VCI) *Channel {
	if t.n == 0 {
		return nil
	}
	i := vciHash(v) & t.mask
	for {
		s := &t.slots[i]
		if s.ch == nil {
			return nil
		}
		if s.vci == v {
			return s.ch
		}
		i = (i + 1) & t.mask
	}
}

// Len returns the number of bound VCIs.
func (t *VCITable) Len() int { return t.n }

// Bind routes v to ch, replacing any existing binding. Control plane:
// may grow (and therefore allocate).
func (t *VCITable) Bind(v atm.VCI, ch *Channel) {
	if ch == nil {
		panic("board: VCITable.Bind nil channel")
	}
	if t.slots == nil || 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	i := vciHash(v) & t.mask
	for {
		s := &t.slots[i]
		if s.ch == nil {
			*s = vciSlot{ch: ch, vci: v}
			t.n++
			return
		}
		if s.vci == v {
			s.ch = ch
			return
		}
		i = (i + 1) & t.mask
	}
}

// Unbind removes v's binding and returns the channel it was bound to
// (nil if unbound). Backward-shift compaction keeps the invariant that
// every entry is reachable from its home slot without tombstones.
func (t *VCITable) Unbind(v atm.VCI) *Channel {
	if t.n == 0 {
		return nil
	}
	i := vciHash(v) & t.mask
	for {
		s := &t.slots[i]
		if s.ch == nil {
			return nil
		}
		if s.vci == v {
			break
		}
		i = (i + 1) & t.mask
	}
	ch := t.slots[i].ch
	t.n--
	// Shift the probe cluster back over the hole. An entry at j may
	// move into the hole at i only if its home slot is cyclically
	// outside (i, j] — otherwise moving it would break its own probe
	// chain.
	j := i
	for {
		t.slots[i] = vciSlot{}
		for {
			j = (j + 1) & t.mask
			if t.slots[j].ch == nil {
				return ch
			}
			home := vciHash(t.slots[j].vci) & t.mask
			if cyclicBetween(i, home, j) {
				continue // home lies in (i, j]: entry stays put
			}
			t.slots[i] = t.slots[j]
			i = j
			break
		}
	}
}

// cyclicBetween reports whether x lies in the half-open cyclic interval
// (lo, hi].
func cyclicBetween(lo, x, hi uint32) bool {
	if lo <= hi {
		return lo < x && x <= hi
	}
	return lo < x || x <= hi
}

// grow doubles (or initializes) the slot array and rehashes.
func (t *VCITable) grow() {
	old := t.slots
	newCap := 16
	if len(old) > 0 {
		newCap = 2 * len(old)
	}
	t.slots = make([]vciSlot, newCap)
	t.mask = uint32(newCap - 1)
	t.n = 0
	for i := range old {
		if old[i].ch != nil {
			t.Bind(old[i].vci, old[i].ch)
		}
	}
}
