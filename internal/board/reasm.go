package board

import (
	"repro/internal/atm"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/sim"
)

// rxBuf is one host receive buffer being filled during reassembly.
type rxBuf struct {
	desc   queue.Desc
	base   int // PDU byte offset this buffer starts at
	got    int // bytes DMA'd into it so far
	pushed bool
}

// reasmState is the per-VCI reassembly machine (§2.6). It tracks cell
// placement under the configured skew strategy, the receive buffers
// covering the PDU, and completion.
type reasmState struct {
	ch  *Channel
	vci atm.VCI

	bufs    []rxBuf
	covered int // total bytes of buffer space allocated

	received int
	total    int // cell count, -1 until the Last cell reveals it
	pduLen   int // -1 until the trailer is parsed

	arrivalOff int    // ArrivalOrder placement cursor
	linkCount  []int  // FourAAL5: cells seen per physical link
	eomSeen    []bool // FourAAL5 framing bits observed
	dropping   bool
	lastSeen   bool
	ce         bool // any ingested cell carried the fabric's CE mark
	maxWritten int  // highest stream offset any cell has reached

	firstArrival sim.Time // first cell arrival; telemetry's reassembly span
	lastArrival  sim.Time // last cell arrival; drives Config.ReasmTimeout
	crcWant      uint32   // AAL5 trailer CRC, valid once lastSeen
	shadow       []byte   // firmware copy of PDU bytes (Config.CheckCRC)
	seenSeq      []uint64 // SeqNum duplicate bitmap (Config.RejectDuplicates)
}

func newReasmState(ch *Channel, vci atm.VCI, width int) *reasmState {
	return &reasmState{
		ch:        ch,
		vci:       vci,
		total:     -1,
		pduLen:    -1,
		linkCount: make([]int, width),
		eomSeen:   make([]bool, width),
	}
}

// wouldPlaceAt computes, without side effects, the PDU byte offset the
// given cell would be stored at — used for the double-cell combining
// peek (§2.5.1: "the microprocessor can look at two cell headers before
// deciding what to do with their associated payloads").
func (rs *reasmState) wouldPlaceAt(strategy ReassemblyStrategy, rc rxCell, width int) (int, bool) {
	switch strategy {
	case SeqNum:
		return int(rc.c.Seq) * atm.CellPayload, true
	case FourAAL5:
		if rc.c.Len != atm.CellPayload && !rc.c.Last {
			// Partial cells mid-PDU break the placement arithmetic —
			// the §2.5.2 complexity argument.
			return 0, false
		}
		return (rs.linkCount[rc.link]*width + rc.link) * atm.CellPayload, true
	default: // ArrivalOrder
		return rs.arrivalOff, true
	}
}

// ingest commits one cell to the reassembly: it computes the placement
// offset, updates per-link/arrival counters, learns the PDU length from
// the Last cell's trailer, and reports whether the PDU is now complete.
// dataLen is the number of payload bytes that must actually be written
// to host memory (pad and trailer bytes beyond the PDU length are
// suppressed once the length is known).
func (rs *reasmState) ingest(strategy ReassemblyStrategy, rc rxCell, width int) (off, dataLen int, complete, ok bool) {
	// Firmware sanity check on the cell header: a negative or oversized
	// payload length can't have come off a real link, and a Last cell
	// must at least hold the trailer ParseTrailer is about to read.
	if rc.c.Len < 0 || rc.c.Len > atm.CellPayload || (rc.c.Last && rc.c.Len < atm.TrailerSize) {
		return 0, 0, false, false
	}
	off, ok = rs.wouldPlaceAt(strategy, rc, width)
	if !ok {
		return 0, 0, false, false
	}
	if rc.c.CE {
		rs.ce = true
	}
	switch strategy {
	case SeqNum:
		rs.markSeq(rc.c.Seq)
	case FourAAL5:
		rs.linkCount[rc.link]++
	case ArrivalOrder:
		rs.arrivalOff += rc.c.Len
	}
	if rc.c.EOM {
		rs.eomSeen[rc.link] = true
	}
	rs.received++
	if end := off + rc.c.Len; end > rs.maxWritten {
		rs.maxWritten = end
	}

	if rc.c.Last {
		rs.lastSeen = true
		// The receive processor sees the whole cell in its FIFO, so it
		// can parse the AAL5 trailer before issuing any DMA (§2.5.2's
		// "stop filling the page" problem never arises: pad and trailer
		// bytes simply are not written to host memory).
		tr := atm.ParseTrailer(rc.c.Payload[:rc.c.Len])
		rs.pduLen = int(tr.Length)
		rs.crcWant = tr.CRC
		switch strategy {
		case SeqNum:
			rs.total = int(rc.c.Seq) + 1
		case FourAAL5:
			rs.total = (rs.linkCount[rc.link]-1)*width + rc.link + 1
		default:
			rs.total = rs.received
		}
	}

	dataLen = rc.c.Len
	if rs.pduLen >= 0 {
		// Clamp to the true data extent.
		if off >= rs.pduLen {
			dataLen = 0
		} else if off+dataLen > rs.pduLen {
			dataLen = rs.pduLen - off
		}
	}
	complete = rs.isComplete(strategy, width)
	return off, dataLen, complete, true
}

// isComplete applies the full AAL5 completion predicate. For the
// placement strategies it demands agreement among three independent
// observations — the per-link framing bits, the received cell count,
// and the cell count implied by the trailer's length — so a PDU with
// any cell lost in the network can never be declared complete.
func (rs *reasmState) isComplete(strategy ReassemblyStrategy, width int) bool {
	if rs.total < 0 {
		return false
	}
	if strategy == ArrivalOrder {
		return rs.received >= rs.total
	}
	return rs.received == rs.total &&
		rs.allEOM(width) &&
		atm.CellsFor(rs.pduLen) == rs.total
}

// allEOM reports whether the EOM framing bit has been seen on every
// link that carries part of this PDU (valid once total is known).
func (rs *reasmState) allEOM(width int) bool {
	carrying := rs.total
	if carrying > width {
		carrying = width
	}
	for l := 0; l < carrying; l++ {
		if !rs.eomSeen[l] {
			return false
		}
	}
	return true
}

// errorDetected implements the AAL5-style loss check: every physical
// link delivers in order, so once each link carrying part of this PDU
// has shown its EOM framing bit, every transmitted cell has either
// arrived or been lost. Any disagreement at that point — a count
// shortfall, an excess from a merged successor PDU, or a cell count
// inconsistent with the trailer's length — means cells were lost, and
// the PDU is in error (the §2.3 premise that "mechanisms for detecting
// or tolerating transmission errors are already in place").
func (rs *reasmState) errorDetected(width int) bool {
	if rs.total < 0 || !rs.allEOM(width) {
		return false
	}
	return rs.received != rs.total || atm.CellsFor(rs.pduLen) != rs.total
}

// extent returns the host-memory extents covering [off, off+n) of the
// PDU appended to segs (a caller-supplied scratch slice), popping free
// buffers as needed (and splitting across buffer boundaries, the
// receive-side analogue of the boundary-stop DMA). ok=false means the
// channel is out of receive buffers.
func (rs *reasmState) extent(off, n int, segs []mem.PhysBuffer, pop func() (queue.Desc, bool)) ([]mem.PhysBuffer, bool) {
	for off+n > rs.covered {
		d, got := pop()
		if !got {
			return segs, false
		}
		rs.bufs = append(rs.bufs, rxBuf{desc: d, base: rs.covered})
		rs.covered += int(d.Len)
	}
	if n == 0 {
		return segs, true
	}
	// Locate the buffer containing off (linear scan; buffer lists are
	// short) and slice the range across boundaries.
	for i := range rs.bufs {
		b := &rs.bufs[i]
		bufEnd := b.base + int(b.desc.Len)
		if off >= bufEnd || off+n <= b.base {
			continue
		}
		start := off
		if start < b.base {
			start = b.base
		}
		end := off + n
		if end > bufEnd {
			end = bufEnd
		}
		segs = append(segs, mem.PhysBuffer{
			Addr: b.desc.Addr + mem.PhysAddr(start-b.base),
			Len:  end - start,
		})
		b.got += end - start
	}
	return segs, true
}

// maxPadSpan bounds how far pad+trailer bytes can reach back from the
// end of the cell stream: at most 7 bytes of pad in the penultimate
// cell plus a full final cell.
const maxPadSpan = atm.CellPayload + atm.TrailerSize - 1

// duePushes returns descriptors that have become publishable, in stream
// order (the host expects a PDU's buffers in order). Interior buffers
// completely filled with PDU data stream to the host before the PDU
// finishes ("when the buffer is filled ... the processor adds the buffer
// to the receive queue", §2.1.1); on completion the remaining buffers
// follow, the final one flagged EOP and carrying the PDU length in Aux.
// Wholly-scrap buffers (pad/trailer bytes written beyond the PDU data
// before the length was known) are recycled via the scratch list.
func (rs *reasmState) duePushes(complete bool) (pushes []queue.Desc, scratch []queue.Desc) {
	if complete {
		return rs.finalPushes()
	}
	for i := range rs.bufs {
		b := &rs.bufs[i]
		if b.pushed {
			continue
		}
		if b.got < int(b.desc.Len) {
			break // in-order constraint: later buffers must wait
		}
		end := b.base + int(b.desc.Len)
		allData := false
		if rs.pduLen >= 0 {
			allData = end <= rs.pduLen
		} else {
			// Length unknown: safe only when the stream provably extends
			// beyond any possible pad region.
			allData = rs.maxWritten >= end+maxPadSpan
		}
		if !allData {
			break
		}
		d := b.desc
		d.VCI = rs.vci
		d.Flags = 0
		b.pushed = true
		pushes = append(pushes, d)
	}
	return pushes, nil
}

func (rs *reasmState) finalPushes() (pushes []queue.Desc, scratch []queue.Desc) {
	lastDataBuf := 0
	for i := range rs.bufs {
		if rs.bufs[i].base < rs.pduLen {
			lastDataBuf = i
		}
	}
	for i := range rs.bufs {
		b := &rs.bufs[i]
		if b.pushed {
			continue
		}
		dataBytes := rs.pduLen - b.base
		if dataBytes > int(b.desc.Len) {
			dataBytes = int(b.desc.Len)
		}
		if dataBytes < 0 {
			dataBytes = 0
		}
		b.pushed = true
		if i > lastDataBuf {
			// Pure scrap beyond the data: recycle silently.
			scratch = append(scratch, b.desc)
			continue
		}
		d := b.desc
		d.Len = uint32(dataBytes)
		d.VCI = rs.vci
		if i == lastDataBuf {
			d.Flags = queue.FlagEOP
			if rs.ce {
				d.Flags |= queue.FlagCE
			}
			d.Aux = uint32(rs.pduLen)
		} else {
			d.Flags = 0
		}
		pushes = append(pushes, d)
	}
	return pushes, scratch
}

// maxTrackedSeq bounds the SeqNum duplicate bitmap: sequence numbers at
// or beyond it are not tracked (a 2^32 Seq would otherwise let a single
// malformed cell allocate a 512 MB bitmap). 2^16 cells covers a 2.8 MB
// PDU — far past any MTU this board carries.
const maxTrackedSeq = 1 << 16

// duplicate reports whether rc replays a cell this reassembly already
// ingested. Exact detection is only possible under SeqNum (each cell
// names its slot); every strategy can at least recognize a second Last
// cell. FourAAL5's per-link counters cannot distinguish a duplicate
// from a merged successor PDU — that case is left to errorDetected.
func (rs *reasmState) duplicate(strategy ReassemblyStrategy, rc rxCell) bool {
	if rc.c.Last && rs.lastSeen {
		return true
	}
	return strategy == SeqNum && rs.seqSeen(rc.c.Seq)
}

func (rs *reasmState) seqSeen(seq uint32) bool {
	if seq >= maxTrackedSeq {
		return false
	}
	w, bit := int(seq/64), seq%64
	return w < len(rs.seenSeq) && rs.seenSeq[w]&(1<<bit) != 0
}

func (rs *reasmState) markSeq(seq uint32) {
	if seq >= maxTrackedSeq {
		return
	}
	w, bit := int(seq/64), seq%64
	for w >= len(rs.seenSeq) {
		rs.seenSeq = append(rs.seenSeq, 0)
	}
	rs.seenSeq[w] |= 1 << bit
}

// record mirrors a cell's accepted payload bytes into the firmware
// shadow copy that crcOK verifies (Config.CheckCRC only). It receives
// exactly the clamped byte range the DMA writes, so the shadow matches
// host memory byte for byte.
func (rs *reasmState) record(off int, data []byte) {
	if need := off + len(data); need > len(rs.shadow) {
		if need > cap(rs.shadow) {
			grown := make([]byte, need)
			copy(grown, rs.shadow)
			rs.shadow = grown
		} else {
			rs.shadow = rs.shadow[:need]
		}
	}
	copy(rs.shadow[off:], data)
}

// crcOK recomputes the AAL5 CRC over the shadow copy and compares it
// with the trailer's value. Only meaningful once the PDU is complete.
func (rs *reasmState) crcOK() bool {
	return rs.pduLen >= 0 && len(rs.shadow) >= rs.pduLen &&
		atm.Checksum(rs.shadow[:rs.pduLen]) == rs.crcWant
}

// anyPushed reports whether any of the reassembly's buffers already
// streamed to the host — if so, abandoning it must send an abort marker
// after them.
func (rs *reasmState) anyPushed() bool {
	for i := range rs.bufs {
		if rs.bufs[i].pushed {
			return true
		}
	}
	return false
}

// abort returns every un-pushed buffer for recycling when reassembly is
// abandoned.
func (rs *reasmState) abort() (scratch []queue.Desc) {
	for i := range rs.bufs {
		if !rs.bufs[i].pushed {
			rs.bufs[i].pushed = true
			scratch = append(scratch, rs.bufs[i].desc)
		}
	}
	return scratch
}
