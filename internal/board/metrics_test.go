package board

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
)

// TestInjectCellZeroAlloc pins the fig3 receive hot path's entry: a
// cell entering the on-board FIFO allocates nothing — with the
// telemetry plane disabled AND enabled. The instrumentation is one
// nil-checked high-water observation on fixed-size state, so turning
// metrics on must not add a single allocation per cell.
func TestInjectCellZeroAlloc(t *testing.T) {
	for _, on := range []bool{false, true} {
		r := newRig(t, Config{})
		if on {
			r.b.RegisterMetrics(metrics.New(), "b")
		}
		c := atm.Cell{VCI: 5, Len: atm.CellPayload}
		// The FIFO fills partway through and later cells count as FIFO
		// drops; both the accept and drop paths must be alloc-free.
		allocs := testing.AllocsPerRun(1000, func() { r.b.InjectCell(c, 0) })
		if allocs != 0 {
			t.Errorf("metrics=%v: InjectCell allocated %.1f per cell, want 0", on, allocs)
		}
		r.eng.Shutdown()
	}
}

// TestBoardMetricsHighWater checks the registered FIFO high-water
// handle tracks occupancy through the public injection path.
func TestBoardMetricsHighWater(t *testing.T) {
	r := newRig(t, Config{})
	defer r.eng.Shutdown()
	reg := metrics.New()
	r.b.RegisterMetrics(reg, "b")
	for i := 0; i < 5; i++ {
		if !r.b.InjectCell(atm.Cell{VCI: 5, Len: atm.CellPayload}, 0) {
			t.Fatalf("cell %d rejected", i)
		}
	}
	if v, ok := reg.Get("b/rx_fifo_high_water"); !ok || v.Value != 5 {
		t.Errorf("rx_fifo_high_water = %+v, want 5", v)
	}
}
