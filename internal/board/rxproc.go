package board

import (
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/sim"
)

// rxCmd is one DMA-write transaction for the receive DMA controller,
// optionally carrying descriptor pushes to publish once the data is in
// host memory (so a descriptor never becomes visible before its bytes).
type rxCmd struct {
	ch       *Channel
	segs     []mem.PhysBuffer
	data     []byte
	combined bool // an 88-byte double-cell transfer
	pushes   []queue.Desc
}

// combinePeekCost prices the receive processor's look at the second cell
// header when deciding on a double-cell DMA (§2.5.1).
const combinePeekCost = 150 * time.Nanosecond

// rxProc is the receive on-board processor: it drains the cell FIFO,
// demultiplexes by VCI (the early demultiplexing decision fbufs and ADCs
// rely on, §3.1), runs the skew-tolerant reassembly, and issues commands
// to the receive DMA controller — combining contiguous payload pairs
// into double-cell DMAs when so configured.
func (b *Board) rxProc(p *sim.Proc) {
	for {
		rc := b.rxFIFO.Recv(p)
		if rc.qch != nil {
			rc.qch.fifoCells-- // release the RxFIFOQuota charge
		}
		b.stats.CellsRx++
		p.Sleep(b.cfg.CellOverheadRx)
		b.handleCell(p, rc)
	}
}

func (b *Board) getReasm(ch *Channel, vci atm.VCI) *reasmState {
	rs := ch.reasm[vci]
	if rs == nil {
		rs = newReasmState(ch, vci, b.cfg.StripeWidth)
		rs.firstArrival = b.eng.Now()
		ch.reasm[vci] = rs
		if b.mReasmOpen != nil {
			b.mReasmOpen.Observe(int64(b.OpenReassemblies()))
		}
	}
	return rs
}

// popFree takes the next receive buffer for ch: internally recycled
// scratch first, then the host-supplied free ring, validating ADC frame
// authorization (§3.2).
func (b *Board) popFree(p *sim.Proc, ch *Channel) (queue.Desc, bool) {
	for {
		if n := len(ch.stash); n > 0 {
			d := ch.stash[n-1]
			ch.stash = ch.stash[:n-1]
			return d, true
		}
		d, ok := ch.FreeRing.TryPop(p, dpm.Board)
		if !ok {
			return queue.Desc{}, false
		}
		if d.Len == 0 {
			// A zero-length buffer can never make reassembly progress;
			// discard it (firmware sanity check).
			continue
		}
		if !b.authorized(ch, d) {
			b.violation(ch, d.VCI)
			continue // discard the illegal buffer, try the next
		}
		return d, true
	}
}

func (b *Board) handleCell(p *sim.Proc, rc rxCell) {
	ch := b.demux.Lookup(rc.c.VCI)
	if ch == nil || !ch.open {
		b.stats.CellsNoVCI++
		return
	}
	if ch.resync[rc.c.VCI] {
		// AAL5 resynchronization (Config.ReasmResync): a framing error
		// aborted a PDU mid-stream, so cells up to and including the next
		// Last cell belong to the abandoned PDU and must not open a new
		// reassembly — the Last cell marks the boundary where clean
		// framing resumes.
		b.stats.CellsResync++
		if rc.c.Last {
			delete(ch.resync, rc.c.VCI)
		}
		return
	}
	rs := b.getReasm(ch, rc.c.VCI)
	// Refresh the idle clock before any sleep below: a reassembly being
	// actively fed must never expire mid-cell.
	b.noteReasmActivity(rs)

	if b.cfg.RejectDuplicates && rs.duplicate(b.cfg.Strategy, rc) {
		b.stats.CellsDuplicate++
		if b.eng.Tracing() {
			b.eng.Tracef("drop: %s duplicate cell vci=%d seq=%d", b.cfg.Name, rc.c.VCI, rc.c.Seq)
		}
		return
	}

	off, dataLen, complete, ok := rs.ingest(b.cfg.Strategy, rc, b.cfg.StripeWidth)
	if !ok {
		// Placement failure (e.g. partial cell under a placement
		// strategy): abandon the PDU.
		rs.dropping = true
		if rc.c.Last || rs.lastSeen {
			b.finishRxPDU(p, ch, rs, false)
		}
		return
	}

	data := b.getRxData()
	data = append(data, rc.c.Payload[:dataLen]...)
	n := dataLen
	combined := false
	if b.cfg.CheckCRC && dataLen > 0 {
		if rs.shadow == nil {
			rs.shadow = b.getShadow()
		}
		rs.record(off, rc.c.Payload[:dataLen])
	}

	// Double-cell combining: look at the next cell header; if its
	// payload lands immediately after this one, issue a single longer
	// DMA (§2.5.1). Skew makes this opportunity rare (§2.6).
	if b.cfg.RxDMA == DoubleCell && !complete && dataLen == atm.CellPayload && !rs.dropping {
		if next, okPeek := b.rxFIFO.Peek(); okPeek && next.c.VCI == rc.c.VCI && !next.c.Last &&
			!(b.cfg.RejectDuplicates && rs.duplicate(b.cfg.Strategy, next)) {
			if noff, okp := rs.wouldPlaceAt(b.cfg.Strategy, next, b.cfg.StripeWidth); okp && noff == off+dataLen {
				if popped, _ := b.rxFIFO.TryRecv(); popped.qch != nil {
					popped.qch.fifoCells-- // release the RxFIFOQuota charge
				}
				b.stats.CellsRx++
				p.Sleep(combinePeekCost)
				_, dl2, c2, ok2 := rs.ingest(b.cfg.Strategy, next, b.cfg.StripeWidth)
				if ok2 {
					data = append(data, next.c.Payload[:dl2]...)
					n += dl2
					complete = c2
					combined = true
					if b.cfg.CheckCRC && dl2 > 0 {
						rs.record(off+dataLen, next.c.Payload[:dl2])
					}
				}
			}
		}
	}

	if rs.dropping {
		b.putRxData(data)
		if complete {
			b.finishRxPDU(p, ch, rs, false)
		}
		return
	}

	if !complete && b.cfg.Strategy != ArrivalOrder && rs.errorDetected(b.cfg.StripeWidth) {
		// Cells were lost in the network: discard the PDU (AAL5-style).
		b.putRxData(data)
		if b.cfg.ReasmResync && !rc.c.Last {
			// The stream is mid-PDU: swallow the abandoned PDU's tail so
			// its Last cell cannot seed a frame-shifted reassembly.
			ch.resync[rc.c.VCI] = true
		}
		b.finishRxPDU(p, ch, rs, false)
		return
	}

	segs, haveBufs := rs.extent(off, n, b.getSegs(), func() (queue.Desc, bool) { return b.popFree(p, ch) })
	if !haveBufs {
		b.putRxData(data)
		b.putSegs(segs)
		// Out of receive buffers: the board drops the PDU before it
		// consumes any host resources — under overload this is what
		// sheds low-priority traffic early (§3.1).
		rs.dropping = true
		if complete {
			b.finishRxPDU(p, ch, rs, false)
		}
		return
	}

	if complete && b.cfg.CheckCRC && !rs.crcOK() {
		// The recomputed AAL5 CRC disagrees with the trailer: a corrupted
		// cell slipped through with consistent framing. Discard the PDU
		// before it reaches the host (§2.3: error mechanisms are in place).
		b.putRxData(data)
		b.putSegs(segs)
		b.stats.PDUsCRCDropped++
		if b.eng.Tracing() {
			b.eng.Tracef("drop: %s rx CRC mismatch vci=%d len=%d", b.cfg.Name, rc.c.VCI, rs.pduLen)
		}
		b.finishRxPDU(p, ch, rs, false)
		return
	}

	cmd := rxCmd{ch: ch, segs: segs, data: data, combined: combined}
	if complete && b.eng.Tracing() {
		b.eng.Tracef("pdu: %s rx complete vci=%d len=%d", b.cfg.Name, rc.c.VCI, rs.pduLen)
	}
	if complete {
		b.ensureEOPBuffer(p, ch, rs)
		pushes, scratch := rs.duePushes(true)
		ch.stash = append(ch.stash, scratch...)
		b.stats.ScratchRecycled += int64(len(scratch))
		cmd.pushes = pushes
		b.stats.PDUsRx++
		if b.mReasmSpan != nil {
			b.mReasmSpan.Observe((b.eng.Now() - rs.firstArrival).Microseconds())
		}
		if b.eng.Recording() {
			b.eng.Emit(sim.TraceEvent{At: rs.firstArrival, Dur: b.eng.Now() - rs.firstArrival, Ph: 'X', Comp: b.trkRx, Cat: "pdu", Name: "reasm", Arg: int64(rs.pduLen)})
		}
		delete(ch.reasm, rc.c.VCI)
		b.releaseShadow(rs)
	} else {
		pushes, _ := rs.duePushes(false)
		cmd.pushes = pushes
	}
	b.rxCmds.Send(p, cmd)
}

// ensureEOPBuffer guarantees a completed PDU has at least one buffer to
// carry its EOP descriptor (zero-length PDUs otherwise allocate none).
func (b *Board) ensureEOPBuffer(p *sim.Proc, ch *Channel, rs *reasmState) {
	if len(rs.bufs) > 0 {
		return
	}
	if d, ok := b.popFree(p, ch); ok {
		rs.bufs = append(rs.bufs, rxBuf{desc: d, base: 0})
		rs.covered += int(d.Len)
	}
}

// finishRxPDU retires an abandoned reassembly, recycling its buffers.
// If part of the PDU already streamed to the host, an abort-marker
// descriptor (FlagErr) follows it through the DMA command queue — so it
// orders behind any in-flight data — telling the driver to discard the
// partial delivery and recycle its buffers.
func (b *Board) finishRxPDU(p *sim.Proc, ch *Channel, rs *reasmState, delivered bool) {
	if !delivered && rs.anyPushed() {
		b.rxCmds.Send(p, rxCmd{ch: ch, pushes: []queue.Desc{{VCI: rs.vci, Flags: queue.FlagErr}}})
		b.stats.RxAbortMarkers++
	}
	scratch := rs.abort()
	ch.stash = append(ch.stash, scratch...)
	b.stats.ScratchRecycled += int64(len(scratch))
	if !delivered {
		b.stats.PDUsDropped++
		if b.eng.Tracing() {
			b.eng.Tracef("drop: %s PDU abandoned vci=%d received=%d", b.cfg.Name, rs.vci, rs.received)
		}
	}
	delete(ch.reasm, rs.vci)
	b.releaseShadow(rs)
}

// rxDMAEngine is the receive DMA controller: one bus write transaction
// per command segment, then the memory/cache effect, then any descriptor
// publication that was gated on this data.
func (b *Board) rxDMAEngine(p *sim.Proc) {
	for {
		cmd := b.rxCmds.Recv(p)
		pos := 0
		for _, seg := range cmd.segs {
			b.host.Bus.DMAWrite(p, seg.Len)
			b.host.Cache.DMAWrite(seg.Addr, cmd.data[pos:pos+seg.Len])
			pos += seg.Len
		}
		if len(cmd.segs) == 1 && cmd.combined {
			b.stats.CombinedDMAs++
		} else {
			b.stats.SingleDMAs += int64(len(cmd.segs))
		}
		for _, d := range cmd.pushes {
			b.pushRecvDesc(p, cmd.ch, d)
		}
		b.putRxData(cmd.data)
		b.putSegs(cmd.segs)
	}
}
