package board

// SetDebugDrops toggles drop diagnostics (test aid).
func SetDebugDrops(v bool) { debugDrops = v }
