package board

import (
	"time"

	"repro/internal/atm"
	"repro/internal/sim"
)

// fictReq controls the fictitious-PDU generator.
type fictReq struct {
	stop     bool
	vci      atm.VCI
	pdus     [][]byte
	interval time.Duration
	count    int // 0 = until stopped
}

// DefaultFictInterval paces fictitious cells at the aggregate payload
// rate of the striped 622 Mbps channel, so the receive-side isolation
// experiment is bounded by the link speed exactly as the paper's was.
const DefaultFictInterval = 684 * time.Nanosecond

// StartFictitious programs the receive processor's generator mode used
// for the Figure 2/3 experiments: "the receiver processor of the OSIRIS
// board was programmed to generate fictitious PDUs as fast as the
// receiving host could absorb them" (§4). The given PDU sequence (e.g.
// the pre-built IP fragments of one UDP message) is segmented and fed
// through the normal reassembly/DMA path, one cell per interval (0
// means DefaultFictInterval; a negative interval runs unpaced). count
// bounds the number of sequence repetitions (0 = until StopFictitious).
//
// The VCI must already be bound to a channel.
func (b *Board) StartFictitious(vci atm.VCI, pdus [][]byte, interval time.Duration, count int) {
	copied := make([][]byte, len(pdus))
	for i, p := range pdus {
		copied[i] = append([]byte(nil), p...)
	}
	req := fictReq{vci: vci, pdus: copied, interval: interval, count: count}
	if !b.fireCtl.TrySend(req) {
		panic("board: fictitious generator busy")
	}
}

// StopFictitious halts the generator after the sequence in progress.
func (b *Board) StopFictitious() {
	b.fireCtl.TrySend(fictReq{stop: true})
}

// fictProc runs the generator. It shares the receive FIFO with the link
// path, so generated cells exercise exactly the reassembly, DMA, and
// interrupt machinery that real traffic does.
func (b *Board) fictProc(p *sim.Proc) {
	for {
		req := b.fireCtl.Recv(p)
		if req.stop {
			continue
		}
		interval := req.interval
		if interval == 0 {
			interval = DefaultFictInterval
		}
		sent := 0
		for req.count == 0 || sent < req.count {
			if r, ok := b.fireCtl.TryRecv(); ok && r.stop {
				break
			}
			for _, pdu := range req.pdus {
				cells := atm.Segment(req.vci, pdu, b.cfg.StripeWidth, b.cfg.Strategy.UsesSeqNumbers())
				for i := range cells {
					b.rxFIFO.Send(p, rxCell{c: cells[i], link: i % b.cfg.StripeWidth})
					if b.mRxFIFOHW != nil {
						b.mRxFIFOHW.Observe(int64(b.rxFIFO.Len()))
					}
					if b.eng.Recording() {
						b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'C', Comp: b.trkRx, Cat: "q", Name: "rx-fifo", Arg: int64(b.rxFIFO.Len())})
					}
					if interval > 0 {
						p.Sleep(interval)
					}
				}
			}
			sent++
		}
	}
}
