package board

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/hostsim"
	"repro/internal/queue"
	"repro/internal/sim"
)

// rig is a one-host test bench around a board.
type rig struct {
	eng  *sim.Engine
	host *hostsim.Host
	b    *Board
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	e := sim.NewEngine(42)
	h := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	b := New(e, h, cfg)
	return &rig{eng: e, host: h, b: b}
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*3 + seed
	}
	return out
}

// writePDU stores data in host memory as a chain of physically
// contiguous buffers of the given sizes and returns their descriptors.
func (r *rig) writePDU(t *testing.T, data []byte, sizes []int, vci atm.VCI) []queue.Desc {
	t.Helper()
	var descs []queue.Desc
	off := 0
	for i, size := range sizes {
		frames, err := r.host.Mem.AllocContiguous((size + r.host.Mem.PageSize() - 1) / r.host.Mem.PageSize())
		if err != nil {
			t.Fatal(err)
		}
		pa := r.host.Mem.FrameAddr(frames[0])
		r.host.Mem.Write(pa, data[off:off+size])
		d := queue.Desc{Addr: pa, Len: uint32(size), VCI: vci}
		if i == len(sizes)-1 {
			d.Flags = queue.FlagEOP
		}
		descs = append(descs, d)
		off += size
	}
	if off != len(data) {
		t.Fatalf("sizes sum %d != data %d", off, len(data))
	}
	return descs
}

// supplyFree pushes n receive buffers of the given size onto a channel's
// free ring, returning their descriptors.
func (r *rig) supplyFree(t *testing.T, p *sim.Proc, ch *Channel, n, size int) []queue.Desc {
	t.Helper()
	var descs []queue.Desc
	for i := 0; i < n; i++ {
		frames, err := r.host.Mem.AllocContiguous((size + r.host.Mem.PageSize() - 1) / r.host.Mem.PageSize())
		if err != nil {
			t.Fatal(err)
		}
		d := queue.Desc{Addr: r.host.Mem.FrameAddr(frames[0]), Len: uint32(size)}
		if !ch.FreeRing.TryPush(p, dpm.Host, d) {
			t.Fatal("free ring full")
		}
		descs = append(descs, d)
	}
	return descs
}

// recvPDU polls a channel's receive ring until a full PDU (through EOP)
// arrives, gathers its bytes from host memory, and returns them.
func (r *rig) recvPDU(p *sim.Proc, ch *Channel, timeout time.Duration) ([]byte, bool) {
	deadline := p.Now().Add(timeout)
	var out []byte
	for {
		d, ok := ch.RecvRing.TryPop(p, dpm.Host)
		if !ok {
			if p.Now() >= deadline {
				return nil, false
			}
			p.Sleep(2 * time.Microsecond)
			continue
		}
		out = append(out, r.host.Mem.Read(d.Addr, int(d.Len))...)
		if d.Flags&queue.FlagEOP != 0 {
			return out, true
		}
	}
}

// sendPDU pushes a descriptor chain on the kernel tx ring and kicks the
// board.
func (r *rig) sendPDU(t *testing.T, p *sim.Proc, ch *Channel, descs []queue.Desc) {
	t.Helper()
	for _, d := range descs {
		for !ch.TxRing.TryPush(p, dpm.Host, d) {
			p.Sleep(5 * time.Microsecond)
			r.b.KickTx()
		}
	}
	r.b.KickTx()
}

func TestTransmitSegmentsPDUCorrectly(t *testing.T) {
	r := newRig(t, Config{})
	r.b.BindVCI(7, 0)
	data := pattern(1000, 1)
	var cells []atm.Cell
	r.b.SetTxSink(func(c atm.Cell, link int) { cells = append(cells, c) })
	descs := r.writePDU(t, data, []int{1000}, 7)
	r.eng.Go("host", func(p *sim.Proc) { r.sendPDU(t, p, r.b.KernelChannel(), descs) })
	r.eng.Run()
	r.eng.Shutdown()

	if want := atm.CellsFor(1000); len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	vci, got, err := atm.Reassemble(cells)
	if err != nil {
		t.Fatal(err)
	}
	if vci != 7 || !bytes.Equal(got, data) {
		t.Error("transmit round trip mismatch")
	}
	if r.b.Stats().PDUsTx != 1 {
		t.Errorf("PDUsTx = %d", r.b.Stats().PDUsTx)
	}
}

func TestTransmitLinkAssignmentPerPDU(t *testing.T) {
	r := newRig(t, Config{})
	r.b.BindVCI(7, 0)
	var links []int
	r.b.SetTxSink(func(c atm.Cell, link int) { links = append(links, link) })
	data := pattern(400, 2) // 10 cells
	descs := r.writePDU(t, data, []int{400}, 7)
	r.eng.Go("host", func(p *sim.Proc) { r.sendPDU(t, p, r.b.KernelChannel(), descs) })
	r.eng.Run()
	r.eng.Shutdown()
	for i, l := range links {
		if l != i%4 {
			t.Fatalf("cell %d on link %d, want %d", i, l, i%4)
		}
	}
}

func TestTransmitChainedBuffersSplitCells(t *testing.T) {
	// A 28-byte header buffer followed by a body: the first cell spans
	// the buffer boundary and must be composed from two DMA segments
	// under the boundary-stop policy (§2.5.2).
	r := newRig(t, Config{})
	r.b.BindVCI(9, 0)
	var cells []atm.Cell
	r.b.SetTxSink(func(c atm.Cell, link int) { cells = append(cells, c) })
	data := pattern(28+500, 3)
	descs := r.writePDU(t, data, []int{28, 500}, 9)
	r.eng.Go("host", func(p *sim.Proc) { r.sendPDU(t, p, r.b.KernelChannel(), descs) })
	r.eng.Run()
	r.eng.Shutdown()
	_, got, err := atm.Reassemble(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("chained-buffer PDU corrupted")
	}
	if r.b.Stats().SplitCellsTx == 0 {
		t.Error("no split cells recorded for a misaligned chain")
	}
	if r.b.Stats().PartialCellsTx != 0 {
		t.Error("boundary-stop policy emitted partial cells")
	}
}

func TestFixedCellPolicyEmitsPartialCells(t *testing.T) {
	r := newRig(t, Config{TxPolicy: FixedCell, Strategy: ArrivalOrder})
	r.b.BindVCI(9, 0)
	var cells []atm.Cell
	r.b.SetTxSink(func(c atm.Cell, link int) { cells = append(cells, c) })
	data := pattern(28+500, 4)
	descs := r.writePDU(t, data, []int{28, 500}, 9)
	r.eng.Go("host", func(p *sim.Proc) { r.sendPDU(t, p, r.b.KernelChannel(), descs) })
	r.eng.Run()
	r.eng.Shutdown()
	if r.b.Stats().PartialCellsTx == 0 {
		t.Error("fixed-cell policy produced no partial cells for a 28-byte header")
	}
	// Functionally the concatenation still reassembles.
	_, got, err := atm.Reassemble(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("partial-cell PDU corrupted")
	}
}

func TestReceiveDeliversPDU(t *testing.T) {
	r := newRig(t, Config{})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(5000, 5)
	var got []byte
	var ok bool
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, false)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		got, ok = r.recvPDU(p, ch, 10*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !ok {
		t.Fatal("PDU not delivered")
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch: got %d bytes", len(got))
	}
	if r.b.Stats().PDUsRx != 1 {
		t.Errorf("PDUsRx = %d", r.b.Stats().PDUsRx)
	}
}

func TestReceiveMultiBufferPDU(t *testing.T) {
	// A 5000-byte PDU into 2048-byte buffers: must span 3 buffers, with
	// interior buffers streamed before completion and the EOP descriptor
	// carrying the PDU length.
	r := newRig(t, Config{})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(5000, 6)
	var descs []queue.Desc
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 2048)
		cells := atm.Segment(5, data, 4, false)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		deadline := p.Now().Add(20 * time.Millisecond)
		for {
			d, popped := ch.RecvRing.TryPop(p, dpm.Host)
			if popped {
				descs = append(descs, d)
				if d.Flags&queue.FlagEOP != 0 {
					return
				}
			} else if p.Now() >= deadline {
				return
			} else {
				p.Sleep(2 * time.Microsecond)
			}
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if len(descs) != 3 {
		t.Fatalf("descs = %d, want 3 (2048+2048+904)", len(descs))
	}
	if descs[0].Len != 2048 || descs[1].Len != 2048 || descs[2].Len != 904 {
		t.Errorf("desc lens = %d,%d,%d", descs[0].Len, descs[1].Len, descs[2].Len)
	}
	eop := descs[2]
	if eop.Aux != 5000 {
		t.Errorf("EOP Aux = %d, want 5000", eop.Aux)
	}
	var got []byte
	for _, d := range descs {
		got = append(got, r.host.Mem.Read(d.Addr, int(d.Len))...)
	}
	if !bytes.Equal(got, data) {
		t.Error("multi-buffer payload mismatch")
	}
}

// injectSkewed delivers a PDU's cells the way skewed striped links
// would: per-link order preserved, but one link delayed by `lag` cells.
func injectSkewed(r *rig, p *sim.Proc, cells []atm.Cell, lagLink, lag int) {
	perLink := make([][]atm.Cell, 4)
	for i := range cells {
		perLink[i%4] = append(perLink[i%4], cells[i])
	}
	idx := make([]int, 4)
	for round := 0; ; round++ {
		progress := false
		for l := 0; l < 4; l++ {
			turn := round
			if l == lagLink {
				turn = round - lag // this link runs behind
			}
			if turn >= 0 && idx[l] < len(perLink[l]) && idx[l] <= turn {
				r.b.InjectCell(perLink[l][idx[l]], l)
				idx[l]++
				progress = true
				p.Sleep(700 * time.Nanosecond)
			}
		}
		done := true
		for l := 0; l < 4; l++ {
			if idx[l] < len(perLink[l]) {
				done = false
			}
		}
		if done {
			return
		}
		if !progress {
			p.Sleep(700 * time.Nanosecond)
		}
	}
}

func TestFourAAL5ReassemblyToleratesSkew(t *testing.T) {
	r := newRig(t, Config{Strategy: FourAAL5})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(4000, 7)
	var got []byte
	var ok bool
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, false)
		injectSkewed(r, p, cells, 1, 3)
		got, ok = r.recvPDU(p, ch, 20*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !ok {
		t.Fatal("skewed PDU not delivered")
	}
	if !bytes.Equal(got, data) {
		t.Error("four-AAL5 reassembly corrupted under skew")
	}
}

func TestSeqNumReassemblyToleratesSkew(t *testing.T) {
	r := newRig(t, Config{Strategy: SeqNum})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(4000, 8)
	var got []byte
	var ok bool
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, true)
		injectSkewed(r, p, cells, 2, 5)
		got, ok = r.recvPDU(p, ch, 20*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !ok {
		t.Fatal("skewed PDU not delivered")
	}
	if !bytes.Equal(got, data) {
		t.Error("seqnum reassembly corrupted under skew")
	}
}

func TestArrivalOrderCorruptsUnderSkew(t *testing.T) {
	// The ablation: arrival-order placement is only correct without
	// skew; with a lagging link the payload must NOT reassemble
	// correctly (this is why the strategies exist).
	r := newRig(t, Config{Strategy: ArrivalOrder})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(4000, 9)
	var got []byte
	var ok bool
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, false)
		injectSkewed(r, p, cells, 1, 3)
		got, ok = r.recvPDU(p, ch, 20*time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if ok && bytes.Equal(got, data) {
		t.Error("arrival-order reassembly survived skew; ablation should corrupt")
	}
}

func TestInterruptSuppressionOnBurst(t *testing.T) {
	// A burst of PDUs delivered while the host is slow to drain must
	// raise far fewer interrupts than PDUs (§2.1.2).
	r := newRig(t, Config{})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	const pdus = 20
	data := pattern(1000, 10)
	received := 0
	r.eng.Go("feeder", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 63, 2048)
		for k := 0; k < pdus; k++ {
			cells := atm.Segment(5, data, 4, false)
			for i := range cells {
				r.b.InjectCell(cells[i], i%4)
				p.Sleep(700 * time.Nanosecond)
			}
		}
	})
	r.eng.Go("slow-host", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let the burst land first
		for received < pdus {
			if _, popped := ch.RecvRing.TryPop(p, dpm.Host); popped {
				received++
			} else {
				p.Sleep(10 * time.Microsecond)
			}
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if received != pdus {
		t.Fatalf("received %d PDUs", received)
	}
	if irqs := r.b.Stats().RxIRQs; irqs >= pdus/2 {
		t.Errorf("RxIRQs = %d for %d PDUs; suppression ineffective", irqs, pdus)
	}
}

func TestReceiveInterruptPerIsolatedPDU(t *testing.T) {
	// Isolated arrivals (host drains between PDUs) get one interrupt
	// each — low latency for individually arriving packets (§2.1.2).
	r := newRig(t, Config{})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(500, 11)
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 16, 2048)
		for k := 0; k < 5; k++ {
			cells := atm.Segment(5, data, 4, false)
			for i := range cells {
				r.b.InjectCell(cells[i], i%4)
				p.Sleep(700 * time.Nanosecond)
			}
			if _, popped := r.recvPDU(p, ch, 10*time.Millisecond); !popped {
				t.Error("PDU lost")
			}
			p.Sleep(100 * time.Microsecond)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if irqs := r.b.Stats().RxIRQs; irqs != 5 {
		t.Errorf("RxIRQs = %d, want 5 (one per isolated PDU)", irqs)
	}
}

func TestDoubleCellCombiningInOrder(t *testing.T) {
	r := newRig(t, Config{RxDMA: DoubleCell})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(8800, 12) // 200+ cells
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 8, 16384)
		cells := atm.Segment(5, data, 4, false)
		// Deliver back-to-back so the FIFO always holds a peekable next
		// cell.
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			if i%8 == 7 {
				p.Sleep(3 * time.Microsecond)
			}
		}
		got, ok := r.recvPDU(p, ch, 50*time.Millisecond)
		if !ok || !bytes.Equal(got, data) {
			t.Error("double-cell PDU corrupted")
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	s := r.b.Stats()
	if s.CombinedDMAs == 0 {
		t.Error("no combined DMAs for an in-order stream")
	}
	if s.CombinedDMAs < s.SingleDMAs {
		t.Errorf("combined=%d < single=%d; combining ineffective in-order", s.CombinedDMAs, s.SingleDMAs)
	}
}

func TestSkewSuppressesCombining(t *testing.T) {
	// §2.6: "Once skew is introduced, the probability that two successive
	// cells will be received in order is greatly reduced."
	run := func(lag int) (combined, single int64) {
		r := newRig(t, Config{RxDMA: DoubleCell, Strategy: FourAAL5})
		ch := r.b.KernelChannel()
		r.b.BindVCI(5, 0)
		data := pattern(8800, 13)
		r.eng.Go("host", func(p *sim.Proc) {
			r.supplyFree(t, p, ch, 8, 16384)
			cells := atm.Segment(5, data, 4, false)
			injectSkewedBackToBack(r, p, cells, 1, lag)
			if got, ok := r.recvPDU(p, ch, 50*time.Millisecond); !ok || !bytes.Equal(got, data) {
				t.Error("PDU corrupted")
			}
		})
		r.eng.Run()
		r.eng.Shutdown()
		s := r.b.Stats()
		return s.CombinedDMAs, s.SingleDMAs
	}
	c0, _ := run(0)
	cSkew, _ := run(3)
	if cSkew >= c0 {
		t.Errorf("combining under skew (%d) not below in-order (%d)", cSkew, c0)
	}
}

// injectSkewedBackToBack is injectSkewed without pacing sleeps, so the
// FIFO stays populated and combining has every opportunity.
func injectSkewedBackToBack(r *rig, p *sim.Proc, cells []atm.Cell, lagLink, lag int) {
	perLink := make([][]atm.Cell, 4)
	for i := range cells {
		perLink[i%4] = append(perLink[i%4], cells[i])
	}
	idx := make([]int, 4)
	for round := 0; ; round++ {
		for l := 0; l < 4; l++ {
			turn := round
			if l == lagLink {
				turn = round - lag
			}
			if turn >= 0 && idx[l] < len(perLink[l]) && idx[l] <= turn {
				for !r.b.InjectCell(perLink[l][idx[l]], l) {
					p.Sleep(5 * time.Microsecond)
				}
				idx[l]++
			}
		}
		done := true
		for l := 0; l < 4; l++ {
			if idx[l] < len(perLink[l]) {
				done = false
			}
		}
		if done {
			return
		}
		p.Sleep(time.Microsecond)
	}
}

func TestFreeRingExhaustionDropsPDU(t *testing.T) {
	r := newRig(t, Config{})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	data := pattern(4000, 14)
	r.eng.Go("host", func(p *sim.Proc) {
		// No free buffers supplied at all.
		cells := atm.Segment(5, data, 4, false)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		if _, ok := r.recvPDU(p, ch, 2*time.Millisecond); ok {
			t.Error("PDU delivered without any free buffers")
		}
		// Now supply buffers; a subsequent PDU must get through.
		r.supplyFree(t, p, ch, 4, 16384)
		cells = atm.Segment(5, data, 4, false)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		if got, ok := r.recvPDU(p, ch, 10*time.Millisecond); !ok || !bytes.Equal(got, data) {
			t.Error("recovery PDU not delivered intact")
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if r.b.Stats().PDUsDropped != 1 {
		t.Errorf("PDUsDropped = %d, want 1", r.b.Stats().PDUsDropped)
	}
}

func TestADCFrameAuthorization(t *testing.T) {
	r := newRig(t, Config{})
	// Open channel 1 as an ADC restricted to a specific frame set.
	goodFrames, _ := r.host.Mem.AllocContiguous(4)
	r.b.OpenChannel(1, 1, goodFrames)
	r.b.BindVCI(11, 1)
	ch := r.b.Channel(1)

	badFrame, _ := r.host.Mem.AllocFrame()
	badPA := r.host.Mem.FrameAddr(badFrame)
	goodPA := r.host.Mem.FrameAddr(goodFrames[0])
	data := pattern(100, 15)
	r.host.Mem.Write(goodPA, data)
	r.host.Mem.Write(badPA, data)

	var cells []atm.Cell
	r.b.SetTxSink(func(c atm.Cell, link int) { cells = append(cells, c) })
	r.eng.Go("app", func(p *sim.Proc) {
		// Unauthorized buffer: must trigger a violation and transmit
		// nothing.
		ch.TxRing.TryPush(p, dpm.Host, queue.Desc{Addr: badPA, Len: 100, VCI: 11, Flags: queue.FlagEOP})
		r.b.KickTx()
		p.Sleep(200 * time.Microsecond)
		// Authorized buffer: flows normally.
		ch.TxRing.TryPush(p, dpm.Host, queue.Desc{Addr: goodPA, Len: 100, VCI: 11, Flags: queue.FlagEOP})
		r.b.KickTx()
	})
	r.eng.Run()
	r.eng.Shutdown()
	if r.b.Stats().Violations != 1 {
		t.Errorf("Violations = %d, want 1", r.b.Stats().Violations)
	}
	if r.host.Int.Count(VioIRQBase+1) != 1 {
		t.Error("violation interrupt not raised")
	}
	if len(cells) != atm.CellsFor(100) {
		t.Fatalf("cells transmitted = %d, want only the authorized PDU", len(cells))
	}
	_, got, err := atm.Reassemble(cells)
	if err != nil || !bytes.Equal(got, data) {
		t.Error("authorized PDU corrupted")
	}
}

func TestTransmitFullNotifyInterrupt(t *testing.T) {
	// Fill the tx ring beyond capacity, set the notify flag, and verify
	// the board raises the half-empty interrupt exactly once (§2.1.2).
	r := newRig(t, Config{TxRingSlots: 8})
	r.b.BindVCI(7, 0)
	ch := r.b.KernelChannel()
	r.b.SetTxSink(func(atm.Cell, int) {})
	// Each PDU takes the board ~25µs (23 cells) while a push costs ~2µs,
	// so the 8-slot ring fills and the notify protocol engages.
	data := pattern(1000, 16)
	sent := 0
	r.eng.Go("host", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			descs := r.writePDU(t, data, []int{1000}, 7)
			for !ch.TxRing.TryPush(p, dpm.Host, descs[0]) {
				// Ring full: set the notify flag and wait for the IRQ
				// side effect (polled here for test simplicity).
				r.b.DPM.WriteWord(p, dpm.Host, ch.NotifyFlagOff(), 1)
				r.b.KickTx()
				p.Sleep(20 * time.Microsecond)
			}
			sent++
			r.b.KickTx()
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if sent != 20 {
		t.Fatalf("sent %d", sent)
	}
	if r.b.Stats().TxIRQs == 0 {
		t.Error("no tx half-empty interrupts despite ring pressure")
	}
	if got := r.b.Stats().PDUsTx; got != 20 {
		t.Errorf("PDUsTx = %d", got)
	}
}

func TestFictitiousGenerator(t *testing.T) {
	r := newRig(t, Config{})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	pdu := pattern(2000, 17)
	count := 0
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 32, 4096)
		r.b.StartFictitious(5, [][]byte{pdu}, 0, 3)
		for count < 3 {
			got, ok := r.recvPDU(p, ch, 50*time.Millisecond)
			if !ok {
				t.Error("fictitious PDU missing")
				return
			}
			if !bytes.Equal(got, pdu) {
				t.Error("fictitious PDU corrupted")
			}
			count++
			// Recycle buffers.
			r.supplyFree(t, p, ch, 1, 4096)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if count != 3 {
		t.Fatalf("received %d fictitious PDUs", count)
	}
}

func TestUnknownVCIDropped(t *testing.T) {
	r := newRig(t, Config{})
	r.eng.Go("host", func(p *sim.Proc) {
		cells := atm.Segment(99, pattern(100, 18), 4, false)
		for i := range cells {
			r.b.InjectCell(cells[i], i%4)
		}
		p.Sleep(100 * time.Microsecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if r.b.Stats().CellsNoVCI == 0 {
		t.Error("cells for unbound VCI not counted as dropped")
	}
	if r.b.Stats().PDUsRx != 0 {
		t.Error("PDU delivered for unbound VCI")
	}
}

func TestEndToEndOverStripedLinks(t *testing.T) {
	// Two hosts, two boards, four links each way: the full data path.
	e := sim.NewEngine(99)
	hA := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	hB := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	bA := New(e, hA, Config{Name: "A"})
	bB := New(e, hB, Config{Name: "B"})
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	links := make([]*atm.Link, 4)
	for i := range links {
		links[i] = ab.Link(i)
	}
	bA.AttachTxLinks(links)
	bB.AttachRxLinks(ab)
	bA.BindVCI(5, 0)
	bB.BindVCI(5, 0)

	data := pattern(6000, 19)
	rB := &rig{eng: e, host: hB, b: bB}
	rA := &rig{eng: e, host: hA, b: bA}
	var got []byte
	var ok bool
	e.Go("sender", func(p *sim.Proc) {
		descs := rA.writePDU(t, data, []int{6000}, 5)
		rA.sendPDU(t, p, bA.KernelChannel(), descs)
	})
	e.Go("receiver", func(p *sim.Proc) {
		rB.supplyFree(t, p, bB.KernelChannel(), 8, 16384)
		got, ok = rB.recvPDU(p, bB.KernelChannel(), 50*time.Millisecond)
	})
	e.Run()
	e.Shutdown()
	if !ok {
		t.Fatal("end-to-end PDU not delivered")
	}
	if !bytes.Equal(got, data) {
		t.Error("end-to-end payload mismatch")
	}
}

func TestEndToEndWithSkewedLinks(t *testing.T) {
	e := sim.NewEngine(7)
	hA := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	hB := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	bA := New(e, hA, Config{Name: "A", Strategy: FourAAL5})
	bB := New(e, hB, Config{Name: "B", Strategy: FourAAL5})
	skew := atm.ConstantSkew{PerLink: []time.Duration{0, 9 * time.Microsecond, 3 * time.Microsecond, 14 * time.Microsecond}}
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{Skew: skew})
	links := make([]*atm.Link, 4)
	for i := range links {
		links[i] = ab.Link(i)
	}
	bA.AttachTxLinks(links)
	bB.AttachRxLinks(ab)
	bA.BindVCI(5, 0)
	bB.BindVCI(5, 0)

	data := pattern(10000, 20)
	rB := &rig{eng: e, host: hB, b: bB}
	rA := &rig{eng: e, host: hA, b: bA}
	var got []byte
	var ok bool
	e.Go("sender", func(p *sim.Proc) {
		descs := rA.writePDU(t, data, []int{10000}, 5)
		rA.sendPDU(t, p, bA.KernelChannel(), descs)
	})
	e.Go("receiver", func(p *sim.Proc) {
		rB.supplyFree(t, p, bB.KernelChannel(), 8, 16384)
		got, ok = rB.recvPDU(p, bB.KernelChannel(), 100*time.Millisecond)
	})
	e.Run()
	e.Shutdown()
	if !ok {
		t.Fatal("skewed end-to-end PDU not delivered")
	}
	if !bytes.Equal(got, data) {
		t.Error("skewed end-to-end payload mismatch")
	}
}

func TestPriorityDropUnderOverload(t *testing.T) {
	// Two ADCs, one high and one low priority; only the high-priority
	// channel gets free buffers replenished. Low-priority PDUs are
	// dropped by the board without host involvement (§3.1).
	r := newRig(t, Config{})
	r.b.OpenChannel(1, 10, nil)
	r.b.OpenChannel(2, 1, nil)
	r.b.BindVCI(21, 1)
	r.b.BindVCI(22, 2)
	hi := r.b.Channel(1)
	data := pattern(2000, 21)
	hiGot := 0
	r.eng.Go("host", func(p *sim.Proc) {
		r.supplyFree(t, p, hi, 32, 4096)
		// Deliberately no buffers for the low-priority channel.
		for k := 0; k < 5; k++ {
			for _, vci := range []atm.VCI{21, 22} {
				cells := atm.Segment(vci, data, 4, false)
				for i := range cells {
					r.b.InjectCell(cells[i], i%4)
					p.Sleep(700 * time.Nanosecond)
				}
			}
		}
		for {
			got, ok := r.recvPDU(p, hi, 5*time.Millisecond)
			if !ok {
				return
			}
			if bytes.Equal(got, data) {
				hiGot++
			}
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if hiGot != 5 {
		t.Errorf("high-priority PDUs delivered = %d, want 5", hiGot)
	}
	if r.b.Stats().PDUsDropped != 5 {
		t.Errorf("PDUsDropped = %d, want 5 (all low-priority)", r.b.Stats().PDUsDropped)
	}
}

func TestStrategyAndModeStrings(t *testing.T) {
	if SingleCell.String() != "single-cell" || DoubleCell.String() != "double-cell" {
		t.Error("DMAMode strings")
	}
	if BoundaryStop.String() != "boundary-stop" || FixedCell.String() != "fixed-cell" || ArbitraryLength.String() != "arbitrary-length" {
		t.Error("TxDMAPolicy strings")
	}
	if FourAAL5.String() != "four-aal5" || SeqNum.String() != "seqnum" || ArrivalOrder.String() != "arrival-order" {
		t.Error("strategy strings")
	}
	if !SeqNum.UsesSeqNumbers() || FourAAL5.UsesSeqNumbers() {
		t.Error("UsesSeqNumbers")
	}
}
