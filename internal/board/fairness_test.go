package board

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/queue"
	"repro/internal/sim"
)

// TestRxFIFOQuotaIsolatesChannels floods one channel's VCI far past its
// quota and then offers another channel's cells: the flood must be
// capped at the quota while the second tenant's cells all find FIFO
// space the flood would otherwise have consumed.
func TestRxFIFOQuotaIsolatesChannels(t *testing.T) {
	r := newRig(t, Config{RxFIFOCells: 32, RxFIFOQuota: 4})
	r.b.OpenChannel(1, 1, nil)
	r.b.OpenChannel(2, 1, nil)
	r.b.BindVCI(10, 1)
	r.b.BindVCI(11, 2)

	flood := atm.Cell{VCI: 10, Len: atm.CellPayload}
	for i := 0; i < 20; i++ {
		r.b.receiveCell(flood, i%4)
	}
	if got := r.b.Channel(1).QuotaDropped(); got != 16 {
		t.Fatalf("flood channel quota drops = %d, want 16", got)
	}
	if r.b.stats.CellsDroppedFIFO != 0 {
		t.Fatalf("FIFO overflow drops = %d, want 0 (quota must act first)", r.b.stats.CellsDroppedFIFO)
	}
	// The innocent tenant's cells fit: 4 in use out of 32.
	for i := 0; i < 8; i++ {
		r.b.receiveCell(atm.Cell{VCI: 11, Len: atm.CellPayload}, i%4)
	}
	if got := r.b.Channel(2).QuotaDropped(); got != 4 {
		t.Fatalf("innocent channel quota drops = %d, want 4 (its own quota)", got)
	}
	if r.b.stats.CellsQuotaDropped != 20 {
		t.Fatalf("total quota drops = %d, want 20", r.b.stats.CellsQuotaDropped)
	}
	// Draining the FIFO releases the charges: after the run the same
	// VCIs can enter again.
	r.eng.Run()
	if r.b.Channel(1).fifoCells != 0 || r.b.Channel(2).fifoCells != 0 {
		t.Fatalf("FIFO charges not released: %d/%d",
			r.b.Channel(1).fifoCells, r.b.Channel(2).fifoCells)
	}
	r.b.receiveCell(flood, 0)
	if r.b.Channel(1).QuotaDropped() != 16 {
		t.Fatal("charge release: cell within quota was dropped")
	}
}

// TestQuotaOffMatchesSeed pins that a zero quota leaves the FIFO entry
// path untouched: overflow drops come only from FIFO capacity.
func TestQuotaOffMatchesSeed(t *testing.T) {
	r := newRig(t, Config{RxFIFOCells: 8})
	r.b.BindVCI(10, 0)
	for i := 0; i < 12; i++ {
		r.b.receiveCell(atm.Cell{VCI: 10, Len: atm.CellPayload}, 0)
	}
	if r.b.stats.CellsQuotaDropped != 0 {
		t.Fatal("quota drops counted with quota disabled")
	}
	if r.b.stats.CellsDroppedFIFO != 4 {
		t.Fatalf("FIFO drops = %d, want 4", r.b.stats.CellsDroppedFIFO)
	}
}

// drainRecvRing pops everything from a channel's receive ring,
// verifying the driver-facing PDU framing invariant: descriptors form
// whole PDUs, each terminated by EOP, with FlagErr markers allowed only
// as partial-delivery terminators. Returns complete PDU count.
func drainRecvRing(t *testing.T, p *sim.Proc, ch *Channel) (pdus int) {
	t.Helper()
	partial := 0
	for {
		d, ok := ch.RecvRing.TryPop(p, dpm.Host)
		if !ok {
			break
		}
		if d.Flags&queue.FlagErr != 0 {
			if partial == 0 {
				t.Fatal("abort marker with no partial delivery")
			}
			partial = 0
			continue
		}
		partial++
		if d.Flags&queue.FlagEOP != 0 {
			pdus++
			partial = 0
		}
	}
	if partial != 0 {
		t.Fatalf("drained ring ends mid-PDU (%d dangling descriptors)", partial)
	}
	return pdus
}

// TestRecvDropGraceIsolatesStalledReceiver runs a never-reaping
// receiver (channel 1) next to a live one (channel 2) on the shared
// receive DMA engine. With RecvDropGrace the stalled channel's PDUs are
// dropped at its full ring and the live channel's deliveries all
// complete; without it the engine would spin on channel 1 forever.
func TestRecvDropGraceIsolatesStalledReceiver(t *testing.T) {
	// A small receive ring so the never-reaping channel fills it while
	// free buffers remain (the board then recycles dropped buffers
	// through the stash, keeping the pressure on).
	r := newRig(t, Config{RxFIFOCells: 512, RecvRingSlots: 16, RecvDropGrace: 4 * time.Microsecond})
	r.b.OpenChannel(1, 1, nil)
	r.b.OpenChannel(2, 1, nil)
	r.b.BindVCI(10, 1)
	r.b.BindVCI(11, 2)

	const pduBytes = 400
	const hogPDUs, livePDUs = 40, 20
	data := pattern(pduBytes, 9)

	feed := func(p *sim.Proc, vci atm.VCI, n int) {
		for i := 0; i < n; i++ {
			cells := atm.Segment(vci, data, 4, false)
			for j, c := range cells {
				r.b.InjectCell(c, j%4)
			}
			p.Sleep(50 * time.Microsecond)
		}
	}
	var delivered int
	r.eng.Go("setup", func(p *sim.Proc) {
		// Generous buffers for the hog (so its recv ring, not its free
		// ring, is the bottleneck); a small recycled set for the live one.
		r.supplyFree(t, p, r.b.Channel(1), 40, 512)
		r.supplyFree(t, p, r.b.Channel(2), 8, 512)
		r.eng.Go("hog-feed", func(p *sim.Proc) { feed(p, 10, hogPDUs) })
		r.eng.Go("live-feed", func(p *sim.Proc) { feed(p, 11, livePDUs) })
		// Live receiver: pop ch2's ring continuously, recycling buffers.
		r.eng.Go("live-recv", func(p *sim.Proc) {
			ch := r.b.Channel(2)
			for delivered < livePDUs {
				d, ok := ch.RecvRing.TryPop(p, dpm.Host)
				if !ok {
					p.Sleep(5 * time.Microsecond)
					continue
				}
				if d.Flags&queue.FlagEOP != 0 {
					delivered++
				}
				// Recycle the buffer.
				ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: d.Addr, Len: 512})
				r.b.KickFree()
			}
		})
	})
	r.eng.RunUntil(r.eng.Now().Add(100 * time.Millisecond))

	if delivered != livePDUs {
		t.Fatalf("live tenant delivered %d/%d PDUs behind a stalled receiver", delivered, livePDUs)
	}
	if r.b.stats.RecvRingDropped == 0 {
		t.Fatal("stalled channel dropped nothing; the hog never filled its ring?")
	}
	if r.b.Channel(2).RingDropped() != 0 {
		t.Fatalf("live channel lost %d descriptors", r.b.Channel(2).RingDropped())
	}
	// The stalled ring, drained now, must still hold only whole PDUs.
	r.eng.Go("drain", func(p *sim.Proc) {
		drainRecvRing(t, p, r.b.Channel(1))
	})
	r.eng.Run()
}

// TestTxDRRByteFairness backlogs two equal-priority channels — one
// shipping short padded PDUs, one shipping full-cell PDUs — and checks
// that DRR arbitration equalizes goodput bytes, where the seed's
// cell-slot round robin lets the padded tenant fall behind.
func TestTxDRRByteFairness(t *testing.T) {
	run := func(quantum int) (shortBytes, longBytes int) {
		// A slowed link so the descriptor feeders (who pay dual-port
		// memory costs per push) stay ahead of the drain: fairness is
		// only observable while both channels are backlogged.
		r := newRig(t, Config{TxDRRQuantum: quantum, CellOverheadTx: 5 * time.Microsecond})
		r.b.OpenChannel(1, 1, nil)
		r.b.OpenChannel(2, 1, nil)
		r.b.BindVCI(10, 1)
		r.b.BindVCI(11, 2)
		const shortLen, longLen = 50, 2200
		// One buffer each, reused for every PDU: the feeders must
		// outpace the link so arbitration, not feeding, sets the shares.
		shortDescs := r.writePDU(t, pattern(shortLen, 1), []int{shortLen}, 10)
		longDescs := r.writePDU(t, pattern(longLen, 2), []int{longLen}, 11)
		var shortDone, longDone int
		r.b.SetTxSink(func(c atm.Cell, link int) {
			if !c.Last {
				return
			}
			if c.VCI == 10 {
				shortDone++
			} else {
				longDone++
			}
		})
		r.eng.Go("feed-short", func(p *sim.Proc) {
			for i := 0; i < 1500; i++ {
				r.sendPDU(t, p, r.b.Channel(1), shortDescs)
			}
		})
		r.eng.Go("feed-long", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				r.sendPDU(t, p, r.b.Channel(2), longDescs)
			}
		})
		r.eng.RunUntil(r.eng.Now().Add(10 * time.Millisecond))
		return shortDone * shortLen, longDone * longLen
	}

	sb, lb := run(4 * atm.CellPayload)
	if sb == 0 || lb == 0 {
		t.Fatalf("no progress: short=%dB long=%dB", sb, lb)
	}
	ratio := float64(sb) / float64(lb)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("DRR byte ratio %.2f (short=%dB long=%dB), want ~1.0", ratio, sb, lb)
	}

	// Seed arbitration: cell-slot fairness, so the short-PDU tenant's
	// byte share sits well below parity — the gap DRR exists to close.
	sb0, lb0 := run(0)
	ratio0 := float64(sb0) / float64(lb0)
	if ratio0 > 0.75 {
		t.Fatalf("seed ratio %.2f unexpectedly fair; DRR test is vacuous", ratio0)
	}
}
