package board

import (
	"hash/crc32"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/sim"
)

// txStream is the per-channel segmentation state: the current PDU's
// descriptor chain and the board's position within it. A PDU begins
// transmission only once its EOP descriptor has been queued, so the
// total length (and hence the AAL5 framing bits) is known up front.
type txStream struct {
	descs   []queue.Desc
	eop     bool
	poison  bool // authorization violation anywhere in the chain
	active  bool
	vci     atm.VCI
	pduLen  int
	total   int // cell count (CellsFor), 0 in FixedCell partial mode
	cellIdx int
	bytePos int
	descIdx int // position within descs for take()
	descOff int
}

// peekAhead tracking lives on the Channel (descs peeked but whose tail
// advance is still pending in the DMA engine).

// txCmd is one cell's worth of work for the transmit DMA controller.
type txCmd struct {
	ch      *Channel
	segs    []mem.PhysBuffer // host memory extents to gather (0..2)
	dataLen int
	pad     int
	trailer bool
	vci     atm.VCI
	eom     bool
	last    bool
	seq     uint32
	hasSeq  bool
	linkIdx int
	advance int // descriptors to consume after this cell (0 unless PDU end)
}

// txProc is the transmit on-board processor: it gathers descriptor
// chains from the transmit rings (kernel channel plus ADCs, by
// priority), runs the segmentation algorithm, and feeds the DMA
// controller one cell at a time — interleaving cells of PDUs from
// different channels at cell granularity, the fine-grained multiplexing
// of §2.5.1.
func (b *Board) txProc(p *sim.Proc) {
	for {
		ch := b.pickTxChannel(p)
		if ch == nil {
			b.txWork.Wait(p)
			p.Sleep(b.cfg.PollDelay)
			continue
		}
		b.emitCell(p, ch)
	}
}

// pickTxChannel returns the open channel with ready work of the highest
// priority, gathering descriptor chains as a side effect. Ties rotate
// round-robin so equal-priority channels interleave cell by cell — the
// fine-grained multiplexing of §2.5.1 ("the microprocessor could
// transmit one cell from each in turn").
func (b *Board) pickTxChannel(p *sim.Proc) *Channel {
	if b.cfg.TxDRRQuantum > 0 {
		return b.pickTxChannelDRR(p)
	}
	var best *Channel
	bestRank := 0
	for i := 0; i < NumChannels; i++ {
		idx := (b.txRR + 1 + i) % NumChannels
		ch := b.chans[idx]
		if ch == nil || !ch.open {
			continue
		}
		if !ch.tx.active && !b.gather(p, ch) {
			continue
		}
		if best == nil || ch.Priority > bestRank {
			best = ch
			bestRank = ch.Priority
		}
	}
	if best != nil {
		b.txRR = best.Index
	}
	return best
}

// pickTxChannelDRR is the TxDRRQuantum arbiter: strict priority still
// wins between priority classes, but within the top class channels are
// served deficit-round-robin on payload bytes — each earns a quantum of
// byte credit per rotation and transmits while its deficit lasts, so a
// tenant shipping short PDUs is charged for the bytes it sends, not the
// cell slots it occupies. Deterministic: index order, one cursor.
func (b *Board) pickTxChannelDRR(p *sim.Proc) *Channel {
	// Pass 1: find ready channels (gathering descriptor chains as a
	// side effect) and the top priority among them. An idle channel's
	// deficit resets — DRR credit exists only while backlogged.
	bestPrio := 0
	any := false
	for i := 0; i < NumChannels; i++ {
		ch := b.chans[i]
		if ch == nil || !ch.open {
			continue
		}
		if !ch.tx.active && !b.gather(p, ch) {
			ch.txDeficit = 0
			continue
		}
		if !any || ch.Priority > bestPrio {
			bestPrio = ch.Priority
			any = true
		}
	}
	if !any {
		return nil
	}
	// Pass 2: from the cursor (inclusive, so the current channel keeps
	// the link while its deficit lasts), pick the first top-priority
	// ready channel with credit left.
	for k := 0; k < NumChannels; k++ {
		idx := (b.txRR + k) % NumChannels
		ch := b.chans[idx]
		if ch == nil || !ch.open || !ch.tx.active || ch.Priority != bestPrio {
			continue
		}
		if ch.txDeficit > 0 {
			b.txRR = idx
			return ch
		}
	}
	// Every ready channel exhausted its credit: a new rotation begins —
	// replenish all of them and advance past the cursor.
	for i := 0; i < NumChannels; i++ {
		ch := b.chans[i]
		if ch != nil && ch.open && ch.tx.active && ch.Priority == bestPrio {
			ch.txDeficit += b.cfg.TxDRRQuantum
		}
	}
	for k := 1; k <= NumChannels; k++ {
		idx := (b.txRR + k) % NumChannels
		ch := b.chans[idx]
		if ch != nil && ch.open && ch.tx.active && ch.Priority == bestPrio {
			b.txRR = idx
			return ch
		}
	}
	return nil // unreachable: any == true
}

// chargeDRR debits a transmitted cell's payload bytes against its
// channel's deficit (minimum one byte per cell, so zero-length PDUs
// cannot monopolize the link for free).
func (b *Board) chargeDRR(ch *Channel, bytes int) {
	if b.cfg.TxDRRQuantum <= 0 {
		return
	}
	if bytes < 1 {
		bytes = 1
	}
	ch.txDeficit -= bytes
}

// gather peeks descriptors from ch's transmit ring until a full PDU
// (through its EOP descriptor) is visible, then activates the stream.
// It reports whether a PDU is ready. Descriptors are not consumed here;
// the tail advances only after the last cell's DMA (§2.1.2).
func (b *Board) gather(p *sim.Proc, ch *Channel) bool {
	st := &ch.tx
	for !st.eop {
		d, ok := ch.TxRing.ReaderPeek(p, dpm.Board, ch.peekAhead+len(st.descs))
		if !ok {
			b.checkNotifyFlag(p, ch)
			return false
		}
		if !b.authorized(ch, d) {
			st.poison = true
			b.violation(ch, d.VCI)
		}
		st.descs = append(st.descs, d)
		if d.Flags&queue.FlagEOP != 0 {
			st.eop = true
		}
	}
	if st.poison {
		// Discard the whole offending PDU: consume its descriptors
		// without transmitting anything.
		n := len(st.descs)
		ch.TxRing.ReaderAdvance(p, dpm.Board, ch.peekAhead+n)
		ch.peekAhead = 0
		ch.tx = txStream{descs: st.descs[:0]} // keep the descriptor scratch
		b.checkNotifyFlag(p, ch)
		return b.gather(p, ch)
	}
	st.active = true
	if b.eng.Tracing() {
		b.eng.Tracef("pdu: %s tx start vci=%d descs=%d", b.cfg.Name, st.descs[0].VCI, len(st.descs))
	}
	st.vci = st.descs[0].VCI
	st.pduLen = 0
	for _, d := range st.descs {
		st.pduLen += int(d.Len)
	}
	if b.cfg.TxPolicy != FixedCell {
		st.total = atm.CellsFor(st.pduLen)
	}
	return true
}

// checkNotifyFlag implements the transmit-side interrupt protocol of
// §2.1.2: the host, having found the ring full, sets the notify flag;
// the board asserts an interrupt once the ring has drained to half.
func (b *Board) checkNotifyFlag(p *sim.Proc, ch *Channel) {
	if b.DPM.ReadWord(p, dpm.Board, ch.NotifyFlagOff()) == 0 {
		return
	}
	if ch.TxRing.ReaderLen(p, dpm.Board) <= ch.TxRing.Slots()/2 {
		b.DPM.WriteWord(p, dpm.Board, ch.NotifyFlagOff(), 0)
		b.stats.TxIRQs++
		b.irq(TxIRQBase + ch.Index)
	}
}

// take walks the descriptor chain gathering up to want bytes as physical
// extents appended to segs (a caller-supplied scratch slice). With
// single set (FixedCell policy) it stops at the first buffer boundary,
// which is what forces mid-PDU partial cells.
func (st *txStream) take(want int, single bool, segs []mem.PhysBuffer) (_ []mem.PhysBuffer, taken int) {
	for taken < want && st.descIdx < len(st.descs) {
		d := st.descs[st.descIdx]
		avail := int(d.Len) - st.descOff
		if avail == 0 {
			st.descIdx++
			st.descOff = 0
			continue
		}
		n := want - taken
		if n > avail {
			n = avail
		}
		segs = append(segs, mem.PhysBuffer{Addr: d.Addr + mem.PhysAddr(st.descOff), Len: n})
		st.descOff += n
		taken += n
		if single && taken < want {
			break
		}
	}
	return segs, taken
}

// emitCell produces the stream's next cell: it computes the data
// extents, framing bits and trailer parameters, and queues one command
// for the DMA controller.
func (b *Board) emitCell(p *sim.Proc, ch *Channel) {
	st := &ch.tx
	p.Sleep(b.cfg.CellOverheadTx)

	cmd := txCmd{ch: ch, vci: st.vci}
	if b.cfg.Strategy.UsesSeqNumbers() {
		cmd.hasSeq = true
		cmd.seq = uint32(st.cellIdx)
	}
	cmd.linkIdx = st.cellIdx % b.cfg.StripeWidth

	want := st.pduLen - st.bytePos
	if want > atm.CellPayload {
		want = atm.CellPayload
	}

	if b.cfg.TxPolicy == FixedCell {
		segs, taken := st.take(want, true, b.getSegs())
		st.bytePos += taken
		cmd.segs = segs
		cmd.dataLen = taken
		if taken < want {
			b.stats.PartialCellsTx++
		}
		b.chargeDRR(ch, taken)
		if st.bytePos == st.pduLen {
			// Data exhausted: the trailer goes in its own (partial) cell.
			st.cellIdx++
			b.chargeDRR(ch, 0) // the trailer cell occupies a slot too
			b.txSubmit(p, cmd)
			p.Sleep(b.cfg.CellOverheadTx)
			trailerCmd := txCmd{
				ch: ch, vci: st.vci, trailer: true, eom: true, last: true,
				linkIdx: st.cellIdx % b.cfg.StripeWidth,
			}
			if cmd.hasSeq {
				trailerCmd.hasSeq = true
				trailerCmd.seq = uint32(st.cellIdx)
			}
			trailerCmd.advance = len(st.descs)
			b.finishPDU(ch)
			b.txSubmit(p, trailerCmd)
			return
		}
		st.cellIdx++
		b.txSubmit(p, cmd)
		return
	}

	// BoundaryStop / ArbitraryLength: cells are always full; a cell
	// spanning a buffer boundary is composed from two DMA segments.
	segs, taken := st.take(want, false, b.getSegs())
	if taken != want {
		panic("board: descriptor chain shorter than PDU length")
	}
	if len(segs) > 1 {
		b.stats.SplitCellsTx++
	}
	cmd.segs = segs
	cmd.dataLen = taken
	b.chargeDRR(ch, taken)
	isLast := st.cellIdx == st.total-1
	cmd.eom = st.total-st.cellIdx <= b.cfg.StripeWidth
	cmd.last = isLast
	if isLast {
		cmd.trailer = true
		cmd.pad = atm.CellPayload - taken - atm.TrailerSize
	} else {
		cmd.pad = atm.CellPayload - taken // pure padding (penultimate cell)
	}
	st.bytePos += taken
	st.cellIdx++
	if isLast {
		cmd.advance = len(st.descs)
		b.finishPDU(ch)
	}
	b.txSubmit(p, cmd)
}

// finishPDU retires the stream state; the descriptor tail advance is
// carried by the final cell's DMA command.
func (b *Board) finishPDU(ch *Channel) {
	ch.peekAhead += len(ch.tx.descs)
	ch.tx = txStream{descs: ch.tx.descs[:0]} // keep the descriptor scratch
	b.stats.PDUsTx++
}

func (b *Board) txSubmit(p *sim.Proc, cmd txCmd) {
	b.txCmds.Send(p, cmd)
	if b.mTxFIFOHW != nil {
		b.mTxFIFOHW.Observe(int64(b.txCmds.Len()))
	}
}

// txDMAEngine is the transmit DMA controller plus cell generator: it
// gathers each cell's bytes from host memory (one bus transaction per
// segment — the §2.5.2 page-boundary-stop behaviour), maintains the
// per-channel AAL5 CRC/length accumulators, and hands finished cells to
// the physical links.
func (b *Board) txDMAEngine(p *sim.Proc) {
	type aal5 struct {
		crc uint32
		len uint32
	}
	state := make(map[int]*aal5)
	table := crc32.MakeTable(crc32.IEEE)
	for {
		cmd := b.txCmds.Recv(p)
		acc := state[cmd.ch.Index]
		if acc == nil {
			acc = &aal5{}
			state[cmd.ch.Index] = acc
		}
		// Stage the cell in a pooled flyweight buffer rather than a
		// stack array: the gather below crosses enough call boundaries
		// that escape analysis heap-allocates a local, one per cell.
		hnd, payload := b.txPool.Get()
		pos := 0
		for _, seg := range cmd.segs {
			b.host.Bus.DMARead(p, seg.Len)
			b.host.Mem.ReadInto(seg.Addr, payload[pos:pos+seg.Len])
			pos += seg.Len
		}
		acc.crc = crc32.Update(acc.crc, table, payload[:cmd.dataLen])
		acc.len += uint32(cmd.dataLen)
		cellLen := cmd.dataLen
		if cmd.trailer {
			cellLen += cmd.pad
			tr := atm.Trailer{Length: acc.len, CRC: acc.crc}
			atm.PutTrailer(payload[:cellLen+atm.TrailerSize], tr)
			cellLen += atm.TrailerSize
			*acc = aal5{}
		} else if cmd.pad > 0 {
			cellLen += cmd.pad
		}
		cell := atm.Cell{
			VCI:  cmd.vci,
			EOM:  cmd.eom,
			Last: cmd.last,
			Len:  cellLen,
		}
		if cmd.hasSeq {
			cell.Seq = cmd.seq
		}
		copy(cell.Payload[:], payload[:cellLen])
		b.stats.CellsTx++
		if b.eng.Tracing() {
			b.eng.Tracef("cell: %s tx vci=%d link=%d len=%d", b.cfg.Name, cell.VCI, cmd.linkIdx, cell.Len)
		}
		b.deliverCell(p, cell, cmd.linkIdx)
		b.txPool.Put(hnd) // free on delivery
		b.putSegs(cmd.segs)
		if cmd.advance > 0 {
			if b.cfg.InterruptPerPDU {
				// Traditional transmit-complete interrupt (§2.1.2's
				// "traditionally signalled to the host using an
				// interrupt") — the ablation baseline.
				b.stats.TxIRQs++
				b.irq(TxIRQBase + cmd.ch.Index)
			}
			// peekAhead and the ring's reader cursor must move together
			// with no scheduling point in between, or a concurrent gather
			// by the transmit processor would compute a stale peek index;
			// ReaderAdvance mutates its cursor before its (yielding)
			// dual-port store, so decrementing first keeps the pair atomic.
			cmd.ch.peekAhead -= cmd.advance
			cmd.ch.TxRing.ReaderAdvance(p, dpm.Board, cmd.advance)
			b.checkNotifyFlag(p, cmd.ch)
		}
	}
}

// deliverCell hands a finished cell to the attached link, or to the test
// sink when no links are attached.
func (b *Board) deliverCell(p *sim.Proc, cell atm.Cell, linkIdx int) {
	if b.outLinks != nil {
		b.outLinks[linkIdx].Send(p, cell)
		return
	}
	if b.txSink != nil {
		b.txSink(cell, linkIdx)
	}
}
