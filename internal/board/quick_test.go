package board

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/hostsim"
	"repro/internal/sim"
)

// Property: for any PDU size, any skew lag, and either skew-tolerant
// strategy, a PDU injected with per-link ordering preserved reassembles
// byte-exactly.
func TestReassemblyRoundTripQuick(t *testing.T) {
	f := func(sizeSeed uint16, lagSeed, linkSeed uint8, useSeqNum bool) bool {
		size := int(sizeSeed)%12000 + 1
		lag := int(lagSeed) % 6
		lagLink := int(linkSeed) % 4
		strategy := FourAAL5
		if useSeqNum {
			strategy = SeqNum
		}
		r := newRig(t, Config{Strategy: strategy})
		ch := r.b.KernelChannel()
		r.b.BindVCI(5, 0)
		data := pattern(size, byte(sizeSeed))
		var got []byte
		var ok bool
		r.eng.Go("host", func(p *sim.Proc) {
			r.supplyFree(t, p, ch, 8, 16384)
			cells := atm.Segment(5, data, 4, strategy.UsesSeqNumbers())
			injectSkewed(r, p, cells, lagLink, lag)
			got, ok = r.recvPDU(p, ch, 100*time.Millisecond)
		})
		r.eng.Run()
		r.eng.Shutdown()
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: transmit segmentation round-trips any PDU size under any
// transmit DMA policy (reassembled functionally from the emitted cells).
func TestTransmitRoundTripQuick(t *testing.T) {
	f := func(sizeSeed uint16, policySeed uint8, chunkSeed uint8) bool {
		size := int(sizeSeed)%9000 + 1
		policy := []TxDMAPolicy{BoundaryStop, FixedCell, ArbitraryLength}[policySeed%3]
		strategy := FourAAL5
		if policy == FixedCell {
			strategy = ArrivalOrder
		}
		r := newRig(t, Config{TxPolicy: policy, Strategy: strategy})
		r.b.BindVCI(7, 0)
		var cells []atm.Cell
		r.b.SetTxSink(func(c atm.Cell, link int) { cells = append(cells, c) })
		data := pattern(size, byte(policySeed))
		// Split the message into 1-3 buffers to exercise chain handling.
		var sizes []int
		switch chunkSeed % 3 {
		case 0:
			sizes = []int{size}
		case 1:
			if size > 1 {
				sizes = []int{size / 2, size - size/2}
			} else {
				sizes = []int{size}
			}
		default:
			if size > 40 {
				sizes = []int{28, size/2 - 28, size - size/2}
			} else {
				sizes = []int{size}
			}
		}
		descs := r.writePDU(t, data, sizes, 7)
		r.eng.Go("host", func(p *sim.Proc) { r.sendPDU(t, p, r.b.KernelChannel(), descs) })
		r.eng.Run()
		r.eng.Shutdown()
		_, got, err := atm.Reassemble(cells)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestArbitraryLengthPolicyMatchesBoundaryStop(t *testing.T) {
	// The "ideal solution" of §2.5.2 behaves identically for chained
	// buffers in our model — same cells, same splits avoided.
	run := func(policy TxDMAPolicy) ([]atm.Cell, Stats) {
		r := newRig(t, Config{TxPolicy: policy})
		r.b.BindVCI(7, 0)
		var cells []atm.Cell
		r.b.SetTxSink(func(c atm.Cell, link int) { cells = append(cells, c) })
		data := pattern(5000, 30)
		descs := r.writePDU(t, data, []int{28, 4972}, 7)
		r.eng.Go("host", func(p *sim.Proc) { r.sendPDU(t, p, r.b.KernelChannel(), descs) })
		r.eng.Run()
		r.eng.Shutdown()
		return cells, r.b.Stats()
	}
	c1, _ := run(BoundaryStop)
	c2, _ := run(ArbitraryLength)
	if len(c1) != len(c2) {
		t.Fatalf("cell counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if !bytes.Equal(c1[i].Payload[:c1[i].Len], c2[i].Payload[:c2[i].Len]) {
			t.Fatalf("cell %d differs between policies", i)
		}
	}
}

func TestInterleavedVCIStreamsReassembleIndependently(t *testing.T) {
	// Fine-grained multiplexing (§2.5.1): two channels transmit
	// concurrently and the board interleaves their cells; both PDUs must
	// arrive intact because reassembly is per VCI.
	e := sim.NewEngine(4)
	hA := hostsimNew(e)
	hB := hostsimNew(e)
	bA := New(e, hA, Config{Name: "A"})
	bB := New(e, hB, Config{Name: "B"})
	g := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	links := make([]*atm.Link, 4)
	for i := range links {
		links[i] = g.Link(i)
	}
	bA.AttachTxLinks(links)
	bB.AttachRxLinks(g)
	bA.OpenChannel(1, 5, nil)
	bA.BindVCI(31, 0)
	bA.BindVCI(32, 1)
	bB.BindVCI(31, 0)
	bB.BindVCI(32, 0)

	rA := &rig{eng: e, host: hA, b: bA}
	rB := &rig{eng: e, host: hB, b: bB}
	d1 := pattern(6000, 31)
	d2 := pattern(6000, 32)
	results := map[atm.VCI][]byte{}
	e.Go("sender", func(p *sim.Proc) {
		descs1 := rA.writePDU(t, d1, []int{6000}, 31)
		descs2 := rA.writePDU(t, d2, []int{6000}, 32)
		// Queue on both channels before kicking, so the transmit
		// processor interleaves them cell by cell.
		for _, d := range descs1 {
			bA.KernelChannel().TxRing.TryPush(p, dpmHostAccessor(), d)
		}
		for _, d := range descs2 {
			bA.Channel(1).TxRing.TryPush(p, dpmHostAccessor(), d)
		}
		bA.KickTx()
	})
	e.Go("receiver", func(p *sim.Proc) {
		rB.supplyFree(t, p, bB.KernelChannel(), 8, 16384)
		for len(results) < 2 {
			deadline := p.Now().Add(100 * time.Millisecond)
			var buf []byte
			for {
				d, ok := bB.KernelChannel().RecvRing.TryPop(p, dpmHostAccessor())
				if ok {
					buf = append(buf, hB.Mem.Read(d.Addr, int(d.Len))...)
					if d.Flags&1 != 0 { // FlagEOP
						results[d.VCI] = buf
						break
					}
				} else if p.Now() >= deadline {
					return
				} else {
					p.Sleep(2 * time.Microsecond)
				}
			}
		}
	})
	e.Run()
	e.Shutdown()
	if !bytes.Equal(results[31], d1) {
		t.Error("VCI 31 stream corrupted by interleaving")
	}
	if !bytes.Equal(results[32], d2) {
		t.Error("VCI 32 stream corrupted by interleaving")
	}
}

func TestFIFOOverflowDropsCells(t *testing.T) {
	r := newRig(t, Config{RxFIFOCells: 4})
	r.b.BindVCI(5, 0)
	// Inject far more cells than the FIFO holds, instantly (event
	// context cannot drain between injections).
	cells := atm.Segment(5, pattern(2000, 40), 4, false)
	accepted := 0
	for i := range cells {
		if r.b.InjectCell(cells[i], i%4) {
			accepted++
		}
	}
	if accepted > 4 {
		t.Errorf("FIFO of 4 accepted %d cells synchronously", accepted)
	}
	if r.b.Stats().CellsDroppedFIFO == 0 {
		t.Error("no FIFO drops recorded")
	}
	r.eng.Run()
	r.eng.Shutdown()
}

// hostsimNew builds a standard test host.
func hostsimNew(e *sim.Engine) *hostsim.Host {
	return hostsim.New(e, hostsim.DEC3000_600(), 2048)
}

// dpmHostAccessor returns the host-side accessor.
func dpmHostAccessor() dpm.Accessor { return dpm.Host }

func TestEqualPriorityChannelsInterleaveFairly(t *testing.T) {
	// Two channels at the same priority, each with a large PDU queued:
	// the transmit processor must alternate cells between them rather
	// than draining one before starting the other.
	r := newRig(t, Config{})
	r.b.OpenChannel(1, 0, nil) // same priority as the kernel channel
	r.b.BindVCI(31, 0)
	r.b.BindVCI(32, 1)
	var order []atm.VCI
	r.b.SetTxSink(func(c atm.Cell, link int) { order = append(order, c.VCI) })
	d1 := pattern(4400, 1)
	d2 := pattern(4400, 2)
	r.eng.Go("host", func(p *sim.Proc) {
		for _, d := range r.writePDU(t, d1, []int{4400}, 31) {
			r.b.KernelChannel().TxRing.TryPush(p, dpm.Host, d)
		}
		for _, d := range r.writePDU(t, d2, []int{4400}, 32) {
			r.b.Channel(1).TxRing.TryPush(p, dpm.Host, d)
		}
		r.b.KickTx()
	})
	r.eng.Run()
	r.eng.Shutdown()
	if len(order) < 100 {
		t.Fatalf("cells = %d", len(order))
	}
	// Count alternations in the first half: fair interleave means many.
	switches := 0
	for i := 1; i < len(order)/2; i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < len(order)/4 {
		t.Errorf("only %d VCI switches in %d cells; channels not interleaving", switches, len(order)/2)
	}
}

func TestHigherPriorityChannelPreempts(t *testing.T) {
	// A high-priority ADC's PDU queued after a low-priority one must
	// still get the next cells (§3.2: "priority is used by the transmit
	// processor to determine the order of transmissions").
	r := newRig(t, Config{})
	r.b.OpenChannel(1, 9, nil)
	r.b.BindVCI(31, 0)
	r.b.BindVCI(32, 1)
	var order []atm.VCI
	r.b.SetTxSink(func(c atm.Cell, link int) { order = append(order, c.VCI) })
	r.eng.Go("host", func(p *sim.Proc) {
		for _, d := range r.writePDU(t, pattern(8800, 1), []int{8800}, 31) {
			r.b.KernelChannel().TxRing.TryPush(p, dpm.Host, d)
		}
		r.b.KickTx()
		p.Sleep(20 * time.Microsecond) // low-priority stream is under way
		for _, d := range r.writePDU(t, pattern(880, 2), []int{880}, 32) {
			r.b.Channel(1).TxRing.TryPush(p, dpm.Host, d)
		}
		r.b.KickTx()
	})
	r.eng.Run()
	r.eng.Shutdown()
	// Find where VCI 32's cells appear; they must finish well before the
	// low-priority PDU does.
	last32 := -1
	last31 := -1
	for i, v := range order {
		if v == 32 {
			last32 = i
		} else {
			last31 = i
		}
	}
	if last32 == -1 || last31 == -1 {
		t.Fatal("streams missing")
	}
	if last32 > last31 {
		t.Error("high-priority PDU finished after the low-priority one")
	}
}

func TestInterruptPerPDUAblation(t *testing.T) {
	// The traditional discipline must assert one interrupt per received
	// PDU even when arrivals form a burst.
	r := newRig(t, Config{InterruptPerPDU: true})
	ch := r.b.KernelChannel()
	r.b.BindVCI(5, 0)
	const pdus = 10
	data := pattern(1000, 10)
	r.eng.Go("feeder", func(p *sim.Proc) {
		r.supplyFree(t, p, ch, 32, 2048)
		for k := 0; k < pdus; k++ {
			cells := atm.Segment(5, data, 4, false)
			for i := range cells {
				r.b.InjectCell(cells[i], i%4)
				p.Sleep(700 * time.Nanosecond)
			}
		}
		p.Sleep(time.Millisecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if irqs := r.b.Stats().RxIRQs; irqs != pdus {
		t.Errorf("traditional discipline asserted %d interrupts for %d PDUs", irqs, pdus)
	}
}
