package board

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/sim"
)

// lossPair builds two hosts with a lossy A→B stripe group.
func lossPair(t *testing.T, lossRate float64, strategy ReassemblyStrategy, seed int64) (*rig, *rig) {
	t.Helper()
	e := sim.NewEngine(seed)
	hA := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	hB := hostsim.New(e, hostsim.DEC3000_600(), 2048)
	bA := New(e, hA, Config{Name: "A", Strategy: strategy})
	bB := New(e, hB, Config{Name: "B", Strategy: strategy})
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{LossRate: lossRate})
	links := make([]*atm.Link, 4)
	for i := range links {
		links[i] = ab.Link(i)
	}
	bA.AttachTxLinks(links)
	bB.AttachRxLinks(ab)
	bA.BindVCI(5, 0)
	bB.BindVCI(5, 0)
	return &rig{eng: e, host: hA, b: bA}, &rig{eng: e, host: hB, b: bB}
}

func TestLossyLinkDropsPDUsButNeverCorrupts(t *testing.T) {
	// With 1% cell loss, a multi-cell PDU has a substantial chance of
	// losing a cell. The board must detect the shortfall via the AAL5
	// framing bits and discard — never deliver a PDU with wrong bytes.
	rA, rB := lossPair(t, 0.01, FourAAL5, 77)
	const n = 20
	data := pattern(4000, 1)
	delivered, intact := 0, 0
	rA.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			descs := rA.writePDU(t, data, []int{4000}, 5)
			rA.sendPDU(t, p, rA.b.KernelChannel(), descs)
			p.Sleep(200 * time.Microsecond)
		}
	})
	rA.eng.Go("receiver", func(p *sim.Proc) {
		rB.supplyFree(t, p, rB.b.KernelChannel(), 16, 16384)
		for {
			got, ok := rB.recvPDU(p, rB.b.KernelChannel(), 2*time.Millisecond)
			if !ok {
				return
			}
			delivered++
			if bytes.Equal(got, data) {
				intact++
			}
		}
	})
	rA.eng.Run()
	rA.eng.Shutdown()

	dropped := rB.b.Stats().PDUsDropped
	if delivered+int(dropped) == 0 {
		t.Fatal("nothing happened")
	}
	if dropped == 0 {
		t.Error("1% loss over 20 PDUs × 92 cells dropped nothing; loss injection broken")
	}
	if intact != delivered {
		t.Errorf("%d of %d delivered PDUs were corrupt; loss must never corrupt under FourAAL5", delivered-intact, delivered)
	}
	if delivered == 0 {
		t.Error("every PDU dropped at 1% loss; error detection too eager")
	}
}

func TestLossRecoveryAcrossPDUs(t *testing.T) {
	// After a loss-dropped PDU, subsequent PDUs on the same VCI must
	// flow normally (the reassembly state must reset cleanly).
	rA, rB := lossPair(t, 0, FourAAL5, 3)
	data := pattern(2000, 2)
	var got [][]byte
	rA.eng.Go("experiment", func(p *sim.Proc) {
		rB.supplyFree(t, p, rB.b.KernelChannel(), 8, 16384)
		// Simulate a loss by injecting a PDU missing two mid cells.
		cells := atm.Segment(5, data, 4, false)
		for i := range cells {
			if i == 10 || i == 17 {
				continue // lost in the network
			}
			rB.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		if _, ok := rB.recvPDU(p, rB.b.KernelChannel(), 2*time.Millisecond); ok {
			t.Error("PDU with lost cells was delivered")
		}
		// Now a clean PDU on the same VCI.
		cells = atm.Segment(5, data, 4, false)
		for i := range cells {
			rB.b.InjectCell(cells[i], i%4)
			p.Sleep(700 * time.Nanosecond)
		}
		if b, ok := rB.recvPDU(p, rB.b.KernelChannel(), 10*time.Millisecond); ok {
			got = append(got, b)
		}
	})
	rA.eng.Run()
	rA.eng.Shutdown()
	if len(got) != 1 || !bytes.Equal(got[0], data) {
		t.Fatal("clean PDU after a lossy one was not delivered intact")
	}
	if rB.b.Stats().PDUsDropped != 1 {
		t.Errorf("PDUsDropped = %d, want 1", rB.b.Stats().PDUsDropped)
	}
}

func TestLinkLossStatsCounted(t *testing.T) {
	e := sim.NewEngine(9)
	l := atm.NewLink(e, atm.LinkConfig{LossRate: 0.5})
	delivered := 0
	l.SetReceiver(func(atm.Cell, int) { delivered++ })
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			l.Send(p, atm.Cell{Len: atm.CellPayload})
		}
	})
	e.Run()
	e.Shutdown()
	s := l.Stats()
	if s.Lost == 0 || s.Delivered == 0 {
		t.Fatalf("stats = %+v; want both losses and deliveries at 50%%", s)
	}
	if s.Lost+s.Delivered != s.Sent {
		t.Errorf("lost %d + delivered %d != sent %d", s.Lost, s.Delivered, s.Sent)
	}
	if delivered != int(s.Delivered) {
		t.Errorf("callback count %d != stats %d", delivered, s.Delivered)
	}
}
