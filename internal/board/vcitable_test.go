package board

import (
	"math/rand"
	"testing"

	"repro/internal/atm"
)

// TestVCITableBasic exercises bind/lookup/unbind including rebinding.
func TestVCITableBasic(t *testing.T) {
	var tab VCITable
	a, b := &Channel{Index: 1}, &Channel{Index: 2}
	if tab.Lookup(7) != nil {
		t.Fatal("empty table lookup != nil")
	}
	tab.Bind(7, a)
	tab.Bind(8, b)
	if tab.Lookup(7) != a || tab.Lookup(8) != b {
		t.Fatal("lookup after bind")
	}
	tab.Bind(7, b) // rebind
	if tab.Lookup(7) != b || tab.Len() != 2 {
		t.Fatalf("rebind: got len=%d", tab.Len())
	}
	if got := tab.Unbind(7); got != b {
		t.Fatalf("unbind returned %v", got)
	}
	if tab.Lookup(7) != nil || tab.Lookup(8) != b || tab.Len() != 1 {
		t.Fatal("state after unbind")
	}
	if tab.Unbind(7) != nil {
		t.Fatal("double unbind != nil")
	}
}

// TestVCITableChurn differential-tests the open-addressed table against
// a Go map through a long seeded open/close cycle — the backward-shift
// deletion is the part worth hammering.
func TestVCITableChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0514))
	var tab VCITable
	ref := make(map[atm.VCI]*Channel)
	chans := make([]*Channel, 8)
	for i := range chans {
		chans[i] = &Channel{Index: i}
	}
	for step := 0; step < 200000; step++ {
		v := atm.VCI(rng.Intn(2048))
		switch rng.Intn(3) {
		case 0, 1:
			ch := chans[rng.Intn(len(chans))]
			tab.Bind(v, ch)
			ref[v] = ch
		case 2:
			got := tab.Unbind(v)
			if got != ref[v] {
				t.Fatalf("step %d: Unbind(%d)=%v want %v", step, v, got, ref[v])
			}
			delete(ref, v)
		}
		if tab.Len() != len(ref) {
			t.Fatalf("step %d: len %d != %d", step, tab.Len(), len(ref))
		}
		// Spot-check a few random keys every step and the full map
		// periodically.
		for k := 0; k < 4; k++ {
			probe := atm.VCI(rng.Intn(2048))
			if tab.Lookup(probe) != ref[probe] {
				t.Fatalf("step %d: Lookup(%d) mismatch", step, probe)
			}
		}
		if step%5000 == 0 {
			for v, ch := range ref {
				if tab.Lookup(v) != ch {
					t.Fatalf("step %d: full check Lookup(%d) mismatch", step, v)
				}
			}
		}
	}
}

// TestVCITableLookupZeroAlloc pins the demux hot path at zero
// allocations per lookup with 1024 tenants bound — the regression gate
// for the per-cell receive path.
func TestVCITableLookupZeroAlloc(t *testing.T) {
	var tab VCITable
	ch := &Channel{Index: 3}
	for v := 0; v < 1024; v++ {
		tab.Bind(atm.VCI(100+v), ch)
	}
	var sink *Channel
	allocs := testing.AllocsPerRun(1000, func() {
		for v := 0; v < 1024; v++ {
			sink = tab.Lookup(atm.VCI(100 + v))
		}
	})
	if sink == nil {
		t.Fatal("lookup failed")
	}
	if allocs != 0 {
		t.Fatalf("demux lookup allocates: %v allocs per 1024 lookups", allocs)
	}
}

// TestBoardDemuxBindUnbind checks the board-level wiring: resync state
// clears on unbind and rebinding routes to the new channel.
func TestBoardDemuxBindUnbind(t *testing.T) {
	b := newRig(t, Config{}).b
	b.OpenChannel(1, 1, nil)
	b.OpenChannel(2, 1, nil)
	b.BindVCI(42, 1)
	if b.LookupVCI(42) != b.Channel(1) {
		t.Fatal("bind routed wrong")
	}
	b.BindVCI(42, 2)
	if b.LookupVCI(42) != b.Channel(2) {
		t.Fatal("rebind routed wrong")
	}
	if b.BoundVCIs() != 1 {
		t.Fatalf("BoundVCIs = %d, want 1", b.BoundVCIs())
	}
	b.UnbindVCI(42)
	if b.LookupVCI(42) != nil || b.BoundVCIs() != 0 {
		t.Fatal("unbind did not clear route")
	}
}

// BenchmarkVCITableLookup measures demux ns/cell at three tenant
// counts; near-flat scaling is the point of the open-addressed table.
func BenchmarkVCITableLookup(b *testing.B) {
	for _, n := range []int{8, 64, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			var tab VCITable
			ch := &Channel{Index: 3}
			vcis := make([]atm.VCI, n)
			for i := range vcis {
				vcis[i] = atm.VCI(100 + i)
				tab.Bind(vcis[i], ch)
			}
			b.ReportAllocs()
			var sink *Channel
			for i := 0; i < b.N; i++ {
				sink = tab.Lookup(vcis[i%n])
			}
			_ = sink
		})
	}
}

// BenchmarkGoMapLookup is the baseline the table replaces.
func BenchmarkGoMapLookup(b *testing.B) {
	for _, n := range []int{8, 64, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			tab := make(map[atm.VCI]*Channel)
			ch := &Channel{Index: 3}
			vcis := make([]atm.VCI, n)
			for i := range vcis {
				vcis[i] = atm.VCI(100 + i)
				tab[vcis[i]] = ch
			}
			b.ReportAllocs()
			var sink *Channel
			for i := 0; i < b.N; i++ {
				sink = tab[vcis[i%n]]
			}
			_ = sink
		})
	}
}

func benchName(n int) string {
	switch n {
	case 8:
		return "tenants8"
	case 64:
		return "tenants64"
	default:
		return "tenants1024"
	}
}
