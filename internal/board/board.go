// Package board models the OSIRIS network adaptor.
//
// Following the paper's central observation that "software running on
// the two 80960s controls the send/receive functionality of the adaptor,
// and ... this code effectively defines the software interface between
// the host and the adaptor" (§1), the board here is ordinary code
// running as two simulated processes — a transmit processor and a
// receive processor — over the dual-port memory, a pair of DMA
// controllers, and the striped ATM links. Changing "firmware" policy
// (reassembly strategy, DMA length, interrupt discipline) is a
// configuration of this package, exactly as reprogramming the i960s was.
//
// The board exposes sixteen transmit queue pages and sixteen
// free/receive queue-page pairs (§3.2). Channel 0 is the kernel's; the
// rest can be mapped into applications as application device channels.
package board

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/fault"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/sim"
)

// DMAMode selects the receive-side DMA transfer length policy (§2.5.1).
type DMAMode int

const (
	// SingleCell issues one DMA per cell payload (44 bytes).
	SingleCell DMAMode = iota
	// DoubleCell lets the receive processor look at two cell headers and
	// combine contiguous payloads into one 88-byte DMA (§2.5.1).
	DoubleCell
)

func (m DMAMode) String() string {
	if m == DoubleCell {
		return "double-cell"
	}
	return "single-cell"
}

// TxDMAPolicy selects how the transmit DMA controller handles cells
// whose bytes span a buffer boundary (§2.5.2).
type TxDMAPolicy int

const (
	// BoundaryStop is the implemented fix: the DMA stops at the buffer
	// (page) boundary and a second address fills the rest of the cell,
	// so cells are always full and buffers need not be multiples of the
	// cell payload.
	BoundaryStop TxDMAPolicy = iota
	// FixedCell is the original design: DMA lengths are exactly one cell
	// payload, so a buffer that does not end on a 44-byte multiple forces
	// a partially-filled cell in the middle of the PDU — the inelegant,
	// interoperability-breaking behaviour of §2.5.2.
	FixedCell
	// ArbitraryLength is the "ideal solution" the programmable logic
	// could not afford: any transfer length (behaviourally equal to
	// BoundaryStop for chained buffers; kept as a distinct mode for the
	// ablation benchmarks).
	ArbitraryLength
)

func (p TxDMAPolicy) String() string {
	switch p {
	case FixedCell:
		return "fixed-cell"
	case ArbitraryLength:
		return "arbitrary-length"
	default:
		return "boundary-stop"
	}
}

// ReassemblyStrategy selects how the receive processor copes with
// striping skew (§2.6).
type ReassemblyStrategy int

const (
	// FourAAL5 runs one AAL5-style reassembly per physical link, placing
	// the j-th cell received on link l at offset (j·width+l)·44 — the
	// strategy that exploits per-link ordering (§2.6 strategy two).
	FourAAL5 ReassemblyStrategy = iota
	// SeqNum places each cell by an explicit per-cell sequence number in
	// the AAL header (§2.6 strategy one).
	SeqNum
	// ArrivalOrder places cells in arrival order — correct only without
	// skew; the ablation showing why skew handling is needed.
	ArrivalOrder
)

func (s ReassemblyStrategy) String() string {
	switch s {
	case SeqNum:
		return "seqnum"
	case ArrivalOrder:
		return "arrival-order"
	default:
		return "four-aal5"
	}
}

// UsesSeqNumbers reports whether the transmit side must stamp per-cell
// sequence numbers for this strategy.
func (s ReassemblyStrategy) UsesSeqNumbers() bool { return s == SeqNum }

// IRQ line assignment: one receive, one transmit-flow-control, and one
// protection-violation line per channel.
const (
	RxIRQBase  = 0
	TxIRQBase  = 16
	VioIRQBase = 32
)

// NumChannels is the number of queue pages per direction (§3.2).
const NumChannels = dpm.PagesPerHalf

// Config configures a board's firmware policies.
type Config struct {
	Name     string
	RxDMA    DMAMode
	TxPolicy TxDMAPolicy
	Strategy ReassemblyStrategy

	// Ring slot counts (defaults 64, the paper's queue length, §2.3).
	TxRingSlots   int
	FreeRingSlots int
	RecvRingSlots int

	// RxFIFOCells is the on-board cell FIFO depth (default 64). Overflow
	// drops cells, modelling inadequate buffering.
	RxFIFOCells int

	// CellOverheadTx / CellOverheadRx price the per-cell firmware work
	// of the two on-board processors. Defaults (1.08 µs / 0.6 µs) are
	// calibrated so single-cell transmit tops out near the paper's
	// 325 Mbps and receive reassembly runs at "approximately OC-12
	// speeds in software" (§5).
	CellOverheadTx time.Duration
	CellOverheadRx time.Duration

	// PollDelay models the latency for a polling on-board processor to
	// notice new work in the dual-port memory.
	PollDelay time.Duration

	// InterruptPerPDU reverts to the traditional signalling the paper's
	// design replaces (§2.1.2): assert a host interrupt for every
	// received buffer and for every transmit completion, instead of the
	// empty→non-empty / tail-advance discipline. Ablation only.
	InterruptPerPDU bool

	// StripeWidth is the number of physical links (default 4).
	StripeWidth int

	// ReasmTimeout bounds how long a partial reassembly may sit without
	// receiving a cell before the receive processor aborts it and
	// reclaims its buffers — the graceful-degradation path for a lost
	// EOM/Last cell, which would otherwise strand rxBuf and descriptor
	// state forever. Zero disables the sweep (the seed behaviour). The
	// timeout must be much larger than per-cell processing time;
	// millisecond scale is typical.
	ReasmTimeout time.Duration
	// ReasmResync enables AAL5-style resynchronization after a mid-PDU
	// framing error: when the loss check aborts a reassembly on a cell
	// that is not itself a Last cell, the receive processor discards
	// subsequent cells on that VCI (counted in CellsResync) until the
	// next Last cell passes, so the abandoned PDU's tail cannot seed a
	// frame-shifted reassembly. Without it, a single mid-stream abort
	// under sustained load can wedge a VCI permanently: the orphaned
	// Last cell opens a bogus one-cell state whose framing bits poison
	// the loss check for every subsequent PDU, which re-orphans its own
	// Last cell in turn. Opt-in to keep the seed experiments
	// bit-identical.
	ReasmResync bool
	// CheckCRC verifies the AAL5 trailer CRC over each reassembled PDU
	// (against a firmware shadow copy of the payload) and drops
	// corrupted PDUs, counted in PDUsCRCDropped. Opt-in: the calibrated
	// experiments model the §2.3 premise that error detection lives in
	// the transport, and one ablation deliberately delivers corrupt
	// PDUs to show why skew handling matters.
	CheckCRC bool
	// RejectDuplicates drops duplicate cells where they are
	// recognizable: exactly (by sequence number) under the SeqNum
	// strategy, and duplicated Last cells under every strategy.
	// Interior duplicates under the placement strategies shift the
	// placement arithmetic and surface through the AAL5 error check
	// instead. Counted in CellsDuplicate.
	RejectDuplicates bool
	// RxFault injects faults (drop/corrupt/duplicate/delay) at the
	// receive FIFO entry — modelling a marginal board front end, as
	// opposed to a faulty link or switch.
	RxFault *fault.Config

	// RxFIFOQuota caps how many cells any one channel may hold in the
	// shared on-board receive FIFO (0 = unlimited, the seed behaviour).
	// Without it, one full-blast sender can fill the FIFO and starve
	// every other tenant's cells before demultiplexing even happens;
	// with it, an over-quota channel's cells are dropped (counted in
	// CellsQuotaDropped and per channel) while other tenants' cells
	// still find space. Opt-in per-tenant isolation.
	RxFIFOQuota int

	// RecvDropGrace bounds how long the receive DMA engine will wait
	// for space on a channel's full receive ring before dropping the
	// descriptor's PDU instead (0 = wait forever, the seed behaviour).
	// The engine is shared by all channels, so an unbounded wait lets
	// one never-reaping receiver stall every tenant's deliveries; with
	// a grace bound, the misbehaving channel's PDU is dropped to its
	// PDU boundary (buffers recycled on-board, an abort marker sent
	// once the ring drains so the driver discards any partial
	// delivery) and the engine moves on. Counted in RecvRingDropped.
	RecvDropGrace time.Duration

	// TxDRRQuantum enables deficit-round-robin transmit arbitration
	// among equal-priority channels (0 = the seed's cell-granularity
	// round robin). Each ready channel earns this many payload bytes
	// of deficit per arbitration round and transmits while its deficit
	// lasts; tenants sending short, padded PDUs are charged only for
	// the bytes they ship, so cell-slot fairness becomes goodput-byte
	// fairness. Values below one cell payload are clamped up to it.
	TxDRRQuantum int
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "osiris"
	}
	if c.TxRingSlots == 0 {
		c.TxRingSlots = 64
	}
	if c.FreeRingSlots == 0 {
		c.FreeRingSlots = 64
	}
	if c.RecvRingSlots == 0 {
		c.RecvRingSlots = 64
	}
	if c.RxFIFOCells == 0 {
		c.RxFIFOCells = 64
	}
	if c.CellOverheadTx == 0 {
		c.CellOverheadTx = 1080 * time.Nanosecond
	}
	if c.CellOverheadRx == 0 {
		c.CellOverheadRx = 600 * time.Nanosecond
	}
	if c.PollDelay == 0 {
		c.PollDelay = 200 * time.Nanosecond
	}
	if c.StripeWidth == 0 {
		c.StripeWidth = atm.StripeWidth
	}
	if c.TxDRRQuantum > 0 && c.TxDRRQuantum < atm.CellPayload {
		c.TxDRRQuantum = atm.CellPayload
	}
	return c
}

// Stats counts board activity.
type Stats struct {
	CellsTx           int64
	CellsRx           int64
	PDUsTx            int64
	PDUsRx            int64
	PDUsDropped       int64 // reassembly gave up (no buffers, bad placement)
	CellsDroppedFIFO  int64
	CellsNoVCI        int64
	PartialCellsTx    int64 // mid-PDU partial cells (FixedCell policy)
	SplitCellsTx      int64 // cells composed from two buffer segments
	CombinedDMAs      int64 // double-cell DMAs issued
	SingleDMAs        int64
	RxIRQs            int64
	TxIRQs            int64
	Violations        int64
	ScratchRecycled   int64
	PDUsTimedOut      int64 // reassemblies aborted by the ReasmTimeout sweep
	PDUsCRCDropped    int64 // completed PDUs rejected by the AAL5 CRC check
	CellsDuplicate    int64 // duplicate cells rejected (RejectDuplicates)
	CellsResync       int64 // cells discarded while resyncing after a framing error (ReasmResync)
	RxAbortMarkers    int64 // abort markers sent to the driver for partial PDUs
	CellsQuotaDropped int64 // cells dropped by the per-channel rx FIFO quota (RxFIFOQuota)
	RecvRingDropped   int64 // descriptors dropped at a full receive ring (RecvDropGrace)
}

// Channel is one transmit page plus one free/receive page pair — the
// unit the OS can keep for itself (channel 0) or map into an application
// as an ADC (§3.2).
type Channel struct {
	board    *Board
	Index    int
	Priority int
	open     bool

	TxRing   *queue.Ring
	FreeRing *queue.Ring
	RecvRing *queue.Ring

	// allowed is the set of physical frames this channel may name in
	// descriptors; nil means unrestricted (the kernel channel).
	allowed map[mem.Frame]bool
	// vciAllowed optionally narrows authorization per transmit VCI —
	// the per-ADC descriptor tag when many virtual ADCs multiplex one
	// physical channel: a descriptor carrying VCI v must name only
	// frames in vciAllowed[v] (in addition to the channel set). nil
	// (the common case) costs one branch; descriptors with VCI 0
	// (free-ring buffers) see only the channel-level check.
	vciAllowed map[atm.VCI]map[mem.Frame]bool

	tx        txStream
	peekAhead int // descs peeked past, awaiting tail advance by the DMA engine
	reasm     map[atm.VCI]*reasmState
	resync    map[atm.VCI]bool // VCIs discarding until the next Last cell (Config.ReasmResync)
	stash     []queue.Desc     // internally recycled scratch buffers

	// Per-tenant fairness state (all opt-in; zero-valued when off).
	fifoCells    int   // cells currently held in the shared rx FIFO (RxFIFOQuota)
	quotaDropped int64 // cells this channel lost to the quota
	txDeficit    int   // DRR byte deficit (TxDRRQuantum)
	ringDropped  int64 // descriptors this channel lost to RecvDropGrace

	// Receive-ring overflow drop state (RecvDropGrace). After a drop
	// the engine discards the rest of that PDU's descriptors
	// (rxDropUntilEOP) so the driver never sees a torn PDU, and — if
	// part of the PDU already reached the ring — defers one abort
	// marker (rxNeedAbort) to be pushed before the next delivery.
	rxDropUntilEOP bool
	rxNeedAbort    bool
	rxPduPushed    bool // a data descriptor of the current PDU is in the ring
}

// QuotaDropped reports cells this channel lost to the rx FIFO quota.
func (c *Channel) QuotaDropped() int64 { return c.quotaDropped }

// RingDropped reports descriptors this channel lost to RecvDropGrace.
func (c *Channel) RingDropped() int64 { return c.ringDropped }

// Open reports whether the channel has been opened.
func (c *Channel) Open() bool { return c.open }

// NotifyFlagOff returns the dual-port offset of this channel's
// transmit-queue "interrupt me at half empty" flag (§2.1.2).
func (c *Channel) NotifyFlagOff() uint32 {
	return dpm.TxPageOff(c.Index) + dpm.PageSize - 4
}

// Board is one OSIRIS adaptor plugged into a host.
type Board struct {
	eng  *sim.Engine
	host *hostsim.Host
	cfg  Config

	DPM *dpm.Memory

	chans [NumChannels]*Channel
	demux VCITable // O(1) VCI→channel receive demultiplexer

	outLinks []*atm.Link // transmit side, indexed by stripe position
	txSink   func(c atm.Cell, link int)
	rxFIFO   *sim.Chan[rxCell]

	irq func(line int)
	// vioHook, when set, attributes each authorization violation to the
	// offending descriptor's transmit VCI — the per-virtual-ADC tag on
	// multiplexed channels (adc.Manager installs it).
	vioHook func(ch int, vci atm.VCI)

	txWork  *sim.Cond
	txRR    int // round-robin cursor among equal-priority channels
	txCmds  *sim.Chan[txCmd]
	rxCmds  *sim.Chan[rxCmd]
	fireCtl *sim.Chan[fictReq]

	// Scratch pools for the per-cell slices carried in DMA commands;
	// the processors take, the DMA engines return. Host-side memory
	// reuse only — no simulated effect.
	segPool  [][]mem.PhysBuffer
	dataPool [][]byte

	// shadowPool recycles the CheckCRC shadow buffers across PDUs.
	shadowPool [][]byte

	// txPool stages outgoing cell payloads flyweight-style: the
	// transmit DMA engine borrows a buffer per cell and frees it on
	// delivery, so steady-state transmission allocates nothing.
	txPool *atm.PayloadPool

	rxInj      *fault.Injector // receive-path injector (nil when off)
	reasmTimer sim.Event       // pending ReasmTimeout sweep, if any

	stats Stats

	// Telemetry handles, nil unless RegisterMetrics installed them.
	// Observation sites nil-check before computing the observed value,
	// so the disabled plane costs one branch and zero allocations.
	mRxFIFOHW  *metrics.HighWater
	mTxFIFOHW  *metrics.HighWater
	mReasmOpen *metrics.HighWater
	mReasmSpan *metrics.Sketch

	// Trace track labels, precomputed so Emit never concatenates.
	trkRx string
	trkTx string
}

// getSegs takes a recycled extent slice (or makes one).
func (b *Board) getSegs() []mem.PhysBuffer {
	if n := len(b.segPool); n > 0 {
		s := b.segPool[n-1]
		b.segPool = b.segPool[:n-1]
		return s[:0]
	}
	return make([]mem.PhysBuffer, 0, 2)
}

// putSegs returns an extent slice consumed by a DMA engine.
func (b *Board) putSegs(s []mem.PhysBuffer) {
	if s != nil {
		b.segPool = append(b.segPool, s)
	}
}

// getRxData takes a recycled receive staging buffer (or makes one big
// enough for a double-cell DMA).
func (b *Board) getRxData() []byte {
	if n := len(b.dataPool); n > 0 {
		d := b.dataPool[n-1]
		b.dataPool = b.dataPool[:n-1]
		return d[:0]
	}
	return make([]byte, 0, 2*atm.CellPayload)
}

// putRxData returns a staging buffer consumed by the receive DMA engine.
func (b *Board) putRxData(d []byte) {
	if d != nil {
		b.dataPool = append(b.dataPool, d)
	}
}

type rxCell struct {
	c    atm.Cell
	link int
	// qch is the channel charged for this cell's rx-FIFO occupancy
	// under RxFIFOQuota; nil when the quota is off or the cell entered
	// by a path that bypasses accounting (fictitious generator,
	// InjectCell). The pointer rides with the cell so the charge is
	// released against the right channel even if the VCI is rebound
	// while the cell sits in the FIFO.
	qch *Channel
}

// New creates a board attached to host h. Interrupts are delivered to
// the host's interrupt controller. The transmit processor, receive
// processor and both DMA controllers start immediately.
func New(e *sim.Engine, h *hostsim.Host, cfg Config) *Board {
	cfg = cfg.withDefaults()
	b := &Board{
		eng:    e,
		host:   h,
		cfg:    cfg,
		DPM:    dpm.New(e, h.Bus),
		rxFIFO: sim.NewChan[rxCell](e, cfg.RxFIFOCells),
		irq:    h.Int.Assert,
		trkRx:  cfg.Name + "-rx",
		trkTx:  cfg.Name + "-tx",
		txPool: atm.NewPayloadPool(),
	}
	b.rxInj = fault.New(e, cfg.Name+"/rx", cfg.RxFault)
	for i := 0; i < NumChannels; i++ {
		ch := &Channel{
			board:  b,
			Index:  i,
			reasm:  make(map[atm.VCI]*reasmState),
			resync: make(map[atm.VCI]bool),
		}
		ch.TxRing = queue.NewRing(b.DPM, dpm.TxPageOff(i), cfg.TxRingSlots)
		rxBase := dpm.RxPageOff(i)
		ch.FreeRing = queue.NewRing(b.DPM, rxBase, cfg.FreeRingSlots)
		ch.RecvRing = queue.NewRing(b.DPM, rxBase+uint32(queue.BytesFor(cfg.FreeRingSlots)), cfg.RecvRingSlots)
		b.chans[i] = ch
	}
	if queue.BytesFor(cfg.FreeRingSlots)+queue.BytesFor(cfg.RecvRingSlots) > dpm.PageSize {
		panic("board: free+recv rings exceed one queue page")
	}
	if queue.BytesFor(cfg.TxRingSlots) > dpm.PageSize-4 {
		panic("board: tx ring exceeds its queue page")
	}
	b.chans[0].open = true // the kernel's channel

	b.txWork = sim.NewCond(e)
	b.txCmds = sim.NewChan[txCmd](e, 8)
	b.rxCmds = sim.NewChan[rxCmd](e, 16)
	b.fireCtl = sim.NewChan[fictReq](e, 1)

	e.Go(cfg.Name+"-txproc", b.txProc)
	e.Go(cfg.Name+"-txdma", b.txDMAEngine)
	e.Go(cfg.Name+"-rxproc", b.rxProc)
	e.Go(cfg.Name+"-rxdma", b.rxDMAEngine)
	e.Go(cfg.Name+"-fict", b.fictProc)
	return b
}

// Config returns the effective configuration.
func (b *Board) Config() Config { return b.cfg }

// Host returns the host this board is plugged into.
func (b *Board) Host() *hostsim.Host { return b.host }

// Stats returns a copy of the counters.
func (b *Board) Stats() Stats { return b.stats }

// RegisterMetrics registers the board's telemetry under prefix. The
// Stats counters become snapshot-time samples (zero hot-path cost);
// the FIFO occupancy high-waters, open-reassembly high-water, and the
// per-PDU reassembly-span sketch (µs from first to last cell of a
// completed PDU) are live handles observed on the hot paths, each
// nil-guarded so the disabled plane costs one branch. Call before the
// run starts; a nil registry is a no-op.
func (b *Board) RegisterMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	s := &b.stats
	r.Sample(prefix+"/cells_tx", metrics.KindCounter, func() int64 { return s.CellsTx })
	r.Sample(prefix+"/cells_rx", metrics.KindCounter, func() int64 { return s.CellsRx })
	r.Sample(prefix+"/pdus_tx", metrics.KindCounter, func() int64 { return s.PDUsTx })
	r.Sample(prefix+"/pdus_rx", metrics.KindCounter, func() int64 { return s.PDUsRx })
	r.Sample(prefix+"/pdus_dropped", metrics.KindCounter, func() int64 { return s.PDUsDropped })
	r.Sample(prefix+"/rx_fifo_dropped", metrics.KindCounter, func() int64 { return s.CellsDroppedFIFO })
	r.Sample(prefix+"/cells_no_vci", metrics.KindCounter, func() int64 { return s.CellsNoVCI })
	r.Sample(prefix+"/rx_irqs", metrics.KindCounter, func() int64 { return s.RxIRQs })
	r.Sample(prefix+"/tx_irqs", metrics.KindCounter, func() int64 { return s.TxIRQs })
	r.Sample(prefix+"/pdus_timed_out", metrics.KindCounter, func() int64 { return s.PDUsTimedOut })
	r.Sample(prefix+"/pdus_crc_dropped", metrics.KindCounter, func() int64 { return s.PDUsCRCDropped })
	r.Sample(prefix+"/cells_duplicate", metrics.KindCounter, func() int64 { return s.CellsDuplicate })
	if b.cfg.ReasmResync {
		// Gated so configurations without resync keep their metric set
		// (and the committed benchmark artifacts) byte-identical.
		r.Sample(prefix+"/cells_resync", metrics.KindCounter, func() int64 { return s.CellsResync })
	}
	r.Sample(prefix+"/rx_abort_markers", metrics.KindCounter, func() int64 { return s.RxAbortMarkers })
	if b.cfg.RxFIFOQuota > 0 {
		// Gated like cells_resync: only quota-enabled configurations
		// grow their metric name set.
		r.Sample(prefix+"/cells_quota_dropped", metrics.KindCounter, func() int64 { return s.CellsQuotaDropped })
	}
	if b.cfg.RecvDropGrace > 0 {
		r.Sample(prefix+"/recv_ring_dropped", metrics.KindCounter, func() int64 { return s.RecvRingDropped })
	}
	r.Sample(prefix+"/reasm_open", metrics.KindGauge, func() int64 { return int64(b.OpenReassemblies()) })
	r.Sample(prefix+"/reasm_held_bufs", metrics.KindGauge, func() int64 { return int64(b.HeldReasmBufs()) })
	b.mRxFIFOHW = r.HighWater(prefix + "/rx_fifo_high_water")
	b.mTxFIFOHW = r.HighWater(prefix + "/tx_fifo_high_water")
	b.mReasmOpen = r.HighWater(prefix + "/reasm_open_high_water")
	b.mReasmSpan = r.Quantiles(prefix+"/reasm_span_us", 0.5, 0.9, 0.99)
}

// ResetStats zeroes the counters.
func (b *Board) ResetStats() { b.stats = Stats{} }

// Channel returns channel i.
func (b *Board) Channel(i int) *Channel {
	if i < 0 || i >= NumChannels {
		panic(fmt.Sprintf("board: channel %d out of range", i))
	}
	return b.chans[i]
}

// KernelChannel returns channel 0.
func (b *Board) KernelChannel() *Channel { return b.chans[0] }

// AttachTxLinks connects the transmit side to physical links; cell i of
// each PDU is transmitted on link i mod width, so the receiver's
// per-link reassembly arithmetic holds even when PDUs from different
// channels interleave.
func (b *Board) AttachTxLinks(links []*atm.Link) {
	if len(links) != b.cfg.StripeWidth {
		panic("board: link count != stripe width")
	}
	b.outLinks = links
}

// SetTxSink installs a callback that absorbs transmitted cells when no
// links are attached — used to isolate the transmit side (Figure 4) and
// by unit tests. It runs in the DMA engine's proc context.
func (b *Board) SetTxSink(fn func(c atm.Cell, link int)) { b.txSink = fn }

// InjectCell delivers a cell directly into the receive FIFO, as if it
// had arrived on the given link — the unit-test backdoor.
func (b *Board) InjectCell(c atm.Cell, link int) bool {
	if !b.rxFIFO.TrySend(rxCell{c: c, link: link}) {
		b.stats.CellsDroppedFIFO++
		return false
	}
	if b.mRxFIFOHW != nil {
		b.mRxFIFOHW.Observe(int64(b.rxFIFO.Len()))
	}
	return true
}

// AttachRxLinks subscribes the receive side to a stripe group's
// deliveries. Cells arriving while the on-board FIFO is full are
// dropped (§2.5.1's "inadequate reassembly space" concern).
func (b *Board) AttachRxLinks(g *atm.StripeGroup) {
	g.SetReceiver(b.receiveCell)
}

// receiveCell runs in link-delivery (event) context: it applies the
// board's receive-path fault injector, then enters the cell FIFO.
func (b *Board) receiveCell(c atm.Cell, link int) {
	act := b.rxInj.Apply(b.eng.Now())
	if act.Drop {
		return // counted by the injector
	}
	if act.CorruptBit >= 0 && c.Len > 0 {
		bit := act.CorruptBit % (8 * c.Len)
		c.Payload[bit/8] ^= 1 << (bit % 8)
	}
	rc := rxCell{c: c, link: link}
	if act.Delay > 0 {
		b.eng.AfterCall(act.Delay, rxDelayedCB, &delayedRxCell{b: b, rc: rc})
	} else {
		b.enterRxFIFO(rc)
	}
	if act.Duplicate {
		b.enterRxFIFO(rc)
	}
}

// delayedRxCell carries a reorder-delayed cell to its deferred FIFO
// entry.
type delayedRxCell struct {
	b  *Board
	rc rxCell
}

func rxDelayedCB(a any) {
	d := a.(*delayedRxCell)
	d.b.enterRxFIFO(d.rc)
}

// enterRxFIFO enters one cell into the receive FIFO (event context),
// dropping on overflow. Under RxFIFOQuota the cell is charged to its
// VCI's channel first, and dropped instead if that channel already
// holds its quota of the shared FIFO — per-tenant isolation at the
// earliest demultiplexing point (§3.1).
func (b *Board) enterRxFIFO(rc rxCell) {
	if q := b.cfg.RxFIFOQuota; q > 0 {
		if ch := b.demux.Lookup(rc.c.VCI); ch != nil {
			if ch.fifoCells >= q {
				ch.quotaDropped++
				b.stats.CellsQuotaDropped++
				if b.eng.Tracing() {
					b.eng.Tracef("drop: %s rx FIFO quota ch%d vci=%d", b.cfg.Name, ch.Index, rc.c.VCI)
				}
				if b.eng.Recording() {
					b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'i', Comp: b.trkRx, Cat: "drop", Name: "rx-fifo-quota", Arg: int64(rc.c.VCI)})
				}
				return
			}
			rc.qch = ch
		}
	}
	if !b.rxFIFO.TrySend(rc) {
		b.stats.CellsDroppedFIFO++
		if b.eng.Tracing() {
			b.eng.Tracef("drop: %s rx FIFO overflow vci=%d", b.cfg.Name, rc.c.VCI)
		}
		if b.eng.Recording() {
			b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'i', Comp: b.trkRx, Cat: "drop", Name: "rx-fifo-overflow", Arg: int64(rc.c.VCI)})
		}
		return
	}
	if rc.qch != nil {
		rc.qch.fifoCells++
	}
	if b.mRxFIFOHW != nil {
		b.mRxFIFOHW.Observe(int64(b.rxFIFO.Len()))
	}
	if b.eng.Recording() {
		b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'C', Comp: b.trkRx, Cat: "q", Name: "rx-fifo", Arg: int64(b.rxFIFO.Len())})
	}
}

// RxInjector exposes the board's receive-path fault injector (nil when
// off).
func (b *Board) RxInjector() *fault.Injector { return b.rxInj }

// OpenChannel marks channel i usable, sets its priority, and restricts
// the physical frames its descriptors may reference (nil = unrestricted,
// kernel use only). This is control-plane work done by the OS at
// connection setup (§3.2).
func (b *Board) OpenChannel(i, priority int, allowed []mem.Frame) *Channel {
	ch := b.Channel(i)
	ch.open = true
	ch.Priority = priority
	if allowed == nil {
		ch.allowed = nil
	} else {
		ch.allowed = make(map[mem.Frame]bool, len(allowed))
		for _, f := range allowed {
			ch.allowed[f] = true
		}
	}
	return ch
}

// AllowFrames adds frames to an open channel's authorized set.
func (b *Board) AllowFrames(i int, frames []mem.Frame) {
	ch := b.Channel(i)
	if ch.allowed == nil {
		ch.allowed = make(map[mem.Frame]bool, len(frames))
	}
	for _, f := range frames {
		ch.allowed[f] = true
	}
}

// BindVCI routes incoming cells with the given VCI to channel i — the
// early demultiplexing decision (§3.1). It also makes the VCI usable for
// transmit on that channel.
func (b *Board) BindVCI(v atm.VCI, i int) {
	b.demux.Bind(v, b.Channel(i))
}

// UnbindVCI removes a VCI route, clearing any pending resync state so a
// later rebinding of the VCI starts with clean framing.
func (b *Board) UnbindVCI(v atm.VCI) {
	if ch := b.demux.Unbind(v); ch != nil {
		delete(ch.resync, v)
	}
}

// LookupVCI returns the channel a VCI is routed to (nil if unbound) —
// the same O(1) demux the receive path uses.
func (b *Board) LookupVCI(v atm.VCI) *Channel { return b.demux.Lookup(v) }

// BoundVCIs returns the number of VCIs currently routed.
func (b *Board) BoundVCIs() int { return b.demux.Len() }

// RestrictVCIFrames narrows transmit authorization for VCI v on channel
// i to the given frames (per-ADC descriptor tagging on a multiplexed
// channel). The frames are also added to the channel-level set.
func (b *Board) RestrictVCIFrames(i int, v atm.VCI, frames []mem.Frame) {
	ch := b.Channel(i)
	if ch.vciAllowed == nil {
		ch.vciAllowed = make(map[atm.VCI]map[mem.Frame]bool)
	}
	set := ch.vciAllowed[v]
	if set == nil {
		set = make(map[mem.Frame]bool, len(frames))
		ch.vciAllowed[v] = set
	}
	for _, f := range frames {
		set[f] = true
	}
	b.AllowFrames(i, frames)
}

// RevokeVCIFrames removes VCI v's per-VCI authorization from channel i
// and retires its frames from the channel-level set — connection
// teardown on a multiplexed channel, so churn cannot grow the
// authorization tables without bound. The frames must not be shared
// with another tenant of the channel.
func (b *Board) RevokeVCIFrames(i int, v atm.VCI) {
	ch := b.Channel(i)
	set := ch.vciAllowed[v]
	if set == nil {
		return
	}
	delete(ch.vciAllowed, v)
	for f := range set {
		delete(ch.allowed, f)
	}
}

// SetViolationHook installs a callback invoked (in board proc context)
// on every authorization violation with the channel index and the
// offending descriptor's VCI — 0 when the descriptor carries no tag
// (free-ring buffers). adc.Manager uses it to attribute violations to
// the virtual ADC that issued the descriptor.
func (b *Board) SetViolationHook(fn func(ch int, vci atm.VCI)) { b.vioHook = fn }

// KickTx tells the transmit processor that new descriptors may be
// queued. The real processor discovers this by polling the head
// pointer; the kick plus PollDelay models that discovery without the
// simulation having to burn events on an idle poll loop.
func (b *Board) KickTx() { b.txWork.Broadcast() }

// KickFree wakes a fictitious-mode generator waiting for free buffers
// (the real receive processor polls).
func (b *Board) KickFree() { b.txWork.Broadcast() }

func (b *Board) authorized(ch *Channel, d queue.Desc) bool {
	if ch.allowed == nil {
		return true
	}
	m := b.host.Mem
	first := m.FrameOf(d.Addr)
	last := m.FrameOf(d.Addr + mem.PhysAddr(d.Len) - 1)
	for f := first; f <= last; f++ {
		if !ch.allowed[f] {
			return false
		}
	}
	if ch.vciAllowed != nil && d.VCI != 0 {
		set := ch.vciAllowed[d.VCI]
		if set == nil {
			return false // tagged descriptor for a VCI with no grant
		}
		for f := first; f <= last; f++ {
			if !set[f] {
				return false
			}
		}
	}
	return true
}

func (b *Board) violation(ch *Channel, vci atm.VCI) {
	b.stats.Violations++
	if b.eng.Tracing() {
		b.eng.Tracef("drop: %s authorization violation ch%d vci=%d", b.cfg.Name, ch.Index, vci)
	}
	if b.vioHook != nil {
		b.vioHook(ch.Index, vci)
	}
	b.irq(VioIRQBase + ch.Index)
}

// noteReasmActivity refreshes a reassembly's idle clock and keeps the
// timeout sweep armed. The timer is armed only while reassemblies can
// be open and is not re-armed once everything drains — a perpetually
// pending event would keep Engine.Run from ever quiescing.
func (b *Board) noteReasmActivity(rs *reasmState) {
	rs.lastArrival = b.eng.Now()
	if b.cfg.ReasmTimeout > 0 && !b.reasmTimer.Pending() {
		b.reasmTimer = b.eng.AfterCall(b.cfg.ReasmTimeout, reasmSweepCB, b)
	}
}

// reasmSweepRetry is how soon the sweep retries a timed-out reassembly
// whose abort marker could not be queued (rx DMA command queue full).
const reasmSweepRetry = 10 * time.Microsecond

// reasmSweepCB runs in event context: it aborts every reassembly whose
// idle time reached ReasmTimeout, reclaiming its buffers, then re-arms
// for the earliest remaining deadline. Channels are visited in index
// order and VCIs in sorted order, so the stash contents and statistics
// are deterministic despite the map storage.
func reasmSweepCB(a any) {
	b := a.(*Board)
	b.reasmTimer = sim.Event{}
	if b.cfg.ReasmTimeout <= 0 {
		return
	}
	now := b.eng.Now()
	var next sim.Time = -1
	sooner := func(t sim.Time) {
		if next < 0 || t < next {
			next = t
		}
	}
	for _, ch := range b.chans {
		if len(ch.reasm) == 0 {
			continue
		}
		vcis := make([]int, 0, len(ch.reasm))
		for v := range ch.reasm {
			vcis = append(vcis, int(v))
		}
		sort.Ints(vcis)
		for _, vi := range vcis {
			rs := ch.reasm[atm.VCI(vi)]
			deadline := rs.lastArrival.Add(b.cfg.ReasmTimeout)
			if deadline > now {
				sooner(deadline)
			} else if !b.timeoutReasm(ch, rs) {
				sooner(now.Add(reasmSweepRetry))
			}
		}
	}
	if next >= 0 {
		b.reasmTimer = b.eng.AtCall(next, reasmSweepCB, b)
	}
}

// timeoutReasm aborts one stranded reassembly: unpushed buffers return
// to the channel's scratch stash, and if part of the PDU already
// streamed to the host, an abort-marker descriptor (FlagErr) follows
// the in-flight DMA so the driver discards the partial delivery and
// recycles its buffers. Returns false when the marker could not be
// queued (the caller retries shortly).
func (b *Board) timeoutReasm(ch *Channel, rs *reasmState) bool {
	if rs.anyPushed() {
		marker := rxCmd{ch: ch, pushes: []queue.Desc{{VCI: rs.vci, Flags: queue.FlagErr}}}
		if !b.rxCmds.TrySend(marker) {
			return false
		}
		b.stats.RxAbortMarkers++
	}
	scratch := rs.abort()
	ch.stash = append(ch.stash, scratch...)
	b.stats.ScratchRecycled += int64(len(scratch))
	b.stats.PDUsTimedOut++
	if b.eng.Tracing() {
		b.eng.Tracef("drop: %s reassembly timeout vci=%d received=%d", b.cfg.Name, rs.vci, rs.received)
	}
	if b.eng.Recording() {
		b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'i', Comp: b.trkRx, Cat: "drop", Name: "reasm-timeout", Arg: int64(rs.vci)})
	}
	delete(ch.reasm, rs.vci)
	b.releaseShadow(rs)
	return true
}

// getShadow takes a recycled CRC shadow buffer (may return nil; the
// shadow grows on demand).
func (b *Board) getShadow() []byte {
	if n := len(b.shadowPool); n > 0 {
		s := b.shadowPool[n-1]
		b.shadowPool = b.shadowPool[:n-1]
		return s[:0]
	}
	return nil
}

// releaseShadow returns a reassembly's shadow buffer to the pool.
func (b *Board) releaseShadow(rs *reasmState) {
	if rs.shadow != nil {
		b.shadowPool = append(b.shadowPool, rs.shadow)
		rs.shadow = nil
	}
}

// OpenReassemblies counts the partial PDUs currently held across all
// channels — the quantity the ReasmTimeout sweep exists to drive back
// to zero. Snapshot discipline: read between engine steps.
func (b *Board) OpenReassemblies() int {
	n := 0
	for _, ch := range b.chans {
		n += len(ch.reasm)
	}
	return n
}

// HeldReasmBufs counts receive buffers held by open reassemblies that
// have not yet been pushed to the host. Together with OpenReassemblies
// this is the leak check for graceful degradation: after a faulted run
// drains, both must be zero.
func (b *Board) HeldReasmBufs() int {
	n := 0
	for _, ch := range b.chans {
		for _, rs := range ch.reasm {
			for i := range rs.bufs {
				if !rs.bufs[i].pushed {
					n++
				}
			}
		}
	}
	return n
}

// pushRecvDesc queues a filled-buffer descriptor on a channel's receive
// ring and asserts the receive interrupt only when the ring was empty
// before the push — the §2.1.2 discipline that keeps interrupts well
// below one per PDU for bursts. Runs in the rx DMA engine's context so
// the descriptor never becomes visible before its data.
func (b *Board) pushRecvDesc(p *sim.Proc, ch *Channel, d queue.Desc) {
	if b.cfg.RecvDropGrace > 0 {
		b.pushRecvDescBounded(p, ch, d)
		return
	}
	// Refresh the tail so emptiness is judged against the host's actual
	// consumption, then push; interrupt only on the empty→non-empty
	// transition (or unconditionally under the traditional ablation).
	ch.RecvRing.ObserveTail(p, dpm.Board)
	wasEmpty := ch.RecvRing.WriterLen() == 0
	for !ch.RecvRing.TryPush(p, dpm.Board, d) {
		// Host is far behind; wait for it to drain.
		p.Sleep(2 * time.Microsecond)
	}
	b.recvPushIRQ(ch, wasEmpty)
}

func (b *Board) recvPushIRQ(ch *Channel, wasEmpty bool) {
	if b.cfg.InterruptPerPDU || wasEmpty {
		b.stats.RxIRQs++
		if b.eng.Tracing() {
			b.eng.Tracef("irq: %s rx ch%d", b.cfg.Name, ch.Index)
		}
		if b.eng.Recording() {
			b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'i', Comp: b.trkRx, Cat: "irq", Name: "rx-irq", Arg: int64(ch.Index)})
		}
		b.irq(RxIRQBase + ch.Index)
	}
}

// pushRecvDescBounded is the RecvDropGrace push path. The receive DMA
// engine is one shared processor, so a channel whose host never reaps
// its receive ring must not hold it hostage: after the grace wait the
// descriptor's PDU is dropped instead. Dropping preserves two driver
// invariants — a PDU's descriptors arrive whole (so every descriptor
// of a dropped PDU after the first is discarded until its EOP), and a
// partial delivery is always terminated by an abort marker (deferred
// until the ring has room, pushed before any later delivery).
func (b *Board) pushRecvDescBounded(p *sim.Proc, ch *Channel, d queue.Desc) {
	isMarker := d.Flags&queue.FlagErr != 0
	if ch.rxDropUntilEOP {
		if !isMarker {
			if d.Flags&queue.FlagEOP != 0 {
				ch.rxDropUntilEOP = false
			}
			b.dropRecvDesc(ch, d)
			return
		}
		// An abort marker terminates the dropped PDU too, and subsumes
		// any marker still owed.
		ch.rxDropUntilEOP = false
	}
	if ch.rxNeedAbort && !isMarker {
		// A deferred abort marker must precede the next delivery.
		marker := queue.Desc{VCI: d.VCI, Flags: queue.FlagErr}
		if !b.tryPushRecv(p, ch, marker) {
			// Still no room: this PDU is dropped as well; the marker
			// stays owed (one marker suffices — no data reached the
			// ring in between).
			b.beginRecvDrop(ch, d)
			return
		}
		b.stats.RxAbortMarkers++
		ch.rxNeedAbort = false
		ch.rxPduPushed = false
	}
	if !b.tryPushRecv(p, ch, d) {
		if isMarker {
			// The marker itself found no room; owe it.
			ch.rxNeedAbort = true
			ch.rxPduPushed = false
			ch.ringDropped++
			b.stats.RecvRingDropped++
			return
		}
		b.beginRecvDrop(ch, d)
		return
	}
	if isMarker {
		ch.rxNeedAbort = false
		ch.rxPduPushed = false
	} else {
		ch.rxPduPushed = d.Flags&queue.FlagEOP == 0
	}
}

// beginRecvDrop records the start of a dropped PDU at descriptor d:
// the buffer is recycled on-board, the rest of the PDU will be
// discarded, and an abort marker is owed if part of the PDU already
// reached the host.
func (b *Board) beginRecvDrop(ch *Channel, d queue.Desc) {
	b.dropRecvDesc(ch, d)
	if d.Flags&queue.FlagEOP == 0 {
		ch.rxDropUntilEOP = true
	}
	if ch.rxPduPushed {
		ch.rxNeedAbort = true
		ch.rxPduPushed = false
	}
}

// dropRecvDesc counts one dropped descriptor and recycles its buffer
// into the channel's scratch stash (the board keeps the buffer: the
// host never saw the descriptor, so only the board can reuse it).
func (b *Board) dropRecvDesc(ch *Channel, d queue.Desc) {
	ch.ringDropped++
	b.stats.RecvRingDropped++
	if d.Len > 0 {
		ch.stash = append(ch.stash, queue.Desc{Addr: d.Addr, Len: d.Len})
		b.stats.ScratchRecycled++
	}
	if b.eng.Tracing() {
		b.eng.Tracef("drop: %s recv ring full ch%d vci=%d", b.cfg.Name, ch.Index, d.VCI)
	}
	if b.eng.Recording() {
		b.eng.Emit(sim.TraceEvent{At: b.eng.Now(), Ph: 'i', Comp: b.trkRx, Cat: "drop", Name: "recv-ring-drop", Arg: int64(ch.Index)})
	}
}

// tryPushRecv attempts a ring push, waiting at most RecvDropGrace for
// the host to drain; reports success. Interrupt discipline matches the
// unbounded path.
func (b *Board) tryPushRecv(p *sim.Proc, ch *Channel, d queue.Desc) bool {
	const step = 2 * time.Microsecond
	var waited time.Duration
	ch.RecvRing.ObserveTail(p, dpm.Board)
	wasEmpty := ch.RecvRing.WriterLen() == 0
	for !ch.RecvRing.TryPush(p, dpm.Board, d) {
		if waited >= b.cfg.RecvDropGrace {
			return false
		}
		p.Sleep(step)
		waited += step
		ch.RecvRing.ObserveTail(p, dpm.Board)
		wasEmpty = ch.RecvRing.WriterLen() == 0
	}
	b.recvPushIRQ(ch, wasEmpty)
	return true
}
