// Package queue implements the paper's host/board communication
// structures over the dual-port memory (§2.1.1).
//
// The basic structure is a lock-free one-reader-one-writer FIFO of
// buffer descriptors: an array plus a head pointer modified only by the
// writer and a tail pointer modified only by the reader, relying solely
// on the dual-port memory's word atomicity. Status is derived from the
// pointers:
//
//	head == tail             → queue empty
//	(head+1) mod size == tail → queue full
//
// Each side keeps a local shadow copy of the pointer it owns and of the
// last value it observed of the other side's pointer, re-reading across
// the bus only when the shadow says the queue might be empty/full — this
// is what "minimizing the number of load and store operations" (§2.1)
// buys.
//
// A spin-lock variant (SpinRing), built on the board's test-and-set
// registers, is provided purely as the ablation baseline the paper
// argues against: it admits arbitrarily complex shared structures but
// serializes host and board accesses.
package queue

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Desc flags.
const (
	// FlagEOP marks the final buffer of a PDU.
	FlagEOP uint16 = 1 << 0
	// FlagErr marks a buffer the board found in error (e.g. CRC failure).
	FlagErr uint16 = 1 << 1
	// FlagCE marks a PDU at least one of whose cells arrived with the
	// congestion-experienced bit set by the fabric; the board sets it on
	// the EOP descriptor so the driver can surface the mark to transports.
	FlagCE uint16 = 1 << 2
)

// Desc describes one physical buffer exchanged between host and board:
// its physical address and length, plus the VCI and flags the receive
// path needs for early demultiplexing.
type Desc struct {
	Addr  mem.PhysAddr
	Len   uint32
	VCI   atm.VCI
	Flags uint16
	Aux   uint32 // strategy-specific (e.g. byte offset within the PDU)
}

// descWords is the descriptor footprint in 32-bit words.
const descWords = 4

// ringHdrWords is head + tail.
const ringHdrWords = 2

// BytesFor returns the dual-port memory footprint of a ring with the
// given number of descriptor slots.
func BytesFor(slots int) int { return 4 * (ringHdrWords + slots*descWords) }

// Ring is the lock-free 1R1W descriptor FIFO. One party (fixed at
// construction per call site convention) must be the only writer and
// the other the only reader; the implementation does not police this —
// just as the hardware did not.
//
// Note: a ring with S slots holds at most S-1 descriptors (the classic
// one-empty-slot full/empty disambiguation).
type Ring struct {
	d     *dpm.Memory
	base  uint32
	slots uint32

	// Writer-side shadows.
	wHead     uint32 // writer's own head (authoritative; mirror of dpm)
	wSeenTail uint32 // last tail value the writer observed
	// Reader-side shadows.
	rTail     uint32 // reader's own tail
	rSeenHead uint32 // last head value the reader observed
}

// NewRing lays a ring with the given slot count over dual-port memory d
// at byte offset base. The region must be zeroed (fresh board) or Init
// must be called by one side before use.
func NewRing(d *dpm.Memory, base uint32, slots int) *Ring {
	if slots < 2 {
		panic("queue: ring needs at least 2 slots")
	}
	if base%4 != 0 {
		panic("queue: ring base must be word aligned")
	}
	return &Ring{d: d, base: base, slots: uint32(slots)}
}

// Slots returns the slot count (capacity is Slots()-1).
func (r *Ring) Slots() int { return int(r.slots) }

// Init zeroes the head and tail pointers; who pays the access cost.
func (r *Ring) Init(p *sim.Proc, who dpm.Accessor) {
	r.d.WriteWord(p, who, r.headOff(), 0)
	r.d.WriteWord(p, who, r.tailOff(), 0)
	r.wHead, r.wSeenTail, r.rTail, r.rSeenHead = 0, 0, 0, 0
}

func (r *Ring) headOff() uint32 { return r.base }
func (r *Ring) tailOff() uint32 { return r.base + 4 }
func (r *Ring) slotOff(i uint32) uint32 {
	return r.base + 4*ringHdrWords + 4*descWords*i
}

func (r *Ring) next(i uint32) uint32 { return (i + 1) % r.slots }

// TryPush appends d if the ring is not full, re-reading the tail pointer
// across the port only when the shadow indicates the ring might be full.
// It reports whether the descriptor was queued.
func (r *Ring) TryPush(p *sim.Proc, who dpm.Accessor, d Desc) bool {
	if r.next(r.wHead) == r.wSeenTail {
		r.wSeenTail = r.d.ReadWord(p, who, r.tailOff())
		if r.next(r.wHead) == r.wSeenTail {
			return false
		}
	}
	off := r.slotOff(r.wHead)
	r.d.WriteWord(p, who, off, uint32(d.Addr))
	r.d.WriteWord(p, who, off+4, d.Len)
	r.d.WriteWord(p, who, off+8, uint32(d.VCI)<<16|uint32(d.Flags))
	r.d.WriteWord(p, who, off+12, d.Aux)
	r.wHead = r.next(r.wHead)
	r.d.WriteWord(p, who, r.headOff(), r.wHead)
	return true
}

// TryPop removes the oldest descriptor if the ring is not empty,
// re-reading the head pointer only when the shadow indicates emptiness.
func (r *Ring) TryPop(p *sim.Proc, who dpm.Accessor) (Desc, bool) {
	if r.rTail == r.rSeenHead {
		r.rSeenHead = r.d.ReadWord(p, who, r.headOff())
		if r.rTail == r.rSeenHead {
			return Desc{}, false
		}
	}
	off := r.slotOff(r.rTail)
	var d Desc
	d.Addr = mem.PhysAddr(r.d.ReadWord(p, who, off))
	d.Len = r.d.ReadWord(p, who, off+4)
	vf := r.d.ReadWord(p, who, off+8)
	d.VCI = atm.VCI(vf >> 16)
	d.Flags = uint16(vf)
	d.Aux = r.d.ReadWord(p, who, off+12)
	r.rTail = r.next(r.rTail)
	r.d.WriteWord(p, who, r.tailOff(), r.rTail)
	return d, true
}

// WriterFull reports, from the writer's perspective, whether the ring is
// full, refreshing the tail shadow if needed.
func (r *Ring) WriterFull(p *sim.Proc, who dpm.Accessor) bool {
	if r.next(r.wHead) != r.wSeenTail {
		return false
	}
	r.wSeenTail = r.d.ReadWord(p, who, r.tailOff())
	return r.next(r.wHead) == r.wSeenTail
}

// ReaderEmpty reports, from the reader's perspective, whether the ring
// is empty, refreshing the head shadow if needed.
func (r *Ring) ReaderEmpty(p *sim.Proc, who dpm.Accessor) bool {
	if r.rTail != r.rSeenHead {
		return false
	}
	r.rSeenHead = r.d.ReadWord(p, who, r.headOff())
	return r.rTail == r.rSeenHead
}

// ReaderPeek returns the k-th descriptor from the tail without consuming
// it, refreshing the head shadow as needed. The OSIRIS transmit
// processor reads descriptors this way and only advances the tail once
// the buffers have actually been DMA'd, because the tail's advance is
// the host's transmit-completion signal (§2.1.2).
func (r *Ring) ReaderPeek(p *sim.Proc, who dpm.Accessor, k int) (Desc, bool) {
	avail := int((r.rSeenHead + r.slots - r.rTail) % r.slots)
	if k >= avail {
		r.rSeenHead = r.d.ReadWord(p, who, r.headOff())
		avail = int((r.rSeenHead + r.slots - r.rTail) % r.slots)
		if k >= avail {
			return Desc{}, false
		}
	}
	off := r.slotOff((r.rTail + uint32(k)) % r.slots)
	var d Desc
	d.Addr = mem.PhysAddr(r.d.ReadWord(p, who, off))
	d.Len = r.d.ReadWord(p, who, off+4)
	vf := r.d.ReadWord(p, who, off+8)
	d.VCI = atm.VCI(vf >> 16)
	d.Flags = uint16(vf)
	d.Aux = r.d.ReadWord(p, who, off+12)
	return d, true
}

// ReaderAdvance consumes n descriptors previously examined with
// ReaderPeek, publishing the new tail in one store.
func (r *Ring) ReaderAdvance(p *sim.Proc, who dpm.Accessor, n int) {
	avail := int((r.rSeenHead + r.slots - r.rTail) % r.slots)
	if n > avail {
		panic("queue: ReaderAdvance past head")
	}
	r.rTail = (r.rTail + uint32(n)) % r.slots
	r.d.WriteWord(p, who, r.tailOff(), r.rTail)
}

// ReaderLen returns the number of queued descriptors from the reader's
// perspective, refreshing the head shadow.
func (r *Ring) ReaderLen(p *sim.Proc, who dpm.Accessor) int {
	r.rSeenHead = r.d.ReadWord(p, who, r.headOff())
	return int((r.rSeenHead + r.slots - r.rTail) % r.slots)
}

// ObserveTail reads the tail pointer across the port; the transmit path
// uses the tail's advance — instead of an interrupt — to learn that the
// board consumed buffers (§2.1.2).
func (r *Ring) ObserveTail(p *sim.Proc, who dpm.Accessor) uint32 {
	t := r.d.ReadWord(p, who, r.tailOff())
	r.wSeenTail = t
	return t
}

// WriterLen returns the number of queued descriptors from the writer's
// shadow state (no bus traffic).
func (r *Ring) WriterLen() int {
	return int((r.wHead + r.slots - r.wSeenTail) % r.slots)
}

// HalfEmptyPoint returns the fill level at which the board asserts the
// "queue drained to half" interrupt after a full condition (§2.1.2).
func (r *Ring) HalfEmptyPoint() int { return int(r.slots) / 2 }

func (r *Ring) String() string {
	return fmt.Sprintf("ring@%#x[%d]", r.base, r.slots)
}
