package queue

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bus"
	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newRig() (*sim.Engine, *dpm.Memory) {
	e := sim.NewEngine(1)
	return e, dpm.New(e, bus.New(e, bus.Config{}))
}

func TestRingPushPopRoundTrip(t *testing.T) {
	e, d := newRig()
	r := NewRing(d, 0, 8)
	e.Go("host", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		want := Desc{Addr: 0x1000, Len: 44, VCI: 7, Flags: FlagEOP, Aux: 3}
		if !r.TryPush(p, dpm.Host, want) {
			t.Fatal("push failed")
		}
		got, ok := r.TryPop(p, dpm.Board)
		if !ok {
			t.Fatal("pop failed")
		}
		if got != want {
			t.Errorf("got %+v, want %+v", got, want)
		}
	})
	e.Run()
	e.Shutdown()
}

func TestRingEmptyAndFullConditions(t *testing.T) {
	e, d := newRig()
	r := NewRing(d, 0, 4) // capacity 3
	e.Go("p", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		if _, ok := r.TryPop(p, dpm.Board); ok {
			t.Error("pop from empty ring succeeded")
		}
		for i := 0; i < 3; i++ {
			if !r.TryPush(p, dpm.Host, Desc{Addr: mem.PhysAddr(i)}) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.TryPush(p, dpm.Host, Desc{}) {
			t.Error("push to full ring succeeded")
		}
		if !r.WriterFull(p, dpm.Host) {
			t.Error("WriterFull = false on full ring")
		}
		// Drain and confirm FIFO order.
		for i := 0; i < 3; i++ {
			got, ok := r.TryPop(p, dpm.Board)
			if !ok || got.Addr != mem.PhysAddr(i) {
				t.Fatalf("pop %d = %+v, %v", i, got, ok)
			}
		}
		if !r.ReaderEmpty(p, dpm.Board) {
			t.Error("ReaderEmpty = false on drained ring")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestRingWrapsAround(t *testing.T) {
	e, d := newRig()
	r := NewRing(d, 64, 4)
	e.Go("p", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		next := 0
		for round := 0; round < 10; round++ {
			for i := 0; i < 3; i++ {
				if !r.TryPush(p, dpm.Host, Desc{Aux: uint32(next + i)}) {
					t.Fatal("push failed")
				}
			}
			for i := 0; i < 3; i++ {
				got, ok := r.TryPop(p, dpm.Board)
				if !ok || got.Aux != uint32(next+i) {
					t.Fatalf("round %d pop %d = %+v", round, i, got)
				}
			}
			next += 3
		}
	})
	e.Run()
	e.Shutdown()
}

func TestShadowsMinimizePortTraffic(t *testing.T) {
	// The writer should not touch the tail pointer at all while the ring
	// has known space; §2.1's "minimizing load and store operations".
	e, d := newRig()
	r := NewRing(d, 0, 64)
	e.Go("host", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		d.ResetStats()
		for i := 0; i < 32; i++ {
			r.TryPush(p, dpm.Host, Desc{})
		}
		s := d.Stats()
		// 32 pushes × (4 descriptor words + head update) = 160 writes,
		// zero reads: tail shadow starts accurate.
		if s.HostWrites != 160 {
			t.Errorf("HostWrites = %d, want 160", s.HostWrites)
		}
		if s.HostReads != 0 {
			t.Errorf("HostReads = %d, want 0 (shadow must avoid tail reads)", s.HostReads)
		}
	})
	e.Run()
	e.Shutdown()
}

func TestConcurrentProducerConsumer(t *testing.T) {
	// Host pushes 200 descriptors while the board concurrently pops,
	// each at different rates; nothing may be lost, duplicated, or
	// reordered — with no lock anywhere (§2.1.1).
	e, d := newRig()
	r := NewRing(d, 128, 8)
	const n = 200
	var got []uint32
	e.Go("init", func(p *sim.Proc) { r.Init(p, dpm.Host) })
	e.Go("host", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		for i := 0; i < n; {
			if r.TryPush(p, dpm.Host, Desc{Aux: uint32(i)}) {
				i++
			} else {
				p.Sleep(500 * time.Nanosecond)
			}
		}
	})
	e.Go("board", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		for len(got) < n {
			if desc, ok := r.TryPop(p, dpm.Board); ok {
				got = append(got, desc.Aux)
				p.Sleep(300 * time.Nanosecond) // board processing time
			} else {
				p.Sleep(700 * time.Nanosecond)
			}
		}
	})
	e.Run()
	e.Shutdown()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("order violated at %d: %v...", i, got[:i+1])
		}
	}
}

func TestObserveTailForReclaim(t *testing.T) {
	e, d := newRig()
	r := NewRing(d, 0, 8)
	e.Go("p", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		for i := 0; i < 5; i++ {
			r.TryPush(p, dpm.Host, Desc{})
		}
		if r.WriterLen() != 5 {
			t.Errorf("WriterLen = %d, want 5", r.WriterLen())
		}
		for i := 0; i < 3; i++ {
			r.TryPop(p, dpm.Board)
		}
		// Writer hasn't observed the consumption yet.
		if got := r.ObserveTail(p, dpm.Host); got != 3 {
			t.Errorf("ObserveTail = %d, want 3", got)
		}
		if r.WriterLen() != 2 {
			t.Errorf("WriterLen after observe = %d, want 2", r.WriterLen())
		}
	})
	e.Run()
	e.Shutdown()
}

func TestHalfEmptyPoint(t *testing.T) {
	e, d := newRig()
	r := NewRing(d, 0, 64)
	if r.HalfEmptyPoint() != 32 {
		t.Errorf("HalfEmptyPoint = %d", r.HalfEmptyPoint())
	}
	_ = e
}

func TestBytesFor(t *testing.T) {
	if BytesFor(64) != 4*(2+64*4) {
		t.Errorf("BytesFor(64) = %d", BytesFor(64))
	}
}

func TestRingValidation(t *testing.T) {
	_, d := newRig()
	for _, fn := range []func(){
		func() { NewRing(d, 0, 1) },
		func() { NewRing(d, 2, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid ring construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRingString(t *testing.T) {
	_, d := newRig()
	r := NewRing(d, 0x40, 8)
	if r.String() != "ring@0x40[8]" {
		t.Errorf("String = %q", r.String())
	}
}

// Property: any interleaving of pushes and pops (driven by a random
// schedule) preserves FIFO semantics exactly, modelled against a slice.
func TestRingMatchesModelQuick(t *testing.T) {
	f := func(ops []bool) bool {
		e, d := newRig()
		r := NewRing(d, 0, 4)
		okAll := true
		e.Go("p", func(p *sim.Proc) {
			r.Init(p, dpm.Host)
			var model []uint32
			seq := uint32(0)
			for _, push := range ops {
				if push {
					pushed := r.TryPush(p, dpm.Host, Desc{Aux: seq})
					if pushed != (len(model) < 3) {
						okAll = false
						return
					}
					if pushed {
						model = append(model, seq)
					}
					seq++
				} else {
					got, ok := r.TryPop(p, dpm.Board)
					if ok != (len(model) > 0) {
						okAll = false
						return
					}
					if ok {
						if got.Aux != model[0] {
							okAll = false
							return
						}
						model = model[1:]
					}
				}
			}
		})
		e.Run()
		e.Shutdown()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
