package queue

import (
	"testing"
	"time"

	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestSpinRingRoundTrip(t *testing.T) {
	e, d := newRig()
	r := NewSpinRing(d, dpm.SendLock, 0, 8)
	e.Go("p", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		want := Desc{Addr: 0x2000, Len: 100, VCI: 3, Flags: FlagEOP, Aux: 9}
		if !r.TryPush(p, dpm.Host, want) {
			t.Fatal("push failed")
		}
		got, ok := r.TryPop(p, dpm.Board)
		if !ok || got != want {
			t.Errorf("got %+v ok=%v", got, ok)
		}
	})
	e.Run()
	e.Shutdown()
}

func TestSpinRingFullEmpty(t *testing.T) {
	e, d := newRig()
	r := NewSpinRing(d, dpm.SendLock, 0, 4)
	e.Go("p", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		if _, ok := r.TryPop(p, dpm.Board); ok {
			t.Error("pop from empty succeeded")
		}
		for i := 0; i < 3; i++ {
			if !r.TryPush(p, dpm.Host, Desc{Addr: mem.PhysAddr(i)}) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.TryPush(p, dpm.Host, Desc{}) {
			t.Error("push to full succeeded")
		}
		// The lock must be released after every operation.
		if d.LockHeld(dpm.SendLock) {
			t.Error("lock leaked")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestSpinRingIsSlowerThanLockFree(t *testing.T) {
	// The paper's §2.1.1 argument: under concurrent host/board access the
	// lock-free ring beats the spin-locked one in total time, because
	// the latter serializes dual-port accesses and burns retries.
	const n = 100
	runLockFree := func() sim.Time {
		e, d := newRig()
		r := NewRing(d, 0, 8)
		done := 0
		e.Go("init", func(p *sim.Proc) { r.Init(p, dpm.Host) })
		e.Go("host", func(p *sim.Proc) {
			p.Sleep(time.Microsecond)
			for i := 0; i < n; {
				if r.TryPush(p, dpm.Host, Desc{Aux: uint32(i)}) {
					i++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		e.Go("board", func(p *sim.Proc) {
			p.Sleep(time.Microsecond)
			for done < n {
				if _, ok := r.TryPop(p, dpm.Board); ok {
					done++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		end := e.Run()
		e.Shutdown()
		return end
	}
	runSpin := func() (sim.Time, int64) {
		e, d := newRig()
		r := NewSpinRing(d, dpm.SendLock, 0, 8)
		done := 0
		e.Go("init", func(p *sim.Proc) { r.Init(p, dpm.Host) })
		e.Go("host", func(p *sim.Proc) {
			p.Sleep(time.Microsecond)
			for i := 0; i < n; {
				if r.TryPush(p, dpm.Host, Desc{Aux: uint32(i)}) {
					i++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		e.Go("board", func(p *sim.Proc) {
			p.Sleep(time.Microsecond)
			for done < n {
				if _, ok := r.TryPop(p, dpm.Board); ok {
					done++
				} else {
					p.Sleep(200 * time.Nanosecond)
				}
			}
		})
		end := e.Run()
		e.Shutdown()
		return end, r.SpinRetries
	}
	lf := runLockFree()
	sp, _ := runSpin()
	if lf >= sp {
		t.Errorf("lock-free total %v not faster than spin-lock %v", time.Duration(lf), time.Duration(sp))
	}
}

func TestSpinRingValidation(t *testing.T) {
	_, d := newRig()
	defer func() {
		if recover() == nil {
			t.Error("slots<2 did not panic")
		}
	}()
	NewSpinRing(d, dpm.SendLock, 0, 1)
}
