package queue

import (
	"time"

	"repro/internal/atm"
	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// SpinRing is the ablation baseline: the same descriptor FIFO protected
// by a spin lock built on the board's test-and-set register, the design
// the paper rejects because "both packet delivery latency and CPU load
// can suffer due to lock contention" (§2.1.1). Every operation acquires
// the lock, reads both pointers from the dual-port memory, and releases
// the lock — no shadow copies are possible because either side may
// modify shared state under the lock.
type SpinRing struct {
	d     *dpm.Memory
	reg   dpm.Register
	base  uint32
	slots uint32
	// Stats.
	SpinRetries int64 // failed test-and-set attempts
}

// SpinRetryDelay is how long a loser backs off before retrying the
// test-and-set register.
const SpinRetryDelay = 200 * time.Nanosecond

// NewSpinRing lays a lock-protected ring over d at byte offset base,
// guarded by register reg.
func NewSpinRing(d *dpm.Memory, reg dpm.Register, base uint32, slots int) *SpinRing {
	if slots < 2 {
		panic("queue: ring needs at least 2 slots")
	}
	return &SpinRing{d: d, reg: reg, base: base, slots: uint32(slots)}
}

// Init zeroes head and tail.
func (r *SpinRing) Init(p *sim.Proc, who dpm.Accessor) {
	r.d.WriteWord(p, who, r.base, 0)
	r.d.WriteWord(p, who, r.base+4, 0)
}

func (r *SpinRing) lock(p *sim.Proc, who dpm.Accessor) {
	for r.d.TestAndSet(p, who, r.reg) {
		r.SpinRetries++
		p.Sleep(SpinRetryDelay)
	}
}

func (r *SpinRing) unlock(p *sim.Proc, who dpm.Accessor) {
	r.d.ClearLock(p, who, r.reg)
}

func (r *SpinRing) next(i uint32) uint32 { return (i + 1) % r.slots }

func (r *SpinRing) slotOff(i uint32) uint32 { return r.base + 8 + 16*i }

// TryPush appends d under the lock, reporting success.
func (r *SpinRing) TryPush(p *sim.Proc, who dpm.Accessor, d Desc) bool {
	r.lock(p, who)
	defer r.unlock(p, who)
	head := r.d.ReadWord(p, who, r.base)
	tail := r.d.ReadWord(p, who, r.base+4)
	if r.next(head) == tail {
		return false
	}
	off := r.slotOff(head)
	r.d.WriteWord(p, who, off, uint32(d.Addr))
	r.d.WriteWord(p, who, off+4, d.Len)
	r.d.WriteWord(p, who, off+8, uint32(d.VCI)<<16|uint32(d.Flags))
	r.d.WriteWord(p, who, off+12, d.Aux)
	r.d.WriteWord(p, who, r.base, r.next(head))
	return true
}

// TryPop removes the oldest descriptor under the lock.
func (r *SpinRing) TryPop(p *sim.Proc, who dpm.Accessor) (Desc, bool) {
	r.lock(p, who)
	defer r.unlock(p, who)
	head := r.d.ReadWord(p, who, r.base)
	tail := r.d.ReadWord(p, who, r.base+4)
	if head == tail {
		return Desc{}, false
	}
	off := r.slotOff(tail)
	var d Desc
	d.Addr = mem.PhysAddr(r.d.ReadWord(p, who, off))
	d.Len = r.d.ReadWord(p, who, off+4)
	vf := r.d.ReadWord(p, who, off+8)
	d.VCI = atm.VCI(vf >> 16)
	d.Flags = uint16(vf)
	d.Aux = r.d.ReadWord(p, who, off+12)
	r.d.WriteWord(p, who, r.base+4, r.next(tail))
	return d, true
}
