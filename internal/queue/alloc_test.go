package queue

import (
	"runtime"
	"testing"

	"repro/internal/dpm"
	"repro/internal/sim"
)

// Ring push/pop rides the simulated bus (timed port accesses), so its
// allocation behavior depends on the event core: with pooled events a
// warm steady state must be allocation-free.
func TestRingPushPopSteadyStateAllocs(t *testing.T) {
	e, d := newRig()
	defer e.Shutdown()
	r := NewRing(d, 0, 8)
	var allocs uint64
	e.Go("host", func(p *sim.Proc) {
		r.Init(p, dpm.Host)
		d := Desc{Addr: 0x1000, Len: 44}
		for i := 0; i < 16; i++ { // warm the event pool
			r.TryPush(p, dpm.Host, d)
			r.TryPop(p, dpm.Board)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		const ops = 1000
		for i := 0; i < ops; i++ {
			if !r.TryPush(p, dpm.Host, d) {
				t.Error("push failed")
				return
			}
			if _, ok := r.TryPop(p, dpm.Board); !ok {
				t.Error("pop failed")
				return
			}
		}
		runtime.ReadMemStats(&after)
		allocs = after.Mallocs - before.Mallocs
	})
	e.Run()
	if allocs > 16 {
		t.Errorf("%d push/pop pairs allocated %d objects, want ≤ 16", 1000, allocs)
	}
}
