// Package dpm models the OSIRIS board's 128 KB dual-port memory.
//
// From the host's perspective the adaptor looks like a 128 KB region of
// memory reached across the TURBOchannel, so every host access is priced
// as programmed I/O on the bus — the reason the paper's §2.1 goals
// include "minimizing the number of load and store operations required
// to communicate". On-board processor accesses are local and cheap.
//
// The memory guarantees atomicity of individual 32-bit loads and stores
// only; each half of the board additionally provides a test-and-set
// register usable as a spin lock (§2.1.1). The transmit half is divided
// into sixteen 4 KB pages, each holding a separate transmit queue, and
// the receive half likewise (one free-buffer/receive queue pair per
// page) — the partitioning application device channels rely on (§3.2).
package dpm

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/sim"
)

const (
	// Size is the total dual-port memory size.
	Size = 128 * 1024
	// HalfSize is the size of each of the transmit and receive halves.
	HalfSize = Size / 2
	// PageSize is the size of one queue page.
	PageSize = 4096
	// PagesPerHalf is the number of queue pages in each half.
	PagesPerHalf = HalfSize / PageSize
	// BoardAccessTime prices one on-board processor access to the
	// dual-port memory.
	BoardAccessTime = 40 * time.Nanosecond
)

// Accessor identifies which side of the dual-port memory is accessing
// it, which determines the access cost.
type Accessor int

const (
	// Host accesses cross the TURBOchannel (expensive PIO).
	Host Accessor = iota
	// Board accesses are local to the adaptor.
	Board
)

func (a Accessor) String() string {
	if a == Host {
		return "host"
	}
	return "board"
}

// Register identifies one of the two test-and-set registers.
type Register int

const (
	// SendLock is the transmit half's test-and-set register.
	SendLock Register = iota
	// RecvLock is the receive half's test-and-set register.
	RecvLock
)

// Stats counts dual-port memory accesses by side.
type Stats struct {
	HostReads   int64
	HostWrites  int64
	BoardReads  int64
	BoardWrites int64
}

// Memory is one board's dual-port memory.
type Memory struct {
	eng   *sim.Engine
	bus   *bus.Bus
	data  []byte
	locks [2]bool
	stats Stats
}

// New returns a dual-port memory whose host-side accesses are priced on b.
func New(e *sim.Engine, b *bus.Bus) *Memory {
	return &Memory{eng: e, bus: b, data: make([]byte, Size)}
}

// TxPageOff returns the offset of transmit queue page i.
func TxPageOff(i int) uint32 {
	if i < 0 || i >= PagesPerHalf {
		panic(fmt.Sprintf("dpm: tx page %d out of range", i))
	}
	return uint32(i * PageSize)
}

// RxPageOff returns the offset of receive queue page i.
func RxPageOff(i int) uint32 {
	if i < 0 || i >= PagesPerHalf {
		panic(fmt.Sprintf("dpm: rx page %d out of range", i))
	}
	return uint32(HalfSize + i*PageSize)
}

func (m *Memory) charge(p *sim.Proc, who Accessor, write bool) {
	switch who {
	case Host:
		if write {
			m.stats.HostWrites++
			m.bus.PIOWrite(p, 1)
		} else {
			m.stats.HostReads++
			m.bus.PIORead(p, 1)
		}
	case Board:
		if write {
			m.stats.BoardWrites++
		} else {
			m.stats.BoardReads++
		}
		p.Sleep(BoardAccessTime)
	}
}

func (m *Memory) checkWord(off uint32) {
	if off%4 != 0 {
		panic(fmt.Sprintf("dpm: unaligned word access at %#x", off))
	}
	if int(off)+4 > len(m.data) {
		panic(fmt.Sprintf("dpm: access at %#x beyond %d", off, len(m.data)))
	}
}

// ReadWord performs an atomic 32-bit load at byte offset off, charging
// the accessor's cost to p.
func (m *Memory) ReadWord(p *sim.Proc, who Accessor, off uint32) uint32 {
	m.checkWord(off)
	m.charge(p, who, false)
	d := m.data[off : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

// WriteWord performs an atomic 32-bit store at byte offset off.
func (m *Memory) WriteWord(p *sim.Proc, who Accessor, off uint32, v uint32) {
	m.checkWord(off)
	m.charge(p, who, true)
	m.data[off] = byte(v)
	m.data[off+1] = byte(v >> 8)
	m.data[off+2] = byte(v >> 16)
	m.data[off+3] = byte(v >> 24)
}

// TestAndSet atomically sets register r and returns its previous value.
// A return of false means the caller acquired the lock.
func (m *Memory) TestAndSet(p *sim.Proc, who Accessor, r Register) bool {
	m.charge(p, who, true)
	prev := m.locks[r]
	m.locks[r] = true
	return prev
}

// ClearLock releases register r.
func (m *Memory) ClearLock(p *sim.Proc, who Accessor, r Register) {
	m.charge(p, who, true)
	m.locks[r] = false
}

// LockHeld reports whether register r is currently set (for tests).
func (m *Memory) LockHeld(r Register) bool { return m.locks[r] }

// Stats returns a copy of the access counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() { m.stats = Stats{} }
