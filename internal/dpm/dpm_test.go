package dpm

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

func newDPM() (*sim.Engine, *Memory) {
	e := sim.NewEngine(1)
	return e, New(e, bus.New(e, bus.Config{}))
}

func TestWordRoundTrip(t *testing.T) {
	e, d := newDPM()
	e.Go("host", func(p *sim.Proc) {
		d.WriteWord(p, Host, 0x100, 0xCAFEBABE)
		if got := d.ReadWord(p, Board, 0x100); got != 0xCAFEBABE {
			t.Errorf("board read %#x", got)
		}
		d.WriteWord(p, Board, 0x104, 7)
		if got := d.ReadWord(p, Host, 0x104); got != 7 {
			t.Errorf("host read %d", got)
		}
	})
	e.Run()
	e.Shutdown()
}

func TestHostAccessCostsMoreThanBoard(t *testing.T) {
	e, d := newDPM()
	var hostCost, boardCost sim.Time
	e.Go("p", func(p *sim.Proc) {
		t0 := p.Now()
		d.ReadWord(p, Host, 0)
		hostCost = p.Now() - t0
		t0 = p.Now()
		d.ReadWord(p, Board, 0)
		boardCost = p.Now() - t0
	})
	e.Run()
	e.Shutdown()
	if hostCost <= boardCost {
		t.Errorf("host access %v not slower than board %v", hostCost, boardCost)
	}
}

func TestTestAndSet(t *testing.T) {
	e, d := newDPM()
	e.Go("p", func(p *sim.Proc) {
		if d.TestAndSet(p, Host, SendLock) {
			t.Error("first TAS returned held")
		}
		if !d.TestAndSet(p, Board, SendLock) {
			t.Error("second TAS did not see the lock held")
		}
		if d.TestAndSet(p, Host, RecvLock) {
			t.Error("locks not independent")
		}
		d.ClearLock(p, Host, SendLock)
		if d.TestAndSet(p, Board, SendLock) {
			t.Error("TAS after clear returned held")
		}
	})
	e.Run()
	e.Shutdown()
	if !d.LockHeld(SendLock) || !d.LockHeld(RecvLock) {
		t.Error("final lock state wrong")
	}
}

func TestPageOffsets(t *testing.T) {
	if TxPageOff(0) != 0 || TxPageOff(15) != 15*4096 {
		t.Error("TxPageOff wrong")
	}
	if RxPageOff(0) != 64*1024 || RxPageOff(15) != 64*1024+15*4096 {
		t.Error("RxPageOff wrong")
	}
	for _, fn := range []func(){func() { TxPageOff(16) }, func() { RxPageOff(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range page did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestUnalignedAndOOBPanic(t *testing.T) {
	e, d := newDPM()
	e.Go("p", func(p *sim.Proc) {
		for _, fn := range []func(){
			func() { d.ReadWord(p, Board, 2) },
			func() { d.WriteWord(p, Board, Size, 0) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("bad access did not panic")
					}
				}()
				fn()
			}()
		}
	})
	e.Run()
	e.Shutdown()
}

func TestStatsBySide(t *testing.T) {
	e, d := newDPM()
	e.Go("p", func(p *sim.Proc) {
		d.ReadWord(p, Host, 0)
		d.WriteWord(p, Host, 0, 1)
		d.WriteWord(p, Host, 4, 1)
		d.ReadWord(p, Board, 0)
	})
	e.Run()
	e.Shutdown()
	s := d.Stats()
	if s.HostReads != 1 || s.HostWrites != 2 || s.BoardReads != 1 || s.BoardWrites != 0 {
		t.Errorf("stats = %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats incomplete")
	}
}

func TestAccessorString(t *testing.T) {
	if Host.String() != "host" || Board.String() != "board" {
		t.Error("Accessor strings wrong")
	}
}
