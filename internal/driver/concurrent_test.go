package driver

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
)

func TestConcurrentSendersShareDriver(t *testing.T) {
	// Several host threads sending through one driver concurrently: the
	// driver's internal serialization must keep the (strictly 1R1W)
	// rings coherent, and every message must arrive intact.
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	const senders = 4
	const perSender = 6
	type rx struct {
		count int
		ok    bool
	}
	results := make(map[byte]*rx)
	for s := byte(0); s < senders; s++ {
		results[s] = &rx{ok: true}
	}
	// One path per sender (one VCI per connection, §3.1).
	for s := byte(0); s < senders; s++ {
		seed := s
		pr.dB.OpenPath(10+atm.VCI(seed), func(p *sim.Proc, m *msg.Message) {
			b, _ := m.Bytes()
			r := results[seed]
			r.count++
			if !bytes.Equal(b, pattern(2000, seed)) {
				r.ok = false
			}
		})
	}
	for s := byte(0); s < senders; s++ {
		seed := s
		pt := pr.dA.OpenPath(10+atm.VCI(seed), nil)
		pr.eng.Go("sender", func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				m, err := msg.FromBytes(pr.hA.Kernel, pattern(2000, seed))
				if err != nil {
					t.Error(err)
					return
				}
				if err := pr.dA.Send(p, pt, m, nil); err != nil {
					t.Error(err)
					return
				}
				p.Sleep(time.Duration(seed+1) * 7 * time.Microsecond)
			}
			pr.dA.Flush(p)
		})
	}
	pr.eng.Run()
	pr.eng.Shutdown()
	for s := byte(0); s < senders; s++ {
		r := results[s]
		if r.count != perSender {
			t.Errorf("sender %d: delivered %d/%d", s, r.count, perSender)
		}
		if !r.ok {
			t.Errorf("sender %d: corruption", s)
		}
	}
}

func TestRetainOutsideHandlerPanics(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	defer func() {
		if recover() == nil {
			t.Error("Retain outside a delivering handler did not panic")
		}
	}()
	m := msg.New()
	pr.dB.Retain(m)
}

func TestReleaseUnretainedPanics(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	defer func() {
		if recover() == nil {
			t.Error("Release of unretained message did not panic")
		}
	}()
	pr.dB.Release(nil, msg.New())
}

func TestRetainedBuffersSurviveNextDelivery(t *testing.T) {
	// A retained message's bytes must remain intact while later PDUs are
	// delivered, and the pool must recover after Release.
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone, RxBufCount: 4, ReserveBufs: 2})
	var retained *msg.Message
	var want []byte
	deliveries := 0
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
		deliveries++
		if deliveries == 1 {
			pr.dB.Retain(m)
			retained = m
			want, _ = m.Bytes()
			return
		}
		if retained != nil {
			got, _ := retained.Bytes()
			if !bytes.Equal(got, want) {
				t.Error("retained message mutated by later deliveries")
			}
			pr.dB.Release(p, retained)
			retained = nil
		}
	})
	ptA := pr.dA.OpenPath(10, nil)
	pr.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			m, _ := msg.FromBytes(pr.hA.Kernel, pattern(3000, byte(i)))
			pr.dA.Send(p, ptA, m, nil)
			pr.dA.Flush(p)
			p.Sleep(100 * time.Microsecond)
		}
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if deliveries != 6 {
		t.Errorf("deliveries = %d/6 (pool starved?)", deliveries)
	}
}

func TestSlowWiringCostsMore(t *testing.T) {
	run := func(slow bool) sim.Time {
		pr := newPair(t, hostsim.DEC5000_200, board.Config{}, Config{Cache: CacheLazy, SlowWiring: slow})
		done := false
		pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) { done = true })
		ptA := pr.dA.OpenPath(10, nil)
		var sent sim.Time
		pr.eng.Go("sender", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond) // init settles (wiring of rx pools differs too)
			m, _ := msg.FromBytes(pr.hA.Kernel, pattern(4*4096, 1))
			start := p.Now()
			pr.dA.Send(p, ptA, m, nil)
			sent = p.Now() - start
			pr.dA.Flush(p)
		})
		pr.eng.Run()
		pr.eng.Shutdown()
		if !done {
			t.Fatal("message lost")
		}
		return sent
	}
	fast := run(false)
	slow := run(true)
	if slow <= fast {
		t.Errorf("slow wiring (%v) not costlier than fast (%v)", slow, fast)
	}
}
