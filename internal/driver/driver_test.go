package driver

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
)

// pair is a two-host testbed: A transmits to B over striped links.
type pair struct {
	eng    *sim.Engine
	hA, hB *hostsim.Host
	bA, bB *board.Board
	dA, dB *Driver
}

func newPair(t *testing.T, prof func() hostsim.Profile, bcfg board.Config, dcfg Config) *pair {
	t.Helper()
	e := sim.NewEngine(1)
	hA := hostsim.New(e, prof(), 4096)
	hB := hostsim.New(e, prof(), 4096)
	ca, cb := bcfg, bcfg
	ca.Name, cb.Name = "A", "B"
	bA := board.New(e, hA, ca)
	bB := board.New(e, hB, cb)
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	ba := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	linksOf := func(g *atm.StripeGroup) []*atm.Link {
		ls := make([]*atm.Link, g.Width())
		for i := range ls {
			ls[i] = g.Link(i)
		}
		return ls
	}
	bA.AttachTxLinks(linksOf(ab))
	bB.AttachRxLinks(ab)
	bB.AttachTxLinks(linksOf(ba))
	bA.AttachRxLinks(ba)
	dA := New(e, hA, bA, dcfg)
	dB := New(e, hB, bB, dcfg)
	return &pair{eng: e, hA: hA, hB: hB, bA: bA, bB: bB, dA: dA, dB: dB}
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*5 + seed
	}
	return out
}

func TestSendReceiveOnePDU(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	var got []byte
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
		b, err := m.Bytes()
		if err != nil {
			t.Error(err)
		}
		got = b
	})
	ptA := pr.dA.OpenPath(10, nil)
	data := pattern(3000, 1)
	pr.eng.Go("sender", func(p *sim.Proc) {
		m, err := msg.FromBytes(pr.hA.Kernel, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.dA.Send(p, ptA, m, nil); err != nil {
			t.Error(err)
		}
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatalf("got %d bytes, want %d intact", len(got), len(data))
	}
	if pr.dA.Stats().TxPDUs != 1 || pr.dB.Stats().RxPDUs != 1 {
		t.Errorf("stats: tx=%+v rx=%+v", pr.dA.Stats(), pr.dB.Stats())
	}
}

func TestPingPongManyMessages(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	const rounds = 10
	done := sim.NewCond(pr.eng)
	var count int
	// B echoes back on its own path.
	var ptB *Path
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
		data, _ := m.Bytes()
		reply, err := msg.FromBytes(pr.hB.Kernel, data)
		if err != nil {
			t.Error(err)
			return
		}
		pr.dB.Send(p, ptB, reply, nil)
	})
	ptB = pr.dB.OpenPath(11, nil)
	var ptA *Path
	var rtts []time.Duration
	pr.eng.Go("pinger", func(p *sim.Proc) {
		data := pattern(1024, 2)
		replied := sim.NewCond(pr.eng)
		gotReply := false
		pr.dA.OpenPath(11, func(hp *sim.Proc, m *msg.Message) {
			b, _ := m.Bytes()
			if !bytes.Equal(b, data) {
				t.Error("echo corrupted")
			}
			gotReply = true
			replied.Broadcast()
		})
		ptA = pr.dA.OpenPath(10, nil)
		for i := 0; i < rounds; i++ {
			start := p.Now()
			m, err := msg.FromBytes(pr.hA.Kernel, data)
			if err != nil {
				t.Fatal(err)
			}
			gotReply = false
			if err := pr.dA.Send(p, ptA, m, nil); err != nil {
				t.Fatal(err)
			}
			for !gotReply {
				replied.Wait(p)
			}
			rtts = append(rtts, time.Duration(p.Now()-start))
			count++
		}
		done.Broadcast()
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if count != rounds {
		t.Fatalf("completed %d rounds", count)
	}
	// Steady-state RTTs must be identical (deterministic sim) and sane.
	for _, rtt := range rtts[1:] {
		if rtt <= 0 || rtt > 5*time.Millisecond {
			t.Errorf("suspicious RTT %v", rtt)
		}
	}
}

func TestTransmitCompletionUnwiresPages(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {})
	ptA := pr.dA.OpenPath(10, nil)
	data := pattern(8192, 3)
	completed := false
	pr.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(pr.hA.Kernel, data)
		frag := m.Fragments()[0]
		fr, _ := frag.Space.Mapped(frag.Space.VPN(frag.VA))
		pr.dA.Send(p, ptA, m, func(p *sim.Proc) { completed = true })
		if !pr.hA.Mem.Wired(fr) {
			t.Error("pages not wired during transmit")
		}
		pr.dA.Flush(p)
		if pr.hA.Mem.Wired(fr) {
			t.Error("pages still wired after completion")
		}
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if !completed {
		t.Error("completion callback never ran")
	}
}

func TestMultiBufferPDUCounts(t *testing.T) {
	// A fragmented message (header + scattered body pages) must produce
	// one descriptor per physical buffer (§2.2).
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	var got []byte
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) { got, _ = m.Bytes() })
	ptA := pr.dA.OpenPath(10, nil)
	data := pattern(3*4096, 4)
	pr.eng.Go("sender", func(p *sim.Proc) {
		body, _ := msg.FromBytes(pr.hA.Kernel, data[28:])
		hdrVA, _ := pr.hA.Kernel.Alloc(28)
		pr.hA.Kernel.WriteVirt(hdrVA, data[:28])
		m := body.Prepend(msg.Fragment{Space: pr.hA.Kernel, VA: hdrVA, Len: 28})
		segs, _ := m.PhysSegments()
		if len(segs) < 3 {
			t.Errorf("segments = %d, want several (scattered pages)", len(segs))
		}
		pr.dA.Send(p, ptA, m, nil)
		pr.dA.Flush(p)
		if pr.dA.Stats().TxBuffers != int64(len(segs)) {
			t.Errorf("TxBuffers = %d, want %d", pr.dA.Stats().TxBuffers, len(segs))
		}
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Error("fragmented PDU corrupted")
	}
}

func TestBackToBackThroughputReachesLinkRegion(t *testing.T) {
	// Blast PDUs; the achieved rate must be in a plausible band (above
	// 100 Mbps, below the 515 Mbps link payload bandwidth).
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	received := 0
	var lastArrival sim.Time
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
		received++
		lastArrival = p.Now()
	})
	ptA := pr.dA.OpenPath(10, nil)
	const n = 12
	const size = 16384
	data := pattern(size, 5)
	pr.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, err := msg.FromBytes(pr.hA.Kernel, data)
			if err != nil {
				t.Fatal(err)
			}
			va := m.Fragments()[0].VA
			sp := m.Fragments()[0].Space
			if err := pr.dA.Send(p, ptA, m, func(p *sim.Proc) { sp.Free(va, size) }); err != nil {
				t.Fatal(err)
			}
		}
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if received != n {
		t.Fatalf("received %d/%d", received, n)
	}
	mbps := float64(n*size*8) / lastArrival.Seconds() / 1e6
	if mbps < 100 || mbps > 516 {
		t.Errorf("throughput %.1f Mbps outside plausible band", mbps)
	}
}

func TestLazyCachePolicyAvoidsInvalidationCost(t *testing.T) {
	// On the DECstation profile, eager invalidation must make per-PDU
	// receive latency measurably higher than lazy (≈164 µs for a 16 KB
	// PDU at one cycle per word, §2.3). PDUs are paced well apart so the
	// comparison is not confounded by queueing.
	run := func(policy CachePolicy) time.Duration {
		pr := newPair(t, hostsim.DEC5000_200, board.Config{}, Config{Cache: policy})
		var total time.Duration
		received := 0
		var sentAt sim.Time
		pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
			received++
			total += time.Duration(p.Now() - sentAt)
		})
		ptA := pr.dA.OpenPath(10, nil)
		data := pattern(16384, 6)
		pr.eng.Go("sender", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				m, _ := msg.FromBytes(pr.hA.Kernel, data)
				sentAt = p.Now()
				pr.dA.Send(p, ptA, m, nil)
				pr.dA.Flush(p)
				p.Sleep(2 * time.Millisecond)
			}
		})
		pr.eng.Run()
		pr.eng.Shutdown()
		if received != 5 {
			t.Fatalf("received %d", received)
		}
		return total / 5
	}
	lazy := run(CacheLazy)
	eager := run(CacheEager)
	if eager <= lazy {
		t.Errorf("eager (%v) not slower than lazy (%v)", eager, lazy)
	}
	// The delta should be in the vicinity of the 4096-word invalidation.
	if delta := eager - lazy; delta < 100*time.Microsecond {
		t.Errorf("eager-lazy delta %v implausibly small", delta)
	}
}

func TestRecoverDataInvalidatesAndEnablesFreshRead(t *testing.T) {
	pr := newPair(t, hostsim.DEC5000_200, board.Config{}, Config{Cache: CacheLazy})
	var sawStale, sawFresh bool
	data := pattern(2048, 7)
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
		segs, _ := m.PhysSegments()
		// Force staleness: pre-read the buffer region through the cache
		// before this PDU's bytes "arrived"... too late here; instead
		// check that RecoverData invalidates whatever is cached.
		first := pr.hB.CPUReadData(p, segs)
		if !pr.dB.RecoverData(p, m) {
			t.Error("RecoverData refused under lazy policy")
		}
		second := pr.hB.CPUReadData(p, segs)
		sawStale = !bytes.Equal(first, data)
		sawFresh = bytes.Equal(second, data)
	})
	ptA := pr.dA.OpenPath(10, nil)
	pr.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(pr.hA.Kernel, data)
		pr.dA.Send(p, ptA, m, nil)
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if !sawFresh {
		t.Error("post-recovery read still wrong")
	}
	_ = sawStale // staleness on first read is possible but not guaranteed
	if pr.dB.Stats().Recoveries != 1 {
		t.Errorf("Recoveries = %d", pr.dB.Stats().Recoveries)
	}
}

func TestRecoverDataRefusedWhenNotLazy(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	pr.eng.Go("x", func(p *sim.Proc) {
		m, _ := msg.FromBytes(pr.hB.Kernel, pattern(100, 8))
		if pr.dB.RecoverData(p, m) {
			t.Error("RecoverData succeeded under CacheNone")
		}
	})
	pr.eng.Run()
	pr.eng.Shutdown()
}

func TestInterruptsPerBurstBelowOnePerPDU(t *testing.T) {
	// §2.1.2: when PDUs arrive while the host is still busy with earlier
	// ones, the receive queue never drains and no further interrupts are
	// asserted — far fewer than one per PDU. The receiving application
	// here spends 300 µs per message, so arrivals (every ~55 µs) pile up.
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	received := 0
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {
		received++
		pr.hB.Compute(p, 300*time.Microsecond) // slow application
	})
	ptA := pr.dA.OpenPath(10, nil)
	const n = 30
	data := pattern(2048, 9)
	pr.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(pr.hA.Kernel, data)
			va, sp := m.Fragments()[0].VA, m.Fragments()[0].Space
			pr.dA.Send(p, ptA, m, func(p *sim.Proc) { sp.Free(va, 2048) })
		}
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if received != n {
		t.Fatalf("received %d/%d", received, n)
	}
	irqs := pr.hB.Int.Count(board.RxIRQBase)
	if irqs >= n/2 {
		t.Errorf("receive interrupts = %d for %d PDUs; want far fewer", irqs, n)
	}
	if irqs == 0 {
		t.Error("no interrupts at all?")
	}
}

func TestTxStallAndNotifyProtocol(t *testing.T) {
	// Queue far more PDUs than the transmit ring holds with a slow
	// consumer; the driver must stall on the full ring, use the notify
	// protocol, and still deliver everything.
	pr := newPair(t, hostsim.DEC3000_600, board.Config{TxRingSlots: 8}, Config{Cache: CacheNone})
	received := 0
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) { received++ })
	ptA := pr.dA.OpenPath(10, nil)
	const n = 40
	data := pattern(2048, 10)
	pr.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(pr.hA.Kernel, data)
			va, sp := m.Fragments()[0].VA, m.Fragments()[0].Space
			pr.dA.Send(p, ptA, m, func(p *sim.Proc) { sp.Free(va, 2048) })
		}
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if received != n {
		t.Fatalf("received %d/%d", received, n)
	}
	if pr.dA.Stats().TxStalls == 0 {
		t.Error("no tx stalls despite tiny ring")
	}
}

func TestPagedRxBufsIncreaseDescriptors(t *testing.T) {
	// §2.2 receive side: page-sized receive buffers fragment every PDU
	// larger than a page.
	run := func(paged bool) int64 {
		pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone, PagedRxBufs: paged})
		got := 0
		pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) { got++ })
		ptA := pr.dA.OpenPath(10, nil)
		data := pattern(16000, 11)
		pr.eng.Go("sender", func(p *sim.Proc) {
			m, _ := msg.FromBytes(pr.hA.Kernel, data)
			pr.dA.Send(p, ptA, m, nil)
			pr.dA.Flush(p)
		})
		pr.eng.Run()
		pr.eng.Shutdown()
		if got != 1 {
			t.Fatalf("paged=%v received %d", paged, got)
		}
		return pr.dB.Stats().RxBuffers
	}
	whole := run(false)
	paged := run(true)
	if whole != 1 {
		t.Errorf("16KB buffers: RxBuffers = %d, want 1", whole)
	}
	if paged != 4 {
		t.Errorf("page buffers: RxBuffers = %d, want 4", paged)
	}
}

func TestCachePolicyString(t *testing.T) {
	if CacheEager.String() != "eager" || CacheLazy.String() != "lazy" || CacheNone.String() != "none" {
		t.Error("CachePolicy strings wrong")
	}
}
