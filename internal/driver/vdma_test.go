package driver

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
)

func TestVirtualDMADeliversIntact(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone, VirtualDMA: true})
	var got []byte
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) { got, _ = m.Bytes() })
	ptA := pr.dA.OpenPath(10, nil)
	data := pattern(3*4096, 12)
	pr.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(pr.hA.Kernel, data)
		if err := pr.dA.Send(p, ptA, m, nil); err != nil {
			t.Error(err)
		}
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatal("virtual-DMA PDU corrupted")
	}
	if pr.dA.Stats().SGMapEntries != 3 {
		t.Errorf("SGMapEntries = %d, want 3 (one per page)", pr.dA.Stats().SGMapEntries)
	}
}

func TestVirtualDMACostTradeoff(t *testing.T) {
	// §2.2's closing point: virtual-address DMA trades per-buffer driver
	// work for per-page map updates, so fragmentation remains a cost
	// either way. Verify both configurations charge measurably for a
	// scattered multi-page message, and that the map entries scale with
	// pages, not with physical fragments.
	sendCost := func(vdma bool) (time.Duration, int64) {
		pr := newPair(t, hostsim.DEC5000_200, board.Config{}, Config{Cache: CacheLazy, VirtualDMA: vdma})
		pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) {})
		ptA := pr.dA.OpenPath(10, nil)
		var cost time.Duration
		pr.eng.Go("sender", func(p *sim.Proc) {
			p.Sleep(time.Millisecond) // let init settle
			m, _ := msg.FromBytes(pr.hA.Kernel, pattern(4*4096, 13))
			start := p.Now()
			pr.dA.Send(p, ptA, m, nil)
			cost = time.Duration(p.Now() - start)
			pr.dA.Flush(p)
		})
		pr.eng.Run()
		pr.eng.Shutdown()
		return cost, pr.dA.Stats().SGMapEntries
	}
	normal, entries0 := sendCost(false)
	vdma, entries1 := sendCost(true)
	if entries0 != 0 {
		t.Errorf("normal mode installed %d map entries", entries0)
	}
	if entries1 != 4 {
		t.Errorf("vdma mode installed %d entries, want 4", entries1)
	}
	if normal <= 0 || vdma <= 0 {
		t.Fatal("zero send cost")
	}
	// Neither dominates by an order of magnitude: fragmentation costs
	// survive the scatter/gather map.
	ratio := float64(vdma) / float64(normal)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("vdma/normal cost ratio %.2f outside the comparable band", ratio)
	}
}

func TestContiguousMessageReducesDescriptors(t *testing.T) {
	pr := newPair(t, hostsim.DEC3000_600, board.Config{}, Config{Cache: CacheNone})
	got := 0
	pr.dB.OpenPath(10, func(p *sim.Proc, m *msg.Message) { got++ })
	ptA := pr.dA.OpenPath(10, nil)
	data := pattern(4*4096, 14)
	var scattered, contiguous int
	pr.eng.Go("sender", func(p *sim.Proc) {
		m1, _ := msg.FromBytes(pr.hA.Kernel, data)
		segs1, _ := m1.PhysSegments()
		scattered = len(segs1)
		pr.dA.Send(p, ptA, m1, nil)
		pr.dA.Flush(p)

		m2, ok, err := msg.FromBytesContiguous(pr.hA.Kernel, data)
		if err != nil || !ok {
			t.Errorf("contiguous allocation failed: ok=%v err=%v", ok, err)
			return
		}
		segs2, _ := m2.PhysSegments()
		contiguous = len(segs2)
		pr.dA.Send(p, ptA, m2, nil)
		pr.dA.Flush(p)
	})
	pr.eng.Run()
	pr.eng.Shutdown()
	if got != 2 {
		t.Fatalf("delivered %d/2", got)
	}
	if contiguous != 1 {
		t.Errorf("contiguous message has %d segments, want 1", contiguous)
	}
	if scattered <= contiguous {
		t.Errorf("scattered (%d) not worse than contiguous (%d)", scattered, contiguous)
	}
}
