// Package driver implements the OSIRIS host device driver (§2).
//
// One Driver instance manages one queue-page channel of a board: the
// kernel's device driver runs over channel 0, and an application device
// channel's user-level "channel driver" (§3.2) is another instance of
// the same code over a different channel — exactly the paper's
// structure, where the ADC driver "performs essentially the same
// functions as the in-kernel OSIRIS device driver".
//
// The driver implements the paper's engineering decisions:
//
//   - lock-free descriptor rings with shadowed pointers (§2.1.1);
//   - transmit completion detected by tail-pointer advance during other
//     driver activity, with interrupts only for the full-queue /
//     half-empty flow-control protocol (§2.1.2);
//   - receive processing driven by one interrupt per burst, a thread
//     that drains the receive ring and replenishes the free ring;
//   - physical-buffer chains built from messages' scattered pages, with
//     page wiring on the transmit path (§2.2, §2.4);
//   - eager or lazy cache invalidation for received data (§2.3).
package driver

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/dpm"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/queue"
	"repro/internal/sim"
)

// CachePolicy selects how the driver keeps the data cache coherent with
// received DMA data on machines without hardware coherence (§2.3).
type CachePolicy int

const (
	// CacheEager invalidates the cache for every received buffer before
	// delivery — safe and slow (the "cache invalidated" curve of Fig. 2).
	CacheEager CachePolicy = iota
	// CacheLazy delivers without invalidation and relies on protocol
	// error detection plus RecoverData for the rare stale case.
	CacheLazy
	// CacheNone performs no invalidation and no recovery bookkeeping —
	// for hardware-coherent machines (DEC 3000).
	CacheNone
)

func (c CachePolicy) String() string {
	switch c {
	case CacheEager:
		return "eager"
	case CacheLazy:
		return "lazy"
	default:
		return "none"
	}
}

// Config configures a Driver.
type Config struct {
	// ChannelIndex selects the board queue-page channel (0 = kernel).
	ChannelIndex int
	// RxBufBytes is the receive buffer size (default 16 KB, §2.3).
	RxBufBytes int
	// RxBufCount is how many receive buffers circulate (default 63,
	// filling the 64-slot free ring).
	RxBufCount int
	// ReserveBufs is the pool of spare buffers used to replenish the
	// free ring while popped buffers are being processed (default 8).
	ReserveBufs int
	// Cache selects the invalidation policy for received data.
	Cache CachePolicy
	// SlowWiring uses the heavyweight page-wiring service (the §2.4
	// "surprisingly high overhead" ablation).
	SlowWiring bool
	// PagedRxBufs restricts receive buffers to single pages instead of
	// physically contiguous 16 KB regions — the §2.2 receive-side
	// fragmentation ablation.
	PagedRxBufs bool
	// Space is the address space the driver allocates buffers in
	// (default the host kernel space).
	Space *mem.AddressSpace
	// VirtualDMA models a host with a hardware scatter/gather map
	// (§2.2): the driver installs one map entry per page of each
	// outgoing message, after which the adaptor sees the buffer as
	// virtually contiguous — saving the per-physical-buffer descriptor
	// handling but paying the per-entry map update on every message.
	VirtualDMA bool
	// BufferFrames, when set, supplies the receive buffers' backing
	// frames explicitly: one physically contiguous run per buffer. An
	// application device channel's user-level driver must draw its
	// buffers from the frames the OS authorized for the channel (§3.2),
	// so it cannot allocate from the global pool. Overrides RxBufBytes /
	// RxBufCount sizing (each run is one buffer; ReserveBufs of the runs
	// are held back as the replenishment reserve).
	BufferFrames [][]mem.Frame
}

// Stats counts driver activity.
type Stats struct {
	TxPDUs        int64
	TxBuffers     int64 // physical buffers queued for transmit
	RxPDUs        int64
	RxBuffers     int64
	TxStalls      int64 // full-ring waits
	RxAborted     int64 // partial PDUs discarded on a board abort marker
	RxChecksumErr int64
	Recoveries    int64 // lazy-invalidation recoveries performed
	SGMapEntries  int64 // scatter/gather map entries installed (VirtualDMA)
}

// Handler receives an inbound PDU for a path. The message views the
// driver's receive buffers; it is valid until the handler returns.
type Handler func(p *sim.Proc, m *msg.Message)

// Path is a connection's binding to a VCI (§3.1: "each path is bound to
// an unused VCI by the device driver").
type Path struct {
	VCI     atm.VCI
	handler Handler
}

// txPending tracks one transmitted PDU awaiting completion (tail
// advance past its descriptors).
type txPending struct {
	descs int
	m     *msg.Message
	done  func(p *sim.Proc)
}

// rxBuffer is one receive buffer owned by the driver.
type rxBuffer struct {
	va    mem.VirtAddr
	pa    mem.PhysAddr
	size  int
	space *mem.AddressSpace
}

// mutex is a cooperative lock for the simulation world: the descriptor
// rings are strictly one-reader-one-writer (§2.1.1), so when several
// host threads share the driver, the driver itself must serialize its
// side of each ring — exactly what the in-kernel driver's locking did.
type mutex struct {
	held bool
	cond *sim.Cond
}

func newMutex(e *sim.Engine) *mutex { return &mutex{cond: sim.NewCond(e)} }

func (m *mutex) lock(p *sim.Proc) {
	for m.held {
		m.cond.Wait(p)
	}
	m.held = true
}

func (m *mutex) unlock() {
	m.held = false
	m.cond.Signal()
}

// Driver is the host-side driver for one board channel.
type Driver struct {
	host *hostsim.Host
	b    *board.Board
	ch   *board.Channel
	cfg  Config

	paths map[atm.VCI]*Path

	// Transmit side.
	pending   []txPending
	lastTail  uint32
	txCredits int // descriptors known consumed but not yet matched
	txCond    *sim.Cond
	txMu      *mutex // serializes the host's writer side of the tx ring

	// Receive side.
	byPA    map[mem.PhysAddr]*rxBuffer
	bufSlab []rxBuffer // backing store for all rxBuffers, sized up front
	reserve []*rxBuffer
	rxCond  *sim.Cond
	freeMu  *mutex       // serializes the host's writer side of the free ring
	partial []queue.Desc // descs of the PDU being accumulated

	// Buffer retention (fragment reassembly above the driver).
	currentMsg  *msg.Message
	currentBufs []*rxBuffer
	currentCE   bool // the PDU being delivered carried a fabric CE mark
	retainFlag  bool
	retained    map[*msg.Message][]*rxBuffer

	stats Stats
}

// New builds a driver over the given channel of b, allocates and wires
// its receive buffer pool, fills the free ring, registers interrupt
// handlers, and starts the receive thread.
func New(e *sim.Engine, h *hostsim.Host, b *board.Board, cfg Config) *Driver {
	if cfg.RxBufBytes == 0 {
		cfg.RxBufBytes = 16 * 1024
	}
	if cfg.PagedRxBufs {
		cfg.RxBufBytes = h.Mem.PageSize()
	}
	if cfg.RxBufCount == 0 {
		cfg.RxBufCount = 63
	}
	if cfg.ReserveBufs == 0 {
		cfg.ReserveBufs = 8
	}
	if cfg.Space == nil {
		cfg.Space = h.Kernel
	}
	// The buffer pool's size is known now; carve the Go-side structures
	// here, at construction, so the init proc's simulated work (wiring,
	// ring pushes) does not interleave with host-heap growth. Purely a
	// host-side allocation move — the simulated timeline is unchanged.
	total := cfg.RxBufCount + cfg.ReserveBufs
	if cfg.BufferFrames != nil {
		total = len(cfg.BufferFrames)
	}
	d := &Driver{
		host:     h,
		b:        b,
		ch:       b.Channel(cfg.ChannelIndex),
		cfg:      cfg,
		paths:    make(map[atm.VCI]*Path),
		byPA:     make(map[mem.PhysAddr]*rxBuffer, total),
		bufSlab:  make([]rxBuffer, 0, total),
		reserve:  make([]*rxBuffer, 0, cfg.ReserveBufs+1),
		txCond:   sim.NewCond(e),
		rxCond:   sim.NewCond(e),
		txMu:     newMutex(e),
		freeMu:   newMutex(e),
		retained: make(map[*msg.Message][]*rxBuffer),
	}
	h.Int.Handle(board.RxIRQBase+cfg.ChannelIndex, func(p *sim.Proc) {
		h.Compute(p, h.Prof.ThreadDispatch)
		d.rxCond.Broadcast()
	})
	h.Int.Handle(board.TxIRQBase+cfg.ChannelIndex, func(p *sim.Proc) {
		d.txCond.Broadcast()
	})

	e.Go(fmt.Sprintf("driver-ch%d-init", cfg.ChannelIndex), func(p *sim.Proc) {
		d.ch.TxRing.Init(p, dpm.Host)
		d.ch.FreeRing.Init(p, dpm.Host)
		d.ch.RecvRing.Init(p, dpm.Host)
		total := cfg.RxBufCount + cfg.ReserveBufs
		if cfg.BufferFrames != nil {
			total = len(cfg.BufferFrames)
		}
		for i := 0; i < total; i++ {
			var buf *rxBuffer
			if cfg.BufferFrames != nil {
				buf = d.adoptRxBuffer(p, cfg.BufferFrames[i])
			} else {
				buf = d.allocRxBuffer(p)
			}
			pushed := false
			if i < total-cfg.ReserveBufs {
				d.freeMu.lock(p)
				pushed = d.ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: buf.pa, Len: uint32(buf.size)})
				d.freeMu.unlock()
			}
			if !pushed {
				d.reserve = append(d.reserve, buf)
			}
		}
		b.KickFree()
	})
	e.Go(fmt.Sprintf("driver-ch%d-rx", cfg.ChannelIndex), d.rxThread)
	return d
}

// allocRxBuffer carves one receive buffer: physically contiguous (the
// driver's default, possible because the kernel controls these pages)
// unless PagedRxBufs restricts it to a single page (§2.2). The pages are
// wired once, up front — they live on the DMA path forever.
func (d *Driver) allocRxBuffer(p *sim.Proc) *rxBuffer {
	m := d.host.Mem
	pages := (d.cfg.RxBufBytes + m.PageSize() - 1) / m.PageSize()
	frames, err := m.AllocContiguous(pages)
	if err != nil {
		panic("driver: out of contiguous memory for receive buffers: " + err.Error())
	}
	va, err := d.cfg.Space.MapFrames(frames)
	if err != nil {
		panic(err)
	}
	for _, f := range frames {
		m.Wire(f)
	}
	d.host.WirePages(p, pages, d.cfg.SlowWiring)
	buf := d.newRxBuffer()
	buf.va = va
	buf.pa = m.FrameAddr(frames[0])
	buf.size = d.cfg.RxBufBytes
	buf.space = d.cfg.Space
	d.byPA[buf.pa] = buf
	return buf
}

// newRxBuffer hands out the next slot of the preallocated slab (the
// construction-time sizing covers every buffer the init proc creates),
// falling back to the heap otherwise. Callers fill the fields in place —
// passing a composite literal would defeat the slab, since the escaping
// fallback path forces the literal itself onto the heap.
func (d *Driver) newRxBuffer() *rxBuffer {
	if len(d.bufSlab) < cap(d.bufSlab) {
		d.bufSlab = d.bufSlab[:len(d.bufSlab)+1]
		return &d.bufSlab[len(d.bufSlab)-1]
	}
	return new(rxBuffer)
}

// adoptRxBuffer registers a caller-supplied contiguous frame run as one
// receive buffer, mapping and wiring it in the driver's space.
func (d *Driver) adoptRxBuffer(p *sim.Proc, frames []mem.Frame) *rxBuffer {
	m := d.host.Mem
	for i := 1; i < len(frames); i++ {
		if frames[i] != frames[i-1]+1 {
			panic("driver: BufferFrames run not physically contiguous")
		}
	}
	va, err := d.cfg.Space.MapFrames(frames)
	if err != nil {
		panic(err)
	}
	for _, f := range frames {
		m.Wire(f)
	}
	d.host.WirePages(p, len(frames), d.cfg.SlowWiring)
	buf := d.newRxBuffer()
	buf.va = va
	buf.pa = m.FrameAddr(frames[0])
	buf.size = len(frames) * m.PageSize()
	buf.space = d.cfg.Space
	d.byPA[buf.pa] = buf
	return buf
}

// Space returns the address space the driver's buffers live in.
func (d *Driver) Space() *mem.AddressSpace { return d.cfg.Space }

// Stats returns a copy of the counters.
func (d *Driver) Stats() Stats { return d.stats }

// RegisterMetrics registers the driver's counters as snapshot-time
// samples under prefix — notably tx_reclaim_stalls, the full-ring
// waits the paper's §2.1.2 flow-control protocol exists to bound. A
// nil registry is a no-op.
func (d *Driver) RegisterMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	s := &d.stats
	r.Sample(prefix+"/tx_pdus", metrics.KindCounter, func() int64 { return s.TxPDUs })
	r.Sample(prefix+"/tx_buffers", metrics.KindCounter, func() int64 { return s.TxBuffers })
	r.Sample(prefix+"/rx_pdus", metrics.KindCounter, func() int64 { return s.RxPDUs })
	r.Sample(prefix+"/rx_buffers", metrics.KindCounter, func() int64 { return s.RxBuffers })
	r.Sample(prefix+"/tx_reclaim_stalls", metrics.KindCounter, func() int64 { return s.TxStalls })
	r.Sample(prefix+"/rx_aborted", metrics.KindCounter, func() int64 { return s.RxAborted })
	r.Sample(prefix+"/rx_checksum_err", metrics.KindCounter, func() int64 { return s.RxChecksumErr })
	r.Sample(prefix+"/recoveries", metrics.KindCounter, func() int64 { return s.Recoveries })
	r.Sample(prefix+"/sg_map_entries", metrics.KindCounter, func() int64 { return s.SGMapEntries })
}

// ResetStats zeroes the counters.
func (d *Driver) ResetStats() { d.stats = Stats{} }

// Board returns the board this driver drives.
func (d *Driver) Board() *board.Board { return d.b }

// Host returns the host.
func (d *Driver) Host() *hostsim.Host { return d.host }

// OpenPath binds a VCI to a handler, establishing a path through the
// adaptor for one connection (§3.1).
func (d *Driver) OpenPath(vci atm.VCI, h Handler) *Path {
	pt := &Path{VCI: vci, handler: h}
	d.paths[vci] = pt
	d.b.BindVCI(vci, d.cfg.ChannelIndex)
	return pt
}

// ClosePath releases a path's VCI.
func (d *Driver) ClosePath(pt *Path) {
	delete(d.paths, pt.VCI)
	d.b.UnbindVCI(pt.VCI)
}

// SetHandler replaces a path's handler.
func (pt *Path) SetHandler(h Handler) { pt.handler = h }

// Send queues a message for transmission on a path and returns once all
// its descriptors are queued (not when transmission completes; register
// onComplete for that, e.g. to free header buffers). The message's pages
// are wired for the DMA and unwired at completion (§2.4).
func (d *Driver) Send(p *sim.Proc, pt *Path, m *msg.Message, onComplete func(p *sim.Proc)) error {
	segs, err := m.AppendPhysSegments(d.host.GetSegs())
	if err != nil {
		d.host.PutSegs(segs)
		return err
	}
	if len(segs) == 0 {
		d.host.PutSegs(segs)
		return fmt.Errorf("driver: empty message")
	}
	if err := m.WireAll(); err != nil {
		d.host.PutSegs(segs)
		return err
	}
	pages := 0
	for _, f := range m.Fragments() {
		pages += (f.Len + d.host.Mem.PageSize() - 1) / d.host.Mem.PageSize()
	}
	if d.cfg.VirtualDMA {
		// One map entry per page, then the adaptor sees one buffer; the
		// per-physical-buffer driver cost disappears but the map update
		// is paid on every message (§2.2).
		d.host.Compute(p, d.host.Prof.DriverTxPerPDU+time.Duration(pages)*d.host.Prof.SGMapPerEntry)
		d.host.Bus.PIOWrite(p, 2*pages)
		d.stats.SGMapEntries += int64(pages)
	} else {
		d.host.Compute(p, d.host.Prof.DriverTxPerPDU+time.Duration(len(segs)-1)*d.host.Prof.DriverPerBuffer)
	}
	d.host.WirePages(p, pages, d.cfg.SlowWiring)

	d.txMu.lock(p)
	for i, seg := range segs {
		desc := queue.Desc{Addr: seg.Addr, Len: uint32(seg.Len), VCI: pt.VCI}
		if i == len(segs)-1 {
			desc.Flags = queue.FlagEOP
		}
		for !d.ch.TxRing.TryPush(p, dpm.Host, desc) {
			// Full transmit queue: reclaim opportunistically, then fall
			// back to the notify/half-empty interrupt protocol (§2.1.2).
			d.reclaimLocked(p)
			if !d.ch.TxRing.WriterFull(p, dpm.Host) {
				continue
			}
			d.stats.TxStalls++
			if d.host.Eng.Tracing() {
				d.host.Eng.Tracef("drv: ch%d tx ring full, arming notify", d.cfg.ChannelIndex)
			}
			d.b.DPM.WriteWord(p, dpm.Host, d.ch.NotifyFlagOff(), 1)
			d.b.KickTx()
			d.txCond.Wait(p)
			d.reclaimLocked(p)
		}
	}
	d.stats.TxPDUs++
	d.stats.TxBuffers += int64(len(segs))
	d.pending = append(d.pending, txPending{descs: len(segs), m: m, done: onComplete})
	d.b.KickTx()
	// Transmit-complete detection piggybacks on other driver activity.
	d.reclaimLocked(p)
	d.txMu.unlock()
	d.host.PutSegs(segs)
	return nil
}

// reclaim observes the transmit ring's tail and retires completed PDUs:
// unwiring their pages and running completion callbacks. This is the
// §2.1.2 "checks for this condition as part of other driver activity".
func (d *Driver) reclaim(p *sim.Proc) {
	d.txMu.lock(p)
	d.reclaimLocked(p)
	d.txMu.unlock()
}

func (d *Driver) reclaimLocked(p *sim.Proc) {
	tail := d.ch.TxRing.ObserveTail(p, dpm.Host)
	delta := int(tail-d.lastTail) % d.ch.TxRing.Slots()
	if delta < 0 {
		delta += d.ch.TxRing.Slots()
	}
	d.lastTail = tail
	d.txCredits += delta
	for len(d.pending) > 0 && d.txCredits >= d.pending[0].descs {
		ent := d.pending[0]
		d.pending = d.pending[1:]
		d.txCredits -= ent.descs
		if err := ent.m.UnwireAll(); err != nil {
			panic(err)
		}
		if ent.done != nil {
			ent.done(p)
		}
	}
}

// Flush blocks until every queued PDU has completed transmission.
func (d *Driver) Flush(p *sim.Proc) {
	for len(d.pending) > 0 {
		d.reclaim(p)
		if len(d.pending) > 0 {
			p.Sleep(5 * time.Microsecond)
		}
	}
}

// rxThread is the driver's receive thread: woken by the (single per
// burst) receive interrupt, it repeatedly removes a filled buffer from
// the receive queue, adds a fresh free buffer, and initiates processing
// (§2.1.1).
func (d *Driver) rxThread(p *sim.Proc) {
	for {
		processed := false
		for {
			desc, ok := d.ch.RecvRing.TryPop(p, dpm.Host)
			if !ok {
				break
			}
			processed = true
			if desc.Flags&queue.FlagErr != 0 {
				// Abort marker: the board abandoned a PDU after part of it
				// had already streamed up (reassembly timeout or late
				// error). The marker carries no buffer; the partial
				// delivery's buffers go back to the reserve pool.
				d.abortPartial(desc.VCI)
				continue
			}
			d.stats.RxBuffers++
			// Replenish the free queue immediately.
			if len(d.reserve) > 0 {
				rb := d.reserve[len(d.reserve)-1]
				d.reserve = d.reserve[:len(d.reserve)-1]
				d.freeMu.lock(p)
				pushed := d.ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{Addr: rb.pa, Len: uint32(rb.size)})
				d.freeMu.unlock()
				if pushed {
					d.b.KickFree()
				} else {
					d.reserve = append(d.reserve, rb)
				}
			}
			d.partial = append(d.partial, desc)
			if desc.Flags&queue.FlagEOP != 0 {
				d.deliverPDU(p, d.partial)
				d.partial = nil
			}
		}
		if processed {
			// Opportunistic transmit reclaim while we're here.
			d.reclaim(p)
		}
		d.rxCond.Wait(p)
	}
}

// abortPartial discards the in-progress partial PDU in response to a
// board abort marker, returning its buffers to the reserve pool — the
// driver-side half of graceful degradation: no received-buffer leak, no
// handler invocation for a PDU the board could not finish.
func (d *Driver) abortPartial(vci atm.VCI) {
	d.stats.RxAborted++
	if d.host.Eng.Tracing() {
		d.host.Eng.Tracef("drv: ch%d rx abort vci=%d bufs=%d", d.cfg.ChannelIndex, vci, len(d.partial))
	}
	for _, desc := range d.partial {
		rb := d.byPA[desc.Addr]
		if rb == nil {
			panic(fmt.Sprintf("driver: abort marker over unknown buffer %#x", uint32(desc.Addr)))
		}
		d.reserve = append(d.reserve, rb)
	}
	d.partial = nil
}

// deliverPDU assembles a message view over the received buffers, applies
// the cache policy, and hands it up the bound path. The buffers return
// to the reserve pool when the handler finishes.
func (d *Driver) deliverPDU(p *sim.Proc, descs []queue.Desc) {
	d.stats.RxPDUs++
	if d.host.Eng.Tracing() {
		d.host.Eng.Tracef("pdu: ch%d deliver vci=%d bufs=%d", d.cfg.ChannelIndex, descs[len(descs)-1].VCI, len(descs))
	}
	d.host.Compute(p, d.host.Prof.DriverRxPerPDU+time.Duration(len(descs)-1)*d.host.Prof.DriverPerBuffer)

	var frags []msg.Fragment
	var bufs []*rxBuffer
	ce := false
	for _, desc := range descs {
		if desc.Flags&queue.FlagCE != 0 {
			ce = true
		}
		rb := d.byPA[desc.Addr]
		if rb == nil {
			panic(fmt.Sprintf("driver: received descriptor for unknown buffer %#x", uint32(desc.Addr)))
		}
		bufs = append(bufs, rb)
		if desc.Len > 0 {
			frags = append(frags, msg.Fragment{Space: rb.space, VA: rb.va, Len: int(desc.Len)})
		}
		if d.cfg.Cache == CacheEager && desc.Len > 0 {
			d.host.InvalidateData(p, []mem.PhysBuffer{{Addr: desc.Addr, Len: int(desc.Len)}})
		}
	}
	m := msg.New(frags...)
	pt := d.paths[descs[len(descs)-1].VCI]
	d.currentMsg, d.currentBufs, d.currentCE, d.retainFlag = m, bufs, ce, false
	if pt != nil && pt.handler != nil {
		pt.handler(p, m)
	}
	if d.retainFlag {
		d.retained[m] = bufs
	} else {
		// Handler done: recycle the buffers.
		d.reserve = append(d.reserve, bufs...)
	}
	d.currentMsg, d.currentBufs, d.currentCE, d.retainFlag = nil, nil, false, false
}

// CEMarked, called from within a path handler, reports whether the PDU
// being delivered carried the fabric's congestion-experienced mark (any
// of its cells entered a switch output queue past the mark threshold).
// Outside a delivery it is false.
func (d *Driver) CEMarked() bool { return d.currentCE }

// Retain, called from within a path handler, transfers ownership of the
// PDU's receive buffers to the caller — an upper protocol holding a
// fragment for reassembly. The buffers must eventually come back via
// Release or the receive pool shrinks (exactly the resource the paper's
// copy-free data path has to manage, §2.2/§3.1).
func (d *Driver) Retain(m *msg.Message) {
	if m != d.currentMsg {
		panic("driver: Retain outside the delivering handler")
	}
	d.retainFlag = true
}

// Release returns retained buffers to the receive pool. Releasing the
// message currently being delivered (retained and released within the
// same handler invocation) simply cancels the retention.
func (d *Driver) Release(_ *sim.Proc, m *msg.Message) {
	if m == d.currentMsg {
		d.retainFlag = false
		return
	}
	bufs, ok := d.retained[m]
	if !ok {
		panic("driver: Release of unretained message")
	}
	delete(d.retained, m)
	d.reserve = append(d.reserve, bufs...)
}

// RecoverData is the lazy-invalidation recovery path (§2.3): when a
// protocol detects a data error it invalidates the cache over the
// message's buffers and re-evaluates before declaring the message bad.
func (d *Driver) RecoverData(p *sim.Proc, m *msg.Message) bool {
	if d.cfg.Cache != CacheLazy {
		return false
	}
	segs, err := m.PhysSegments()
	if err != nil {
		return false
	}
	d.stats.Recoveries++
	if d.host.Eng.Tracing() {
		d.host.Eng.Tracef("proto: ch%d lazy-invalidation recovery (%d bytes)", d.cfg.ChannelIndex, m.Len())
	}
	d.host.InvalidateData(p, segs)
	return true
}

// NoteChecksumError records a protocol-detected data error.
func (d *Driver) NoteChecksumError() { d.stats.RxChecksumErr++ }
