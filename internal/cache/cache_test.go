package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newCache(policy CoherencePolicy) (*Cache, *mem.Memory) {
	m := mem.New(mem.Config{Pages: 64})
	return New(m, Config{Size: 1024, LineSize: 16, Policy: policy}), m
}

func TestReadMissThenHit(t *testing.T) {
	c, m := newCache(Incoherent)
	m.Write(0, []byte("hello, cache!"))
	var buf [13]byte
	hits, misses := c.Read(0, buf[:])
	if hits != 0 || misses != 1 {
		t.Errorf("first read: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if string(buf[:]) != "hello, cache!" {
		t.Errorf("read %q", buf)
	}
	hits, misses = c.Read(0, buf[:])
	if hits != 1 || misses != 0 {
		t.Errorf("second read: hits=%d misses=%d, want 1/0", hits, misses)
	}
}

func TestReadSpanningLines(t *testing.T) {
	c, m := newCache(Incoherent)
	data := make([]byte, 40)
	for i := range data {
		data[i] = byte(i)
	}
	m.Write(8, data) // spans lines at 0,16,32,48? 8..48 → lines 0,16,32
	var buf [40]byte
	hits, misses := c.Read(8, buf[:])
	if misses != 3 || hits != 0 {
		t.Errorf("hits=%d misses=%d, want 0/3", hits, misses)
	}
	if !bytes.Equal(buf[:], data) {
		t.Error("data mismatch")
	}
}

func TestWriteThroughUpdatesMemoryAndLine(t *testing.T) {
	c, m := newCache(Incoherent)
	var buf [4]byte
	c.Read(0, buf[:]) // bring line in
	c.Write(0, []byte{9, 8, 7, 6})
	if !bytes.Equal(m.Read(0, 4), []byte{9, 8, 7, 6}) {
		t.Error("memory not updated (write-through violated)")
	}
	c.Read(0, buf[:])
	if !bytes.Equal(buf[:], []byte{9, 8, 7, 6}) {
		t.Error("cached line not updated on write hit")
	}
	if c.Stats().StaleReads != 0 {
		t.Error("CPU's own write made its cache stale")
	}
}

func TestWriteMissDoesNotAllocate(t *testing.T) {
	c, _ := newCache(Incoherent)
	c.Write(128, []byte{1, 2, 3, 4})
	if c.Resident(128) {
		t.Error("write miss allocated a line (no-write-allocate violated)")
	}
}

func TestIncoherentDMALeavesStaleLine(t *testing.T) {
	c, m := newCache(Incoherent)
	m.Write(0, []byte("AAAA"))
	var buf [4]byte
	c.Read(0, buf[:]) // cache now holds AAAA
	c.DMAWrite(0, []byte("BBBB"))
	if !bytes.Equal(m.Read(0, 4), []byte("BBBB")) {
		t.Fatal("DMA did not reach memory")
	}
	c.Read(0, buf[:])
	if string(buf[:]) != "AAAA" {
		t.Errorf("read %q, want stale AAAA on incoherent cache", buf)
	}
	if c.Stats().StaleReads != 1 {
		t.Errorf("StaleReads = %d, want 1", c.Stats().StaleReads)
	}
}

func TestDMAUpdatePolicyRefreshesLine(t *testing.T) {
	c, _ := newCache(DMAUpdate)
	var buf [4]byte
	c.Read(0, buf[:])
	c.DMAWrite(0, []byte("CCCC"))
	c.Read(0, buf[:])
	if string(buf[:]) != "CCCC" {
		t.Errorf("read %q, want fresh CCCC with DMAUpdate", buf)
	}
	if c.Stats().StaleReads != 0 {
		t.Errorf("StaleReads = %d, want 0", c.Stats().StaleReads)
	}
}

func TestInvalidateClearsStaleness(t *testing.T) {
	c, _ := newCache(Incoherent)
	var buf [4]byte
	c.Read(0, buf[:])
	c.DMAWrite(0, []byte("DDDD"))
	words := c.Invalidate(0, 16)
	if words != 4 {
		t.Errorf("Invalidate returned %d words, want 4", words)
	}
	c.Read(0, buf[:])
	if string(buf[:]) != "DDDD" {
		t.Errorf("read %q after invalidate, want DDDD", buf)
	}
	if c.Stats().StaleReads != 0 {
		t.Error("stale read after invalidation")
	}
}

func TestInvalidateCostCountsWholeRange(t *testing.T) {
	c, _ := newCache(Incoherent)
	// Nothing resident, but the invalidation loop still visits the range.
	words := c.Invalidate(0, 1024)
	if words != 256 {
		t.Errorf("words = %d, want 256", words)
	}
	if c.Stats().InvalidatedWords != 256 {
		t.Errorf("stats.InvalidatedWords = %d", c.Stats().InvalidatedWords)
	}
}

func TestFlushAll(t *testing.T) {
	c, _ := newCache(Incoherent)
	var buf [4]byte
	c.Read(0, buf[:])
	c.Read(64, buf[:])
	c.FlushAll()
	if c.Resident(0) || c.Resident(64) {
		t.Error("lines resident after FlushAll")
	}
}

func TestConflictEviction(t *testing.T) {
	// Two addresses that map to the same set in a 1KB direct-mapped cache
	// evict each other.
	c, _ := newCache(Incoherent)
	var buf [4]byte
	c.Read(0, buf[:])
	c.Read(1024, buf[:]) // same index, different tag
	if c.Resident(0) {
		t.Error("conflicting line not evicted")
	}
	if !c.Resident(1024) {
		t.Error("new line not resident")
	}
}

func TestStaleLinesDiagnostic(t *testing.T) {
	c, _ := newCache(Incoherent)
	buf := make([]byte, 64)
	c.Read(0, buf)
	c.DMAWrite(0, bytes.Repeat([]byte{0xFF}, 64))
	if got := c.StaleLines(0, 64); got != 4 {
		t.Errorf("StaleLines = %d, want 4", got)
	}
	c.Invalidate(0, 64)
	if got := c.StaleLines(0, 64); got != 0 {
		t.Errorf("StaleLines after invalidate = %d, want 0", got)
	}
}

func TestNaturalEvictionBoundsStaleness(t *testing.T) {
	// The paper's lazy-invalidation argument (§2.3): if the CPU touches
	// much more data than the cache holds between reuses of a DMA buffer,
	// the stale lines are evicted naturally. Simulate: cache a buffer,
	// DMA over it, stream 4x the cache size of other data through the
	// cache, then re-read the buffer — it must not be stale.
	c, m := newCache(Incoherent)
	var buf [64]byte
	c.Read(0, buf[:])
	c.DMAWrite(0, bytes.Repeat([]byte{0xEE}, 64))
	stream := make([]byte, 4*c.Size())
	c.Read(4096, stream[:len(stream)/2])
	c.Read(mem.PhysAddr(4096+len(stream)/2), stream[len(stream)/2:])
	c.ResetStats()
	c.Read(0, buf[:])
	if c.Stats().StaleReads != 0 {
		t.Errorf("StaleReads = %d after heavy eviction, want 0", c.Stats().StaleReads)
	}
	if !bytes.Equal(buf[:16], m.Read(0, 16)) {
		t.Error("re-read returned stale bytes")
	}
}

func TestPolicyString(t *testing.T) {
	if Incoherent.String() != "incoherent" || DMAUpdate.String() != "dma-update" {
		t.Error("String() labels wrong")
	}
	if CoherencePolicy(9).String() == "" {
		t.Error("unknown policy printed empty")
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	m := mem.New(mem.Config{Pages: 64})
	c := New(m, Config{})
	if c.Size() != 64*1024 || c.LineSize() != 16 {
		t.Errorf("defaults: size=%d line=%d", c.Size(), c.LineSize())
	}
	defer func() {
		if recover() == nil {
			t.Error("bad size/line combo did not panic")
		}
	}()
	New(m, Config{Size: 100, LineSize: 16})
}

// Property: in the absence of DMA, reading through the cache always
// equals reading memory directly, for arbitrary interleavings of reads
// and CPU writes.
func TestCoherentWithoutDMAQuick(t *testing.T) {
	m := mem.New(mem.Config{Pages: 4})
	c := New(m, Config{Size: 256, LineSize: 16})
	f := func(ops []struct {
		Addr  uint16
		Data  byte
		Write bool
	}) bool {
		for _, op := range ops {
			a := mem.PhysAddr(op.Addr % 8192)
			if op.Write {
				c.Write(a, []byte{op.Data})
			} else {
				var b [1]byte
				c.Read(a, b[:])
				if b[0] != m.Read(a, 1)[0] {
					return false
				}
			}
		}
		return c.Stats().StaleReads == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
