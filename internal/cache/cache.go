// Package cache models a host CPU data cache.
//
// The model reproduces the two behaviours the paper depends on (§2.3,
// §2.7):
//
//   - On the DECstation 5000/200, DMA transfers into main memory do NOT
//     update or invalidate the data cache, so CPU reads of DMA'd buffers
//     can return stale data unless the driver explicitly invalidates —
//     at roughly one CPU cycle per 32-bit word.
//   - On the DEC 3000 AXP, DMA writes update the (second-level) cache,
//     so no software invalidation is needed.
//
// The cache holds real copies of line data, so stale reads return
// genuinely stale bytes: a driver that skips a required invalidation
// produces payload corruption that checksums (and tests) catch, exactly
// as the paper's lazy-invalidation scheme intends.
package cache

import (
	"bytes"
	"fmt"

	"repro/internal/mem"
)

// CoherencePolicy selects how the cache interacts with DMA writes.
type CoherencePolicy int

const (
	// Incoherent: DMA writes bypass the cache entirely; previously cached
	// lines for the written range silently go stale (DECstation 5000/200).
	Incoherent CoherencePolicy = iota
	// DMAUpdate: DMA writes update matching cache lines in place
	// (DEC 3000 AXP behaviour).
	DMAUpdate
)

func (p CoherencePolicy) String() string {
	switch p {
	case Incoherent:
		return "incoherent"
	case DMAUpdate:
		return "dma-update"
	default:
		return fmt.Sprintf("CoherencePolicy(%d)", int(p))
	}
}

// Stats counts cache activity, in lines except where noted.
type Stats struct {
	ReadHits         int64
	ReadMisses       int64
	WriteHits        int64
	WriteMisses      int64
	StaleReads       int64 // read hits whose cached copy differed from memory
	InvalidatedWords int64 // 32-bit words explicitly invalidated (cost: ~1 cycle each)
}

// Cache is a direct-mapped, write-through, no-write-allocate data cache —
// the organization of the DECstation 5000/200's 64 KB D-cache.
type Cache struct {
	mem      *mem.Memory
	policy   CoherencePolicy
	lineSize int
	nLines   int
	valid    []bool
	tags     []uint32 // line-aligned physical address of cached line
	data     []byte   // nLines * lineSize backing store
	stats    Stats
}

// Config configures a Cache.
type Config struct {
	Size     int // total bytes (default 64 KB)
	LineSize int // bytes per line (default 16)
	Policy   CoherencePolicy
}

// New returns a cache over physical memory m.
func New(m *mem.Memory, cfg Config) *Cache {
	if cfg.Size == 0 {
		cfg.Size = 64 * 1024
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 16
	}
	if cfg.Size%cfg.LineSize != 0 {
		panic("cache: size not a multiple of line size")
	}
	n := cfg.Size / cfg.LineSize
	return &Cache{
		mem:      m,
		policy:   cfg.Policy,
		lineSize: cfg.LineSize,
		nLines:   n,
		valid:    make([]bool, n),
		tags:     make([]uint32, n),
		data:     make([]byte, cfg.Size),
	}
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Size returns the total cache size in bytes.
func (c *Cache) Size() int { return c.nLines * c.lineSize }

// Policy returns the DMA coherence policy.
func (c *Cache) Policy() CoherencePolicy { return c.policy }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(lineAddr uint32) int { return int(lineAddr/uint32(c.lineSize)) % c.nLines }

func (c *Cache) lineSlot(idx int) []byte {
	return c.data[idx*c.lineSize : (idx+1)*c.lineSize]
}

// Read copies len(dst) bytes from physical address pa through the cache,
// returning the number of line hits and misses. A hit whose cached copy
// differs from memory is counted as a stale read and returns the STALE
// bytes — the caller sees exactly what the real CPU would have seen.
func (c *Cache) Read(pa mem.PhysAddr, dst []byte) (hits, misses int) {
	a := uint32(pa)
	off := 0
	for off < len(dst) {
		lineAddr := a - a%uint32(c.lineSize)
		idx := c.index(lineAddr)
		within := int(a - lineAddr)
		n := c.lineSize - within
		if n > len(dst)-off {
			n = len(dst) - off
		}
		if c.valid[idx] && c.tags[idx] == lineAddr {
			hits++
			c.stats.ReadHits++
			cached := c.lineSlot(idx)
			fresh := c.mem.Read(mem.PhysAddr(lineAddr), c.lineSize)
			if !bytes.Equal(cached, fresh) {
				c.stats.StaleReads++
			}
			copy(dst[off:off+n], cached[within:within+n])
		} else {
			misses++
			c.stats.ReadMisses++
			c.valid[idx] = true
			c.tags[idx] = lineAddr
			c.mem.ReadInto(mem.PhysAddr(lineAddr), c.lineSlot(idx))
			copy(dst[off:off+n], c.lineSlot(idx)[within:within+n])
		}
		a += uint32(n)
		off += n
	}
	return hits, misses
}

// Write copies src to physical address pa write-through: memory is always
// updated; a matching cached line is updated in place (write hit); on a
// write miss no line is allocated.
func (c *Cache) Write(pa mem.PhysAddr, src []byte) (hits, misses int) {
	c.mem.Write(pa, src)
	a := uint32(pa)
	off := 0
	for off < len(src) {
		lineAddr := a - a%uint32(c.lineSize)
		idx := c.index(lineAddr)
		within := int(a - lineAddr)
		n := c.lineSize - within
		if n > len(src)-off {
			n = len(src) - off
		}
		if c.valid[idx] && c.tags[idx] == lineAddr {
			hits++
			c.stats.WriteHits++
			copy(c.lineSlot(idx)[within:within+n], src[off:off+n])
		} else {
			misses++
			c.stats.WriteMisses++
		}
		a += uint32(n)
		off += n
	}
	return hits, misses
}

// DMAWrite delivers a DMA transfer into main memory. Under Incoherent it
// leaves any cached lines covering the range stale; under DMAUpdate it
// refreshes them.
func (c *Cache) DMAWrite(pa mem.PhysAddr, src []byte) {
	c.mem.Write(pa, src)
	if c.policy != DMAUpdate {
		return
	}
	a := uint32(pa)
	off := 0
	for off < len(src) {
		lineAddr := a - a%uint32(c.lineSize)
		idx := c.index(lineAddr)
		within := int(a - lineAddr)
		n := c.lineSize - within
		if n > len(src)-off {
			n = len(src) - off
		}
		if c.valid[idx] && c.tags[idx] == lineAddr {
			copy(c.lineSlot(idx)[within:within+n], src[off:off+n])
		}
		a += uint32(n)
		off += n
	}
}

// Invalidate drops any cached lines overlapping [pa, pa+n) and returns
// the number of 32-bit words invalidated; the paper prices a partial
// invalidation at about one CPU cycle per word (§2.3).
func (c *Cache) Invalidate(pa mem.PhysAddr, n int) (words int) {
	a := uint32(pa)
	end := a + uint32(n)
	for lineAddr := a - a%uint32(c.lineSize); lineAddr < end; lineAddr += uint32(c.lineSize) {
		idx := c.index(lineAddr)
		if c.valid[idx] && c.tags[idx] == lineAddr {
			c.valid[idx] = false
		}
	}
	// Cost is charged per word of the *range*, whether or not each word
	// was resident: the invalidation loop must visit every word.
	words = (n + 3) / 4
	c.stats.InvalidatedWords += int64(words)
	return words
}

// FlushAll empties the whole cache (the DECstation's cache-swap trick).
func (c *Cache) FlushAll() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// StaleLines reports how many cached lines overlapping [pa, pa+n) differ
// from memory — a diagnostic for the lazy-invalidation experiment.
func (c *Cache) StaleLines(pa mem.PhysAddr, n int) int {
	a := uint32(pa)
	end := a + uint32(n)
	stale := 0
	for lineAddr := a - a%uint32(c.lineSize); lineAddr < end; lineAddr += uint32(c.lineSize) {
		idx := c.index(lineAddr)
		if c.valid[idx] && c.tags[idx] == lineAddr {
			if !bytes.Equal(c.lineSlot(idx), c.mem.Read(mem.PhysAddr(lineAddr), c.lineSize)) {
				stale++
			}
		}
	}
	return stale
}

// Resident reports whether the line containing pa is cached.
func (c *Cache) Resident(pa mem.PhysAddr) bool {
	a := uint32(pa)
	lineAddr := a - a%uint32(c.lineSize)
	idx := c.index(lineAddr)
	return c.valid[idx] && c.tags[idx] == lineAddr
}
