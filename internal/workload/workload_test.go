package workload

import "testing"

func TestTable1Sizes(t *testing.T) {
	got := Table1Sizes()
	want := []int{1, 1024, 2048, 4096}
	if len(got) != len(want) {
		t.Fatalf("sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v", got)
		}
	}
}

func TestFigureSizes(t *testing.T) {
	got := FigureSizes()
	if got[0] != 1024 || got[len(got)-1] != 256*1024 {
		t.Errorf("figure sizes = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]*2 {
			t.Errorf("not doubling: %v", got)
		}
	}
}

func TestDoubling(t *testing.T) {
	got := Doubling(8, 64)
	want := []int{8, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Doubling = %v", got)
		}
	}
}

func TestPayloadDeterministicAndDistinct(t *testing.T) {
	a := Payload(1000, 1)
	b := Payload(1000, 1)
	c := Payload(1000, 2)
	if string(a) != string(b) {
		t.Error("same seed differs")
	}
	if string(a) == string(c) {
		t.Error("different seeds identical")
	}
	if len(Payload(0, 1)) != 0 {
		t.Error("zero-length payload")
	}
}

func TestDefaultPriorityMix(t *testing.T) {
	m := DefaultPriorityMix()
	if m.HighPriority <= m.LowPriority {
		t.Error("priorities inverted")
	}
	if m.MessageBytes == 0 || m.Messages == 0 {
		t.Error("empty mix")
	}
}
