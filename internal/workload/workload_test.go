package workload

import "testing"

func TestTable1Sizes(t *testing.T) {
	got := Table1Sizes()
	want := []int{1, 1024, 2048, 4096}
	if len(got) != len(want) {
		t.Fatalf("sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v", got)
		}
	}
}

func TestFigureSizes(t *testing.T) {
	got := FigureSizes()
	if got[0] != 1024 || got[len(got)-1] != 256*1024 {
		t.Errorf("figure sizes = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]*2 {
			t.Errorf("not doubling: %v", got)
		}
	}
}

func TestDoubling(t *testing.T) {
	got := Doubling(8, 64)
	want := []int{8, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Doubling = %v", got)
		}
	}
}

func TestPayloadDeterministicAndDistinct(t *testing.T) {
	a := Payload(1000, 1)
	b := Payload(1000, 1)
	c := Payload(1000, 2)
	if string(a) != string(b) {
		t.Error("same seed differs")
	}
	if string(a) == string(c) {
		t.Error("different seeds identical")
	}
	if len(Payload(0, 1)) != 0 {
		t.Error("zero-length payload")
	}
}

func TestDefaultPriorityMix(t *testing.T) {
	m := DefaultPriorityMix()
	if m.HighPriority <= m.LowPriority {
		t.Error("priorities inverted")
	}
	if m.MessageBytes == 0 || m.Messages == 0 {
		t.Error("empty mix")
	}
}

func TestFanInPayloadVerifyRoundTrip(t *testing.T) {
	f := DefaultFanIn()
	for _, id := range [][2]int{{0, 0}, {3, 5}, {f.Clients - 1, f.Messages - 1}} {
		p := f.Payload(id[0], id[1])
		if len(p) != f.MessageBytes {
			t.Fatalf("payload length %d", len(p))
		}
		client, msg, ok := f.Verify(p)
		if !ok || client != id[0] || msg != id[1] {
			t.Errorf("Verify(Payload(%d,%d)) = %d,%d,%v", id[0], id[1], client, msg, ok)
		}
	}
}

func TestFanInPayloadsDistinct(t *testing.T) {
	f := DefaultFanIn()
	if string(f.Payload(0, 0)) == string(f.Payload(1, 0)) {
		t.Error("different clients share a payload")
	}
	if string(f.Payload(0, 0)) == string(f.Payload(0, 1)) {
		t.Error("different messages share a payload")
	}
}

func TestFanInVerifyRejectsDamage(t *testing.T) {
	f := DefaultFanIn()
	if _, _, ok := f.Verify(nil); ok {
		t.Error("nil verified")
	}
	if _, _, ok := f.Verify(make([]byte, 3)); ok {
		t.Error("short payload verified")
	}
	p := f.Payload(2, 3)
	p[f.MessageBytes/2] ^= 1
	if _, _, ok := f.Verify(p); ok {
		t.Error("flipped bit verified")
	}
	if _, _, ok := f.Verify(f.Payload(2, 3)[:100]); ok {
		t.Error("truncated payload verified")
	}
	q := f.Payload(0, 0)
	q[3] = 200 // client index out of range
	if _, _, ok := f.Verify(q); ok {
		t.Error("out-of-range identity verified")
	}
}

func TestFanInTotalBytes(t *testing.T) {
	f := FanIn{Clients: 3, MessageBytes: 100, Messages: 4}
	if f.TotalBytes() != 1200 {
		t.Errorf("TotalBytes = %d", f.TotalBytes())
	}
}
