// Package workload provides the message-size sweeps and traffic
// patterns used by the benchmark harness, matching the paper's
// evaluation parameters (§4).
package workload

// Table1Sizes are the message sizes of Table 1.
func Table1Sizes() []int { return []int{1, 1024, 2048, 4096} }

// FigureSizes are the throughput figures' x-axis: 1 KB to 256 KB,
// doubling.
func FigureSizes() []int {
	var out []int
	for s := 1024; s <= 256*1024; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Doubling returns a doubling ladder from lo to hi inclusive.
func Doubling(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Payload builds a deterministic test payload of n bytes; distinct
// seeds give distinct contents so cross-message corruption is
// detectable.
func Payload(n int, seed byte) []byte {
	out := make([]byte, n)
	x := uint32(seed)*2654435761 + 1
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

// PriorityMix describes the §3.1 overload experiment: a high- and a
// low-priority stream contending for receive resources.
type PriorityMix struct {
	HighPriority int
	LowPriority  int
	MessageBytes int
	Messages     int // per stream
}

// DefaultPriorityMix is the configuration used by the example and bench.
func DefaultPriorityMix() PriorityMix {
	return PriorityMix{HighPriority: 10, LowPriority: 1, MessageBytes: 4096, Messages: 8}
}
