// Package workload provides the message-size sweeps and traffic
// patterns used by the benchmark harness, matching the paper's
// evaluation parameters (§4).
package workload

import (
	"bytes"
	"encoding/binary"
	"time"
)

// Table1Sizes are the message sizes of Table 1.
func Table1Sizes() []int { return []int{1, 1024, 2048, 4096} }

// FigureSizes are the throughput figures' x-axis: 1 KB to 256 KB,
// doubling.
func FigureSizes() []int {
	var out []int
	for s := 1024; s <= 256*1024; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Doubling returns a doubling ladder from lo to hi inclusive.
func Doubling(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Payload builds a deterministic test payload of n bytes; distinct
// seeds give distinct contents so cross-message corruption is
// detectable.
func Payload(n int, seed byte) []byte {
	out := make([]byte, n)
	x := uint32(seed)*2654435761 + 1
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

// PriorityMix describes the §3.1 overload experiment: a high- and a
// low-priority stream contending for receive resources.
type PriorityMix struct {
	HighPriority int
	LowPriority  int
	MessageBytes int
	Messages     int // per stream
}

// DefaultPriorityMix is the configuration used by the example and bench.
func DefaultPriorityMix() PriorityMix {
	return PriorityMix{HighPriority: 10, LowPriority: 1, MessageBytes: 4096, Messages: 8}
}

// FanInHeaderBytes is the size of the per-message identity header a
// FanIn payload starts with: big-endian client index then message
// index. The receiver uses it to attribute and verify each delivery.
const FanInHeaderBytes = 8

// FanIn describes an incast workload: Clients senders each push
// Messages messages of MessageBytes at one server through the fabric.
type FanIn struct {
	// Clients is the number of concurrent senders.
	Clients int
	// MessageBytes is the UDP payload size per message (must be at
	// least FanInHeaderBytes).
	MessageBytes int
	// Messages is the per-client message count.
	Messages int
	// Gap is the pause each client inserts between messages. Zero means
	// full rate — every client blasts back to back, the incast-collapse
	// regime where the switch's output queue overflows.
	Gap time.Duration
	// Stagger offsets client i's start by i×Stagger, de-phasing the
	// bursts so a paced run stays collision-free.
	Stagger time.Duration
}

// DefaultFanIn is the configuration used by the example and bench: 8
// clients × 8 messages of 16 KB, paced for lossless delivery. The
// server host — not the 516 Mbps channel — is the bottleneck: when two
// clients' bursts interleave at its board, cells of different VCIs
// alternate and the double-cell DMA optimization stops combining, so
// the receive processor falls behind line rate and the on-board FIFO
// overflows. A 2 ms stagger keeps the ~1.5 ms 16 KB bursts disjoint
// (client periods are identical, so relative phases never drift), and
// the 14 ms gap holds the aggregate near 70 Mbps, inside the host
// stack's receive ceiling.
func DefaultFanIn() FanIn {
	return FanIn{
		Clients:      8,
		MessageBytes: 16 * 1024,
		Messages:     8,
		Gap:          14 * time.Millisecond,
		Stagger:      2 * time.Millisecond,
	}
}

// TotalBytes is the aggregate payload the workload offers.
func (f FanIn) TotalBytes() int64 {
	return int64(f.Clients) * int64(f.Messages) * int64(f.MessageBytes)
}

// Payload builds client's msg-th message: deterministic pseudo-random
// content (distinct per client and message) with the identity header in
// the first FanInHeaderBytes.
func (f FanIn) Payload(client, msg int) []byte {
	out := Payload(f.MessageBytes, byte(client*31+msg*7+1))
	binary.BigEndian.PutUint32(out[0:4], uint32(client))
	binary.BigEndian.PutUint32(out[4:8], uint32(msg))
	return out
}

// Verify checks a received payload byte for byte against what Payload
// would have produced for the identity in its header. ok is false on a
// short payload, an out-of-range identity, or any content mismatch.
func (f FanIn) Verify(data []byte) (client, msg int, ok bool) {
	if len(data) < FanInHeaderBytes {
		return 0, 0, false
	}
	client = int(binary.BigEndian.Uint32(data[0:4]))
	msg = int(binary.BigEndian.Uint32(data[4:8]))
	if client < 0 || client >= f.Clients || msg < 0 || msg >= f.Messages {
		return client, msg, false
	}
	if len(data) != f.MessageBytes {
		return client, msg, false
	}
	want := f.Payload(client, msg)
	if !bytes.Equal(data, want) {
		return client, msg, false
	}
	return client, msg, true
}
