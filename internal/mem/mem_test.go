package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	m := New(Config{})
	if m.PageSize() != 4096 {
		t.Errorf("PageSize = %d, want 4096", m.PageSize())
	}
	if m.Pages() != 4096 {
		t.Errorf("Pages = %d, want 4096", m.Pages())
	}
	if m.FreePages() != 4096 {
		t.Errorf("FreePages = %d, want 4096", m.FreePages())
	}
}

func TestNonPowerOfTwoPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for page size 3000")
		}
	}()
	New(Config{PageSize: 3000})
}

func TestAllocFreeFrame(t *testing.T) {
	m := New(Config{Pages: 8})
	seen := make(map[Frame]bool)
	var frames []Frame
	for i := 0; i < 8; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
		frames = append(frames, f)
	}
	if _, err := m.AllocFrame(); err == nil {
		t.Error("allocation beyond capacity succeeded")
	}
	for _, f := range frames {
		m.FreeFrame(f)
	}
	if m.FreePages() != 8 {
		t.Errorf("FreePages = %d after freeing all, want 8", m.FreePages())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := New(Config{Pages: 4})
	f, _ := m.AllocFrame()
	m.FreeFrame(f)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	m.FreeFrame(f)
}

func TestScrambledAllocationIsDiscontiguous(t *testing.T) {
	// The default allocator must usually hand out non-adjacent frames;
	// this is the premise of the §2.2 fragmentation analysis.
	m := New(Config{Pages: 1024, Seed: 7})
	adjacent := 0
	var prev Frame
	for i := 0; i < 100; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && (f == prev+1) {
			adjacent++
		}
		prev = f
	}
	if adjacent > 10 {
		t.Errorf("%d/99 consecutive allocations were physically adjacent; allocator not fragmenting", adjacent)
	}
}

func TestSequentialModeIsContiguous(t *testing.T) {
	m := New(Config{Pages: 64, Sequential: true})
	a, _ := m.AllocFrame()
	b, _ := m.AllocFrame()
	if b != a-1 && b != a+1 {
		t.Errorf("sequential mode allocated %d then %d", a, b)
	}
}

func TestAllocContiguous(t *testing.T) {
	m := New(Config{Pages: 64, Seed: 3})
	frames, err := m.AllocContiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i] != frames[i-1]+1 {
			t.Fatalf("frames %v not contiguous", frames)
		}
	}
	// Those frames must no longer be allocatable.
	got := make(map[Frame]bool)
	for {
		f, err := m.AllocFrame()
		if err != nil {
			break
		}
		got[f] = true
	}
	for _, f := range frames {
		if got[f] {
			t.Fatalf("contiguous frame %d handed out twice", f)
		}
	}
}

func TestAllocContiguousExhaustion(t *testing.T) {
	m := New(Config{Pages: 8, Sequential: true})
	// Allocate every other frame to break up all runs of 2+.
	var held []Frame
	for i := 0; i < 8; i++ {
		f, _ := m.AllocFrame()
		held = append(held, f)
	}
	for i, f := range held {
		if i%2 == 0 {
			m.FreeFrame(f)
		}
	}
	if _, err := m.AllocContiguous(2); err == nil {
		t.Error("AllocContiguous(2) succeeded with only isolated free frames")
	}
	if _, err := m.AllocContiguous(1); err != nil {
		t.Errorf("AllocContiguous(1): %v", err)
	}
}

func TestWireProtectsFromReclaim(t *testing.T) {
	m := New(Config{Pages: 4})
	f, _ := m.AllocFrame()
	m.Write(m.FrameAddr(f), []byte("precious"))
	m.Wire(f)
	if err := m.Reclaim(f); err == nil {
		t.Fatal("reclaimed a wired frame")
	}
	if string(m.Read(m.FrameAddr(f), 8)) != "precious" {
		t.Fatal("wired frame contents damaged")
	}
	m.Unwire(f)
	if err := m.Reclaim(f); err != nil {
		t.Fatalf("reclaim of unwired frame failed: %v", err)
	}
	if string(m.Read(m.FrameAddr(f), 8)) == "precious" {
		t.Fatal("reclaim did not scribble the frame")
	}
}

func TestWireCountNests(t *testing.T) {
	m := New(Config{Pages: 4})
	f, _ := m.AllocFrame()
	m.Wire(f)
	m.Wire(f)
	m.Unwire(f)
	if !m.Wired(f) {
		t.Error("frame unwired after one of two unwires")
	}
	m.Unwire(f)
	if m.Wired(f) {
		t.Error("frame still wired after balanced unwires")
	}
}

func TestUnwireUnwiredPanics(t *testing.T) {
	m := New(Config{Pages: 4})
	f, _ := m.AllocFrame()
	defer func() {
		if recover() == nil {
			t.Error("unwire of unwired frame did not panic")
		}
	}()
	m.Unwire(f)
}

func TestFreeingWiredFramePanics(t *testing.T) {
	m := New(Config{Pages: 4})
	f, _ := m.AllocFrame()
	m.Wire(f)
	defer func() {
		if recover() == nil {
			t.Error("freeing wired frame did not panic")
		}
	}()
	m.FreeFrame(f)
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Config{Pages: 4})
	data := []byte{1, 2, 3, 4, 5}
	m.Write(100, data)
	if !bytes.Equal(m.Read(100, 5), data) {
		t.Error("read != written")
	}
	var into [3]byte
	m.ReadInto(101, into[:])
	if !bytes.Equal(into[:], []byte{2, 3, 4}) {
		t.Errorf("ReadInto got %v", into)
	}
}

func TestWordAccess(t *testing.T) {
	m := New(Config{Pages: 1})
	m.WriteWord(8, 0xDEADBEEF)
	if got := m.ReadWord(8); got != 0xDEADBEEF {
		t.Errorf("ReadWord = %#x", got)
	}
	// Little-endian byte order.
	if b := m.Read(8, 4); !bytes.Equal(b, []byte{0xEF, 0xBE, 0xAD, 0xDE}) {
		t.Errorf("word bytes = %x", b)
	}
}

func TestUnalignedWordPanics(t *testing.T) {
	m := New(Config{Pages: 1})
	for _, fn := range []func(){
		func() { m.ReadWord(2) },
		func() { m.WriteWord(6, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned word access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := New(Config{Pages: 1, PageSize: 4096})
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds access did not panic")
		}
	}()
	m.Read(4090, 100)
}

func TestWordRoundTripQuick(t *testing.T) {
	m := New(Config{Pages: 1})
	f := func(v uint32, slot uint8) bool {
		a := PhysAddr(slot) * 4
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
