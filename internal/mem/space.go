package mem

import (
	"fmt"
	"sort"
)

// AddressSpace is one protection domain's page table: a mapping from
// virtual page numbers to physical frames. Contiguous virtual ranges
// map, in general, to scattered frames — the property at the heart of
// the paper's §2.2.
type AddressSpace struct {
	mem   *Memory
	name  string
	table map[uint32]Frame // vpn -> frame
	next  uint32           // next unassigned vpn for Alloc
}

// NewSpace returns an empty address space over m.
func (m *Memory) NewSpace(name string) *AddressSpace {
	return &AddressSpace{
		mem:   m,
		name:  name,
		table: make(map[uint32]Frame),
		next:  1, // leave virtual page 0 unmapped so address 0 faults
	}
}

// Name returns the space's name.
func (s *AddressSpace) Name() string { return s.name }

// Memory returns the physical memory backing the space.
func (s *AddressSpace) Memory() *Memory { return s.mem }

func (s *AddressSpace) pageSize() uint32 { return uint32(s.mem.pageSize) }

// Map installs frame f at virtual page vpn. Mapping over an existing
// entry is an error (unmap first); shared memory is expressed by mapping
// the same frame into several spaces.
func (s *AddressSpace) Map(vpn uint32, f Frame) error {
	if _, ok := s.table[vpn]; ok {
		return fmt.Errorf("mem: %s: vpn %d already mapped", s.name, vpn)
	}
	s.table[vpn] = f
	return nil
}

// Unmap removes the mapping at vpn and returns the frame that was there.
func (s *AddressSpace) Unmap(vpn uint32) (Frame, error) {
	f, ok := s.table[vpn]
	if !ok {
		return 0, fmt.Errorf("mem: %s: vpn %d not mapped", s.name, vpn)
	}
	delete(s.table, vpn)
	return f, nil
}

// Mapped reports whether vpn has a mapping and, if so, to which frame.
func (s *AddressSpace) Mapped(vpn uint32) (Frame, bool) {
	f, ok := s.table[vpn]
	return f, ok
}

// VPN returns the virtual page number containing va.
func (s *AddressSpace) VPN(va VirtAddr) uint32 { return uint32(va) / s.pageSize() }

// PageOffset returns va's offset within its page.
func (s *AddressSpace) PageOffset(va VirtAddr) uint32 { return uint32(va) % s.pageSize() }

// Base returns the first virtual address of page vpn.
func (s *AddressSpace) Base(vpn uint32) VirtAddr { return VirtAddr(vpn * s.pageSize()) }

// Translate returns the physical address for va, or an error if the page
// is unmapped (a simulated fault).
func (s *AddressSpace) Translate(va VirtAddr) (PhysAddr, error) {
	f, ok := s.table[s.VPN(va)]
	if !ok {
		return 0, fmt.Errorf("mem: %s: fault at va %#x", s.name, uint32(va))
	}
	return s.mem.FrameAddr(f) + PhysAddr(s.PageOffset(va)), nil
}

// Alloc allocates n bytes of virtually contiguous memory backed by
// freshly allocated (generally discontiguous) frames and returns the
// starting virtual address. Allocations are page-granular internally but
// the returned region is exactly n bytes for the caller's purposes.
func (s *AddressSpace) Alloc(n int) (VirtAddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: Alloc(%d)", n)
	}
	pages := (n + int(s.pageSize()) - 1) / int(s.pageSize())
	startVPN := s.next
	for i := 0; i < pages; i++ {
		f, err := s.mem.AllocFrame()
		if err != nil {
			// Roll back partial allocation.
			for j := 0; j < i; j++ {
				if fr, err2 := s.Unmap(startVPN + uint32(j)); err2 == nil {
					s.mem.FreeFrame(fr)
				}
			}
			return 0, err
		}
		if err := s.Map(startVPN+uint32(i), f); err != nil {
			s.mem.FreeFrame(f)
			return 0, err
		}
	}
	s.next += uint32(pages)
	return s.Base(startVPN), nil
}

// AllocAligned is Alloc but guarantees the returned address is page
// aligned *plus* the given byte offset, which the driver uses to arrange
// PDU buffers that end exactly at page boundaries (§2.5.2).
func (s *AddressSpace) AllocAligned(n int, offset int) (VirtAddr, error) {
	if offset < 0 || offset >= int(s.pageSize()) {
		return 0, fmt.Errorf("mem: AllocAligned offset %d outside page", offset)
	}
	total := n + offset
	va, err := s.Alloc(total)
	if err != nil {
		return 0, err
	}
	return va + VirtAddr(offset), nil
}

// MapFrames maps the given frames at fresh consecutive virtual pages
// and returns the base virtual address — used by drivers that allocate
// physically contiguous regions themselves and need them visible in a
// space.
func (s *AddressSpace) MapFrames(frames []Frame) (VirtAddr, error) {
	startVPN := s.next
	for i, f := range frames {
		if err := s.Map(startVPN+uint32(i), f); err != nil {
			return 0, err
		}
	}
	s.next += uint32(len(frames))
	return s.Base(startVPN), nil
}

// Free releases the pages fully covered by [va, va+n) that were
// allocated with Alloc, unmapping and freeing each frame.
func (s *AddressSpace) Free(va VirtAddr, n int) error {
	first := s.VPN(va)
	last := s.VPN(va + VirtAddr(n) - 1)
	for vpn := first; vpn <= last; vpn++ {
		f, err := s.Unmap(vpn)
		if err != nil {
			return err
		}
		s.mem.FreeFrame(f)
	}
	return nil
}

// ReadVirt copies n bytes starting at virtual address va, following the
// page table across page boundaries.
func (s *AddressSpace) ReadVirt(va VirtAddr, n int) ([]byte, error) {
	out := make([]byte, n)
	off := 0
	for n > 0 {
		pa, err := s.Translate(va)
		if err != nil {
			return nil, err
		}
		chunk := int(s.pageSize() - s.PageOffset(va))
		if chunk > n {
			chunk = n
		}
		s.mem.ReadInto(pa, out[off:off+chunk])
		off += chunk
		va += VirtAddr(chunk)
		n -= chunk
	}
	return out, nil
}

// WriteVirt copies src to virtual address va, following the page table
// across page boundaries.
func (s *AddressSpace) WriteVirt(va VirtAddr, src []byte) error {
	for len(src) > 0 {
		pa, err := s.Translate(va)
		if err != nil {
			return err
		}
		chunk := int(s.pageSize() - s.PageOffset(va))
		if chunk > len(src) {
			chunk = len(src)
		}
		s.mem.Write(pa, src[:chunk])
		va += VirtAddr(chunk)
		src = src[chunk:]
	}
	return nil
}

// PhysSegments decomposes the virtual range [va, va+n) into the minimal
// list of physically contiguous buffers, merging adjacent pages whose
// frames happen to be physically adjacent. This is exactly the
// computation the OSIRIS driver performs to build descriptor chains, and
// its output length is the "number of physical buffers" the paper's
// §2.2 analysis counts.
func (s *AddressSpace) PhysSegments(va VirtAddr, n int) ([]PhysBuffer, error) {
	return s.AppendPhysSegments(nil, va, n)
}

// AppendPhysSegments is PhysSegments appending to segs (merging with its
// final entry when the physical addresses abut), so per-PDU hot paths can
// reuse a scratch slice instead of allocating a fresh one per call.
func (s *AddressSpace) AppendPhysSegments(segs []PhysBuffer, va VirtAddr, n int) ([]PhysBuffer, error) {
	for n > 0 {
		pa, err := s.Translate(va)
		if err != nil {
			return nil, err
		}
		chunk := int(s.pageSize() - s.PageOffset(va))
		if chunk > n {
			chunk = n
		}
		if len(segs) > 0 && segs[len(segs)-1].End() == pa {
			segs[len(segs)-1].Len += chunk
		} else {
			segs = append(segs, PhysBuffer{Addr: pa, Len: chunk})
		}
		va += VirtAddr(chunk)
		n -= chunk
	}
	return segs, nil
}

// WireRange wires every frame backing [va, va+n).
func (s *AddressSpace) WireRange(va VirtAddr, n int) error {
	return s.eachFrame(va, n, func(f Frame) { s.mem.Wire(f) })
}

// UnwireRange unwires every frame backing [va, va+n).
func (s *AddressSpace) UnwireRange(va VirtAddr, n int) error {
	return s.eachFrame(va, n, func(f Frame) { s.mem.Unwire(f) })
}

func (s *AddressSpace) eachFrame(va VirtAddr, n int, fn func(Frame)) error {
	first := s.VPN(va)
	last := s.VPN(va + VirtAddr(n) - 1)
	for vpn := first; vpn <= last; vpn++ {
		f, ok := s.table[vpn]
		if !ok {
			return fmt.Errorf("mem: %s: vpn %d not mapped", s.name, vpn)
		}
		fn(f)
	}
	return nil
}

// MappedVPNs returns the sorted list of mapped virtual page numbers,
// mainly for tests and diagnostics.
func (s *AddressSpace) MappedVPNs() []uint32 {
	out := make([]uint32, 0, len(s.table))
	for vpn := range s.table {
		out = append(out, vpn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
