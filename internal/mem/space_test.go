package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newSpace(t *testing.T, pages int, seed int64) *AddressSpace {
	t.Helper()
	return New(Config{Pages: pages, Seed: seed}).NewSpace("test")
}

func TestAllocTranslateRoundTrip(t *testing.T) {
	s := newSpace(t, 64, 1)
	va, err := s.Alloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.PageOffset(va) != 0 {
		t.Errorf("Alloc returned unaligned va %#x", uint32(va))
	}
	for off := 0; off < 3*4096; off += 4096 {
		if _, err := s.Translate(va + VirtAddr(off)); err != nil {
			t.Errorf("Translate(+%d): %v", off, err)
		}
	}
}

func TestTranslateFaultOnUnmapped(t *testing.T) {
	s := newSpace(t, 8, 1)
	if _, err := s.Translate(0); err == nil {
		t.Error("address 0 did not fault")
	}
	if _, err := s.Translate(0xFFFF0000); err == nil {
		t.Error("wild address did not fault")
	}
}

func TestVirtReadWriteAcrossPages(t *testing.T) {
	s := newSpace(t, 64, 2)
	va, err := s.Alloc(2 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Write a pattern straddling the page boundary.
	pat := make([]byte, 100)
	for i := range pat {
		pat[i] = byte(i * 3)
	}
	start := va + 4096 - 50
	if err := s.WriteVirt(start, pat); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadVirt(start, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Error("cross-page read != written")
	}
	// The two halves live on (generally) discontiguous frames; verify via
	// physical addresses that the data really is in two places.
	pa1, _ := s.Translate(start)
	pa2, _ := s.Translate(va + 4096)
	if !bytes.Equal(s.Memory().Read(pa1, 50), pat[:50]) {
		t.Error("first physical half wrong")
	}
	if !bytes.Equal(s.Memory().Read(pa2, 50), pat[50:]) {
		t.Error("second physical half wrong")
	}
}

func TestPhysSegmentsCountsFragments(t *testing.T) {
	// With a scrambled allocator, an n-page virtual region should
	// decompose into ~n physical segments (§2.2's premise).
	s := newSpace(t, 1024, 3)
	va, err := s.Alloc(4 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := s.PhysSegments(va, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("4-page region decomposed into %d segments; allocator too contiguous for the test premise", len(segs))
	}
	total := 0
	for _, sg := range segs {
		total += sg.Len
	}
	if total != 4*4096 {
		t.Errorf("segments cover %d bytes, want %d", total, 4*4096)
	}
}

func TestPhysSegmentsMergesAdjacentFrames(t *testing.T) {
	m := New(Config{Pages: 16, Sequential: true})
	s := m.NewSpace("seq")
	va, err := s.Alloc(2 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := s.PhysSegments(va, 2*4096)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential allocator hands out adjacent frames... but in descending
	// or ascending order depending on free-list direction. Merging only
	// happens when ascending; just check coverage and monotone merge rule.
	total := 0
	for i, sg := range segs {
		total += sg.Len
		if i > 0 && segs[i-1].End() == sg.Addr {
			t.Error("adjacent segments were not merged")
		}
	}
	if total != 2*4096 {
		t.Errorf("segments cover %d bytes", total)
	}
}

func TestPhysSegmentsSubPage(t *testing.T) {
	s := newSpace(t, 16, 1)
	va, _ := s.Alloc(4096)
	segs, err := s.PhysSegments(va+100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Len != 200 {
		t.Errorf("segs = %+v, want one 200-byte segment", segs)
	}
}

func TestAllocAligned(t *testing.T) {
	s := newSpace(t, 64, 1)
	va, err := s.AllocAligned(1000, 96)
	if err != nil {
		t.Fatal(err)
	}
	if s.PageOffset(va) != 96 {
		t.Errorf("offset = %d, want 96", s.PageOffset(va))
	}
	if _, err := s.AllocAligned(10, 4096); err == nil {
		t.Error("offset >= page size accepted")
	}
}

func TestFreeReleasesFrames(t *testing.T) {
	m := New(Config{Pages: 8, Seed: 1})
	s := m.NewSpace("x")
	before := m.FreePages()
	va, err := s.Alloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != before-3 {
		t.Fatalf("FreePages = %d", m.FreePages())
	}
	if err := s.Free(va, 3*4096); err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != before {
		t.Errorf("FreePages = %d after Free, want %d", m.FreePages(), before)
	}
	if _, err := s.Translate(va); err == nil {
		t.Error("freed page still translates")
	}
}

func TestAllocRollbackOnExhaustion(t *testing.T) {
	m := New(Config{Pages: 2, Seed: 1})
	s := m.NewSpace("x")
	if _, err := s.Alloc(3 * 4096); err == nil {
		t.Fatal("overcommit succeeded")
	}
	if m.FreePages() != 2 {
		t.Errorf("rollback leaked frames: FreePages = %d, want 2", m.FreePages())
	}
}

func TestSharedMappingSeesSameBytes(t *testing.T) {
	m := New(Config{Pages: 8, Seed: 1})
	a := m.NewSpace("a")
	b := m.NewSpace("b")
	f, _ := m.AllocFrame()
	if err := a.Map(5, f); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(9, f); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteVirt(a.Base(5)+16, []byte("shared!")); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadVirt(b.Base(9)+16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared!" {
		t.Errorf("b sees %q", got)
	}
}

func TestDoubleMapRejected(t *testing.T) {
	m := New(Config{Pages: 8})
	s := m.NewSpace("x")
	f, _ := m.AllocFrame()
	if err := s.Map(3, f); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(3, f); err == nil {
		t.Error("double map accepted")
	}
	if _, err := s.Unmap(4); err == nil {
		t.Error("unmap of unmapped vpn accepted")
	}
}

func TestWireRange(t *testing.T) {
	m := New(Config{Pages: 16, Seed: 1})
	s := m.NewSpace("x")
	va, _ := s.Alloc(2 * 4096)
	if err := s.WireRange(va+10, 4097); err != nil { // spans both pages
		t.Fatal(err)
	}
	for _, vpn := range []uint32{s.VPN(va), s.VPN(va) + 1} {
		f, _ := s.Mapped(vpn)
		if !m.Wired(f) {
			t.Errorf("vpn %d not wired", vpn)
		}
	}
	if err := s.UnwireRange(va+10, 4097); err != nil {
		t.Fatal(err)
	}
	f, _ := s.Mapped(s.VPN(va))
	if m.Wired(f) {
		t.Error("frame still wired after UnwireRange")
	}
}

func TestMappedVPNsSorted(t *testing.T) {
	m := New(Config{Pages: 8})
	s := m.NewSpace("x")
	for _, vpn := range []uint32{9, 2, 5} {
		f, _ := m.AllocFrame()
		s.Map(vpn, f)
	}
	got := s.MappedVPNs()
	want := []uint32{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MappedVPNs = %v", got)
		}
	}
}

// Property: any data written to any in-range virtual span reads back
// identically, regardless of page straddling.
func TestVirtRoundTripQuick(t *testing.T) {
	s := New(Config{Pages: 64, Seed: 9}).NewSpace("q")
	va, err := s.Alloc(8 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, offSeed uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int(offSeed) % (8*4096 - len(data))
		if off < 0 {
			return true
		}
		if err := s.WriteVirt(va+VirtAddr(off), data); err != nil {
			return false
		}
		got, err := s.ReadVirt(va+VirtAddr(off), len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
