// Package mem models the host's main memory and virtual memory system.
//
// It provides the three properties the paper's driver engineering depends
// on (§2.2, §2.4):
//
//   - physical frames holding real bytes, addressed by physical address,
//     which simulated DMA engines read and write directly;
//   - a page-based virtual memory system whose allocator hands out
//     physically *non-contiguous* frames for contiguous virtual ranges —
//     the root cause of physical buffer fragmentation;
//   - page wiring (pinning), with reclamation refusing to touch wired
//     frames, so drivers must wire pages before queueing them for DMA.
package mem

import (
	"fmt"
	"math/rand"
)

// PhysAddr is a physical byte address.
type PhysAddr uint32

// VirtAddr is a virtual byte address within one address space.
type VirtAddr uint32

// Frame identifies a physical page frame.
type Frame uint32

// PhysBuffer describes a physically contiguous run of bytes — the unit
// of data exchanged between host driver software and the on-board
// processors (§2.2).
type PhysBuffer struct {
	Addr PhysAddr
	Len  int
}

// End returns the physical address one past the buffer.
func (b PhysBuffer) End() PhysAddr { return b.Addr + PhysAddr(b.Len) }

// Memory is the host's physical memory.
type Memory struct {
	pageSize int
	data     []byte
	wired    []int  // wire count per frame
	owned    []bool // frame currently allocated
	free     []Frame
	rng      *rand.Rand
	scramble bool
	inFree   []bool // scratch for AllocContiguous's free-run scan
}

// Config configures a Memory.
type Config struct {
	PageSize int   // bytes per page frame (default 4096)
	Pages    int   // number of frames (default 4096 → 16 MB at 4 KB pages)
	Seed     int64 // seed for the fragmenting allocation order
	// Sequential disables free-list scrambling, so successive allocations
	// tend to be physically contiguous. Real systems approach this state
	// only right after boot; the default (false) models the steady-state
	// fragmented free list that §2.2 describes.
	Sequential bool
}

// New returns a Memory configured by cfg.
func New(cfg Config) *Memory {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.Pages == 0 {
		cfg.Pages = 4096
	}
	if cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic("mem: page size must be a power of two")
	}
	m := &Memory{
		pageSize: cfg.PageSize,
		data:     make([]byte, cfg.PageSize*cfg.Pages),
		wired:    make([]int, cfg.Pages),
		owned:    make([]bool, cfg.Pages),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		scramble: !cfg.Sequential,
	}
	m.free = make([]Frame, cfg.Pages)
	for i := range m.free {
		m.free[i] = Frame(i)
	}
	if m.scramble {
		m.rng.Shuffle(len(m.free), func(i, j int) { m.free[i], m.free[j] = m.free[j], m.free[i] })
	}
	return m
}

// PageSize returns the frame size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// Pages returns the total number of frames.
func (m *Memory) Pages() int { return len(m.wired) }

// FreePages returns the number of unallocated frames.
func (m *Memory) FreePages() int { return len(m.free) }

// FrameAddr returns the physical address of the first byte of f.
func (m *Memory) FrameAddr(f Frame) PhysAddr { return PhysAddr(int(f) * m.pageSize) }

// FrameOf returns the frame containing physical address a.
func (m *Memory) FrameOf(a PhysAddr) Frame { return Frame(int(a) / m.pageSize) }

// AllocFrame allocates one frame. The allocation order is deliberately
// scrambled (unless configured Sequential) so that frames backing a
// contiguous virtual range are rarely physically adjacent.
func (m *Memory) AllocFrame() (Frame, error) {
	if len(m.free) == 0 {
		return 0, fmt.Errorf("mem: out of physical memory")
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.owned[f] = true
	return f, nil
}

// AllocContiguous makes a best-effort attempt to allocate n physically
// contiguous frames (the OS support the paper reports experimenting with
// in §2.2). It scans the free set for the lowest-addressed run of n free
// frames; if none exists it fails rather than falling back, so callers
// can implement their own fallback policy.
func (m *Memory) AllocContiguous(n int) ([]Frame, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mem: AllocContiguous(%d)", n)
	}
	if m.inFree == nil {
		m.inFree = make([]bool, m.Pages())
	} else {
		for i := range m.inFree {
			m.inFree[i] = false
		}
	}
	for _, f := range m.free {
		m.inFree[f] = true
	}
	run := 0
	for i := 0; i < m.Pages(); i++ {
		if m.inFree[i] {
			run++
		} else {
			run = 0
		}
		if run == n {
			start := i - n + 1
			frames := make([]Frame, n)
			for j := 0; j < n; j++ {
				frames[j] = Frame(start + j)
			}
			m.removeRun(Frame(start), n)
			for _, f := range frames {
				m.owned[f] = true
			}
			return frames, nil
		}
	}
	return nil, fmt.Errorf("mem: no run of %d contiguous free frames", n)
}

// removeRun drops the contiguous frames [start, start+n) from the free
// list, preserving the order of the survivors.
func (m *Memory) removeRun(start Frame, n int) {
	end := start + Frame(n)
	kept := m.free[:0]
	for _, f := range m.free {
		if f < start || f >= end {
			kept = append(kept, f)
		}
	}
	m.free = kept
}

// FreeFrame returns f to the free list. Freeing a wired frame panics:
// it is a driver bug the simulation should surface loudly.
func (m *Memory) FreeFrame(f Frame) {
	if !m.owned[f] {
		panic(fmt.Sprintf("mem: double free of frame %d", f))
	}
	if m.wired[f] > 0 {
		panic(fmt.Sprintf("mem: freeing wired frame %d", f))
	}
	m.owned[f] = false
	if m.scramble && len(m.free) > 0 {
		// Insert at a random position to keep the free list fragmented.
		i := m.rng.Intn(len(m.free) + 1)
		m.free = append(m.free, 0)
		copy(m.free[i+1:], m.free[i:])
		m.free[i] = f
	} else {
		m.free = append(m.free, f)
	}
}

// Wire increments the wire count of the frame containing a. A wired
// frame is ineligible for reclamation by the paging daemon (§2.4).
func (m *Memory) Wire(f Frame) { m.wired[f]++ }

// Unwire decrements the wire count of frame f.
func (m *Memory) Unwire(f Frame) {
	if m.wired[f] == 0 {
		panic(fmt.Sprintf("mem: unwire of unwired frame %d", f))
	}
	m.wired[f]--
}

// Wired reports whether frame f has a non-zero wire count.
func (m *Memory) Wired(f Frame) bool { return m.wired[f] > 0 }

// Reclaim simulates the paging daemon evicting a frame. It fails on a
// wired frame; on an unwired frame it scribbles over the contents
// (making any DMA into it detectable as corruption in tests).
func (m *Memory) Reclaim(f Frame) error {
	if m.wired[f] > 0 {
		return fmt.Errorf("mem: frame %d is wired", f)
	}
	start := int(f) * m.pageSize
	for i := 0; i < m.pageSize; i++ {
		m.data[start+i] = 0xDE
	}
	return nil
}

func (m *Memory) check(a PhysAddr, n int) {
	if int(a)+n > len(m.data) {
		panic(fmt.Sprintf("mem: access [%d,%d) beyond physical memory size %d", a, int(a)+n, len(m.data)))
	}
}

// Read copies n bytes starting at physical address a.
func (m *Memory) Read(a PhysAddr, n int) []byte {
	m.check(a, n)
	out := make([]byte, n)
	copy(out, m.data[a:int(a)+n])
	return out
}

// ReadInto copies len(dst) bytes starting at physical address a into dst.
func (m *Memory) ReadInto(a PhysAddr, dst []byte) {
	m.check(a, len(dst))
	copy(dst, m.data[a:int(a)+len(dst)])
}

// Write copies src to physical memory starting at a.
func (m *Memory) Write(a PhysAddr, src []byte) {
	m.check(a, len(src))
	copy(m.data[a:int(a)+len(src)], src)
}

// ReadWord returns the 32-bit little-endian word at a (which must be
// word-aligned). Word operations are the unit of atomicity the dual-port
// memory guarantees, so the queue code uses them exclusively.
func (m *Memory) ReadWord(a PhysAddr) uint32 {
	m.check(a, 4)
	if a%4 != 0 {
		panic(fmt.Sprintf("mem: unaligned word read at %d", a))
	}
	d := m.data[a : a+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

// WriteWord stores a 32-bit little-endian word at word-aligned address a.
func (m *Memory) WriteWord(a PhysAddr, v uint32) {
	m.check(a, 4)
	if a%4 != 0 {
		panic(fmt.Sprintf("mem: unaligned word write at %d", a))
	}
	m.data[a] = byte(v)
	m.data[a+1] = byte(v >> 8)
	m.data[a+2] = byte(v >> 16)
	m.data[a+3] = byte(v >> 24)
}
