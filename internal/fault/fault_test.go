package fault

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNilAndZeroConfigInjectNothing(t *testing.T) {
	e := sim.NewEngine(1)
	if inj := New(e, "a", nil); inj != nil {
		t.Fatalf("nil config produced an injector")
	}
	if inj := New(e, "a", &Config{}); inj != nil {
		t.Fatalf("zero config produced an injector")
	}
	var inj *Injector
	act := inj.Apply(0)
	if act.Drop || act.Duplicate || act.Delay != 0 || act.CorruptBit != -1 {
		t.Fatalf("nil injector acted: %+v", act)
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector has stats: %+v", s)
	}
}

func TestBernoulliRateAndDeterminism(t *testing.T) {
	cfg := &Config{Loss: Bernoulli{P: 0.1}}
	run := func() (dropped int64, seq []bool) {
		e := sim.NewEngine(42)
		inj := New(e, "link", cfg)
		for i := 0; i < 10000; i++ {
			seq = append(seq, inj.Apply(sim.Time(i)).Drop)
		}
		return inj.Stats().Dropped, seq
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 {
		t.Fatalf("drop count not deterministic: %d vs %d", d1, d2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("drop sequence diverges at cell %d", i)
		}
	}
	if d1 < 800 || d1 > 1200 {
		t.Errorf("Bernoulli(0.1) dropped %d/10000, far from 1000", d1)
	}
}

func TestDistinctSitesDistinctStreams(t *testing.T) {
	e := sim.NewEngine(42)
	cfg := &Config{Loss: Bernoulli{P: 0.5}}
	a := New(e, "siteA", cfg)
	b := New(e, "siteB", cfg)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Apply(0).Drop == b.Apply(0).Drop {
			same++
		}
	}
	if same == 1000 {
		t.Errorf("siteA and siteB produced identical drop sequences")
	}
}

func TestGilbertElliottBurstsAndMean(t *testing.T) {
	mean, burst := 0.01, 8.0
	g := BurstLoss(mean, burst)
	if got := g.MeanLoss(); got < mean*0.999 || got > mean*1.001 {
		t.Fatalf("BurstLoss mean = %v, want %v", got, mean)
	}
	e := sim.NewEngine(7)
	inj := New(e, "ge", &Config{Loss: g})
	const n = 400000
	dropped, bursts := 0, 0
	inBurst := false
	for i := 0; i < n; i++ {
		if inj.Apply(0).Drop {
			dropped++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	rate := float64(dropped) / n
	if rate < mean/2 || rate > mean*2 {
		t.Errorf("empirical loss %v far from configured mean %v", rate, mean)
	}
	if bursts == 0 {
		t.Fatalf("no loss bursts observed")
	}
	meanBurst := float64(dropped) / float64(bursts)
	// Consecutive losses per visit to Bad: geometric with mean ~burst.
	if meanBurst < burst/2 || meanBurst > burst*2 {
		t.Errorf("mean burst length %v far from configured %v", meanBurst, burst)
	}
}

func TestDownWindow(t *testing.T) {
	e := sim.NewEngine(1)
	inj := New(e, "dw", &Config{Down: []Window{{From: 100, To: 200}}})
	if inj.Apply(99).Drop {
		t.Errorf("dropped before window")
	}
	if !inj.Apply(100).Drop || !inj.Apply(199).Drop {
		t.Errorf("window [100,200) did not drop")
	}
	if inj.Apply(200).Drop {
		t.Errorf("dropped at window end (half-open)")
	}
	if s := inj.Stats(); s.DownDropped != 2 || s.Dropped != 0 {
		t.Errorf("stats = %+v, want DownDropped=2", s)
	}
}

func TestCorruptDupReorderDraws(t *testing.T) {
	e := sim.NewEngine(3)
	inj := New(e, "mix", &Config{
		CorruptProb: 0.5,
		DupProb:     0.5,
		ReorderProb: 0.5,
		ReorderMax:  10 * time.Microsecond,
	})
	var corrupted, duplicated, reordered int
	for i := 0; i < 2000; i++ {
		act := inj.Apply(0)
		if act.Drop {
			t.Fatalf("dropped with no loss model")
		}
		if act.CorruptBit >= 0 {
			corrupted++
			if act.CorruptBit >= MaxPayloadBits {
				t.Fatalf("corrupt bit %d out of range", act.CorruptBit)
			}
		}
		if act.Duplicate {
			duplicated++
		}
		if act.Delay > 0 {
			reordered++
			if act.Delay > 10*time.Microsecond {
				t.Fatalf("reorder delay %v exceeds max", act.Delay)
			}
		}
	}
	for name, n := range map[string]int{"corrupted": corrupted, "duplicated": duplicated, "reordered": reordered} {
		if n < 700 || n > 1300 {
			t.Errorf("%s = %d/2000, far from 1000", name, n)
		}
	}
	s := inj.Stats()
	if s.Cells != 2000 || s.Corrupted != int64(corrupted) || s.Duplicated != int64(duplicated) {
		t.Errorf("stats inconsistent: %+v", s)
	}
}
