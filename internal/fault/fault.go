// Package fault is the deterministic fault-injection plane.
//
// The paper's premise is that "the underlying network is not reliable"
// (§2.3): real OSIRIS deployments saw skew, cell loss, and flaky links,
// and the adaptor software had to survive them. This package models the
// unreliability systematically: an Injector sits on a cell path — a
// physical link, a switch output port, or a board's receive FIFO — and
// decides, per cell, whether to drop, corrupt, duplicate, or delay it,
// or to black-hole it during a scheduled link-down window.
//
// Determinism is the design center. Every injector draws from its own
// pseudo-random stream derived from (engine seed, site name) via
// sim.Engine.DeriveRand, so:
//
//   - a fixed seed reproduces every fault decision bit for bit;
//   - injectors never consume the engine's main RNG, so enabling fault
//     injection at one site does not perturb the timing draws (skew,
//     legacy LossRate) the calibrated experiments depend on;
//   - adding an injection site never shifts another site's stream.
//
// Loss is pluggable: Bernoulli reproduces the legacy i.i.d. LossRate
// coin flip, while GilbertElliott models the bursty loss that switch
// queue overruns and marginal optics actually produce — the regime the
// reassembly timeouts and RDP backoff are designed to degrade
// gracefully under.
package fault

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// MaxPayloadBits is the domain the corruption bit index is drawn from:
// a full ATM cell payload. Callers reduce the drawn index modulo the
// actual payload length, so partial cells corrupt uniformly too.
const MaxPayloadBits = 44 * 8

// Window is a half-open interval of virtual time [From, To) during
// which the faulted element is down: every cell crossing it is lost.
type Window struct {
	From sim.Time
	To   sim.Time
}

// Config describes the fault mix for one injection site. The zero value
// injects nothing. One Config may be shared (read-only) by many
// injectors; each injector keeps its own RNG stream and loss state.
type Config struct {
	// Loss selects the loss process (nil means no loss).
	Loss LossModel
	// CorruptProb is the per-cell probability of flipping one uniformly
	// chosen payload bit — the error the AAL5 CRC exists to catch.
	CorruptProb float64
	// DupProb is the per-cell probability of delivering the cell twice.
	DupProb float64
	// ReorderProb is the per-cell probability of delaying the cell by a
	// uniform extra delay in [0, ReorderMax], letting later cells on the
	// same path overtake it (bounded reordering).
	ReorderProb float64
	// ReorderMax bounds the reordering delay.
	ReorderMax time.Duration
	// Down lists scheduled outage windows for this site.
	Down []Window
}

// enabled reports whether the config can ever inject anything.
func (c *Config) enabled() bool {
	if c == nil {
		return false
	}
	return c.Loss != nil || c.CorruptProb > 0 || c.DupProb > 0 ||
		c.ReorderProb > 0 || len(c.Down) > 0
}

// Action is the injector's verdict for one cell. The zero Action (with
// CorruptBit -1) passes the cell through untouched.
type Action struct {
	// Drop discards the cell (loss or down-window).
	Drop bool
	// Duplicate delivers a second copy immediately behind the original.
	Duplicate bool
	// CorruptBit is the payload bit index to flip, or -1 for none.
	// Callers reduce it modulo the cell's actual payload bit count.
	CorruptBit int
	// Delay is extra delivery delay applied after any in-order
	// commitment, so a delayed cell may be overtaken (reordering).
	Delay time.Duration
}

// Stats counts one injector's decisions. Cells counts every cell
// offered; the per-cause counters are not exclusive (a cell can be both
// corrupted and duplicated).
type Stats struct {
	Cells       int64
	Dropped     int64 // lost by the loss model
	DownDropped int64 // lost inside a down window
	Corrupted   int64
	Duplicated  int64
	Reordered   int64
}

// Add accumulates other into s (for aggregating across sites).
func (s *Stats) Add(other Stats) {
	s.Cells += other.Cells
	s.Dropped += other.Dropped
	s.DownDropped += other.DownDropped
	s.Corrupted += other.Corrupted
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
}

// LossModel is a per-cell loss process. start returns a fresh state
// machine so one shared Config can serve many independent sites.
type LossModel interface {
	start() lossState
}

type lossState interface {
	// lose advances the process one cell and reports whether that cell
	// is lost. It must draw from rng deterministically.
	lose(rng *rand.Rand) bool
}

// Bernoulli is i.i.d. per-cell loss with probability P — the legacy
// LossRate model, expressed as a LossModel.
type Bernoulli struct {
	P float64
}

func (b Bernoulli) start() lossState { return bernState{p: b.P} }

type bernState struct{ p float64 }

func (s bernState) lose(rng *rand.Rand) bool {
	return s.p > 0 && rng.Float64() < s.p
}

// GilbertElliott is the classic two-state burst-loss channel: a Good
// and a Bad state with per-cell transition probabilities and a loss
// probability in each state. With LossBad near 1 it produces the loss
// bursts that FIFO queue overruns generate (cf. the queue-management
// drop-policy literature in PAPERS.md), which stress reassembly very
// differently from i.i.d. loss: a burst takes out adjacent cells of
// the same PDU, including its Last cell and trailer.
type GilbertElliott struct {
	PGoodBad float64 // per-cell P(Good → Bad)
	PBadGood float64 // per-cell P(Bad → Good)
	LossGood float64 // per-cell loss probability in Good
	LossBad  float64 // per-cell loss probability in Bad
}

// MeanLoss returns the stationary cell-loss probability of the chain.
func (g GilbertElliott) MeanLoss() float64 {
	den := g.PGoodBad + g.PBadGood
	if den <= 0 {
		return g.LossGood
	}
	pBad := g.PGoodBad / den
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// BurstLoss parameterizes a Gilbert–Elliott channel from its mean loss
// rate and mean burst length (cells lost per burst): the Bad state
// always loses (LossBad = 1), the Good state never does, the Bad-state
// sojourn is geometric with the given mean, and the Good→Bad rate is
// solved so the stationary loss equals mean.
func BurstLoss(mean, burstLen float64) GilbertElliott {
	if burstLen < 1 {
		burstLen = 1
	}
	if mean <= 0 {
		return GilbertElliott{PBadGood: 1}
	}
	if mean >= 1 {
		return GilbertElliott{PGoodBad: 1, LossBad: 1}
	}
	pBG := 1 / burstLen
	return GilbertElliott{
		PGoodBad: pBG * mean / (1 - mean),
		PBadGood: pBG,
		LossBad:  1,
	}
}

func (g GilbertElliott) start() lossState { return &geState{g: g} }

type geState struct {
	g   GilbertElliott
	bad bool
}

func (s *geState) lose(rng *rand.Rand) bool {
	// One transition draw per cell, always, so the stream is a fixed
	// function of the cell index regardless of outcomes.
	t := rng.Float64()
	if s.bad {
		if t < s.g.PBadGood {
			s.bad = false
		}
	} else {
		if t < s.g.PGoodBad {
			s.bad = true
		}
	}
	p := s.g.LossGood
	if s.bad {
		p = s.g.LossBad
	}
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// Injector applies a Config to one cell path. A nil *Injector is valid
// and injects nothing — call sites hold one unconditionally and skip
// all cost when fault injection is off.
type Injector struct {
	cfg   *Config
	rng   *rand.Rand
	loss  lossState
	stats Stats
}

// New builds an injector for the given site, or returns nil when cfg
// injects nothing. The site name keys the injector's private RNG
// stream; distinct sites must use distinct names.
func New(e *sim.Engine, site string, cfg *Config) *Injector {
	if !cfg.enabled() {
		return nil
	}
	inj := &Injector{cfg: cfg, rng: e.DeriveRand("fault/" + site)}
	if cfg.Loss != nil {
		inj.loss = cfg.Loss.start()
	}
	return inj
}

// Apply decides the fate of one cell crossing the site at instant now.
// Safe on a nil receiver (pass-through).
func (inj *Injector) Apply(now sim.Time) Action {
	act := Action{CorruptBit: -1}
	if inj == nil {
		return act
	}
	inj.stats.Cells++
	for _, w := range inj.cfg.Down {
		if now >= w.From && now < w.To {
			inj.stats.DownDropped++
			act.Drop = true
			return act
		}
	}
	if inj.loss != nil && inj.loss.lose(inj.rng) {
		inj.stats.Dropped++
		act.Drop = true
		return act
	}
	if inj.cfg.CorruptProb > 0 && inj.rng.Float64() < inj.cfg.CorruptProb {
		act.CorruptBit = inj.rng.Intn(MaxPayloadBits)
		inj.stats.Corrupted++
	}
	if inj.cfg.DupProb > 0 && inj.rng.Float64() < inj.cfg.DupProb {
		act.Duplicate = true
		inj.stats.Duplicated++
	}
	if inj.cfg.ReorderProb > 0 && inj.rng.Float64() < inj.cfg.ReorderProb {
		act.Delay = time.Duration(inj.rng.Int63n(int64(inj.cfg.ReorderMax) + 1))
		inj.stats.Reordered++
	}
	return act
}

// Stats returns a snapshot of the injector's counters. Safe on a nil
// receiver (all zero). The Link.Stats snapshot discipline applies: read
// between engine steps.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return inj.stats
}
