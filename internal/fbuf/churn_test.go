package fbuf

import (
	"math/rand"
	"testing"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/sim"
)

// TestEvictionOrderIsLRU touches paths in a known order past the pool
// budget and checks that exactly the least recently used path falls
// out each time.
func TestEvictionOrderIsLRU(t *testing.T) {
	e, h, _ := newRig()
	m := NewManager(h, 4)
	dom := NewDomain(h, "drv")
	e.Go("t", func(p *sim.Proc) {
		for v := atm.VCI(1); v <= 4; v++ {
			if err := m.DefinePath(p, v, []*Domain{dom}, 1, 4096); err != nil {
				t.Fatal(err)
			}
		}
		// Recency now 4 > 3 > 2 > 1. Touch 1, making 2 the LRU.
		f, err := m.Alloc(p, 1, dom, 4096)
		if err != nil {
			t.Fatal(err)
		}
		m.Free(f)
		if err := m.DefinePath(p, 5, []*Domain{dom}, 1, 4096); err != nil {
			t.Fatal(err)
		}
		if m.CachedPaths() != 4 {
			t.Fatalf("cached paths = %d, want 4", m.CachedPaths())
		}
		for v := atm.VCI(1); v <= 5; v++ {
			_, live := m.pools[v]
			if live == (v == 2) {
				t.Fatalf("after eviction, path %d live=%v", v, live)
			}
		}
		// Next definition must evict 3, the tail after 2 left.
		if err := m.DefinePath(p, 6, []*Domain{dom}, 1, 4096); err != nil {
			t.Fatal(err)
		}
		if _, live := m.pools[3]; live {
			t.Fatal("path 3 survived; eviction order is not LRU")
		}
		if got := m.Stats().PathEvictions; got != 2 {
			t.Fatalf("evictions = %d, want 2", got)
		}
	})
	e.Run()
}

// TestDemotionUnmapsConsumers evicts a path whose fbuf is mapped into
// a consumer domain and proves the stale mapping is gone: the consumer
// read faults instead of seeing recycled memory. The producer mapping
// survives, as an uncached fbuf still needs its origin.
func TestDemotionUnmapsConsumers(t *testing.T) {
	e, h, _ := newRig()
	m := NewManager(h, 1)
	drv := NewDomain(h, "drv")
	app := NewDomain(h, "app")
	e.Go("t", func(p *sim.Proc) {
		if err := m.DefinePath(p, 7, []*Domain{drv, app}, 1, 4096); err != nil {
			t.Fatal(err)
		}
		f, err := m.Alloc(p, 7, drv, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Write(drv, 0, []byte("secret")); err != nil {
			t.Fatal(err)
		}
		m.Free(f) // back in the pool, still mapped in both domains
		if err := m.DefinePath(p, 8, []*Domain{drv}, 1, 4096); err != nil {
			t.Fatal(err) // capacity 1: evicts path 7, demoting f
		}
		if f.Cached() {
			t.Fatal("evicted path's fbuf still cached")
		}
		if f.MappedIn(app) {
			t.Fatal("demotion left the consumer mapping")
		}
		if _, err := f.Read(app, 0, 6); err == nil {
			t.Fatal("stale consumer mapping readable after demotion")
		}
		if !f.MappedIn(drv) {
			t.Fatal("demotion removed the producer mapping")
		}
		if got := m.Stats().Demotions; got != 1 {
			t.Fatalf("demotions = %d, want 1", got)
		}
		if m.Stats().PagesUnmapped == 0 {
			t.Fatal("no pages unmapped by demotion")
		}
	})
	e.Run()
}

// TestOutstandingFbufDemotesAtFree evicts a path while its fbuf is in
// flight: the fbuf must keep working (it is still mapped) and demote
// only when freed.
func TestOutstandingFbufDemotesAtFree(t *testing.T) {
	e, h, _ := newRig()
	m := NewManager(h, 1)
	drv := NewDomain(h, "drv")
	app := NewDomain(h, "app")
	e.Go("t", func(p *sim.Proc) {
		if err := m.DefinePath(p, 7, []*Domain{drv, app}, 1, 4096); err != nil {
			t.Fatal(err)
		}
		f, err := m.Alloc(p, 7, drv, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DefinePath(p, 8, []*Domain{drv}, 1, 4096); err != nil {
			t.Fatal(err) // evicts path 7 with f outstanding
		}
		// In flight across the eviction: both mappings still live.
		if err := f.Write(drv, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Read(app, 0, 1); err != nil {
			t.Fatal(err)
		}
		m.Free(f)
		if f.Cached() || f.MappedIn(app) {
			t.Fatal("outstanding fbuf did not demote at Free")
		}
	})
	e.Run()
}

// TestUndefinePathReclaims closes a path and checks every page comes
// back: pooled fbufs immediately, outstanding ones at Free.
func TestUndefinePathReclaims(t *testing.T) {
	e, h, _ := newRig()
	m := NewManager(h, 0)
	drv := NewDomain(h, "drv")
	app := NewDomain(h, "app")
	e.Go("t", func(p *sim.Proc) {
		free0 := h.Mem.FreePages()
		if err := m.DefinePath(p, 7, []*Domain{drv, app}, 4, 8192); err != nil {
			t.Fatal(err)
		}
		f, err := m.Alloc(p, 7, drv, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.UndefinePath(p, 7); err != nil {
			t.Fatal(err)
		}
		if m.CachedPaths() != 0 {
			t.Fatal("undefined path still cached")
		}
		if err := m.UndefinePath(p, 7); err == nil {
			t.Fatal("double undefine succeeded")
		}
		m.Free(f) // the outstanding fbuf is destroyed here
		if got := h.Mem.FreePages(); got != free0 {
			t.Fatalf("undefine leaked %d pages", free0-got)
		}
	})
	e.Run()
}

// FuzzFbufChurn drives a seeded random open/alloc/free/close/evict
// storm and asserts the two invariants that matter under churn: no
// leaked frames (every page returns once all paths close and fbufs
// free) and no double unmaps (unmapFrom panics on one).
func FuzzFbufChurn(f *testing.F) {
	f.Add(int64(1), uint(300))
	f.Add(int64(0x0514), uint(1000))
	f.Add(int64(42), uint(50))
	f.Fuzz(func(t *testing.T, seed int64, steps uint) {
		if steps > 2000 {
			steps = 2000
		}
		e := sim.NewEngine(9)
		h := hostsim.New(e, hostsim.DEC5000_200(), 2048)
		m := NewManager(h, 4)
		doms := []*Domain{NewDomain(h, "drv"), NewDomain(h, "srv"), NewDomain(h, "app")}
		rng := rand.New(rand.NewSource(seed))
		e.Go("churn", func(p *sim.Proc) {
			free0 := h.Mem.FreePages()
			var out []*Fbuf
			for i := uint(0); i < steps; i++ {
				v := atm.VCI(1 + rng.Intn(8))
				_, live := m.pools[v]
				switch rng.Intn(5) {
				case 0:
					if !live {
						nd := 1 + rng.Intn(len(doms))
						if err := m.DefinePath(p, v, doms[:nd], 1+rng.Intn(3), 4096); err != nil {
							t.Fatal(err)
						}
					}
				case 1:
					if live {
						if err := m.UndefinePath(p, v); err != nil {
							t.Fatal(err)
						}
					}
				case 2, 3:
					fb, err := m.Alloc(p, v, doms[0], 4096)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, fb)
				case 4:
					if n := len(out); n > 0 {
						i := rng.Intn(n)
						m.Free(out[i])
						out[i] = out[n-1]
						out = out[:n-1]
					}
				}
				if m.CachedPaths() > 4 {
					t.Fatal("capacity exceeded")
				}
			}
			// Drain: close every path, free every fbuf, and all frames
			// must come home. Uncached fbufs hold frames by design, so
			// destroy them through a final undefine-everything sweep.
			for v := atm.VCI(1); v <= 8; v++ {
				if _, live := m.pools[v]; live {
					if err := m.UndefinePath(p, v); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, fb := range out {
				m.Free(fb)
			}
			for _, fb := range m.uncached {
				m.destroy(fb)
			}
			m.uncached = nil
			if got := h.Mem.FreePages(); got != free0 {
				t.Fatalf("churn leaked %d pages (seed=%d steps=%d)", free0-got, seed, steps)
			}
		})
		e.Run()
	})
}
