package fbuf

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
)

// PathChannel is the §3.1 driver strategy realized end to end: a
// dedicated board queue-page channel whose receive buffers are cached
// fbufs, pre-mapped into every protection domain of one data path.
// Because the adaptor demultiplexes on the VCI before storing anything,
// each incoming PDU is DMA'd directly into memory that the device
// driver, any intermediate servers, and the application can already
// see — the cross-domain transfers that remain are reference hand-offs.
type PathChannel struct {
	VCI     atm.VCI
	Domains []*Domain
	drv     *driver.Driver
	mgr     *Manager
	byFrame map[mem.Frame]*Fbuf
	handler func(p *sim.Proc, f *Fbuf, off, n int)
	// Stats.
	Delivered int64
}

// ProvisionPath builds a PathChannel on board channel index idx for the
// given VCI: it allocates count physically contiguous fbufs of size
// bufBytes, maps them into every domain in the chain (connection-setup
// cost, charged to p), authorizes exactly those pages with the board,
// and starts a channel driver whose receive pool is those fbufs.
//
// Each delivered PDU must fit one buffer (bufBytes ≥ the path's largest
// PDU); the handler sees the fbuf plus the PDU's extent within it and
// may read through any domain in the chain.
func ProvisionPath(p *sim.Proc, h *hostsim.Host, b *board.Board, mgr *Manager,
	idx int, vci atm.VCI, domains []*Domain, count, bufBytes int) (*PathChannel, error) {
	if len(domains) == 0 {
		return nil, fmt.Errorf("fbuf: path needs at least one domain")
	}
	ps := h.Mem.PageSize()
	pages := (bufBytes + ps - 1) / ps

	pc := &PathChannel{
		VCI:     vci,
		Domains: domains,
		mgr:     mgr,
		byFrame: make(map[mem.Frame]*Fbuf),
	}
	var runs [][]mem.Frame
	var allowed []mem.Frame
	for i := 0; i < count; i++ {
		frames, err := h.Mem.AllocContiguous(pages)
		if err != nil {
			return nil, fmt.Errorf("fbuf: contiguous fbuf allocation: %w", err)
		}
		f := &Fbuf{
			mgr:    mgr,
			frames: frames,
			size:   pages * ps,
			vas:    make(map[*Domain]mem.VirtAddr),
			cached: true,
			path:   vci,
		}
		for _, d := range domains {
			va, err := d.Space.MapFrames(frames)
			if err != nil {
				return nil, err
			}
			f.vas[d] = va
			h.Compute(p, profMapCost(h, pages))
		}
		for _, fr := range frames {
			pc.byFrame[fr] = f
		}
		runs = append(runs, frames)
		allowed = append(allowed, frames...)
	}

	b.OpenChannel(idx, 1, allowed)
	b.BindVCI(vci, idx)
	reserve := count / 4
	if reserve == 0 {
		reserve = 1
	}
	pc.drv = driver.New(p.Engine(), h, b, driver.Config{
		ChannelIndex: idx,
		Space:        domains[0].Space,
		BufferFrames: runs,
		ReserveBufs:  reserve,
		Cache:        driver.CacheNone,
	})
	pc.drv.OpenPath(vci, pc.deliver)
	return pc, nil
}

func profMapCost(h *hostsim.Host, pages int) time.Duration {
	return time.Duration(pages) * h.Prof.FbufMapPerPage
}

// SetHandler installs the per-PDU consumer. The fbuf's contents are
// valid until the buffer cycles back through the free ring, i.e. the
// consumer should finish (or hand the reference on) before returning.
func (pc *PathChannel) SetHandler(fn func(p *sim.Proc, f *Fbuf, off, n int)) {
	pc.handler = fn
}

// Driver exposes the underlying channel driver.
func (pc *PathChannel) Driver() *driver.Driver { return pc.drv }

// deliver maps the driver's buffer view back to its fbuf and invokes the
// consumer: zero copies, zero page mappings on the data path.
func (pc *PathChannel) deliver(p *sim.Proc, m *msg.Message) {
	segs, err := m.PhysSegments()
	if err != nil || len(segs) == 0 {
		return
	}
	f := pc.byFrame[pc.mgr.host.Mem.FrameOf(segs[0].Addr)]
	if f == nil {
		return
	}
	base := pc.mgr.host.Mem.FrameAddr(f.frames[0])
	off := int(segs[0].Addr - base)
	pc.Delivered++
	if pc.handler != nil {
		pc.handler(p, f, off, m.Len())
	}
}
