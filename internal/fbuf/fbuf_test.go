package fbuf

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/sim"
)

func newRig() (*sim.Engine, *hostsim.Host, *Manager) {
	e := sim.NewEngine(1)
	h := hostsim.New(e, hostsim.DEC5000_200(), 4096)
	return e, h, NewManager(h, 0)
}

func TestCachedPathRoundTrip(t *testing.T) {
	e, h, m := newRig()
	drvDom := NewDomain(h, "driver")
	appDom := NewDomain(h, "app")
	e.Go("t", func(p *sim.Proc) {
		if err := m.DefinePath(p, 7, []*Domain{drvDom, appDom}, 4, 8192); err != nil {
			t.Fatal(err)
		}
		f, err := m.Alloc(p, 7, drvDom, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Cached() {
			t.Error("path pool returned uncached fbuf")
		}
		data := []byte("early demultiplexing pays off")
		if err := f.Write(drvDom, 100, data); err != nil {
			t.Fatal(err)
		}
		if err := f.Transfer(p, drvDom, appDom); err != nil {
			t.Fatal(err)
		}
		got, err := f.Read(appDom, 100, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("data not visible across domains")
		}
		m.Free(f)
	})
	e.Run()
	e.Shutdown()
	if m.Stats().CachedAllocs != 1 || m.Stats().CachedTransfers != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestCachedTransferOrderOfMagnitudeCheaper(t *testing.T) {
	// §3.1: cached vs uncached "can mean an order of magnitude
	// difference in how fast the data can be transferred".
	e, h, m := newRig()
	a := NewDomain(h, "a")
	b := NewDomain(h, "b")
	var cached, uncached time.Duration
	e.Go("t", func(p *sim.Proc) {
		if err := m.DefinePath(p, 9, []*Domain{a, b}, 1, 16384); err != nil {
			t.Fatal(err)
		}
		cf, _ := m.Alloc(p, 9, a, 16384)
		start := p.Now()
		cf.Transfer(p, a, b)
		cached = time.Duration(p.Now() - start)

		uf, err := m.AllocUncached(p, a, 16384)
		if err != nil {
			t.Fatal(err)
		}
		start = p.Now()
		uf.Transfer(p, a, b)
		uncached = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	if uncached < 10*cached {
		t.Errorf("uncached (%v) not ≥10x cached (%v)", uncached, cached)
	}
}

func TestAllocFallsBackWhenPoolEmpty(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	b := NewDomain(h, "b")
	e.Go("t", func(p *sim.Proc) {
		m.DefinePath(p, 5, []*Domain{a, b}, 1, 4096)
		f1, _ := m.Alloc(p, 5, a, 4096)
		f2, err := m.Alloc(p, 5, a, 4096) // pool exhausted
		if err != nil {
			t.Fatal(err)
		}
		if f2.Cached() {
			t.Error("second alloc should be uncached")
		}
		m.Free(f1)
		f3, _ := m.Alloc(p, 5, a, 4096)
		if !f3.Cached() {
			t.Error("freed cached fbuf did not rejoin its pool")
		}
	})
	e.Run()
	e.Shutdown()
	if m.Stats().CachedMisses != 1 {
		t.Errorf("CachedMisses = %d", m.Stats().CachedMisses)
	}
}

func TestAllocUnknownVCIIsUncached(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	e.Go("t", func(p *sim.Proc) {
		f, err := m.Alloc(p, 99, a, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if f.Cached() {
			t.Error("unknown VCI yielded cached fbuf")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestLRUEvictionAtSixteenPaths(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	b := NewDomain(h, "b")
	e.Go("t", func(p *sim.Proc) {
		for vci := 1; vci <= DefaultMaxCachedPaths; vci++ {
			if err := m.DefinePath(p, atm.VCI(vci), []*Domain{a, b}, 1, 4096); err != nil {
				t.Fatal(err)
			}
		}
		if m.CachedPaths() != 16 {
			t.Fatalf("CachedPaths = %d", m.CachedPaths())
		}
		// Touch path 1 so it is recently used; path 2 becomes LRU.
		m.Alloc(p, 1, a, 4096)
		if err := m.DefinePath(p, 17, []*Domain{a, b}, 1, 4096); err != nil {
			t.Fatal(err)
		}
		if m.CachedPaths() != 16 {
			t.Errorf("CachedPaths = %d after eviction", m.CachedPaths())
		}
		// Path 2 must now miss; path 1 must still hit (it is checked out
		// though, so use path 3 to verify a hit).
		f, _ := m.Alloc(p, 2, a, 4096)
		if f.Cached() {
			t.Error("evicted path still served cached fbufs")
		}
		f3, _ := m.Alloc(p, 3, a, 4096)
		if !f3.Cached() {
			t.Error("surviving path lost its pool")
		}
	})
	e.Run()
	e.Shutdown()
	if m.Stats().PathEvictions != 1 {
		t.Errorf("PathEvictions = %d", m.Stats().PathEvictions)
	}
}

func TestTransferRequiresSourceMapping(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	b := NewDomain(h, "b")
	c := NewDomain(h, "c")
	e.Go("t", func(p *sim.Proc) {
		f, _ := m.AllocUncached(p, a, 4096)
		if err := f.Transfer(p, b, c); err == nil {
			t.Error("transfer from unmapped domain succeeded")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestReadWriteBoundsChecked(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	e.Go("t", func(p *sim.Proc) {
		f, _ := m.AllocUncached(p, a, 4096)
		if err := f.Write(a, 4090, make([]byte, 10)); err == nil {
			t.Error("overflowing write accepted")
		}
		if _, err := f.Read(a, 4090, 10); err == nil {
			t.Error("overflowing read accepted")
		}
		b := NewDomain(h, "b")
		if err := f.Write(b, 0, []byte{1}); err == nil {
			t.Error("write through unmapped domain accepted")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestPhysBuffersCoverFbuf(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	e.Go("t", func(p *sim.Proc) {
		f, _ := m.AllocUncached(p, a, 3*4096)
		segs := f.PhysBuffers()
		total := 0
		for _, s := range segs {
			total += s.Len
		}
		if total != 3*4096 {
			t.Errorf("segments cover %d", total)
		}
	})
	e.Run()
	e.Shutdown()
	_ = h
}

func TestDefinePathValidation(t *testing.T) {
	e, h, m := newRig()
	a := NewDomain(h, "a")
	e.Go("t", func(p *sim.Proc) {
		if err := m.DefinePath(p, 1, nil, 1, 4096); err == nil {
			t.Error("empty domain chain accepted")
		}
		m.DefinePath(p, 1, []*Domain{a}, 1, 4096)
		if err := m.DefinePath(p, 1, []*Domain{a}, 1, 4096); err == nil {
			t.Error("duplicate path accepted")
		}
	})
	e.Run()
	e.Shutdown()
}

func TestThreeDomainPipeline(t *testing.T) {
	// driver → multiplexing server → application, the microkernel
	// scenario of §3.1.
	e, h, m := newRig()
	drv := NewDomain(h, "driver")
	srv := NewDomain(h, "server")
	app := NewDomain(h, "app")
	chain := []*Domain{drv, srv, app}
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 11)
	}
	var got []byte
	e.Go("t", func(p *sim.Proc) {
		if err := m.DefinePath(p, 4, chain, 2, 8192); err != nil {
			t.Fatal(err)
		}
		f, _ := m.Alloc(p, 4, drv, 8192)
		f.Write(drv, 0, data)
		f.Transfer(p, drv, srv)
		f.Transfer(p, srv, app)
		got, _ = f.Read(app, 0, len(data))
		m.Free(f)
	})
	e.Run()
	e.Shutdown()
	if !bytes.Equal(got, data) {
		t.Error("pipeline corrupted data")
	}
	if m.Stats().CachedTransfers != 2 {
		t.Errorf("CachedTransfers = %d", m.Stats().CachedTransfers)
	}
}
