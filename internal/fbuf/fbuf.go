// Package fbuf implements fast buffers (§3.1): a high-bandwidth
// cross-domain buffer transfer and management facility.
//
// An fbuf combines page remapping and shared memory: pages that have
// been mapped into a set of protection domains are cached for reuse by
// future transfers along the same data path. Because the OSIRIS adaptor
// makes an early demultiplexing decision (the VCI identifies the path
// before any data is stored), incoming data can be placed directly into
// an fbuf that is already mapped into every domain the packet will
// traverse. Using such a *cached* fbuf instead of an *uncached* one —
// which must be mapped into each domain as it travels — is "an order of
// magnitude difference in how fast the data can be transferred across a
// domain boundary".
//
// The manager keeps preallocated cached-fbuf pools for the 16 most
// recently used paths plus a single pool of uncached fbufs, exactly the
// driver strategy the paper describes.
package fbuf

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultMaxCachedPaths is the number of per-path pools the manager
// keeps (§3.1: "the 16 most recently used data paths").
const DefaultMaxCachedPaths = 16

// Domain is one protection domain data may traverse: device driver,
// network server, application.
type Domain struct {
	Name  string
	Space *mem.AddressSpace
}

// NewDomain creates a protection domain with a fresh address space.
func NewDomain(h *hostsim.Host, name string) *Domain {
	return &Domain{Name: name, Space: h.Mem.NewSpace(name)}
}

// Fbuf is one fast buffer: a run of page frames plus its current set of
// domain mappings.
type Fbuf struct {
	mgr    *Manager
	frames []mem.Frame
	size   int
	vas    map[*Domain]mem.VirtAddr
	path   atm.VCI // the path whose pool owns it; 0 for uncached
	cached bool
}

// Size returns the fbuf's capacity in bytes.
func (f *Fbuf) Size() int { return f.size }

// Cached reports whether the fbuf belongs to a cached per-path pool.
func (f *Fbuf) Cached() bool { return f.cached }

// MappedIn reports whether the fbuf is currently mapped in d.
func (f *Fbuf) MappedIn(d *Domain) bool {
	_, ok := f.vas[d]
	return ok
}

// VA returns the fbuf's virtual address in domain d; the fbuf must be
// mapped there.
func (f *Fbuf) VA(d *Domain) (mem.VirtAddr, error) {
	va, ok := f.vas[d]
	if !ok {
		return 0, fmt.Errorf("fbuf: not mapped in domain %s", d.Name)
	}
	return va, nil
}

// Write stores data into the fbuf through domain d's mapping.
func (f *Fbuf) Write(d *Domain, off int, data []byte) error {
	va, err := f.VA(d)
	if err != nil {
		return err
	}
	if off+len(data) > f.size {
		return fmt.Errorf("fbuf: write [%d,%d) beyond size %d", off, off+len(data), f.size)
	}
	return d.Space.WriteVirt(va+mem.VirtAddr(off), data)
}

// Read fetches n bytes from the fbuf through domain d's mapping.
func (f *Fbuf) Read(d *Domain, off, n int) ([]byte, error) {
	va, err := f.VA(d)
	if err != nil {
		return nil, err
	}
	if off+n > f.size {
		return nil, fmt.Errorf("fbuf: read [%d,%d) beyond size %d", off, off+n, f.size)
	}
	return d.Space.ReadVirt(va+mem.VirtAddr(off), n)
}

// PhysBuffers returns the fbuf's physical extents (for DMA descriptors).
func (f *Fbuf) PhysBuffers() []mem.PhysBuffer {
	m := f.mgr.host.Mem
	var segs []mem.PhysBuffer
	for _, fr := range f.frames {
		pa := m.FrameAddr(fr)
		if n := len(segs); n > 0 && segs[n-1].End() == pa {
			segs[n-1].Len += m.PageSize()
		} else {
			segs = append(segs, mem.PhysBuffer{Addr: pa, Len: m.PageSize()})
		}
	}
	return segs
}

// Transfer passes the fbuf across a domain boundary. For a cached fbuf
// the pages are already mapped at both ends, so the cost is a constant
// hand-off; an uncached fbuf pays per-page mapping work on its way into
// the destination domain (§3.1).
func (f *Fbuf) Transfer(p *sim.Proc, from, to *Domain) error {
	if _, ok := f.vas[from]; !ok {
		return fmt.Errorf("fbuf: transfer from %s, where it is not mapped", from.Name)
	}
	prof := f.mgr.host.Prof
	if _, mapped := f.vas[to]; mapped {
		f.mgr.host.Compute(p, prof.FbufTransfer)
		f.mgr.stats.CachedTransfers++
		return nil
	}
	f.mgr.host.Compute(p, prof.FbufTransfer+time.Duration(len(f.frames))*prof.FbufMapPerPage)
	va, err := to.Space.MapFrames(f.frames)
	if err != nil {
		return err
	}
	f.vas[to] = va
	f.mgr.stats.UncachedTransfers++
	f.mgr.stats.PagesMapped += int64(len(f.frames))
	return nil
}

// Stats counts manager activity.
type Stats struct {
	CachedAllocs      int64
	CachedMisses      int64 // cached pool empty, fell back to uncached
	UncachedAllocs    int64
	CachedTransfers   int64
	UncachedTransfers int64
	PagesMapped       int64
	PathEvictions     int64
}

// pathPool is the preallocated cached-fbuf queue for one path.
type pathPool struct {
	vci     atm.VCI
	domains []*Domain
	free    []*Fbuf
	lastUse int64 // LRU clock
}

// Manager is one host's fbuf allocator.
type Manager struct {
	host     *hostsim.Host
	maxPaths int
	pools    map[atm.VCI]*pathPool
	uncached []*Fbuf
	clock    int64
	stats    Stats
}

// NewManager returns a manager keeping up to maxPaths cached path pools
// (0 means DefaultMaxCachedPaths).
func NewManager(h *hostsim.Host, maxPaths int) *Manager {
	if maxPaths == 0 {
		maxPaths = DefaultMaxCachedPaths
	}
	return &Manager{host: h, maxPaths: maxPaths, pools: make(map[atm.VCI]*pathPool)}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// RegisterMetrics registers the pool's counters as snapshot-time
// samples under prefix: the cached-allocation hit/miss split is the
// §3.3 number that decides whether the fbuf cache is earning its
// keep. A nil registry is a no-op.
func (m *Manager) RegisterMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	s := &m.stats
	r.Sample(prefix+"/cached_allocs", metrics.KindCounter, func() int64 { return s.CachedAllocs })
	r.Sample(prefix+"/cached_misses", metrics.KindCounter, func() int64 { return s.CachedMisses })
	r.Sample(prefix+"/uncached_allocs", metrics.KindCounter, func() int64 { return s.UncachedAllocs })
	r.Sample(prefix+"/cached_transfers", metrics.KindCounter, func() int64 { return s.CachedTransfers })
	r.Sample(prefix+"/uncached_transfers", metrics.KindCounter, func() int64 { return s.UncachedTransfers })
	r.Sample(prefix+"/pages_mapped", metrics.KindCounter, func() int64 { return s.PagesMapped })
	r.Sample(prefix+"/path_evictions", metrics.KindCounter, func() int64 { return s.PathEvictions })
}

// CachedPaths returns the number of live per-path pools.
func (m *Manager) CachedPaths() int { return len(m.pools) }

func (m *Manager) newFbuf(size int) (*Fbuf, error) {
	ps := m.host.Mem.PageSize()
	pages := (size + ps - 1) / ps
	frames := make([]mem.Frame, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := m.host.Mem.AllocFrame()
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return &Fbuf{
		mgr:    m,
		frames: frames,
		size:   pages * ps,
		vas:    make(map[*Domain]mem.VirtAddr),
	}, nil
}

// DefinePath preallocates a pool of count cached fbufs of the given
// size for the path identified by vci, mapped up-front into every
// domain in the path's chain. If the 16-pool budget is exceeded the
// least recently used path is evicted (its fbufs lose their cached
// status). Setup cost (the mapping work) is charged to p — it happens
// at connection establishment, off the data path.
func (m *Manager) DefinePath(p *sim.Proc, vci atm.VCI, domains []*Domain, count, size int) error {
	if len(domains) == 0 {
		return fmt.Errorf("fbuf: path needs at least one domain")
	}
	if _, dup := m.pools[vci]; dup {
		return fmt.Errorf("fbuf: path for VCI %d already defined", vci)
	}
	if len(m.pools) >= m.maxPaths {
		m.evictLRU()
	}
	pool := &pathPool{vci: vci, domains: domains}
	for i := 0; i < count; i++ {
		f, err := m.newFbuf(size)
		if err != nil {
			return err
		}
		for _, d := range domains {
			va, err := d.Space.MapFrames(f.frames)
			if err != nil {
				return err
			}
			f.vas[d] = va
			m.host.Compute(p, time.Duration(len(f.frames))*m.host.Prof.FbufMapPerPage)
		}
		f.cached = true
		f.path = vci
		pool.free = append(pool.free, f)
	}
	m.clock++
	pool.lastUse = m.clock
	m.pools[vci] = pool
	return nil
}

func (m *Manager) evictLRU() {
	var victim *pathPool
	for _, pool := range m.pools {
		if victim == nil || pool.lastUse < victim.lastUse {
			victim = pool
		}
	}
	if victim == nil {
		return
	}
	delete(m.pools, victim.vci)
	m.stats.PathEvictions++
	for _, f := range victim.free {
		f.cached = false
		f.path = 0
		// Its mappings are torn down lazily; as an uncached fbuf it will
		// be remapped per transfer. Keep only the first domain (its
		// producer) mapped.
		first := victim.domains[0]
		va := f.vas[first]
		f.vas = map[*Domain]mem.VirtAddr{first: va}
		m.uncached = append(m.uncached, f)
	}
}

// Alloc returns an fbuf for the given path: a cached one when the
// path's pool has any ("the data path ... must be determined by the
// adaptor so that it can be stored in an appropriate buffer"),
// otherwise an uncached fbuf mapped only into origin.
func (m *Manager) Alloc(p *sim.Proc, vci atm.VCI, origin *Domain, size int) (*Fbuf, error) {
	if pool, ok := m.pools[vci]; ok {
		m.clock++
		pool.lastUse = m.clock
		if n := len(pool.free); n > 0 {
			f := pool.free[n-1]
			pool.free = pool.free[:n-1]
			m.stats.CachedAllocs++
			return f, nil
		}
		m.stats.CachedMisses++
	}
	return m.AllocUncached(p, origin, size)
}

// AllocUncached returns an fbuf from the uncached pool (or a fresh one),
// mapped only into origin.
func (m *Manager) AllocUncached(p *sim.Proc, origin *Domain, size int) (*Fbuf, error) {
	m.stats.UncachedAllocs++
	for i, f := range m.uncached {
		if f.size >= size {
			m.uncached = append(m.uncached[:i], m.uncached[i+1:]...)
			if _, ok := f.vas[origin]; !ok {
				va, err := origin.Space.MapFrames(f.frames)
				if err != nil {
					return nil, err
				}
				f.vas[origin] = va
				m.host.Compute(p, time.Duration(len(f.frames))*m.host.Prof.FbufMapPerPage)
			}
			return f, nil
		}
	}
	f, err := m.newFbuf(size)
	if err != nil {
		return nil, err
	}
	va, err := origin.Space.MapFrames(f.frames)
	if err != nil {
		return nil, err
	}
	f.vas[origin] = va
	m.host.Compute(p, time.Duration(len(f.frames))*m.host.Prof.FbufMapPerPage)
	return f, nil
}

// Free returns an fbuf to its pool: cached fbufs rejoin their path's
// pool with mappings intact (that is the whole point); uncached ones go
// to the shared pool.
func (m *Manager) Free(f *Fbuf) {
	if f.cached {
		if pool, ok := m.pools[f.path]; ok {
			pool.free = append(pool.free, f)
			return
		}
		f.cached = false
	}
	m.uncached = append(m.uncached, f)
}

// CopyTransfer models the traditional alternative: copying the data
// across the boundary instead of remapping. Returned for benchmarking
// (§3.1's implicit baseline).
func (m *Manager) CopyTransfer(p *sim.Proc, pages int) {
	m.host.Compute(p, time.Duration(pages)*m.host.Prof.CopyPerPage)
}
