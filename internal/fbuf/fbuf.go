// Package fbuf implements fast buffers (§3.1): a high-bandwidth
// cross-domain buffer transfer and management facility.
//
// An fbuf combines page remapping and shared memory: pages that have
// been mapped into a set of protection domains are cached for reuse by
// future transfers along the same data path. Because the OSIRIS adaptor
// makes an early demultiplexing decision (the VCI identifies the path
// before any data is stored), incoming data can be placed directly into
// an fbuf that is already mapped into every domain the packet will
// traverse. Using such a *cached* fbuf instead of an *uncached* one —
// which must be mapped into each domain as it travels — is "an order of
// magnitude difference in how fast the data can be transferred across a
// domain boundary".
//
// The manager keeps preallocated cached-fbuf pools for the most
// recently used paths (16 by default, §3.1) on an intrusive LRU list:
// touching a path on allocation is O(1), and when path churn exceeds
// the capacity the list tail is evicted in O(1). Eviction *demotes* the
// pool's fbufs: every non-producer mapping is removed from the page
// tables immediately — a stale access faults, it cannot read recycled
// data — while the shootdown cost is charged lazily to the next fbuf
// operation, the way deferred TLB invalidation batches the work.
// Outstanding fbufs of an evicted (or undefined) path demote when they
// come back through Free.
package fbuf

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultMaxCachedPaths is the number of per-path pools the manager
// keeps (§3.1: "the 16 most recently used data paths").
const DefaultMaxCachedPaths = 16

// Domain is one protection domain data may traverse: device driver,
// network server, application.
type Domain struct {
	Name  string
	Space *mem.AddressSpace
}

// NewDomain creates a protection domain with a fresh address space.
func NewDomain(h *hostsim.Host, name string) *Domain {
	return &Domain{Name: name, Space: h.Mem.NewSpace(name)}
}

// Fbuf is one fast buffer: a run of page frames plus its current set of
// domain mappings.
type Fbuf struct {
	mgr    *Manager
	frames []mem.Frame
	size   int
	vas    map[*Domain]mem.VirtAddr
	path   atm.VCI // the path whose pool owns it; 0 for uncached
	pool   *pathPool
	cached bool
}

// Size returns the fbuf's capacity in bytes.
func (f *Fbuf) Size() int { return f.size }

// Cached reports whether the fbuf belongs to a cached per-path pool.
func (f *Fbuf) Cached() bool { return f.cached }

// MappedIn reports whether the fbuf is currently mapped in d.
func (f *Fbuf) MappedIn(d *Domain) bool {
	_, ok := f.vas[d]
	return ok
}

// VA returns the fbuf's virtual address in domain d; the fbuf must be
// mapped there.
func (f *Fbuf) VA(d *Domain) (mem.VirtAddr, error) {
	va, ok := f.vas[d]
	if !ok {
		return 0, fmt.Errorf("fbuf: not mapped in domain %s", d.Name)
	}
	return va, nil
}

// Write stores data into the fbuf through domain d's mapping.
func (f *Fbuf) Write(d *Domain, off int, data []byte) error {
	va, err := f.VA(d)
	if err != nil {
		return err
	}
	if off+len(data) > f.size {
		return fmt.Errorf("fbuf: write [%d,%d) beyond size %d", off, off+len(data), f.size)
	}
	return d.Space.WriteVirt(va+mem.VirtAddr(off), data)
}

// Read fetches n bytes from the fbuf through domain d's mapping.
func (f *Fbuf) Read(d *Domain, off, n int) ([]byte, error) {
	va, err := f.VA(d)
	if err != nil {
		return nil, err
	}
	if off+n > f.size {
		return nil, fmt.Errorf("fbuf: read [%d,%d) beyond size %d", off, off+n, f.size)
	}
	return d.Space.ReadVirt(va+mem.VirtAddr(off), n)
}

// PhysBuffers returns the fbuf's physical extents (for DMA descriptors).
func (f *Fbuf) PhysBuffers() []mem.PhysBuffer {
	m := f.mgr.host.Mem
	var segs []mem.PhysBuffer
	for _, fr := range f.frames {
		pa := m.FrameAddr(fr)
		if n := len(segs); n > 0 && segs[n-1].End() == pa {
			segs[n-1].Len += m.PageSize()
		} else {
			segs = append(segs, mem.PhysBuffer{Addr: pa, Len: m.PageSize()})
		}
	}
	return segs
}

// Transfer passes the fbuf across a domain boundary. For a cached fbuf
// the pages are already mapped at both ends, so the cost is a constant
// hand-off; an uncached fbuf pays per-page mapping work on its way into
// the destination domain (§3.1).
func (f *Fbuf) Transfer(p *sim.Proc, from, to *Domain) error {
	if _, ok := f.vas[from]; !ok {
		return fmt.Errorf("fbuf: transfer from %s, where it is not mapped", from.Name)
	}
	prof := f.mgr.host.Prof
	if _, mapped := f.vas[to]; mapped {
		f.mgr.host.Compute(p, prof.FbufTransfer)
		f.mgr.stats.CachedTransfers++
		return nil
	}
	f.mgr.drainPending(p)
	f.mgr.host.Compute(p, prof.FbufTransfer+time.Duration(len(f.frames))*prof.FbufMapPerPage)
	va, err := to.Space.MapFrames(f.frames)
	if err != nil {
		return err
	}
	f.vas[to] = va
	f.mgr.stats.UncachedTransfers++
	f.mgr.stats.PagesMapped += int64(len(f.frames))
	return nil
}

// Stats counts manager activity.
type Stats struct {
	CachedAllocs      int64
	CachedMisses      int64 // cached pool empty, fell back to uncached
	UncachedAllocs    int64
	CachedTransfers   int64
	UncachedTransfers int64
	PagesMapped       int64
	PathEvictions     int64
	PathUndefines     int64
	Demotions         int64 // fbufs that lost cached status (evict/undefine)
	PagesUnmapped     int64
}

type poolState int

const (
	poolLive    poolState = iota
	poolEvicted           // LRU-evicted: outstanding fbufs demote at Free
	poolDead              // undefined: outstanding fbufs are destroyed at Free
)

// pathPool is the preallocated cached-fbuf queue for one path, a node
// on the manager's intrusive LRU list (head = most recent).
type pathPool struct {
	vci        atm.VCI
	domains    []*Domain
	free       []*Fbuf
	state      poolState
	prev, next *pathPool
}

// Manager is one host's fbuf allocator.
type Manager struct {
	host     *hostsim.Host
	maxPaths int
	pools    map[atm.VCI]*pathPool
	lruHead  *pathPool
	lruTail  *pathPool
	uncached []*Fbuf
	pending  int // pages unmapped but not yet charged (lazy shootdown)
	stats    Stats
}

// NewManager returns a manager keeping up to maxPaths cached path pools
// (0 means DefaultMaxCachedPaths).
func NewManager(h *hostsim.Host, maxPaths int) *Manager {
	if maxPaths == 0 {
		maxPaths = DefaultMaxCachedPaths
	}
	return &Manager{host: h, maxPaths: maxPaths, pools: make(map[atm.VCI]*pathPool)}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// RegisterMetrics registers the pool's counters as snapshot-time
// samples under prefix: the cached-allocation hit/miss split is the
// §3.3 number that decides whether the fbuf cache is earning its
// keep. A nil registry is a no-op.
func (m *Manager) RegisterMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	s := &m.stats
	r.Sample(prefix+"/cached_allocs", metrics.KindCounter, func() int64 { return s.CachedAllocs })
	r.Sample(prefix+"/cached_misses", metrics.KindCounter, func() int64 { return s.CachedMisses })
	r.Sample(prefix+"/uncached_allocs", metrics.KindCounter, func() int64 { return s.UncachedAllocs })
	r.Sample(prefix+"/cached_transfers", metrics.KindCounter, func() int64 { return s.CachedTransfers })
	r.Sample(prefix+"/uncached_transfers", metrics.KindCounter, func() int64 { return s.UncachedTransfers })
	r.Sample(prefix+"/pages_mapped", metrics.KindCounter, func() int64 { return s.PagesMapped })
	r.Sample(prefix+"/path_evictions", metrics.KindCounter, func() int64 { return s.PathEvictions })
}

// RegisterChurnMetrics registers the churn-plane family — demotions,
// unmapped pages, undefines, and the live-pool gauge — as a separate,
// caller-gated set (the AdaptiveMetrics idiom), so legacy snapshots
// keep their metric name set byte-identical.
func (m *Manager) RegisterChurnMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	s := &m.stats
	r.Sample(prefix+"/demotions", metrics.KindCounter, func() int64 { return s.Demotions })
	r.Sample(prefix+"/pages_unmapped", metrics.KindCounter, func() int64 { return s.PagesUnmapped })
	r.Sample(prefix+"/path_undefines", metrics.KindCounter, func() int64 { return s.PathUndefines })
	r.Sample(prefix+"/cached_paths", metrics.KindGauge, func() int64 { return int64(len(m.pools)) })
}

// CachedPaths returns the number of live per-path pools.
func (m *Manager) CachedPaths() int { return len(m.pools) }

// PathDefined reports whether vci's cached pool is currently live — it
// may have been LRU-evicted since DefinePath, so churning callers check
// before UndefinePath.
func (m *Manager) PathDefined(vci atm.VCI) bool {
	_, ok := m.pools[vci]
	return ok
}

// lruUnlink removes pool from the recency list.
func (m *Manager) lruUnlink(pool *pathPool) {
	if pool.prev != nil {
		pool.prev.next = pool.next
	} else {
		m.lruHead = pool.next
	}
	if pool.next != nil {
		pool.next.prev = pool.prev
	} else {
		m.lruTail = pool.prev
	}
	pool.prev, pool.next = nil, nil
}

// lruPushFront makes pool the most recently used.
func (m *Manager) lruPushFront(pool *pathPool) {
	pool.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = pool
	}
	m.lruHead = pool
	if m.lruTail == nil {
		m.lruTail = pool
	}
}

// touch refreshes pool's recency in O(1).
func (m *Manager) touch(pool *pathPool) {
	if m.lruHead == pool {
		return
	}
	m.lruUnlink(pool)
	m.lruPushFront(pool)
}

// drainPending charges the accumulated lazy-unmap (TLB shootdown) cost
// to p. Called at the head of every operation that already pays mapping
// work, so demotion costs batch instead of landing on the evictor.
func (m *Manager) drainPending(p *sim.Proc) {
	if m.pending == 0 {
		return
	}
	m.host.Compute(p, time.Duration(m.pending)*m.host.Prof.FbufMapPerPage)
	m.pending = 0
}

// unmapFrom removes d's mapping of f, page by page. A missing page
// table entry here is a double unmap — a manager invariant violation —
// and panics.
func (m *Manager) unmapFrom(f *Fbuf, d *Domain, va mem.VirtAddr) {
	vpn := d.Space.VPN(va)
	for j := range f.frames {
		if _, err := d.Space.Unmap(vpn + uint32(j)); err != nil {
			panic("fbuf: double unmap: " + err.Error())
		}
	}
	m.pending += len(f.frames)
	m.stats.PagesUnmapped += int64(len(f.frames))
}

// demote strips an fbuf of its cached status: every mapping except the
// producer's (the path's first domain) is torn out of the page tables
// and the fbuf joins the uncached pool.
func (m *Manager) demote(f *Fbuf) {
	keep := f.pool.domains[0]
	for d, va := range f.vas {
		if d == keep {
			continue
		}
		m.unmapFrom(f, d, va)
	}
	f.vas = map[*Domain]mem.VirtAddr{keep: f.vas[keep]}
	f.cached = false
	f.path = 0
	f.pool = nil
	m.stats.Demotions++
	m.uncached = append(m.uncached, f)
}

// destroy unmaps an fbuf everywhere and returns its frames to the host.
func (m *Manager) destroy(f *Fbuf) {
	for d, va := range f.vas {
		m.unmapFrom(f, d, va)
	}
	f.vas = nil
	for _, fr := range f.frames {
		m.host.Mem.FreeFrame(fr)
	}
	f.frames = nil
	f.pool = nil
	f.cached = false
}

func (m *Manager) newFbuf(size int) (*Fbuf, error) {
	ps := m.host.Mem.PageSize()
	pages := (size + ps - 1) / ps
	frames := make([]mem.Frame, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := m.host.Mem.AllocFrame()
		if err != nil {
			for _, fr := range frames {
				m.host.Mem.FreeFrame(fr)
			}
			return nil, err
		}
		frames = append(frames, f)
	}
	return &Fbuf{
		mgr:    m,
		frames: frames,
		size:   pages * ps,
		vas:    make(map[*Domain]mem.VirtAddr),
	}, nil
}

// DefinePath preallocates a pool of count cached fbufs of the given
// size for the path identified by vci, mapped up-front into every
// domain in the path's chain. If the pool budget is exceeded the least
// recently used path is evicted (its fbufs are demoted). Setup cost
// (the mapping work) is charged to p — it happens at connection
// establishment, off the data path. On failure nothing is retained:
// partially built fbufs are destroyed.
func (m *Manager) DefinePath(p *sim.Proc, vci atm.VCI, domains []*Domain, count, size int) error {
	if len(domains) == 0 {
		return fmt.Errorf("fbuf: path needs at least one domain")
	}
	if _, dup := m.pools[vci]; dup {
		return fmt.Errorf("fbuf: path for VCI %d already defined", vci)
	}
	m.drainPending(p)
	if len(m.pools) >= m.maxPaths {
		m.evictLRU()
	}
	pool := &pathPool{vci: vci, domains: domains}
	fail := func(err error) error {
		for _, f := range pool.free {
			m.destroy(f)
		}
		return err
	}
	for i := 0; i < count; i++ {
		f, err := m.newFbuf(size)
		if err != nil {
			return fail(err)
		}
		f.cached = true
		f.path = vci
		f.pool = pool
		pool.free = append(pool.free, f)
		for _, d := range domains {
			va, err := d.Space.MapFrames(f.frames)
			if err != nil {
				return fail(err)
			}
			f.vas[d] = va
			m.host.Compute(p, time.Duration(len(f.frames))*m.host.Prof.FbufMapPerPage)
		}
	}
	m.pools[vci] = pool
	m.lruPushFront(pool)
	return nil
}

// UndefinePath tears a path down at connection close: pooled fbufs are
// unmapped everywhere and their frames freed; fbufs still in flight are
// destroyed when they come back through Free. Churning tenants call
// this so open/close cycles cannot grow the cache without bound.
func (m *Manager) UndefinePath(p *sim.Proc, vci atm.VCI) error {
	pool, ok := m.pools[vci]
	if !ok {
		return fmt.Errorf("fbuf: path for VCI %d not defined", vci)
	}
	delete(m.pools, vci)
	m.lruUnlink(pool)
	pool.state = poolDead
	for _, f := range pool.free {
		m.destroy(f)
	}
	pool.free = nil
	m.stats.PathUndefines++
	m.drainPending(p)
	return nil
}

// evictLRU drops the least recently used path pool in O(1): the pool
// leaves the cache and its pooled fbufs are demoted. The page-table
// state changes now (stale mappings must not stay readable); the
// shootdown cost is charged lazily via drainPending.
func (m *Manager) evictLRU() {
	victim := m.lruTail
	if victim == nil {
		return
	}
	m.lruUnlink(victim)
	delete(m.pools, victim.vci)
	victim.state = poolEvicted
	m.stats.PathEvictions++
	for _, f := range victim.free {
		m.demote(f)
	}
	victim.free = nil
}

// Alloc returns an fbuf for the given path: a cached one when the
// path's pool has any ("the data path ... must be determined by the
// adaptor so that it can be stored in an appropriate buffer"),
// otherwise an uncached fbuf mapped only into origin. A cached hit is
// O(1) including the LRU touch.
func (m *Manager) Alloc(p *sim.Proc, vci atm.VCI, origin *Domain, size int) (*Fbuf, error) {
	if pool, ok := m.pools[vci]; ok {
		m.touch(pool)
		if n := len(pool.free); n > 0 {
			f := pool.free[n-1]
			pool.free = pool.free[:n-1]
			m.stats.CachedAllocs++
			return f, nil
		}
		m.stats.CachedMisses++
	}
	return m.AllocUncached(p, origin, size)
}

// AllocUncached returns an fbuf from the uncached pool (or a fresh one),
// mapped only into origin.
func (m *Manager) AllocUncached(p *sim.Proc, origin *Domain, size int) (*Fbuf, error) {
	m.stats.UncachedAllocs++
	m.drainPending(p)
	for i, f := range m.uncached {
		if f.size >= size {
			m.uncached = append(m.uncached[:i], m.uncached[i+1:]...)
			if _, ok := f.vas[origin]; !ok {
				va, err := origin.Space.MapFrames(f.frames)
				if err != nil {
					return nil, err
				}
				f.vas[origin] = va
				m.host.Compute(p, time.Duration(len(f.frames))*m.host.Prof.FbufMapPerPage)
			}
			return f, nil
		}
	}
	f, err := m.newFbuf(size)
	if err != nil {
		return nil, err
	}
	va, err := origin.Space.MapFrames(f.frames)
	if err != nil {
		return nil, err
	}
	f.vas[origin] = va
	m.host.Compute(p, time.Duration(len(f.frames))*m.host.Prof.FbufMapPerPage)
	return f, nil
}

// Free returns an fbuf to its pool: cached fbufs rejoin their path's
// pool with mappings intact (that is the whole point); uncached ones go
// to the shared pool. An outstanding fbuf whose path was evicted while
// it was in flight demotes here; one whose path was undefined is
// destroyed.
func (m *Manager) Free(f *Fbuf) {
	if f.cached {
		switch f.pool.state {
		case poolLive:
			f.pool.free = append(f.pool.free, f)
		case poolEvicted:
			m.demote(f)
		case poolDead:
			m.destroy(f)
		}
		return
	}
	m.uncached = append(m.uncached, f)
}

// CopyTransfer models the traditional alternative: copying the data
// across the boundary instead of remapping. Returned for benchmarking
// (§3.1's implicit baseline).
func (m *Manager) CopyTransfer(p *sim.Proc, pages int) {
	m.host.Compute(p, time.Duration(pages)*m.host.Prof.CopyPerPage)
}
