package fbuf

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/dpm"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPathChannelDeliversIntoAllDomains is the full §3.1 story: a PDU
// arrives from the network, is DMA'd once into a cached fbuf, and every
// protection domain on the path reads the same bytes with no copy and
// no data-path page mapping.
func TestPathChannelDeliversIntoAllDomains(t *testing.T) {
	e := sim.NewEngine(21)
	hA := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	hB := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	bA := board.New(e, hA, board.Config{Name: "A"})
	bB := board.New(e, hB, board.Config{Name: "B"})
	g := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	links := make([]*atm.Link, 4)
	for i := range links {
		links[i] = g.Link(i)
	}
	bA.AttachTxLinks(links)
	bB.AttachRxLinks(g)

	mgr := NewManager(hB, 0)
	drv := NewDomain(hB, "driver")
	srv := NewDomain(hB, "server")
	app := NewDomain(hB, "player")
	chain := []*Domain{drv, srv, app}

	const vci = 77
	data := workload.Payload(12_000, 4)
	var gotDrv, gotSrv, gotApp []byte
	checks := 0
	ready := sim.NewCond(e)
	setupDone := false
	var pc *PathChannel
	e.Go("setup", func(p *sim.Proc) {
		var err error
		pc, err = ProvisionPath(p, hB, bB, mgr, 1, vci, chain, 4, 16384)
		if err != nil {
			t.Error(err)
			return
		}
		pc.SetHandler(func(hp *sim.Proc, f *Fbuf, off, n int) {
			gotDrv, _ = f.Read(drv, off, n)
			gotSrv, _ = f.Read(srv, off, n)
			gotApp, _ = f.Read(app, off, n)
			checks++
		})
		setupDone = true
		ready.Broadcast()
	})
	// Sender on host A.
	bA.BindVCI(vci, 0)
	e.Go("sender", func(p *sim.Proc) {
		for !setupDone {
			ready.Wait(p)
		}
		p.Sleep(time.Millisecond) // channel driver stocks its rings
		m, err := msg.FromBytes(hA.Kernel, data)
		if err != nil {
			t.Error(err)
			return
		}
		segs, _ := m.PhysSegments()
		ch := bA.KernelChannel()
		for i, seg := range segs {
			d := queue.Desc{Addr: seg.Addr, Len: uint32(seg.Len), VCI: vci}
			if i == len(segs)-1 {
				d.Flags = queue.FlagEOP
			}
			for !ch.TxRing.TryPush(p, dpm.Host, d) {
				p.Sleep(5 * time.Microsecond)
			}
		}
		bA.KickTx()
	})
	e.RunUntil(e.Now().Add(100 * time.Millisecond))
	e.Shutdown()

	if checks != 1 {
		t.Fatalf("handler ran %d times, want 1", checks)
	}
	for name, got := range map[string][]byte{"driver": gotDrv, "server": gotSrv, "player": gotApp} {
		if !bytes.Equal(got, data) {
			t.Errorf("domain %s saw wrong bytes (%d)", name, len(got))
		}
	}
	// No data-path mapping work happened: the manager performed no
	// uncached transfers and mapped no pages after setup.
	if mgr.Stats().UncachedTransfers != 0 || mgr.Stats().PagesMapped != 0 {
		t.Errorf("data path paid mapping costs: %+v", mgr.Stats())
	}
	if pc.Delivered != 1 {
		t.Errorf("Delivered = %d", pc.Delivered)
	}
}

func TestProvisionPathValidation(t *testing.T) {
	e := sim.NewEngine(1)
	h := hostsim.New(e, hostsim.DEC3000_600(), 1024)
	b := board.New(e, h, board.Config{})
	mgr := NewManager(h, 0)
	e.Go("x", func(p *sim.Proc) {
		if _, err := ProvisionPath(p, h, b, mgr, 1, 5, nil, 2, 4096); err == nil {
			t.Error("empty domain chain accepted")
		}
	})
	e.Run()
	e.Shutdown()
}
