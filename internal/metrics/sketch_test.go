package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQ returns the interpolated exact quantile of data (which it
// sorts in place).
func exactQ(data []float64, q float64) float64 {
	sort.Float64s(data)
	return orderStat(data, q)
}

func checkAccuracy(t *testing.T, name string, data []float64, relTol map[float64]float64) {
	t.Helper()
	qs := make([]float64, 0, len(relTol))
	for q := range relTol {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	s := NewSketch(qs...)
	for _, x := range data {
		s.Observe(x)
	}
	sorted := append([]float64(nil), data...)
	for _, q := range qs {
		got := s.Quantile(q)
		want := exactQ(sorted, q)
		scale := math.Abs(want)
		if scale < 1e-9 {
			scale = 1
		}
		rel := math.Abs(got-want) / scale
		t.Logf("%s p%g: sketch=%.6g exact=%.6g rel-err=%.4f", name, q*100, got, want, rel)
		if rel > relTol[q] {
			t.Errorf("%s p%g: sketch=%.6g exact=%.6g rel-err=%.4f > %.4f",
				name, q*100, got, want, rel, relTol[q])
		}
	}
}

func TestSketchAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = rng.Float64()
	}
	checkAccuracy(t, "uniform", data, map[float64]float64{
		0.50: 0.02, 0.90: 0.02, 0.99: 0.02,
	})
}

func TestSketchAccuracyHeavyTailed(t *testing.T) {
	// Pareto with alpha = 1.5: infinite variance, the regime the
	// ROADMAP's flow-churn generators care about.
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 50000)
	for i := range data {
		u := rng.Float64()
		data[i] = math.Pow(1-u, -1/1.5)
	}
	checkAccuracy(t, "pareto", data, map[float64]float64{
		0.50: 0.05, 0.90: 0.10, 0.99: 0.25,
	})
}

func TestSketchAccuracyAdversarialSorted(t *testing.T) {
	n := 20000
	asc := make([]float64, n)
	desc := make([]float64, n)
	for i := 0; i < n; i++ {
		asc[i] = float64(i + 1)
		desc[i] = float64(n - i)
	}
	tol := map[float64]float64{0.50: 0.05, 0.90: 0.05, 0.99: 0.05}
	checkAccuracy(t, "ascending", asc, tol)
	checkAccuracy(t, "descending", desc, tol)
}

func TestSketchSmallNExact(t *testing.T) {
	s := NewSketch(0.5, 0.9)
	for _, x := range []float64{30, 10, 20} {
		s.Observe(x)
	}
	if got := s.Quantile(0.5); got != 20 {
		t.Errorf("p50 of {10,20,30} = %g, want 20", got)
	}
	if s.Min() != 10 || s.Max() != 30 || s.Count() != 3 {
		t.Errorf("min/max/count = %g/%g/%d", s.Min(), s.Max(), s.Count())
	}
}

func TestSketchDeterministicState(t *testing.T) {
	mk := func() *Sketch {
		rng := rand.New(rand.NewSource(7))
		s := NewSketch(0.5, 0.99)
		for i := 0; i < 10000; i++ {
			s.Observe(rng.ExpFloat64())
		}
		return s
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical observation sequences produced different sketch state")
	}
}

func TestSketchMergeDeterministic(t *testing.T) {
	mkPair := func() (*Sketch, *Sketch) {
		rng := rand.New(rand.NewSource(11))
		a := NewSketch(0.5, 0.9, 0.99)
		b := NewSketch(0.5, 0.9, 0.99)
		for i := 0; i < 8000; i++ {
			a.Observe(rng.Float64() * 100)
		}
		for i := 0; i < 6000; i++ {
			b.Observe(rng.ExpFloat64() * 40)
		}
		return a, b
	}
	a1, b1 := mkPair()
	a2, b2 := mkPair()
	a1.Merge(b1)
	a2.Merge(b2)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same merge inputs produced different merged state")
	}
}

func TestSketchMergeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	all := make([]float64, 0, 40000)
	parts := make([]*Sketch, 4)
	for p := range parts {
		parts[p] = NewSketch(0.5, 0.9, 0.99)
		for i := 0; i < 10000; i++ {
			x := rng.Float64() * 1000
			parts[p].Observe(x)
			all = append(all, x)
		}
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.Merge(p)
	}
	if merged.Count() != 40000 {
		t.Fatalf("merged count = %d, want 40000", merged.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := merged.Quantile(q)
		want := exactQ(all, q)
		rel := math.Abs(got-want) / want
		t.Logf("merged p%g: sketch=%.6g exact=%.6g rel-err=%.4f", q*100, got, want, rel)
		if rel > 0.05 {
			t.Errorf("merged p%g: sketch=%.6g exact=%.6g rel-err=%.4f > 0.05", q*100, got, want, rel)
		}
	}
}

func TestSketchMergeSmallSides(t *testing.T) {
	// Uninitialized (<5 obs) sketches merge by replay, in both
	// directions.
	a := NewSketch(0.5)
	b := NewSketch(0.5)
	a.Observe(1)
	a.Observe(2)
	b.Observe(3)
	a.Merge(b)
	if a.Count() != 3 || a.Quantile(0.5) != 2 {
		t.Errorf("small-small merge: count=%d p50=%g", a.Count(), a.Quantile(0.5))
	}

	big := NewSketch(0.5)
	for i := 1; i <= 1000; i++ {
		big.Observe(float64(i))
	}
	small := NewSketch(0.5)
	small.Observe(500.5)
	smallFirst := NewSketch(0.5)
	smallFirst.Observe(500.5)
	smallFirst.Merge(big)
	big.Merge(small)
	if big.Count() != 1001 || smallFirst.Count() != 1001 {
		t.Fatalf("counts after mixed merges: %d, %d", big.Count(), smallFirst.Count())
	}
	for name, s := range map[string]*Sketch{"big<-small": big, "small<-big": smallFirst} {
		if got := s.Quantile(0.5); math.Abs(got-500.5) > 25 {
			t.Errorf("%s p50 = %g, want ~500.5", name, got)
		}
	}
}

func TestSketchMergeTargetMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched merge targets must panic")
		}
	}()
	a := NewSketch(0.5)
	b := NewSketch(0.9)
	for i := 0; i < 10; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i))
	}
	a.Merge(b)
}

func TestSketchTargetsSortedDeduped(t *testing.T) {
	s := NewSketch(0.99, 0.5, 0.99, 0.9)
	want := []float64{0.5, 0.9, 0.99}
	if !reflect.DeepEqual(s.Targets(), want) {
		t.Errorf("targets = %v, want %v", s.Targets(), want)
	}
}
