package metrics

import (
	"encoding/json"
	"testing"
)

func TestNilRegistryAndNilMetricsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.HighWater("h")
	s := r.Quantiles("s", 0.5)
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatalf("nil registry must hand out nil metrics")
	}
	r.Sample("x", KindCounter, func() int64 { return 1 })
	r.SampleDiag("y", KindGauge, func() int64 { return 1 })
	if r.Len() != 0 {
		t.Fatalf("nil registry Len = %d", r.Len())
	}
	if snap := r.Snapshot(true); snap != nil {
		t.Fatalf("nil registry snapshot = %v", snap)
	}

	// Mutators on nil handles must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(9)
	s.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Value() != 0 || s.Count() != 0 {
		t.Fatalf("nil metric accessors must return zero")
	}
	if s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("nil sketch accessors must return zero")
	}
}

func TestNilMetricOpsZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *HighWater
	var s *Sketch
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		h.Observe(11)
		s.Observe(2.5)
	})
	if allocs != 0 {
		t.Errorf("disabled metric ops: %v allocs/op, want 0", allocs)
	}
}

func TestEnabledMetricOpsZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.HighWater("h")
	s := r.Quantiles("s", 0.5, 0.99)
	for i := 0; i < 16; i++ { // past the sketch init phase
		s.Observe(float64(i))
	}
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(g.Value())
		s.Observe(v)
		v += 1.5
	})
	if allocs != 0 {
		t.Errorf("enabled metric ops: %v allocs/op, want 0", allocs)
	}
}

func TestCounterGaugeHighWater(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	h := r.HighWater("h")
	h.Observe(3)
	h.Observe(9)
	h.Observe(5)
	if h.Value() != 9 {
		t.Errorf("highwater = %d, want 9", h.Value())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration must panic")
		}
	}()
	r := New()
	r.Counter("same")
	r.Gauge("same")
}

func TestSnapshotCanonicalOrderAndDiagExclusion(t *testing.T) {
	r := New()
	r.Counter("z/last").Add(1)
	r.Gauge("a/first").Set(2)
	r.Sample("m/sampled", KindCounter, func() int64 { return 42 })
	r.SampleDiag("b/diag", KindGauge, func() int64 { return 7 })

	canon := r.Snapshot(false)
	if len(canon) != 3 {
		t.Fatalf("canonical snapshot has %d entries, want 3", len(canon))
	}
	for i := 1; i < len(canon); i++ {
		if canon[i-1].Name >= canon[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", canon[i-1].Name, canon[i].Name)
		}
	}
	for _, v := range canon {
		if v.Diag {
			t.Errorf("diagnostic metric %q leaked into canonical snapshot", v.Name)
		}
		if v.Name == "m/sampled" && v.Value != 42 {
			t.Errorf("sampled value = %d, want 42", v.Value)
		}
	}

	full := r.Snapshot(true)
	if len(full) != 4 {
		t.Fatalf("full snapshot has %d entries, want 4", len(full))
	}

	// Canonical snapshots must be byte-stable across repeated
	// marshals of the same state.
	b1, err := json.Marshal(canon)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(r.Snapshot(false))
	if string(b1) != string(b2) {
		t.Errorf("snapshot JSON differs across calls:\n%s\n%s", b1, b2)
	}
}

func TestSampleEvaluatedAtSnapshotTime(t *testing.T) {
	r := New()
	live := int64(0)
	r.Sample("live", KindGauge, func() int64 { return live })
	live = 99
	v, ok := r.Get("live")
	if !ok || v.Value != 99 {
		t.Fatalf("Get(live) = %+v ok=%v, want 99", v, ok)
	}
}

func TestSketchSnapshotFields(t *testing.T) {
	r := New()
	s := r.Quantiles("lat", 0.5, 0.9)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	v, ok := r.Get("lat")
	if !ok {
		t.Fatal("sketch metric missing")
	}
	if v.Kind != "quantile" || v.Count != 100 || v.Min != 1 || v.Max != 100 {
		t.Errorf("sketch value = %+v", v)
	}
	if len(v.Quantiles) != 2 || v.Quantiles[0].Q != 0.5 || v.Quantiles[1].Q != 0.9 {
		t.Errorf("quantile list = %+v", v.Quantiles)
	}
}
