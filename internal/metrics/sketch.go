package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sketch estimates quantiles of a value stream with the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers per target quantile,
// adjusted with a piecewise-parabolic prediction as observations
// arrive. State is fixed-size — no samples are retained — and every
// update is plain float64 arithmetic applied in observation order, so
// for a deterministic observation sequence the sketch state (and the
// JSON snapshot derived from it) is bit-identical on every run.
//
// All methods are no-ops (or zero) on a nil receiver, so hot paths
// can observe unconditionally when telemetry may be disabled.
type Sketch struct {
	qs    []float64 // target quantiles, ascending, deduped
	est   []p2      // one estimator per target, parallel to qs
	count int64
	min   float64
	max   float64
	buf   [5]float64 // first five observations, sorted (init phase)
}

// NewSketch builds a sketch targeting the given quantiles (each in
// (0,1)). With no arguments it targets p50/p90/p99.
func NewSketch(qs ...float64) *Sketch {
	if len(qs) == 0 {
		qs = []float64{0.50, 0.90, 0.99}
	}
	sorted := append([]float64(nil), qs...)
	sort.Float64s(sorted)
	uniq := sorted[:0]
	for i, q := range sorted {
		if q <= 0 || q >= 1 {
			panic(fmt.Sprintf("metrics: quantile %v outside (0,1)", q))
		}
		if i == 0 || q != sorted[i-1] {
			uniq = append(uniq, q)
		}
	}
	s := &Sketch{qs: uniq, est: make([]p2, len(uniq))}
	for i := range s.est {
		s.est[i].q = uniq[i]
	}
	return s
}

// Targets returns the target quantiles (nil on a nil sketch).
func (s *Sketch) Targets() []float64 {
	if s == nil {
		return nil
	}
	return s.qs
}

// Observe feeds one value into the sketch. Allocation-free.
func (s *Sketch) Observe(x float64) {
	if s == nil {
		return
	}
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	if s.count <= 5 {
		i := int(s.count) - 1
		for i > 0 && s.buf[i-1] > x {
			s.buf[i] = s.buf[i-1]
			i--
		}
		s.buf[i] = x
		if s.count == 5 {
			for k := range s.est {
				s.est[k].init(s.buf)
			}
		}
		return
	}
	for k := range s.est {
		s.est[k].observe(x)
	}
}

// Count returns the number of observations (0 on nil).
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Min returns the smallest observation (0 before any observation).
func (s *Sketch) Min() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 before any observation).
func (s *Sketch) Max() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the current estimate for q, which must be one of
// the sketch's target quantiles. With five or fewer observations the
// value is exact (interpolated order statistic). Returns 0 when
// empty or nil.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	if s.count <= 5 {
		return orderStat(s.buf[:int(s.count)], q)
	}
	for i, tq := range s.qs {
		if tq == q {
			return s.est[i].h[2]
		}
	}
	panic(fmt.Sprintf("metrics: quantile %v not a sketch target", q))
}

// orderStat interpolates the q-th order statistic of a small sorted
// slice.
func orderStat(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Merge folds o into s. Both sketches must target the same
// quantiles. The merge is deterministic but order-sensitive
// (a.Merge(b) and b.Merge(a) may differ in low-order bits), so
// callers that need canonical results must merge in a canonical
// order, exactly like the parexp result merge. o is not modified.
//
// Initialized estimators combine by piecewise-linear CDF averaging:
// the union of both marker sets is re-sampled at the ideal marker
// fractions of the combined stream, and marker positions reset to
// their ideal values. Empirically this keeps the estimate within the
// same error band as feeding one sketch the concatenated stream (see
// sketch_test.go).
func (s *Sketch) Merge(o *Sketch) {
	if s == nil || o == nil || o.count == 0 {
		return
	}
	if len(s.qs) != len(o.qs) {
		panic("metrics: merging sketches with different targets")
	}
	for i := range s.qs {
		if s.qs[i] != o.qs[i] {
			panic("metrics: merging sketches with different targets")
		}
	}
	if o.count < 5 {
		for i := 0; i < int(o.count); i++ {
			s.Observe(o.buf[i])
		}
		return
	}
	if s.count < 5 {
		old := s.buf
		oldn := int(s.count)
		s.count = o.count
		s.min, s.max = o.min, o.max
		s.buf = o.buf
		copy(s.est, o.est)
		for i := 0; i < oldn; i++ {
			s.Observe(old[i])
		}
		return
	}
	ca, cb := s.count, o.count
	for k := range s.est {
		s.est[k] = mergeP2(&s.est[k], ca, &o.est[k], cb)
	}
	s.count = ca + cb
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// p2 is a single-quantile P² estimator: five marker heights h at
// (float) positions n, tracked against desired positions np moving by
// dn per observation.
type p2 struct {
	q  float64
	h  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64
}

func (p *p2) init(sorted [5]float64) {
	q := p.q
	p.h = sorted
	p.n = [5]float64{1, 2, 3, 4, 5}
	p.np = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

func (p *p2) observe(x float64) {
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3 && x >= p.h[k+1]; k++ {
		}
	}
	for i := k + 1; i < 5; i++ {
		p.n[i]++
	}
	for i := 0; i < 5; i++ {
		p.np[i] += p.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := p.np[i] - p.n[i]
		if (d >= 1 && p.n[i+1]-p.n[i] > 1) || (d <= -1 && p.n[i-1]-p.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			if hp := p.parabolic(i, sign); p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, sign)
			}
			p.n[i] += sign
		}
	}
}

func (p *p2) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.n[i+1]-p.n[i-1])*
		((p.n[i]-p.n[i-1]+d)*(p.h[i+1]-p.h[i])/(p.n[i+1]-p.n[i])+
			(p.n[i+1]-p.n[i]-d)*(p.h[i]-p.h[i-1])/(p.n[i]-p.n[i-1]))
}

func (p *p2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.n[j]-p.n[i])
}

// cdf evaluates the estimator's piecewise-linear empirical CDF at x,
// mapping marker i to cumulative fraction (n[i]-1)/(c-1).
func (p *p2) cdf(c int64, x float64) float64 {
	if x <= p.h[0] {
		return 0
	}
	if x >= p.h[4] {
		return 1
	}
	for i := 0; i < 4; i++ {
		if x < p.h[i+1] {
			den := p.h[i+1] - p.h[i]
			t := 0.0
			if den > 0 {
				t = (x - p.h[i]) / den
			}
			r := p.n[i] + t*(p.n[i+1]-p.n[i])
			return (r - 1) / (float64(c) - 1)
		}
	}
	return 1
}

// mergeP2 combines two initialized estimators for the same target
// quantile by count-weighted CDF averaging over the union of their
// marker heights, then re-samples five markers at the combined
// stream's ideal fractions.
func mergeP2(a *p2, ca int64, b *p2, cb int64) p2 {
	var knots [10]float64
	copy(knots[0:5], a.h[:])
	copy(knots[5:10], b.h[:])
	sort.Float64s(knots[:])
	wa, wb := float64(ca), float64(cb)
	var fs [10]float64
	for i, x := range knots {
		fs[i] = (wa*a.cdf(ca, x) + wb*b.cdf(cb, x)) / (wa + wb)
	}
	q := a.q
	fr := [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	n := ca + cb
	var out p2
	out.q = q
	for i, f := range fr {
		out.h[i] = invertCDF(&knots, &fs, f)
	}
	for i := 1; i < 5; i++ {
		if out.h[i] < out.h[i-1] {
			out.h[i] = out.h[i-1]
		}
	}
	for i, f := range fr {
		ideal := 1 + f*(float64(n)-1)
		out.n[i] = math.Round(ideal)
		out.np[i] = ideal
	}
	// Marker positions must stay strictly increasing for the update
	// rule's divisions; nudge collisions apart (only reachable for
	// very small combined counts).
	for i := 1; i < 5; i++ {
		if out.n[i] <= out.n[i-1] {
			out.n[i] = out.n[i-1] + 1
		}
	}
	out.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return out
}

// invertCDF finds x with F(x) = f on the piecewise-linear CDF given
// by (knots, fs).
func invertCDF(knots *[10]float64, fs *[10]float64, f float64) float64 {
	if f <= fs[0] {
		return knots[0]
	}
	for j := 1; j < 10; j++ {
		if fs[j] >= f {
			den := fs[j] - fs[j-1]
			if den <= 0 {
				return knots[j-1]
			}
			t := (f - fs[j-1]) / den
			return knots[j-1] + t*(knots[j]-knots[j-1])
		}
	}
	return knots[9]
}
