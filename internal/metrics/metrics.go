// Package metrics is the deterministic telemetry plane: typed metric
// families (counter, gauge, high-water mark, streaming quantile
// sketch) registered per component under a Registry and snapshotted
// into a canonical, seed-stable JSON document.
//
// Design rules, in priority order:
//
//  1. Observability must not perturb the simulation. No metric op
//     touches engine state, schedules events, or draws randomness.
//  2. Allocation-free when idle. A nil *Registry hands out nil metric
//     pointers, and every mutator is safe (a no-op) on a nil
//     receiver, so instrumented hot paths pay one predictable branch
//     and zero allocations when telemetry is off. Enabled mutators
//     are allocation-free too (fixed-size state, pinned by
//     AllocsPerRun tests).
//  3. Snapshots are canonical: metrics sort by name, structs encode
//     with a fixed field order (no maps), and no wall-clock state is
//     embedded — the same seed yields byte-identical snapshots on
//     every run and at any shard/worker count.
//
// Two observation styles coexist:
//
//   - Push metrics (Counter/Gauge/HighWater/Sketch handles) for values
//     that must be observed continuously (queue occupancy, per-PDU
//     latency). The component stores the pointer and mutates it
//     inline.
//   - Sampled metrics (Sample/SampleDiag) for values a component
//     already tracks in its own Stats struct. The registry stores a
//     closure that is evaluated once, at snapshot time — zero
//     hot-path cost.
//
// Metrics whose value legitimately depends on the execution substrate
// (shard count, worker count, wall clock) are registered via the Diag
// variants and excluded from canonical snapshots; they never appear
// in byte-compared artifacts.
package metrics

import (
	"fmt"
	"sort"
)

// Kind classifies a metric for snapshot consumers.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHighWater
	KindQuantile
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHighWater:
		return "highwater"
	case KindQuantile:
		return "quantile"
	}
	return "unknown"
}

// Counter is a monotonically increasing event count. All methods are
// no-ops on a nil receiver.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n must be >= 0; negative deltas belong on a Gauge).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that can move both ways. All
// methods are no-ops on a nil receiver.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the level by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HighWater retains the maximum observed value. All methods are
// no-ops on a nil receiver.
type HighWater struct{ v int64 }

// Observe records v if it exceeds the current maximum.
func (h *HighWater) Observe(v int64) {
	if h != nil && v > h.v {
		h.v = v
	}
}

// Value returns the maximum observed so far (0 on nil).
func (h *HighWater) Value() int64 {
	if h == nil {
		return 0
	}
	return h.v
}

// entry is one registered metric in registration order.
type entry struct {
	name string
	kind Kind
	diag bool // excluded from canonical snapshots

	c      *Counter
	g      *Gauge
	h      *HighWater
	s      *Sketch
	sample func() int64 // lazily evaluated at snapshot time
}

// Registry holds the metrics of one experiment. A nil *Registry is
// the disabled plane: every constructor returns nil and every
// Sample registration is a no-op.
//
// Registration must happen single-threaded (topology construction
// time). Runtime mutation of a push metric is confined to the
// engine-shard goroutine that owns the instrumented component, and
// snapshots are taken after the run quiesces, so no locking is
// needed; see DESIGN §11 for the happens-before argument.
type Registry struct {
	entries []entry
	index   map[string]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: make(map[string]int)}
}

func (r *Registry) add(e entry) {
	if _, dup := r.index[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", e.name))
	}
	r.index[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers and returns a push counter (nil if r is nil).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(entry{name: name, kind: KindCounter, c: c})
	return c
}

// Gauge registers and returns a push gauge (nil if r is nil).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.add(entry{name: name, kind: KindGauge, g: g})
	return g
}

// HighWater registers and returns a push high-water mark (nil if r is
// nil).
func (r *Registry) HighWater(name string) *HighWater {
	if r == nil {
		return nil
	}
	h := &HighWater{}
	r.add(entry{name: name, kind: KindHighWater, h: h})
	return h
}

// Quantiles registers and returns a streaming quantile sketch
// targeting the given quantiles (nil if r is nil). Values are
// dimensionless from the registry's point of view; by convention the
// repo observes microseconds of simulated time.
func (r *Registry) Quantiles(name string, qs ...float64) *Sketch {
	if r == nil {
		return nil
	}
	s := NewSketch(qs...)
	r.add(entry{name: name, kind: KindQuantile, s: s})
	return s
}

// Sample registers a canonical sampled metric: fn is evaluated at
// snapshot time. Use for values a component already tracks in its own
// stats — zero hot-path cost. No-op if r is nil.
func (r *Registry) Sample(name string, kind Kind, fn func() int64) {
	if r == nil {
		return
	}
	r.add(entry{name: name, kind: kind, sample: fn})
}

// SampleDiag registers a diagnostic sampled metric: evaluated at
// snapshot time but excluded from canonical snapshots because its
// value depends on the execution substrate (shard count, workers,
// wall clock) rather than on simulated behaviour. No-op if r is nil.
func (r *Registry) SampleDiag(name string, kind Kind, fn func() int64) {
	if r == nil {
		return
	}
	r.add(entry{name: name, kind: kind, diag: true, sample: fn})
}

// Len returns the number of registered metrics (0 on nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// QuantileValue is one (q, estimate) pair in a snapshot.
type QuantileValue struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

// Value is one metric in a snapshot. Scalar kinds use Value;
// quantile sketches use Count/Min/Max/Quantiles.
type Value struct {
	Name      string          `json:"name"`
	Kind      string          `json:"kind"`
	Diag      bool            `json:"diag,omitempty"`
	Value     int64           `json:"value"`
	Count     int64           `json:"count,omitempty"`
	Min       float64         `json:"min,omitempty"`
	Max       float64         `json:"max,omitempty"`
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
}

// Snapshot materializes the registry. Canonical snapshots
// (includeDiag=false) contain only simulated-behaviour metrics and
// are byte-identical per seed at any shard/worker count once JSON
// encoded: entries sort by name and contain no maps or timestamps.
// Nil registries snapshot to nil.
func (r *Registry) Snapshot(includeDiag bool) []Value {
	if r == nil {
		return nil
	}
	out := make([]Value, 0, len(r.entries))
	for _, e := range r.entries {
		if e.diag && !includeDiag {
			continue
		}
		v := Value{Name: e.name, Kind: e.kind.String(), Diag: e.diag}
		switch {
		case e.sample != nil:
			v.Value = e.sample()
		case e.c != nil:
			v.Value = e.c.Value()
		case e.g != nil:
			v.Value = e.g.Value()
		case e.h != nil:
			v.Value = e.h.Value()
		case e.s != nil:
			v.Count = e.s.Count()
			if v.Count > 0 {
				v.Min, v.Max = e.s.Min(), e.s.Max()
				v.Quantiles = make([]QuantileValue, 0, len(e.s.qs))
				for _, q := range e.s.qs {
					v.Quantiles = append(v.Quantiles, QuantileValue{Q: q, V: e.s.Quantile(q)})
				}
			}
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the snapshot Value of a single metric by name (zero
// Value and false if absent or r is nil). Intended for tests and
// report tables.
func (r *Registry) Get(name string) (Value, bool) {
	if r == nil {
		return Value{}, false
	}
	i, ok := r.index[name]
	if !ok {
		return Value{}, false
	}
	e := r.entries[i]
	v := Value{Name: e.name, Kind: e.kind.String(), Diag: e.diag}
	switch {
	case e.sample != nil:
		v.Value = e.sample()
	case e.c != nil:
		v.Value = e.c.Value()
	case e.g != nil:
		v.Value = e.g.Value()
	case e.h != nil:
		v.Value = e.h.Value()
	case e.s != nil:
		v.Count = e.s.Count()
		if v.Count > 0 {
			v.Min, v.Max = e.s.Min(), e.s.Max()
			for _, q := range e.s.qs {
				v.Quantiles = append(v.Quantiles, QuantileValue{Q: q, V: e.s.Quantile(q)})
			}
		}
	}
	return v, true
}
