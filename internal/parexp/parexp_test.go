package parexp_test

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hostsim"
	. "repro/internal/parexp"
)

// makeJobs builds n CPU-bound jobs whose values are pure functions of
// their index, adversarially unequal in duration so parallel completion
// order differs from submission order.
func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job%d", i),
			Seed: int64(i),
			Run: func() (any, error) {
				// Vary the work so late-submitted jobs often finish first.
				iters := 1000 * ((n - i) % 5 * 7)
				acc := uint64(i)
				for k := 0; k < iters; k++ {
					acc = acc*6364136223846793005 + 1442695040888963407
				}
				return fmt.Sprintf("v%d-%d", i, acc%97), nil
			},
		}
	}
	return jobs
}

func values(results []Result) []any {
	out := make([]any, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out
}

// TestWorkerCountInvariance is the core determinism contract: the
// merged results slice is identical for 1 and 8 workers, in value and
// in order.
func TestWorkerCountInvariance(t *testing.T) {
	jobs := makeJobs(37)
	serial := Run(1, jobs)
	parallel := Run(8, jobs)
	if !reflect.DeepEqual(values(serial), values(parallel)) {
		t.Errorf("results differ between 1 and 8 workers:\n%v\n%v", values(serial), values(parallel))
	}
	for i, r := range parallel {
		if r.Name != jobs[i].Name || r.Seed != jobs[i].Seed {
			t.Errorf("slot %d holds %q seed %d, want %q seed %d", i, r.Name, r.Seed, jobs[i].Name, jobs[i].Seed)
		}
	}
}

// TestWorkerCountInvarianceSimulated runs real sim.Engine experiments —
// the actual workload the harness fans out — and demands bit-identical
// simulated outcomes across worker counts.
func TestWorkerCountInvarianceSimulated(t *testing.T) {
	var jobs []Job
	for _, size := range []int{1024, 4096} {
		size := size
		jobs = append(jobs, Job{
			Name: fmt.Sprintf("latency/%d", size),
			Run: func() (any, error) {
				tb := core.NewTestbed(core.Options{Profile: hostsim.DEC3000_600()})
				defer tb.Shutdown()
				d, err := tb.RunLatency(core.UDPIP, size, 2)
				return d, err
			},
		})
	}
	a := Run(1, jobs)
	b := Run(4, jobs)
	if err := FirstErr(a); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(values(a), values(b)) {
		t.Errorf("simulated results differ across worker counts: %v vs %v", values(a), values(b))
	}
}

// TestPanicIsolation: a panicking job yields an error in its own slot;
// every sibling completes normally.
func TestPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		jobs := makeJobs(9)
		jobs[3].Run = func() (any, error) { panic("boom") }
		results := Run(workers, jobs)
		if results[3].Err == nil || !strings.Contains(results[3].Err.Error(), "boom") {
			t.Errorf("workers=%d: panicking job error = %v, want panic message", workers, results[3].Err)
		}
		if !strings.Contains(results[3].Err.Error(), `job "job3"`) {
			t.Errorf("workers=%d: panic error does not name the job: %v", workers, results[3].Err)
		}
		for i, r := range results {
			if i == 3 {
				continue
			}
			if r.Err != nil || r.Value == nil {
				t.Errorf("workers=%d: sibling %d did not complete: value=%v err=%v", workers, i, r.Value, r.Err)
			}
		}
	}
}

// TestNoGoroutineLeak: after Run returns, the pool's goroutines are
// gone.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		Run(8, makeJobs(24))
	}
	// Allow the runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Runner completed", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestErrorLandsInSlot(t *testing.T) {
	sentinel := errors.New("configured badly")
	jobs := makeJobs(5)
	jobs[2].Run = func() (any, error) { return nil, sentinel }
	results := Run(4, jobs)
	if !errors.Is(results[2].Err, sentinel) {
		t.Errorf("slot 2 err = %v, want sentinel", results[2].Err)
	}
	err := FirstErr(results)
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "job2") {
		t.Errorf("FirstErr = %v, want sentinel wrapped with job2", err)
	}
	if FirstErr(Run(2, makeJobs(4))) != nil {
		t.Error("FirstErr non-nil on a clean batch")
	}
}

func TestWorkerDefaultsAndClamp(t *testing.T) {
	// Zero and negative worker counts must still run everything.
	for _, w := range []int{0, -3, 100} {
		results := Run(w, makeJobs(6))
		if len(results) != 6 {
			t.Fatalf("workers=%d: %d results, want 6", w, len(results))
		}
		if err := FirstErr(results); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
	// An empty batch is a no-op.
	if got := Run(4, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

func TestCostHintSchedulesNotMerges(t *testing.T) {
	jobs := makeJobs(12)
	for i := range jobs {
		jobs[i].Cost = float64(i % 4)
	}
	plain := values(Run(1, jobs))
	hinted := values(Run(4, jobs))
	if !reflect.DeepEqual(plain, hinted) {
		t.Errorf("cost hints changed merged results:\n%v\n%v", plain, hinted)
	}
}

func TestWallAndAllocsRecorded(t *testing.T) {
	jobs := []Job{{Name: "alloc", Run: func() (any, error) {
		buf := make([][]byte, 0, 100)
		for i := 0; i < 100; i++ {
			buf = append(buf, make([]byte, 1024))
		}
		return len(buf), nil
	}}}
	r := Run(1, jobs)[0]
	if r.Wall <= 0 {
		t.Error("no wall time recorded")
	}
	if r.Allocs < 100 {
		t.Errorf("allocs = %d, want ≥ 100", r.Allocs)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	if p := Percentile(ds, 50); p != 3 {
		t.Errorf("p50 = %v, want 3", p)
	}
	if p := Percentile(ds, 100); p != 5 {
		t.Errorf("p100 = %v, want 5", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("p50 of empty = %v, want 0", p)
	}
}
