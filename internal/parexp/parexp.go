// Package parexp executes independent simulation experiments across a
// bounded worker pool while preserving the repository's bit-for-bit
// determinism discipline.
//
// Every experiment in the evaluation harness — a Table 1 round, one
// Figure 2–4 sweep point, an ablation cell, a loss-sweep rate — is an
// isolated, seeded, deterministic run: it builds its own sim.Engine,
// shares no mutable state with its siblings, and its outcome is a pure
// function of its configuration and seed. Such jobs may execute in any
// order, on any number of OS threads, without changing a single
// simulated bit. parexp exploits that: jobs fan out across workers, and
// the results are merged back in canonical submission order, so
// everything derived from them (tables, figures, JSON artifacts) is
// byte-identical regardless of the worker count. Workers==1 runs every
// job inline on the calling goroutine in submission order — the exact
// serial path the harness used before parallel execution existed.
//
// A panicking job is recovered into that job's Result.Err, so one bad
// configuration cannot kill the rest of a sweep. Per-job wall time and
// a heap-allocation count are recorded for the scaling benchmarks;
// the allocation count is exact at Workers==1 and includes concurrently
// running siblings' allocations otherwise (the Go runtime only exposes
// process-wide counters).
package parexp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Job is one independent experiment. Run must be self-contained: it
// builds whatever simulated system it needs (seeded from Seed or from
// configuration it captured), runs it, and returns the outcome. Run
// must not touch state shared with other jobs.
type Job struct {
	// Name identifies the job in results, error reports, and the
	// harness's -run filter, e.g. "fig3/double-cell DMA/65536".
	Name string
	// Seed is the simulation seed the job runs with, carried into the
	// Result for reporting. parexp does not interpret it.
	Seed int64
	// Cost is an optional scheduling hint: when any job in a batch sets
	// a non-zero Cost, parallel workers start jobs in descending Cost
	// order (longest-processing-time-first), which tightens the makespan
	// of heterogeneous sweeps. Merge order is unaffected.
	Cost float64
	// Run executes the experiment.
	Run func() (any, error)
}

// Result is one job's outcome, in the same slice position the job was
// submitted in.
type Result struct {
	Name  string
	Seed  int64
	Value any   // Run's return value; nil if it errored or panicked
	Err   error // Run's error, or the recovered panic
	// Wall is the job's wall-clock execution time.
	Wall time.Duration
	// Allocs is the process heap-allocation delta bracketing the job:
	// exact when Workers==1, an upper bound (it includes concurrent
	// siblings) otherwise.
	Allocs uint64
}

// Runner executes batches of jobs.
type Runner struct {
	// Workers bounds the pool: 0 (or negative) selects
	// runtime.GOMAXPROCS(0); 1 executes jobs inline, serially, in
	// submission order on the calling goroutine.
	Workers int
}

// Run is the convenience form of Runner.Run.
func Run(workers int, jobs []Job) []Result {
	return (&Runner{Workers: workers}).Run(jobs)
}

// Run executes every job and returns their results indexed by
// submission order. It returns only after every worker goroutine has
// exited, so a completed Run leaves no goroutines behind.
func (r *Runner) Run(jobs []Job) []Result {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))

	if workers <= 1 {
		for i := range jobs {
			results[i] = runOne(&jobs[i])
		}
		return results
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(&jobs[i])
			}
		}()
	}
	for _, i := range dispatchOrder(jobs) {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// dispatchOrder is the order workers pick jobs up in: submission order,
// unless Cost hints are present, in which case costlier jobs start
// first so a long job is not left to straggle at the end of the batch.
// Only scheduling is affected; results always merge by submission index.
func dispatchOrder(jobs []Job) []int {
	order := make([]int, len(jobs))
	hinted := false
	for i := range jobs {
		order[i] = i
		if jobs[i].Cost != 0 {
			hinted = true
		}
	}
	if hinted {
		sort.SliceStable(order, func(a, b int) bool {
			return jobs[order[a]].Cost > jobs[order[b]].Cost
		})
	}
	return order
}

// runOne executes a single job with the measurement bracket and panic
// barrier.
func runOne(j *Job) (res Result) {
	res.Name = j.Name
	res.Seed = j.Seed
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		res.Allocs = after.Mallocs - before.Mallocs
		if p := recover(); p != nil {
			res.Value = nil
			res.Err = fmt.Errorf("parexp: job %q panicked: %v\n%s", j.Name, p, debug.Stack())
		}
	}()
	res.Value, res.Err = j.Run()
	return res
}

// FirstErr returns the first failed job's error in canonical order,
// wrapped with the job's name, or nil if every job succeeded.
func FirstErr(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("%s: %w", results[i].Name, results[i].Err)
		}
	}
	return nil
}

// Walls returns every job's wall time in canonical order — input for
// percentile summaries of a batch.
func Walls(results []Result) []time.Duration {
	out := make([]time.Duration, len(results))
	for i := range results {
		out[i] = results[i].Wall
	}
	return out
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of ds by
// nearest-rank on a sorted copy; 0 for an empty slice.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
