package parexp

import "testing"

func TestDispatchOrderByDescendingCost(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i].Cost = float64(i % 3)
	}
	order := dispatchOrder(jobs)
	for i := 1; i < len(order); i++ {
		if jobs[order[i-1]].Cost < jobs[order[i]].Cost {
			t.Fatalf("dispatch order not by descending cost: %v", order)
		}
	}
	// Without hints the order is submission order.
	plain := dispatchOrder(make([]Job, 4))
	for i, v := range plain {
		if v != i {
			t.Fatalf("unhinted dispatch order = %v, want identity", plain)
		}
	}
}
