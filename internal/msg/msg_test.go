package msg

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testSpace(seed int64) *mem.AddressSpace {
	return mem.New(mem.Config{Pages: 256, Seed: seed}).NewSpace("t")
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + 7)
	}
	return b
}

func TestFromBytesRoundTrip(t *testing.T) {
	s := testSpace(1)
	data := pattern(10000)
	m, err := FromBytes(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 10000 {
		t.Errorf("Len = %d", m.Len())
	}
	got, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestEmptyMessage(t *testing.T) {
	m := New()
	if m.Len() != 0 || len(m.Fragments()) != 0 {
		t.Error("empty message not empty")
	}
	b, err := m.Bytes()
	if err != nil || len(b) != 0 {
		t.Error("Bytes of empty message")
	}
	e, err := FromBytes(testSpace(1), nil)
	if err != nil || e.Len() != 0 {
		t.Error("FromBytes(nil)")
	}
}

func TestNewDropsEmptyFragments(t *testing.T) {
	s := testSpace(1)
	va, _ := s.Alloc(100)
	m := New(
		Fragment{Space: s, VA: va, Len: 0},
		Fragment{Space: s, VA: va, Len: 10},
	)
	if len(m.Fragments()) != 1 {
		t.Errorf("fragments = %d, want 1", len(m.Fragments()))
	}
}

func TestPrependHeader(t *testing.T) {
	s := testSpace(2)
	body, _ := FromBytes(s, pattern(100))
	hdrVA, _ := s.Alloc(20)
	s.WriteVirt(hdrVA, []byte("HDRHDRHDRHDRHDRHDR20"))
	m := body.Prepend(Fragment{Space: s, VA: hdrVA, Len: 20})
	if m.Len() != 120 {
		t.Errorf("Len = %d", m.Len())
	}
	got, _ := m.Bytes()
	if string(got[:20]) != "HDRHDRHDRHDRHDRHDR20" {
		t.Errorf("header = %q", got[:20])
	}
	if !bytes.Equal(got[20:], pattern(100)) {
		t.Error("body shifted")
	}
	// Original message untouched.
	if body.Len() != 100 {
		t.Error("Prepend mutated receiver")
	}
}

func TestTrimPrefixStripsHeader(t *testing.T) {
	s := testSpace(3)
	data := pattern(500)
	m, _ := FromBytes(s, data)
	stripped, err := m.TrimPrefix(100)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := stripped.Bytes()
	if !bytes.Equal(got, data[100:]) {
		t.Error("TrimPrefix wrong bytes")
	}
}

func TestSplitSharesMemory(t *testing.T) {
	s := testSpace(4)
	data := pattern(8192)
	m, _ := FromBytes(s, data)
	head, tail, err := m.Split(5000)
	if err != nil {
		t.Fatal(err)
	}
	if head.Len() != 5000 || tail.Len() != 3192 {
		t.Errorf("lens = %d/%d", head.Len(), tail.Len())
	}
	// Mutate underlying memory through the head view; tail view of the
	// same page must be unaffected, but a write in the shared region is
	// visible through the original message (zero copy).
	f := head.Fragments()[0]
	f.Space.WriteVirt(f.VA, []byte{0xFF})
	all, _ := m.Bytes()
	if all[0] != 0xFF {
		t.Error("split did not share memory with original")
	}
}

func TestSplitEdges(t *testing.T) {
	s := testSpace(5)
	m, _ := FromBytes(s, pattern(100))
	h, tl, err := m.Split(0)
	if err != nil || h.Len() != 0 || tl.Len() != 100 {
		t.Error("Split(0) wrong")
	}
	h, tl, err = m.Split(100)
	if err != nil || h.Len() != 100 || tl.Len() != 0 {
		t.Error("Split(len) wrong")
	}
	if _, _, err = m.Split(101); err == nil {
		t.Error("Split beyond length accepted")
	}
	if _, _, err = m.Split(-1); err == nil {
		t.Error("Split(-1) accepted")
	}
}

func TestAppend(t *testing.T) {
	s := testSpace(6)
	a, _ := FromBytes(s, []byte("hello "))
	b, _ := FromBytes(s, []byte("world"))
	m := a.Append(b)
	got, _ := m.Bytes()
	if string(got) != "hello world" {
		t.Errorf("got %q", got)
	}
}

func TestPhysSegmentsHeaderPlusBody(t *testing.T) {
	// The §2.2 figure: a PDU of header + n-page body occupies about
	// n+2 physical buffers when the body is not page aligned.
	s := testSpace(7)
	body, err := FromBytesAligned(s, pattern(2*4096)) // ends on page boundary
	if err != nil {
		t.Fatal(err)
	}
	hdrVA, _ := s.Alloc(28)
	m := body.Prepend(Fragment{Space: s, VA: hdrVA, Len: 28})
	segs, err := m.PhysSegments()
	if err != nil {
		t.Fatal(err)
	}
	// header page + 2 body pages = 3 buffers (maybe fewer if frames
	// happen to abut, never more).
	if len(segs) > 3 {
		t.Errorf("segments = %d, want ≤ 3", len(segs))
	}
	total := 0
	for _, sg := range segs {
		total += sg.Len
	}
	if total != m.Len() {
		t.Errorf("segments cover %d bytes, want %d", total, m.Len())
	}
}

func TestFromBytesAlignedEndsAtPageBoundary(t *testing.T) {
	s := testSpace(8)
	for _, n := range []int{1, 100, 4096, 5000, 12288} {
		m, err := FromBytesAligned(s, pattern(n))
		if err != nil {
			t.Fatal(err)
		}
		f := m.Fragments()[0]
		end := uint32(f.VA) + uint32(f.Len)
		if end%4096 != 0 {
			t.Errorf("n=%d: buffer ends at offset %d, want page boundary", n, end%4096)
		}
		got, _ := m.Bytes()
		if !bytes.Equal(got, pattern(n)) {
			t.Errorf("n=%d: contents wrong", n)
		}
	}
}

func TestWireUnwire(t *testing.T) {
	m0 := mem.New(mem.Config{Pages: 32, Seed: 1})
	s := m0.NewSpace("w")
	m, _ := FromBytes(s, pattern(3*4096))
	if err := m.WireAll(); err != nil {
		t.Fatal(err)
	}
	f := m.Fragments()[0]
	fr, _ := s.Mapped(s.VPN(f.VA))
	if !m0.Wired(fr) {
		t.Error("first page not wired")
	}
	if err := m.UnwireAll(); err != nil {
		t.Fatal(err)
	}
	if m0.Wired(fr) {
		t.Error("first page still wired")
	}
}

func TestString(t *testing.T) {
	s := testSpace(9)
	m, _ := FromBytes(s, pattern(10))
	if m.String() != "msg{1 frags, 10 bytes}" {
		t.Errorf("String = %q", m.String())
	}
}

// Property: for any content and any split point, Split-then-concatenate
// is identity, and PhysSegments always exactly covers the message.
func TestSplitConcatIdentityQuick(t *testing.T) {
	s := testSpace(10)
	f := func(data []byte, at uint16) bool {
		if len(data) == 0 {
			return true
		}
		m, err := FromBytes(s, data)
		if err != nil {
			return true // allocator exhausted by quick iterations; skip
		}
		n := int(at) % (len(data) + 1)
		head, tail, err := m.Split(n)
		if err != nil {
			return false
		}
		joined, err := head.Append(tail).Bytes()
		if err != nil || !bytes.Equal(joined, data) {
			return false
		}
		segs, err := m.PhysSegments()
		if err != nil {
			return false
		}
		total := 0
		for _, sg := range segs {
			total += sg.Len
		}
		return total == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
