// Package msg provides the x-kernel style message abstraction: a chain
// of buffer fragments supporting cheap header prepend/strip and
// zero-copy splitting.
//
// Fragments are views onto simulated virtual memory, so a message built
// by an application and passed down a protocol stack arrives at the
// driver as the paper describes (§2.2): a small header fragment in one
// buffer plus a data fragment whose pages are generally not physically
// contiguous. The driver's PhysSegments is where the "physical buffer
// proliferation" the paper analyses becomes visible.
package msg

import (
	"fmt"

	"repro/internal/mem"
)

// Fragment is one contiguous *virtual* extent of a message.
type Fragment struct {
	Space *mem.AddressSpace
	VA    mem.VirtAddr
	Len   int
}

// Message is a sequence of fragments. The zero value is an empty message.
// Operations return new Message values sharing the underlying memory;
// the bytes themselves are never copied by message manipulation.
//
// Messages must not be copied by value: short fragment lists live in the
// inline array, so a copy would alias the original's storage.
type Message struct {
	frags  []Fragment
	inline [4]Fragment // in-struct storage for short fragment lists
}

// newMessage returns an empty message whose fragment list has room for n
// entries — in the struct itself when n fits the inline array, so the
// typical header+data chain costs a single allocation.
func newMessage(n int) *Message {
	m := &Message{}
	if n <= len(m.inline) {
		m.frags = m.inline[:0]
	} else {
		m.frags = make([]Fragment, 0, n)
	}
	return m
}

// New builds a message from fragments (empty fragments are dropped).
func New(frags ...Fragment) *Message {
	m := newMessage(len(frags))
	for _, f := range frags {
		if f.Len > 0 {
			m.frags = append(m.frags, f)
		}
	}
	return m
}

// FromBytes allocates fresh pages in space, copies data into them, and
// returns a single-fragment message. The underlying frames come from the
// fragmenting allocator, so multi-page messages are physically scattered.
func FromBytes(space *mem.AddressSpace, data []byte) (*Message, error) {
	if len(data) == 0 {
		return New(), nil
	}
	va, err := space.Alloc(len(data))
	if err != nil {
		return nil, err
	}
	if err := space.WriteVirt(va, data); err != nil {
		return nil, err
	}
	return New(Fragment{Space: space, VA: va, Len: len(data)}), nil
}

// FromBytesContiguous allocates data in *physically contiguous* frames
// on a best-effort basis — the OS support the paper reports
// experimenting with for copy-free data paths (§2.2). When no
// sufficiently long run of free frames exists it falls back to the
// ordinary fragmenting allocation; the bool result reports which
// happened.
func FromBytesContiguous(space *mem.AddressSpace, data []byte) (*Message, bool, error) {
	if len(data) == 0 {
		return New(), true, nil
	}
	m := space.Memory()
	pages := (len(data) + m.PageSize() - 1) / m.PageSize()
	frames, err := m.AllocContiguous(pages)
	if err != nil {
		msg, ferr := FromBytes(space, data)
		return msg, false, ferr
	}
	va, err := space.MapFrames(frames)
	if err != nil {
		return nil, false, err
	}
	if err := space.WriteVirt(va, data); err != nil {
		return nil, false, err
	}
	return New(Fragment{Space: space, VA: va, Len: len(data)}), true, nil
}

// FromBytesOffset is FromBytes but starts the data at the given byte
// offset within its first page — the deliberately misaligned
// application message of the §2.2 fragmentation analysis.
func FromBytesOffset(space *mem.AddressSpace, data []byte, offset int) (*Message, error) {
	if len(data) == 0 {
		return New(), nil
	}
	va, err := space.AllocAligned(len(data), offset)
	if err != nil {
		return nil, err
	}
	if err := space.WriteVirt(va, data); err != nil {
		return nil, err
	}
	return New(Fragment{Space: space, VA: va, Len: len(data)}), nil
}

// FromBytesAligned is FromBytes but places the data so that it *ends*
// exactly at a page boundary — the §2.5.2 arrangement that lets every
// non-final buffer of a PDU align with the page-boundary-stop DMA.
func FromBytesAligned(space *mem.AddressSpace, data []byte) (*Message, error) {
	if len(data) == 0 {
		return New(), nil
	}
	ps := space.Memory().PageSize()
	offset := (ps - len(data)%ps) % ps
	va, err := space.AllocAligned(len(data), offset)
	if err != nil {
		return nil, err
	}
	if err := space.WriteVirt(va, data); err != nil {
		return nil, err
	}
	return New(Fragment{Space: space, VA: va, Len: len(data)}), nil
}

// Len returns the total message length in bytes.
func (m *Message) Len() int {
	n := 0
	for _, f := range m.frags {
		n += f.Len
	}
	return n
}

// Fragments returns the fragment list (not a copy; callers must not
// mutate it).
func (m *Message) Fragments() []Fragment { return m.frags }

// Prepend returns a new message with f in front — the x-kernel header
// push operation.
func (m *Message) Prepend(f Fragment) *Message {
	if f.Len == 0 {
		return m
	}
	out := newMessage(len(m.frags) + 1)
	out.frags = append(out.frags, f)
	out.frags = append(out.frags, m.frags...)
	return out
}

// Append returns the concatenation m ++ other.
func (m *Message) Append(other *Message) *Message {
	out := newMessage(len(m.frags) + len(other.frags))
	out.frags = append(out.frags, m.frags...)
	out.frags = append(out.frags, other.frags...)
	return out
}

// Split returns the first n bytes and the remainder as two messages
// sharing the underlying memory (used by IP fragmentation).
func (m *Message) Split(n int) (head, tail *Message, err error) {
	if n < 0 || n > m.Len() {
		return nil, nil, fmt.Errorf("msg: split at %d of %d-byte message", n, m.Len())
	}
	// Count the fragments on each side of the cut so both slices are
	// allocated exactly once at final size (splitting runs per PDU on
	// the protocol hot path).
	nh, nt := m.splitCounts(n)
	head = newMessage(nh)
	tail = newMessage(nt)
	remaining := n
	for _, f := range m.frags {
		switch {
		case remaining >= f.Len:
			head.frags = append(head.frags, f)
			remaining -= f.Len
		case remaining > 0:
			head.frags = append(head.frags, Fragment{Space: f.Space, VA: f.VA, Len: remaining})
			tail.frags = append(tail.frags, Fragment{Space: f.Space, VA: f.VA + mem.VirtAddr(remaining), Len: f.Len - remaining})
			remaining = 0
		default:
			tail.frags = append(tail.frags, f)
		}
	}
	return head, tail, nil
}

// splitCounts returns how many fragments a Split(n) would place in the
// head and the tail (a fragment straddling the cut counts on both).
func (m *Message) splitCounts(n int) (nh, nt int) {
	remaining := n
	for _, f := range m.frags {
		switch {
		case remaining >= f.Len:
			nh++
			remaining -= f.Len
		case remaining > 0:
			nh++
			nt++
			remaining = 0
		default:
			nt++
		}
	}
	return nh, nt
}

// TrimPrefix returns the message with its first n bytes removed — the
// x-kernel header strip operation. Unlike Split it never materializes
// the discarded head.
func (m *Message) TrimPrefix(n int) (*Message, error) {
	if n < 0 || n > m.Len() {
		return nil, fmt.Errorf("msg: split at %d of %d-byte message", n, m.Len())
	}
	_, nt := m.splitCounts(n)
	tail := newMessage(nt)
	remaining := n
	for _, f := range m.frags {
		switch {
		case remaining >= f.Len:
			remaining -= f.Len
		case remaining > 0:
			tail.frags = append(tail.frags, Fragment{Space: f.Space, VA: f.VA + mem.VirtAddr(remaining), Len: f.Len - remaining})
			remaining = 0
		default:
			tail.frags = append(tail.frags, f)
		}
	}
	return tail, nil
}

// Bytes gathers the full message contents (copying; used by test
// verification and by explicitly-priced data-touching operations).
func (m *Message) Bytes() ([]byte, error) {
	out := make([]byte, 0, m.Len())
	for _, f := range m.frags {
		b, err := f.Space.ReadVirt(f.VA, f.Len)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// PhysSegments decomposes the whole message into physically contiguous
// buffers, fragment by fragment, merging across fragment boundaries when
// the physical addresses happen to abut. Its length is the descriptor
// count the driver must process for this PDU (§2.2).
func (m *Message) PhysSegments() ([]mem.PhysBuffer, error) {
	return m.AppendPhysSegments(nil)
}

// AppendPhysSegments is PhysSegments appending into segs, so per-PDU hot
// paths can reuse a scratch slice across calls. Merging across fragment
// boundaries happens exactly as in PhysSegments: the space-level append
// coalesces each new chunk with the previous segment when the physical
// addresses abut.
func (m *Message) AppendPhysSegments(segs []mem.PhysBuffer) ([]mem.PhysBuffer, error) {
	var err error
	for _, f := range m.frags {
		segs, err = f.Space.AppendPhysSegments(segs, f.VA, f.Len)
		if err != nil {
			return nil, err
		}
	}
	return segs, nil
}

// WireAll wires every page underlying the message (driver transmit path,
// §2.4); UnwireAll reverses it.
func (m *Message) WireAll() error {
	for _, f := range m.frags {
		if err := f.Space.WireRange(f.VA, f.Len); err != nil {
			return err
		}
	}
	return nil
}

// UnwireAll unwires every page underlying the message.
func (m *Message) UnwireAll() error {
	for _, f := range m.frags {
		if err := f.Space.UnwireRange(f.VA, f.Len); err != nil {
			return err
		}
	}
	return nil
}

func (m *Message) String() string {
	return fmt.Sprintf("msg{%d frags, %d bytes}", len(m.frags), m.Len())
}
