package proto

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
)

// newLossyStackPair builds the UDP/IP stack pair over links with the
// given cell loss rate (A→B direction only).
func newLossyStackPair(t *testing.T, loss float64, seed int64) *stackPair {
	t.Helper()
	e := sim.NewEngine(seed)
	hA := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	hB := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	bA := board.New(e, hA, board.Config{Name: "A"})
	bB := board.New(e, hB, board.Config{Name: "B"})
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{LossRate: loss})
	ba := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	linksOf := func(g *atm.StripeGroup) []*atm.Link {
		ls := make([]*atm.Link, g.Width())
		for i := range ls {
			ls[i] = g.Link(i)
		}
		return ls
	}
	bA.AttachTxLinks(linksOf(ab))
	bB.AttachRxLinks(ab)
	bB.AttachTxLinks(linksOf(ba))
	bA.AttachRxLinks(ba)
	dA := driver.New(e, hA, bA, driver.Config{Cache: driver.CacheNone})
	dB := driver.New(e, hB, bB, driver.Config{Cache: driver.CacheNone})
	sp := &stackPair{eng: e, hA: hA, hB: hB, bA: bA, bB: bB, dA: dA, dB: dB}
	sp.ipA = NewIP(hA, dA, 1, 16384)
	sp.ipB = NewIP(hB, dB, 2, 16384)
	sp.udpA = NewUDP(hA, sp.ipA)
	sp.udpB = NewUDP(hB, sp.ipB)
	return sp
}

func openRDPPair(t *testing.T, sp *stackPair, vci atm.VCI, window int) (tx, rx *rdpSession, rA, rB *RDP) {
	t.Helper()
	rA = NewRDP(sp.hA, sp.ipA)
	rB = NewRDP(sp.hB, sp.ipB)
	a, err := rA.Open(RDPOpen{Remote: 2, VCI: vci, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rB.Open(RDPOpen{Remote: 1, VCI: vci, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	return a.(*rdpSession), b.(*rdpSession), rA, rB
}

func TestRDPDeliversInOrderWithoutLoss(t *testing.T) {
	sp := newLossyStackPair(t, 0, 1)
	tx, rx, rA, _ := openRDPPair(t, sp, 10, 4)
	const n = 12
	var got [][]byte
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		got = append(got, b)
	})
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(3000, byte(i)))
			if err := tx.Push(p, m); err != nil {
				t.Error(err)
				return
			}
		}
		tx.WaitAcked(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, b := range got {
		if !bytes.Equal(b, pattern(3000, byte(i))) {
			t.Fatalf("message %d corrupted or reordered", i)
		}
	}
	if rA.Stats().Retransmits != 0 {
		t.Errorf("retransmits = %d on a clean network", rA.Stats().Retransmits)
	}
}

func TestRDPRecoversFromCellLoss(t *testing.T) {
	// 1% cell loss kills ~50% of 3 KB messages at the AAL5 layer; RDP
	// must still deliver every message, in order, intact.
	sp := newLossyStackPair(t, 0.01, 7)
	tx, rx, rA, _ := openRDPPair(t, sp, 10, 4)
	const n = 15
	var got [][]byte
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		got = append(got, b)
	})
	done := false
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(3000, byte(i)))
			if err := tx.Push(p, m); err != nil {
				t.Error(err)
				return
			}
		}
		tx.WaitAcked(p)
		done = true
	})
	sp.eng.RunUntil(sp.eng.Now().Add(2 * time.Second))
	sp.eng.Shutdown()
	if !done {
		t.Fatal("sender never drained its window (retransmission broken)")
	}
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, b := range got {
		if !bytes.Equal(b, pattern(3000, byte(i))) {
			t.Fatalf("message %d corrupted or reordered", i)
		}
	}
	if rA.Stats().Retransmits == 0 {
		t.Error("no retransmissions despite 1% cell loss")
	}
}

func TestRDPWindowBackpressure(t *testing.T) {
	// With acks suppressed (receiver handler installed but B's reverse
	// direction clean), a window of 2 must block the third Push until
	// the first ack returns — i.e. Push N+window occurs strictly after
	// the first round trip.
	sp := newLossyStackPair(t, 0, 2)
	tx, rx, _, _ := openRDPPair(t, sp, 10, 2)
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {})
	var pushTimes []sim.Time
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(1000, byte(i)))
			tx.Push(p, m)
			pushTimes = append(pushTimes, p.Now())
		}
		tx.WaitAcked(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if len(pushTimes) != 4 {
		t.Fatal("pushes incomplete")
	}
	gap01 := pushTimes[1] - pushTimes[0]
	gap12 := pushTimes[2] - pushTimes[1]
	if gap12 < 5*gap01 {
		t.Errorf("third push not blocked by window: gaps %v then %v", gap01, gap12)
	}
}

func TestRDPLargeMessagesFragmentAndSurviveLoss(t *testing.T) {
	// Messages above the MTU exercise RDP over IP fragmentation over a
	// lossy network: three layers of the stack cooperating.
	sp := newLossyStackPair(t, 0.004, 9)
	tx, rx, _, _ := openRDPPair(t, sp, 10, 3)
	const n = 6
	data := pattern(40_000, 5)
	delivered := 0
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		if bytes.Equal(b, data) {
			delivered++
		} else {
			t.Error("corrupt delivery")
		}
	})
	done := false
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, data)
			tx.Push(p, m)
		}
		tx.WaitAcked(p)
		done = true
	})
	sp.eng.RunUntil(sp.eng.Now().Add(3 * time.Second))
	sp.eng.Shutdown()
	if !done || delivered != n {
		t.Fatalf("done=%v delivered=%d/%d", done, delivered, n)
	}
}

func TestRDPOpenValidation(t *testing.T) {
	sp := newLossyStackPair(t, 0, 3)
	r := NewRDP(sp.hA, sp.ipA)
	if _, err := r.Open("nope"); err == nil {
		t.Error("bad address type accepted")
	}
	if r.Name() != "rdp" {
		t.Error("name wrong")
	}
	sp.eng.Shutdown()
}

func TestRDPDeterministicUnderLoss(t *testing.T) {
	run := func() (int64, int64) {
		sp := newLossyStackPair(t, 0.01, 42)
		tx, rx, rA, _ := openRDPPair(t, sp, 10, 4)
		rx.SetHandler(func(p *sim.Proc, m *msg.Message) {})
		sp.eng.Go("sender", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				m, _ := msg.FromBytes(sp.hA.Kernel, pattern(2000, byte(i)))
				tx.Push(p, m)
			}
			tx.WaitAcked(p)
		})
		sp.eng.RunUntil(sp.eng.Now().Add(time.Second))
		sp.eng.Shutdown()
		return rA.Stats().Retransmits, rA.Stats().Timeouts
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", r1, t1, r2, t2)
	}
}
