package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// RDP is a reliable datagram protocol configured over IP — a go-back-N
// sliding window with cumulative acknowledgements and a payload
// checksum.
//
// It exists to demonstrate the x-kernel property the paper leans on
// ("because the x-kernel supports arbitrary protocols, our approach is
// protocol-independent; it is not tailored to TCP/IP", §1): RDP slots
// into the same graph, runs over the same driver paths and VCIs, and
// turns the simulated network's cell loss into retransmissions instead
// of message loss.
type RDP struct {
	host  *hostsim.Host
	ip    *IP
	stats RDPStats

	// Adaptive telemetry (RegisterAdaptiveMetrics): RTT sample sketch
	// and the live adaptive sessions whose cwnd/ssthresh the gauges sum.
	mRTT     *metrics.Sketch
	adaptive []*rdpSession
}

// RDPStats counts RDP activity.
type RDPStats struct {
	DataSent    int64
	Retransmits int64
	Timeouts    int64
	AcksSent    int64
	Delivered   int64
	OutOfOrder  int64 // data segments discarded awaiting earlier ones
	ChecksumErr int64
	DupAcks     int64
	Failed      int64 // sessions closed by the MaxRetries cap

	// Adaptive-transport counters (RDPOpen.Adaptive sessions only; zero
	// on legacy sessions).
	FastRetx    int64 // retransmissions triggered by the dup-ack threshold
	EcnEchoed   int64 // segments sent carrying the ECE echo
	EcnBackoffs int64 // multiplicative decreases triggered by ECE
	RTTSamples  int64 // round-trip samples accepted by the estimator
}

// ErrMaxRetries is the terminal session error raised when MaxRetries
// consecutive retransmission rounds elapse without any acknowledgement
// progress — the peer is unreachable, and continuing to retransmit into
// a dead link would only add load where capacity is already gone.
var ErrMaxRetries = errors.New("rdp: retransmission limit reached, peer unreachable")

// maxBackoffShift caps the exponential backoff at base << 6 = 64× the
// configured retransmit timeout.
const maxBackoffShift = 6

// NewRDP returns an RDP instance over ip.
func NewRDP(h *hostsim.Host, ip *IP) *RDP { return &RDP{host: h, ip: ip} }

// Name implements xkernel.Protocol.
func (r *RDP) Name() string { return "rdp" }

// Stats returns a copy of the counters.
func (r *RDP) Stats() RDPStats { return r.stats }

// RegisterMetrics registers RDP's counters as snapshot-time samples
// under prefix — the retransmit/backoff visibility the telemetry
// plane exists for. A nil registry is a no-op.
func (r *RDP) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := &r.stats
	reg.Sample(prefix+"/data_sent", metrics.KindCounter, func() int64 { return s.DataSent })
	reg.Sample(prefix+"/retransmits", metrics.KindCounter, func() int64 { return s.Retransmits })
	reg.Sample(prefix+"/timeouts", metrics.KindCounter, func() int64 { return s.Timeouts })
	reg.Sample(prefix+"/acks_sent", metrics.KindCounter, func() int64 { return s.AcksSent })
	reg.Sample(prefix+"/delivered", metrics.KindCounter, func() int64 { return s.Delivered })
	reg.Sample(prefix+"/out_of_order", metrics.KindCounter, func() int64 { return s.OutOfOrder })
	reg.Sample(prefix+"/checksum_err", metrics.KindCounter, func() int64 { return s.ChecksumErr })
	reg.Sample(prefix+"/dup_acks", metrics.KindCounter, func() int64 { return s.DupAcks })
	reg.Sample(prefix+"/failed", metrics.KindCounter, func() int64 { return s.Failed })
}

// RegisterAdaptiveMetrics registers the adaptive transport's telemetry
// under prefix: the ECN/fast-retransmit counters, cwnd/ssthresh gauges
// (summed in segments across live adaptive sessions), and the RTT
// sample sketch. Kept separate from RegisterMetrics so experiments that
// never open an adaptive session keep their exact metric name set (the
// committed BENCH_metrics.json pins it). A nil registry is a no-op.
func (r *RDP) RegisterAdaptiveMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := &r.stats
	reg.Sample(prefix+"/fast_retx", metrics.KindCounter, func() int64 { return s.FastRetx })
	reg.Sample(prefix+"/ecn_echoed", metrics.KindCounter, func() int64 { return s.EcnEchoed })
	reg.Sample(prefix+"/ecn_backoffs", metrics.KindCounter, func() int64 { return s.EcnBackoffs })
	reg.Sample(prefix+"/rtt_samples", metrics.KindCounter, func() int64 { return s.RTTSamples })
	reg.Sample(prefix+"/cwnd_segments", metrics.KindGauge, func() int64 {
		var sum int64
		for _, as := range r.adaptive {
			sum += int64(as.cwnd / cwndUnit)
		}
		return sum
	})
	reg.Sample(prefix+"/ssthresh_segments", metrics.KindGauge, func() int64 {
		var sum int64
		for _, as := range r.adaptive {
			sum += int64(as.ssthresh / cwndUnit)
		}
		return sum
	})
	r.mRTT = reg.Quantiles(prefix+"/rtt_us", 0.5, 0.9, 0.99)
}

// ProtoRDP is RDP's protocol number in the IP header.
const ProtoRDP = 27

// RDPHeaderSize is the segment header size.
const RDPHeaderSize = 16

// Segment types.
const (
	rdpData = 0
	rdpAck  = 1
)

// RDPOpen addresses an RDP session.
type RDPOpen struct {
	Remote HostAddr
	VCI    atm.VCI
	// Window is the go-back-N send window in segments (default 8).
	Window int
	// RetransmitTimeout arms the sender's timer (default 2 ms — a few
	// simulated round trips). The effective interval carries ±25%
	// deterministic jitter; with MaxRetries set, sustained silence from
	// the peer additionally doubles it per barren round (capped at 64×).
	RetransmitTimeout time.Duration
	// MaxRetries, when positive, caps consecutive timeout rounds with no
	// word from the peer; beyond it the session fails with ErrMaxRetries
	// (Push returns it, WaitAcked unblocks, Err reports it). 0 (the
	// default) retries forever — over a fragmenting lower layer, long
	// silent streaks are routine for large segments, so the cap is for
	// callers that would rather detect a dead peer than wait it out.
	MaxRetries int

	// Adaptive enables the adaptive transport machinery: an SRTT/RTTVAR
	// RTT estimator (Karn's rule) replacing the fixed jittered timer, a
	// congestion window under Window (slow start, AIMD, fast retransmit
	// at DupAckThreshold duplicate acks), and echo of the fabric's CE
	// marks so senders back off before tail drop. Off by default: legacy
	// sessions behave bit-for-bit as before.
	Adaptive bool
	// DupAckThreshold is the duplicate-ack count that triggers a fast
	// retransmit (adaptive only, default 3).
	DupAckThreshold int
	// MinRTO and MaxRTO clamp the estimated retransmission timeout
	// (adaptive only; defaults 200 µs and 100 ms). The pre-sample RTO is
	// RetransmitTimeout clamped into this range.
	MinRTO, MaxRTO time.Duration
	// InitialCwnd is the initial congestion window in segments
	// (adaptive only, default 2).
	InitialCwnd int
}

// Open implements xkernel.Protocol.
func (r *RDP) Open(addr any) (xkernel.Session, error) {
	a, ok := addr.(RDPOpen)
	if !ok {
		return nil, fmt.Errorf("proto: rdp.Open wants RDPOpen, got %T", addr)
	}
	if a.Window == 0 {
		a.Window = 8
	}
	if a.RetransmitTimeout == 0 {
		a.RetransmitTimeout = 2 * time.Millisecond
	}
	if a.Adaptive {
		if a.DupAckThreshold == 0 {
			a.DupAckThreshold = 3
		}
		if a.MinRTO == 0 {
			a.MinRTO = 200 * time.Microsecond
		}
		if a.MaxRTO == 0 {
			a.MaxRTO = 100 * time.Millisecond
		}
		if a.InitialCwnd == 0 {
			a.InitialCwnd = 2
		}
		if a.InitialCwnd > a.Window {
			a.InitialCwnd = a.Window
		}
	}
	lower, err := r.ip.Open(IPOpen{Remote: a.Remote, VCI: a.VCI, Proto: ProtoRDP})
	if err != nil {
		return nil, err
	}
	s := &rdpSession{
		r:        r,
		addr:     a,
		lower:    lower,
		unacked:  make(map[uint32][]byte),
		notFull:  sim.NewCond(r.host.Eng),
		acked:    sim.NewCond(r.host.Eng),
		retxWork: sim.NewCond(r.host.Eng),
		rng:      r.host.Eng.DeriveRand(fmt.Sprintf("rdp/r%v/vci%d", a.Remote, a.VCI)),
	}
	if a.Adaptive {
		s.est = newRTTEstimator(a.RetransmitTimeout, a.MinRTO, a.MaxRTO)
		s.cwnd = uint32(a.InitialCwnd) * cwndUnit
		s.ssthresh = uint32(a.Window) * cwndUnit
		r.adaptive = append(r.adaptive, s)
	}
	lower.SetHandler(s.demux)
	r.host.Eng.Go(fmt.Sprintf("rdp-retx-vci%d", a.VCI), s.retransmitter)
	return s, nil
}

type rdpSession struct {
	r     *RDP
	addr  RDPOpen
	lower xkernel.Session
	upper xkernel.Handler

	// Sender state.
	sendBase uint32 // oldest unacknowledged sequence number
	nextSeq  uint32
	unacked  map[uint32][]byte
	timer    sim.Event
	notFull  *sim.Cond
	acked    *sim.Cond
	retxWork *sim.Cond
	closed   bool

	// Backoff state: consecutive counts timeout rounds without hearing
	// anything from the peer. Any inbound acknowledgement — even a
	// duplicate — proves the path is alive and resets it: a lossy link
	// keeps retransmitting at the base rate, while a dead one backs off
	// exponentially until MaxRetries fails the session. rng is a
	// session-private derived stream so the jitter draws never perturb
	// the engine's main RNG sequence.
	consecutive int
	rng         *rand.Rand
	err         error // terminal error (ErrMaxRetries); nil while healthy

	// Adaptive-transport state (addr.Adaptive sessions only). cwnd and
	// ssthresh are fixed-point (cwndUnit = one segment) so congestion
	// avoidance accumulates fractional per-ack growth in integers —
	// no floats, bit-deterministic. recoverSeq is nextSeq at the last
	// window reduction: further loss/ECE signals before sendBase passes
	// it belong to the same window and must not reduce again.
	est        *rttEstimator
	cwnd       uint32
	ssthresh   uint32
	dupAcks    int
	recoverSeq uint32
	pendingECE bool // receiver: echo ECE on the next outbound segment

	// Receiver state.
	expected uint32
}

// cwndUnit is one segment of congestion window in fixed-point units.
const cwndUnit = 1 << 10

// rdpFlagECE is the ECN-echo bit in the header's flags byte: the
// receiver saw the fabric's CE mark on a delivered PDU and is telling
// the sender to back off.
const rdpFlagECE = 1 << 0

// seqGE reports a ≥ b in modular sequence arithmetic (windows are far
// smaller than half the sequence space).
func seqGE(a, b uint32) bool { return a-b < 1<<31 }

// SetHandler implements xkernel.Session.
func (s *rdpSession) SetHandler(h xkernel.Handler) { s.upper = h }

// Close implements xkernel.Session.
func (s *rdpSession) Close() {
	s.closed = true
	s.cancelTimer()
	s.lower.Close()
}

// Push sends one message reliably: it blocks while the window is full,
// stores a retransmission copy, and returns once the segment is queued.
// Use WaitAcked to drain the window.
func (s *rdpSession) Push(p *sim.Proc, m *msg.Message) error {
	for s.err == nil && s.nextSeq-s.sendBase >= s.effWindow() {
		s.notFull.Wait(p)
	}
	if s.err != nil {
		return s.err
	}
	data, err := m.Bytes()
	if err != nil {
		return err
	}
	// A reliable sender must hold the bytes until acknowledged; the copy
	// is priced as CPU touch time.
	s.r.host.Compute(p, s.r.host.Prof.Cycles((len(data)+3)/4))
	seq := s.nextSeq
	s.nextSeq++
	s.unacked[seq] = data
	s.r.stats.DataSent++
	if s.addr.Adaptive {
		s.est.Sent(seq, s.r.host.Eng.Now())
	}
	if err := s.sendSegment(p, rdpData, seq, data); err != nil {
		return err
	}
	s.armTimer()
	return nil
}

// WaitAcked blocks until every pushed message has been acknowledged, or
// the session fails terminally (check Err afterwards).
func (s *rdpSession) WaitAcked(p *sim.Proc) {
	for s.err == nil && s.sendBase != s.nextSeq {
		s.acked.Wait(p)
	}
}

// Err reports the session's terminal error — ErrMaxRetries once the
// retry cap fired — or nil while the session is healthy.
func (s *rdpSession) Err() error { return s.err }

// effWindow is the sender's effective window in segments: the flow
// window for legacy sessions; its minimum with the congestion window
// (never below one segment, so recovery can always probe) when
// adaptive.
func (s *rdpSession) effWindow() uint32 {
	w := uint32(s.addr.Window)
	if s.addr.Adaptive {
		if c := s.cwnd / cwndUnit; c < w {
			w = c
		}
		if w < 1 {
			w = 1
		}
	}
	return w
}

// sendSegment builds the header (+ checksummed payload for data) and
// pushes it through IP.
func (s *rdpSession) sendSegment(p *sim.Proc, typ byte, seq uint32, payload []byte) error {
	host := s.r.host
	total := RDPHeaderSize + len(payload)
	va, err := host.Kernel.Alloc(total)
	if err != nil {
		return err
	}
	buf := make([]byte, total)
	buf[0] = typ
	if s.addr.Adaptive && s.pendingECE {
		// Echo the fabric's CE mark back to the sender. One-shot: the
		// reverse path re-arms it for every marked PDU that arrives, so
		// a persistently congested queue keeps the echo flowing.
		buf[1] = rdpFlagECE
		s.pendingECE = false
		s.r.stats.EcnEchoed++
	}
	binary.BigEndian.PutUint32(buf[4:], seq)
	binary.BigEndian.PutUint32(buf[8:], s.expected) // piggybacked cumulative ack
	binary.BigEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[RDPHeaderSize:], payload)
	if typ == rdpData {
		binary.BigEndian.PutUint16(buf[2:], hostsim.InternetChecksum(payload))
	}
	if err := writeThroughCache(host, host.Kernel, va, buf); err != nil {
		return err
	}
	m := msg.New(msg.Fragment{Space: host.Kernel, VA: va, Len: total})
	kernel := host.Kernel
	return s.lower.(*ipSession).PushDone(p, m, func(p *sim.Proc) {
		if err := kernel.Free(va, total); err != nil {
			panic(err)
		}
	})
}

// backoffGraceRounds is how many barren rounds run at the base timeout
// before the interval starts doubling (capped sessions only). Over a
// fragmenting lower layer a large segment routinely needs several
// whole-segment retransmissions to get every fragment through at once —
// the receiver stays silent the entire time, so early rounds of silence
// are weak evidence of a dead peer. Sustained silence beyond the grace
// is strong evidence, and the interval then grows exponentially.
const backoffGraceRounds = 4

// backoffTimeout is the current retransmit interval. Uncapped sessions
// (MaxRetries 0) use the fixed base timeout; sessions probing for a
// dead peer (MaxRetries > 0) hold the base for backoffGraceRounds
// barren rounds, then double per round up to 64× — no point hammering a
// path that has been silent that long. Both cases apply a ±25% jitter
// factor drawn from the session's derived stream so parallel sessions
// don't retransmit in lockstep.
func (s *rdpSession) backoffTimeout() time.Duration {
	shift := 0
	if s.addr.MaxRetries > 0 {
		shift = s.consecutive - backoffGraceRounds
		if shift < 0 {
			shift = 0
		}
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
	}
	d := s.addr.RetransmitTimeout << shift
	jitter := 0.75 + s.rng.Float64()/2
	return time.Duration(float64(d) * jitter)
}

// timeoutInterval is the interval the retransmit timer is armed with:
// the estimator's RTO for adaptive sessions, the backed-off fixed base
// for legacy. Both carry the ±25% jitter factor from the session's
// derived stream (deterministic, but decorrelated across sessions).
// The jitter is load-bearing for incast recovery: synchronized flows
// that all lost their whole window take their sample-free RTOs in
// lockstep, and when one in-flight segment spans more cells than the
// shared output queue holds, only a flow retransmitting alone can
// complete a PDU — identical timers would collide forever.
func (s *rdpSession) timeoutInterval() time.Duration {
	if s.addr.Adaptive {
		jitter := 0.75 + s.rng.Float64()/2
		return time.Duration(float64(s.est.RTO()) * jitter)
	}
	return s.backoffTimeout()
}

// onTimeout is the adaptive congestion response to a retransmission
// timeout: collapse to one segment (the strongest loss signal), halve
// ssthresh, and let the estimator double its RTO until a fresh sample
// arrives (Karn's rule keeps ambiguous samples out meanwhile).
func (s *rdpSession) onTimeout() {
	half := s.cwnd / 2
	if half < 2*cwndUnit {
		half = 2 * cwndUnit
	}
	s.ssthresh = half
	s.cwnd = cwndUnit
	s.recoverSeq = s.nextSeq
	s.dupAcks = 0
	s.est.Backoff()
}

func (s *rdpSession) armTimer() {
	if s.timer.Pending() || s.sendBase == s.nextSeq || s.closed {
		return
	}
	eng := s.r.host.Eng
	s.timer = eng.After(s.timeoutInterval(), func() {
		s.timer = sim.Event{}
		if s.closed || s.sendBase == s.nextSeq {
			return
		}
		s.r.stats.Timeouts++
		s.consecutive++
		if s.addr.MaxRetries > 0 && s.consecutive > s.addr.MaxRetries {
			s.fail(ErrMaxRetries)
			return
		}
		if s.addr.Adaptive {
			s.onTimeout()
		}
		s.retxWork.Broadcast()
	})
}

// fail terminates the session: it records the error, closes the lower
// session, and wakes every blocked sender so Push/WaitAcked observe the
// error instead of sleeping forever on a dead peer.
func (s *rdpSession) fail(err error) {
	if s.closed || s.err != nil {
		return
	}
	s.err = err
	s.closed = true
	s.r.stats.Failed++
	if s.r.host.Eng.Tracing() {
		s.r.host.Eng.Tracef("proto: rdp vci=%d failed after %d retries: %v", s.addr.VCI, s.consecutive-1, err)
	}
	s.cancelTimer()
	s.lower.Close()
	s.notFull.Broadcast()
	s.acked.Broadcast()
	s.retxWork.Broadcast()
}

func (s *rdpSession) cancelTimer() {
	s.r.host.Eng.Cancel(s.timer)
	s.timer = sim.Event{}
}

// retransmitter is the session's timeout thread: on each timer firing it
// resends the outstanding window (go-back-N) — all of it for legacy
// sessions, at most the congestion window for adaptive ones (a
// collapsed cwnd must not blast the full flow window back into the
// congested queue). Adaptive resends are reported to the estimator so
// Karn's rule disqualifies their ambiguous acks.
func (s *rdpSession) retransmitter(p *sim.Proc) {
	for {
		s.retxWork.Wait(p)
		if s.closed {
			return
		}
		end := s.nextSeq
		if s.addr.Adaptive {
			if w := s.effWindow(); s.nextSeq-s.sendBase > w {
				end = s.sendBase + w
			}
		}
		for seq := s.sendBase; seq != end; seq++ {
			data, ok := s.unacked[seq]
			if !ok {
				continue
			}
			if s.addr.Adaptive {
				s.est.Retransmitted(seq)
			}
			s.r.stats.Retransmits++
			if eng := s.r.host.Eng; eng.Recording() {
				eng.Emit(sim.TraceEvent{At: eng.Now(), Ph: 'i', Comp: "rdp", Cat: "proto", Name: "retransmit", Arg: int64(seq)})
			}
			if err := s.sendSegment(p, rdpData, seq, data); err != nil {
				return
			}
		}
		s.armTimer()
	}
}

// demux handles an inbound segment from IP.
func (s *rdpSession) demux(p *sim.Proc, m *msg.Message) {
	if m.Len() < RDPHeaderSize {
		return
	}
	hdr, err := readThroughCache(p, s.r.host, m, RDPHeaderSize)
	if err != nil {
		return
	}
	typ := hdr[0]
	ece := s.addr.Adaptive && hdr[1]&rdpFlagECE != 0
	seq := binary.BigEndian.Uint32(hdr[4:])
	ack := binary.BigEndian.Uint32(hdr[8:])
	plen := binary.BigEndian.Uint32(hdr[12:])

	// Cumulative acknowledgement processing (both segment types carry it).
	s.processAck(ack, ece)

	if typ != rdpData {
		return
	}
	if s.addr.Adaptive {
		// The fabric's CE mark rides the PDU that carried this segment;
		// note it before any discard below — congestion was experienced
		// whether or not the segment is in sequence.
		if ips, ok := s.lower.(*ipSession); ok && ips.CongestionMarked() {
			s.pendingECE = true
		}
	}
	if int(plen) != m.Len()-RDPHeaderSize {
		return
	}
	payload, err := m.TrimPrefix(RDPHeaderSize)
	if err != nil {
		return
	}
	if seq != s.expected {
		// Go-back-N: discard and re-acknowledge what we have.
		s.r.stats.OutOfOrder++
		s.sendAck(p)
		return
	}
	// Verify the payload (through the cache, with lazy recovery).
	segs, err := payload.PhysSegments()
	if err != nil {
		return
	}
	want := binary.BigEndian.Uint16(hdr[2:])
	got := s.r.host.Checksum(p, segs)
	if got != want {
		recovered := false
		if s.r.ip.Driver().RecoverData(p, m) {
			recovered = s.r.host.Checksum(p, segs) == want
		}
		if !recovered {
			s.r.stats.ChecksumErr++
			s.sendAck(p) // still an implicit NAK for this segment
			return
		}
	}
	s.expected++
	s.r.stats.Delivered++
	if s.upper != nil {
		s.upper(p, payload)
	}
	s.sendAck(p)
}

func (s *rdpSession) processAck(ack uint32, ece bool) {
	if ack == s.sendBase {
		if s.sendBase != s.nextSeq {
			s.r.stats.DupAcks++
			// Even a duplicate ack proves the peer and both directions of
			// the path are alive — only the segments are being lost. Keep
			// retransmitting at the base rate; exponential backoff is for
			// silence, not for loss.
			s.consecutive = 0
			if s.addr.Adaptive {
				if ece {
					s.ecnBackoff()
				}
				s.dupAcks++
				if s.dupAcks == s.addr.DupAckThreshold && seqGE(s.sendBase, s.recoverSeq) {
					// Fast retransmit: the receiver is live and asking for
					// sendBase — recover in one RTT instead of a timeout
					// round. Reno response: halve into recovery, resend the
					// (cwnd-bounded) window, restart the timer fresh.
					s.r.stats.FastRetx++
					half := s.cwnd / 2
					if half < 2*cwndUnit {
						half = 2 * cwndUnit
					}
					s.ssthresh = half
					s.cwnd = half
					s.recoverSeq = s.nextSeq
					s.dupAcks = 0
					s.cancelTimer()
					s.retxWork.Broadcast()
				}
			}
		}
		return
	}
	// Window arithmetic is modular; only acks inside the outstanding
	// window are meaningful (anything else is corrupt or stale).
	if ack-s.sendBase > s.nextSeq-s.sendBase {
		return
	}
	now := s.r.host.Eng.Now()
	ackedSegs := uint32(0)
	for s.sendBase != s.nextSeq && s.sendBase != ack {
		delete(s.unacked, s.sendBase)
		if s.addr.Adaptive {
			if sample, ok := s.est.Acked(s.sendBase, now); ok {
				s.r.stats.RTTSamples++
				if s.r.mRTT != nil {
					s.r.mRTT.Observe(float64(sample.Microseconds()))
				}
			}
		}
		s.sendBase++
		ackedSegs++
	}
	s.consecutive = 0 // forward progress resets the backoff
	if s.addr.Adaptive {
		s.dupAcks = 0
		s.growCwnd(ackedSegs)
		if ece {
			s.ecnBackoff()
		}
		if s.sendBase != s.nextSeq && !seqGE(s.sendBase, s.recoverSeq) {
			// Ack-clocked recovery: while sendBase is still behind the
			// last loss point, everything outstanding was (go-back-N)
			// lost with it, so resend the cwnd-bounded window now — one
			// window per RTT — instead of letting each segment wait out
			// its own full backed-off RTO round.
			s.retxWork.Broadcast()
		}
	}
	s.notFull.Broadcast()
	s.acked.Broadcast()
	s.cancelTimer()
	s.armTimer()
}

// growCwnd opens the congestion window for n newly acknowledged
// segments: one segment per ack in slow start (below ssthresh), one
// segment per window (cwndUnit²/cwnd per ack, integer fixed point) in
// congestion avoidance. Capped at the flow window — growth beyond what
// Push may ever have outstanding is dead state.
func (s *rdpSession) growCwnd(n uint32) {
	limit := uint32(s.addr.Window) * cwndUnit
	for i := uint32(0); i < n && s.cwnd < limit; i++ {
		if s.cwnd < s.ssthresh {
			s.cwnd += cwndUnit
		} else {
			inc := cwndUnit * cwndUnit / s.cwnd
			if inc == 0 {
				inc = 1
			}
			s.cwnd += inc
		}
	}
	if s.cwnd > limit {
		s.cwnd = limit
	}
}

// ecnBackoff is the sender's response to an ECE echo: a multiplicative
// decrease without any retransmission — the point of marking is to shed
// the queue before it tail-drops. At most one decrease per window in
// flight (recoverSeq), or a burst of marked PDUs would collapse cwnd to
// the floor in one RTT.
func (s *rdpSession) ecnBackoff() {
	if !seqGE(s.sendBase, s.recoverSeq) {
		return
	}
	s.r.stats.EcnBackoffs++
	half := s.cwnd / 2
	if half < 2*cwndUnit {
		half = 2 * cwndUnit
	}
	s.ssthresh = half
	s.cwnd = half
	s.recoverSeq = s.nextSeq
	s.dupAcks = 0
}

func (s *rdpSession) sendAck(p *sim.Proc) {
	s.r.stats.AcksSent++
	if err := s.sendSegment(p, rdpAck, 0, nil); err != nil {
		return
	}
}

var (
	_ xkernel.Protocol = (*RDP)(nil)
	_ xkernel.Session  = (*rdpSession)(nil)
)

// WaitAckedSession lets callers drain an RDP session through the
// xkernel.Session interface and observe its terminal error.
type WaitAckedSession interface {
	WaitAcked(p *sim.Proc)
	Err() error
}

var _ WaitAckedSession = (*rdpSession)(nil)
