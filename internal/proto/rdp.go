package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// RDP is a reliable datagram protocol configured over IP — a go-back-N
// sliding window with cumulative acknowledgements and a payload
// checksum.
//
// It exists to demonstrate the x-kernel property the paper leans on
// ("because the x-kernel supports arbitrary protocols, our approach is
// protocol-independent; it is not tailored to TCP/IP", §1): RDP slots
// into the same graph, runs over the same driver paths and VCIs, and
// turns the simulated network's cell loss into retransmissions instead
// of message loss.
type RDP struct {
	host  *hostsim.Host
	ip    *IP
	stats RDPStats
}

// RDPStats counts RDP activity.
type RDPStats struct {
	DataSent    int64
	Retransmits int64
	Timeouts    int64
	AcksSent    int64
	Delivered   int64
	OutOfOrder  int64 // data segments discarded awaiting earlier ones
	ChecksumErr int64
	DupAcks     int64
	Failed      int64 // sessions closed by the MaxRetries cap
}

// ErrMaxRetries is the terminal session error raised when MaxRetries
// consecutive retransmission rounds elapse without any acknowledgement
// progress — the peer is unreachable, and continuing to retransmit into
// a dead link would only add load where capacity is already gone.
var ErrMaxRetries = errors.New("rdp: retransmission limit reached, peer unreachable")

// maxBackoffShift caps the exponential backoff at base << 6 = 64× the
// configured retransmit timeout.
const maxBackoffShift = 6

// NewRDP returns an RDP instance over ip.
func NewRDP(h *hostsim.Host, ip *IP) *RDP { return &RDP{host: h, ip: ip} }

// Name implements xkernel.Protocol.
func (r *RDP) Name() string { return "rdp" }

// Stats returns a copy of the counters.
func (r *RDP) Stats() RDPStats { return r.stats }

// RegisterMetrics registers RDP's counters as snapshot-time samples
// under prefix — the retransmit/backoff visibility the telemetry
// plane exists for. A nil registry is a no-op.
func (r *RDP) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := &r.stats
	reg.Sample(prefix+"/data_sent", metrics.KindCounter, func() int64 { return s.DataSent })
	reg.Sample(prefix+"/retransmits", metrics.KindCounter, func() int64 { return s.Retransmits })
	reg.Sample(prefix+"/timeouts", metrics.KindCounter, func() int64 { return s.Timeouts })
	reg.Sample(prefix+"/acks_sent", metrics.KindCounter, func() int64 { return s.AcksSent })
	reg.Sample(prefix+"/delivered", metrics.KindCounter, func() int64 { return s.Delivered })
	reg.Sample(prefix+"/out_of_order", metrics.KindCounter, func() int64 { return s.OutOfOrder })
	reg.Sample(prefix+"/checksum_err", metrics.KindCounter, func() int64 { return s.ChecksumErr })
	reg.Sample(prefix+"/dup_acks", metrics.KindCounter, func() int64 { return s.DupAcks })
	reg.Sample(prefix+"/failed", metrics.KindCounter, func() int64 { return s.Failed })
}

// ProtoRDP is RDP's protocol number in the IP header.
const ProtoRDP = 27

// RDPHeaderSize is the segment header size.
const RDPHeaderSize = 16

// Segment types.
const (
	rdpData = 0
	rdpAck  = 1
)

// RDPOpen addresses an RDP session.
type RDPOpen struct {
	Remote HostAddr
	VCI    atm.VCI
	// Window is the go-back-N send window in segments (default 8).
	Window int
	// RetransmitTimeout arms the sender's timer (default 2 ms — a few
	// simulated round trips). The effective interval carries ±25%
	// deterministic jitter; with MaxRetries set, sustained silence from
	// the peer additionally doubles it per barren round (capped at 64×).
	RetransmitTimeout time.Duration
	// MaxRetries, when positive, caps consecutive timeout rounds with no
	// word from the peer; beyond it the session fails with ErrMaxRetries
	// (Push returns it, WaitAcked unblocks, Err reports it). 0 (the
	// default) retries forever — over a fragmenting lower layer, long
	// silent streaks are routine for large segments, so the cap is for
	// callers that would rather detect a dead peer than wait it out.
	MaxRetries int
}

// Open implements xkernel.Protocol.
func (r *RDP) Open(addr any) (xkernel.Session, error) {
	a, ok := addr.(RDPOpen)
	if !ok {
		return nil, fmt.Errorf("proto: rdp.Open wants RDPOpen, got %T", addr)
	}
	if a.Window == 0 {
		a.Window = 8
	}
	if a.RetransmitTimeout == 0 {
		a.RetransmitTimeout = 2 * time.Millisecond
	}
	lower, err := r.ip.Open(IPOpen{Remote: a.Remote, VCI: a.VCI, Proto: ProtoRDP})
	if err != nil {
		return nil, err
	}
	s := &rdpSession{
		r:        r,
		addr:     a,
		lower:    lower,
		unacked:  make(map[uint32][]byte),
		notFull:  sim.NewCond(r.host.Eng),
		acked:    sim.NewCond(r.host.Eng),
		retxWork: sim.NewCond(r.host.Eng),
		rng:      r.host.Eng.DeriveRand(fmt.Sprintf("rdp/r%v/vci%d", a.Remote, a.VCI)),
	}
	lower.SetHandler(s.demux)
	r.host.Eng.Go(fmt.Sprintf("rdp-retx-vci%d", a.VCI), s.retransmitter)
	return s, nil
}

type rdpSession struct {
	r     *RDP
	addr  RDPOpen
	lower xkernel.Session
	upper xkernel.Handler

	// Sender state.
	sendBase uint32 // oldest unacknowledged sequence number
	nextSeq  uint32
	unacked  map[uint32][]byte
	timer    sim.Event
	notFull  *sim.Cond
	acked    *sim.Cond
	retxWork *sim.Cond
	closed   bool

	// Backoff state: consecutive counts timeout rounds without hearing
	// anything from the peer. Any inbound acknowledgement — even a
	// duplicate — proves the path is alive and resets it: a lossy link
	// keeps retransmitting at the base rate, while a dead one backs off
	// exponentially until MaxRetries fails the session. rng is a
	// session-private derived stream so the jitter draws never perturb
	// the engine's main RNG sequence.
	consecutive int
	rng         *rand.Rand
	err         error // terminal error (ErrMaxRetries); nil while healthy

	// Receiver state.
	expected uint32
}

// SetHandler implements xkernel.Session.
func (s *rdpSession) SetHandler(h xkernel.Handler) { s.upper = h }

// Close implements xkernel.Session.
func (s *rdpSession) Close() {
	s.closed = true
	s.cancelTimer()
	s.lower.Close()
}

// Push sends one message reliably: it blocks while the window is full,
// stores a retransmission copy, and returns once the segment is queued.
// Use WaitAcked to drain the window.
func (s *rdpSession) Push(p *sim.Proc, m *msg.Message) error {
	for s.err == nil && s.nextSeq-s.sendBase >= uint32(s.addr.Window) {
		s.notFull.Wait(p)
	}
	if s.err != nil {
		return s.err
	}
	data, err := m.Bytes()
	if err != nil {
		return err
	}
	// A reliable sender must hold the bytes until acknowledged; the copy
	// is priced as CPU touch time.
	s.r.host.Compute(p, s.r.host.Prof.Cycles((len(data)+3)/4))
	seq := s.nextSeq
	s.nextSeq++
	s.unacked[seq] = data
	s.r.stats.DataSent++
	if err := s.sendSegment(p, rdpData, seq, data); err != nil {
		return err
	}
	s.armTimer()
	return nil
}

// WaitAcked blocks until every pushed message has been acknowledged, or
// the session fails terminally (check Err afterwards).
func (s *rdpSession) WaitAcked(p *sim.Proc) {
	for s.err == nil && s.sendBase != s.nextSeq {
		s.acked.Wait(p)
	}
}

// Err reports the session's terminal error — ErrMaxRetries once the
// retry cap fired — or nil while the session is healthy.
func (s *rdpSession) Err() error { return s.err }

// sendSegment builds the header (+ checksummed payload for data) and
// pushes it through IP.
func (s *rdpSession) sendSegment(p *sim.Proc, typ byte, seq uint32, payload []byte) error {
	host := s.r.host
	total := RDPHeaderSize + len(payload)
	va, err := host.Kernel.Alloc(total)
	if err != nil {
		return err
	}
	buf := make([]byte, total)
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[4:], seq)
	binary.BigEndian.PutUint32(buf[8:], s.expected) // piggybacked cumulative ack
	binary.BigEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[RDPHeaderSize:], payload)
	if typ == rdpData {
		binary.BigEndian.PutUint16(buf[2:], hostsim.InternetChecksum(payload))
	}
	if err := writeThroughCache(host, host.Kernel, va, buf); err != nil {
		return err
	}
	m := msg.New(msg.Fragment{Space: host.Kernel, VA: va, Len: total})
	kernel := host.Kernel
	return s.lower.(*ipSession).PushDone(p, m, func(p *sim.Proc) {
		if err := kernel.Free(va, total); err != nil {
			panic(err)
		}
	})
}

// backoffGraceRounds is how many barren rounds run at the base timeout
// before the interval starts doubling (capped sessions only). Over a
// fragmenting lower layer a large segment routinely needs several
// whole-segment retransmissions to get every fragment through at once —
// the receiver stays silent the entire time, so early rounds of silence
// are weak evidence of a dead peer. Sustained silence beyond the grace
// is strong evidence, and the interval then grows exponentially.
const backoffGraceRounds = 4

// backoffTimeout is the current retransmit interval. Uncapped sessions
// (MaxRetries 0) use the fixed base timeout; sessions probing for a
// dead peer (MaxRetries > 0) hold the base for backoffGraceRounds
// barren rounds, then double per round up to 64× — no point hammering a
// path that has been silent that long. Both cases apply a ±25% jitter
// factor drawn from the session's derived stream so parallel sessions
// don't retransmit in lockstep.
func (s *rdpSession) backoffTimeout() time.Duration {
	shift := 0
	if s.addr.MaxRetries > 0 {
		shift = s.consecutive - backoffGraceRounds
		if shift < 0 {
			shift = 0
		}
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
	}
	d := s.addr.RetransmitTimeout << shift
	jitter := 0.75 + s.rng.Float64()/2
	return time.Duration(float64(d) * jitter)
}

func (s *rdpSession) armTimer() {
	if s.timer.Pending() || s.sendBase == s.nextSeq || s.closed {
		return
	}
	eng := s.r.host.Eng
	s.timer = eng.After(s.backoffTimeout(), func() {
		s.timer = sim.Event{}
		if s.closed || s.sendBase == s.nextSeq {
			return
		}
		s.r.stats.Timeouts++
		s.consecutive++
		if s.addr.MaxRetries > 0 && s.consecutive > s.addr.MaxRetries {
			s.fail(ErrMaxRetries)
			return
		}
		s.retxWork.Broadcast()
	})
}

// fail terminates the session: it records the error, closes the lower
// session, and wakes every blocked sender so Push/WaitAcked observe the
// error instead of sleeping forever on a dead peer.
func (s *rdpSession) fail(err error) {
	if s.closed || s.err != nil {
		return
	}
	s.err = err
	s.closed = true
	s.r.stats.Failed++
	if s.r.host.Eng.Tracing() {
		s.r.host.Eng.Tracef("proto: rdp vci=%d failed after %d retries: %v", s.addr.VCI, s.consecutive-1, err)
	}
	s.cancelTimer()
	s.lower.Close()
	s.notFull.Broadcast()
	s.acked.Broadcast()
	s.retxWork.Broadcast()
}

func (s *rdpSession) cancelTimer() {
	s.r.host.Eng.Cancel(s.timer)
	s.timer = sim.Event{}
}

// retransmitter is the session's timeout thread: on each timer firing it
// resends the whole outstanding window (go-back-N).
func (s *rdpSession) retransmitter(p *sim.Proc) {
	for {
		s.retxWork.Wait(p)
		if s.closed {
			return
		}
		for seq := s.sendBase; seq != s.nextSeq; seq++ {
			data, ok := s.unacked[seq]
			if !ok {
				continue
			}
			s.r.stats.Retransmits++
			if eng := s.r.host.Eng; eng.Recording() {
				eng.Emit(sim.TraceEvent{At: eng.Now(), Ph: 'i', Comp: "rdp", Cat: "proto", Name: "retransmit", Arg: int64(seq)})
			}
			if err := s.sendSegment(p, rdpData, seq, data); err != nil {
				return
			}
		}
		s.armTimer()
	}
}

// demux handles an inbound segment from IP.
func (s *rdpSession) demux(p *sim.Proc, m *msg.Message) {
	if m.Len() < RDPHeaderSize {
		return
	}
	hdr, err := readThroughCache(p, s.r.host, m, RDPHeaderSize)
	if err != nil {
		return
	}
	typ := hdr[0]
	seq := binary.BigEndian.Uint32(hdr[4:])
	ack := binary.BigEndian.Uint32(hdr[8:])
	plen := binary.BigEndian.Uint32(hdr[12:])

	// Cumulative acknowledgement processing (both segment types carry it).
	s.processAck(ack)

	if typ != rdpData {
		return
	}
	if int(plen) != m.Len()-RDPHeaderSize {
		return
	}
	payload, err := m.TrimPrefix(RDPHeaderSize)
	if err != nil {
		return
	}
	if seq != s.expected {
		// Go-back-N: discard and re-acknowledge what we have.
		s.r.stats.OutOfOrder++
		s.sendAck(p)
		return
	}
	// Verify the payload (through the cache, with lazy recovery).
	segs, err := payload.PhysSegments()
	if err != nil {
		return
	}
	want := binary.BigEndian.Uint16(hdr[2:])
	got := s.r.host.Checksum(p, segs)
	if got != want {
		recovered := false
		if s.r.ip.Driver().RecoverData(p, m) {
			recovered = s.r.host.Checksum(p, segs) == want
		}
		if !recovered {
			s.r.stats.ChecksumErr++
			s.sendAck(p) // still an implicit NAK for this segment
			return
		}
	}
	s.expected++
	s.r.stats.Delivered++
	if s.upper != nil {
		s.upper(p, payload)
	}
	s.sendAck(p)
}

func (s *rdpSession) processAck(ack uint32) {
	if ack == s.sendBase {
		if s.sendBase != s.nextSeq {
			s.r.stats.DupAcks++
			// Even a duplicate ack proves the peer and both directions of
			// the path are alive — only the segments are being lost. Keep
			// retransmitting at the base rate; exponential backoff is for
			// silence, not for loss.
			s.consecutive = 0
		}
		return
	}
	// Window arithmetic is modular; only acks inside the outstanding
	// window are meaningful (anything else is corrupt or stale).
	if ack-s.sendBase > s.nextSeq-s.sendBase {
		return
	}
	for s.sendBase != s.nextSeq && s.sendBase != ack {
		delete(s.unacked, s.sendBase)
		s.sendBase++
	}
	s.consecutive = 0 // forward progress resets the backoff
	s.notFull.Broadcast()
	s.acked.Broadcast()
	s.cancelTimer()
	s.armTimer()
}

func (s *rdpSession) sendAck(p *sim.Proc) {
	s.r.stats.AcksSent++
	if err := s.sendSegment(p, rdpAck, 0, nil); err != nil {
		return
	}
}

var (
	_ xkernel.Protocol = (*RDP)(nil)
	_ xkernel.Session  = (*rdpSession)(nil)
)

// WaitAckedSession lets callers drain an RDP session through the
// xkernel.Session interface and observe its terminal error.
type WaitAckedSession interface {
	WaitAcked(p *sim.Proc)
	Err() error
}

var _ WaitAckedSession = (*rdpSession)(nil)
