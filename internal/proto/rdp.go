package proto

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// RDP is a reliable datagram protocol configured over IP — a go-back-N
// sliding window with cumulative acknowledgements and a payload
// checksum.
//
// It exists to demonstrate the x-kernel property the paper leans on
// ("because the x-kernel supports arbitrary protocols, our approach is
// protocol-independent; it is not tailored to TCP/IP", §1): RDP slots
// into the same graph, runs over the same driver paths and VCIs, and
// turns the simulated network's cell loss into retransmissions instead
// of message loss.
type RDP struct {
	host  *hostsim.Host
	ip    *IP
	stats RDPStats
}

// RDPStats counts RDP activity.
type RDPStats struct {
	DataSent    int64
	Retransmits int64
	Timeouts    int64
	AcksSent    int64
	Delivered   int64
	OutOfOrder  int64 // data segments discarded awaiting earlier ones
	ChecksumErr int64
	DupAcks     int64
}

// NewRDP returns an RDP instance over ip.
func NewRDP(h *hostsim.Host, ip *IP) *RDP { return &RDP{host: h, ip: ip} }

// Name implements xkernel.Protocol.
func (r *RDP) Name() string { return "rdp" }

// Stats returns a copy of the counters.
func (r *RDP) Stats() RDPStats { return r.stats }

// ProtoRDP is RDP's protocol number in the IP header.
const ProtoRDP = 27

// RDPHeaderSize is the segment header size.
const RDPHeaderSize = 16

// Segment types.
const (
	rdpData = 0
	rdpAck  = 1
)

// RDPOpen addresses an RDP session.
type RDPOpen struct {
	Remote HostAddr
	VCI    atm.VCI
	// Window is the go-back-N send window in segments (default 8).
	Window int
	// RetransmitTimeout arms the sender's timer (default 2 ms — a few
	// simulated round trips).
	RetransmitTimeout time.Duration
}

// Open implements xkernel.Protocol.
func (r *RDP) Open(addr any) (xkernel.Session, error) {
	a, ok := addr.(RDPOpen)
	if !ok {
		return nil, fmt.Errorf("proto: rdp.Open wants RDPOpen, got %T", addr)
	}
	if a.Window == 0 {
		a.Window = 8
	}
	if a.RetransmitTimeout == 0 {
		a.RetransmitTimeout = 2 * time.Millisecond
	}
	lower, err := r.ip.Open(IPOpen{Remote: a.Remote, VCI: a.VCI, Proto: ProtoRDP})
	if err != nil {
		return nil, err
	}
	s := &rdpSession{
		r:        r,
		addr:     a,
		lower:    lower,
		unacked:  make(map[uint32][]byte),
		notFull:  sim.NewCond(r.host.Eng),
		acked:    sim.NewCond(r.host.Eng),
		retxWork: sim.NewCond(r.host.Eng),
	}
	lower.SetHandler(s.demux)
	r.host.Eng.Go(fmt.Sprintf("rdp-retx-vci%d", a.VCI), s.retransmitter)
	return s, nil
}

type rdpSession struct {
	r     *RDP
	addr  RDPOpen
	lower xkernel.Session
	upper xkernel.Handler

	// Sender state.
	sendBase uint32 // oldest unacknowledged sequence number
	nextSeq  uint32
	unacked  map[uint32][]byte
	timer    sim.Event
	notFull  *sim.Cond
	acked    *sim.Cond
	retxWork *sim.Cond
	closed   bool

	// Receiver state.
	expected uint32
}

// SetHandler implements xkernel.Session.
func (s *rdpSession) SetHandler(h xkernel.Handler) { s.upper = h }

// Close implements xkernel.Session.
func (s *rdpSession) Close() {
	s.closed = true
	s.cancelTimer()
	s.lower.Close()
}

// Push sends one message reliably: it blocks while the window is full,
// stores a retransmission copy, and returns once the segment is queued.
// Use WaitAcked to drain the window.
func (s *rdpSession) Push(p *sim.Proc, m *msg.Message) error {
	for s.nextSeq-s.sendBase >= uint32(s.addr.Window) {
		s.notFull.Wait(p)
	}
	data, err := m.Bytes()
	if err != nil {
		return err
	}
	// A reliable sender must hold the bytes until acknowledged; the copy
	// is priced as CPU touch time.
	s.r.host.Compute(p, s.r.host.Prof.Cycles((len(data)+3)/4))
	seq := s.nextSeq
	s.nextSeq++
	s.unacked[seq] = data
	s.r.stats.DataSent++
	if err := s.sendSegment(p, rdpData, seq, data); err != nil {
		return err
	}
	s.armTimer()
	return nil
}

// WaitAcked blocks until every pushed message has been acknowledged.
func (s *rdpSession) WaitAcked(p *sim.Proc) {
	for s.sendBase != s.nextSeq {
		s.acked.Wait(p)
	}
}

// sendSegment builds the header (+ checksummed payload for data) and
// pushes it through IP.
func (s *rdpSession) sendSegment(p *sim.Proc, typ byte, seq uint32, payload []byte) error {
	host := s.r.host
	total := RDPHeaderSize + len(payload)
	va, err := host.Kernel.Alloc(total)
	if err != nil {
		return err
	}
	buf := make([]byte, total)
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[4:], seq)
	binary.BigEndian.PutUint32(buf[8:], s.expected) // piggybacked cumulative ack
	binary.BigEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[RDPHeaderSize:], payload)
	if typ == rdpData {
		binary.BigEndian.PutUint16(buf[2:], hostsim.InternetChecksum(payload))
	}
	if err := writeThroughCache(host, host.Kernel, va, buf); err != nil {
		return err
	}
	m := msg.New(msg.Fragment{Space: host.Kernel, VA: va, Len: total})
	kernel := host.Kernel
	return s.lower.(*ipSession).PushDone(p, m, func(p *sim.Proc) {
		if err := kernel.Free(va, total); err != nil {
			panic(err)
		}
	})
}

func (s *rdpSession) armTimer() {
	if s.timer.Pending() || s.sendBase == s.nextSeq {
		return
	}
	eng := s.r.host.Eng
	s.timer = eng.After(s.addr.RetransmitTimeout, func() {
		s.timer = sim.Event{}
		if s.closed || s.sendBase == s.nextSeq {
			return
		}
		s.r.stats.Timeouts++
		s.retxWork.Broadcast()
	})
}

func (s *rdpSession) cancelTimer() {
	s.r.host.Eng.Cancel(s.timer)
	s.timer = sim.Event{}
}

// retransmitter is the session's timeout thread: on each timer firing it
// resends the whole outstanding window (go-back-N).
func (s *rdpSession) retransmitter(p *sim.Proc) {
	for {
		s.retxWork.Wait(p)
		if s.closed {
			return
		}
		for seq := s.sendBase; seq != s.nextSeq; seq++ {
			data, ok := s.unacked[seq]
			if !ok {
				continue
			}
			s.r.stats.Retransmits++
			if err := s.sendSegment(p, rdpData, seq, data); err != nil {
				return
			}
		}
		s.armTimer()
	}
}

// demux handles an inbound segment from IP.
func (s *rdpSession) demux(p *sim.Proc, m *msg.Message) {
	if m.Len() < RDPHeaderSize {
		return
	}
	hdr, err := readThroughCache(p, s.r.host, m, RDPHeaderSize)
	if err != nil {
		return
	}
	typ := hdr[0]
	seq := binary.BigEndian.Uint32(hdr[4:])
	ack := binary.BigEndian.Uint32(hdr[8:])
	plen := binary.BigEndian.Uint32(hdr[12:])

	// Cumulative acknowledgement processing (both segment types carry it).
	s.processAck(ack)

	if typ != rdpData {
		return
	}
	if int(plen) != m.Len()-RDPHeaderSize {
		return
	}
	payload, err := m.TrimPrefix(RDPHeaderSize)
	if err != nil {
		return
	}
	if seq != s.expected {
		// Go-back-N: discard and re-acknowledge what we have.
		s.r.stats.OutOfOrder++
		s.sendAck(p)
		return
	}
	// Verify the payload (through the cache, with lazy recovery).
	segs, err := payload.PhysSegments()
	if err != nil {
		return
	}
	want := binary.BigEndian.Uint16(hdr[2:])
	got := s.r.host.Checksum(p, segs)
	if got != want {
		recovered := false
		if s.r.ip.Driver().RecoverData(p, m) {
			recovered = s.r.host.Checksum(p, segs) == want
		}
		if !recovered {
			s.r.stats.ChecksumErr++
			s.sendAck(p) // still an implicit NAK for this segment
			return
		}
	}
	s.expected++
	s.r.stats.Delivered++
	if s.upper != nil {
		s.upper(p, payload)
	}
	s.sendAck(p)
}

func (s *rdpSession) processAck(ack uint32) {
	if ack == s.sendBase {
		if s.sendBase != s.nextSeq {
			s.r.stats.DupAcks++
		}
		return
	}
	// Window arithmetic is modular; only acks inside the outstanding
	// window are meaningful (anything else is corrupt or stale).
	if ack-s.sendBase > s.nextSeq-s.sendBase {
		return
	}
	for s.sendBase != s.nextSeq && s.sendBase != ack {
		delete(s.unacked, s.sendBase)
		s.sendBase++
	}
	s.notFull.Broadcast()
	s.acked.Broadcast()
	s.cancelTimer()
	s.armTimer()
}

func (s *rdpSession) sendAck(p *sim.Proc) {
	s.r.stats.AcksSent++
	if err := s.sendSegment(p, rdpAck, 0, nil); err != nil {
		return
	}
}

var (
	_ xkernel.Protocol = (*RDP)(nil)
	_ xkernel.Session  = (*rdpSession)(nil)
)

// WaitAckedSession lets callers drain an RDP session through the
// xkernel.Session interface.
type WaitAckedSession interface {
	WaitAcked(p *sim.Proc)
}

var _ WaitAckedSession = (*rdpSession)(nil)
