package proto

import (
	"time"

	"repro/internal/sim"
)

// rttGranularity is the estimator's clock granularity G of RFC 6298:
// the floor on the variance term of the computed RTO. The simulated
// clock is exact to the nanosecond, but a sub-granularity variance term
// would make the timeout hug the smoothed RTT so tightly that ordinary
// ack jitter (reassembly completing a cell-train earlier or later)
// fires spurious retransmissions.
const rttGranularity = 10 * time.Microsecond

// rttEstimator is the RFC 6298 SRTT/RTTVAR retransmission-timeout
// estimator with Karn's algorithm, as a pure unit: it never touches the
// engine, so tests drive it with synthetic clocks. All state is in
// integer nanoseconds — no floats — so the adaptive transport stays
// bit-deterministic under the seeded engine.
//
// Karn's rule is implemented by the Sent/Retransmitted/Acked triple:
// Sent stamps a segment's first transmission, Retransmitted revokes the
// stamp (an ack for a retransmitted segment is ambiguous — it may
// acknowledge either transmission — so it must not feed the estimator),
// and Acked consumes the stamp into a sample if it survived.
type rttEstimator struct {
	srtt   time.Duration // smoothed RTT; 0 until the first sample
	rttvar time.Duration // RTT variance estimate
	rto    time.Duration // current retransmission timeout
	minRTO time.Duration
	maxRTO time.Duration

	sentAt  map[uint32]sim.Time // first-transmission stamps, Karn-eligible
	samples int64
}

// newRTTEstimator returns an estimator whose RTO starts at initial
// (clamped into [min, max]) until the first sample arrives.
func newRTTEstimator(initial, min, max time.Duration) *rttEstimator {
	e := &rttEstimator{minRTO: min, maxRTO: max, sentAt: make(map[uint32]sim.Time)}
	e.rto = e.clamp(initial)
	return e
}

func (e *rttEstimator) clamp(d time.Duration) time.Duration {
	if d < e.minRTO {
		return e.minRTO
	}
	if d > e.maxRTO {
		return e.maxRTO
	}
	return d
}

// RTO returns the current retransmission timeout.
func (e *rttEstimator) RTO() time.Duration { return e.rto }

// SRTT returns the smoothed RTT (0 before the first sample).
func (e *rttEstimator) SRTT() time.Duration { return e.srtt }

// RTTVar returns the variance estimate.
func (e *rttEstimator) RTTVar() time.Duration { return e.rttvar }

// Samples returns the number of accepted samples.
func (e *rttEstimator) Samples() int64 { return e.samples }

// Sent records seq's first transmission at the given instant.
func (e *rttEstimator) Sent(seq uint32, at sim.Time) { e.sentAt[seq] = at }

// Retransmitted applies Karn's rule: seq's eventual ack is ambiguous,
// so its stamp is revoked and no sample will be taken from it.
func (e *rttEstimator) Retransmitted(seq uint32) { delete(e.sentAt, seq) }

// Acked consumes seq's stamp. If the stamp survived (the segment was
// never retransmitted) the round-trip becomes a sample and ok is true.
func (e *rttEstimator) Acked(seq uint32, now sim.Time) (sample time.Duration, ok bool) {
	at, found := e.sentAt[seq]
	if !found {
		return 0, false
	}
	delete(e.sentAt, seq)
	sample = time.Duration(now - at)
	if sample < 0 {
		return 0, false
	}
	e.Observe(sample)
	return sample, true
}

// Observe feeds one round-trip sample through the RFC 6298 update:
//
//	first:  SRTT = R, RTTVAR = R/2
//	after:  RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
//	        SRTT   = 7/8·SRTT   + 1/8·R
//	RTO = SRTT + max(G, 4·RTTVAR), clamped into [min, max]
func (e *rttEstimator) Observe(r time.Duration) {
	if e.samples == 0 {
		e.srtt = r
		e.rttvar = r / 2
	} else {
		dev := e.srtt - r
		if dev < 0 {
			dev = -dev
		}
		e.rttvar = (3*e.rttvar + dev) / 4
		e.srtt = (7*e.srtt + r) / 8
	}
	e.samples++
	varTerm := 4 * e.rttvar
	if varTerm < rttGranularity {
		varTerm = rttGranularity
	}
	e.rto = e.clamp(e.srtt + varTerm)
}

// Backoff doubles the RTO (timeout response), capped at maxRTO. The
// next accepted sample recomputes it from SRTT/RTTVAR as usual.
func (e *rttEstimator) Backoff() {
	e.rto = e.clamp(e.rto * 2)
}
