package proto

import (
	"encoding/binary"

	"repro/internal/hostsim"
)

// BuildUDPFragments constructs the on-the-wire IP fragments of one UDP
// datagram, without any simulation state — used to program the board's
// fictitious-PDU generator for the receive-side isolation experiments
// (Figures 2 and 3), whose traffic must be real packets the host stack
// can parse.
func BuildUDPFragments(payload []byte, srcPort, dstPort uint16, src, dst HostAddr, mtu int, checksum bool, ident uint32) [][]byte {
	var sum uint16
	if checksum {
		sum = hostsim.InternetChecksum(payload)
		if sum == 0 {
			sum = 0xFFFF
		}
	}
	dgram := make([]byte, UDPHeaderSize+len(payload))
	binary.BigEndian.PutUint16(dgram[0:], srcPort)
	binary.BigEndian.PutUint16(dgram[2:], dstPort)
	binary.BigEndian.PutUint32(dgram[4:], uint32(len(payload)))
	binary.BigEndian.PutUint16(dgram[8:], sum)
	copy(dgram[UDPHeaderSize:], payload)

	maxData := mtu - IPHeaderSize
	var frags [][]byte
	for off := 0; ; {
		take := len(dgram) - off
		if take > maxData {
			take = maxData
		}
		mf := off+take < len(dgram)
		frag := make([]byte, IPHeaderSize+take)
		frag[0] = 0x45
		frag[1] = ProtoUDP
		frag[2] = byte(src)
		frag[3] = byte(dst)
		binary.BigEndian.PutUint32(frag[4:], uint32(take))
		binary.BigEndian.PutUint32(frag[8:], ident)
		binary.BigEndian.PutUint32(frag[12:], uint32(off))
		if mf {
			frag[16] = 1
		}
		frag[17] = 64
		binary.BigEndian.PutUint16(frag[18:], hostsim.InternetChecksum(frag[:18]))
		copy(frag[IPHeaderSize:], dgram[off:off+take])
		frags = append(frags, frag)
		off += take
		if off >= len(dgram) {
			break
		}
	}
	return frags
}
