package proto

import (
	"encoding/binary"
	"fmt"

	"repro/internal/atm"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// UDPStats counts UDP activity.
type UDPStats struct {
	Sent        int64
	Received    int64
	ChecksumErr int64 // failures remaining after any recovery
	Recovered   int64 // checksum failures fixed by lazy invalidation
	Dropped     int64
}

// UDP is the transport protocol instance for one host, configured over
// an IP instance.
type UDP struct {
	host  *hostsim.Host
	ip    *IP
	stats UDPStats
}

// NewUDP returns a UDP instance over ip.
func NewUDP(h *hostsim.Host, ip *IP) *UDP {
	return &UDP{host: h, ip: ip}
}

// Name implements xkernel.Protocol.
func (u *UDP) Name() string { return "udp" }

// Stats returns a copy of the counters.
func (u *UDP) Stats() UDPStats { return u.stats }

// UDPOpen addresses a UDP session. Checksum selects whether the data
// checksum is computed and verified (the paper's experiments run both
// ways; Table 1 has it off, Figure 3's "UDP-CS" curves on).
type UDPOpen struct {
	Remote   HostAddr
	VCI      atm.VCI
	SrcPort  uint16
	DstPort  uint16
	Checksum bool
}

// Open implements xkernel.Protocol.
func (u *UDP) Open(addr any) (xkernel.Session, error) {
	a, ok := addr.(UDPOpen)
	if !ok {
		return nil, fmt.Errorf("proto: udp.Open wants UDPOpen, got %T", addr)
	}
	lower, err := u.ip.Open(IPOpen{Remote: a.Remote, VCI: a.VCI, Proto: ProtoUDP})
	if err != nil {
		return nil, err
	}
	s := &udpSession{u: u, addr: a, lower: lower}
	lower.SetHandler(s.demux)
	return s, nil
}

type udpSession struct {
	u     *UDP
	addr  UDPOpen
	lower xkernel.Session
	upper xkernel.Handler
}

// SetHandler implements xkernel.Session.
func (s *udpSession) SetHandler(h xkernel.Handler) { s.upper = h }

// Close implements xkernel.Session.
func (s *udpSession) Close() { s.lower.Close() }

// Push prepends the UDP header — checksumming the payload through the
// cache and bus models when enabled, the dominant per-byte CPU cost of
// §4 — and hands the datagram to IP.
func (s *udpSession) Push(p *sim.Proc, m *msg.Message) error {
	s.u.host.Compute(p, udpCost(s.u.host.Prof.ProtoSendPerPDU))
	var sum uint16
	if s.addr.Checksum {
		segs, err := m.AppendPhysSegments(s.u.host.GetSegs())
		if err != nil {
			s.u.host.PutSegs(segs)
			return err
		}
		sum = s.u.host.Checksum(p, segs)
		s.u.host.PutSegs(segs)
		if sum == 0 {
			sum = 0xFFFF // 0 means "no checksum", per UDP convention
		}
	}
	hdrVA, err := s.u.host.Kernel.Alloc(UDPHeaderSize)
	if err != nil {
		return err
	}
	var hdr [UDPHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:], s.addr.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:], s.addr.DstPort)
	binary.BigEndian.PutUint32(hdr[4:], uint32(m.Len()))
	binary.BigEndian.PutUint16(hdr[8:], sum)
	if err := writeThroughCache(s.u.host, s.u.host.Kernel, hdrVA, hdr[:]); err != nil {
		return err
	}
	dgram := m.Prepend(msg.Fragment{Space: s.u.host.Kernel, VA: hdrVA, Len: UDPHeaderSize})
	s.u.stats.Sent++
	kernel := s.u.host.Kernel
	// The DMA reads the header asynchronously; free it only once every
	// fragment of this datagram has completed transmission.
	return s.lower.(*ipSession).PushDone(p, dgram, func(p *sim.Proc) {
		if err := kernel.Free(hdrVA, UDPHeaderSize); err != nil {
			panic(err)
		}
	})
}

// demux verifies and strips the UDP header and delivers the payload.
func (s *udpSession) demux(p *sim.Proc, m *msg.Message) {
	s.u.host.Compute(p, udpCost(s.u.host.Prof.ProtoRecvPerPDU))
	if m.Len() < UDPHeaderSize {
		s.u.stats.Dropped++
		return
	}
	hdr, err := readThroughCache(p, s.u.host, m, UDPHeaderSize)
	if err != nil {
		s.u.stats.Dropped++
		return
	}
	length := binary.BigEndian.Uint32(hdr[4:])
	wantSum := binary.BigEndian.Uint16(hdr[8:])
	if int(length) != m.Len()-UDPHeaderSize {
		s.u.stats.Dropped++
		return
	}
	payload, err := m.TrimPrefix(UDPHeaderSize)
	if err != nil {
		s.u.stats.Dropped++
		return
	}
	if s.addr.Checksum && wantSum != 0 {
		segs, err := payload.AppendPhysSegments(s.u.host.GetSegs())
		defer s.u.host.PutSegs(segs)
		if err != nil {
			s.u.stats.Dropped++
			return
		}
		got := s.u.host.Checksum(p, segs)
		if got == 0 {
			got = 0xFFFF
		}
		if got != wantSum {
			// Stale cache data? Invalidate and re-evaluate (§2.3).
			recovered := false
			if s.u.ip.Driver().RecoverData(p, m) {
				got = s.u.host.Checksum(p, segs)
				if got == 0 {
					got = 0xFFFF
				}
				recovered = got == wantSum
			}
			if !recovered {
				s.u.ip.Driver().NoteChecksumError()
				s.u.stats.ChecksumErr++
				s.u.stats.Dropped++
				return
			}
			s.u.stats.Recovered++
		}
	}
	s.u.stats.Received++
	if s.upper != nil {
		s.upper(p, payload)
	}
}

var (
	_ xkernel.Protocol = (*UDP)(nil)
	_ xkernel.Protocol = (*IP)(nil)
	_ xkernel.Session  = (*udpSession)(nil)
	_ xkernel.Session  = (*ipSession)(nil)
)
