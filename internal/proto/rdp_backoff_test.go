package proto

import (
	"errors"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
)

// runDeadPeer opens an RDP session over a link that loses every cell
// and pushes into it until the MaxRetries cap fires. Returns the
// session, the first Push error, and the time WaitAcked unblocked.
func runDeadPeer(t *testing.T, seed int64) (*rdpSession, RDPStats, error, sim.Time) {
	t.Helper()
	sp := newLossyStackPair(t, 1.0, seed) // every A→B cell is lost: the peer is dead
	rA := NewRDP(sp.hA, sp.ipA)
	sess, err := rA.Open(RDPOpen{Remote: 2, VCI: 10, Window: 2, MaxRetries: 6, RetransmitTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tx := sess.(*rdpSession)
	var pushErr error
	var failAt sim.Time
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(500, byte(i)))
			if pushErr = tx.Push(p, m); pushErr != nil {
				break
			}
		}
		tx.WaitAcked(p)
		failAt = p.Now()
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	return tx, rA.Stats(), pushErr, failAt
}

func TestRDPMaxRetriesFailsDeadPeer(t *testing.T) {
	tx, st, pushErr, failAt := runDeadPeer(t, 7)

	// The third Push blocked on the full window and must have been woken
	// with the terminal error rather than left waiting forever.
	if !errors.Is(pushErr, ErrMaxRetries) {
		t.Fatalf("blocked Push returned %v, want ErrMaxRetries", pushErr)
	}
	if !errors.Is(tx.Err(), ErrMaxRetries) {
		t.Fatalf("Err() = %v, want ErrMaxRetries", tx.Err())
	}
	if failAt == 0 {
		t.Fatal("WaitAcked never unblocked")
	}
	if st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
	// MaxRetries=6 means exactly 7 timer firings: six retransmission
	// rounds, then the firing that trips the cap.
	if st.Timeouts != 7 {
		t.Errorf("Timeouts = %d, want 7", st.Timeouts)
	}
	// The interval sequence is 5 rounds at the ~1 ms base (consecutive
	// 0–4, all within the grace) then exponential doubling (2, 4 ms),
	// each jittered within ±25%: the failure-time bracket proves the
	// backoff actually grew — 7 fixed-interval rounds would finish by
	// ~8.75 ms even at maximum jitter.
	const baseSum = 5 + 2 + 4 // ms, un-jittered
	lo := sim.Time(baseSum * 0.75 * float64(time.Millisecond))
	hi := sim.Time((baseSum*1.25 + 1) * float64(time.Millisecond))
	if failAt < lo || failAt > hi {
		t.Errorf("session failed at %v, want within [%v, %v]", time.Duration(failAt), time.Duration(lo), time.Duration(hi))
	}
	// A failed session rejects further traffic immediately.
	if err := tx.Push(nil, nil); !errors.Is(err, ErrMaxRetries) {
		t.Errorf("Push after failure returned %v", err)
	}
}

func TestRDPDeadPeerDeterministicForFixedSeed(t *testing.T) {
	_, st1, _, at1 := runDeadPeer(t, 11)
	_, st2, _, at2 := runDeadPeer(t, 11)
	if st1 != st2 || at1 != at2 {
		t.Fatalf("dead-peer runs diverged:\n%+v at %v\n%+v at %v", st1, at1, st2, at2)
	}
}
