package proto

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// Raw is the "ATM" test protocol of Table 1: sessions configured
// directly on top of the OSIRIS device driver, with no headers and no
// protocol processing beyond the driver itself.
type Raw struct {
	host *hostsim.Host
	drv  *driver.Driver
}

// NewRaw returns the raw protocol over drv.
func NewRaw(h *hostsim.Host, drv *driver.Driver) *Raw {
	return &Raw{host: h, drv: drv}
}

// Name implements xkernel.Protocol.
func (r *Raw) Name() string { return "atm" }

// RawOpen addresses a raw session: just the VCI.
type RawOpen struct {
	VCI atm.VCI
}

// Open implements xkernel.Protocol.
func (r *Raw) Open(addr any) (xkernel.Session, error) {
	a, ok := addr.(RawOpen)
	if !ok {
		return nil, fmt.Errorf("proto: raw.Open wants RawOpen, got %T", addr)
	}
	s := &rawSession{r: r}
	s.path = r.drv.OpenPath(a.VCI, func(p *sim.Proc, m *msg.Message) {
		if s.upper != nil {
			s.upper(p, m)
		}
	})
	return s, nil
}

type rawSession struct {
	r     *Raw
	path  *driver.Path
	upper xkernel.Handler
}

func (s *rawSession) Push(p *sim.Proc, m *msg.Message) error {
	return s.r.drv.Send(p, s.path, m, nil)
}

func (s *rawSession) SetHandler(h xkernel.Handler) { s.upper = h }

func (s *rawSession) Close() { s.r.drv.ClosePath(s.path) }

var (
	_ xkernel.Protocol = (*Raw)(nil)
	_ xkernel.Session  = (*rawSession)(nil)
)
