// Package proto implements the protocol stack the paper evaluates over
// OSIRIS: an IP-like internetwork protocol with fragmentation and a
// UDP-like transport with an optional Internet checksum, both written
// against the x-kernel framework. As in the paper (§4 footnote), the
// protocols are modified to support messages larger than 64 KB — length
// fields are 32 bits.
//
// Processing costs come from the host profile: the fixed per-PDU
// UDP/IP cost (calibrated to the paper's 200 µs on the DECstation,
// §2.1.2) is split between the layers, and data-touching operations
// (header reads, checksums) go through the cache and bus models, so
// stale cache lines and memory contention behave as they did on the
// real machines.
package proto

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// HostAddr identifies a host (the testbed is two hosts back to back).
type HostAddr uint8

// Header sizes and protocol numbers.
const (
	IPHeaderSize  = 20
	UDPHeaderSize = 12
	ProtoUDP      = 17
)

// Cost split of the profile's per-PDU protocol time between layers.
const (
	udpShare = 0.4
	ipShare  = 0.6
)

func udpCost(d time.Duration) time.Duration { return time.Duration(float64(d) * udpShare) }
func ipCost(d time.Duration) time.Duration  { return time.Duration(float64(d) * ipShare) }

// IPStats counts IP activity.
type IPStats struct {
	FragsSent    int64
	FragsRecv    int64
	PDUsSent     int64
	PDUsRecv     int64
	HdrErrors    int64 // header checksum failures (after any recovery)
	HdrRecovered int64 // header failures fixed by lazy-invalidation recovery
	Dropped      int64
}

// IP is the internetwork protocol instance for one host.
type IP struct {
	host  *hostsim.Host
	drv   *driver.Driver
	local HostAddr
	mtu   int
	ident uint32
	stats IPStats
}

// NewIP returns an IP instance with the given maximum transfer unit
// (which, per §2.2, the driver is free to define; the paper's
// experiments use 16 KB, and the page-aligned choice is page size × k
// plus IPHeaderSize).
func NewIP(h *hostsim.Host, drv *driver.Driver, local HostAddr, mtu int) *IP {
	if mtu <= IPHeaderSize {
		panic("proto: MTU must exceed the IP header size")
	}
	return &IP{host: h, drv: drv, local: local, mtu: mtu}
}

// Name implements xkernel.Protocol.
func (ip *IP) Name() string { return "ip" }

// MTU returns the configured MTU.
func (ip *IP) MTU() int { return ip.mtu }

// Driver exposes the driver (for recovery hooks and tests).
func (ip *IP) Driver() *driver.Driver { return ip.drv }

// Stats returns a copy of the counters.
func (ip *IP) Stats() IPStats { return ip.stats }

// IPOpen addresses an IP session: the remote host, the VCI the path is
// bound to, and the upper protocol number.
type IPOpen struct {
	Remote HostAddr
	VCI    atm.VCI
	Proto  byte
}

// Open implements xkernel.Protocol.
func (ip *IP) Open(addr any) (xkernel.Session, error) {
	a, ok := addr.(IPOpen)
	if !ok {
		return nil, fmt.Errorf("proto: ip.Open wants IPOpen, got %T", addr)
	}
	s := &ipSession{
		ip:     ip,
		remote: a.Remote,
		proto:  a.Proto,
		reasm:  make(map[uint32]*ipPartial),
	}
	s.path = ip.drv.OpenPath(a.VCI, s.demux)
	return s, nil
}

// ipPartial is one in-progress fragment reassembly.
type ipPartial struct {
	frags    map[uint32]*msg.Message // fragOff -> payload view
	retained []*msg.Message          // driver messages held for release
	got      int
	total    int  // -1 until the final fragment arrives
	ce       bool // any fragment arrived CE-marked
}

type ipSession struct {
	ip         *IP
	remote     HostAddr
	proto      byte
	path       *driver.Path
	upper      xkernel.Handler
	reasm      map[uint32]*ipPartial
	reasmOrder []uint32 // insertion order, for the staleness cap
	lastCE     bool     // the PDU being delivered upward carried a CE mark
}

// maxPartials bounds concurrent fragment reassemblies per session; the
// oldest is abandoned beyond it (standing in for the usual reassembly
// timeout, which a PDU with a dropped fragment would otherwise leak).
const maxPartials = 4

// SetHandler implements xkernel.Session.
func (s *ipSession) SetHandler(h xkernel.Handler) { s.upper = h }

// CongestionMarked, read from within an upper handler, reports whether
// the PDU being delivered (or, for fragmented PDUs, any fragment of it)
// carried the fabric's congestion-experienced mark.
func (s *ipSession) CongestionMarked() bool { return s.lastCE }

// Close implements xkernel.Session.
func (s *ipSession) Close() { s.ip.drv.ClosePath(s.path) }

// Push fragments m to the MTU and queues each fragment with its own
// 20-byte header buffer — the buffer-chain structure whose physical
// fragmentation §2.2 analyses.
func (s *ipSession) Push(p *sim.Proc, m *msg.Message) error {
	return s.PushDone(p, m, nil)
}

// PushDone is Push with a completion callback that runs once every
// fragment of the PDU has actually been transmitted (tail advance past
// its descriptors) — upper layers use it to free header buffers whose
// bytes the DMA reads asynchronously.
func (s *ipSession) PushDone(p *sim.Proc, m *msg.Message, done func(p *sim.Proc)) error {
	maxData := s.ip.mtu - IPHeaderSize
	total := m.Len()
	s.ip.ident++
	ident := s.ip.ident
	rest := m
	outstanding := 0
	var sent bool
	fragDone := func(p *sim.Proc) {
		outstanding--
		if outstanding == 0 && sent && done != nil {
			done(p)
		}
	}
	for off := 0; ; {
		take := rest.Len()
		if take > maxData {
			take = maxData
		}
		var frag *msg.Message
		var err error
		if take == rest.Len() {
			frag = rest // final fragment: no need to carve an empty tail
		} else {
			frag, rest, err = rest.Split(take)
			if err != nil {
				return err
			}
		}
		mf := off+take < total
		outstanding++
		if err := s.sendFragment(p, frag, ident, uint32(off), mf, fragDone); err != nil {
			return err
		}
		off += take
		if off >= total {
			break
		}
	}
	sent = true
	if outstanding == 0 && done != nil {
		done(p)
	}
	s.ip.stats.PDUsSent++
	return nil
}

func (s *ipSession) sendFragment(p *sim.Proc, payload *msg.Message, ident, off uint32, mf bool, fragDone func(p *sim.Proc)) error {
	s.ip.host.Compute(p, ipCost(s.ip.host.Prof.ProtoSendPerPDU))
	hdrVA, err := s.ip.host.Kernel.Alloc(IPHeaderSize)
	if err != nil {
		return err
	}
	var hdr [IPHeaderSize]byte
	hdr[0] = 0x45
	hdr[1] = s.proto
	hdr[2] = byte(s.ip.local)
	hdr[3] = byte(s.remote)
	binary.BigEndian.PutUint32(hdr[4:], uint32(payload.Len()))
	binary.BigEndian.PutUint32(hdr[8:], ident)
	binary.BigEndian.PutUint32(hdr[12:], off)
	if mf {
		hdr[16] = 1
	}
	hdr[17] = 64 // ttl
	binary.BigEndian.PutUint16(hdr[18:], hostsim.InternetChecksum(hdr[:18]))
	if err := writeThroughCache(s.ip.host, s.ip.host.Kernel, hdrVA, hdr[:]); err != nil {
		return err
	}
	packet := payload.Prepend(msg.Fragment{Space: s.ip.host.Kernel, VA: hdrVA, Len: IPHeaderSize})
	s.ip.stats.FragsSent++
	kernel := s.ip.host.Kernel
	return s.ip.drv.Send(p, s.path, packet, func(p *sim.Proc) {
		// Header buffer freed once the DMA has read it.
		if err := kernel.Free(hdrVA, IPHeaderSize); err != nil {
			panic(err)
		}
		fragDone(p)
	})
}

// demux is the driver's upcall: parse and verify the header (through
// the cache — a stale header is detected here and recovered via lazy
// invalidation, §2.3), then deliver or reassemble.
func (s *ipSession) demux(p *sim.Proc, m *msg.Message) {
	s.ip.host.Compute(p, ipCost(s.ip.host.Prof.ProtoRecvPerPDU))
	s.ip.stats.FragsRecv++
	if m.Len() < IPHeaderSize {
		s.ip.stats.Dropped++
		return
	}
	hdr, err := readThroughCache(p, s.ip.host, m, IPHeaderSize)
	if err != nil {
		s.ip.stats.Dropped++
		return
	}
	if binary.BigEndian.Uint16(hdr[18:]) != hostsim.InternetChecksum(hdr[:18]) {
		// Possibly stale cache lines (§2.3): invalidate and re-evaluate
		// before declaring the packet in error.
		if s.ip.drv.RecoverData(p, m) {
			hdr, err = readThroughCache(p, s.ip.host, m, IPHeaderSize)
			if err == nil && binary.BigEndian.Uint16(hdr[18:]) == hostsim.InternetChecksum(hdr[:18]) {
				s.ip.stats.HdrRecovered++
				goto ok
			}
		}
		s.ip.stats.HdrErrors++
		s.ip.stats.Dropped++
		return
	}
ok:
	payloadLen := binary.BigEndian.Uint32(hdr[4:])
	ident := binary.BigEndian.Uint32(hdr[8:])
	off := binary.BigEndian.Uint32(hdr[12:])
	mf := hdr[16]&1 != 0
	if int(payloadLen) != m.Len()-IPHeaderSize {
		s.ip.stats.Dropped++
		return
	}
	payload, err := m.TrimPrefix(IPHeaderSize)
	if err != nil {
		s.ip.stats.Dropped++
		return
	}

	if off == 0 && !mf {
		// Unfragmented fast path.
		s.ip.stats.PDUsRecv++
		if s.upper != nil {
			s.lastCE = s.ip.drv.CEMarked()
			s.upper(p, payload)
		}
		return
	}

	part := s.reasm[ident]
	if part == nil {
		if len(s.reasm) >= maxPartials {
			oldest := s.reasmOrder[0]
			s.reasmOrder = s.reasmOrder[1:]
			if op := s.reasm[oldest]; op != nil {
				s.dropPartial(p, oldest, op)
			}
		}
		part = &ipPartial{frags: make(map[uint32]*msg.Message), total: -1}
		s.reasm[ident] = part
		s.reasmOrder = append(s.reasmOrder, ident)
	}
	s.ip.drv.Retain(m)
	part.retained = append(part.retained, m)
	if s.ip.drv.CEMarked() {
		part.ce = true
	}
	part.frags[off] = payload
	part.got += payload.Len()
	if !mf {
		part.total = int(off) + payload.Len()
	}
	if part.total < 0 || part.got < part.total {
		return
	}
	// Complete: stitch the fragment views together in offset order.
	assembled := msg.New()
	for pos := 0; pos < part.total; {
		f := part.frags[uint32(pos)]
		if f == nil {
			// Overlap/hole pathology; drop the whole PDU.
			s.dropPartial(p, ident, part)
			return
		}
		assembled = assembled.Append(f)
		pos += f.Len()
	}
	s.forget(ident)
	s.ip.stats.PDUsRecv++
	if s.upper != nil {
		s.lastCE = part.ce
		s.upper(p, assembled)
	}
	for _, rm := range part.retained {
		s.ip.drv.Release(p, rm)
	}
}

func (s *ipSession) forget(ident uint32) {
	delete(s.reasm, ident)
	for i, id := range s.reasmOrder {
		if id == ident {
			s.reasmOrder = append(s.reasmOrder[:i], s.reasmOrder[i+1:]...)
			break
		}
	}
}

func (s *ipSession) dropPartial(p *sim.Proc, ident uint32, part *ipPartial) {
	s.forget(ident)
	s.ip.stats.Dropped++
	for _, rm := range part.retained {
		s.ip.drv.Release(p, rm)
	}
}

// readThroughCache reads the first n bytes of m through the host's data
// cache, paying touch and miss costs — and observing stale lines, if
// any, exactly as the CPU would.
func readThroughCache(p *sim.Proc, h *hostsim.Host, m *msg.Message, n int) ([]byte, error) {
	if n < 0 || n > m.Len() {
		return nil, fmt.Errorf("proto: read %d of %d-byte message", n, m.Len())
	}
	// Walk the first n bytes fragment by fragment instead of materializing
	// a head message; the shared append slice merges abutting physical
	// runs exactly as Split-then-PhysSegments did.
	segs := h.GetSegs()
	var err error
	remaining := n
	for _, f := range m.Fragments() {
		if remaining == 0 {
			break
		}
		l := f.Len
		if l > remaining {
			l = remaining
		}
		segs, err = f.Space.AppendPhysSegments(segs, f.VA, l)
		if err != nil {
			h.PutSegs(segs)
			return nil, err
		}
		remaining -= l
	}
	out := h.CPUReadData(p, segs)
	h.PutSegs(segs)
	return out, nil
}

// writeThroughCache writes data at va via the (write-through) cache so
// CPU-visible copies stay coherent with memory.
func writeThroughCache(h *hostsim.Host, space *mem.AddressSpace, va mem.VirtAddr, data []byte) error {
	for len(data) > 0 {
		pa, err := space.Translate(va)
		if err != nil {
			return err
		}
		chunk := space.Memory().PageSize() - int(space.PageOffset(va))
		if chunk > len(data) {
			chunk = len(data)
		}
		h.Cache.Write(pa, data[:chunk])
		va += mem.VirtAddr(chunk)
		data = data[chunk:]
	}
	return nil
}
