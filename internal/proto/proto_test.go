package proto

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/xkernel"
)

// stackPair wires two hosts' full stacks together over striped links.
type stackPair struct {
	eng        *sim.Engine
	hA, hB     *hostsim.Host
	bA, bB     *board.Board
	dA, dB     *driver.Driver
	ipA, ipB   *IP
	udpA, udpB *UDP
}

func newStackPair(t *testing.T, prof func() hostsim.Profile, mtu int, dcfg driver.Config) *stackPair {
	t.Helper()
	e := sim.NewEngine(5)
	hA := hostsim.New(e, prof(), 4096)
	hB := hostsim.New(e, prof(), 4096)
	bA := board.New(e, hA, board.Config{Name: "A"})
	bB := board.New(e, hB, board.Config{Name: "B"})
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	ba := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	linksOf := func(g *atm.StripeGroup) []*atm.Link {
		ls := make([]*atm.Link, g.Width())
		for i := range ls {
			ls[i] = g.Link(i)
		}
		return ls
	}
	bA.AttachTxLinks(linksOf(ab))
	bB.AttachRxLinks(ab)
	bB.AttachTxLinks(linksOf(ba))
	bA.AttachRxLinks(ba)
	dA := driver.New(e, hA, bA, dcfg)
	dB := driver.New(e, hB, bB, dcfg)
	sp := &stackPair{eng: e, hA: hA, hB: hB, bA: bA, bB: bB, dA: dA, dB: dB}
	sp.ipA = NewIP(hA, dA, 1, mtu)
	sp.ipB = NewIP(hB, dB, 2, mtu)
	sp.udpA = NewUDP(hA, sp.ipA)
	sp.udpB = NewUDP(hB, sp.ipB)
	return sp
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*7 + seed
	}
	return out
}

// openPair opens matching UDP sessions on both ends and returns them.
func (sp *stackPair) openUDP(t *testing.T, vci atm.VCI, checksum bool) (tx, rx xkernel.Session) {
	t.Helper()
	a, err := sp.udpA.Open(UDPOpen{Remote: 2, VCI: vci, SrcPort: 1000, DstPort: 2000, Checksum: checksum})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.udpB.Open(UDPOpen{Remote: 1, VCI: vci, SrcPort: 2000, DstPort: 1000, Checksum: checksum})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestUDPSmallMessageRoundTrip(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	tx, rx := sp.openUDP(t, 10, false)
	data := pattern(100, 1)
	var got []byte
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) { got, _ = m.Bytes() })
	sp.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(sp.hA.Kernel, data)
		if err := tx.Push(p, m); err != nil {
			t.Error(err)
		}
		sp.dA.Flush(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatalf("got %d bytes, want %d", len(got), len(data))
	}
	if sp.udpA.Stats().Sent != 1 || sp.udpB.Stats().Received != 1 {
		t.Error("UDP stats wrong")
	}
}

func TestUDPLargeMessageFragmentsAndReassembles(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	tx, rx := sp.openUDP(t, 10, false)
	data := pattern(100_000, 2) // 100 KB > 64 KB: the paper's modified-UDP case
	var got []byte
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) { got, _ = m.Bytes() })
	sp.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(sp.hA.Kernel, data)
		if err := tx.Push(p, m); err != nil {
			t.Error(err)
		}
		sp.dA.Flush(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatalf("large message corrupted (got %d bytes)", len(got))
	}
	// 100012 bytes of UDP datagram over 16 KB MTU → 7 fragments.
	if frags := sp.ipA.Stats().FragsSent; frags != 7 {
		t.Errorf("FragsSent = %d, want 7", frags)
	}
	if sp.ipB.Stats().PDUsRecv != 1 {
		t.Errorf("PDUsRecv = %d", sp.ipB.Stats().PDUsRecv)
	}
}

func TestUDPChecksumVerifiesIntactData(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	tx, rx := sp.openUDP(t, 10, true)
	data := pattern(8000, 3)
	delivered := false
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		delivered = bytes.Equal(b, data)
	})
	sp.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(sp.hA.Kernel, data)
		tx.Push(p, m)
		sp.dA.Flush(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if !delivered {
		t.Fatal("checksummed datagram not delivered intact")
	}
	if sp.udpB.Stats().ChecksumErr != 0 {
		t.Error("spurious checksum errors")
	}
}

func TestChecksumCostsShowUpInLatency(t *testing.T) {
	// The UDP-CS runs of §4: checksumming must add measurable time on
	// both ends.
	run := func(checksum bool) sim.Time {
		sp := newStackPair(t, hostsim.DEC5000_200, 16*1024, driver.Config{Cache: driver.CacheLazy})
		tx, rx := sp.openUDP(t, 10, checksum)
		var doneAt sim.Time
		rx.SetHandler(func(p *sim.Proc, m *msg.Message) { doneAt = p.Now() })
		sp.eng.Go("sender", func(p *sim.Proc) {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(16000, 4))
			tx.Push(p, m)
			sp.dA.Flush(p)
		})
		sp.eng.Run()
		sp.eng.Shutdown()
		if doneAt == 0 {
			t.Fatal("message lost")
		}
		return doneAt
	}
	plain := run(false)
	cs := run(true)
	if cs <= plain {
		t.Errorf("checksummed delivery (%v) not slower than plain (%v)", cs, plain)
	}
}

func TestPhysicalBufferProliferation(t *testing.T) {
	// §2.2's worked example: a 16 KB message over a 4 KB MTU. With the
	// naive MTU (4096) and a misaligned message the transmission costs
	// "up to 14" physical buffers; with the page-aligned MTU
	// (4096+20) and an aligned message it needs exactly 8 (4 × header +
	// page).
	countBuffers := func(mtu int, misalign int) int64 {
		sp := newStackPair(t, hostsim.DEC3000_600, mtu, driver.Config{Cache: driver.CacheNone})
		// Use IP directly: the §2.2 example is an application message
		// handed to IP (a UDP header would shift the alignment).
		tx, err := sp.ipA.Open(IPOpen{Remote: 2, VCI: 10, Proto: 99})
		if err != nil {
			t.Fatal(err)
		}
		rx, err := sp.ipB.Open(IPOpen{Remote: 1, VCI: 10, Proto: 99})
		if err != nil {
			t.Fatal(err)
		}
		got := false
		rx.SetHandler(func(p *sim.Proc, m *msg.Message) { got = true })
		sp.eng.Go("sender", func(p *sim.Proc) {
			data := pattern(16384, 5)
			var m *msg.Message
			var err error
			if misalign > 0 {
				m, err = msg.FromBytesOffset(sp.hA.Kernel, data, misalign)
			} else {
				m, err = msg.FromBytes(sp.hA.Kernel, data)
			}
			if err != nil {
				t.Fatal(err)
			}
			tx.Push(p, m)
			sp.dA.Flush(p)
		})
		sp.eng.Run()
		sp.eng.Shutdown()
		if !got {
			t.Fatal("message lost")
		}
		return sp.dA.Stats().TxBuffers
	}
	aligned := countBuffers(4096+IPHeaderSize, 0)
	naive := countBuffers(4096, 128)
	if naive <= aligned {
		t.Errorf("naive MTU used %d buffers, aligned MTU %d; want naive strictly worse", naive, aligned)
	}
	// Paper: "up to 14 physical buffers" for the naive case; exactly
	// 2 per fragment (header + page) for the aligned choice.
	if naive < 12 {
		t.Errorf("naive MTU used only %d buffers; expected the §2.2 proliferation (≥12)", naive)
	}
	if aligned != 8 {
		t.Errorf("aligned MTU used %d buffers; want exactly 8 (4 × header+page)", aligned)
	}
}

func TestLazyInvalidationRecoversStaleChecksum(t *testing.T) {
	// Force the §2.3 scenario: under the lazy policy, pre-warm the cache
	// with the receive buffers' old contents so arriving DMA data is
	// stale in the cache; the UDP checksum must detect it and the
	// recovery (invalidate + re-evaluate) must save the message.
	sp := newStackPair(t, hostsim.DEC5000_200, 16*1024, driver.Config{Cache: driver.CacheLazy, RxBufCount: 2, ReserveBufs: 1})
	tx, rx := sp.openUDP(t, 10, true)
	data := pattern(2000, 6)
	delivered := 0
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		b, _ := m.Bytes()
		if bytes.Equal(b, data) {
			delivered++
		}
	})
	// Pre-warm: read all physical memory the receive buffers occupy so
	// their lines are cached, then send. With only 2+1 buffers cycling
	// and a small cache the warm lines survive until the first PDUs.
	sp.eng.Go("warm-and-send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let driver init finish
		// Touch the first 64 KB of physical memory through B's cache.
		segs := []struct{ base, n int }{{0, 64 * 1024}}
		for _, s := range segs {
			buf := make([]byte, 256)
			for off := s.base; off < s.base+s.n; off += 256 {
				sp.hB.Cache.Read(memPhys(off), buf)
			}
		}
		for i := 0; i < 4; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, data)
			if err := tx.Push(p, m); err != nil {
				t.Error(err)
			}
			sp.dA.Flush(p)
			p.Sleep(500 * time.Microsecond)
		}
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if delivered != 4 {
		t.Errorf("delivered %d/4 messages", delivered)
	}
	if sp.udpB.Stats().ChecksumErr != 0 {
		t.Errorf("unrecovered checksum errors: %d", sp.udpB.Stats().ChecksumErr)
	}
	// At least one stale case should have been recovered (the pre-warm
	// guarantees stale lines for the first arrivals).
	if sp.udpB.Stats().Recovered+sp.ipB.Stats().HdrRecovered == 0 {
		t.Error("no lazy-invalidation recoveries despite forced staleness")
	}
}

func TestGraphRegistersStack(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	g := xkernel.NewGraph("kernel")
	g.Register(sp.ipA)
	g.Register(sp.udpA)
	g.Register(NewRaw(sp.hA, sp.dA))
	if len(g.Protocols()) != 3 {
		t.Errorf("protocols = %v", g.Protocols())
	}
	if _, err := g.Lookup("udp"); err != nil {
		t.Error(err)
	}
	if _, err := g.Lookup("tcp"); err == nil {
		t.Error("lookup of unregistered protocol succeeded")
	}
	if g.Domain() != "kernel" {
		t.Error("domain wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	g.Register(sp.udpA)
}

func TestRawSessionRoundTrip(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	rawA := NewRaw(sp.hA, sp.dA)
	rawB := NewRaw(sp.hB, sp.dB)
	sa, err := rawA.Open(RawOpen{VCI: 30})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rawB.Open(RawOpen{VCI: 30})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(5000, 7)
	var got []byte
	sb.SetHandler(func(p *sim.Proc, m *msg.Message) { got, _ = m.Bytes() })
	sp.eng.Go("sender", func(p *sim.Proc) {
		m, _ := msg.FromBytes(sp.hA.Kernel, data)
		sa.Push(p, m)
		sp.dA.Flush(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Error("raw round trip corrupted")
	}
	sa.Close()
	sb.Close()
}

func TestOpenRejectsWrongAddressType(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	if _, err := sp.udpA.Open("bogus"); err == nil {
		t.Error("udp.Open accepted a string")
	}
	if _, err := sp.ipA.Open(42); err == nil {
		t.Error("ip.Open accepted an int")
	}
	raw := NewRaw(sp.hA, sp.dA)
	if _, err := raw.Open(3.14); err == nil {
		t.Error("raw.Open accepted a float")
	}
}

func TestMTUValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny MTU accepted")
		}
	}()
	NewIP(nil, nil, 1, 10)
}

func TestZeroLengthDatagram(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16*1024, driver.Config{Cache: driver.CacheNone})
	tx, rx := sp.openUDP(t, 10, false)
	got := -1
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) { got = m.Len() })
	sp.eng.Go("sender", func(p *sim.Proc) {
		tx.Push(p, msg.New())
		sp.dA.Flush(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if got != 0 {
		t.Errorf("zero-length datagram delivered as %d bytes", got)
	}
}

// memPhys is a test convenience for constructing physical addresses.
func memPhys(v int) (a memPhysAddr) { return memPhysAddr(v) }

type memPhysAddr = mem.PhysAddr
