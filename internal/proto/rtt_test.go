package proto

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
)

func newTestEstimator() *rttEstimator {
	return newRTTEstimator(2*time.Millisecond, 200*time.Microsecond, 100*time.Millisecond)
}

func TestRTTFirstSampleSeedsRFC6298(t *testing.T) {
	e := newTestEstimator()
	if got := e.RTO(); got != 2*time.Millisecond {
		t.Fatalf("pre-sample RTO = %v, want the initial 2ms", got)
	}
	e.Observe(400 * time.Microsecond)
	if e.SRTT() != 400*time.Microsecond {
		t.Errorf("SRTT = %v, want R", e.SRTT())
	}
	if e.RTTVar() != 200*time.Microsecond {
		t.Errorf("RTTVAR = %v, want R/2", e.RTTVar())
	}
	// RTO = SRTT + 4·RTTVAR = 400µs + 800µs.
	if e.RTO() != 1200*time.Microsecond {
		t.Errorf("RTO = %v, want 1.2ms", e.RTO())
	}
}

func TestRTTSubsequentSamplesSmooth(t *testing.T) {
	e := newTestEstimator()
	e.Observe(400 * time.Microsecond)
	e.Observe(800 * time.Microsecond)
	// RTTVAR = 3/4·200µs + 1/4·|400−800|µs = 250µs
	// SRTT   = 7/8·400µs + 1/8·800µs = 450µs
	if e.RTTVar() != 250*time.Microsecond {
		t.Errorf("RTTVAR = %v, want 250µs", e.RTTVar())
	}
	if e.SRTT() != 450*time.Microsecond {
		t.Errorf("SRTT = %v, want 450µs", e.SRTT())
	}
	if e.RTO() != 450*time.Microsecond+4*250*time.Microsecond {
		t.Errorf("RTO = %v, want SRTT+4·RTTVAR", e.RTO())
	}
}

func TestRTTGranularityFloorsVarianceTerm(t *testing.T) {
	e := newTestEstimator()
	// A perfectly steady RTT decays RTTVAR toward zero; the variance
	// term must floor at the clock granularity, not collapse onto SRTT.
	for i := 0; i < 64; i++ {
		e.Observe(500 * time.Microsecond)
	}
	if e.RTTVar() >= rttGranularity/4 {
		t.Fatalf("RTTVAR = %v did not decay below G/4", e.RTTVar())
	}
	if got := e.RTO(); got != e.SRTT()+rttGranularity {
		t.Errorf("RTO = %v, want SRTT+G = %v", got, e.SRTT()+rttGranularity)
	}
}

func TestRTTClampsToMinAndMax(t *testing.T) {
	e := newTestEstimator()
	e.Observe(10 * time.Microsecond) // RTO would be 50µs, below the floor
	if e.RTO() != 200*time.Microsecond {
		t.Errorf("RTO = %v, want the 200µs floor", e.RTO())
	}
	e.Observe(time.Second) // RTO would explode past the ceiling
	if e.RTO() != 100*time.Millisecond {
		t.Errorf("RTO = %v, want the 100ms ceiling", e.RTO())
	}
}

func TestRTTBackoffDoublesAndCaps(t *testing.T) {
	e := newTestEstimator()
	e.Observe(400 * time.Microsecond) // RTO 1.2ms
	want := 1200 * time.Microsecond
	for i := 0; i < 10; i++ {
		e.Backoff()
		want *= 2
		if want > 100*time.Millisecond {
			want = 100 * time.Millisecond
		}
		if e.RTO() != want {
			t.Fatalf("backoff %d: RTO = %v, want %v", i+1, e.RTO(), want)
		}
	}
	// The next accepted sample recomputes from SRTT/RTTVAR, leaving the
	// backed-off value behind.
	e.Observe(400 * time.Microsecond)
	if e.RTO() >= 100*time.Millisecond {
		t.Errorf("RTO = %v still at the ceiling after a fresh sample", e.RTO())
	}
}

func TestRTTKarnRuleRevokesRetransmittedStamps(t *testing.T) {
	e := newTestEstimator()
	e.Sent(1, sim.Time(1000))
	e.Retransmitted(1)
	if _, ok := e.Acked(1, sim.Time(500_000)); ok {
		t.Fatal("ack of a retransmitted segment produced a sample (Karn violation)")
	}
	if e.Samples() != 0 {
		t.Fatalf("samples = %d after a Karn-ambiguous ack", e.Samples())
	}

	// A never-retransmitted segment samples normally.
	e.Sent(2, sim.Time(2000))
	sample, ok := e.Acked(2, sim.Time(2000+int64(300*time.Microsecond)))
	if !ok || sample != 300*time.Microsecond {
		t.Fatalf("Acked = (%v, %v), want a 300µs sample", sample, ok)
	}
	// The stamp is consumed: a duplicate ack cannot double-sample.
	if _, ok := e.Acked(2, sim.Time(9_999_999)); ok {
		t.Fatal("duplicate ack produced a second sample")
	}
}

func TestRTTNegativeSampleRejected(t *testing.T) {
	e := newTestEstimator()
	e.Sent(3, sim.Time(5000))
	if _, ok := e.Acked(3, sim.Time(4000)); ok {
		t.Fatal("negative round-trip accepted as a sample")
	}
	if e.Samples() != 0 {
		t.Fatalf("samples = %d", e.Samples())
	}
}

// TestAdaptiveRDPMaxRetriesStillFails pins the interaction between the
// RTT-estimated timer and the retry cap: a dead peer must still
// terminate the session with ErrMaxRetries — the adaptive timer changes
// the pacing of the barren rounds, not the cap's semantics.
func TestAdaptiveRDPMaxRetriesStillFails(t *testing.T) {
	sp := newLossyStackPair(t, 1.0, 11) // every A→B cell lost
	rA := NewRDP(sp.hA, sp.ipA)
	sess, err := rA.Open(RDPOpen{
		Remote: 2, VCI: 10, Window: 2, MaxRetries: 6,
		RetransmitTimeout: time.Millisecond, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := sess.(*rdpSession)
	var pushErr error
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(500, byte(i)))
			if pushErr = tx.Push(p, m); pushErr != nil {
				break
			}
		}
		tx.WaitAcked(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if !errors.Is(pushErr, ErrMaxRetries) {
		t.Fatalf("blocked Push returned %v, want ErrMaxRetries", pushErr)
	}
	if !errors.Is(tx.Err(), ErrMaxRetries) {
		t.Fatalf("Err() = %v, want ErrMaxRetries", tx.Err())
	}
	st := rA.Stats()
	if st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
	// No ack ever arrived, so Karn's rule must have kept the estimator
	// sample-free: every in-flight segment was retransmitted.
	if st.RTTSamples != 0 {
		t.Errorf("RTTSamples = %d from a dead peer", st.RTTSamples)
	}
}

// TestAdaptiveRDPRecoversFromLossWithSamples checks the live half: under
// moderate loss the adaptive session delivers everything in order while
// the estimator accumulates samples from the clean exchanges.
func TestAdaptiveRDPRecoversFromLossWithSamples(t *testing.T) {
	sp := newLossyStackPair(t, 0.01, 7)
	rA := NewRDP(sp.hA, sp.ipA)
	rB := NewRDP(sp.hB, sp.ipB)
	a, err := rA.Open(RDPOpen{Remote: 2, VCI: 10, Window: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rB.Open(RDPOpen{Remote: 1, VCI: 10, Window: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, rx := a.(*rdpSession), b.(*rdpSession)
	const n = 16
	var got [][]byte
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) {
		data, _ := m.Bytes()
		got = append(got, data)
	})
	sp.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m, _ := msg.FromBytes(sp.hA.Kernel, pattern(3000, byte(i)))
			if err := tx.Push(p, m); err != nil {
				t.Error(err)
				return
			}
		}
		tx.WaitAcked(p)
	})
	sp.eng.Run()
	sp.eng.Shutdown()
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, data := range got {
		if !bytes.Equal(data, pattern(3000, byte(i))) {
			t.Fatalf("message %d corrupted or reordered", i)
		}
	}
	st := rA.Stats()
	if st.Retransmits == 0 {
		t.Error("no retransmits under 1% cell loss — the loss injector is off")
	}
	if st.RTTSamples == 0 {
		t.Error("no RTT samples accumulated by a live adaptive session")
	}
}
