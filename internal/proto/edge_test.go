package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/sim"
)

// injectFragment delivers a raw wire-format fragment to host B through
// its board, exactly as the network would: segmented into cells, fed
// through reassembly and the driver, and demuxed to the bound session.
func injectFragment(t *testing.T, sp *stackPair, sess *ipSession, frag []byte) {
	t.Helper()
	vci := sess.path.VCI
	sp.eng.Go("inject", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let the driver finish stocking its free ring
		cells := atm.Segment(vci, frag, 4, false)
		for i := range cells {
			for !sp.bB.InjectCell(cells[i], i%4) {
				p.Sleep(2 * time.Microsecond)
			}
			p.Sleep(700 * time.Nanosecond)
		}
		p.Sleep(300 * time.Microsecond) // let delivery finish
	})
	sp.eng.Run()
}

func openRawIP(t *testing.T, sp *stackPair) (*ipSession, *[]int) {
	t.Helper()
	s, err := sp.ipB.Open(IPOpen{Remote: 1, VCI: 70, Proto: 99})
	if err != nil {
		t.Fatal(err)
	}
	sess := s.(*ipSession)
	var lens []int
	sess.SetHandler(func(p *sim.Proc, m *msg.Message) { lens = append(lens, m.Len()) })
	return sess, &lens
}

func TestIPOutOfOrderFragmentsReassemble(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	sess, lens := openRawIP(t, sp)
	payload := pattern(10_000, 9)
	frags := BuildUDPFragments(payload, 1, 2, 1, 2, 4096, false, 55)
	// Deliver in a scrambled (but valid) order.
	order := []int{2, 0, 1}
	if len(frags) != 3 {
		t.Fatalf("fragments = %d, want 3", len(frags))
	}
	for _, i := range order {
		injectFragment(t, sp, sess, frags[i])
	}
	if len(*lens) != 1 {
		t.Fatalf("delivered %d PDUs, want 1", len(*lens))
	}
	if (*lens)[0] != len(payload)+UDPHeaderSize {
		t.Errorf("reassembled %d bytes", (*lens)[0])
	}
	sp.eng.Shutdown()
}

func TestIPDuplicateFragmentTolerated(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	sess, lens := openRawIP(t, sp)
	frags := BuildUDPFragments(pattern(6000, 3), 1, 2, 1, 2, 4096, false, 56)
	injectFragment(t, sp, sess, frags[0])
	injectFragment(t, sp, sess, frags[0]) // duplicate
	injectFragment(t, sp, sess, frags[1])
	// Either delivered once (duplicate replaced in place) or dropped as
	// a hole pathology — never delivered twice, never delivered corrupt.
	if len(*lens) > 1 {
		t.Errorf("delivered %d PDUs from a duplicated fragment", len(*lens))
	}
	sp.eng.Shutdown()
}

func TestIPPartialStateEviction(t *testing.T) {
	// More concurrent half-finished reassemblies than maxPartials: the
	// oldest is abandoned and its buffers released; a subsequent complete
	// PDU still flows.
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	sess, lens := openRawIP(t, sp)
	for ident := uint32(100); ident < uint32(100+maxPartials+2); ident++ {
		frags := BuildUDPFragments(pattern(6000, byte(ident)), 1, 2, 1, 2, 4096, false, ident)
		injectFragment(t, sp, sess, frags[0]) // first fragment only: a hole
	}
	if got := len(sess.reasm); got > maxPartials {
		t.Errorf("reasm table holds %d partials, cap %d", got, maxPartials)
	}
	full := BuildUDPFragments(pattern(6000, 77), 1, 2, 1, 2, 4096, false, 999)
	for _, f := range full {
		injectFragment(t, sp, sess, f)
	}
	if len(*lens) != 1 {
		t.Errorf("complete PDU after eviction pressure: delivered %d", len(*lens))
	}
	if sp.ipB.Stats().Dropped == 0 {
		t.Error("no partials were dropped")
	}
	sp.eng.Shutdown()
}

func TestIPHeaderChecksumRejectsGarbage(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	sess, lens := openRawIP(t, sp)
	frags := BuildUDPFragments(pattern(100, 1), 1, 2, 1, 2, 4096, false, 1)
	frag := append([]byte(nil), frags[0]...)
	frag[9] ^= 0xFF // corrupt the ident field; header checksum must catch it
	injectFragment(t, sp, sess, frag)
	if len(*lens) != 0 {
		t.Error("corrupted header accepted")
	}
	if sp.ipB.Stats().HdrErrors != 1 {
		t.Errorf("HdrErrors = %d, want 1", sp.ipB.Stats().HdrErrors)
	}
	sp.eng.Shutdown()
}

func TestIPLengthMismatchDropped(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	sess, lens := openRawIP(t, sp)
	frags := BuildUDPFragments(pattern(100, 1), 1, 2, 1, 2, 4096, false, 1)
	frag := append([]byte(nil), frags[0]...)
	// Claim a larger payload than present, fixing up the checksum so only
	// the length check can object.
	binary.BigEndian.PutUint32(frag[4:], uint32(len(frag))) // wrong: includes header
	binary.BigEndian.PutUint16(frag[18:], hostsim.InternetChecksum(frag[:18]))
	injectFragment(t, sp, sess, frag)
	if len(*lens) != 0 {
		t.Error("length-mismatched fragment accepted")
	}
	sp.eng.Shutdown()
}

func TestRuntMessageDropped(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	sess, lens := openRawIP(t, sp)
	injectFragment(t, sp, sess, []byte{1, 2, 3}) // shorter than any header
	if len(*lens) != 0 {
		t.Error("runt accepted")
	}
	if sp.ipB.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", sp.ipB.Stats().Dropped)
	}
	sp.eng.Shutdown()
}

func TestUDPTruncatedDatagramDropped(t *testing.T) {
	sp := newStackPair(t, hostsim.DEC3000_600, 16384, driver.Config{Cache: driver.CacheNone})
	tx, rx := sp.openUDP(t, 10, false)
	delivered := 0
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) { delivered++ })
	_ = tx
	// Hand the UDP session a datagram whose header claims more payload
	// than the message carries.
	udpB := rx.(*udpSession)
	ipB := udpB.lower.(*ipSession)
	var hdr [UDPHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[4:], 500) // claims 500 bytes
	dgram := append(hdr[:], make([]byte, 100)...)
	// Wrap in a valid single IP fragment so only the UDP check trips.
	frag := make([]byte, IPHeaderSize+len(dgram))
	frag[0] = 0x45
	frag[1] = ProtoUDP
	frag[2], frag[3] = 1, 2
	binary.BigEndian.PutUint32(frag[4:], uint32(len(dgram)))
	binary.BigEndian.PutUint32(frag[8:], 31)
	frag[17] = 64
	binary.BigEndian.PutUint16(frag[18:], hostsim.InternetChecksum(frag[:18]))
	copy(frag[IPHeaderSize:], dgram)
	injectFragment(t, sp, ipB, frag)
	sp.eng.Shutdown()
	if delivered != 0 {
		t.Error("truncated datagram delivered")
	}
	if sp.udpB.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", sp.udpB.Stats().Dropped)
	}
}

func TestBuildUDPFragmentsMatchesLiveStack(t *testing.T) {
	// Cross-validation: the offline wire builder and the live stack must
	// produce byte-identical fragments for the same inputs.
	sp := newStackPair(t, hostsim.DEC3000_600, 4096, driver.Config{Cache: driver.CacheNone})
	payload := pattern(9000, 21)
	built := BuildUDPFragments(payload, 1, 2, 1, 2, 4096, true, 1)

	// Capture what the live stack emits by re-parsing B's deliveries at
	// the IP layer... simplest: drive the live sender and reassemble the
	// built fragments through a second session; both must deliver the
	// same UDP payload.
	tx, rx := sp.openUDP(t, 10, true)
	var live []byte
	rx.SetHandler(func(p *sim.Proc, m *msg.Message) { live, _ = m.Bytes() })
	sp.eng.Go("send", func(p *sim.Proc) {
		m, _ := msg.FromBytes(sp.hA.Kernel, payload)
		tx.Push(p, m)
		sp.dA.Flush(p)
	})
	sp.eng.Run()
	if !bytes.Equal(live, payload) {
		t.Fatal("live stack corrupted payload")
	}

	// Feed the built fragments through a fresh UDP session (via its IP
	// demux) and compare.
	udp2, err := sp.udpB.Open(UDPOpen{Remote: 1, VCI: 71, SrcPort: 2, DstPort: 1, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt []byte
	udp2.SetHandler(func(p *sim.Proc, m *msg.Message) { rebuilt, _ = m.Bytes() })
	ipSess := udp2.(*udpSession).lower.(*ipSession)
	for _, f := range built {
		injectFragment(t, sp, ipSess, f)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Error("offline-built fragments did not reassemble to the payload")
	}
	sp.eng.Shutdown()
}
