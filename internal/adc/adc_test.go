package adc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/dpm"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/queue"
	"repro/internal/sim"
)

// adcRig is two hosts with ADC managers, linked both ways.
type adcRig struct {
	eng      *sim.Engine
	hA, hB   *hostsim.Host
	bA, bB   *board.Board
	mgA, mgB *Manager
}

func newADCRig(t *testing.T) *adcRig {
	t.Helper()
	e := sim.NewEngine(11)
	hA := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	hB := hostsim.New(e, hostsim.DEC3000_600(), 4096)
	bA := board.New(e, hA, board.Config{Name: "A"})
	bB := board.New(e, hB, board.Config{Name: "B"})
	ab := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	ba := atm.NewStripeGroup(e, 4, atm.LinkConfig{})
	linksOf := func(g *atm.StripeGroup) []*atm.Link {
		ls := make([]*atm.Link, g.Width())
		for i := range ls {
			ls[i] = g.Link(i)
		}
		return ls
	}
	bA.AttachTxLinks(linksOf(ab))
	bB.AttachRxLinks(ab)
	bB.AttachTxLinks(linksOf(ba))
	bA.AttachRxLinks(ba)
	return &adcRig{eng: e, hA: hA, hB: hB, bA: bA, bB: bB,
		mgA: NewManager(hA, bA), mgB: NewManager(hB, bB)}
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*3 + seed
	}
	return out
}

func TestADCUserToUserRoundTrip(t *testing.T) {
	r := newADCRig(t)
	appA := NewAppDomain(r.hA, "appA")
	appB := NewAppDomain(r.hB, "appB")
	data := pattern(6000, 1)
	var got []byte
	r.eng.Go("main", func(p *sim.Proc) {
		adcA, err := r.mgA.Open(p, appA, []atm.VCI{40}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		adcB, err := r.mgB.Open(p, appB, []atm.VCI{40}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		done := sim.NewCond(r.eng)
		adcB.Driver().OpenPath(40, func(hp *sim.Proc, m *msg.Message) {
			got, _ = m.Bytes()
			done.Broadcast()
		})
		pt := adcA.Driver().OpenPath(40, nil)

		// The application writes into one of its authorized buffers and
		// queues it — no kernel call anywhere on this path.
		va, size, err := adcA.TxBuffer(0)
		if err != nil {
			t.Fatal(err)
		}
		if size < len(data) {
			t.Fatalf("tx buffer too small: %d", size)
		}
		if err := appA.Space.WriteVirt(va, data); err != nil {
			t.Fatal(err)
		}
		m := msg.New(msg.Fragment{Space: appA.Space, VA: va, Len: len(data)})
		if err := adcA.Driver().Send(p, pt, m, nil); err != nil {
			t.Fatal(err)
		}
		for got == nil {
			done.Wait(p)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatal("ADC round trip corrupted")
	}
	if r.mgA.Violations(1)+r.mgB.Violations(1) != 0 {
		t.Error("spurious violations")
	}
}

func TestADCUnauthorizedBufferRaisesException(t *testing.T) {
	r := newADCRig(t)
	appA := NewAppDomain(r.hA, "appA")
	violated := make(chan int, 1)
	r.mgA.OnViolation = func(ch int) {
		select {
		case violated <- ch:
		default:
		}
	}
	r.eng.Go("main", func(p *sim.Proc) {
		adcA, err := r.mgA.Open(p, appA, []atm.VCI{41}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		pt := adcA.Driver().OpenPath(41, nil)
		_ = pt
		// Forge a descriptor naming a frame the OS never granted.
		evil, _ := r.hA.Mem.AllocFrame()
		ch := r.bA.Channel(adcA.Index)
		ch.TxRing.TryPush(p, dpm.Host, queue.Desc{
			Addr: r.hA.Mem.FrameAddr(evil), Len: 100, VCI: 41, Flags: queue.FlagEOP,
		})
		r.bA.KickTx()
		p.Sleep(500 * time.Microsecond)
	})
	r.eng.Run()
	r.eng.Shutdown()
	select {
	case ch := <-violated:
		if ch != 1 {
			t.Errorf("violation on channel %d, want 1", ch)
		}
	default:
		t.Error("no violation exception delivered")
	}
	if r.bA.Stats().PDUsTx != 0 {
		t.Error("forged PDU was transmitted")
	}
}

func TestADCLatencyMatchesKernelPath(t *testing.T) {
	// §4: "user-to-user performance using application device channels
	// ... within the error margins of those obtained in the
	// kernel-to-kernel case". Ping-pong both ways and compare RTTs.
	rtt := func(useADC bool) time.Duration {
		r := newADCRig(t)
		data := pattern(1024, 2)
		var drvA, drvB *driver.Driver
		var sendSpaceA *mem.AddressSpace
		var txVA, echoVA mem.VirtAddr
		done := sim.NewCond(r.eng)
		var rttOut time.Duration
		r.eng.Go("main", func(p *sim.Proc) {
			if useADC {
				appA := NewAppDomain(r.hA, "appA")
				appB := NewAppDomain(r.hB, "appB")
				adcA, err := r.mgA.Open(p, appA, []atm.VCI{50}, Config{})
				if err != nil {
					t.Fatal(err)
				}
				adcB, err := r.mgB.Open(p, appB, []atm.VCI{50}, Config{})
				if err != nil {
					t.Fatal(err)
				}
				drvA, drvB = adcA.Driver(), adcB.Driver()
				sendSpaceA = appA.Space
				va, _, err := adcA.TxBuffer(0)
				if err != nil {
					t.Fatal(err)
				}
				txVA = va
				// B's echo must come from a buffer the OS authorized for
				// B's channel — that is the ADC security model.
				eva, _, err := adcB.TxBuffer(0)
				if err != nil {
					t.Fatal(err)
				}
				echoVA = eva
			} else {
				drvA = driver.New(r.eng, r.hA, r.bA, driver.Config{Cache: driver.CacheNone})
				drvB = driver.New(r.eng, r.hB, r.bB, driver.Config{Cache: driver.CacheNone})
				sendSpaceA = r.hA.Kernel
				va, err := sendSpaceA.Alloc(len(data))
				if err != nil {
					t.Fatal(err)
				}
				txVA = va
				eva, err := r.hB.Kernel.Alloc(len(data))
				if err != nil {
					t.Fatal(err)
				}
				echoVA = eva
			}
			// B echoes.
			var ptB *driver.Path
			drvB.OpenPath(50, func(hp *sim.Proc, m *msg.Message) {
				b, _ := m.Bytes()
				if err := drvB.Space().WriteVirt(echoVA, b); err != nil {
					t.Error(err)
					return
				}
				reply := msg.New(msg.Fragment{Space: drvB.Space(), VA: echoVA, Len: len(b)})
				drvB.Send(hp, ptB, reply, nil)
			})
			ptB = drvB.OpenPath(51, nil)
			gotReply := false
			drvA.OpenPath(51, func(hp *sim.Proc, m *msg.Message) {
				gotReply = true
				done.Broadcast()
			})
			ptA := drvA.OpenPath(50, nil)

			sendSpaceA.WriteVirt(txVA, data)
			m := msg.New(msg.Fragment{Space: sendSpaceA, VA: txVA, Len: len(data)})
			start := p.Now()
			if err := drvA.Send(p, ptA, m, nil); err != nil {
				t.Fatal(err)
			}
			for !gotReply {
				done.Wait(p)
			}
			rttOut = time.Duration(p.Now() - start)
		})
		r.eng.Run()
		r.eng.Shutdown()
		return rttOut
	}
	kernel := rtt(false)
	user := rtt(true)
	if kernel == 0 || user == 0 {
		t.Fatal("ping-pong failed")
	}
	diff := user - kernel
	if diff < 0 {
		diff = -diff
	}
	// "Within the error margins": allow 10%.
	if float64(diff) > 0.10*float64(kernel) {
		t.Errorf("ADC RTT %v vs kernel RTT %v: difference exceeds 10%%", user, kernel)
	}
}

func TestADCChannelExhaustion(t *testing.T) {
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "app")
	r.eng.Go("main", func(p *sim.Proc) {
		opened := 0
		for i := 0; i < board.NumChannels; i++ {
			if _, err := r.mgA.Open(p, app, []atm.VCI{atm.VCI(60 + i)}, Config{BufCount: 1, ExtraPages: 4}); err != nil {
				break
			}
			opened++
		}
		if opened != board.NumChannels-1 {
			t.Errorf("opened %d ADCs, want %d (channel 0 is the kernel's)", opened, board.NumChannels-1)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

func TestADCCloseFreesChannel(t *testing.T) {
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "app")
	r.eng.Go("main", func(p *sim.Proc) {
		a, err := r.mgA.Open(p, app, []atm.VCI{70}, Config{BufCount: 1, ExtraPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		idx := a.Index
		r.mgA.Close(a)
		r.mgA.Close(a) // idempotent
		b, err := r.mgA.Open(p, NewAppDomain(r.hA, "app2"), []atm.VCI{71}, Config{BufCount: 1, ExtraPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		if b.Index != idx {
			t.Errorf("freed channel %d not reused (got %d)", idx, b.Index)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

func TestTxBufferRange(t *testing.T) {
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "app")
	r.eng.Go("main", func(p *sim.Proc) {
		a, err := r.mgA.Open(p, app, []atm.VCI{80}, Config{BufCount: 1, ExtraPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := a.TxBuffer(-1); err == nil {
			t.Error("negative index accepted")
		}
		if _, _, err := a.TxBuffer(99); err == nil {
			t.Error("out-of-range index accepted")
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

func TestADCUnauthorizedFreeBufferDiscarded(t *testing.T) {
	// The receive side of the §3.2 protection model: a free-ring buffer
	// naming unauthorized frames must be discarded by the board (with a
	// violation) and never used for reassembly.
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "app")
	r.eng.Go("main", func(p *sim.Proc) {
		a, err := r.mgA.Open(p, app, []atm.VCI{90}, Config{BufCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		ch := r.bA.Channel(a.Index)
		// Forge an unauthorized free buffer.
		evil, _ := r.hA.Mem.AllocContiguous(4)
		ch.FreeRing.TryPush(p, dpm.Host, queue.Desc{
			Addr: r.hA.Mem.FrameAddr(evil[0]), Len: 16384,
		})
		// Drain the channel's legitimate buffers by consuming PDUs until
		// the forged descriptor would be next; simply deliver PDUs and
		// verify none lands in the evil frames.
		data := pattern(2000, 9)
		for k := 0; k < 4; k++ {
			cells := atm.Segment(90, data, 4, false)
			for i := range cells {
				r.bA.InjectCell(cells[i], i%4)
				p.Sleep(700 * time.Nanosecond)
			}
			p.Sleep(500 * time.Microsecond)
		}
		evilBytes := r.hA.Mem.Read(r.hA.Mem.FrameAddr(evil[0]), 2000)
		for _, b := range evilBytes {
			if b != 0 {
				t.Error("data was DMA'd into an unauthorized frame")
				break
			}
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if r.mgA.Violations(1) == 0 {
		t.Error("no violation raised for the forged free buffer")
	}
}

func TestADCBulkTransferThroughput(t *testing.T) {
	// A sanity check that the ADC data path sustains bulk transfer: the
	// application pushes many messages through its channel driver with
	// zero kernel involvement after setup.
	r := newADCRig(t)
	appA := NewAppDomain(r.hA, "appA")
	appB := NewAppDomain(r.hB, "appB")
	const n = 10
	data := pattern(8000, 5)
	got := 0
	r.eng.Go("main", func(p *sim.Proc) {
		adcA, err := r.mgA.Open(p, appA, []atm.VCI{91}, Config{ExtraPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		adcB, err := r.mgB.Open(p, appB, []atm.VCI{91}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		done := sim.NewCond(r.eng)
		adcB.Driver().OpenPath(91, func(hp *sim.Proc, m *msg.Message) {
			b, _ := m.Bytes()
			if bytes.Equal(b, data) {
				got++
			}
			if got == n {
				done.Broadcast()
			}
		})
		pt := adcA.Driver().OpenPath(91, nil)
		va, size, err := adcA.TxBuffer(0)
		if err != nil || size < len(data) {
			t.Fatalf("tx buffer: %v size %d", err, size)
		}
		appA.Space.WriteVirt(va, data)
		m := msg.New(msg.Fragment{Space: appA.Space, VA: va, Len: len(data)})
		for i := 0; i < n; i++ {
			if err := adcA.Driver().Send(p, pt, m, nil); err != nil {
				t.Fatal(err)
			}
			adcA.Driver().Flush(p)
		}
		for got < n {
			done.Wait(p)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if got != n {
		t.Errorf("delivered %d/%d through the ADC path", got, n)
	}
}
