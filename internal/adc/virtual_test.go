package adc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/dpm"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/queue"
	"repro/internal/sim"
)

// TestADCOpenErrorPathNoLeak is the regression for the Open error
// paths: when a buffer allocation fails partway through, the claimed
// channel slot and every already-carved frame run must be released —
// the next, reasonable, Open has to succeed with all memory intact.
func TestADCOpenErrorPathNoLeak(t *testing.T) {
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "app")
	r.eng.Go("main", func(p *sim.Proc) {
		free0 := r.hA.Mem.FreePages()
		// 4096-page host: 1500 buffers × 4 pages cannot all be carved, so
		// the loop fails after allocating some runs.
		_, err := r.mgA.Open(p, app, []atm.VCI{50}, Config{BufBytes: 16 * 1024, BufCount: 1500})
		if err == nil {
			t.Fatal("oversized Open unexpectedly succeeded")
		}
		if got := r.hA.Mem.FreePages(); got != free0 {
			t.Fatalf("failed Open leaked %d pages", free0-got)
		}
		// The slot must be free again: 15 modest opens all fit.
		for i := 0; i < board.NumChannels-1; i++ {
			if _, err := r.mgA.Open(p, app, []atm.VCI{atm.VCI(60 + i)},
				Config{BufBytes: 4096, BufCount: 2, ExtraPages: 4}); err != nil {
				t.Fatalf("open %d after failed open: %v", i, err)
			}
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

// TestVirtualADCScaleOut opens far more ADCs than the adaptor has
// queue-page pairs: virtual tenants spread over mux channels, every
// VCI routes, and closing returns each tenant's transmit pages.
func TestVirtualADCScaleOut(t *testing.T) {
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "tenants")
	const n = 64
	cfg := Config{Virtual: true, BufBytes: 4096, BufCount: 2, ExtraPages: 4}
	r.eng.Go("main", func(p *sim.Proc) {
		adcs := make([]*ADC, n)
		for i := range adcs {
			a, err := r.mgA.Open(p, app, []atm.VCI{atm.VCI(100 + i)}, cfg)
			if err != nil {
				t.Fatalf("virtual open %d: %v", i, err)
			}
			if !a.Virtual() {
				t.Fatal("ADC not virtual")
			}
			adcs[i] = a
		}
		if got := r.mgA.VirtualOpen(); got != n {
			t.Fatalf("VirtualOpen = %d, want %d", got, n)
		}
		if mux := r.mgA.MuxChannels(); mux != board.NumChannels-1 {
			t.Fatalf("mux channels = %d, want %d", mux, board.NumChannels-1)
		}
		if got := r.bA.BoundVCIs(); got != n {
			t.Fatalf("bound VCIs = %d, want %d", got, n)
		}
		// Tenants pack the muxes evenly: 64 over 15 channels.
		for _, mx := range r.mgA.muxes {
			if mx.tenants < n/board.NumChannels || mx.tenants > n/(board.NumChannels-1)+1 {
				t.Fatalf("mux ch%d holds %d tenants; packing is unbalanced", mx.idx, mx.tenants)
			}
		}
		freeBefore := r.hA.Mem.FreePages()
		for _, a := range adcs {
			r.mgA.Close(a)
		}
		// Each tenant held one 4-page transmit run; close must return
		// them all (mux pools stay, they are channel — not tenant — state).
		if got := r.hA.Mem.FreePages(); got != freeBefore+4*n {
			t.Fatalf("close returned %d pages, want %d", got-freeBefore, 4*n)
		}
		if r.mgA.VirtualOpen() != 0 || r.bA.BoundVCIs() != 0 {
			t.Fatal("virtual close left bindings behind")
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

// TestVirtualADCRoundTrip moves data between two virtual ADCs end to
// end through their mux channels' shared drivers.
func TestVirtualADCRoundTrip(t *testing.T) {
	r := newADCRig(t)
	appA := NewAppDomain(r.hA, "appA")
	appB := NewAppDomain(r.hB, "appB")
	data := pattern(6000, 3)
	var got []byte
	r.eng.Go("main", func(p *sim.Proc) {
		adcA, err := r.mgA.Open(p, appA, []atm.VCI{70}, Config{Virtual: true})
		if err != nil {
			t.Fatal(err)
		}
		adcB, err := r.mgB.Open(p, appB, []atm.VCI{70}, Config{Virtual: true})
		if err != nil {
			t.Fatal(err)
		}
		done := sim.NewCond(r.eng)
		adcB.Driver().OpenPath(70, func(hp *sim.Proc, m *msg.Message) {
			got, _ = m.Bytes()
			done.Broadcast()
		})
		pt := adcA.Driver().OpenPath(70, nil)
		va, size, err := adcA.TxBuffer(0)
		if err != nil {
			t.Fatal(err)
		}
		if size < len(data) {
			t.Fatalf("tx buffer too small: %d", size)
		}
		if err := appA.Space.WriteVirt(va, data); err != nil {
			t.Fatal(err)
		}
		m := msg.New(msg.Fragment{Space: appA.Space, VA: va, Len: len(data)})
		if err := adcA.Driver().Send(p, pt, m, nil); err != nil {
			t.Fatal(err)
		}
		for got == nil {
			done.Wait(p)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if !bytes.Equal(got, data) {
		t.Fatal("virtual ADC round trip corrupted")
	}
}

// TestVirtualADCViolationAttribution shares one mux channel between
// two tenants and forges a descriptor on tenant B's VCI naming tenant
// A's transmit frame. The channel-level set contains that frame, so
// only the per-VCI grant can catch it — and the violation must be
// attributed to B, the tag on the offending descriptor.
func TestVirtualADCViolationAttribution(t *testing.T) {
	r := newADCRig(t)
	app := NewAppDomain(r.hA, "app")
	r.eng.Go("main", func(p *sim.Proc) {
		adcA, err := r.mgA.Open(p, app, []atm.VCI{80}, Config{Virtual: true, ExtraPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		adcB, err := r.mgA.Open(p, app, []atm.VCI{81}, Config{Virtual: true, ExtraPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		victim := adcA.txFrames[0][0]
		// Put A's frame in B's channel-level set, as if the tenants
		// shared one mux channel: only the per-VCI grant can now catch
		// the forgery below.
		ch := r.bA.Channel(adcB.Index)
		r.bA.AllowFrames(adcB.Index, []mem.Frame{victim})
		// B's VCI, A's frame: channel-level authorized, per-VCI not.
		ch.TxRing.TryPush(p, dpm.Host, queue.Desc{
			Addr: r.hA.Mem.FrameAddr(victim), Len: 64, VCI: 81, Flags: queue.FlagEOP,
		})
		r.bA.KickTx()
		p.Sleep(500 * time.Microsecond)
		if adcB.Violations() != 1 {
			t.Fatalf("tenant B violations = %d, want 1", adcB.Violations())
		}
		if adcA.Violations() != 0 {
			t.Fatalf("tenant A violations = %d, want 0", adcA.Violations())
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if r.bA.Stats().PDUsTx != 0 {
		t.Error("forged PDU was transmitted")
	}
}
