// Package adc implements application device channels (§3.2): restricted
// but direct application access to the OSIRIS adaptor, bypassing the
// operating system kernel on both the control and the data path.
//
// The OS's role is confined to connection establishment and
// termination: it picks a free transmit/receive queue-page pair, maps
// it into the application's address space, assigns the channel a VCI
// set, a priority, and a list of physical pages the application may
// legally use as buffers — enforced by the on-board processors, which
// raise an access-violation interrupt on any descriptor naming an
// unauthorized page. Host interrupts are still fielded by the kernel's
// handler, which directly signals a thread in the application's channel
// driver.
//
// The channel driver linked with the application is, as in the paper,
// "essentially the same" code as the in-kernel driver: another
// driver.Driver instance running over the ADC's channel with the
// application's address space and authorized frames. The replicated
// application-linked protocol stack is an ordinary proto.IP/UDP pair
// constructed over that driver.
package adc

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/sim"
)

// AppDomain is an application protection domain.
type AppDomain struct {
	Name  string
	Space *mem.AddressSpace
}

// NewAppDomain creates an application domain on h.
func NewAppDomain(h *hostsim.Host, name string) *AppDomain {
	return &AppDomain{Name: name, Space: h.Mem.NewSpace(name)}
}

// Config sizes an ADC at open time.
type Config struct {
	// BufBytes / BufCount size the channel's receive buffers (defaults
	// 16 KB × 16).
	BufBytes int
	BufCount int
	// ExtraPages grants additional authorized pages for the
	// application's transmit buffers (default 32).
	ExtraPages int
	// Priority orders this ADC's transmissions against others (§3.2).
	Priority int
	// SlowWiring passes through to the channel driver.
	SlowWiring bool
	// Cache passes through to the channel driver.
	Cache driver.CachePolicy
}

// ADC is one open application device channel.
type ADC struct {
	mgr      *Manager
	app      *AppDomain
	Index    int
	VCIs     []atm.VCI
	drv      *driver.Driver
	txFrames [][]mem.Frame // authorized transmit buffer runs handed to the app
	closed   bool
}

// Driver returns the application's channel driver. Everything it does —
// queueing descriptors, reaping completions, draining the receive ring —
// happens without kernel involvement.
func (a *ADC) Driver() *driver.Driver { return a.drv }

// App returns the owning application domain.
func (a *ADC) App() *AppDomain { return a.app }

// TxBuffer returns the i-th authorized transmit buffer as a virtual
// address in the application's space, mapping it on first use.
func (a *ADC) TxBuffer(i int) (mem.VirtAddr, int, error) {
	if i < 0 || i >= len(a.txFrames) {
		return 0, 0, fmt.Errorf("adc: tx buffer %d out of range", i)
	}
	run := a.txFrames[i]
	va, err := a.app.Space.MapFrames(run)
	if err != nil {
		return 0, 0, err
	}
	return va, len(run) * a.mgr.host.Mem.PageSize(), nil
}

// Manager is the kernel-side ADC service for one board.
type Manager struct {
	host  *hostsim.Host
	b     *board.Board
	inUse [board.NumChannels]bool

	// OnViolation is invoked (in interrupt context) when the board
	// reports an authorization violation on a channel — the kernel
	// raising "an access violation exception in the offending
	// application process".
	OnViolation func(channel int)

	violations map[int]int64
}

// NewManager returns the ADC service for board b. Channel 0 stays with
// the kernel.
func NewManager(h *hostsim.Host, b *board.Board) *Manager {
	m := &Manager{host: h, b: b, violations: make(map[int]int64)}
	m.inUse[0] = true
	for i := 1; i < board.NumChannels; i++ {
		idx := i
		h.Int.Handle(board.VioIRQBase+idx, func(p *sim.Proc) {
			m.violations[idx]++
			if m.OnViolation != nil {
				m.OnViolation(idx)
			}
		})
	}
	return m
}

// Violations reports how many authorization violations channel i has
// raised.
func (m *Manager) Violations(i int) int64 { return m.violations[i] }

// Open establishes an ADC for app: it claims a queue-page pair, carves
// and authorizes the channel's physical pages, binds the VCIs, and
// starts the application-linked channel driver. This is the only part
// of the ADC lifecycle in which the kernel participates (§3.2); the
// setup cost (page mappings, wiring) is charged to p.
func (m *Manager) Open(p *sim.Proc, app *AppDomain, vcis []atm.VCI, cfg Config) (*ADC, error) {
	if cfg.BufBytes == 0 {
		cfg.BufBytes = 16 * 1024
	}
	if cfg.BufCount == 0 {
		cfg.BufCount = 16
	}
	if cfg.ExtraPages == 0 {
		cfg.ExtraPages = 32
	}
	idx := -1
	for i := 1; i < board.NumChannels; i++ {
		if !m.inUse[i] {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("adc: no free channels")
	}
	m.inUse[idx] = true

	pagesPerBuf := (cfg.BufBytes + m.host.Mem.PageSize() - 1) / m.host.Mem.PageSize()
	var allowed []mem.Frame
	var bufRuns [][]mem.Frame
	for i := 0; i < cfg.BufCount; i++ {
		run, err := m.host.Mem.AllocContiguous(pagesPerBuf)
		if err != nil {
			return nil, err
		}
		bufRuns = append(bufRuns, run)
		allowed = append(allowed, run...)
	}
	var txRuns [][]mem.Frame
	for got := 0; got < cfg.ExtraPages; got += 4 {
		run, err := m.host.Mem.AllocContiguous(4)
		if err != nil {
			return nil, err
		}
		txRuns = append(txRuns, run)
		allowed = append(allowed, run...)
	}

	// Kernel work: open the channel on the board, authorize the pages,
	// map the two queue pages into the application (modelled as two page
	// mappings plus the board programming writes).
	m.b.OpenChannel(idx, cfg.Priority, allowed)
	for _, v := range vcis {
		m.b.BindVCI(v, idx)
	}
	m.host.Compute(p, 2*m.host.Prof.FbufMapPerPage) // queue-page mappings
	m.host.WirePages(p, len(allowed), cfg.SlowWiring)

	reserve := cfg.BufCount / 4
	if reserve == 0 {
		reserve = 1
	}
	drv := driver.New(p.Engine(), m.host, m.b, driver.Config{
		ChannelIndex: idx,
		Space:        app.Space,
		BufferFrames: bufRuns,
		ReserveBufs:  reserve,
		Cache:        cfg.Cache,
		SlowWiring:   cfg.SlowWiring,
	})
	return &ADC{
		mgr:      m,
		app:      app,
		Index:    idx,
		VCIs:     append([]atm.VCI(nil), vcis...),
		drv:      drv,
		txFrames: txRuns,
	}, nil
}

// Close tears the channel down: unbinds its VCIs and returns the queue
// pages to the pool. (Physical buffer pages stay with the application
// domain; a full VM reclaim is outside the ADC's scope.)
func (m *Manager) Close(a *ADC) {
	if a.closed {
		return
	}
	a.closed = true
	for _, v := range a.VCIs {
		m.b.UnbindVCI(v)
	}
	m.inUse[a.Index] = false
}
