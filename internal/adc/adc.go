// Package adc implements application device channels (§3.2): restricted
// but direct application access to the OSIRIS adaptor, bypassing the
// operating system kernel on both the control and the data path.
//
// The OS's role is confined to connection establishment and
// termination: it picks a free transmit/receive queue-page pair, maps
// it into the application's address space, assigns the channel a VCI
// set, a priority, and a list of physical pages the application may
// legally use as buffers — enforced by the on-board processors, which
// raise an access-violation interrupt on any descriptor naming an
// unauthorized page. Host interrupts are still fielded by the kernel's
// handler, which directly signals a thread in the application's channel
// driver.
//
// The channel driver linked with the application is, as in the paper,
// "essentially the same" code as the in-kernel driver: another
// driver.Driver instance running over the ADC's channel with the
// application's address space and authorized frames. The replicated
// application-linked protocol stack is an ordinary proto.IP/UDP pair
// constructed over that driver.
//
// The adaptor exposes only dpm.PagesPerHalf queue-page pairs, so the
// dedicated-channel model tops out at 15 ADCs per board. Virtual ADCs
// (Config.Virtual) lift that limit: many ADCs share one "mux" channel's
// queue pages and receive-buffer pool, with each tenant's transmit
// authorization scoped to its own VCIs (per-ADC descriptor tagging) so
// the board can still attribute every illegal descriptor to the virtual
// ADC that issued it.
package adc

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/hostsim"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// AppDomain is an application protection domain.
type AppDomain struct {
	Name  string
	Space *mem.AddressSpace
}

// NewAppDomain creates an application domain on h.
func NewAppDomain(h *hostsim.Host, name string) *AppDomain {
	return &AppDomain{Name: name, Space: h.Mem.NewSpace(name)}
}

// Config sizes an ADC at open time.
type Config struct {
	// BufBytes / BufCount size the channel's receive buffers (defaults
	// 16 KB × 16). For a virtual ADC they size the shared pool carved
	// when its mux channel first opens.
	BufBytes int
	BufCount int
	// ExtraPages grants additional authorized pages for the
	// application's transmit buffers (default 32).
	ExtraPages int
	// Priority orders this ADC's transmissions against others (§3.2).
	// A mux channel takes the priority of its first tenant.
	Priority int
	// SlowWiring passes through to the channel driver.
	SlowWiring bool
	// Cache passes through to the channel driver.
	Cache driver.CachePolicy
	// Virtual multiplexes this ADC onto a shared mux channel instead of
	// claiming a dedicated queue-page pair, scaling past the adaptor's
	// fixed channel count. The tenant keeps private transmit pages
	// (granted per VCI) but draws receive buffers from the mux
	// channel's shared kernel-owned pool and drives I/O through the
	// shared kernel-resident driver.
	Virtual bool
}

// ADC is one open application device channel.
type ADC struct {
	mgr      *Manager
	app      *AppDomain
	Index    int
	VCIs     []atm.VCI
	drv      *driver.Driver
	txFrames [][]mem.Frame // authorized transmit buffer runs handed to the app
	txVAs    []mem.VirtAddr
	txMapped []bool
	virtual  bool
	mux      *muxChannel
	vios     int64 // tx violations attributed to this ADC's VCIs
	closed   bool
}

// Driver returns the application's channel driver. For a dedicated ADC
// everything it does — queueing descriptors, reaping completions,
// draining the receive ring — happens without kernel involvement. For a
// virtual ADC it is the mux channel's shared driver.
func (a *ADC) Driver() *driver.Driver { return a.drv }

// App returns the owning application domain.
func (a *ADC) App() *AppDomain { return a.app }

// Virtual reports whether this ADC is multiplexed onto a shared
// channel.
func (a *ADC) Virtual() bool { return a.virtual }

// Violations reports how many authorization violations the board has
// attributed to this ADC's VCIs (per-descriptor tagging on a mux
// channel).
func (a *ADC) Violations() int64 { return a.vios }

// TxBuffer returns the i-th authorized transmit buffer as a virtual
// address in the application's space, mapping it on first use (the
// mapping is cached, so repeated calls return the same address).
func (a *ADC) TxBuffer(i int) (mem.VirtAddr, int, error) {
	if i < 0 || i >= len(a.txFrames) {
		return 0, 0, fmt.Errorf("adc: tx buffer %d out of range", i)
	}
	run := a.txFrames[i]
	if !a.txMapped[i] {
		va, err := a.app.Space.MapFrames(run)
		if err != nil {
			return 0, 0, err
		}
		a.txVAs[i] = va
		a.txMapped[i] = true
	}
	return a.txVAs[i], len(run) * a.mgr.host.Mem.PageSize(), nil
}

// muxChannel is one shared board channel carrying many virtual ADCs:
// one queue-page pair, one kernel-owned receive pool, one shared
// driver, per-tenant VCI bindings and transmit grants on top.
type muxChannel struct {
	idx     int
	drv     *driver.Driver
	tenants int
}

// Manager is the kernel-side ADC service for one board.
type Manager struct {
	host  *hostsim.Host
	b     *board.Board
	inUse [board.NumChannels]bool

	// OnViolation is invoked (in interrupt context) when the board
	// reports an authorization violation on a channel — the kernel
	// raising "an access violation exception in the offending
	// application process".
	OnViolation func(channel int)

	violations map[int]int64

	// Virtual multiplexing state.
	muxes    []*muxChannel
	byVCI    map[atm.VCI]*ADC // tx-violation attribution for virtual ADCs
	vciVios  int64            // violations attributed to a virtual ADC
	virtOpen int64            // currently open virtual ADCs
}

// NewManager returns the ADC service for board b. Channel 0 stays with
// the kernel.
func NewManager(h *hostsim.Host, b *board.Board) *Manager {
	m := &Manager{host: h, b: b, violations: make(map[int]int64), byVCI: make(map[atm.VCI]*ADC)}
	m.inUse[0] = true
	for i := 1; i < board.NumChannels; i++ {
		idx := i
		h.Int.Handle(board.VioIRQBase+idx, func(p *sim.Proc) {
			m.violations[idx]++
			if m.OnViolation != nil {
				m.OnViolation(idx)
			}
		})
	}
	// Per-descriptor attribution: on a mux channel the offending
	// descriptor's VCI tag names the virtual ADC, which the per-channel
	// interrupt alone cannot.
	b.SetViolationHook(func(ch int, vci atm.VCI) {
		if a := m.byVCI[vci]; a != nil {
			a.vios++
			m.vciVios++
		}
	})
	return m
}

// Violations reports how many authorization violations channel i has
// raised.
func (m *Manager) Violations(i int) int64 { return m.violations[i] }

// Reserve marks channel i as in use so the manager will never hand it
// to a future Open or mux channel. The caller owns the channel — e.g. a
// raw board-level consumer sharing the adaptor with the ADC service.
func (m *Manager) Reserve(i int) error {
	if i <= 0 || i >= board.NumChannels {
		return fmt.Errorf("adc: cannot reserve channel %d", i)
	}
	if m.inUse[i] {
		return fmt.Errorf("adc: channel %d already in use", i)
	}
	m.inUse[i] = true
	return nil
}

// MuxChannels reports how many shared mux channels are open.
func (m *Manager) MuxChannels() int { return len(m.muxes) }

// VirtualOpen reports how many virtual ADCs are currently open.
func (m *Manager) VirtualOpen() int64 { return m.virtOpen }

// RegisterMetrics registers the manager's counters under prefix: total
// and per-virtual-ADC-attributed violations plus the mux occupancy
// gauges. Gated by the caller (core.Options.ADCMetrics) the same way
// AdaptiveMetrics gates the RDP family, so legacy snapshots keep their
// name set. A nil registry is a no-op.
func (m *Manager) RegisterMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	r.Sample(prefix+"/violations", metrics.KindCounter, func() int64 {
		var total int64
		for _, v := range m.violations {
			total += v
		}
		return total
	})
	r.Sample(prefix+"/vci_violations", metrics.KindCounter, func() int64 { return m.vciVios })
	r.Sample(prefix+"/mux_channels", metrics.KindGauge, func() int64 { return int64(len(m.muxes)) })
	r.Sample(prefix+"/virtual_adcs", metrics.KindGauge, func() int64 { return m.virtOpen })
}

// Open establishes an ADC for app: it claims a queue-page pair, carves
// and authorizes the channel's physical pages, binds the VCIs, and
// starts the application-linked channel driver. This is the only part
// of the ADC lifecycle in which the kernel participates (§3.2); the
// setup cost (page mappings, wiring) is charged to p. With cfg.Virtual
// the ADC instead joins (or opens) a shared mux channel.
func (m *Manager) Open(p *sim.Proc, app *AppDomain, vcis []atm.VCI, cfg Config) (*ADC, error) {
	if cfg.BufBytes == 0 {
		cfg.BufBytes = 16 * 1024
	}
	if cfg.BufCount == 0 {
		cfg.BufCount = 16
	}
	if cfg.ExtraPages == 0 {
		cfg.ExtraPages = 32
	}
	if cfg.Virtual {
		return m.openVirtual(p, app, vcis, cfg)
	}
	idx := -1
	for i := 1; i < board.NumChannels; i++ {
		if !m.inUse[i] {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("adc: no free channels")
	}
	m.inUse[idx] = true

	pagesPerBuf := (cfg.BufBytes + m.host.Mem.PageSize() - 1) / m.host.Mem.PageSize()
	var allowed []mem.Frame
	var bufRuns, txRuns [][]mem.Frame
	// On any allocation failure the claimed slot and every run carved so
	// far must go back — nothing is wired yet, so FreeFrame is legal.
	fail := func(err error) (*ADC, error) {
		m.inUse[idx] = false
		m.freeRuns(bufRuns)
		m.freeRuns(txRuns)
		return nil, err
	}
	for i := 0; i < cfg.BufCount; i++ {
		run, err := m.host.Mem.AllocContiguous(pagesPerBuf)
		if err != nil {
			return fail(err)
		}
		bufRuns = append(bufRuns, run)
		allowed = append(allowed, run...)
	}
	for got := 0; got < cfg.ExtraPages; got += 4 {
		run, err := m.host.Mem.AllocContiguous(4)
		if err != nil {
			return fail(err)
		}
		txRuns = append(txRuns, run)
		allowed = append(allowed, run...)
	}

	// Kernel work: open the channel on the board, authorize the pages,
	// map the two queue pages into the application (modelled as two page
	// mappings plus the board programming writes).
	m.b.OpenChannel(idx, cfg.Priority, allowed)
	for _, v := range vcis {
		m.b.BindVCI(v, idx)
	}
	m.host.Compute(p, 2*m.host.Prof.FbufMapPerPage) // queue-page mappings
	m.host.WirePages(p, len(allowed), cfg.SlowWiring)

	reserve := cfg.BufCount / 4
	if reserve == 0 {
		reserve = 1
	}
	drv := driver.New(p.Engine(), m.host, m.b, driver.Config{
		ChannelIndex: idx,
		Space:        app.Space,
		BufferFrames: bufRuns,
		ReserveBufs:  reserve,
		Cache:        cfg.Cache,
		SlowWiring:   cfg.SlowWiring,
	})
	return &ADC{
		mgr:      m,
		app:      app,
		Index:    idx,
		VCIs:     append([]atm.VCI(nil), vcis...),
		drv:      drv,
		txFrames: txRuns,
		txVAs:    make([]mem.VirtAddr, len(txRuns)),
		txMapped: make([]bool, len(txRuns)),
	}, nil
}

// openVirtual places the ADC on a shared mux channel. The tenant gets
// private transmit pages, granted per VCI so the on-board processors
// can attribute every descriptor; queue pages, receive pool, and driver
// are the mux channel's.
func (m *Manager) openVirtual(p *sim.Proc, app *AppDomain, vcis []atm.VCI, cfg Config) (*ADC, error) {
	for _, v := range vcis {
		if m.byVCI[v] != nil {
			return nil, fmt.Errorf("adc: vci %d already claimed by a virtual ADC", v)
		}
	}
	mux, err := m.muxFor(p, cfg)
	if err != nil {
		return nil, err
	}
	var txRuns [][]mem.Frame
	var txFrames []mem.Frame
	for got := 0; got < cfg.ExtraPages; got += 4 {
		run, err := m.host.Mem.AllocContiguous(4)
		if err != nil {
			m.freeRuns(txRuns)
			return nil, err
		}
		txRuns = append(txRuns, run)
		txFrames = append(txFrames, run...)
	}
	for _, v := range vcis {
		m.b.BindVCI(v, mux.idx)
		m.b.RestrictVCIFrames(mux.idx, v, txFrames)
	}
	// Kernel work: map the shared queue pages into the application and
	// wire the tenant's transmit pages.
	m.host.Compute(p, 2*m.host.Prof.FbufMapPerPage)
	m.host.WirePages(p, len(txFrames), cfg.SlowWiring)

	mux.tenants++
	m.virtOpen++
	a := &ADC{
		mgr:      m,
		app:      app,
		Index:    mux.idx,
		VCIs:     append([]atm.VCI(nil), vcis...),
		drv:      mux.drv,
		txFrames: txRuns,
		txVAs:    make([]mem.VirtAddr, len(txRuns)),
		txMapped: make([]bool, len(txRuns)),
		virtual:  true,
		mux:      mux,
	}
	for _, v := range vcis {
		m.byVCI[v] = a
	}
	return a, nil
}

// muxFor selects the mux channel for a new virtual ADC: a fresh board
// channel while queue-page pairs remain free (spreading tenants over
// the adaptor's real channels), then the least-loaded existing mux.
func (m *Manager) muxFor(p *sim.Proc, cfg Config) (*muxChannel, error) {
	idx := -1
	for i := 1; i < board.NumChannels; i++ {
		if !m.inUse[i] {
			idx = i
			break
		}
	}
	if idx < 0 {
		var best *muxChannel
		for _, mx := range m.muxes {
			if best == nil || mx.tenants < best.tenants {
				best = mx
			}
		}
		if best == nil {
			return nil, fmt.Errorf("adc: no free channels for a mux")
		}
		return best, nil
	}
	m.inUse[idx] = true
	// Shared receive pool, owned by the kernel-resident mux driver.
	pagesPerBuf := (cfg.BufBytes + m.host.Mem.PageSize() - 1) / m.host.Mem.PageSize()
	var bufRuns [][]mem.Frame
	var allowed []mem.Frame
	for i := 0; i < cfg.BufCount; i++ {
		run, err := m.host.Mem.AllocContiguous(pagesPerBuf)
		if err != nil {
			m.inUse[idx] = false
			m.freeRuns(bufRuns)
			return nil, err
		}
		bufRuns = append(bufRuns, run)
		allowed = append(allowed, run...)
	}
	m.b.OpenChannel(idx, cfg.Priority, allowed)
	m.host.Compute(p, 2*m.host.Prof.FbufMapPerPage)
	m.host.WirePages(p, len(allowed), cfg.SlowWiring)
	reserve := cfg.BufCount / 4
	if reserve == 0 {
		reserve = 1
	}
	drv := driver.New(p.Engine(), m.host, m.b, driver.Config{
		ChannelIndex: idx,
		BufferFrames: bufRuns,
		ReserveBufs:  reserve,
		Cache:        cfg.Cache,
		SlowWiring:   cfg.SlowWiring,
	})
	mx := &muxChannel{idx: idx, drv: drv}
	m.muxes = append(m.muxes, mx)
	return mx, nil
}

func (m *Manager) freeRuns(runs [][]mem.Frame) {
	for _, run := range runs {
		for _, f := range run {
			m.host.Mem.FreeFrame(f)
		}
	}
}

// Close tears the channel down: unbinds its VCIs and returns the queue
// pages to the pool. A dedicated ADC's physical buffer pages stay with
// the application domain (a full VM reclaim is outside the ADC's
// scope); a virtual ADC's transmit pages ARE reclaimed — grants
// revoked, mappings removed, frames freed — because mux channels live
// through arbitrary open/close churn and would otherwise leak them.
func (m *Manager) Close(a *ADC) {
	if a.closed {
		return
	}
	a.closed = true
	if !a.virtual {
		for _, v := range a.VCIs {
			m.b.UnbindVCI(v)
		}
		m.inUse[a.Index] = false
		return
	}
	for _, v := range a.VCIs {
		m.b.UnbindVCI(v)
		m.b.RevokeVCIFrames(a.Index, v)
		delete(m.byVCI, v)
	}
	for i, run := range a.txFrames {
		if a.txMapped[i] {
			vpn := a.app.Space.VPN(a.txVAs[i])
			for j := range run {
				a.app.Space.Unmap(vpn + uint32(j))
			}
			a.txMapped[i] = false
		}
		for _, f := range run {
			m.host.Mem.FreeFrame(f)
		}
	}
	a.txFrames = nil
	a.mux.tenants--
	m.virtOpen--
}
