package sim

import (
	"testing"
	"time"
)

func TestResourceSerializesHolders(t *testing.T) {
	e := NewEngine(1)
	bus := NewResource(e, "bus")
	var doneA, doneB Time
	e.Go("a", func(p *Proc) {
		bus.Use(p, 100*time.Nanosecond)
		doneA = p.Now()
	})
	e.Go("b", func(p *Proc) {
		bus.Use(p, 100*time.Nanosecond)
		doneB = p.Now()
	})
	e.Run()
	e.Shutdown()
	if doneA != 100 {
		t.Errorf("a done at %v, want 100", doneA)
	}
	if doneB != 200 {
		t.Errorf("b done at %v, want 200 (serialized after a)", doneB)
	}
}

func TestResourceFIFOArbitration(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r")
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * time.Nanosecond)
			order = append(order, name)
			r.Release()
		})
	}
	e.Run()
	e.Shutdown()
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceNoContentionNoDelay(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r")
	var done Time
	e.Go("solo", func(p *Proc) {
		r.Use(p, 50*time.Nanosecond)
		p.Sleep(50 * time.Nanosecond)
		r.Use(p, 50*time.Nanosecond)
		done = p.Now()
	})
	e.Run()
	e.Shutdown()
	if done != 150 {
		t.Errorf("done at %v, want 150", done)
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r")
	e.Go("a", func(p *Proc) {
		r.Use(p, 100*time.Nanosecond)
		p.Sleep(100 * time.Nanosecond)
		r.Use(p, 50*time.Nanosecond)
	})
	e.Run()
	e.Shutdown()
	if r.BusyTime() != 150*time.Nanosecond {
		t.Errorf("BusyTime = %v, want 150ns", r.BusyTime())
	}
	r.ResetStats()
	if r.BusyTime() != 0 {
		t.Errorf("BusyTime after reset = %v, want 0", r.BusyTime())
	}
}

func TestResourceReleaseWhenFreePanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r")
	defer func() {
		if recover() == nil {
			t.Error("Release of free resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceHeldAndQueueLen(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r")
	if r.Held() {
		t.Error("fresh resource held")
	}
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100 * time.Nanosecond)
		if r.QueueLen() != 1 {
			t.Errorf("QueueLen = %d, want 1", r.QueueLen())
		}
		r.Release()
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		r.Acquire(p)
		r.Release()
	})
	e.At(50, func() {
		if !r.Held() {
			t.Error("resource not held at t=50")
		}
	})
	e.Run()
	e.Shutdown()
	if r.Held() {
		t.Error("resource still held at end")
	}
}

func TestResourceHandoffPreservesTiming(t *testing.T) {
	// Three 100ns transactions arriving at t=0 must finish at 100/200/300:
	// FIFO queueing with zero arbitration gap.
	e := NewEngine(1)
	r := NewResource(e, "bus")
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Go("p", func(p *Proc) {
			r.Use(p, 100*time.Nanosecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	e.Shutdown()
	want := []Time{100, 200, 300}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}
