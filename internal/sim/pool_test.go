package sim

import (
	"testing"
)

// --- Stop-before-Run semantics (documented on Engine.Stop) ---

func TestStopBeforeRunHonoredByNextRun(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	fired := false
	e.At(10, func() { fired = true })
	e.Stop()
	e.Run()
	if fired {
		t.Fatal("Run after a pre-Run Stop executed an event")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v across a stopped Run", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (stopped Run must not drain)", e.Pending())
	}
	// The stop is consumed: the next Run proceeds normally.
	e.Run()
	if !fired {
		t.Fatal("event lost after the consumed stop")
	}
}

func TestStopBeforeRunDoesNotStack(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	count := 0
	e.At(10, func() { count++ })
	e.Stop()
	e.Stop() // idempotent: one flag, not a counter
	e.Run()
	if count != 0 {
		t.Fatal("stopped Run executed an event")
	}
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 after the single consumed stop", count)
	}
}

// --- Pooled-event handle semantics ---

// A handle to a fired event must stay inert even after its storage is
// recycled for a new event: Cancel through the stale handle is a no-op.
func TestCancelStaleHandleDoesNotKillReusedNode(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	stale := e.At(1, func() {})
	e.Run() // fires and recycles the node

	reused := false
	fresh := e.At(2, func() { reused = true })
	if fresh.n != stale.n {
		t.Fatal("free list did not reuse the node; test premise broken")
	}
	e.Cancel(stale) // stale generation: must not touch the new event
	e.Run()
	if !reused {
		t.Fatal("stale Cancel killed a reused event")
	}
}

func TestPendingAndCancelledTrackGenerations(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	ev := e.At(5, func() {})
	if !ev.Pending() || ev.Cancelled() {
		t.Fatalf("fresh event: Pending=%v Cancelled=%v", ev.Pending(), ev.Cancelled())
	}
	e.Cancel(ev)
	if ev.Pending() || !ev.Cancelled() {
		t.Fatalf("after Cancel: Pending=%v Cancelled=%v", ev.Pending(), ev.Cancelled())
	}
	var zero Event
	if zero.Pending() || zero.Cancelled() || !zero.IsZero() {
		t.Fatal("zero Event must be inert")
	}
}

func TestEventsCountsFiredEvents(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	for i := 1; i <= 5; i++ {
		e.At(Time(i), func() {})
	}
	cancelled := e.At(100, func() {})
	e.Cancel(cancelled)
	e.Run()
	if e.Events() != 5 {
		t.Fatalf("Events() = %d, want 5 (cancelled events don't fire)", e.Events())
	}
}

// --- Steady-state allocation regression pins ---

// Once the free list is warm, scheduling and cancelling must not
// allocate: the node comes from the pool and func/pointer values box
// into `any` without heap allocation.
func TestAtCancelZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	ev := e.At(1, func() {})
	e.Cancel(ev) // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		ev := e.At(1, func() {})
		e.Cancel(ev)
	})
	if allocs != 0 {
		t.Errorf("At+Cancel allocates %.1f per op, want 0", allocs)
	}
}

func TestAtCallZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	sink := 0
	cb := func(a any) { sink += *a.(*int) }
	arg := new(int)
	ev := e.AtCall(1, cb, arg)
	e.Cancel(ev)
	allocs := testing.AllocsPerRun(1000, func() {
		ev := e.AtCall(1, cb, arg)
		e.Cancel(ev)
	})
	if allocs != 0 {
		t.Errorf("AtCall+Cancel allocates %.1f per op, want 0", allocs)
	}
}

// Firing events must recycle nodes rather than leak them: a
// schedule-and-run cycle in steady state performs zero allocations.
func TestScheduleFireZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	var tick Time
	next := func() Time { tick++; return tick }
	e.At(next(), func() {})
	e.Run() // warm pool and Run machinery
	allocs := testing.AllocsPerRun(1000, func() {
		e.At(next(), func() {})
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("At+Run allocates %.1f per cycle, want 0", allocs)
	}
}

// The ring-buffer Chan must not allocate on the send/recv fast path.
func TestChanZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	defer e.Shutdown()
	c := NewChan[int](e, 8)
	c.TrySend(1)
	c.TryRecv()
	allocs := testing.AllocsPerRun(1000, func() {
		c.TrySend(7)
		c.TryRecv()
	})
	if allocs != 0 {
		t.Errorf("Chan TrySend+TryRecv allocates %.1f per op, want 0", allocs)
	}
}

// --- Event-core micro-benchmarks (exercised by the CI bench smoke) ---

func BenchmarkAtFire(b *testing.B) {
	e := NewEngine(1)
	defer e.Shutdown()
	var tick Time
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tick++
		e.At(tick, func() {})
		e.Run()
	}
}

func BenchmarkAtCancel(b *testing.B) {
	e := NewEngine(1)
	defer e.Shutdown()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.At(1, func() {}))
	}
}

func BenchmarkChanTrySendTryRecv(b *testing.B) {
	e := NewEngine(1)
	defer e.Shutdown()
	c := NewChan[int](e, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.TrySend(i)
		c.TryRecv()
	}
}

// With an empty queue the zero-length sleep takes the quiet fast path:
// no event, no goroutine handoff.
func BenchmarkSleepZeroFastPath(b *testing.B) {
	e := NewEngine(1)
	defer e.Shutdown()
	b.ReportAllocs()
	e.Go("spin", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(0)
		}
	})
	e.Run()
}
