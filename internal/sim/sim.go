// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by
// (time, insertion sequence). Sequential activities — the OSIRIS board's
// on-board processors, host interrupt handlers, driver threads — run as
// Procs: goroutines that execute in strict handoff with the engine, so
// exactly one of them is runnable at any instant and every run of a
// simulation is bit-for-bit reproducible.
//
// The event queue is allocation-free in steady state: fired and
// cancelled events return their storage to an engine-owned free list,
// and the closure-free scheduling forms (AtCall, AfterCall) let hot
// paths schedule without materializing a closure per event. Stale
// handles to recycled events are detected with a generation counter, so
// cancelling an event that already fired is always safe.
//
// Virtual time is measured in integer nanoseconds (type Time); durations
// use the standard time.Duration, which has the same resolution.
package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return time.Duration(t).String() }

// eventNode is the engine-owned storage behind an Event handle. Nodes
// are pooled: when an event fires or is cancelled, its node goes back
// on the engine's free list with the generation counter bumped, so
// operations through a stale handle are detected and ignored.
type eventNode struct {
	at Time
	// schedAt is the virtual instant the event was scheduled at, and xid
	// identifies the scheduling source: 0 for events scheduled by this
	// engine's own activities, a stable cross-shard channel id for events
	// injected by another shard. Together with seq they form the
	// canonical execution order (at, schedAt, xid, seq). For a standalone
	// engine seq is assigned in scheduling order and schedAt is
	// nondecreasing in it, so the refined order coincides exactly with
	// the historical (at, seq) order; the extra keys matter only when
	// shards merge event streams.
	schedAt      Time
	xid          uint64
	seq          uint64
	cb           func(any)
	arg          any
	index        int    // heap index, -1 while off the heap
	gen          uint64 // bumped on every recycle; live handles match it
	cancelledGen uint64 // generation of the most recent cancellation
	free         *eventNode
}

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so the caller may cancel it. The zero Event is valid and
// refers to nothing (Cancel on it is a no-op). Handles stay safe after
// the event fires: the underlying storage is recycled, and a stale
// handle is recognized by its generation and ignored.
type Event struct {
	n   *eventNode
	gen uint64
}

// IsZero reports whether the handle was never assigned a scheduled
// event.
func (ev Event) IsZero() bool { return ev.n == nil }

// Pending reports whether the event is still scheduled: it has neither
// fired nor been cancelled.
func (ev Event) Pending() bool { return ev.n != nil && ev.n.gen == ev.gen }

// Cancelled reports whether Cancel was called on this event before it
// fired. The answer is reliable until the engine reuses the event's
// storage for a later scheduling that is also cancelled; code that
// needs a durable record of a cancellation should keep its own flag.
func (ev Event) Cancelled() bool { return ev.n != nil && ev.n.cancelledGen == ev.gen }

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now      Time
	seed     int64
	seq      uint64
	pq       []*eventNode
	freeList *eventNode
	procs    []*Proc
	rng      *rand.Rand
	fired    uint64
	stopped  bool
	limit    Time // 0 means no limit
	tracer   func(t Time, format string, args ...any)
	recorder func(TraceEvent)
	running  bool
	// shard/group identify the engine's place in a ShardGroup (zero /
	// nil for a standalone engine).
	shard int
	group *ShardGroup
	// sites records every DeriveRand site name, for the collision and
	// partition-independence regression checks.
	sites map[string]int
}

// NewEngine returns an engine with its virtual clock at zero and its
// pseudo-random source seeded with seed (simulation components that need
// randomness must draw from Engine.Rand for runs to be reproducible).
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic pseudo-random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// DeriveRand returns an independent deterministic pseudo-random source
// keyed by the engine seed and a site name. Components that draw
// randomness out-of-band from the main simulation (fault injectors,
// jittered timers) must each use their own derived source: the streams
// never perturb each other or Engine.Rand, so adding or removing one
// injection site leaves every other site's draws — and therefore the
// rest of the simulation — bit-for-bit unchanged.
func (e *Engine) DeriveRand(site string) *rand.Rand {
	if e.sites == nil {
		e.sites = make(map[string]int)
	}
	e.sites[site]++
	if e.group != nil {
		e.group.registerSite(site, e.shard)
	}
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(e.seed))
	h.Write(b[:])
	h.Write([]byte(site))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// DerivedSites returns every site name DeriveRand has been called with
// on this engine, sorted. The derived stream is a pure function of
// (seed, site) — never of the engine identity — so a partitioned
// topology reproduces the serial run's streams exactly as long as the
// site set is collision-free and partition-independent; this accessor
// exists for the regression tests that pin both properties.
func (e *Engine) DerivedSites() []string {
	out := make([]string, 0, len(e.sites))
	for s := range e.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Shard returns the engine's index within its ShardGroup (0 for a
// standalone engine).
func (e *Engine) Shard() int { return e.shard }

// SetTracer installs a trace callback invoked by Tracef. A nil tracer
// disables tracing.
func (e *Engine) SetTracer(fn func(t Time, format string, args ...any)) { e.tracer = fn }

// Tracing reports whether a tracer is installed — hot paths use it to
// skip argument construction entirely.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Tracef emits a trace record at the current virtual time if a tracer is
// installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracer != nil {
		e.tracer(e.now, format, args...)
	}
}

// TraceEvent is one typed trace record, the structured sibling of the
// printf-style Tracef stream. The Ph byte follows the Chrome
// trace-event phase convention so records export losslessly to a
// Perfetto-loadable timeline: 'i' instant, 'X' complete span (At is
// the span start, Dur its length), 'C' counter sample (Arg is the
// counter value). Comp names the emitting component and becomes a
// timeline track; Name is the event (or counter) name; Cat is a
// coarse category for filtering (cell/pdu/irq/drop/proto/drv/q).
//
// The struct is plain data passed by value: emitting one performs no
// allocation, and recording is entirely passive — no engine state is
// read or written beyond the recorder callback, so enabling it cannot
// perturb the simulation.
type TraceEvent struct {
	At   Time
	Dur  Time
	Ph   byte
	Comp string
	Cat  string
	Name string
	Arg  int64
}

// SetRecorder installs a typed-trace callback invoked by Emit. A nil
// recorder disables typed tracing.
func (e *Engine) SetRecorder(fn func(TraceEvent)) { e.recorder = fn }

// Recording reports whether a typed-trace recorder is installed — hot
// paths branch on it so disabled tracing costs one predictable branch
// and zero allocations.
func (e *Engine) Recording() bool { return e.recorder != nil }

// Emit hands a typed trace record to the recorder, if any. Callers
// stamp At themselves (usually e.Now(); span emitters backdate At to
// the span start).
func (e *Engine) Emit(ev TraceEvent) {
	if e.recorder != nil {
		e.recorder(ev)
	}
}

// less orders the heap by the canonical key (at, schedAt, xid, seq):
// fire time first, then scheduling time, then scheduling source, then
// per-source insertion order. For a standalone engine every event has
// xid 0 and seq increases with schedAt, so this is exactly the
// historical (at, seq) order; the refinement gives cross-shard merges a
// partition-independent tie-break.
func (e *Engine) less(i, j int) bool {
	a, b := e.pq[i], e.pq[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.xid != b.xid {
		return a.xid < b.xid
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.pq[i], e.pq[j] = e.pq[j], e.pq[i]
	e.pq[i].index = i
	e.pq[j].index = j
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(e.pq) {
			return
		}
		m := l
		if r := l + 1; r < len(e.pq) && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			return
		}
		e.swap(i, m)
		i = m
	}
}

func (e *Engine) heapPush(n *eventNode) {
	n.index = len(e.pq)
	e.pq = append(e.pq, n)
	e.siftUp(n.index)
}

// heapRemove detaches the node at heap index i, restoring heap order.
func (e *Engine) heapRemove(i int) *eventNode {
	n := e.pq[i]
	last := len(e.pq) - 1
	if i != last {
		e.swap(i, last)
	}
	e.pq[last] = nil
	e.pq = e.pq[:last]
	if i != last {
		e.siftDown(i)
		e.siftUp(i)
	}
	n.index = -1
	return n
}

// recycle retires a node (fired or cancelled) to the free list. The
// generation bump invalidates every outstanding handle to it.
func (e *Engine) recycle(n *eventNode) {
	n.gen++
	n.cb = nil
	n.arg = nil
	n.free = e.freeList
	e.freeList = n
}

// newNode takes a node off the free list (or allocates one).
func (e *Engine) newNode() *eventNode {
	n := e.freeList
	if n != nil {
		e.freeList = n.free
		n.free = nil
	} else {
		n = &eventNode{gen: 1}
	}
	return n
}

// schedule is the common path behind At/After/AtCall/AfterCall.
func (e *Engine) schedule(t Time, cb func(any), arg any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, e.now))
	}
	n := e.newNode()
	e.seq++
	n.at = t
	n.schedAt = e.now
	n.xid = 0
	n.seq = e.seq
	n.cb = cb
	n.arg = arg
	e.heapPush(n)
	return Event{n: n, gen: n.gen}
}

// InjectStamped schedules cb(arg) at instant t carrying an explicit
// canonical-order stamp (schedAt, xid, seq) instead of this engine's
// own scheduling stamp. It is the cross-shard delivery primitive: a
// sending shard computes the stamp its scheduling call would have
// produced in a serial run, and the receiving shard merges the event
// into its queue in exactly that position. xid must be a non-zero,
// topology-stable channel id (0 is reserved for locally scheduled
// events); seq need only be monotone per xid. The engine's own seq
// counter is not consumed, so injection leaves local stamps untouched.
//
// Call it only from the receiving engine's own event context, or while
// the engine is not running (the shard barrier).
func (e *Engine) InjectStamped(t, schedAt Time, xid, seq uint64, cb func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: injecting event at %v, before now %v", t, e.now))
	}
	if xid == 0 {
		panic("sim: InjectStamped needs a non-zero xid")
	}
	n := e.newNode()
	n.at = t
	n.schedAt = schedAt
	n.xid = xid
	n.seq = seq
	n.cb = cb
	n.arg = arg
	e.heapPush(n)
}

// NextEventTime reports the fire time of the earliest queued event.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// callFunc adapts the closure scheduling forms to the callback+argument
// representation. Boxing a func value into any stores a pointer, so the
// adapter itself never allocates.
func callFunc(a any) { a.(func())() }

// At schedules fn to run at instant t, which must not be in the virtual
// past. It returns the event so the caller may cancel it.
func (e *Engine) At(t Time, fn func()) Event { return e.schedule(t, callFunc, fn) }

// AtCall schedules cb(arg) to run at instant t. It is the closure-free
// form of At for hot paths: with a pointer-shaped arg (or one already on
// the heap) the call allocates nothing, where At would force each call
// site to materialize a capturing closure per event.
func (e *Engine) AtCall(t Time, cb func(any), arg any) Event { return e.schedule(t, cb, arg) }

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.schedule(e.now.Add(d), callFunc, fn)
}

// AfterCall schedules cb(arg) to run d after the current virtual time —
// the closure-free form of After.
func (e *Engine) AfterCall(d time.Duration, cb func(any), arg any) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.schedule(e.now.Add(d), cb, arg)
}

// Cancel removes a pending event from the queue. Cancelling an event
// that already fired or was already cancelled — or the zero Event — is
// a no-op, even if the event's storage has since been reused.
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.index < 0 {
		return
	}
	e.heapRemove(n.index)
	n.cancelledGen = n.gen
	e.recycle(n)
}

// Stop makes Run return after the currently executing event completes.
// Calling Stop while the engine is not running is honored by the next
// Run, which consumes the stop and returns before executing any event;
// events stay queued for the Run after that.
func (e *Engine) Stop() { e.stopped = true }

// quietNow reports that no queued event can run at the current instant
// and no stop is pending. A zero-length scheduling point may then
// return without going through the queue: the wakeup it would schedule
// is guaranteed to be the very next event executed, so skipping the
// round-trip is unobservable in simulated behaviour.
func (e *Engine) quietNow() bool {
	return !e.stopped && (len(e.pq) == 0 || e.pq[0].at > e.now)
}

// Run executes events in order until the queue is empty, Stop is called,
// or the time limit set by RunUntil-style callers is reached. It returns
// the virtual time at which the simulation went quiescent.
//
// Procs that remain blocked on conditions when the queue drains do not
// keep the simulation alive: with no pending events nothing can ever wake
// them, so the run is quiescent.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.pq) > 0 {
		n := e.pq[0]
		if e.limit != 0 && n.at > e.limit {
			// Past the horizon: leave it queued and stop.
			break
		}
		if n.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.heapRemove(0)
		e.now = n.at
		e.fired++
		cb, arg := n.cb, n.arg
		// Recycle before the callback so it can reuse the node for
		// whatever it schedules; the generation bump makes a self-Cancel
		// from inside the callback a no-op.
		e.recycle(n)
		cb(arg)
	}
	e.stopped = false
	return e.now
}

// RunFor runs the simulation until the virtual clock would pass now+d;
// events scheduled later stay queued. It returns the time reached.
func (e *Engine) RunFor(d time.Duration) Time {
	return e.RunUntil(e.now.Add(d))
}

// RunUntil runs the simulation until the virtual clock would pass t;
// events scheduled after t remain queued and the clock is advanced to t.
func (e *Engine) RunUntil(t Time) Time {
	e.runTo(t)
	if e.now < t {
		e.now = t
	}
	return e.now
}

// runTo executes events with at ≤ t but, unlike RunUntil, leaves the
// clock at the last executed event rather than advancing it to t. The
// shard scheduler uses it for lookahead windows: an idle shard's clock
// must not jump to the window edge, or a later-injected event could
// land in its apparent past.
func (e *Engine) runTo(t Time) {
	prev := e.limit
	e.limit = t
	e.Run()
	e.limit = prev
}

// advanceTo moves an idle engine's clock forward to t (a no-op if the
// clock is already past t). The shard scheduler applies the RunUntil
// clock-advance contract group-wide with it once all windows are done.
func (e *Engine) advanceTo(t Time) {
	if e.running {
		panic("sim: advanceTo during Run")
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of events in the queue.
func (e *Engine) Pending() int { return len(e.pq) }

// Events returns the cumulative number of events the engine has
// executed across all Run calls — the denominator for wall-clock
// events/sec measurements.
func (e *Engine) Events() uint64 { return e.fired }

// Shutdown terminates all live Procs so their goroutines exit. The engine
// must not be running. After Shutdown the engine can still schedule plain
// events but all procs are gone. It is safe to call multiple times.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown during Run")
	}
	for _, p := range e.procs {
		if p.state == procDone {
			continue
		}
		p.killed = true
		p.resumeCh <- struct{}{}
		<-p.yieldCh
	}
	e.procs = nil
}
