// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by
// (time, insertion sequence). Sequential activities — the OSIRIS board's
// on-board processors, host interrupt handlers, driver threads — run as
// Procs: goroutines that execute in strict handoff with the engine, so
// exactly one of them is runnable at any instant and every run of a
// simulation is bit-for-bit reproducible.
//
// Virtual time is measured in integer nanoseconds (type Time); durations
// use the standard time.Duration, which has the same resolution.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once fired or cancelled
	cancel bool
}

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancel }

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	procs   []*Proc
	rng     *rand.Rand
	stopped bool
	limit   Time // 0 means no limit
	tracer  func(t Time, format string, args ...any)
	running bool
}

// NewEngine returns an engine with its virtual clock at zero and its
// pseudo-random source seeded with seed (simulation components that need
// randomness must draw from Engine.Rand for runs to be reproducible).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic pseudo-random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs a trace callback invoked by Tracef. A nil tracer
// disables tracing.
func (e *Engine) SetTracer(fn func(t Time, format string, args ...any)) { e.tracer = fn }

// Tracing reports whether a tracer is installed — hot paths use it to
// skip argument construction entirely.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Tracef emits a trace record at the current virtual time if a tracer is
// installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracer != nil {
		e.tracer(e.now, format, args...)
	}
}

// At schedules fn to run at instant t, which must not be in the virtual
// past. It returns the event so the caller may cancel it.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.cancel = true
	heap.Remove(&e.pq, ev.index)
	ev.index = -1
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty, Stop is called,
// or the time limit set by RunUntil-style callers is reached. It returns
// the virtual time at which the simulation went quiescent.
//
// Procs that remain blocked on conditions when the queue drains do not
// keep the simulation alive: with no pending events nothing can ever wake
// them, so the run is quiescent.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if e.limit != 0 && ev.at > e.limit {
			// Past the horizon: put it back and stop.
			heap.Push(&e.pq, ev)
			break
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	e.stopped = false
	return e.now
}

// RunFor runs the simulation until the virtual clock would pass now+d;
// events scheduled later stay queued. It returns the time reached.
func (e *Engine) RunFor(d time.Duration) Time {
	return e.RunUntil(e.now.Add(d))
}

// RunUntil runs the simulation until the virtual clock would pass t;
// events scheduled after t remain queued and the clock is advanced to t.
func (e *Engine) RunUntil(t Time) Time {
	prev := e.limit
	e.limit = t
	e.Run()
	e.limit = prev
	if e.now < t {
		e.now = t
	}
	return e.now
}

// Pending reports the number of events in the queue.
func (e *Engine) Pending() int { return len(e.pq) }

// Shutdown terminates all live Procs so their goroutines exit. The engine
// must not be running. After Shutdown the engine can still schedule plain
// events but all procs are gone. It is safe to call multiple times.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown during Run")
	}
	for _, p := range e.procs {
		if p.state == procDone {
			continue
		}
		p.killed = true
		p.resumeCh <- struct{}{}
		<-p.yieldCh
	}
	e.procs = nil
}
