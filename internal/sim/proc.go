package sim

import (
	"fmt"
	"time"
)

type procState int

const (
	procNew procState = iota
	procBlocked
	procRunnable
	procRunning
	procDone
)

// killedError is the panic value used to unwind a Proc when the engine
// shuts down while the proc is blocked.
type killedError struct{ name string }

func (k killedError) Error() string { return "sim: proc " + k.name + " killed at shutdown" }

// Proc is a simulated sequential process. Its body runs on a dedicated
// goroutine, but the engine enforces strict handoff: the body executes
// only while the engine is blocked waiting for it to yield (by sleeping,
// waiting on a Cond, or returning), so at most one proc runs at a time
// and execution order is fully determined by the event queue.
type Proc struct {
	eng      *Engine
	name     string
	resumeCh chan struct{}
	yieldCh  chan struct{}
	state    procState
	killed   bool
	panicVal any // non-nil if the body panicked; re-raised on the engine goroutine
}

// Go spawns a simulated process whose body is fn. The body starts at the
// current virtual time (it is scheduled through the event queue like any
// other event). The returned Proc may be passed to blocking primitives
// only from within fn itself.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:      e,
		name:     name,
		resumeCh: make(chan struct{}),
		yieldCh:  make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go p.run(fn)
	e.AtCall(e.now, resumeProc, p)
	return p
}

// resumeProc is the closure-free wakeup callback shared by every proc
// scheduling point: Sleep, Cond signals, Resource handoff, channel
// operations. A *Proc boxed into any stores a pointer, so scheduling a
// wakeup with AtCall(t, resumeProc, p) allocates nothing.
func resumeProc(a any) { a.(*Proc).resume() }

func (p *Proc) run(fn func(p *Proc)) {
	<-p.resumeCh // wait for the start event
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedError); !ok {
				// Stash the panic; resume() re-raises it on the engine's
				// goroutine so the failure surfaces in the caller's stack
				// rather than aborting the process from a detached
				// goroutine.
				p.panicVal = r
			}
		}
		p.state = procDone
		p.yieldCh <- struct{}{}
	}()
	p.state = procRunning
	fn(p)
}

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// resume hands control to the proc and waits until it yields or finishes.
// Called only from engine context (event callbacks).
func (p *Proc) resume() {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resumeCh <- struct{}{}
	<-p.yieldCh
	if p.panicVal != nil {
		v := p.panicVal
		p.panicVal = nil
		panic(v)
	}
}

// block yields control back to the engine and waits to be resumed.
// Called only from proc context.
func (p *Proc) block() {
	p.state = procBlocked
	p.yieldCh <- struct{}{}
	<-p.resumeCh
	if p.killed {
		panic(killedError{p.name})
	}
	p.state = procRunning
}

// Sleep suspends the proc for d of virtual time.
//
// A zero-length sleep is a scheduling point: any event already queued
// at the current instant runs before Sleep returns. When no such event
// exists (and no Stop is pending), the proc's wakeup would be the very
// next event executed, so Sleep returns immediately instead of paying
// the event and goroutine round-trip — the simulated behaviour is
// identical either way.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %s: negative sleep %v", p.name, d))
	}
	if d == 0 {
		if p.eng.quietNow() {
			return
		}
		p.eng.AtCall(p.eng.now, resumeProc, p)
		p.block()
		return
	}
	p.eng.AtCall(p.eng.now.Add(d), resumeProc, p)
	p.block()
}

// SleepUntil suspends the proc until instant t (a no-op scheduling point
// if t is not after the current time, with the same fast path as a
// zero-length Sleep).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		if p.eng.quietNow() {
			return
		}
		t = p.eng.now
	}
	p.eng.AtCall(t, resumeProc, p)
	p.block()
}

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.state == procDone }
