// Conservative parallel simulation: a ShardGroup runs several Engines —
// one per topology shard — concurrently, synchronized by link-latency
// lookahead.
//
// The protocol is classic conservative (CMB-style) windowing. Every
// cross-shard channel declares a positive lookahead: the minimum virtual
// delay between the instant a shard emits an event for another shard and
// the instant that event fires (for an ATM link, its propagation delay —
// a cell handed to the wire at t cannot arrive before t + PropDelay).
// With L the minimum lookahead over all channels, the group repeatedly:
//
//  1. finds T, the earliest pending event across all shards;
//  2. runs every shard with work in [T, T+L-1] concurrently — no shard
//     can receive a cross-shard event that fires inside the window, so
//     each advances independently and deterministically;
//  3. joins at a barrier and flushes the cross-shard channels, merging
//     every buffered event into its destination queue.
//
// Determinism does not come from the barrier alone: merged events carry
// the canonical stamp (at, schedAt, xid, seq) — fire time, the virtual
// instant the sending shard scheduled the event, the topology-stable
// channel id, and a per-channel sequence — and every engine's queue
// orders by exactly that key (see Engine.less). The stamp is a pure
// function of simulated behaviour, never of the partition or of
// wall-clock interleaving, so the merged execution is byte-identical at
// any shard count, on any GOMAXPROCS.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// maxTime is the no-horizon sentinel for group runs.
const maxTime = Time(1<<63 - 1)

// ShardGroup coordinates a set of engines that simulate one partitioned
// topology. All member engines share one seed, so DeriveRand streams —
// keyed by (seed, site) — are identical no matter which shard a
// component lands on. Construct with NewShardGroup; the zero value is
// not usable.
type ShardGroup struct {
	engines   []*Engine
	lookahead Time // min over registered channels; 0 until one registers
	flushers  []func()
	nextXID   uint64
	lastLimit Time // end of the most recent window, for Inject validation

	mu    sync.Mutex
	sites map[string]int // DeriveRand site -> shard that first derived it

	workers []*shardWorker
	down    bool

	stats GroupStats
}

// GroupStats are scheduler-level diagnostics of a sharded run. They
// describe the execution substrate, not the simulation: windows and
// merge depth depend on the shard count, and BarrierStallNS is wall
// clock. They are therefore registered as diagnostic metrics only and
// never appear in canonical (byte-compared) snapshots.
type GroupStats struct {
	Windows        uint64 // lookahead windows executed
	Injected       uint64 // cross-shard events merged at barriers
	MaxMergeDepth  uint64 // largest per-window cross-shard merge batch
	BarrierStallNS int64  // wall time the coordinator spent waiting on shard workers
}

// Stats returns a snapshot of the group's scheduler diagnostics.
func (g *ShardGroup) Stats() GroupStats { return g.stats }

// NewShardGroup creates n engines, all seeded with seed, indexed
// 0..n-1. Run the simulation with Run/RunUntil on the group, not on the
// member engines.
func NewShardGroup(seed int64, n int) *ShardGroup {
	if n < 1 {
		panic("sim: a shard group needs at least 1 engine")
	}
	g := &ShardGroup{sites: make(map[string]int)}
	for i := 0; i < n; i++ {
		e := NewEngine(seed)
		e.shard = i
		e.group = g
		g.engines = append(g.engines, e)
	}
	return g
}

// Size returns the number of shards.
func (g *ShardGroup) Size() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// NextXID hands out the next cross-shard channel id (1, 2, 3, …).
// Channel ids are assigned in topology-construction order, which is a
// function of the topology alone — the same construction sequence runs
// at every shard count — so they are stable, partition-independent
// tie-breakers in the canonical event order.
func (g *ShardGroup) NextXID() uint64 {
	g.nextXID++
	return g.nextXID
}

// AddLookahead declares a cross-shard channel's minimum delay. The
// group's window length is the minimum over all declarations; d must be
// positive — a zero-lookahead channel would force zero-length windows.
func (g *ShardGroup) AddLookahead(d time.Duration) {
	if d <= 0 {
		panic("sim: cross-shard lookahead must be positive")
	}
	if g.lookahead == 0 || Time(d) < g.lookahead {
		g.lookahead = Time(d)
	}
}

// OnBarrier registers fn to run at every window barrier (and once more
// when the group quiesces), on the coordinator goroutine while every
// engine is idle. Cross-shard channels use it to flush their buffered
// events into the destination engines.
func (g *ShardGroup) OnBarrier(fn func()) { g.flushers = append(g.flushers, fn) }

// Inject merges one stamped event into dst at a barrier, after
// verifying the lookahead contract: the event must fire strictly after
// the window that produced it, or the conservative window was not safe
// and the run would silently diverge from serial.
func (g *ShardGroup) Inject(dst *Engine, at, schedAt Time, xid, seq uint64, cb func(any), arg any) {
	if at <= g.lastLimit {
		panic(fmt.Sprintf("sim: lookahead violation: cross-shard event at %v inside window ending %v", at, g.lastLimit))
	}
	g.stats.Injected++
	dst.InjectStamped(at, schedAt, xid, seq, cb, arg)
}

// registerSite records a DeriveRand site, panicking on any duplicate
// across the group: two components sharing a site would silently read
// one pseudo-random stream twice, which is exactly the partition-
// dependent coupling DeriveRand exists to prevent.
func (g *ShardGroup) registerSite(site string, shard int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if prev, ok := g.sites[site]; ok {
		panic(fmt.Sprintf("sim: DeriveRand site %q derived twice (shards %d and %d): streams must never be shared", site, prev, shard))
	}
	g.sites[site] = shard
}

// DerivedSites returns every DeriveRand site recorded across the group,
// sorted.
func (g *ShardGroup) DerivedSites() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.sites))
	for s := range g.sites {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

// sortStrings is sort.Strings without dragging the import into the hot
// file twice (kept tiny and obvious).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// shardWorker is one shard's persistent executor goroutine. Workers
// exist so a window costs two channel operations per active shard, not
// a goroutine spawn; they also give each engine a fixed goroutine,
// which keeps the engine's strict proc handoff single-threaded.
type shardWorker struct {
	eng  *Engine
	work chan Time // window limit; closed at shutdown
	done chan any  // recovered panic value, nil on success
}

func (w *shardWorker) loop() {
	for limit := range w.work {
		w.done <- w.runWindow(limit)
	}
}

// runWindow executes one window, converting a panic (a simulation bug
// or a proc panic re-raised on the engine goroutine) into a value the
// coordinator re-panics with, so failures surface on the caller's
// stack like they do in a serial run.
func (w *shardWorker) runWindow(limit Time) (recovered any) {
	defer func() { recovered = recover() }()
	w.eng.runTo(limit)
	return nil
}

// startWorkers spawns the per-shard executors on first use.
func (g *ShardGroup) startWorkers() {
	if g.workers != nil || g.down {
		return
	}
	for _, e := range g.engines {
		w := &shardWorker{eng: e, work: make(chan Time), done: make(chan any)}
		g.workers = append(g.workers, w)
		go w.loop()
	}
}

// Run executes the whole group to quiescence — no shard has a pending
// event and no cross-shard event is in flight — and returns the latest
// engine clock. The serial-equivalence contract: every event fires at
// the same virtual time, with the same canonical order among equal
// times, as it would on a single engine simulating the whole topology.
func (g *ShardGroup) Run() Time {
	return g.run(maxTime)
}

// RunUntil executes the group until the virtual clock would pass t,
// then advances every shard's clock to t (the Engine.RunUntil
// contract, applied group-wide).
func (g *ShardGroup) RunUntil(t Time) Time {
	g.run(t)
	for _, e := range g.engines {
		e.advanceTo(t)
	}
	return t
}

func (g *ShardGroup) run(horizon Time) Time {
	if g.down {
		panic("sim: ShardGroup run after Shutdown")
	}
	g.startWorkers()
	for {
		// Earliest pending work anywhere. Cross-shard channels are always
		// empty here: every barrier flushes them all.
		t, ok := g.nextEventTime()
		if !ok || t > horizon {
			break
		}
		limit := horizon
		if g.lookahead > 0 {
			// Strict window [t, t+L-1]: anything a shard emits while
			// executing it fires at ≥ t+L, safely beyond the barrier.
			if wl := t + g.lookahead - 1; wl < limit {
				limit = wl
			}
		}
		g.lastLimit = limit
		g.stats.Windows++
		// Dispatch only shards with work in the window; an idle shard's
		// clock stays put so later injections can never land in its past.
		var active []*shardWorker
		for _, w := range g.workers {
			if next, ok := w.eng.NextEventTime(); ok && next <= limit {
				active = append(active, w)
				w.work <- limit
			}
		}
		waitStart := time.Now()
		var failure any
		for _, w := range active {
			if p := <-w.done; p != nil && failure == nil {
				failure = p
			}
		}
		g.stats.BarrierStallNS += time.Since(waitStart).Nanoseconds()
		if failure != nil {
			panic(failure)
		}
		injectedBefore := g.stats.Injected
		for _, f := range g.flushers {
			f()
		}
		if depth := g.stats.Injected - injectedBefore; depth > g.stats.MaxMergeDepth {
			g.stats.MaxMergeDepth = depth
		}
	}
	return g.Now()
}

// nextEventTime returns the earliest pending event time across shards.
func (g *ShardGroup) nextEventTime() (Time, bool) {
	var min Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && (!found || t < min) {
			min = t
			found = true
		}
	}
	return min, found
}

// Now returns the latest clock across shards. Clocks agree at
// quiescence up to idle shards that stopped early; the maximum is the
// group-wide virtual time, matching what a serial engine would report.
func (g *ShardGroup) Now() Time {
	var max Time
	for _, e := range g.engines {
		if e.now > max {
			max = e.now
		}
	}
	return max
}

// Events sums the events executed across all shards — the denominator
// for wall-clock events/sec measurements of the sharded engine.
func (g *ShardGroup) Events() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Events()
	}
	return n
}

// Pending sums queued events across shards.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Shutdown stops the worker goroutines and terminates every shard's
// procs. Safe to call multiple times; the group cannot run afterwards.
func (g *ShardGroup) Shutdown() {
	if g.down {
		return
	}
	g.down = true
	for _, w := range g.workers {
		close(w.work)
	}
	g.workers = nil
	for _, e := range g.engines {
		e.Shutdown()
	}
}
