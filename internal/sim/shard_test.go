package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestInjectStampedCanonicalOrder: events carrying explicit stamps
// merge into the queue in (at, schedAt, xid, seq) order, with locally
// scheduled events (xid 0) winning ties against injected ones.
func TestInjectStampedCanonicalOrder(t *testing.T) {
	e := NewEngine(1)
	var got []string
	rec := func(a any) { got = append(got, a.(string)) }

	const at = Time(100)
	// Local events: schedAt = 0 (scheduled now), xid = 0.
	e.AtCall(at, rec, "local-1")
	e.AtCall(at, rec, "local-2")
	// Injected: later schedAt sorts last regardless of xid; equal
	// schedAt sorts by xid, then per-channel seq.
	e.InjectStamped(at, 50, 1, 7, rec, "x1-late")
	e.InjectStamped(at, 0, 2, 1, rec, "x2-a")
	e.InjectStamped(at, 0, 1, 3, rec, "x1-b")
	e.InjectStamped(at, 0, 1, 2, rec, "x1-a")
	e.Run()

	want := []string{"local-1", "local-2", "x1-a", "x1-b", "x2-a", "x1-late"}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestInjectStampedValidation(t *testing.T) {
	e := NewEngine(1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero xid", func() { e.InjectStamped(10, 0, 0, 1, func(any) {}, nil) })
	e.At(5, func() {})
	e.Run()
	mustPanic("past injection", func() { e.InjectStamped(1, 0, 1, 1, func(any) {}, nil) })
}

// TestShardGroupWindows: two shards exchanging events through a
// barrier-flushed channel execute them in the canonical merged order,
// and the window limit never lets a shard run past an in-flight event.
func TestShardGroupWindows(t *testing.T) {
	g := NewShardGroup(1, 2)
	e0, e1 := g.Engine(0), g.Engine(1)
	const lookahead = time.Microsecond
	g.AddLookahead(lookahead)

	// A toy cross-shard channel from shard 0 to shard 1: sends buffer
	// (time, seq) pairs; the barrier injects them with delivery one
	// lookahead later.
	type xmsg struct {
		at      Time
		schedAt Time
		seq     uint64
		label   string
	}
	var out []xmsg
	var delivered []string
	xid := g.NextXID()
	g.OnBarrier(func() {
		for _, m := range out {
			m := m
			g.Inject(e1, m.at, m.schedAt, xid, m.seq, func(any) {
				if e1.Now() != m.at {
					t.Errorf("%s delivered at %v, want %v", m.label, e1.Now(), m.at)
				}
				delivered = append(delivered, m.label)
			}, nil)
		}
		out = out[:0]
	})

	var seq uint64
	send := func(label string) {
		seq++
		out = append(out, xmsg{at: e0.Now().Add(lookahead), schedAt: e0.Now(), seq: seq, label: label})
	}
	e0.At(0, func() { send("a") })
	e0.At(500, func() { send("b"); send("c") })
	e0.At(3000, func() { send("d") })
	// Local shard-1 work interleaved with the deliveries.
	e1.At(999, func() { delivered = append(delivered, "local-999") })
	e1.At(1500, func() { delivered = append(delivered, "local-1500") })

	g.Run()
	// local-1500 precedes b and c although all three fire at t=1500: it
	// was scheduled at t=0 and they at t=500, and the canonical order
	// breaks fire-time ties by scheduling time first — just as a serial
	// engine's (at, seq) order would have run them.
	want := []string{"local-999", "a", "local-1500", "b", "c", "d"}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v, want %v", delivered, want)
		}
	}
	if g.Pending() != 0 {
		t.Errorf("%d events still pending after Run", g.Pending())
	}
}

// TestShardGroupRunUntil: the group honors the horizon — events beyond
// it stay queued — and advances every shard's clock to it, like
// Engine.RunUntil does.
func TestShardGroupRunUntil(t *testing.T) {
	g := NewShardGroup(1, 3)
	defer g.Shutdown()
	g.AddLookahead(time.Microsecond)
	// Per-shard counters: shards 0 and 1 may execute the same window
	// concurrently, so shared state across them is the caller's bug.
	var ran [2]int
	g.Engine(0).At(100, func() { ran[0]++ })
	g.Engine(1).At(200, func() { ran[1]++ })
	g.Engine(1).At(9000, func() { ran[1]++ })
	g.RunUntil(5000)
	if ran[0]+ran[1] != 2 {
		t.Errorf("ran %d events before the horizon, want 2", ran[0]+ran[1])
	}
	if g.Pending() != 1 {
		t.Errorf("%d events pending, want 1 (the one past the horizon)", g.Pending())
	}
	for i := 0; i < g.Size(); i++ {
		if now := g.Engine(i).Now(); now != 5000 {
			t.Errorf("shard %d clock at %v after RunUntil(5000)", i, now)
		}
	}
}

// TestLookaheadViolationPanics: an injection inside the window that
// produced it means the conservative synchronization was unsound; the
// group must fail loudly, not diverge silently.
func TestLookaheadViolationPanics(t *testing.T) {
	g := NewShardGroup(1, 2)
	g.AddLookahead(time.Microsecond)
	xid := g.NextXID()
	fired := false
	g.OnBarrier(func() {
		if !fired {
			fired = true
			g.Inject(g.Engine(1), 500, 500, xid, 1, func(any) {}, nil) // inside [0, 999]
		}
	})
	g.Engine(0).At(0, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	g.Run()
}

func TestAddLookaheadValidation(t *testing.T) {
	g := NewShardGroup(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("AddLookahead(0) did not panic")
		}
	}()
	g.AddLookahead(0)
}

// TestDuplicateDeriveSitePanics: two engines of one group deriving the
// same site would silently share one pseudo-random stream — the exact
// partition-dependent coupling the site registry exists to catch.
func TestDuplicateDeriveSitePanics(t *testing.T) {
	g := NewShardGroup(1, 2)
	g.Engine(0).DeriveRand("injector/x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate DeriveRand site did not panic")
		}
	}()
	g.Engine(1).DeriveRand("injector/x")
}

// TestShardGroupProcs: procs spawned on different shards both run, and
// panics inside a shard's window surface on the coordinator's stack.
func TestShardGroupProcs(t *testing.T) {
	g := NewShardGroup(1, 2)
	defer g.Shutdown()
	g.AddLookahead(time.Microsecond)
	var ticks [2]int
	for i := 0; i < 2; i++ {
		i := i
		g.Engine(i).Go("ticker", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(time.Duration(i+1) * time.Microsecond)
				ticks[i]++
			}
		})
	}
	g.Run()
	if ticks[0] != 5 || ticks[1] != 5 {
		t.Errorf("ticks = %v, want [5 5]", ticks)
	}
}

func TestShardWindowPanicPropagates(t *testing.T) {
	g := NewShardGroup(1, 2)
	g.Engine(1).At(10, func() { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the shard's panic value", r)
		}
	}()
	g.Run()
}

// TestShardGroupNoGoroutineLeak: the persistent shard workers and every
// engine's proc goroutines exit at Shutdown (the parexp leak pattern).
func TestShardGroupNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		g := NewShardGroup(1, 4)
		g.AddLookahead(time.Microsecond)
		for s := 0; s < g.Size(); s++ {
			eng := g.Engine(s)
			eng.Go("sleeper", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Microsecond)
				}
			})
		}
		g.Run()
		g.Shutdown()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Shutdown", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSingleEngineOrderUnchanged: for a standalone engine the refined
// comparator must reproduce the historical (at, seq) order exactly —
// the Shards=1 inline path is the old engine, bit for bit.
func TestSingleEngineOrderUnchanged(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(50*(i%3)), func() { got = append(got, i) })
	}
	e.Run()
	// Same fire time ⇒ scheduling order; times 0, 50, 100 interleaved.
	want := []int{0, 3, 6, 9, 1, 4, 7, 2, 5, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
