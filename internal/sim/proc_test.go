package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		woke = p.Now()
	})
	e.Run()
	e.Shutdown()
	if woke != Time(10*time.Microsecond) {
		t.Errorf("woke at %v, want 10µs", woke)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine(1)
	var marks []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100 * time.Nanosecond)
			marks = append(marks, p.Now())
		}
	})
	e.Run()
	e.Shutdown()
	want := []Time{100, 200, 300}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(1)
		var log []string
		e.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(100 * time.Nanosecond)
				log = append(log, fmt.Sprintf("a%d@%d", i, p.Now()))
			}
		})
		e.Go("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(150 * time.Nanosecond)
				log = append(log, fmt.Sprintf("b%d@%d", i, p.Now()))
			}
		})
		e.Run()
		e.Shutdown()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("non-deterministic interleaving (length)")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("non-deterministic interleaving: run0=%v runN=%v", first, again)
			}
		}
	}
}

func TestZeroSleepIsSchedulingPoint(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	e.Shutdown()
	// a starts first (spawned first), yields at Sleep(0), b runs, then a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeSleepPanicsThroughRun(t *testing.T) {
	e := NewEngine(1)
	e.Go("p", func(p *Proc) { p.Sleep(-1) })
	defer func() {
		if recover() == nil {
			t.Error("negative sleep did not propagate a panic out of Run")
		}
	}()
	e.Run()
}

func TestProcPanicPropagatesToEngine(t *testing.T) {
	e := NewEngine(1)
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Nanosecond)
		panic("boom")
	})
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	e.Run()
}

func TestSleepUntilPastIsImmediate(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Microsecond)
		p.SleepUntil(0) // in the past: just a scheduling point
		woke = p.Now()
	})
	e.Run()
	e.Shutdown()
	if woke != Time(time.Microsecond) {
		t.Errorf("woke at %v, want 1µs", woke)
	}
}

func TestProcDone(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("p", func(p *Proc) { p.Sleep(time.Nanosecond) })
	if p.Done() {
		t.Error("proc done before running")
	}
	e.Run()
	if !p.Done() {
		t.Error("proc not done after body returned")
	}
	e.Shutdown()
}

func TestShutdownUnblocksSleepingProc(t *testing.T) {
	e := NewEngine(1)
	cond := NewCond(e)
	reached := false
	e.Go("stuck", func(p *Proc) {
		cond.Wait(p) // nobody will ever signal
		reached = true
	})
	e.Run()
	e.Shutdown() // must not hang
	if reached {
		t.Error("killed proc continued past Wait")
	}
}

func TestShutdownTwiceIsSafe(t *testing.T) {
	e := NewEngine(1)
	e.Go("p", func(p *Proc) {})
	e.Run()
	e.Shutdown()
	e.Shutdown()
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine(1)
	var childRan Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Microsecond)
		e.Go("child", func(c *Proc) {
			c.Sleep(time.Microsecond)
			childRan = c.Now()
		})
	})
	e.Run()
	e.Shutdown()
	if childRan != Time(2*time.Microsecond) {
		t.Errorf("child finished at %v, want 2µs", childRan)
	}
}

func TestProcName(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("worker-7", func(p *Proc) {})
	if p.Name() != "worker-7" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Engine() != e {
		t.Error("Engine() mismatch")
	}
	e.Run()
	e.Shutdown()
}
