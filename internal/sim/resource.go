package sim

import "time"

// Resource models a resource that at most one activity may hold at a
// time, with FIFO arbitration — a bus, a memory port, a DMA engine.
// It also accumulates busy time so utilization can be reported.
type Resource struct {
	eng       *Engine
	name      string
	holder    *Proc // nil when free
	held      bool
	queue     []*Proc
	busySince Time
	busyTotal time.Duration
}

// NewResource returns a free resource bound to engine e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{eng: e, name: name}
}

// Acquire blocks p until it holds the resource. Waiters are served in
// FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.held {
		r.queue = append(r.queue, p)
		p.block()
		// Our predecessor's Release transferred ownership to us before
		// resuming us, so the resource is already ours here.
		return
	}
	r.held = true
	r.holder = p
	r.busySince = r.eng.now
}

// Release frees the resource or hands it to the longest waiter.
func (r *Resource) Release() {
	if !r.held {
		panic("sim: Release of free resource " + r.name)
	}
	r.busyTotal += time.Duration(r.eng.now - r.busySince)
	if len(r.queue) == 0 {
		r.held = false
		r.holder = nil
		return
	}
	next := r.queue[0]
	copy(r.queue, r.queue[1:])
	r.queue = r.queue[:len(r.queue)-1]
	r.holder = next
	r.busySince = r.eng.now
	r.eng.AtCall(r.eng.now, resumeProc, next)
}

// Use acquires the resource, holds it for d of virtual time, and
// releases it. This is the common pattern for a priced bus transaction.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Held reports whether the resource is currently held.
func (r *Resource) Held() bool { return r.held }

// QueueLen reports the number of procs waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusyTime returns the total virtual time the resource has been held.
// If the resource is currently held the in-progress hold is included.
func (r *Resource) BusyTime() time.Duration {
	total := r.busyTotal
	if r.held {
		total += time.Duration(r.eng.now - r.busySince)
	}
	return total
}

// ResetStats zeroes the accumulated busy time (the current hold, if any,
// is accounted from now).
func (r *Resource) ResetStats() {
	r.busyTotal = 0
	r.busySince = r.eng.now
}
