package sim

// Chan is a bounded FIFO channel between simulated processes, the CSP
// analog for the simulation world. Send blocks while the channel is full,
// Recv blocks while it is empty. A capacity of zero is not supported
// (rendezvous can be built from two capacity-1 channels when needed).
//
// The buffer is a fixed ring allocated at construction, so steady-state
// send/recv traffic allocates nothing.
type Chan[T any] struct {
	eng      *Engine
	buf      []T // fixed ring of len == capacity
	head     int // index of the oldest item
	count    int
	notEmpty *Cond
	notFull  *Cond
}

// NewChan returns a channel with the given capacity (which must be
// positive) bound to engine e.
func NewChan[T any](e *Engine, capacity int) *Chan[T] {
	if capacity <= 0 {
		panic("sim: channel capacity must be positive")
	}
	return &Chan[T]{
		eng:      e,
		buf:      make([]T, capacity),
		notEmpty: NewCond(e),
		notFull:  NewCond(e),
	}
}

// Len reports the number of buffered items.
func (c *Chan[T]) Len() int { return c.count }

// Cap reports the channel capacity.
func (c *Chan[T]) Cap() int { return len(c.buf) }

// Full reports whether a Send would block.
func (c *Chan[T]) Full() bool { return c.count >= len(c.buf) }

// Empty reports whether a Recv would block.
func (c *Chan[T]) Empty() bool { return c.count == 0 }

// push appends v to the ring; the caller has checked for room.
func (c *Chan[T]) push(v T) {
	i := c.head + c.count
	if i >= len(c.buf) {
		i -= len(c.buf)
	}
	c.buf[i] = v
	c.count++
}

// pop removes and returns the oldest item; the caller has checked
// non-emptiness.
func (c *Chan[T]) pop() T {
	v := c.buf[c.head]
	var zero T
	c.buf[c.head] = zero
	c.head++
	if c.head >= len(c.buf) {
		c.head = 0
	}
	c.count--
	return v
}

// Send enqueues v, blocking p while the channel is full.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.Full() {
		c.notFull.Wait(p)
	}
	c.push(v)
	c.notEmpty.Signal()
}

// TrySend enqueues v if there is room and reports whether it did.
// It never blocks and may be called from event callbacks as well as procs.
func (c *Chan[T]) TrySend(v T) bool {
	if c.Full() {
		return false
	}
	c.push(v)
	c.notEmpty.Signal()
	return true
}

// Recv dequeues the oldest item, blocking p while the channel is empty.
func (c *Chan[T]) Recv(p *Proc) T {
	for c.Empty() {
		c.notEmpty.Wait(p)
	}
	v := c.pop()
	c.notFull.Signal()
	return v
}

// TryRecv dequeues the oldest item if one is buffered. It never blocks
// and may be called from event callbacks as well as procs.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if c.Empty() {
		return zero, false
	}
	v := c.pop()
	c.notFull.Signal()
	return v, true
}

// Peek returns the oldest item without removing it.
func (c *Chan[T]) Peek() (T, bool) {
	var zero T
	if c.Empty() {
		return zero, false
	}
	return c.buf[c.head], true
}
