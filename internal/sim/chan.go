package sim

// Chan is a bounded FIFO channel between simulated processes, the CSP
// analog for the simulation world. Send blocks while the channel is full,
// Recv blocks while it is empty. A capacity of zero is not supported
// (rendezvous can be built from two capacity-1 channels when needed).
type Chan[T any] struct {
	eng      *Engine
	buf      []T
	capacity int
	notEmpty *Cond
	notFull  *Cond
	closed   bool
}

// NewChan returns a channel with the given capacity (which must be
// positive) bound to engine e.
func NewChan[T any](e *Engine, capacity int) *Chan[T] {
	if capacity <= 0 {
		panic("sim: channel capacity must be positive")
	}
	return &Chan[T]{
		eng:      e,
		capacity: capacity,
		notEmpty: NewCond(e),
		notFull:  NewCond(e),
	}
}

// Len reports the number of buffered items.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap reports the channel capacity.
func (c *Chan[T]) Cap() int { return c.capacity }

// Full reports whether a Send would block.
func (c *Chan[T]) Full() bool { return len(c.buf) >= c.capacity }

// Empty reports whether a Recv would block.
func (c *Chan[T]) Empty() bool { return len(c.buf) == 0 }

// Send enqueues v, blocking p while the channel is full.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.Full() {
		c.notFull.Wait(p)
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal()
}

// TrySend enqueues v if there is room and reports whether it did.
// It never blocks and may be called from event callbacks as well as procs.
func (c *Chan[T]) TrySend(v T) bool {
	if c.Full() {
		return false
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal()
	return true
}

// Recv dequeues the oldest item, blocking p while the channel is empty.
func (c *Chan[T]) Recv(p *Proc) T {
	for c.Empty() {
		c.notEmpty.Wait(p)
	}
	v := c.buf[0]
	var zero T
	c.buf[0] = zero
	c.buf = c.buf[1:]
	c.notFull.Signal()
	return v
}

// TryRecv dequeues the oldest item if one is buffered. It never blocks
// and may be called from event callbacks as well as procs.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if c.Empty() {
		return zero, false
	}
	v := c.buf[0]
	c.buf[0] = zero
	c.buf = c.buf[1:]
	c.notFull.Signal()
	return v, true
}

// Peek returns the oldest item without removing it.
func (c *Chan[T]) Peek() (T, bool) {
	var zero T
	if c.Empty() {
		return zero, false
	}
	return c.buf[0], true
}
