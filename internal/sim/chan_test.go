package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChanFIFOOrder(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e, 4)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			ch.Send(p, i)
			p.Sleep(time.Nanosecond)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	e.Run()
	e.Shutdown()
	if len(got) != 10 {
		t.Fatalf("received %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want ascending", got)
		}
	}
}

func TestChanSendBlocksWhenFull(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e, 2)
	var thirdSentAt Time
	e.Go("producer", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Send(p, 3) // blocks until consumer drains at t=1µs
		thirdSentAt = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		ch.Recv(p)
	})
	e.Run()
	e.Shutdown()
	if thirdSentAt != Time(time.Microsecond) {
		t.Errorf("third send completed at %v, want 1µs (after a recv)", thirdSentAt)
	}
}

func TestChanRecvBlocksWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[string](e, 1)
	var gotAt Time
	var got string
	e.Go("consumer", func(p *Proc) {
		got = ch.Recv(p)
		gotAt = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(3 * time.Microsecond)
		ch.Send(p, "hi")
	})
	e.Run()
	e.Shutdown()
	if got != "hi" || gotAt != Time(3*time.Microsecond) {
		t.Errorf("got %q at %v, want hi at 3µs", got, gotAt)
	}
}

func TestChanTrySendTryRecv(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e, 1)
	if _, ok := ch.TryRecv(); ok {
		t.Error("TryRecv on empty chan succeeded")
	}
	if !ch.TrySend(7) {
		t.Error("TrySend on empty chan failed")
	}
	if ch.TrySend(8) {
		t.Error("TrySend on full chan succeeded")
	}
	if v, ok := ch.Peek(); !ok || v != 7 {
		t.Errorf("Peek = %v,%v want 7,true", v, ok)
	}
	if v, ok := ch.TryRecv(); !ok || v != 7 {
		t.Errorf("TryRecv = %v,%v want 7,true", v, ok)
	}
	if _, ok := ch.Peek(); ok {
		t.Error("Peek on empty chan succeeded")
	}
}

func TestChanLenCapFullEmpty(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e, 3)
	if ch.Cap() != 3 || ch.Len() != 0 || !ch.Empty() || ch.Full() {
		t.Fatal("fresh chan state wrong")
	}
	ch.TrySend(1)
	ch.TrySend(2)
	ch.TrySend(3)
	if ch.Len() != 3 || !ch.Full() || ch.Empty() {
		t.Fatal("full chan state wrong")
	}
}

func TestChanZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChan(0) did not panic")
		}
	}()
	NewChan[int](NewEngine(1), 0)
}

// Property: for any sequence of values pushed through a small channel by
// a producer/consumer pair, the consumer sees exactly the produced
// sequence.
func TestChanPreservesSequenceQuick(t *testing.T) {
	f := func(values []uint16, capSeed uint8) bool {
		capacity := int(capSeed)%8 + 1
		e := NewEngine(1)
		ch := NewChan[uint16](e, capacity)
		var got []uint16
		e.Go("producer", func(p *Proc) {
			for _, v := range values {
				ch.Send(p, v)
			}
		})
		e.Go("consumer", func(p *Proc) {
			for range values {
				got = append(got, ch.Recv(p))
			}
		})
		e.Run()
		e.Shutdown()
		if len(got) != len(values) {
			return false
		}
		for i := range values {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
