package sim

// Cond is a condition variable for simulated processes. It follows the
// monitor discipline: a waiter re-checks its predicate in a loop because
// Signal only makes it runnable, it does not convey which condition
// became true.
//
// Wakeups are delivered through the event queue at the current virtual
// time, preserving determinism: if several procs are signalled at the
// same instant they run in signal order.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition variable bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait suspends p until another activity calls Signal or Broadcast.
// Waiting consumes no virtual time beyond the wakeup scheduling point.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block()
}

// Signal wakes the longest-waiting proc, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.eng.AtCall(c.eng.now, resumeProc, p)
}

// Broadcast wakes all waiting procs in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.eng.AtCall(c.eng.now, resumeProc, p)
	}
	c.waiters = c.waiters[:0]
}

// Waiting reports the number of procs currently blocked on c.
func (c *Cond) Waiting() int { return len(c.waiters) }
