package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(12345, func() { at = e.Now() })
	end := e.Run()
	if at != 12345 {
		t.Errorf("event saw clock %v, want 12345", at)
	}
	if end != 12345 {
		t.Errorf("Run returned %v, want 12345", end)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(1000, func() {
		e.After(500*time.Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 1500 {
		t.Errorf("After event fired at %v, want 1500", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(100, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(200, func() { fired = true })
	e.At(100, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Error("event cancelled at t=100 still fired at t=200")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	e.Run()
	e.Cancel(ev) // must not panic
	if ev.Cancelled() {
		t.Error("fired event reported as cancelled")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("events run = %d, want 1 (Stop should halt)", count)
	}
	// The queue still holds the t=20 event; a second Run drains it.
	e.Run()
	if count != 2 {
		t.Fatalf("events after resume = %d, want 2", count)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(100, func() { fired = append(fired, e.Now()) })
	e.At(300, func() { fired = append(fired, e.Now()) })
	got := e.RunUntil(200)
	if got != 200 {
		t.Errorf("RunUntil returned %v, want 200", got)
	}
	if len(fired) != 1 || fired[0] != 100 {
		t.Errorf("fired = %v, want [100]", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 300 {
		t.Errorf("after full Run fired = %v, want [100 300]", fired)
	}
}

func TestRunForAdvancesClockEvenWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(5 * time.Microsecond)
	if e.Now() != Time(5*time.Microsecond) {
		t.Errorf("clock = %v, want 5µs", e.Now())
	}
}

func TestTimeArithmetic(t *testing.T) {
	var tm Time = 1500
	if tm.Add(500*time.Nanosecond) != 2000 {
		t.Error("Add wrong")
	}
	if tm.Sub(500) != 1000*time.Nanosecond {
		t.Error("Sub wrong")
	}
	if Time(2e9).Seconds() != 2.0 {
		t.Error("Seconds wrong")
	}
	if Time(2500).Microseconds() != 2.5 {
		t.Error("Microseconds wrong")
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42).Rand().Int63()
	b := NewEngine(42).Rand().Int63()
	if a != b {
		t.Error("same seed produced different random streams")
	}
	c := NewEngine(43).Rand().Int63()
	if a == c {
		t.Error("different seeds produced identical first values (suspicious)")
	}
}

func TestTracer(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.SetTracer(func(_ Time, format string, _ ...any) { got = append(got, format) })
	e.At(10, func() { e.Tracef("hello %d") })
	e.Run()
	if len(got) != 1 || got[0] != "hello %d" {
		t.Errorf("tracer got %v", got)
	}
	e.SetTracer(nil)
	e.Tracef("ignored") // must not panic
}

func TestNestedScheduling(t *testing.T) {
	// An event that schedules more events at the same time: they run
	// after previously scheduled same-time events.
	e := NewEngine(1)
	var order []string
	e.At(10, func() {
		order = append(order, "a")
		e.At(10, func() { order = append(order, "c") })
	})
	e.At(10, func() { order = append(order, "b") })
	e.Run()
	want := "abc"
	var s string
	for _, x := range order {
		s += x
	}
	if s != want {
		t.Errorf("order = %q, want %q", s, want)
	}
}

func TestCancelInsideCallback(t *testing.T) {
	// An event callback cancelling another pending event (the RDP timer
	// pattern) must be safe even when both fire at the same instant.
	e := NewEngine(1)
	var b Event
	bFired := false
	e.At(100, func() { e.Cancel(b) })
	b = e.At(100, func() { bFired = true })
	e.Run()
	if bFired {
		t.Error("same-instant cancelled event still fired")
	}
}

func TestCancelSelfIsNoop(t *testing.T) {
	e := NewEngine(1)
	var self Event
	ran := false
	self = e.At(10, func() {
		ran = true
		e.Cancel(self) // already firing: the handle is stale, must be a no-op
	})
	e.Run()
	if !ran {
		t.Error("event did not run")
	}
}

func TestRunUntilZeroHorizonRunsNothing(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(10, func() { fired = true })
	e.RunUntil(5)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
	e.Run()
	if !fired {
		t.Error("event lost after horizon run")
	}
}
