package sim

import (
	"testing"
	"time"
)

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(time.Microsecond)
		c.Signal()
	})
	e.Run()
	if woke != 1 {
		t.Errorf("woke = %d, want 1", woke)
	}
	if c.Waiting() != 2 {
		t.Errorf("Waiting = %d, want 2", c.Waiting())
	}
	e.Shutdown()
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("waiter", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Microsecond)
		c.Broadcast()
	})
	e.Run()
	e.Shutdown()
	if woke != 5 {
		t.Errorf("woke = %d, want 5", woke)
	}
	if c.Waiting() != 0 {
		t.Errorf("Waiting = %d, want 0", c.Waiting())
	}
}

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			// Stagger arrival so waiter order is known.
			p.Sleep(time.Duration(i) * time.Nanosecond)
			c.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("s", func(p *Proc) {
		p.Sleep(time.Microsecond)
		c.Signal()
		c.Signal()
		c.Signal()
	})
	e.Run()
	e.Shutdown()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestCondSignalWithoutWaitersIsNoop(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	c.Signal()
	c.Broadcast()
	if c.Waiting() != 0 {
		t.Error("Waiting != 0")
	}
}

func TestCondMonitorPattern(t *testing.T) {
	// The classic predicate-loop use: a consumer waits for a queue to be
	// non-empty; spurious wakeups (broadcast with nothing queued) must be
	// harmless because of the re-check loop.
	e := NewEngine(1)
	c := NewCond(e)
	var queue []int
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			for len(queue) == 0 {
				c.Wait(p)
			}
			got = append(got, queue[0])
			queue = queue[1:]
		}
	})
	e.Go("noise", func(p *Proc) {
		p.Sleep(time.Nanosecond)
		c.Broadcast() // spurious: queue still empty
	})
	e.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Microsecond)
			queue = append(queue, i)
			c.Signal()
		}
	})
	e.Run()
	e.Shutdown()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got = %v, want [1 2 3]", got)
	}
}
