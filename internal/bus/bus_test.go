package bus

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCycleTime(t *testing.T) {
	b := New(sim.NewEngine(1), Config{})
	if b.CycleTime() != 40*time.Nanosecond {
		t.Errorf("CycleTime = %v, want 40ns at 25 MHz", b.CycleTime())
	}
}

func TestWordsFor(t *testing.T) {
	b := New(sim.NewEngine(1), Config{})
	cases := []struct{ bytes, words int }{
		{0, 0}, {1, 1}, {4, 1}, {5, 2}, {44, 11}, {88, 22},
	}
	for _, c := range cases {
		if got := b.WordsFor(c.bytes); got != c.words {
			t.Errorf("WordsFor(%d) = %d, want %d", c.bytes, got, c.words)
		}
	}
}

// The paper's §2.5.1 arithmetic must come out exactly.
func TestPaperThroughputCeilings(t *testing.T) {
	b := New(sim.NewEngine(1), Config{})
	cases := []struct {
		bytes int
		read  bool
		want  float64
	}{
		{44, true, 11.0 / 24.0 * 800},  // 367 Mbps transmit, single cell
		{44, false, 11.0 / 19.0 * 800}, // 463 Mbps receive, single cell
		{88, true, 22.0 / 35.0 * 800},  // 503 Mbps transmit, double cell
		{88, false, 22.0 / 30.0 * 800}, // 587 Mbps receive, double cell
	}
	for _, c := range cases {
		got := b.MaxDMAThroughputMbps(c.bytes, c.read)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("MaxDMAThroughputMbps(%d, read=%v) = %f, want %f", c.bytes, c.read, got, c.want)
		}
	}
}

func TestDMATransactionOccupancy(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{})
	var done sim.Time
	e.Go("dma", func(p *sim.Proc) {
		b.DMAWrite(p, 44) // 8 + 11 = 19 cycles = 760 ns
		done = p.Now()
	})
	e.Run()
	e.Shutdown()
	if done != sim.Time(760*time.Nanosecond) {
		t.Errorf("DMA write of 44B took %v, want 760ns", time.Duration(done))
	}
}

func TestMeasuredRateMatchesCeiling(t *testing.T) {
	// Drive back-to-back 44-byte DMA writes for a while; achieved rate
	// must equal the theoretical ceiling.
	e := sim.NewEngine(1)
	b := New(e, Config{})
	const n = 1000
	e.Go("dma", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			b.DMAWrite(p, 44)
		}
	})
	end := e.Run()
	e.Shutdown()
	mbps := float64(n*44*8) / end.Seconds() / 1e6
	want := b.MaxDMAThroughputMbps(44, false)
	if math.Abs(mbps-want) > 0.5 {
		t.Errorf("achieved %f Mbps, ceiling %f", mbps, want)
	}
}

func TestSerializedContention(t *testing.T) {
	// On a serialized bus, concurrent DMA and CPU memory traffic slow
	// each other down; on a crossbar they do not.
	run := func(serialized bool) sim.Time {
		e := sim.NewEngine(1)
		b := New(e, Config{Serialized: serialized})
		var dmaDone sim.Time
		e.Go("dma", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				b.DMAWrite(p, 44)
			}
			dmaDone = p.Now()
		})
		e.Go("cpu", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				b.CPUMemRead(p, 4)
			}
		})
		e.Run()
		e.Shutdown()
		return dmaDone
	}
	serial := run(true)
	crossbar := run(false)
	if serial <= crossbar {
		t.Errorf("serialized DMA completion %v not slower than crossbar %v", serial, crossbar)
	}
	// On the crossbar the DMA stream must be completely unaffected:
	// 100 × 19 cycles × 40 ns = 76 µs.
	if crossbar != sim.Time(76*time.Microsecond) {
		t.Errorf("crossbar DMA completion %v, want 76µs", time.Duration(crossbar))
	}
}

func TestPIOSlowerThanDMAPerWord(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{})
	var pioDone, dmaDone time.Duration
	e.Go("pio", func(p *sim.Proc) {
		start := p.Now()
		b.PIORead(p, 11) // one cell payload, word at a time
		pioDone = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Go("dma", func(p *sim.Proc) {
		start := p.Now()
		b.DMARead(p, 44)
		dmaDone = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	if pioDone <= dmaDone {
		t.Errorf("PIO (%v) not slower than DMA (%v) for one cell", pioDone, dmaDone)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{})
	e.Go("x", func(p *sim.Proc) {
		b.DMARead(p, 44)
		b.DMAWrite(p, 88)
		b.PIOWrite(p, 3)
		b.CPUMemWrite(p, 2)
	})
	e.Run()
	e.Shutdown()
	s := b.Stats()
	if s.DMAReadTxns != 1 || s.DMAReadWords != 11 {
		t.Errorf("DMARead stats %+v", s)
	}
	if s.DMAWriteTxns != 1 || s.DMAWriteWords != 22 {
		t.Errorf("DMAWrite stats %+v", s)
	}
	if s.PIOWords != 3 || s.CPUMemWords != 2 {
		t.Errorf("PIO/CPU stats %+v", s)
	}
	if b.BusyTime() == 0 {
		t.Error("BusyTime = 0")
	}
	b.ResetStats()
	if b.Stats() != (Stats{}) || b.BusyTime() != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestCrossbarResetStatsCoversMemPort(t *testing.T) {
	e := sim.NewEngine(1)
	b := New(e, Config{Serialized: false})
	e.Go("x", func(p *sim.Proc) { b.CPUMemRead(p, 4) })
	e.Run()
	e.Shutdown()
	b.ResetStats()
	if b.Stats().CPUMemWords != 0 {
		t.Error("stats not reset")
	}
}

func TestConfigDefaults(t *testing.T) {
	b := New(sim.NewEngine(1), Config{})
	cfg := b.Config()
	if cfg.ClockHz != 25_000_000 || cfg.WordBytes != 4 ||
		cfg.DMAReadOverhead != 13 || cfg.DMAWriteOverhead != 8 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestMemClockDecoupledFromBusClock(t *testing.T) {
	// A crossbar machine's private memory port runs on its own clock:
	// CPU memory traffic must be priced at MemClockHz, not the 25 MHz
	// TURBOchannel.
	e := sim.NewEngine(1)
	b := New(e, Config{MemClockHz: 100_000_000, Serialized: false})
	var took time.Duration
	e.Go("cpu", func(p *sim.Proc) {
		start := p.Now()
		b.CPUMemRead(p, 4) // (5 + 4) cycles at 10 ns = 90 ns
		took = time.Duration(p.Now() - start)
	})
	e.Run()
	e.Shutdown()
	if took != 90*time.Nanosecond {
		t.Errorf("mem read took %v, want 90ns at 100 MHz", took)
	}
	// DMA still runs at the bus clock.
	var dma time.Duration
	e2 := sim.NewEngine(1)
	b2 := New(e2, Config{MemClockHz: 100_000_000})
	e2.Go("dma", func(p *sim.Proc) {
		start := p.Now()
		b2.DMAWrite(p, 44) // 19 cycles at 40 ns = 760 ns
		dma = time.Duration(p.Now() - start)
	})
	e2.Run()
	e2.Shutdown()
	if dma != 760*time.Nanosecond {
		t.Errorf("DMA took %v, want 760ns at 25 MHz", dma)
	}
}

func TestCPUOccupyContendsOnlyWhenSerialized(t *testing.T) {
	run := func(serialized bool) time.Duration {
		e := sim.NewEngine(1)
		b := New(e, Config{Serialized: serialized})
		var dmaDone sim.Time
		e.Go("dma", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				b.DMAWrite(p, 44)
			}
			dmaDone = p.Now()
		})
		e.Go("cpu", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				b.CPUOccupy(p, time.Microsecond)
			}
		})
		e.Run()
		e.Shutdown()
		return time.Duration(dmaDone)
	}
	if crossbar := run(false); crossbar != 38*time.Microsecond {
		t.Errorf("crossbar DMA completion %v, want exactly 38µs", crossbar)
	}
	if serial := run(true); serial <= 38*time.Microsecond {
		t.Errorf("serialized DMA completion %v not delayed by CPU occupancy", serial)
	}
}
