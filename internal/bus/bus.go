// Package bus models the TURBOchannel I/O bus and its interaction with
// the host memory system.
//
// The paper derives its hardware throughput ceilings from TURBOchannel
// cycle arithmetic (§2.5.1): a 32-bit bus at 25 MHz moves one word per
// cycle once a DMA transaction is under way, but each transaction pays a
// fixed overhead — 13 cycles for DMA reads (board reading host memory,
// the transmit direction) and 8 cycles for DMA writes (receive
// direction). Hence the published ceilings:
//
//	single-cell (11-word) DMA:  tx 11/(11+13)·800 = 367 Mbps,  rx 11/(11+8)·800 = 463 Mbps
//	double-cell (22-word) DMA:  tx 22/(22+13)·800 = 503 Mbps,  rx 22/(22+8)·800 = 587 Mbps
//
// Two contention models are provided (§2.7, §4): Serialized, where every
// memory transaction occupies the TURBOchannel so CPU memory traffic and
// DMA steal bandwidth from each other (DECstation 5000/200); and
// crossbar (the default), where DMA and CPU cache fills/write-backs
// proceed concurrently (DEC 3000 AXP).
package bus

import (
	"time"

	"repro/internal/sim"
)

// Config configures a Bus.
type Config struct {
	// ClockHz is the bus clock (default 25 MHz).
	ClockHz int64
	// WordBytes is the bus width (default 4).
	WordBytes int
	// DMAReadOverhead is the fixed cost, in cycles, of one DMA read
	// transaction (default 13).
	DMAReadOverhead int
	// DMAWriteOverhead is the fixed cost, in cycles, of one DMA write
	// transaction (default 8).
	DMAWriteOverhead int
	// PIOReadCycles / PIOWriteCycles price one word of programmed I/O
	// across the bus (defaults 14 and 9: a one-word transaction).
	PIOReadCycles  int
	PIOWriteCycles int
	// MemReadOverhead / MemWriteOverhead are the fixed per-transaction
	// costs of CPU-initiated memory traffic (cache fills, write-throughs),
	// in cycles of the memory clock (defaults 5 and 3).
	MemReadOverhead  int
	MemWriteOverhead int
	// MemClockHz clocks the CPU<->memory path. It defaults to ClockHz,
	// which is correct for the DECstation (one shared path); a crossbar
	// machine like the DEC 3000 has a much faster private memory port.
	MemClockHz int64
	// Serialized makes CPU memory traffic occupy the bus, contending
	// with DMA (DECstation 5000/200). When false, CPU memory traffic
	// uses a separate memory port and only other DMA contends (DEC 3000).
	Serialized bool
}

func (c Config) withDefaults() Config {
	if c.ClockHz == 0 {
		c.ClockHz = 25_000_000
	}
	if c.WordBytes == 0 {
		c.WordBytes = 4
	}
	if c.DMAReadOverhead == 0 {
		c.DMAReadOverhead = 13
	}
	if c.DMAWriteOverhead == 0 {
		c.DMAWriteOverhead = 8
	}
	if c.PIOReadCycles == 0 {
		c.PIOReadCycles = 14
	}
	if c.PIOWriteCycles == 0 {
		c.PIOWriteCycles = 9
	}
	if c.MemReadOverhead == 0 {
		c.MemReadOverhead = 5
	}
	if c.MemWriteOverhead == 0 {
		c.MemWriteOverhead = 3
	}
	if c.MemClockHz == 0 {
		c.MemClockHz = c.ClockHz
	}
	return c
}

// Stats counts bus activity.
type Stats struct {
	DMAReadTxns   int64
	DMAWriteTxns  int64
	DMAReadWords  int64
	DMAWriteWords int64
	PIOWords      int64
	CPUMemWords   int64
}

// Bus is a TURBOchannel instance shared by the host CPU and option cards.
type Bus struct {
	eng     *sim.Engine
	cfg     Config
	channel *sim.Resource // the TURBOchannel itself
	memPort *sim.Resource // CPU<->memory path; == channel when Serialized
	stats   Stats
}

// New returns a bus bound to engine e.
func New(e *sim.Engine, cfg Config) *Bus {
	cfg = cfg.withDefaults()
	b := &Bus{eng: e, cfg: cfg}
	b.channel = sim.NewResource(e, "turbochannel")
	if cfg.Serialized {
		b.memPort = b.channel
	} else {
		b.memPort = sim.NewResource(e, "memport")
	}
	return b
}

// Config returns the effective configuration (with defaults applied).
func (b *Bus) Config() Config { return b.cfg }

// CycleTime returns the duration of one bus cycle.
func (b *Bus) CycleTime() time.Duration {
	return time.Duration(int64(time.Second) / b.cfg.ClockHz)
}

// Cycles converts a cycle count to virtual time.
func (b *Bus) Cycles(n int) time.Duration { return time.Duration(n) * b.CycleTime() }

// WordsFor returns the number of bus words needed to carry n bytes.
func (b *Bus) WordsFor(n int) int { return (n + b.cfg.WordBytes - 1) / b.cfg.WordBytes }

// DMARead performs one DMA read transaction (an option card reading host
// memory — the transmit direction) of the given number of bytes,
// blocking p for the transaction's bus occupancy.
func (b *Bus) DMARead(p *sim.Proc, bytes int) {
	words := b.WordsFor(bytes)
	b.stats.DMAReadTxns++
	b.stats.DMAReadWords += int64(words)
	b.channel.Use(p, b.Cycles(b.cfg.DMAReadOverhead+words))
}

// DMAWrite performs one DMA write transaction (an option card writing
// host memory — the receive direction).
func (b *Bus) DMAWrite(p *sim.Proc, bytes int) {
	words := b.WordsFor(bytes)
	b.stats.DMAWriteTxns++
	b.stats.DMAWriteWords += int64(words)
	b.channel.Use(p, b.Cycles(b.cfg.DMAWriteOverhead+words))
}

// PIORead performs programmed-I/O reads of the given number of words by
// the host CPU from an option card (each word is its own transaction —
// this is why PIO reads across the TURBOchannel are so slow, §2.7).
func (b *Bus) PIORead(p *sim.Proc, words int) {
	b.stats.PIOWords += int64(words)
	b.channel.Use(p, b.Cycles(b.cfg.PIOReadCycles*words))
}

// PIOWrite performs programmed-I/O writes of the given number of words
// by the host CPU to an option card.
func (b *Bus) PIOWrite(p *sim.Proc, words int) {
	b.stats.PIOWords += int64(words)
	b.channel.Use(p, b.Cycles(b.cfg.PIOWriteCycles*words))
}

// MemCycles converts a memory-clock cycle count to virtual time.
func (b *Bus) MemCycles(n int) time.Duration {
	return time.Duration(n) * time.Duration(int64(time.Second)/b.cfg.MemClockHz)
}

// CPUMemRead accounts one CPU-initiated memory read transaction (a cache
// line fill or uncached load) of the given number of words. On a
// serialized machine it occupies the TURBOchannel.
func (b *Bus) CPUMemRead(p *sim.Proc, words int) {
	b.stats.CPUMemWords += int64(words)
	b.memPort.Use(p, b.MemCycles(b.cfg.MemReadOverhead+words))
}

// CPUMemWrite accounts one CPU-initiated memory write transaction
// (write-through traffic) of the given number of words.
func (b *Bus) CPUMemWrite(p *sim.Proc, words int) {
	b.stats.CPUMemWords += int64(words)
	b.memPort.Use(p, b.MemCycles(b.cfg.MemWriteOverhead+words))
}

// CPUOccupy models general CPU activity whose loads and stores occupy
// the memory path for d — on a serialized machine this steals
// TURBOchannel bandwidth from DMA, and conversely DMA stretches the
// CPU's effective memory access time (§4: "memory writes and cache
// fills that result from CPU activity reduce DMA performance").
func (b *Bus) CPUOccupy(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	b.memPort.Use(p, d)
}

// Stats returns a copy of the accumulated counters.
func (b *Bus) Stats() Stats { return b.stats }

// BusyTime returns total time the TURBOchannel was occupied.
func (b *Bus) BusyTime() time.Duration { return b.channel.BusyTime() }

// ResetStats zeroes counters and busy-time accounting.
func (b *Bus) ResetStats() {
	b.stats = Stats{}
	b.channel.ResetStats()
	if b.memPort != b.channel {
		b.memPort.ResetStats()
	}
}

// MaxDMAThroughputMbps returns the theoretical ceiling, in Mbps, for
// back-to-back DMA transactions of the given payload size — the
// arithmetic of §2.5.1, exposed for tests and reports.
func (b *Bus) MaxDMAThroughputMbps(bytes int, read bool) float64 {
	words := b.WordsFor(bytes)
	overhead := b.cfg.DMAWriteOverhead
	if read {
		overhead = b.cfg.DMAReadOverhead
	}
	busMbps := float64(b.cfg.ClockHz) * float64(b.cfg.WordBytes) * 8 / 1e6
	return float64(words) / float64(words+overhead) * busMbps
}
