package atm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// fuzzDelivery is one cell observed at an egress port, with the stamp
// the receiver saw it at — the full observable behaviour of the fabric.
type fuzzDelivery struct {
	port, lane int
	vci        VCI
	seq        uint32
	tag        byte // first payload byte, checked against the sender's pattern
	ce         bool // ECN mark set by the congested output queue
	at         sim.Time
}

// runSwitchSchedule replays one fuzz-derived schedule through a 3-port
// switch and returns everything observable: the delivery log and the
// per-port counters. Senders stage each cell's payload in a PayloadPool
// and free the handle after the ingress Send returns (the board's
// transmit discipline), so pool misuse — leak, double free, stale
// handle — panics loudly inside the run.
func runSwitchSchedule(t *testing.T, data []byte, perCell bool) ([]fuzzDelivery, []SwitchPortStats, int) {
	t.Helper()
	e := sim.NewEngine(99)
	defer e.Shutdown()
	// A tiny output queue so bursts tail-drop mid-PDU, splitting trains,
	// with a mark threshold below it so schedules also exercise the ECN
	// band between first-mark and tail-drop.
	sw := NewSwitch(e, 3, SwitchConfig{QueueCells: 8, MarkThreshold: 4, PerCellFabric: perCell})
	pool := NewPayloadPool()

	// VCI 10 and 11 start routed to ports 1 and 2; route-change ops
	// re-target them mid-run.
	routeOf := map[VCI]int{10: 1, 11: 2}
	for v, pt := range routeOf {
		if err := sw.Route(v, pt); err != nil {
			t.Fatal(err)
		}
	}

	var deliveries []fuzzDelivery
	for i := 1; i <= 2; i++ {
		port := i
		sw.Port(port).Egress().SetReceiver(func(c Cell, lane int) {
			deliveries = append(deliveries, fuzzDelivery{
				port: port, lane: lane, vci: c.VCI, seq: c.Seq,
				tag: c.Payload[0], ce: c.CE, at: e.Now(),
			})
		})
	}

	sent := 0
	e.Go("fuzz-tx", func(p *sim.Proc) {
		seq := map[VCI]uint32{}
		for _, op := range data {
			vci := VCI(10 + op&1)
			switch {
			case op&0xC0 == 0xC0:
				// Route change at a quiet point: re-target the VCI to the
				// other client port. Trains in flight keep their old port.
				next := 1
				if routeOf[vci] == 1 {
					next = 2
				}
				sw.Unroute(vci)
				if err := sw.Route(vci, next); err != nil {
					panic(err)
				}
				routeOf[vci] = next
			case op&0xC0 == 0x80:
				// Gap: let trains drain so the next burst starts fresh.
				p.Sleep(time.Duration(1+op&0x3F) * 10 * time.Microsecond)
			default:
				// Burst of 1–8 cells on one VCI through port 0's ingress.
				n := int(op>>1)&7 + 1
				for j := 0; j < n; j++ {
					h, buf := pool.Get()
					s := seq[vci]
					seq[vci] = s + 1
					buf[0] = byte(s) ^ byte(vci)
					c := Cell{VCI: vci, Seq: s, Len: CellPayload, Payload: *buf}
					sw.Port(0).Ingress().Send(p, c)
					pool.Put(h) // free on hand-off, as the board does
					sent++
				}
			}
		}
	})
	e.Run()

	if pool.Live() != 0 {
		t.Fatalf("pool leak: %d buffers live after quiesce", pool.Live())
	}
	stats := make([]SwitchPortStats, sw.NumPorts())
	for i := range stats {
		stats[i] = sw.Port(i).Stats()
	}
	return deliveries, stats, sent
}

// compareDeliveries requires the two machines' delivery logs to match per
// egress port: each port's receiver must see the same cells, in the same
// order, at the same instants. The interleaving of same-instant deliveries
// on *different* ports is not observable (the receivers are disjoint) and
// may legally permute between the two machines — the train walker and the
// per-cell arbiter schedule different event types, so tied instants break
// ties by insertion order.
func compareDeliveries(t *testing.T, train, percell []fuzzDelivery) {
	t.Helper()
	if len(train) != len(percell) {
		t.Fatalf("train delivered %d cells, per-cell fabric %d", len(train), len(percell))
	}
	for port := 1; port <= 2; port++ {
		var a, b []fuzzDelivery
		for _, d := range train {
			if d.port == port {
				a = append(a, d)
			}
		}
		for _, d := range percell {
			if d.port == port {
				b = append(b, d)
			}
		}
		if len(a) != len(b) {
			t.Fatalf("port %d: train delivered %d cells, per-cell fabric %d", port, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("port %d delivery %d differs:\ntrain:   %+v\npercell: %+v", port, i, a[i], b[i])
			}
		}
	}
}

// FuzzSwitchTrainPool drives fuzz-derived burst/gap/route-change
// schedules through the switch twice — train forwarding and the forced
// per-cell fabric — and requires identical behaviour: the same cells, in
// the same order, at the same simulated instants, with the same drop and
// high-water counters. Tiny queues force mid-train tail-drops (train
// splits) and route changes re-target mid-stream (train boundaries);
// payloads staged through the cell pool verify no handle is leaked,
// double-freed, or recycled while its bytes are still in flight.
func FuzzSwitchTrainPool(f *testing.F) {
	f.Add([]byte{0x07, 0x85, 0x0E, 0xC0, 0x06, 0x81, 0x0F})
	f.Add([]byte{0x0E, 0x0F, 0x0E, 0x0F, 0xC1, 0x0E, 0x0F, 0x86, 0x0E})
	f.Add([]byte{0xC0, 0xC1, 0x01, 0x00, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		train, trainStats, sent := runSwitchSchedule(t, data, false)
		percell, percellStats, _ := runSwitchSchedule(t, data, true)

		compareDeliveries(t, train, percell)
		for i := range trainStats {
			if trainStats[i] != percellStats[i] {
				t.Fatalf("port %d stats differ:\ntrain:   %+v\npercell: %+v", i, trainStats[i], percellStats[i])
			}
		}

		// Conservation: every cell offered at port 0 is forwarded or
		// dropped, and forwarded cells all reached a receiver intact.
		in := trainStats[0].In
		if in != int64(sent) {
			t.Fatalf("port 0 saw %d cells, sent %d", in, sent)
		}
		var fwd, dropped int64
		for _, st := range trainStats {
			fwd += st.Forwarded
			dropped += st.Dropped
		}
		if fwd+dropped != in {
			t.Fatalf("conservation: forwarded %d + dropped %d != in %d", fwd, dropped, in)
		}
		if int64(len(train)) != fwd {
			t.Fatalf("delivered %d cells but Forwarded = %d", len(train), fwd)
		}

		// Every Marked cell was accepted, so at quiesce each one must
		// have reached a receiver with its CE bit intact — the marks
		// counter and the delivered-CE count agree exactly.
		var marked, ceSeen int64
		for _, st := range trainStats {
			marked += st.Marked
		}
		for _, d := range train {
			if d.ce {
				ceSeen++
			}
		}
		if marked != ceSeen {
			t.Fatalf("Marked = %d but %d delivered cells carry CE", marked, ceSeen)
		}

		// Per-lane order and payload integrity: the fabric preserves FIFO
		// order per (port, lane, VCI) — striping interleaves sequence
		// numbers across lanes by design — so within one lane sequence
		// numbers strictly increase (drops allowed, duplicates and
		// reorders not), and each payload still carries its sender's
		// pattern.
		type flow struct {
			port, lane int
			vci        VCI
		}
		lastSeq := map[flow]int64{}
		for _, d := range train {
			fl := flow{d.port, d.lane, d.vci}
			if prev, ok := lastSeq[fl]; ok && int64(d.seq) <= prev {
				t.Fatalf("port %d lane %d VCI %d: seq %d arrived after %d", d.port, d.lane, d.vci, d.seq, prev)
			}
			lastSeq[fl] = int64(d.seq)
			if want := byte(d.seq) ^ byte(d.vci); d.tag != want {
				t.Fatalf("VCI %d seq %d payload tag %#x, want %#x (pool recycled in flight?)", d.vci, d.seq, d.tag, want)
			}
		}
	})
}

// TestSwitchTrainPoolSeeds replays the seed corpus as a plain test so
// the differential check runs under `go test` even without -fuzz.
func TestSwitchTrainPoolSeeds(t *testing.T) {
	seeds := [][]byte{
		{0x07, 0x85, 0x0E, 0xC0, 0x06, 0x81, 0x0F},
		{0x0E, 0x0F, 0x0E, 0x0F, 0xC1, 0x0E, 0x0F, 0x86, 0x0E},
		{0xC0, 0xC1, 0x01, 0x00, 0x80, 0x01},
	}
	for i, data := range seeds {
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			train, trainStats, _ := runSwitchSchedule(t, data, false)
			percell, percellStats, _ := runSwitchSchedule(t, data, true)
			compareDeliveries(t, train, percell)
			for j := range trainStats {
				if trainStats[j] != percellStats[j] {
					t.Fatalf("port %d stats differ", j)
				}
			}
		})
	}
}
