package atm

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultSwitchQueueCells is the default per-output-port cell queue
// depth. It is sized like the OSIRIS on-board receive FIFO family:
// enough to absorb transient fan-in bursts, small enough that sustained
// overload is visible as drops rather than unbounded latency.
const DefaultSwitchQueueCells = 256

// SwitchConfig configures a cell switch.
type SwitchConfig struct {
	// Width is the number of striped lanes per port (default
	// StripeWidth). Every attached node must stripe at the same width.
	Width int
	// Link configures the physical links on both sides of every port
	// (the Index field is overridden per lane).
	Link LinkConfig
	// QueueCells bounds each output port's cell queue (default
	// DefaultSwitchQueueCells). Cells routed to a full queue are
	// dropped and counted in the port's Dropped statistic.
	QueueCells int
	// Fault injects faults at every output port's queue entry (one
	// injector per port, each with its own derived RNG stream) —
	// modelling a flaky fabric element rather than a flaky link. The
	// per-lane link fault plane is configured on Link.Fault instead.
	Fault *fault.Config
	// MarkThreshold enables ECN-style congestion marking: when a cell
	// enters an output queue whose occupancy (cells ahead of it) is at
	// least this threshold, the switch sets the cell's CE bit and counts
	// it in the port's Marked statistic. Zero disables marking (the
	// default — legacy behavior). The train-forwarding fast path and the
	// per-cell fallback mark identically; the differential fuzz oracle
	// pins this.
	MarkThreshold int
	// PerCellFabric forces every output port onto the per-cell
	// queue/arbiter machine even when the train-forwarding fast path
	// would apply. The two machines produce byte-identical results; the
	// knob exists so CI can diff them and so anomalies can be bisected.
	PerCellFabric bool
}

func (c SwitchConfig) withDefaults() SwitchConfig {
	if c.Width == 0 {
		c.Width = StripeWidth
	}
	if c.QueueCells == 0 {
		c.QueueCells = DefaultSwitchQueueCells
	}
	return c
}

// SwitchPortStats counts one port's activity. Input-side counters (In,
// NoRoute) describe cells arriving from the attached node; output-side
// counters (Forwarded, Dropped) describe cells routed *to* this port.
type SwitchPortStats struct {
	In        int64 // cells received from the attached node
	NoRoute   int64 // input cells discarded for lack of a VCI route
	Forwarded int64 // cells transmitted on this port's egress lanes
	Dropped   int64 // cells dropped on egress-queue overflow
	Marked    int64 // cells CE-marked on entry past MarkThreshold occupancy
	HighWater int64 // maximum egress-queue occupancy observed (cells)
}

// laneCell is a queued cell tagged with its stripe lane. enq is the
// enqueue instant, stamped only while the port's queue-delay sketch is
// live (telemetry must not change struct traffic when disabled — the
// extra field itself is inert).
type laneCell struct {
	c    Cell
	lane int
	enq  sim.Time
}

// Port forwarding modes. A port latches its mode on the first cell
// routed to it and never mixes machines afterwards: train mode
// precomputes the whole queue→arbiter→link future of each cell at
// arrival, so a mid-run switch to the event-driven machine would
// double-account the in-flight tail.
const (
	vModeUnlatched = int8(iota)
	vModeTrain
	vModePerCell
)

// vPoint is the precomputed future of one virtually-forwarded cell:
// enq is its arrival (enqueue) instant, pop the instant the egress
// arbiter dequeues it, acc the instant the egress link accepts it (the
// instant the arbiter's blocking Send would have returned and counted
// it Forwarded). Within one port pop and acc are nondecreasing in
// arrival order, which is what lets a ring with monotone settle
// cursors replay the per-cell machine's bookkeeping exactly.
type vPoint struct {
	enq sim.Time
	pop sim.Time
	acc sim.Time
}

// SwitchPort is one bidirectional port of a Switch: an ingress stripe
// group the attached node transmits on, an egress stripe group it
// receives on, and a bounded FIFO cell queue feeding the egress lanes.
type SwitchPort struct {
	index int
	eng   *sim.Engine
	// now is the quiesced-clock source for snapshot settling (Stats,
	// QueueLen): the engine clock for a serial fabric, the shard group's
	// latest clock for a sharded one. The distinction matters at a
	// horizon cut — the fabric engine's own clock stops at its last
	// executed event, which in a sharded run can lag the global quiesce
	// instant, and settling short would credit fewer in-flight forwards
	// than the serial run counts.
	now   func() sim.Time
	comp  string // trace track label, precomputed (Emit stays alloc-free)
	in    *StripeGroup
	out   *StripeGroup
	queue *sim.Chan[laneCell]
	stats SwitchPortStats
	inj   *fault.Injector // output-side injector (nil when off)

	// mQDelay is the egress queueing-delay sketch (µs), nil unless
	// RegisterMetrics installed one.
	mQDelay *metrics.Sketch

	// Train-forwarding (virtual egress) state; see Switch.trainForward.
	vMode int8
	vBusy sim.Time // acc of the last virtually-sent cell (arbiter busy-until)
	// vq is a ring of pending vPoints in arrival order. Entries before
	// the vqPop cursor have been virtually dequeued, before vqObs have
	// fed the queue-delay sketch; entries retire off the head once
	// their acc instant has passed and Forwarded is credited.
	vq            []vPoint
	vqHead, vqLen int
	vqPop, vqObs  int
}

// Index returns the port number.
func (pt *SwitchPort) Index() int { return pt.index }

// Ingress returns the node-to-switch stripe group; the attached node's
// board transmits on its links (Board.AttachTxLinks(pt.Ingress().Links())).
func (pt *SwitchPort) Ingress() *StripeGroup { return pt.in }

// Egress returns the switch-to-node stripe group; the attached node's
// board subscribes to it (Board.AttachRxLinks(pt.Egress())).
func (pt *SwitchPort) Egress() *StripeGroup { return pt.out }

// Stats returns a snapshot of the port's counters. Like Link.Stats, the
// snapshot is only coherent between engine steps — read it after the
// engine has quiesced (Run returned or Shutdown), not while events are
// being executed by another proc.
func (pt *SwitchPort) Stats() SwitchPortStats {
	if pt.vMode == vModeTrain {
		// Credit every virtual forward whose accept instant has passed:
		// the per-cell machine counts Forwarded when the arbiter's Send
		// returns, so a horizon-cut run must not count the in-flight tail.
		pt.settle(pt.now(), true)
	}
	return pt.stats
}

// Injector exposes the port's output-side fault injector (nil when
// fault injection is off).
func (pt *SwitchPort) Injector() *fault.Injector { return pt.inj }

// QueueLen reports the cells currently waiting in the output queue. In
// train mode the queue is virtual: the count is the number of accepted
// cells whose precomputed dequeue instant is still ahead of the
// engine's clock — identical to what the event-driven queue would hold
// at the same quiesced instant.
func (pt *SwitchPort) QueueLen() int {
	if pt.vMode == vModeTrain {
		pt.settle(pt.now(), true)
		return pt.vqLen - pt.vqPop
	}
	return pt.queue.Len()
}

// drain is the port's egress arbiter: cells leave the bounded queue in
// strict FIFO arrival order (no per-flow scheduling) and are serialized
// onto the lane they arrived on. Sending blocks while that lane's
// transmit FIFO is full, so a congested lane backpressures the queue —
// head-of-line blocking included, as in a real FIFO output port.
func (pt *SwitchPort) drain(p *sim.Proc) {
	for {
		lc := pt.queue.Recv(p)
		if pt.mQDelay != nil {
			pt.mQDelay.Observe((pt.eng.Now() - lc.enq).Microseconds())
		}
		if pt.eng.Recording() {
			pt.eng.Emit(sim.TraceEvent{At: pt.eng.Now(), Ph: 'C', Comp: pt.comp, Cat: "q", Name: "queue", Arg: int64(pt.queue.Len())})
		}
		pt.out.Link(lc.lane).Send(p, lc.c)
		pt.stats.Forwarded++
	}
}

// SwitchStats aggregates counters across all ports. HighWater is the
// maximum across ports, the rest are sums.
type SwitchStats struct {
	In        int64
	NoRoute   int64
	Forwarded int64
	Dropped   int64
	Marked    int64
	HighWater int64
}

// Switch is an N-port VCI-routed cell switch: the fabric that joins a
// cluster of OSIRIS hosts, generalizing the paper's back-to-back
// apparatus. Routing uses exactly the early-demultiplexing key of §3.1
// — the VCI — so one routing table serves every flow.
//
// Each cell keeps its stripe lane across the switch: a cell that
// arrives on ingress lane l leaves on egress lane l, and per-lane FIFO
// order is preserved end to end. That invariant is what lets the
// receiving board's four concurrent AAL5 reassemblies (§2.6 strategy
// two) place cells from many senders correctly even as their flows
// interleave in the fabric.
type Switch struct {
	eng    *sim.Engine
	cfg    SwitchConfig
	ports  []*SwitchPort
	routes map[VCI]int
	// inRoutes is the per-input-port route table (RouteFrom), consulted
	// before the wildcard table — real VCI switching is per (input port,
	// VCI), which is what lets one VCI carry a bidirectional connection:
	// data one way and acknowledgements the other, each leg routed by
	// where the cell came from. Lazily allocated; nil costs the hot
	// forwarding path nothing.
	inRoutes map[inPortVCI]int
	// linkXID numbers the switch's links for the canonical tie-break
	// when the fabric has no shard group (serial run); it mirrors the
	// ShardGroup.NextXID sequence, so a link gets the same channel id at
	// any shard count.
	linkXID uint64
}

// inPortVCI keys the per-input-port route table.
type inPortVCI struct {
	in int
	v  VCI
}

// NewSwitch creates a switch with nports ports and starts one egress
// arbiter process per port.
func NewSwitch(e *sim.Engine, nports int, cfg SwitchConfig) *Switch {
	return newSwitch(nil, e, nil, nports, cfg)
}

// NewShardedSwitch creates a switch whose fabric runs on engine e of
// group g while the node attached to port i lives on nodeEng[i]. Ports
// whose node engine is e itself get ordinary local links; every other
// port's ingress and egress stripe groups become cross-shard links, so
// the port is a shard boundary with the link PropDelay as lookahead.
func NewShardedSwitch(g *sim.ShardGroup, e *sim.Engine, nodeEng []*sim.Engine, cfg SwitchConfig) *Switch {
	return newSwitch(g, e, nodeEng, len(nodeEng), cfg)
}

// newSwitch is the shared builder. nodeEng may be nil (all ports local
// to e); otherwise nodeEng[i] is port i's far-end engine.
func newSwitch(g *sim.ShardGroup, e *sim.Engine, nodeEng []*sim.Engine, nports int, cfg SwitchConfig) *Switch {
	if nports < 2 {
		panic("atm: a switch needs at least 2 ports")
	}
	cfg = cfg.withDefaults()
	sw := &Switch{eng: e, cfg: cfg, routes: make(map[VCI]int)}
	for i := 0; i < nports; i++ {
		inCfg, outCfg := cfg.Link, cfg.Link
		if site := cfg.Link.FaultSite; site == "" {
			// Give every lane of every port its own injection stream.
			inCfg.FaultSite = fmt.Sprintf("sw/in%d", i)
			outCfg.FaultSite = fmt.Sprintf("sw/out%d", i)
		} else {
			inCfg.FaultSite = fmt.Sprintf("%s/in%d", site, i)
			outCfg.FaultSite = fmt.Sprintf("%s/out%d", site, i)
		}
		far := e
		if nodeEng != nil && nodeEng[i] != nil {
			far = nodeEng[i]
		}
		pt := &SwitchPort{
			index: i,
			eng:   e,
			now:   e.Now,
			comp:  fmt.Sprintf("sw-port%d", i),
			queue: sim.NewChan[laneCell](e, cfg.QueueCells),
			inj:   fault.New(e, fmt.Sprintf("sw/port%d", i), cfg.Fault),
		}
		if g != nil {
			pt.now = g.Now
		}
		if far == e {
			pt.in = NewStripeGroup(e, cfg.Width, inCfg)
			pt.out = NewStripeGroup(e, cfg.Width, outCfg)
			// Stamp the local links with the channel ids the cross-shard
			// constructor would have assigned (same construction order:
			// ingress lanes then egress lanes, port by port). Delivery
			// tie-break order among the fabric's links is then a function
			// of the topology alone — a serial run, a sharded run, and a
			// run where this port happens to share the fabric's shard all
			// order same-instant cells from different links identically.
			// Without this, symmetric fan-in workloads (whose senders
			// phase-lock on the egress serialization grid) diverge across
			// shard counts.
			for _, grp := range [...]*StripeGroup{pt.in, pt.out} {
				for _, l := range grp.links {
					if g != nil {
						l.xid = g.NextXID()
					} else {
						sw.linkXID++
						l.xid = sw.linkXID
					}
				}
			}
		} else {
			// Ingress carries node → switch, egress switch → node. The
			// node's board paces sends on its own shard; deliveries into
			// sw.forward and the board's receive path cross at barriers.
			pt.in = NewCrossStripeGroup(g, far, e, cfg.Width, inCfg)
			pt.out = NewCrossStripeGroup(g, e, far, cfg.Width, outCfg)
		}
		in := i
		pt.in.SetReceiver(func(c Cell, lane int) { sw.forward(in, c, lane) })
		sw.ports = append(sw.ports, pt)
		e.Go(fmt.Sprintf("switch-port%d", i), pt.drain)
	}
	return sw
}

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// Port returns port i.
func (sw *Switch) Port(i int) *SwitchPort {
	if i < 0 || i >= len(sw.ports) {
		panic(fmt.Sprintf("atm: switch port %d out of range [0,%d)", i, len(sw.ports)))
	}
	return sw.ports[i]
}

// Route installs v → port: cells carrying VCI v, from any input port,
// are forwarded to the given output port. Registering a VCI that
// already has a route is an error — never a silent re-route — because a
// collision would misdeliver one connection's cells into another's
// reassembly state.
func (sw *Switch) Route(v VCI, port int) error {
	if port < 0 || port >= len(sw.ports) {
		return fmt.Errorf("atm: route %d → port %d out of range [0,%d)", v, port, len(sw.ports))
	}
	if prev, ok := sw.routes[v]; ok {
		return fmt.Errorf("atm: VCI %d already routed to port %d", v, prev)
	}
	sw.routes[v] = port
	return nil
}

// RouteFrom installs (in, v) → out: cells carrying VCI v that arrive on
// input port in are forwarded to out, overriding any wildcard Route for
// v. Like Route, re-registering an installed (in, v) pair is an error.
// Per-input routes are what a bidirectional connection on a single VCI
// needs: RouteFrom(a, v, b) plus RouteFrom(b, v, a) carries data one
// way and acknowledgements the other.
func (sw *Switch) RouteFrom(in int, v VCI, out int) error {
	if in < 0 || in >= len(sw.ports) {
		return fmt.Errorf("atm: route from port %d out of range [0,%d)", in, len(sw.ports))
	}
	if out < 0 || out >= len(sw.ports) {
		return fmt.Errorf("atm: route %d → port %d out of range [0,%d)", v, out, len(sw.ports))
	}
	if sw.inRoutes == nil {
		sw.inRoutes = make(map[inPortVCI]int)
	}
	key := inPortVCI{in, v}
	if prev, ok := sw.inRoutes[key]; ok {
		return fmt.Errorf("atm: VCI %d from port %d already routed to port %d", v, in, prev)
	}
	sw.inRoutes[key] = out
	return nil
}

// Unroute removes v's route. Removing an unrouted VCI is a no-op.
func (sw *Switch) Unroute(v VCI) { delete(sw.routes, v) }

// UnrouteFrom removes the per-input route (in, v), if any.
func (sw *Switch) UnrouteFrom(in int, v VCI) { delete(sw.inRoutes, inPortVCI{in, v}) }

// RouteOf reports the output port v is routed to.
func (sw *Switch) RouteOf(v VCI) (port int, ok bool) {
	port, ok = sw.routes[v]
	return port, ok
}

// forward runs in link-delivery (event) context: look the cell's VCI up
// and enqueue it on the output port, dropping on overflow. It must not
// block, so the queue is entered with TrySend — exactly the discipline
// of the boards' own receive FIFOs.
func (sw *Switch) forward(inPort int, c Cell, lane int) {
	ip := sw.ports[inPort]
	ip.stats.In++
	out, ok := sw.routes[c.VCI]
	if sw.inRoutes != nil {
		if o, found := sw.inRoutes[inPortVCI{inPort, c.VCI}]; found {
			out, ok = o, true
		}
	}
	if !ok {
		ip.stats.NoRoute++
		if sw.eng.Tracing() {
			sw.eng.Tracef("drop: switch no route vci=%d in-port=%d", c.VCI, inPort)
		}
		return
	}
	op := sw.ports[out]
	if op.vMode == vModeUnlatched {
		op.latchMode(sw.cfg.PerCellFabric)
	}
	if op.vMode == vModeTrain {
		sw.trainForward(op, c, lane)
		return
	}
	act := op.inj.Apply(sw.eng.Now())
	if act.Drop {
		return // counted by the injector
	}
	if act.CorruptBit >= 0 && c.Len > 0 {
		bit := act.CorruptBit % (8 * c.Len)
		c.Payload[bit/8] ^= 1 << (bit % 8)
	}
	lc := laneCell{c: c, lane: lane}
	if act.Delay > 0 {
		// Bounded reordering: the delayed cell re-enters the queue later,
		// letting cells behind it overtake.
		sw.eng.AfterCall(act.Delay, delayedEnqueueCB, &delayedCell{sw: sw, op: op, lc: lc})
	} else {
		sw.enqueue(op, lc)
	}
	if act.Duplicate {
		sw.enqueue(op, lc)
	}
}

// enqueue enters one cell into an output port's bounded queue (event
// context, TrySend discipline), maintaining the drop and occupancy
// high-water counters.
func (sw *Switch) enqueue(op *SwitchPort, lc laneCell) {
	if op.mQDelay != nil {
		lc.enq = sw.eng.Now()
	}
	// CE decision uses the occupancy ahead of this cell, the same value
	// the train path derives from its settled cursors; the mark goes on
	// before TrySend copies the cell in, but is only counted when the
	// cell is actually accepted (a full queue drops, never marks).
	marked := false
	if t := sw.cfg.MarkThreshold; t > 0 && op.queue.Len() >= t {
		lc.c.CE = true
		marked = true
	}
	if !op.queue.TrySend(lc) {
		op.stats.Dropped++
		if sw.eng.Tracing() {
			sw.eng.Tracef("drop: switch port %d queue overflow vci=%d", op.index, lc.c.VCI)
		}
		if sw.eng.Recording() {
			sw.eng.Emit(sim.TraceEvent{At: sw.eng.Now(), Ph: 'i', Comp: op.comp, Cat: "drop", Name: "queue-overflow", Arg: int64(lc.c.VCI)})
		}
		return
	}
	if marked {
		op.stats.Marked++
	}
	if n := int64(op.queue.Len()); n > op.stats.HighWater {
		op.stats.HighWater = n
	}
	if sw.eng.Recording() {
		sw.eng.Emit(sim.TraceEvent{At: sw.eng.Now(), Ph: 'C', Comp: op.comp, Cat: "q", Name: "queue", Arg: int64(op.queue.Len())})
	}
}

// latchMode decides, once per port, whether cells routed to this port
// take the train-forwarding fast path or the per-cell queue machine.
// Anything that observes or perturbs cells one at a time — an
// output-side fault injector, debug tracing, trace recording, or an
// egress link that draws randomness per cell — forces per-cell mode;
// so does the explicit PerCellFabric knob.
func (pt *SwitchPort) latchMode(forcePerCell bool) {
	pt.vMode = vModePerCell
	if forcePerCell || pt.inj != nil || pt.eng.Tracing() || pt.eng.Recording() {
		return
	}
	for _, l := range pt.out.links {
		if !l.det {
			return
		}
	}
	pt.vMode = vModeTrain
	// Capacity: the virtual queue holds at most QueueCells undequeued
	// entries plus one dequeued-but-unaccepted straggler; headroom
	// beyond that only guards the ring against a model bug.
	pt.vq = make([]vPoint, pt.queue.Cap()+8)
}

// trainForward is the zero-alloc fast path: instead of enqueueing an
// event-driven cell, compute the cell's entire future arithmetically —
// dequeue instant, link accept instant, delivery stamp — and hand it
// to the egress link as a scheduled send. The recurrence mirrors the
// per-cell machine exactly: the single egress arbiter pops the next
// cell as soon as it is both present (arrival a) and the arbiter is
// free (previous accept u), so pop = max(u_prev, a); the link then
// reports the accept instant for this cell.
//
// Tie discipline: at any tied instant the engine executes link
// arrivals before the arbiter's resume events (a proc resumed by a
// Cond.Signal at t runs via an event scheduled *at* t, after the
// arrival that signalled it). Hence settling at an arrival uses strict
// inequalities — a pop or accept stamped exactly now has not happened
// yet — while settling after the run quiesces uses ≤.
func (sw *Switch) trainForward(op *SwitchPort, c Cell, lane int) {
	now := sw.eng.Now()
	op.settle(now, false)
	occ := op.vqLen - op.vqPop
	if occ >= sw.cfg.QueueCells {
		op.stats.Dropped++
		// Tracing/Recording are off in train mode (latch condition), so
		// the per-cell drop path's trace emissions have no counterpart.
		return
	}
	if t := sw.cfg.MarkThreshold; t > 0 && occ >= t {
		// Same occupancy value the per-cell machine would see at its
		// TrySend, so the two fabrics mark the same cells. Mutate before
		// SendScheduled — the cell travels by value from here on.
		c.CE = true
		op.stats.Marked++
	}
	pop := op.vBusy
	if now > pop {
		pop = now
	}
	acc := op.out.Link(lane).SendScheduled(pop, c)
	op.vBusy = acc
	op.vqPush(vPoint{enq: now, pop: pop, acc: acc})
	if n := int64(occ + 1); n > op.stats.HighWater {
		op.stats.HighWater = n
	}
}

// settle advances the port's virtual bookkeeping to now. closed=false
// means "called from an arrival event at now": pops and accepts
// stamped exactly now have not executed yet, so thresholds are strict.
// closed=true means the engine has quiesced at now and everything
// stamped ≤ now is done. Idempotent; all cursors are monotone.
func (pt *SwitchPort) settle(now sim.Time, closed bool) {
	for pt.vqObs < pt.vqLen {
		e := pt.vqAt(pt.vqObs)
		if e.pop > now || (!closed && e.pop == now) {
			break
		}
		if pt.mQDelay != nil {
			pt.mQDelay.Observe((e.pop - e.enq).Microseconds())
		}
		pt.vqObs++
	}
	for pt.vqPop < pt.vqLen {
		e := pt.vqAt(pt.vqPop)
		if e.pop > now || (!closed && e.pop == now) {
			break
		}
		pt.vqPop++
	}
	for pt.vqLen > 0 {
		e := pt.vqAt(0)
		if e.acc > now || (!closed && e.acc == now) {
			break
		}
		// acc ≥ pop, so a retiring entry has already passed both
		// cursors above; shift them with the head.
		pt.stats.Forwarded++
		pt.vqHead++
		if pt.vqHead == len(pt.vq) {
			pt.vqHead = 0
		}
		pt.vqLen--
		pt.vqPop--
		pt.vqObs--
	}
}

// vqAt returns the i-th pending vPoint in arrival order.
func (pt *SwitchPort) vqAt(i int) *vPoint {
	j := pt.vqHead + i
	if j >= len(pt.vq) {
		j -= len(pt.vq)
	}
	return &pt.vq[j]
}

func (pt *SwitchPort) vqPush(e vPoint) {
	if pt.vqLen == len(pt.vq) {
		// Unreachable if the occupancy model is right; grow rather than
		// corrupt the ring so a bug surfaces as a test diff, not chaos.
		grown := make([]vPoint, 2*len(pt.vq))
		for i := 0; i < pt.vqLen; i++ {
			grown[i] = *pt.vqAt(i)
		}
		pt.vq = grown
		pt.vqHead = 0
	}
	*pt.vqAt(pt.vqLen) = e
	pt.vqLen++
}

// delayedCell carries a reorder-delayed cell to its deferred enqueue.
type delayedCell struct {
	sw *Switch
	op *SwitchPort
	lc laneCell
}

func delayedEnqueueCB(a any) {
	d := a.(*delayedCell)
	d.sw.enqueue(d.op, d.lc)
}

// Stats sums the per-port counters. The same snapshot discipline as
// SwitchPort.Stats applies.
func (sw *Switch) Stats() SwitchStats {
	var s SwitchStats
	for _, pt := range sw.ports {
		ps := pt.Stats()
		s.In += ps.In
		s.NoRoute += ps.NoRoute
		s.Forwarded += ps.Forwarded
		s.Dropped += ps.Dropped
		s.Marked += ps.Marked
		if ps.HighWater > s.HighWater {
			s.HighWater = ps.HighWater
		}
	}
	return s
}

// RegisterMetrics registers the switch's telemetry under prefix: per
// port, the input/route/forward/drop counters and queue high-water as
// snapshot-time samples of the existing stats (zero hot-path cost),
// plus a live egress queueing-delay sketch (µs, p50/p90/p99). All are
// pure functions of simulated behaviour, hence canonical. Call before
// the run starts; a nil registry is a no-op.
func (sw *Switch) RegisterMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	for _, pt := range sw.ports {
		pt := pt
		p := fmt.Sprintf("%s/port%d", prefix, pt.index)
		// Read through Stats(), not pt.stats: in train mode Stats settles
		// the virtual bookkeeping — crediting Forwarded and flushing
		// pending queue-delay observations into the sketch — and samples
		// are evaluated in registration order, before the sketch is read.
		r.Sample(p+"/in", metrics.KindCounter, func() int64 { return pt.Stats().In })
		r.Sample(p+"/no_route", metrics.KindCounter, func() int64 { return pt.Stats().NoRoute })
		r.Sample(p+"/forwarded", metrics.KindCounter, func() int64 { return pt.Stats().Forwarded })
		r.Sample(p+"/dropped", metrics.KindCounter, func() int64 { return pt.Stats().Dropped })
		if sw.cfg.MarkThreshold > 0 {
			// Registered only when marking is on, so the committed
			// BENCH_metrics.json snapshots (taken with marking off) keep
			// their exact name set.
			r.Sample(p+"/marked", metrics.KindCounter, func() int64 { return pt.Stats().Marked })
		}
		r.Sample(p+"/queue_high_water", metrics.KindHighWater, func() int64 { return pt.Stats().HighWater })
		pt.mQDelay = r.Quantiles(p+"/queue_delay_us", 0.5, 0.9, 0.99)
	}
}

// FaultStats sums the per-port injector counters (zero when fault
// injection is off).
func (sw *Switch) FaultStats() fault.Stats {
	var s fault.Stats
	for _, pt := range sw.ports {
		s.Add(pt.inj.Stats())
	}
	return s
}
