// Package atm models the ATM substrate beneath the OSIRIS adaptor: 53-byte
// cells carrying 44-byte payloads (the AAL overhead of §2.5 costs 4 bytes
// of the standard 48-byte payload), an AAL5-style trailer for PDU
// delimitation and error detection, cell-level striping over four
// 155 Mbps links, and the bounded "skew" misordering the AURORA network
// introduced (§2.6).
package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// CellPayload is the usable payload per cell: 44 bytes, because the
	// AAL header consumes 4 of the standard 48 (§2.5).
	CellPayload = 44
	// CellSize is the on-the-wire size of one cell.
	CellSize = 53
	// TrailerSize is the AAL5-style trailer carried in the final cell of
	// every PDU: 4 bytes of length and 4 of CRC-32.
	TrailerSize = 8
	// StripeWidth is the number of physical links striped into one
	// logical 622 Mbps channel.
	StripeWidth = 4
)

// VCI is a virtual circuit identifier. The x-kernel treats VCIs as an
// abundant resource, binding one per path/connection (§3.1).
type VCI uint16

// Cell is one ATM cell as the OSIRIS hardware sees it: the header fields
// the receive FIFO strips (VCI, AAL information) plus the payload.
type Cell struct {
	VCI VCI
	// EOM is the AAL5 framing bit. Under striping it is set on the last
	// cell of the PDU *on each physical link*, so the receiver can run
	// four concurrent AAL5 reassemblies (§2.6 strategy two).
	EOM bool
	// Last marks the very last cell of the PDU — the "one additional
	// framing bit in the ATM header" of §2.6, needed so PDUs shorter
	// than the stripe width still terminate.
	Last bool
	// CE is the congestion-experienced mark (the ATM EFCI bit, the
	// moral ancestor of IP ECN): a switch output port sets it when the
	// cell entered a queue whose occupancy had crossed the configured
	// mark threshold. The receiving transport echoes it back so senders
	// reduce their window before the queue reaches tail drop.
	CE bool
	// Seq is the cell's index within its PDU, used only by the
	// sequence-number reassembly strategy (§2.6 strategy one).
	Seq uint32
	// Len is the number of valid payload bytes. It is CellPayload for
	// every cell in normal operation; mid-PDU partial cells appear only
	// in the no-boundary-stop ablation of §2.5.2.
	Len     int
	Payload [CellPayload]byte
}

// Trailer is the AAL5-style PDU trailer: the true PDU length (the rest of
// the final cell is padding) and a CRC-32 over the PDU contents.
type Trailer struct {
	Length uint32
	CRC    uint32
}

var crcTable = crc32.MakeTable(crc32.IEEE)

// Checksum returns the CRC-32 the trailer must carry for pdu.
func Checksum(pdu []byte) uint32 { return crc32.Checksum(pdu, crcTable) }

// CellsFor returns the number of cells needed to carry a PDU of n bytes
// plus its trailer.
func CellsFor(n int) int { return (n + TrailerSize + CellPayload - 1) / CellPayload }

// PutTrailer encodes tr into the final TrailerSize bytes of buf.
func PutTrailer(buf []byte, tr Trailer) {
	binary.BigEndian.PutUint32(buf[len(buf)-8:], tr.Length)
	binary.BigEndian.PutUint32(buf[len(buf)-4:], tr.CRC)
}

// ParseTrailer decodes the trailer from the final TrailerSize bytes of buf.
func ParseTrailer(buf []byte) Trailer {
	return Trailer{
		Length: binary.BigEndian.Uint32(buf[len(buf)-8:]),
		CRC:    binary.BigEndian.Uint32(buf[len(buf)-4:]),
	}
}

// Segment splits pdu into cells for transmission striped across width
// links (width 1 means no striping). The final cell carries zero padding
// and the trailer. When withSeq is set each cell also carries its index,
// for the sequence-number reassembly strategy.
//
// Framing: EOM is set on the last cell assigned to each link; Last on
// the final cell overall.
func Segment(vci VCI, pdu []byte, width int, withSeq bool) []Cell {
	if width <= 0 {
		panic("atm: Segment width must be positive")
	}
	n := CellsFor(len(pdu))
	padded := make([]byte, n*CellPayload)
	copy(padded, pdu)
	PutTrailer(padded, Trailer{Length: uint32(len(pdu)), CRC: Checksum(pdu)})

	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		c := &cells[i]
		c.VCI = vci
		c.Len = CellPayload
		copy(c.Payload[:], padded[i*CellPayload:(i+1)*CellPayload])
		if withSeq {
			c.Seq = uint32(i)
		}
		// The last cell on link (i % width) is the one with the largest
		// index congruent to that link; equivalently, cells in the final
		// min(n, width) positions are each some link's last.
		if n-i <= width {
			c.EOM = true
		}
	}
	cells[n-1].Last = true
	return cells
}

// Errors returned by Reassemble.
var (
	ErrBadLength = errors.New("atm: trailer length inconsistent with cell count")
	ErrBadCRC    = errors.New("atm: CRC mismatch")
	ErrNoCells   = errors.New("atm: no cells")
)

// Reassemble reconstructs a PDU from its cells in transmission order.
// It is the pure functional inverse of Segment, used by tests and by the
// simple (non-striped) reassembly path; the skew-tolerant stateful
// reassemblers live in the board package.
func Reassemble(cells []Cell) (VCI, []byte, error) {
	if len(cells) == 0 {
		return 0, nil, ErrNoCells
	}
	var buf []byte
	for i := range cells {
		buf = append(buf, cells[i].Payload[:cells[i].Len]...)
	}
	if len(buf) < TrailerSize {
		return 0, nil, ErrBadLength
	}
	tr := ParseTrailer(buf)
	if int(tr.Length) > len(buf)-TrailerSize {
		return 0, nil, fmt.Errorf("%w: length %d with %d payload bytes", ErrBadLength, tr.Length, len(buf))
	}
	pdu := buf[:tr.Length]
	if Checksum(pdu) != tr.CRC {
		return 0, nil, ErrBadCRC
	}
	return cells[0].VCI, pdu, nil
}
