package atm

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// DefaultLinkRate is the line rate of one physical link: 155 Mbps
// (OC-3c). Four of them stripe into the 622 Mbps logical channel.
const DefaultLinkRate = 155_000_000

// SkewModel produces the extra delay experienced by each cell on each
// physical link. Per-link FIFO order is enforced by the Link regardless
// of the delays returned, matching §2.6: "cells transmitted on a given
// physical link will arrive in order relative to each other, but may be
// delayed relative to cells sent on other links."
type SkewModel interface {
	// Delay returns the additional latency for the next cell on link.
	Delay(link int, rng *rand.Rand) time.Duration
}

// NoSkew delays nothing: all links behave identically (the AURORA
// single-fiber case eliminating path-length skew).
type NoSkew struct{}

// Delay implements SkewModel.
func (NoSkew) Delay(int, *rand.Rand) time.Duration { return 0 }

// ConstantSkew gives each link a fixed extra delay — differing physical
// path lengths or multiplexing equipment (§2.6 causes 1 and 2).
type ConstantSkew struct {
	PerLink []time.Duration
}

// Delay implements SkewModel.
func (s ConstantSkew) Delay(link int, _ *rand.Rand) time.Duration {
	if link < len(s.PerLink) {
		return s.PerLink[link]
	}
	return 0
}

// QueueingSkew adds a uniformly distributed random delay in [0, Max] per
// cell — distinct queueing delays at distinct switch ports (§2.6 cause
// 3, the unbounded one).
type QueueingSkew struct {
	Max time.Duration
}

// Delay implements SkewModel.
func (s QueueingSkew) Delay(_ int, rng *rand.Rand) time.Duration {
	if s.Max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(s.Max) + 1))
}

// LinkConfig configures one physical link.
type LinkConfig struct {
	RateBps   int64         // line rate (default DefaultLinkRate)
	PropDelay time.Duration // propagation delay (default 1µs)
	FIFODepth int           // transmit-side FIFO cells (default 4)
	Index     int           // link index within its stripe group
	Skew      SkewModel     // nil means NoSkew
	// LossRate is the probability that a cell is lost in the network
	// (drawn per cell from the engine's seeded source). The paper's
	// premise: "the underlying network is not reliable" (§2.3).
	LossRate float64
	// Fault composes the full fault plane — burst loss, corruption,
	// duplication, bounded reordering, down windows — on this link. The
	// injector draws from a stream derived from (seed, FaultSite, link
	// index), never from the engine's main RNG, so enabling it leaves
	// the LossRate/skew draw order untouched.
	Fault *fault.Config
	// FaultSite names the injection site (the link index is appended);
	// distinct links sharing a config must get distinct sites.
	FaultSite string
}

// deterministic reports whether the configuration draws no randomness
// per cell, so the link can compute every serialization and delivery
// time arithmetically. Only the skew models known to ignore the RNG
// qualify; a custom SkewModel conservatively falls back to the paced
// per-cell event machine.
func (cfg LinkConfig) deterministic() bool {
	if cfg.LossRate > 0 || cfg.Fault != nil {
		return false
	}
	switch cfg.Skew.(type) {
	case NoSkew, ConstantSkew:
		return true
	}
	return false
}

// DrawsEngineRand reports whether the configuration consumes the
// engine's shared RNG per cell: a LossRate coin, or a skew model not
// known to ignore the RNG (nil means the NoSkew default). Such links
// cannot cross shards — the shared stream is drawn in delivery order,
// which depends on the partition — so the partitioner uses this to
// refuse the topology rather than silently diverge. Fault injectors do
// not count: they draw from site-derived streams that are identical at
// any shard count.
func (cfg LinkConfig) DrawsEngineRand() bool {
	if cfg.LossRate > 0 {
		return true
	}
	switch cfg.Skew.(type) {
	case nil, NoSkew, ConstantSkew:
		return false
	}
	return true
}

// LinkStats counts link activity. Sent + Duplicated = Delivered + Lost
// once the link drains (every accepted or injector-cloned cell is
// eventually delivered or lost).
type LinkStats struct {
	Sent       int64
	Delivered  int64
	Lost       int64
	Duplicated int64 // injector-cloned cells added to the stream
}

// linkCell is one in-flight cell of a deterministic link's train:
// serStart is the instant its transmit-FIFO slot frees (when the old
// pacing process would have dequeued it to start serialization), and
// deliver is the instant the receiver callback runs. accept is the
// instant the sender's Send returned — for a proc sender that is the
// push instant, but a virtual sender (SendScheduled) may push a cell
// whose accept lies in the future, and the walker must not claim the
// delivery event before a real sender would have scheduled it.
// schedAt/seq are the cell's canonical delivery stamp, filled only on
// stamped links (Link.xid != 0); see the stamped-link comment on Link.
type linkCell struct {
	c        Cell
	serStart sim.Time
	deliver  sim.Time
	accept   sim.Time
	schedAt  sim.Time
	seq      uint64
}

// Link is one unidirectional physical link. Cells submitted with Send
// are paced out at line rate and delivered, in order, to the receiver
// callback after propagation delay plus model skew.
//
// When the configuration is loss-free and its skew model draws no
// randomness, the link runs in cell-train mode: serialization times are
// computed arithmetically at Send, queued cells form a train of
// precomputed delivery instants, and a single walker event re-arms
// itself along the train — no pacing goroutine, no per-cell scheduling
// events, and the same simulated timings as the paced machine. Lossy or
// randomly skewed configurations fall back to a per-cell pacing process
// so the RNG is consumed cell by cell in the original draw order.
type Link struct {
	eng         *sim.Engine
	cfg         LinkConfig
	cellTime    time.Duration
	lastDeliver sim.Time
	deliver     func(c Cell, link int)
	stats       LinkStats
	inj         *fault.Injector // nil unless cfg.Fault injects something

	// Paced (fallback) mode.
	queue *sim.Chan[Cell]

	// Cell-train (deterministic) mode.
	det         bool
	train       []linkCell // ring buffer, grown on demand
	head, count int
	frontier    sim.Time // serialization end of the newest accepted cell
	walkerArmed bool
	slotArmed   bool
	armPending  bool // arm event scheduled at the next accept instant
	notFull     *sim.Cond

	// Stamped mode (xid != 0, local deterministic links only): delivery
	// events carry an explicit canonical stamp (schedAt, xid, seq) via
	// InjectStamped instead of the engine's implicit scheduling stamp.
	//
	// Why: at a tied delivery instant the engine orders events by
	// (at, schedAt, xid, seq). Implicitly stamped local events tie-break
	// by global scheduling order (xid 0, engine seq), which depends on
	// how the topology is partitioned; cross-shard events tie-break by
	// their channel id. A workload that drives many symmetric senders
	// into one switch port — fan-in incast is the canonical case — ties
	// constantly (senders re-phase-lock on the shared egress
	// serialization grid even when started staggered), so the serial and
	// sharded runs diverge. Stamping local links with the same
	// construction-order channel ids the cross-shard path uses makes the
	// tie-break a pure function of the topology: byte-identical behavior
	// at any shard count. The stamp mimics the serial machine exactly
	// (schedAt = max(accept, previous delivery), per-link monotone seq),
	// so a stamped link in isolation times identically to an unstamped
	// one; only tie ORDER against other links is pinned.
	xid  uint64
	lseq uint64 // per-link stamp counter (monotone, matches xlink.xseq)

	// Cross-shard half (nil for a link local to one engine). See xlink.go.
	x *xlink
}

// NewLink creates a link; lossy or randomly skewed configurations also
// start a pacing process.
func NewLink(e *sim.Engine, cfg LinkConfig) *Link {
	if cfg.RateBps == 0 {
		cfg.RateBps = DefaultLinkRate
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = time.Microsecond
	}
	if cfg.FIFODepth == 0 {
		cfg.FIFODepth = 4
	}
	if cfg.Skew == nil {
		cfg.Skew = NoSkew{}
	}
	l := &Link{eng: e, cfg: cfg}
	l.cellTime = time.Duration(int64(CellSize*8) * int64(time.Second) / cfg.RateBps)
	if cfg.Fault != nil {
		site := cfg.FaultSite
		if site == "" {
			site = "link"
		}
		l.inj = fault.New(e, site+"/l"+strconv.Itoa(cfg.Index), cfg.Fault)
	}
	if cfg.deterministic() {
		l.det = true
		l.train = make([]linkCell, cfg.FIFODepth+4)
		l.notFull = sim.NewCond(e)
		return l
	}
	l.queue = sim.NewChan[Cell](e, cfg.FIFODepth)
	e.Go("link-pacer", l.pace)
	return l
}

// CellTime returns the serialization time of one cell at line rate.
func (l *Link) CellTime() time.Duration { return l.cellTime }

// SetReceiver installs the delivery callback. It runs in engine (event)
// context, so it must not block; typically it pushes into the receiving
// board's header FIFO with TrySend.
func (l *Link) SetReceiver(fn func(c Cell, link int)) { l.deliver = fn }

// Send submits a cell for transmission, blocking p while the link's
// transmit FIFO is full — the backpressure the board's segmentation
// loop experiences.
func (l *Link) Send(p *sim.Proc, c Cell) {
	if !l.det {
		l.queue.Send(p, c)
		l.stats.Sent++
		return
	}
	// The transmit FIFO is virtual: a queued cell occupies a slot from
	// Send until its serialization starts, exactly when the paced
	// machine's dequeue would have freed it.
	if l.x != nil {
		// No local walker pops delivered entries on a cross-shard link;
		// prune the slots that have already freed instead.
		l.purgeServed(l.eng.Now())
	}
	for l.queued(l.eng.Now()) >= l.cfg.FIFODepth {
		l.armSlotWake()
		l.notFull.Wait(p)
	}
	now := l.eng.Now()
	serStart := now
	if l.frontier > serStart {
		serStart = l.frontier
	}
	serEnd := serStart.Add(l.cellTime)
	l.frontier = serEnd
	// Skew models in train mode never draw; passing a nil RNG turns any
	// violation of that invariant into a loud failure instead of silent
	// nondeterminism.
	at := serEnd.Add(l.cfg.PropDelay + l.cfg.Skew.Delay(l.cfg.Index, nil))
	prevLast := l.lastDeliver
	if at <= l.lastDeliver {
		at = l.lastDeliver + 1 // preserve per-link FIFO order
	}
	l.lastDeliver = at
	l.stats.Sent++
	if l.x != nil {
		// The occupancy ring keeps only the timing of the slot; the cell
		// itself travels through the cross-shard buffer.
		l.push(linkCell{serStart: serStart, deliver: at, accept: now})
		l.sendRemote(c, at, prevLast)
	} else if l.xid != 0 {
		l.pushStamped(c, serStart, at, now, prevLast)
	} else {
		l.push(linkCell{c: c, serStart: serStart, deliver: at, accept: now})
		if !l.walkerArmed && !l.armPending {
			l.walkerArmed = true
			l.eng.AtCall(at, linkDeliverCB, l)
		}
	}
	if l.notFull.Waiting() > 0 {
		l.armSlotWake()
	}
}

// pushStamped is the stamped-local Send/SendScheduled tail: push the
// cell with its canonical stamp (the same schedAt mimicry sendRemote
// performs) and make sure a stamped walker event is pending. The
// walker invariant in stamped mode is simple — armed iff the train is
// non-empty — because the stamp is explicit, so arming never has to
// wait for the accept instant the way the implicit machine does.
func (l *Link) pushStamped(c Cell, serStart, at, accept, prevLast sim.Time) {
	schedAt := accept
	if prevLast > schedAt {
		schedAt = prevLast
	}
	l.lseq++
	l.push(linkCell{c: c, serStart: serStart, deliver: at, accept: accept, schedAt: schedAt, seq: l.lseq})
	if !l.walkerArmed {
		l.walkerArmed = true
		head := l.at(0)
		l.eng.InjectStamped(head.deliver, head.schedAt, l.xid, head.seq, linkDeliverCB, l)
	}
}

// SendScheduled transmits a cell on behalf of a virtual sender — one
// whose dequeue instant t was computed arithmetically rather than
// reached by a blocked proc. t must be at or after the engine's current
// instant and nondecreasing across calls, and the caller must be the
// link's only sender (the switch's egress arbiter is; boards are not).
// The link performs exactly the state transitions Send would have
// performed had a proc executed it at t — virtual-FIFO blocking,
// serialization pacing, the per-link FIFO-order bump, walker arming at
// the accept instant — and returns the instant Send would have
// returned: the first u ≥ t at which the transmit FIFO has a free
// slot. Deterministic (cell-train) links only.
func (l *Link) SendScheduled(t sim.Time, c Cell) sim.Time {
	if !l.det {
		panic("atm: SendScheduled on a non-deterministic link")
	}
	if l.x != nil {
		l.purgeServed(l.eng.Now())
	}
	u := l.slotFree(t)
	serStart := u
	if l.frontier > serStart {
		serStart = l.frontier
	}
	serEnd := serStart.Add(l.cellTime)
	l.frontier = serEnd
	at := serEnd.Add(l.cfg.PropDelay + l.cfg.Skew.Delay(l.cfg.Index, nil))
	prevLast := l.lastDeliver
	if at <= l.lastDeliver {
		at = l.lastDeliver + 1 // preserve per-link FIFO order
	}
	l.lastDeliver = at
	l.stats.Sent++
	if l.x != nil {
		l.push(linkCell{serStart: serStart, deliver: at, accept: u})
		l.sendRemoteAt(c, at, prevLast, u)
		return u
	}
	if l.xid != 0 {
		l.pushStamped(c, serStart, at, u, prevLast)
		return u
	}
	l.push(linkCell{c: c, serStart: serStart, deliver: at, accept: u})
	if !l.walkerArmed && !l.armPending {
		if u <= l.eng.Now() {
			// A proc sender would have armed right here, right now.
			l.walkerArmed = true
			l.eng.AtCall(at, linkDeliverCB, l)
		} else {
			// A proc sender would still be blocked; it would arm the
			// walker only at the accept instant, and the delivery event
			// must carry that instant as its scheduling stamp.
			l.armPending = true
			l.eng.AtCall(u, linkArmCB, l)
		}
	}
	return u
}

// slotFree returns the first instant u ≥ t at which the virtual
// transmit FIFO has a free slot — the instant a sender arriving at t
// would come out of the Send blocking loop. Serialization starts are
// strictly increasing along the train, so if the FIFO is full at t the
// answer is the start instant of the FIFODepth-th entry from the tail.
func (l *Link) slotFree(t sim.Time) sim.Time {
	n := 0
	for i := l.count - 1; i >= 0; i-- {
		if l.at(i).serStart <= t {
			break
		}
		n++
		if n >= l.cfg.FIFODepth {
			return l.at(i).serStart
		}
	}
	return t
}

// linkArmCB fires at a virtually sent cell's accept instant: the proc
// sender being mimicked would arm the delivery walker here, so the
// delivery event's canonical (at, schedAt) stamp matches the serial
// per-cell machine exactly.
func linkArmCB(a any) {
	l := a.(*Link)
	l.armPending = false
	l.walkerArmed = true
	l.eng.AtCall(l.at(0).deliver, linkDeliverCB, l)
}

// queued counts train cells still occupying a transmit-FIFO slot at
// instant now (serialization not yet started). Entries are in push
// order with nondecreasing serStart, so scan from the newest.
func (l *Link) queued(now sim.Time) int {
	n := 0
	for i := l.count - 1; i >= 0; i-- {
		if l.at(i).serStart <= now {
			break
		}
		n++
	}
	return n
}

// armSlotWake schedules a wakeup at the next serialization boundary —
// the instant the paced machine's dequeue would have signalled a
// blocked sender — unless one is already pending.
func (l *Link) armSlotWake() {
	if l.slotArmed {
		return
	}
	now := l.eng.Now()
	for i := 0; i < l.count; i++ {
		if s := l.at(i).serStart; s > now {
			l.slotArmed = true
			l.eng.AtCall(s, linkSlotCB, l)
			return
		}
	}
}

// linkSlotCB fires at a serialization boundary: one virtual FIFO slot
// has freed, so wake the longest-blocked sender. The resumed sender
// re-arms for remaining waiters from its Send.
func linkSlotCB(a any) {
	l := a.(*Link)
	l.slotArmed = false
	l.notFull.Signal()
}

// linkDeliverCB is the train walker: deliver the front cell, then
// re-arm for the next one. Deliveries are strictly increasing per link,
// so a single event walks the whole train. A next cell pushed by
// SendScheduled whose accept instant is still ahead is not claimed yet:
// in the serial per-cell machine the walker would have found an empty
// train here and the (blocked) sender would arm at the accept instant,
// so the re-arm defers to linkArmCB to keep the delivery stamp exact.
func linkDeliverCB(a any) {
	l := a.(*Link)
	e := l.pop()
	l.stats.Delivered++
	if l.deliver != nil {
		l.deliver(e.c, l.cfg.Index)
	}
	if l.count > 0 {
		nxt := l.at(0)
		if l.xid != 0 {
			// Stamped mode: the canonical stamp is explicit, so re-arm
			// directly with the next cell's own stamp (the accept-instant
			// deferral below exists only to make the implicit stamp right).
			l.eng.InjectStamped(nxt.deliver, nxt.schedAt, l.xid, nxt.seq, linkDeliverCB, l)
		} else if nxt.accept > l.eng.Now() {
			l.walkerArmed = false
			l.armPending = true
			l.eng.AtCall(nxt.accept, linkArmCB, l)
		} else {
			l.eng.AtCall(nxt.deliver, linkDeliverCB, l)
		}
	} else {
		l.walkerArmed = false
	}
}

// at returns the i-th train entry in FIFO order.
func (l *Link) at(i int) *linkCell {
	j := l.head + i
	if j >= len(l.train) {
		j -= len(l.train)
	}
	return &l.train[j]
}

func (l *Link) push(e linkCell) {
	if l.count == len(l.train) {
		grown := make([]linkCell, 2*len(l.train))
		for i := 0; i < l.count; i++ {
			grown[i] = *l.at(i)
		}
		l.train = grown
		l.head = 0
	}
	*l.at(l.count) = e
	l.count++
}

func (l *Link) pop() linkCell {
	e := *l.at(0)
	*l.at(0) = linkCell{}
	l.head++
	if l.head >= len(l.train) {
		l.head = 0
	}
	l.count--
	return e
}

// Stats returns a snapshot of the counters, by value. The snapshot is
// only coherent between engine steps: read it after Engine.Run (or
// RunUntil) has returned, after Shutdown, or from within a single
// proc/event step. Reading it while the engine is mid-Run from outside
// the simulation can observe a cell counted as Sent but not yet
// Delivered or Lost. After Shutdown the counters are final and stable.
func (l *Link) Stats() LinkStats { return l.stats }

// Injector exposes the link's fault injector (nil when fault injection
// is off); its Stats follow the Link.Stats snapshot discipline.
func (l *Link) Injector() *fault.Injector { return l.inj }

// pace is the fallback per-cell machine for lossy, randomly skewed, or
// fault-injected links: it consumes the engine RNG one cell at a time,
// in serialization order, which the arithmetic train cannot reproduce.
// The legacy LossRate coin is drawn from the engine RNG exactly where
// it always was; the injector draws only from its own derived stream,
// so enabling it never shifts existing seeded runs.
func (l *Link) pace(p *sim.Proc) {
	for {
		c := l.queue.Recv(p)
		p.Sleep(l.cellTime) // serialization
		if l.cfg.LossRate > 0 && l.eng.Rand().Float64() < l.cfg.LossRate {
			l.stats.Lost++
			continue
		}
		act := l.inj.Apply(p.Now())
		if act.Drop {
			l.stats.Lost++
			continue
		}
		if act.CorruptBit >= 0 && c.Len > 0 {
			bit := act.CorruptBit % (8 * c.Len)
			c.Payload[bit/8] ^= 1 << (bit % 8)
		}
		at := p.Now().Add(l.cfg.PropDelay + l.cfg.Skew.Delay(l.cfg.Index, l.eng.Rand()))
		if at <= l.lastDeliver {
			at = l.lastDeliver + 1 // preserve per-link FIFO order
		}
		l.lastDeliver = at
		// Reordering delay lands after the FIFO commitment and does not
		// advance lastDeliver: later cells keep their earlier slots and
		// overtake the delayed one, bounded by the injector's ReorderMax.
		deliverAt := at.Add(act.Delay)
		if l.x != nil {
			l.paceRemote(c, deliverAt, act.Duplicate)
			continue
		}
		cell := c
		l.eng.At(deliverAt, func() {
			l.stats.Delivered++
			if l.deliver != nil {
				l.deliver(cell, l.cfg.Index)
			}
		})
		if act.Duplicate {
			l.stats.Duplicated++
			l.eng.At(deliverAt+1, func() {
				l.stats.Delivered++
				if l.deliver != nil {
					l.deliver(cell, l.cfg.Index)
				}
			})
		}
	}
}

// StripeGroup bundles width physical links into one logical channel with
// cell-level round-robin striping (§2.6).
type StripeGroup struct {
	links []*Link
	next  int
}

// NewStripeGroup creates width links sharing the given base config (the
// Index field is overridden per link).
func NewStripeGroup(e *sim.Engine, width int, cfg LinkConfig) *StripeGroup {
	if width <= 0 {
		panic("atm: stripe width must be positive")
	}
	g := &StripeGroup{}
	for i := 0; i < width; i++ {
		c := cfg
		c.Index = i
		g.links = append(g.links, NewLink(e, c))
	}
	return g
}

// Width returns the number of physical links.
func (g *StripeGroup) Width() int { return len(g.links) }

// Link returns the i-th physical link.
func (g *StripeGroup) Link(i int) *Link { return g.links[i] }

// Links returns the physical links in stripe order (a fresh slice; the
// caller may keep it).
func (g *StripeGroup) Links() []*Link {
	out := make([]*Link, len(g.links))
	copy(out, g.links)
	return out
}

// Stats sums the per-link counters. The snapshot discipline of
// Link.Stats applies.
func (g *StripeGroup) Stats() LinkStats {
	var s LinkStats
	for _, l := range g.links {
		ls := l.Stats()
		s.Sent += ls.Sent
		s.Delivered += ls.Delivered
		s.Lost += ls.Lost
		s.Duplicated += ls.Duplicated
	}
	return s
}

// FaultStats sums the per-link injector counters (zero when fault
// injection is off). The Link.Stats snapshot discipline applies.
func (g *StripeGroup) FaultStats() fault.Stats {
	var s fault.Stats
	for _, l := range g.links {
		s.Add(l.inj.Stats())
	}
	return s
}

// SetReceiver installs the delivery callback on every link.
func (g *StripeGroup) SetReceiver(fn func(c Cell, link int)) {
	for _, l := range g.links {
		l.SetReceiver(fn)
	}
}

// Send transmits one cell on the next link in round-robin order,
// blocking p if that link's FIFO is full.
func (g *StripeGroup) Send(p *sim.Proc, c Cell) {
	g.links[g.next].Send(p, c)
	g.next = (g.next + 1) % len(g.links)
}

// ResetRoundRobin restarts striping at link 0, so each PDU's first cell
// goes out on a known link (the board does this per PDU).
func (g *StripeGroup) ResetRoundRobin() { g.next = 0 }

// AggregatePayloadMbps returns the logical channel's payload bandwidth:
// width × rate × 44/53 — the "516 Mbps data bandwidth available in a
// 622 Mbps SONET/ATM link" figure of §2.5.1.
func (g *StripeGroup) AggregatePayloadMbps() float64 {
	var total float64
	for _, l := range g.links {
		total += float64(l.cfg.RateBps)
	}
	return total * CellPayload / CellSize / 1e6
}
