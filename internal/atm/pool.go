package atm

import "fmt"

// PayloadPool is a flyweight allocator for cell-payload staging
// buffers, in the spirit of a NIC driver's mbuf pool: the hot loops
// that assemble or inspect one cell at a time borrow a fixed-size
// buffer, fill it, and return it — zero heap allocations per cell in
// steady state, with the pool growing only when the number of buffers
// simultaneously in flight exceeds everything seen before.
//
// Buffers live in fixed-size chunks that are never reallocated, so a
// *[CellPayload]byte handed out by Get stays valid (pointer-stable)
// for as long as its handle is live. Each slot carries a generation
// counter bumped on every free: a Handle kept past its Put — the
// use-after-free of pool allocators — is detected loudly instead of
// silently aliasing another cell's bytes.
//
// The pool is engine-local like every other simulation structure:
// callers on one engine shard own their pool exclusively, so there is
// no locking.
type PayloadPool struct {
	chunks [][]poolSlot
	free   []int32 // slot indices currently free, LIFO for cache warmth
	live   int
}

const poolChunkSlots = 64

type poolSlot struct {
	buf  [CellPayload]byte
	gen  uint32
	live bool
}

// PoolHandle names one borrowed buffer. The zero Handle is invalid.
type PoolHandle struct {
	idx int32
	gen uint32
}

// NewPayloadPool returns an empty pool; the first Get allocates the
// first chunk.
func NewPayloadPool() *PayloadPool { return &PayloadPool{} }

func (p *PayloadPool) slot(idx int32) *poolSlot {
	return &p.chunks[idx/poolChunkSlots][idx%poolChunkSlots]
}

// Get borrows a buffer, growing the pool by one chunk if none is
// free. The returned pointer is valid until Put; the handle must be
// returned exactly once.
func (p *PayloadPool) Get() (PoolHandle, *[CellPayload]byte) {
	if len(p.free) == 0 {
		base := int32(len(p.chunks) * poolChunkSlots)
		p.chunks = append(p.chunks, make([]poolSlot, poolChunkSlots))
		for i := int32(poolChunkSlots) - 1; i >= 0; i-- {
			p.free = append(p.free, base+i)
		}
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	s := p.slot(idx)
	s.live = true
	p.live++
	return PoolHandle{idx: idx, gen: s.gen}, &s.buf
}

// Put returns a borrowed buffer. Returning a handle twice, or keeping
// it across a Put (stale generation), panics: both are the silent
// cell-aliasing bugs of reference-counted buffer schemes, and the
// simulation would rather die than corrupt a payload.
func (p *PayloadPool) Put(h PoolHandle) {
	if h.idx < 0 || int(h.idx) >= len(p.chunks)*poolChunkSlots {
		panic(fmt.Sprintf("atm: pool handle %d out of range", h.idx))
	}
	s := p.slot(h.idx)
	if !s.live || s.gen != h.gen {
		panic(fmt.Sprintf("atm: pool double free or stale handle (slot %d, gen %d vs %d)", h.idx, h.gen, s.gen))
	}
	s.live = false
	s.gen++
	p.live--
	p.free = append(p.free, h.idx)
}

// Bytes returns the buffer for a live handle, generation-checked.
func (p *PayloadPool) Bytes(h PoolHandle) *[CellPayload]byte {
	s := p.slot(h.idx)
	if !s.live || s.gen != h.gen {
		panic(fmt.Sprintf("atm: pool access through dead handle (slot %d)", h.idx))
	}
	return &s.buf
}

// Live reports the number of borrowed buffers — zero once every
// producer has matched its Gets with Puts, which leak tests assert.
func (p *PayloadPool) Live() int { return p.live }

// Cap reports the pool's current capacity in buffers.
func (p *PayloadPool) Cap() int { return len(p.chunks) * poolChunkSlots }
