package atm

import (
	"fmt"

	"repro/internal/sim"
)

// Cross-shard links.
//
// A link whose endpoints live on different engines of a sim.ShardGroup
// is the shard boundary of the conservative-parallel simulation: its
// fixed PropDelay is the lookahead that bounds how far the shards may
// advance between barriers. The sender half runs unchanged on the
// source engine — FIFO occupancy, serialization pacing, backpressure —
// but instead of scheduling delivery events locally it appends each
// cell to an outbound buffer together with the canonical stamp
// (deliver, schedAt, seq) its delivery event would have carried in a
// serial run. At every window barrier the group flushes the buffer into
// the destination engine with Engine.InjectStamped, so the merged
// execution orders cross-shard deliveries exactly where the serial
// engine would have.
//
// Stamp mimicry, deterministic mode: the serial train walker schedules
// cell i's delivery either at cell i's Send instant (walker idle — the
// previous delivery is already done) or from the previous delivery
// event (walker busy — it re-arms as it pops cell i-1). Both collapse
// to schedAt = max(send_i, deliver_{i-1}), computed sender-side from
// state the sender already tracks. Paced mode needs no mimicry: the
// pacing proc schedules each delivery at its own current instant, which
// the sender records directly.
//
// Delivery runs on the destination engine. Deterministic links keep the
// serial walker structure — cells wait in a receive train and a single
// walker event re-arms itself along it — so steady state allocates
// nothing. Paced links (fault injection reorders deliveries, breaking
// the walker's monotonicity) inject one event per cell instead, which
// matches the serial paced machine's per-cell closures.

// xcell is one cross-shard cell in flight: the payload plus the
// canonical stamp of its delivery event.
type xcell struct {
	c       Cell
	deliver sim.Time
	schedAt sim.Time
	seq     uint64
}

// xlink holds the cross-shard half of a Link. Field ownership is
// disciplined for the data-race model of the shard scheduler: the
// sender engine touches xout (and the Link's train/frontier/lastDeliver
// bookkeeping) only inside its windows; the destination engine touches
// xin/xArmed only inside its windows; the barrier flush, which moves
// cells from xout to xin, runs while every engine is idle.
type xlink struct {
	grp *sim.ShardGroup
	dst *sim.Engine
	xid uint64 // stable channel id; tie-break in the canonical order

	xseq uint64  // sender-side per-channel stamp counter
	xout []xcell // sender → barrier

	xin    []xcell // barrier → receiver (FIFO; head compacted at flush)
	xinPos int
	xArmed bool // receive-train walker armed on dst
}

// NewCrossLink creates a link whose sender runs on src and whose
// receiver callback runs on dst, two engines of group g. The link's
// PropDelay joins the group's lookahead. Configurations that draw from
// the shared engine RNG per cell (LossRate, random skew) are refused:
// those draws consume one engine's stream in delivery order, which a
// partitioned topology cannot reproduce. Fault injectors are fine —
// they draw from site-derived streams that are partition-independent by
// construction.
func NewCrossLink(g *sim.ShardGroup, src, dst *sim.Engine, cfg LinkConfig) *Link {
	if g == nil || src == nil || dst == nil {
		panic("atm: cross-shard link needs a group and both engines")
	}
	if src == dst {
		panic("atm: cross-shard link endpoints must be on different engines")
	}
	if cfg.DrawsEngineRand() {
		panic(fmt.Sprintf("atm: link config (LossRate=%v, Skew=%T) draws from the shared engine RNG per cell and cannot cross shards; run with Shards=1 or move the randomness to a fault injector", cfg.LossRate, cfg.Skew))
	}
	l := NewLink(src, cfg)
	l.x = &xlink{grp: g, dst: dst, xid: g.NextXID()}
	g.AddLookahead(l.cfg.PropDelay)
	g.OnBarrier(l.flushX)
	return l
}

// NewCrossStripeGroup creates width cross-shard links sharing cfg, the
// striped analogue of NewCrossLink.
func NewCrossStripeGroup(g *sim.ShardGroup, src, dst *sim.Engine, width int, cfg LinkConfig) *StripeGroup {
	if width <= 0 {
		panic("atm: stripe width must be positive")
	}
	sg := &StripeGroup{}
	for i := 0; i < width; i++ {
		c := cfg
		c.Index = i
		sg.links = append(sg.links, NewCrossLink(g, src, dst, c))
	}
	return sg
}

// Remote reports whether the link crosses shards; Dst returns the
// destination engine (nil for a local link).
func (l *Link) Remote() bool { return l.x != nil }

// Dst returns the engine the receiver callback runs on.
func (l *Link) Dst() *sim.Engine {
	if l.x != nil {
		return l.x.dst
	}
	return l.eng
}

// sendRemote is the deterministic Send tail for a cross-shard link:
// stamp the cell and buffer it for the barrier instead of arming the
// local walker. prevLast is lastDeliver before this cell claimed its
// slot — the previous cell's delivery instant, which decides whether
// the serial walker would have been idle (schedAt = now) or re-arming
// (schedAt = prevLast) when this cell's delivery got scheduled.
func (l *Link) sendRemote(c Cell, at sim.Time, prevLast sim.Time) {
	l.sendRemoteAt(c, at, prevLast, l.eng.Now())
}

// sendRemoteAt is sendRemote for a virtual sender (SendScheduled): now
// is the computed accept instant — the instant a proc sender's Send
// would have run — so the mimicked stamp is identical even though the
// cell is buffered ahead of time. Appends stay in accept order, hence
// the per-channel seq keeps its serial meaning.
func (l *Link) sendRemoteAt(c Cell, at sim.Time, prevLast sim.Time, now sim.Time) {
	schedAt := now
	if prevLast > schedAt {
		schedAt = prevLast
	}
	x := l.x
	x.xseq++
	x.xout = append(x.xout, xcell{c: c, deliver: at, schedAt: schedAt, seq: x.xseq})
}

// purgeServed drops leading train entries whose transmit-FIFO slot has
// already freed. The local walker does this as a side effect of
// delivering; a cross-shard link delivers elsewhere, so the sender
// prunes at Send to keep the occupancy ring bounded.
func (l *Link) purgeServed(now sim.Time) {
	for l.count > 0 && l.at(0).serStart <= now {
		l.pop()
	}
}

// paceRemote is the paced machine's cross-shard delivery: buffer the
// cell (and its injector-made duplicate) with the stamps the serial
// machine's At calls would have produced — schedAt is the pacing proc's
// current instant for both.
func (l *Link) paceRemote(c Cell, deliverAt sim.Time, duplicate bool) {
	x := l.x
	now := l.eng.Now()
	x.xseq++
	x.xout = append(x.xout, xcell{c: c, deliver: deliverAt, schedAt: now, seq: x.xseq})
	if duplicate {
		l.stats.Duplicated++
		x.xseq++
		x.xout = append(x.xout, xcell{c: c, deliver: deliverAt + 1, schedAt: now, seq: x.xseq})
	}
}

// flushX runs at every window barrier, on the coordinator, with all
// engines idle: move the window's cells to the receive side and make
// sure a delivery event is pending on the destination engine.
func (l *Link) flushX() {
	x := l.x
	if len(x.xout) == 0 {
		return
	}
	if !l.det {
		// Paced: one stamped event per cell, like the serial machine.
		for i := range x.xout {
			e := x.xout[i]
			x.grp.Inject(x.dst, e.deliver, e.schedAt, x.xid, e.seq, xPacedDeliverCB, &xDelivery{l: l, c: e.c})
		}
		x.xout = x.xout[:0]
		return
	}
	// Deterministic: append to the receive train (compacting the served
	// prefix first so the buffer does not creep) and arm the walker.
	if x.xinPos > 0 {
		n := copy(x.xin, x.xin[x.xinPos:])
		x.xin = x.xin[:n]
		x.xinPos = 0
	}
	x.xin = append(x.xin, x.xout...)
	x.xout = x.xout[:0]
	if !x.xArmed {
		x.xArmed = true
		head := &x.xin[x.xinPos]
		x.grp.Inject(x.dst, head.deliver, head.schedAt, x.xid, head.seq, xDeliverCB, l)
	}
}

// xDeliverCB is the cross-shard train walker, running on the
// destination engine: deliver the head cell, then re-arm with the next
// cell's own stamp so every delivery keeps its serial position.
func xDeliverCB(a any) {
	l := a.(*Link)
	x := l.x
	e := &x.xin[x.xinPos]
	c := e.c
	x.xinPos++
	l.stats.Delivered++
	if l.deliver != nil {
		l.deliver(c, l.cfg.Index)
	}
	if x.xinPos < len(x.xin) {
		head := &x.xin[x.xinPos]
		x.dst.InjectStamped(head.deliver, head.schedAt, x.xid, head.seq, xDeliverCB, l)
	} else {
		x.xArmed = false
	}
}

// xDelivery carries one paced cross-shard cell to its delivery event.
type xDelivery struct {
	l *Link
	c Cell
}

func xPacedDeliverCB(a any) {
	d := a.(*xDelivery)
	d.l.stats.Delivered++
	if d.l.deliver != nil {
		d.l.deliver(d.c, d.l.cfg.Index)
	}
}
