package atm

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestSwitchPortStatsDropsAndHighWater(t *testing.T) {
	// Two senders fan into one egress port with a tiny queue: overflow
	// must show up in Dropped and the occupancy peak in HighWater. The
	// snapshot is read between engine steps (the Link.Stats discipline),
	// which the -race runs of this package verify is safe.
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 3, SwitchConfig{QueueCells: 8})
	if err := sw.Route(10, 2); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(11, 2); err != nil {
		t.Fatal(err)
	}
	var got []rxRecord
	collect(sw.Port(2), &got)
	const perSender = 100
	for s := 0; s < 2; s++ {
		vci := VCI(10 + s)
		in := sw.Port(s).Ingress()
		e.Go("tx", func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				in.Send(p, Cell{VCI: vci, Seq: uint32(i), Len: CellPayload})
			}
		})
	}
	// Slice the run and read snapshots between steps: counters must be
	// coherent and monotonic at every quiescent point.
	var prev SwitchPortStats
	for i := 0; i < 40; i++ {
		e.RunUntil(e.Now().Add(50 * time.Microsecond))
		st := sw.Port(2).Stats()
		if st.Dropped < prev.Dropped || st.Forwarded < prev.Forwarded || st.HighWater < prev.HighWater {
			t.Fatalf("counters went backwards: %+v after %+v", st, prev)
		}
		prev = st
	}
	e.Run()
	st := sw.Port(2).Stats()
	if st.Dropped == 0 {
		t.Errorf("fan-in overload produced no drops: %+v", st)
	}
	if st.HighWater == 0 || st.HighWater > 8 {
		t.Errorf("HighWater = %d, want in (0, 8]", st.HighWater)
	}
	agg := sw.Stats()
	if agg.HighWater != st.HighWater {
		t.Errorf("aggregate HighWater %d != port HighWater %d", agg.HighWater, st.HighWater)
	}
	if in0 := sw.Port(0).Stats(); in0.In != perSender {
		t.Errorf("port 0 In = %d, want %d", in0.In, perSender)
	}
	if int64(len(got))+st.Dropped != 2*perSender {
		t.Errorf("delivered %d + dropped %d != sent %d", len(got), st.Dropped, 2*perSender)
	}
}

func TestSwitchFaultInjectionAtOutputPort(t *testing.T) {
	e := sim.NewEngine(5)
	defer e.Shutdown()
	sw := NewSwitch(e, 2, SwitchConfig{Fault: &fault.Config{Loss: fault.Bernoulli{P: 0.2}}})
	if err := sw.Route(9, 1); err != nil {
		t.Fatal(err)
	}
	var got []rxRecord
	collect(sw.Port(1), &got)
	const cells = 400
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < cells; i++ {
			sw.Port(0).Ingress().Send(p, Cell{VCI: 9, Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	fs := sw.Port(1).Injector().Stats()
	if fs.Cells != cells || fs.Dropped == 0 {
		t.Fatalf("injector stats %+v, want %d cells with drops", fs, cells)
	}
	if int64(len(got)) != cells-fs.Dropped {
		t.Errorf("delivered %d, want %d - %d", len(got), cells, fs.Dropped)
	}
	if agg := sw.FaultStats(); agg != fs {
		t.Errorf("aggregate fault stats %+v != port stats %+v", agg, fs)
	}
	// Per-lane order must survive injected loss.
	perLane := map[int]uint32{}
	for _, r := range got {
		if last, ok := perLane[r.lane]; ok && r.c.Seq <= last {
			t.Fatalf("lane %d order violated", r.lane)
		}
		perLane[r.lane] = r.c.Seq
	}
}
