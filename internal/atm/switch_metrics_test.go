package atm

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestSwitchForwardZeroAlloc pins the fan-in hot path: a cell crossing
// the fabric (route lookup, fault check, bounded-queue entry) allocates
// nothing — with the telemetry plane disabled AND enabled, under train
// forwarding AND the forced per-cell machine. The enqueue
// instrumentation is a nil-checked timestamp plus fixed-size counter
// updates, so turning metrics on must not add a single allocation per
// cell; and the per-cell fallback is the correctness oracle the train
// path is diffed against, so it must stay alloc-free too.
func TestSwitchForwardZeroAlloc(t *testing.T) {
	for _, perCell := range []bool{false, true} {
		for _, on := range []bool{false, true} {
			e := sim.NewEngine(7)
			sw := NewSwitch(e, 2, SwitchConfig{PerCellFabric: perCell})
			if on {
				sw.RegisterMetrics(metrics.New(), "fabric")
			}
			if err := sw.Route(5, 1); err != nil {
				t.Fatal(err)
			}
			c := Cell{VCI: 5, Len: CellPayload}
			// The queue fills after QueueCells iterations and later cells
			// tail-drop; both the accept and drop paths must be alloc-free.
			allocs := testing.AllocsPerRun(1000, func() { sw.forward(0, c, 0) })
			if allocs != 0 {
				t.Errorf("percell=%v metrics=%v: forward allocated %.1f per cell, want 0", perCell, on, allocs)
			}
			e.Shutdown()
		}
	}
}

// TestSwitchMetricsReportPortStats checks the registered per-port
// samples read through to the live counters.
func TestSwitchMetricsReportPortStats(t *testing.T) {
	e := sim.NewEngine(7)
	defer e.Shutdown()
	reg := metrics.New()
	sw := NewSwitch(e, 2, SwitchConfig{})
	sw.RegisterMetrics(reg, "fabric")
	if err := sw.Route(5, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sw.forward(0, Cell{VCI: 5, Len: CellPayload}, 0)
	}
	sw.forward(0, Cell{VCI: 99, Len: CellPayload}, 0) // no route
	if v, ok := reg.Get("fabric/port0/in"); !ok || v.Value != 4 {
		t.Errorf("port0/in = %+v, want 4", v)
	}
	if v, ok := reg.Get("fabric/port0/no_route"); !ok || v.Value != 1 {
		t.Errorf("port0/no_route = %+v, want 1", v)
	}
	if v, ok := reg.Get("fabric/port1/queue_high_water"); !ok || v.Value != 3 {
		t.Errorf("port1/queue_high_water = %+v, want 3", v)
	}
}
