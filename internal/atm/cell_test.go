package atm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCellsFor(t *testing.T) {
	cases := []struct{ n, cells int }{
		{0, 1},       // trailer alone needs one cell
		{1, 1},       // 1 + 8 = 9 ≤ 44
		{36, 1},      // 36 + 8 = 44 exactly
		{37, 2},      // 45 > 44
		{44, 2},      // 52 > 44
		{80, 2},      // 88 exactly
		{81, 3},      // 89
		{16384, 373}, // 16392/44 = 372.5...
	}
	for _, c := range cases {
		if got := CellsFor(c.n); got != c.cells {
			t.Errorf("CellsFor(%d) = %d, want %d", c.n, got, c.cells)
		}
	}
}

func TestSegmentReassembleRoundTrip(t *testing.T) {
	pdu := make([]byte, 1000)
	for i := range pdu {
		pdu[i] = byte(i * 7)
	}
	cells := Segment(42, pdu, StripeWidth, false)
	vci, got, err := Reassemble(cells)
	if err != nil {
		t.Fatal(err)
	}
	if vci != 42 {
		t.Errorf("vci = %d", vci)
	}
	if !bytes.Equal(got, pdu) {
		t.Error("payload mismatch")
	}
}

func TestSegmentFramingBits(t *testing.T) {
	pdu := make([]byte, 44*10) // 10 data cells + trailer spill → 11 cells
	cells := Segment(1, pdu, 4, false)
	n := len(cells)
	if n != CellsFor(len(pdu)) {
		t.Fatalf("cells = %d", n)
	}
	eom := 0
	for i, c := range cells {
		if c.EOM {
			eom++
			if n-i > 4 {
				t.Errorf("EOM set on cell %d of %d (not in final stripe round)", i, n)
			}
		}
		if c.Last != (i == n-1) {
			t.Errorf("Last wrong on cell %d", i)
		}
	}
	if eom != 4 {
		t.Errorf("EOM count = %d, want 4 (one per link)", eom)
	}
}

func TestSegmentShortPDUFraming(t *testing.T) {
	// A PDU of fewer cells than the stripe width: every cell is some
	// link's last, and the Last bit terminates the PDU (§2.6's "small
	// problem if a PDU is less than 4 cells long").
	cells := Segment(1, []byte("hi"), 4, false)
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	if !cells[0].EOM || !cells[0].Last {
		t.Error("single-cell PDU must have EOM and Last set")
	}
}

func TestSegmentSeqNumbers(t *testing.T) {
	pdu := make([]byte, 200)
	cells := Segment(1, pdu, 4, true)
	for i, c := range cells {
		if c.Seq != uint32(i) {
			t.Fatalf("cell %d has seq %d", i, c.Seq)
		}
	}
	noseq := Segment(1, pdu, 4, false)
	for _, c := range noseq {
		if c.Seq != 0 {
			t.Fatal("seq set when withSeq=false")
		}
	}
}

func TestSegmentAllCellsFull(t *testing.T) {
	cells := Segment(1, make([]byte, 123), 4, false)
	for i, c := range cells {
		if c.Len != CellPayload {
			t.Errorf("cell %d len = %d, want %d", i, c.Len, CellPayload)
		}
		if c.VCI != 1 {
			t.Errorf("cell %d vci = %d", i, c.VCI)
		}
	}
}

func TestReassembleDetectsCorruption(t *testing.T) {
	cells := Segment(1, []byte("the quick brown fox jumps over the lazy dog!"), 1, false)
	cells[0].Payload[3] ^= 0xFF
	if _, _, err := Reassemble(cells); err == nil {
		t.Error("corrupted payload reassembled without error")
	}
}

func TestReassembleDetectsMissingCell(t *testing.T) {
	pdu := make([]byte, 300)
	for i := range pdu {
		pdu[i] = byte(i)
	}
	cells := Segment(1, pdu, 1, false)
	if _, _, err := Reassemble(cells[1:]); err == nil {
		t.Error("reassembly with missing first cell succeeded")
	}
	if _, _, err := Reassemble(cells[:len(cells)-1]); err == nil {
		t.Error("reassembly with missing last cell succeeded")
	}
}

func TestReassembleEmpty(t *testing.T) {
	if _, _, err := Reassemble(nil); err != ErrNoCells {
		t.Errorf("err = %v, want ErrNoCells", err)
	}
}

func TestTrailerRoundTrip(t *testing.T) {
	buf := make([]byte, 44)
	PutTrailer(buf, Trailer{Length: 0xABCD, CRC: 0x1234_5678})
	tr := ParseTrailer(buf)
	if tr.Length != 0xABCD || tr.CRC != 0x1234_5678 {
		t.Errorf("trailer = %+v", tr)
	}
}

func TestZeroLengthPDU(t *testing.T) {
	cells := Segment(5, nil, 4, false)
	vci, pdu, err := Reassemble(cells)
	if err != nil {
		t.Fatal(err)
	}
	if vci != 5 || len(pdu) != 0 {
		t.Errorf("vci=%d len=%d", vci, len(pdu))
	}
}

// Property: Segment/Reassemble round-trips any payload at any stripe
// width, with and without sequence numbers.
func TestSegmentRoundTripQuick(t *testing.T) {
	f := func(pdu []byte, widthSeed uint8, withSeq bool) bool {
		width := int(widthSeed)%8 + 1
		cells := Segment(9, pdu, width, withSeq)
		vci, got, err := Reassemble(cells)
		if err != nil || vci != 9 {
			return false
		}
		return bytes.Equal(got, pdu) || (len(pdu) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a single bit flip anywhere in any cell payload is detected
// (CRC-32 catches all single-bit errors).
func TestBitFlipDetectedQuick(t *testing.T) {
	f := func(pdu []byte, cellIdx, byteIdx uint8, bit uint8) bool {
		if len(pdu) == 0 {
			return true
		}
		cells := Segment(1, pdu, 4, false)
		ci := int(cellIdx) % len(cells)
		bi := int(byteIdx) % CellPayload
		cells[ci].Payload[bi] ^= 1 << (bit % 8)
		_, got, err := Reassemble(cells)
		if err != nil {
			return true // detected
		}
		// The flip may have landed in padding, in which case the PDU is
		// legitimately intact.
		return bytes.Equal(got, pdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
