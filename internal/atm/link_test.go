package atm

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCellTime(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, LinkConfig{})
	// 53 bytes × 8 bits / 155 Mbps ≈ 2735 ns.
	want := time.Duration(53 * 8 * int64(time.Second) / 155_000_000)
	if l.CellTime() != want {
		t.Errorf("CellTime = %v, want %v", l.CellTime(), want)
	}
	e.Shutdown()
}

func TestLinkDeliversInOrder(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, LinkConfig{})
	var got []uint32
	l.SetReceiver(func(c Cell, _ int) { got = append(got, c.Seq) })
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			l.Send(p, Cell{Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	e.Shutdown()
	if len(got) != 20 {
		t.Fatalf("delivered %d cells, want 20", len(got))
	}
	for i, s := range got {
		if s != uint32(i) {
			t.Fatalf("delivery order %v", got)
		}
	}
}

func TestLinkPacesAtLineRate(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, LinkConfig{PropDelay: time.Microsecond})
	var last sim.Time
	n := 0
	l.SetReceiver(func(c Cell, _ int) { last = e.Now(); n++ })
	const cells = 100
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < cells; i++ {
			l.Send(p, Cell{Len: CellPayload})
		}
	})
	e.Run()
	e.Shutdown()
	if n != cells {
		t.Fatalf("delivered %d", n)
	}
	// Total time ≈ cells × cellTime + propDelay.
	want := time.Duration(cells)*l.CellTime() + time.Microsecond
	got := time.Duration(last)
	if got < want || got > want+time.Duration(cells)*2 {
		t.Errorf("last delivery at %v, want ≈ %v", got, want)
	}
}

func TestQueueingSkewPreservesPerLinkOrder(t *testing.T) {
	e := sim.NewEngine(7)
	l := NewLink(e, LinkConfig{Skew: QueueingSkew{Max: 50 * time.Microsecond}})
	var got []uint32
	l.SetReceiver(func(c Cell, _ int) { got = append(got, c.Seq) })
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			l.Send(p, Cell{Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	e.Shutdown()
	for i, s := range got {
		if s != uint32(i) {
			t.Fatalf("per-link order violated: %v", got)
		}
	}
}

func TestConstantSkewDelaysOneLink(t *testing.T) {
	e := sim.NewEngine(1)
	skew := ConstantSkew{PerLink: []time.Duration{0, 100 * time.Microsecond}}
	l0 := NewLink(e, LinkConfig{Index: 0, Skew: skew})
	l1 := NewLink(e, LinkConfig{Index: 1, Skew: skew})
	var order []int
	rx := func(c Cell, link int) { order = append(order, link) }
	l0.SetReceiver(rx)
	l1.SetReceiver(rx)
	e.Go("tx", func(p *sim.Proc) {
		l1.Send(p, Cell{Len: CellPayload}) // sent first, but delayed link
		l0.Send(p, Cell{Len: CellPayload})
	})
	e.Run()
	e.Shutdown()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("arrival order = %v, want [0 1] (skewed link arrives later)", order)
	}
}

func TestStripeGroupRoundRobin(t *testing.T) {
	e := sim.NewEngine(1)
	g := NewStripeGroup(e, 4, LinkConfig{})
	counts := make(map[int]int)
	g.SetReceiver(func(c Cell, link int) { counts[link]++ })
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			g.Send(p, Cell{Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	e.Shutdown()
	for link := 0; link < 4; link++ {
		if counts[link] != 3 {
			t.Errorf("link %d carried %d cells, want 3", link, counts[link])
		}
	}
}

func TestStripeGroupResetRoundRobin(t *testing.T) {
	e := sim.NewEngine(1)
	g := NewStripeGroup(e, 4, LinkConfig{})
	var firstLink = -1
	g.SetReceiver(func(c Cell, link int) {
		if firstLink == -1 {
			firstLink = link
		}
	})
	e.Go("tx", func(p *sim.Proc) {
		g.Send(p, Cell{Len: CellPayload})
		g.Send(p, Cell{Len: CellPayload})
		g.ResetRoundRobin()
		g.Send(p, Cell{Len: CellPayload})
	})
	e.Run()
	e.Shutdown()
	if g.next != 1 {
		t.Errorf("after reset+1 send, next = %d, want 1", g.next)
	}
	if firstLink != 0 {
		t.Errorf("first cell went on link %d, want 0", firstLink)
	}
}

func TestAggregatePayloadMbps(t *testing.T) {
	e := sim.NewEngine(1)
	g := NewStripeGroup(e, 4, LinkConfig{})
	got := g.AggregatePayloadMbps()
	// 4 × 155 × 44/53 ≈ 514.7 Mbps — the paper rounds to 516.
	if got < 510 || got > 520 {
		t.Errorf("aggregate payload = %f Mbps, want ≈ 515", got)
	}
	e.Shutdown()
}

func TestStripedThroughputApproachesAggregate(t *testing.T) {
	// Blast cells over a 4-wide stripe; payload throughput must approach
	// 4 links' worth, i.e. ~4x one link.
	e := sim.NewEngine(1)
	g := NewStripeGroup(e, 4, LinkConfig{})
	n := 0
	g.SetReceiver(func(c Cell, _ int) { n++ })
	const cells = 4000
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < cells; i++ {
			g.Send(p, Cell{Len: CellPayload})
		}
	})
	end := e.Run()
	e.Shutdown()
	mbps := float64(n*CellPayload*8) / end.Seconds() / 1e6
	want := g.AggregatePayloadMbps()
	if mbps < want*0.98 || mbps > want*1.02 {
		t.Errorf("striped throughput %f Mbps, want ≈ %f", mbps, want)
	}
}

func TestLinkStats(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, LinkConfig{})
	l.SetReceiver(func(Cell, int) {})
	e.Go("tx", func(p *sim.Proc) {
		l.Send(p, Cell{Len: CellPayload})
		l.Send(p, Cell{Len: CellPayload})
	})
	e.Run()
	e.Shutdown()
	s := l.Stats()
	if s.Sent != 2 || s.Delivered != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSkewModels(t *testing.T) {
	e := sim.NewEngine(3)
	if (NoSkew{}).Delay(0, e.Rand()) != 0 {
		t.Error("NoSkew delayed")
	}
	cs := ConstantSkew{PerLink: []time.Duration{5}}
	if cs.Delay(0, e.Rand()) != 5 || cs.Delay(7, e.Rand()) != 0 {
		t.Error("ConstantSkew wrong")
	}
	qs := QueueingSkew{Max: 100}
	for i := 0; i < 50; i++ {
		d := qs.Delay(0, e.Rand())
		if d < 0 || d > 100 {
			t.Fatalf("QueueingSkew out of range: %v", d)
		}
	}
	if (QueueingSkew{}).Delay(0, e.Rand()) != 0 {
		t.Error("zero-max QueueingSkew delayed")
	}
}

func TestLinkStatsStableAfterShutdown(t *testing.T) {
	// Satellite of the snapshot-discipline doc: after Shutdown the
	// counters are final — repeated reads agree and account for every
	// cell (Sent == Delivered + Lost with no loss model).
	e := sim.NewEngine(1)
	g := NewStripeGroup(e, 4, LinkConfig{})
	g.SetReceiver(func(Cell, int) {})
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			g.Send(p, Cell{Len: CellPayload})
		}
	})
	e.Run()
	e.Shutdown()
	s1 := g.Stats()
	s2 := g.Stats()
	if s1 != s2 {
		t.Errorf("post-Shutdown snapshots differ: %+v vs %+v", s1, s2)
	}
	if s1.Sent != 40 || s1.Delivered+s1.Lost != s1.Sent {
		t.Errorf("final stats don't balance: %+v", s1)
	}
	for i, l := range g.Links() {
		ls := l.Stats()
		if ls.Sent != 10 {
			t.Errorf("link %d Sent = %d, want 10", i, ls.Sent)
		}
	}
}
