package atm

import "testing"

func TestPayloadPoolRoundTrip(t *testing.T) {
	p := NewPayloadPool()
	h1, b1 := p.Get()
	h2, b2 := p.Get()
	if b1 == b2 {
		t.Fatal("two live handles share a buffer")
	}
	b1[0], b2[0] = 0xAA, 0xBB
	if p.Bytes(h1)[0] != 0xAA || p.Bytes(h2)[0] != 0xBB {
		t.Fatal("Bytes does not resolve to the written buffer")
	}
	if p.Live() != 2 {
		t.Fatalf("Live = %d, want 2", p.Live())
	}
	p.Put(h1)
	p.Put(h2)
	if p.Live() != 0 {
		t.Fatalf("Live = %d after puts, want 0", p.Live())
	}
}

func TestPayloadPoolPointerStableAcrossGrowth(t *testing.T) {
	p := NewPayloadPool()
	h0, b0 := p.Get()
	b0[0] = 0x5A
	// Force several chunk growths; the first buffer must not move.
	var hs []PoolHandle
	for i := 0; i < 5*poolChunkSlots; i++ {
		h, _ := p.Get()
		hs = append(hs, h)
	}
	if p.Bytes(h0) != b0 || b0[0] != 0x5A {
		t.Fatal("buffer moved or lost its contents across pool growth")
	}
	for _, h := range hs {
		p.Put(h)
	}
	p.Put(h0)
	if p.Live() != 0 {
		t.Fatalf("Live = %d, want 0", p.Live())
	}
}

func TestPayloadPoolDoubleFreePanics(t *testing.T) {
	p := NewPayloadPool()
	h, _ := p.Get()
	p.Put(h)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	p.Put(h)
}

func TestPayloadPoolStaleHandlePanics(t *testing.T) {
	p := NewPayloadPool()
	h, _ := p.Get()
	p.Put(h)
	p.Get() // reuses the slot with a bumped generation
	defer func() {
		if recover() == nil {
			t.Error("stale-generation Bytes did not panic")
		}
	}()
	p.Bytes(h)
}

// TestPayloadPoolSteadyStateZeroAlloc pins the flyweight property: once
// the pool has grown to the workload's high-water mark, Get/Put cycles
// allocate nothing.
func TestPayloadPoolSteadyStateZeroAlloc(t *testing.T) {
	p := NewPayloadPool()
	h, _ := p.Get()
	p.Put(h)
	allocs := testing.AllocsPerRun(1000, func() {
		h, b := p.Get()
		b[0]++
		p.Put(h)
	})
	if allocs != 0 {
		t.Errorf("steady-state Get/Put allocated %.2f per cycle, want 0", allocs)
	}
}
