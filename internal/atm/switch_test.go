package atm

import (
	"sort"
	"testing"

	"repro/internal/sim"
)

// rxRecord captures one delivered cell at an egress port.
type rxRecord struct {
	c    Cell
	lane int
}

// collect installs a recording receiver on port pt's egress group.
func collect(pt *SwitchPort, out *[]rxRecord) {
	pt.Egress().SetReceiver(func(c Cell, lane int) {
		*out = append(*out, rxRecord{c: c, lane: lane})
	})
}

func TestSwitchRoutesByVCI(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 3, SwitchConfig{})
	if err := sw.Route(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(11, 2); err != nil {
		t.Fatal(err)
	}
	var at1, at2 []rxRecord
	collect(sw.Port(1), &at1)
	collect(sw.Port(2), &at2)
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			sw.Port(0).Ingress().Send(p, Cell{VCI: 10, Seq: uint32(i), Len: CellPayload})
			sw.Port(0).Ingress().Send(p, Cell{VCI: 11, Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	if len(at1) != 8 || len(at2) != 8 {
		t.Fatalf("port1 got %d cells, port2 got %d, want 8 each", len(at1), len(at2))
	}
	for _, r := range at1 {
		if r.c.VCI != 10 {
			t.Errorf("port 1 received VCI %d", r.c.VCI)
		}
	}
	for _, r := range at2 {
		if r.c.VCI != 11 {
			t.Errorf("port 2 received VCI %d", r.c.VCI)
		}
	}
	if port, ok := sw.RouteOf(10); !ok || port != 1 {
		t.Errorf("RouteOf(10) = %d,%v", port, ok)
	}
}

func TestSwitchPreservesLaneAndPerLaneOrder(t *testing.T) {
	// The reassembly invariant: a cell entering on ingress lane l must
	// leave on egress lane l, and per-lane FIFO order must hold.
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 2, SwitchConfig{})
	if err := sw.Route(7, 1); err != nil {
		t.Fatal(err)
	}
	var got []rxRecord
	collect(sw.Port(1), &got)
	const cells = 40
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < cells; i++ {
			// Round-robin striping: cell i rides lane i mod width.
			sw.Port(0).Ingress().Send(p, Cell{VCI: 7, Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	if len(got) != cells {
		t.Fatalf("delivered %d cells, want %d", len(got), cells)
	}
	lastSeq := map[int]int{}
	for _, r := range got {
		if int(r.c.Seq)%StripeWidth != r.lane {
			t.Fatalf("cell %d crossed from lane %d to lane %d", r.c.Seq, int(r.c.Seq)%StripeWidth, r.lane)
		}
		if prev, ok := lastSeq[r.lane]; ok && int(r.c.Seq) < prev {
			t.Fatalf("lane %d reordered: %d after %d", r.lane, r.c.Seq, prev)
		}
		lastSeq[r.lane] = int(r.c.Seq)
	}
}

func TestSwitchDuplicateRouteIsError(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 2, SwitchConfig{})
	if err := sw.Route(42, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(42, 0); err == nil {
		t.Error("re-routing VCI 42 to another port did not error")
	}
	if err := sw.Route(42, 1); err == nil {
		t.Error("re-routing VCI 42 to the same port did not error")
	}
	// The original route must be untouched.
	if port, ok := sw.RouteOf(42); !ok || port != 1 {
		t.Errorf("RouteOf(42) = %d,%v after failed re-route", port, ok)
	}
	// Unroute frees the VCI for reuse.
	sw.Unroute(42)
	if err := sw.Route(42, 0); err != nil {
		t.Errorf("Route after Unroute: %v", err)
	}
}

func TestSwitchRouteRangeError(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 2, SwitchConfig{})
	if err := sw.Route(1, 2); err == nil {
		t.Error("routing to port 2 of a 2-port switch did not error")
	}
	if err := sw.Route(1, -1); err == nil {
		t.Error("routing to port -1 did not error")
	}
}

func TestSwitchUnroutedVCIDroppedAndCounted(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 2, SwitchConfig{})
	var got []rxRecord
	collect(sw.Port(1), &got)
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			sw.Port(0).Ingress().Send(p, Cell{VCI: 99, Len: CellPayload})
		}
	})
	e.Run()
	if len(got) != 0 {
		t.Fatalf("unrouted VCI delivered %d cells", len(got))
	}
	st := sw.Port(0).Stats()
	if st.In != 5 || st.NoRoute != 5 {
		t.Errorf("input port stats = %+v, want In=5 NoRoute=5", st)
	}
}

func TestSwitchQueueOverflowDropsAndCounts(t *testing.T) {
	// Two ports blast at one output at 2× its drain rate with a tiny
	// queue: cells must be dropped (never block the inputs), counted,
	// and the accounting must balance.
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 3, SwitchConfig{QueueCells: 8})
	if err := sw.Route(10, 2); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(11, 2); err != nil {
		t.Fatal(err)
	}
	var got []rxRecord
	collect(sw.Port(2), &got)
	const perInput = 400
	for in, v := range []VCI{10, 11} {
		in, v := in, v
		e.Go("tx", func(p *sim.Proc) {
			for i := 0; i < perInput; i++ {
				sw.Port(in).Ingress().Send(p, Cell{VCI: v, Seq: uint32(i), Len: CellPayload})
			}
		})
	}
	e.Run()
	st := sw.Stats()
	if st.Dropped == 0 {
		t.Fatal("2:1 overload through an 8-cell queue dropped nothing")
	}
	if st.In != 2*perInput {
		t.Errorf("In = %d, want %d", st.In, 2*perInput)
	}
	if st.Forwarded+st.Dropped+st.NoRoute != st.In {
		t.Errorf("accounting leak: In=%d Forwarded=%d Dropped=%d NoRoute=%d", st.In, st.Forwarded, st.Dropped, st.NoRoute)
	}
	if int64(len(got)) != st.Forwarded {
		t.Errorf("delivered %d cells but Forwarded=%d", len(got), st.Forwarded)
	}
	// Per-lane FIFO order must survive the overload.
	lastSeq := map[[2]int]int{}
	for _, r := range got {
		key := [2]int{int(r.c.VCI), r.lane}
		if prev, ok := lastSeq[key]; ok && int(r.c.Seq) < prev {
			t.Fatalf("VCI %d lane %d reordered under overload", r.c.VCI, r.lane)
		}
		lastSeq[key] = int(r.c.Seq)
	}
}

func TestSwitchedPDUSurvivesInterleaving(t *testing.T) {
	// Two senders segment PDUs onto the same output port concurrently;
	// each PDU must reassemble byte for byte from its own VCI's cells.
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 3, SwitchConfig{})
	if err := sw.Route(20, 2); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(21, 2); err != nil {
		t.Fatal(err)
	}
	pdus := map[VCI][]byte{}
	for i, v := range []VCI{20, 21} {
		pdu := make([]byte, 1000+i*333)
		for j := range pdu {
			pdu[j] = byte(j*7 + i*13 + 1)
		}
		pdus[v] = pdu
	}
	byVCI := map[VCI][]Cell{}
	sw.Port(2).Egress().SetReceiver(func(c Cell, lane int) {
		byVCI[c.VCI] = append(byVCI[c.VCI], c)
	})
	for in, v := range []VCI{20, 21} {
		in, v := in, v
		e.Go("tx", func(p *sim.Proc) {
			for _, c := range Segment(v, pdus[v], StripeWidth, true) {
				sw.Port(in).Ingress().Send(p, c)
			}
		})
	}
	e.Run()
	for v, want := range pdus {
		cells := byVCI[v]
		// Per-lane order is preserved but lanes interleave; the Seq
		// carried for the sequence-number strategy restores stream order.
		sort.Slice(cells, func(i, j int) bool { return cells[i].Seq < cells[j].Seq })
		gotVCI, got, err := Reassemble(cells)
		if err != nil {
			t.Fatalf("VCI %d: %v", v, err)
		}
		if gotVCI != v || string(got) != string(want) {
			t.Errorf("VCI %d: PDU corrupted across the switch", v)
		}
	}
}

func TestSwitchPortPanicsOutOfRange(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	sw := NewSwitch(e, 2, SwitchConfig{})
	defer func() {
		if recover() == nil {
			t.Error("Port(5) did not panic")
		}
	}()
	sw.Port(5)
}
