package atm

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// sendCells pushes n full cells with increasing Seq through l.
func sendCells(e *sim.Engine, l *Link, n int) {
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Send(p, Cell{Seq: uint32(i), Len: CellPayload})
		}
	})
}

func TestLinkDownWindowDrainsAndResumes(t *testing.T) {
	// A link that goes down mid-stream: cells already in flight deliver,
	// cells serialized during the outage are lost, and delivery resumes
	// cleanly once the window ends — no wedge, no reordering.
	e := sim.NewEngine(1)
	down := fault.Window{From: sim.Time(50 * time.Microsecond), To: sim.Time(150 * time.Microsecond)}
	l := NewLink(e, LinkConfig{Fault: &fault.Config{Down: []fault.Window{down}}, FaultSite: "t"})
	var seqs []uint32
	var times []sim.Time
	l.SetReceiver(func(c Cell, _ int) { seqs = append(seqs, c.Seq); times = append(times, e.Now()) })
	sendCells(e, l, 100)
	e.Run()
	e.Shutdown()

	st := l.Stats()
	fs := l.Injector().Stats()
	if fs.DownDropped == 0 {
		t.Fatalf("no cells lost to the down window: %+v", fs)
	}
	if st.Lost != fs.DownDropped || st.Sent != st.Delivered+st.Lost {
		t.Errorf("stats don't balance: link %+v fault %+v", st, fs)
	}
	if len(seqs) == 0 {
		t.Fatal("nothing delivered")
	}
	// Delivery resumes after the window with the post-outage cells, in order.
	if last := times[len(times)-1]; last <= down.To {
		t.Errorf("no delivery after the outage (last at %v)", last)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("out-of-order delivery around outage: %v", seqs)
		}
		if times[i] < times[i-1] {
			t.Fatalf("delivery times went backwards")
		}
	}
}

func TestLinkCorruptionFlipsOneBit(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, LinkConfig{Fault: &fault.Config{CorruptProb: 1}, FaultSite: "t"})
	var got []Cell
	l.SetReceiver(func(c Cell, _ int) { got = append(got, c) })
	e.Go("tx", func(p *sim.Proc) {
		l.Send(p, Cell{Len: CellPayload}) // all-zero payload
	})
	e.Run()
	e.Shutdown()
	if len(got) != 1 {
		t.Fatalf("delivered %d cells", len(got))
	}
	ones := 0
	for _, b := range got[0].Payload {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", ones)
	}
	if l.Injector().Stats().Corrupted != 1 {
		t.Errorf("injector stats: %+v", l.Injector().Stats())
	}
}

func TestLinkDuplication(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, LinkConfig{Fault: &fault.Config{DupProb: 1}, FaultSite: "t"})
	n := 0
	l.SetReceiver(func(c Cell, _ int) { n++ })
	sendCells(e, l, 10)
	e.Run()
	e.Shutdown()
	st := l.Stats()
	if n != 20 || st.Delivered != 20 || st.Duplicated != 10 {
		t.Errorf("dup delivery: n=%d stats=%+v", n, st)
	}
	if st.Sent+st.Duplicated != st.Delivered+st.Lost {
		t.Errorf("stats don't balance: %+v", st)
	}
}

func TestLinkReorderingIsBounded(t *testing.T) {
	e := sim.NewEngine(9)
	l := NewLink(e, LinkConfig{Fault: &fault.Config{ReorderProb: 0.3, ReorderMax: 30 * time.Microsecond}, FaultSite: "t"})
	var seqs []uint32
	l.SetReceiver(func(c Cell, _ int) { seqs = append(seqs, c.Seq) })
	sendCells(e, l, 200)
	e.Run()
	e.Shutdown()
	if len(seqs) != 200 {
		t.Fatalf("delivered %d/200", len(seqs))
	}
	inversions, maxDisp := 0, 0
	for i, s := range seqs {
		if d := int(s) - i; d > maxDisp {
			maxDisp = d
		}
		if i > 0 && s < seqs[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("ReorderProb=0.3 produced no reordering")
	}
	// 30 µs of delay at ~2.7 µs/cell bounds displacement to ~12 cells.
	if maxDisp > 20 {
		t.Errorf("displacement %d exceeds the reorder bound", maxDisp)
	}
}

func TestLinkFaultDeterministicForFixedSeed(t *testing.T) {
	run := func() ([]uint32, LinkStats, fault.Stats) {
		e := sim.NewEngine(1234)
		l := NewLink(e, LinkConfig{Fault: &fault.Config{
			Loss:        fault.BurstLoss(0.05, 4),
			CorruptProb: 0.01,
			DupProb:     0.01,
			ReorderProb: 0.05,
			ReorderMax:  20 * time.Microsecond,
		}, FaultSite: "t"})
		var seqs []uint32
		l.SetReceiver(func(c Cell, _ int) { seqs = append(seqs, c.Seq) })
		sendCells(e, l, 500)
		e.Run()
		e.Shutdown()
		return seqs, l.Stats(), l.Injector().Stats()
	}
	q1, s1, f1 := run()
	q2, s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Fatalf("stats not deterministic:\n%+v %+v\n%+v %+v", s1, f1, s2, f2)
	}
	if len(q1) != len(q2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(q1), len(q2))
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("delivery order diverges at %d", i)
		}
	}
}
