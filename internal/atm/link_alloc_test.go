package atm

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

// measureLinkRun sends cells through l from a fresh proc and returns
// the heap allocations the whole run performed.
func measureLinkRun(e *sim.Engine, l *Link, cells int) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < cells; i++ {
			l.Send(p, Cell{Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// A deterministic link runs in train mode: serialization and delivery
// times are arithmetic, one pooled walker event drains the train, and
// the Send→deliver path must not allocate per cell. The bound leaves
// room for the fixed per-run cost (one proc + goroutine) only — the old
// closure-per-cell design would exceed it by two orders of magnitude.
func TestLinkSendDeliverSteadyStateAllocs(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	l := NewLink(e, LinkConfig{PropDelay: time.Microsecond})
	delivered := 0
	l.SetReceiver(func(Cell, int) { delivered++ })

	const warm, cells = 200, 2000
	measureLinkRun(e, l, warm) // warm the event pool and train ring
	allocs := measureLinkRun(e, l, cells)
	if delivered != warm+cells {
		t.Fatalf("delivered %d cells, want %d", delivered, warm+cells)
	}
	if allocs > 64 {
		t.Errorf("sending %d cells allocated %d objects, want ≤ 64", cells, allocs)
	}
}

func BenchmarkLinkSendDeliver(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	l := NewLink(e, LinkConfig{PropDelay: time.Microsecond})
	n := 0
	l.SetReceiver(func(Cell, int) { n++ })
	b.ReportAllocs()
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			l.Send(p, Cell{Seq: uint32(i), Len: CellPayload})
		}
	})
	e.Run()
}
