package stats

import (
	"strings"
	"testing"
	"time"
)

func TestMbps(t *testing.T) {
	if got := Mbps(1_000_000, time.Second); got != 8 {
		t.Errorf("Mbps = %f", got)
	}
	if got := Mbps(16384, 254*time.Microsecond); got < 515 || got > 517 {
		t.Errorf("16KB/254µs = %f, want ≈516", got)
	}
	if Mbps(100, 0) != 0 {
		t.Error("zero duration not handled")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Cols: []string{"a", "bbbb"}}
	tab.AddRow("x", "1")
	tab.AddRow("yyyy", "22")
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "yyyy") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestRenderFigure(t *testing.T) {
	var s Series
	s.Name = "curve"
	for _, x := range []float64{1024, 2048, 4096, 8192} {
		s.Add(x, x/100)
	}
	out := RenderFigure("Fig", "bytes", "Mbps", []Series{s})
	for _, want := range []string{"Fig", "curve", "bytes", "Mbps", "1024", "8192"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigureEmpty(t *testing.T) {
	out := RenderFigure("Empty", "x", "y", nil)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty figure: %q", out)
	}
}

func TestRenderFigureMultiSeries(t *testing.T) {
	a := Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}}
	b := Series{Name: "b", X: []float64{1, 2}, Y: []float64{5, 15}}
	out := RenderFigure("F", "x", "y", []Series{a, b})
	if !strings.Contains(out, "[*] a") || !strings.Contains(out, "[+] b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
}

func TestPerNodeAggregation(t *testing.T) {
	p := NewPerNode()
	p.Observe(0, 1000, 1*time.Millisecond)
	p.Observe(0, 1000, 2*time.Millisecond)
	p.Observe(1, 500, 3*time.Millisecond)
	a := p.Node(0)
	if a.Messages != 2 || a.Bytes != 2000 || a.First != time.Millisecond || a.Last != 2*time.Millisecond {
		t.Errorf("node 0 agg = %+v", a)
	}
	// 2000 bytes over 1 ms = 16 Mbps.
	if a.Mbps() < 15.9 || a.Mbps() > 16.1 {
		t.Errorf("node 0 Mbps = %f", a.Mbps())
	}
	if missing := p.Node(9); missing.Messages != 0 || missing.Node != 9 {
		t.Errorf("absent node agg = %+v", missing)
	}
	nodes := p.Nodes()
	if len(nodes) != 2 || nodes[0].Node != 0 || nodes[1].Node != 1 {
		t.Errorf("Nodes() = %+v", nodes)
	}
	agg := p.Aggregate()
	if agg.Node != -1 || agg.Messages != 3 || agg.Bytes != 2500 {
		t.Errorf("aggregate = %+v", agg)
	}
	if agg.First != time.Millisecond || agg.Last != 3*time.Millisecond {
		t.Errorf("aggregate window = %v..%v", agg.First, agg.Last)
	}
}

func TestPerNodeEmpty(t *testing.T) {
	p := NewPerNode()
	if len(p.Nodes()) != 0 {
		t.Error("empty aggregator has nodes")
	}
	agg := p.Aggregate()
	if agg.Messages != 0 || agg.Mbps() != 0 {
		t.Errorf("empty aggregate = %+v", agg)
	}
}
