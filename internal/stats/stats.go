// Package stats provides measurement helpers and text renderers for the
// reproduction's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mbps converts a byte count over a duration to megabits per second.
func Mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64 // message size in bytes
	Y    []float64 // Mbps (or µs for latency series)
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table is a simple text table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	width := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	total := len(t.Cols)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderFigure draws an ASCII chart of the series (log2 x-axis, linear
// y), followed by the exact values — the paper's figures as text.
func RenderFigure(title, xlabel, ylabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	const w, h = 64, 16
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxY == 0 {
		return title + " (no data)\n"
	}
	lx := func(x float64) float64 { return math.Log2(math.Max(x, 1)) }
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	marks := []byte("*+xo#@")
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			fx := 0.0
			if lx(maxX) > lx(minX) {
				fx = (lx(s.X[i]) - lx(minX)) / (lx(maxX) - lx(minX))
			}
			fy := s.Y[i] / maxY
			col := int(fx * float64(w-1))
			row := h - 1 - int(fy*float64(h-1))
			if row >= 0 && row < h && col >= 0 && col < w {
				grid[row][col] = mark
			}
		}
	}
	fmt.Fprintf(&b, "%8.0f |%s\n", maxY, string(grid[0]))
	for i := 1; i < h; i++ {
		fmt.Fprintf(&b, "%8s |%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "0", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-10.0f%*s\n", "", minX, w-10, fmt.Sprintf("%.0f", maxX))
	fmt.Fprintf(&b, "          x: %s   y: %s\n", xlabel, ylabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  [%c] %s\n", marks[si%len(marks)], s.Name)
	}
	// Exact values.
	cols := []string{xlabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	tab := Table{Cols: cols}
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%.0f", x)}
		for _, s := range series {
			val := ""
			for i := range s.X {
				if s.X[i] == x {
					val = fmt.Sprintf("%.1f", s.Y[i])
				}
			}
			row = append(row, val)
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.Render())
	return b.String()
}

// Summary holds simple aggregate statistics.
type Summary struct {
	N              int
	Mean, Min, Max float64
}

// Summarize computes aggregates over vs.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vs), Min: vs[0], Max: vs[0]}
	total := 0.0
	for _, v := range vs {
		total += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean = total / float64(len(vs))
	return s
}
