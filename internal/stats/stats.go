// Package stats provides measurement helpers and text renderers for the
// reproduction's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mbps converts a byte count over a duration to megabits per second.
func Mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64 // message size in bytes
	Y    []float64 // Mbps (or µs for latency series)
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table is a simple text table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	width := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	total := len(t.Cols)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderFigure draws an ASCII chart of the series (log2 x-axis, linear
// y), followed by the exact values — the paper's figures as text.
func RenderFigure(title, xlabel, ylabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	const w, h = 64, 16
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxY == 0 {
		return title + " (no data)\n"
	}
	lx := func(x float64) float64 { return math.Log2(math.Max(x, 1)) }
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	marks := []byte("*+xo#@")
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			fx := 0.0
			if lx(maxX) > lx(minX) {
				fx = (lx(s.X[i]) - lx(minX)) / (lx(maxX) - lx(minX))
			}
			fy := s.Y[i] / maxY
			col := int(fx * float64(w-1))
			row := h - 1 - int(fy*float64(h-1))
			if row >= 0 && row < h && col >= 0 && col < w {
				grid[row][col] = mark
			}
		}
	}
	fmt.Fprintf(&b, "%8.0f |%s\n", maxY, string(grid[0]))
	for i := 1; i < h; i++ {
		fmt.Fprintf(&b, "%8s |%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "0", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-10.0f%*s\n", "", minX, w-10, fmt.Sprintf("%.0f", maxX))
	fmt.Fprintf(&b, "          x: %s   y: %s\n", xlabel, ylabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  [%c] %s\n", marks[si%len(marks)], s.Name)
	}
	// Exact values.
	cols := []string{xlabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	tab := Table{Cols: cols}
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%.0f", x)}
		for _, s := range series {
			val := ""
			for i := range s.X {
				if s.X[i] == x {
					val = fmt.Sprintf("%.1f", s.Y[i])
				}
			}
			row = append(row, val)
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.Render())
	return b.String()
}

// Summary holds simple aggregate statistics.
type Summary struct {
	N              int
	Mean, Min, Max float64
}

// Summarize computes aggregates over vs.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vs), Min: vs[0], Max: vs[0]}
	total := 0.0
	for _, v := range vs {
		total += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean = total / float64(len(vs))
	return s
}

// NodeAgg accumulates one node's deliveries: message and byte counts
// bracketed by the first and last delivery times (simulation time as an
// offset from the run's origin).
type NodeAgg struct {
	Node     int
	Messages int
	Bytes    int64
	First    time.Duration
	Last     time.Duration
}

// Mbps is the node's delivered throughput over its own first-to-last
// window.
func (a NodeAgg) Mbps() float64 { return Mbps(a.Bytes, a.Last-a.First) }

// PerNode aggregates deliveries by node — the per-client view of a
// fan-in experiment's server.
type PerNode struct {
	nodes map[int]*NodeAgg
}

// NewPerNode creates an empty aggregator.
func NewPerNode() *PerNode { return &PerNode{nodes: make(map[int]*NodeAgg)} }

// Observe records one delivery of the given size attributed to node at
// the given simulation time.
func (p *PerNode) Observe(node, bytes int, at time.Duration) {
	a, ok := p.nodes[node]
	if !ok {
		a = &NodeAgg{Node: node, First: at}
		p.nodes[node] = a
	}
	if a.Messages == 0 || at < a.First {
		a.First = at
	}
	if at > a.Last {
		a.Last = at
	}
	a.Messages++
	a.Bytes += int64(bytes)
}

// Node returns node's aggregate (zero-valued if it never delivered).
func (p *PerNode) Node(node int) NodeAgg {
	if a, ok := p.nodes[node]; ok {
		return *a
	}
	return NodeAgg{Node: node}
}

// Nodes returns every node's aggregate, sorted by node id.
func (p *PerNode) Nodes() []NodeAgg {
	out := make([]NodeAgg, 0, len(p.nodes))
	for _, a := range p.nodes {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Aggregate folds all nodes into one NodeAgg (Node = -1) whose window
// spans the earliest First to the latest Last.
func (p *PerNode) Aggregate() NodeAgg {
	agg := NodeAgg{Node: -1}
	first := true
	for _, a := range p.nodes {
		agg.Messages += a.Messages
		agg.Bytes += a.Bytes
		if first || a.First < agg.First {
			agg.First = a.First
		}
		if a.Last > agg.Last {
			agg.Last = a.Last
		}
		first = false
	}
	return agg
}
