package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/workload"
)

func TestTestbedIsTwoNodeCluster(t *testing.T) {
	tb := NewTestbed(Options{})
	defer tb.Shutdown()
	if len(tb.Nodes) != 2 || tb.A != tb.Nodes[0] || tb.B != tb.Nodes[1] {
		t.Error("testbed nodes not the cluster's nodes")
	}
	if tb.Fabric != nil {
		t.Error("back-to-back testbed must not have a fabric")
	}
	if tb.A.Addr != 1 || tb.B.Addr != 2 {
		t.Errorf("addrs = %d,%d, want 1,2", tb.A.Addr, tb.B.Addr)
	}
}

func TestSeedDefaultsAndZeroSentinel(t *testing.T) {
	if got := (Options{}).withDefaults().Seed; got != DefaultSeed {
		t.Errorf("zero-value Seed = %#x, want DefaultSeed", got)
	}
	if got := (Options{Seed: ZeroSeed}).withDefaults().Seed; got != 0 {
		t.Errorf("ZeroSeed maps to %#x, want literal 0", got)
	}
	if got := (Options{Seed: 7}).withDefaults().Seed; got != 7 {
		t.Errorf("explicit Seed = %d, want 7", got)
	}
}

func TestClusterLatencyAcrossSwitch(t *testing.T) {
	cl := NewCluster(Options{}, 3)
	defer cl.Shutdown()
	viaSwitch, err := cl.RunLatency(0, 2, UDPIP, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Options{})
	defer tb.Shutdown()
	direct, err := tb.RunLatency(UDPIP, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if viaSwitch <= 0 || direct <= 0 {
		t.Fatalf("rtt via switch %v, direct %v", viaSwitch, direct)
	}
	// The switched path adds a store-and-forward hop per direction, so
	// it must cost more than the paper's back-to-back wiring.
	if viaSwitch <= direct {
		t.Errorf("rtt via switch %v not above direct %v", viaSwitch, direct)
	}
}

func TestOpenPairValidation(t *testing.T) {
	cl := NewCluster(Options{}, 3)
	defer cl.Shutdown()
	for _, pair := range [][2]int{{-1, 0}, {0, 3}, {5, 1}} {
		if _, _, err := cl.OpenPair(pair[0], pair[1], UDPIP); err == nil {
			t.Errorf("OpenPair(%d,%d) did not error", pair[0], pair[1])
		}
	}
	if _, _, err := cl.OpenPair(1, 1, UDPIP); err == nil {
		t.Error("OpenPair to self did not error")
	}
}

func TestOpenPairVCICollisionSurfaces(t *testing.T) {
	cl := NewCluster(Options{}, 3)
	defer cl.Shutdown()
	// Claim the VCI the allocator will hand out next; the resulting
	// switch-route collision must surface as an error, not a misroute.
	if err := cl.Fabric.Route(atm.VCI(101), 2); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.OpenPair(0, 1, UDPIP)
	if err == nil {
		t.Fatal("OpenPair with colliding VCI did not error")
	}
	if !strings.Contains(err.Error(), "already routed") {
		t.Errorf("unexpected error: %v", err)
	}
	// The claimed route must still point where it was installed.
	if port, ok := cl.Fabric.RouteOf(atm.VCI(101)); !ok || port != 2 {
		t.Errorf("RouteOf(101) = %d,%v after collision", port, ok)
	}
}

func TestFanInPacedDeliversEverythingIntact(t *testing.T) {
	cl := NewCluster(Options{}, 9)
	defer cl.Shutdown()
	w := workload.DefaultFanIn()
	res, err := cl.RunFanIn(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Sent {
		t.Errorf("delivered %d/%d messages", res.Delivered, res.Sent)
	}
	if res.Corrupt != 0 {
		t.Errorf("%d corrupt deliveries", res.Corrupt)
	}
	if res.SwitchDropped != 0 || res.SwitchNoRoute != 0 {
		t.Errorf("paced run lost cells in the fabric: dropped=%d noroute=%d", res.SwitchDropped, res.SwitchNoRoute)
	}
	if res.AggregateMbps <= 0 {
		t.Error("no aggregate throughput measured")
	}
	for _, c := range res.Clients {
		if c.Delivered != w.Messages {
			t.Errorf("client %d delivered %d/%d", c.Client, c.Delivered, w.Messages)
		}
		if c.Mbps <= 0 {
			t.Errorf("client %d has no throughput", c.Client)
		}
	}
	// The server's board also saw no loss: every cell the fabric
	// forwarded was absorbed.
	if st := cl.Nodes[0].Board.Stats(); st.CellsDroppedFIFO != 0 || st.PDUsDropped != 0 {
		t.Errorf("server board dropped: fifo=%d pdus=%d", st.CellsDroppedFIFO, st.PDUsDropped)
	}
}

func TestFanInOverloadDropsButNeverCorrupts(t *testing.T) {
	// Full rate, no pacing: 8 clients × 622 Mbps converge on one 622
	// Mbps egress — incast collapse. The switch queue must overflow
	// (counted), and whatever survives must be byte-for-byte intact.
	res, err := RunFanIn(Options{}, 8, 16*1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchDropped == 0 {
		t.Error("overloaded fabric recorded no drops")
	}
	if res.Corrupt != 0 {
		t.Errorf("%d corrupt deliveries under overload", res.Corrupt)
	}
	if res.Delivered >= res.Sent {
		t.Errorf("overload delivered %d/%d — not an overload", res.Delivered, res.Sent)
	}
}

func TestFanInDeterministic(t *testing.T) {
	run := func() *FanInResult {
		cl := NewCluster(Options{}, 9)
		defer cl.Shutdown()
		res, err := cl.RunFanIn(workload.DefaultFanIn())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestFanInValidation(t *testing.T) {
	tb := NewTestbed(Options{})
	defer tb.Shutdown()
	if _, err := tb.RunFanIn(workload.DefaultFanIn()); err == nil {
		t.Error("fan-in on a fabric-less testbed did not error")
	}
	cl := NewCluster(Options{}, 3)
	defer cl.Shutdown()
	if _, err := cl.RunFanIn(workload.FanIn{Clients: 5, MessageBytes: 1024, Messages: 1}); err == nil {
		t.Error("5 clients on a 3-node cluster did not error")
	}
	if _, err := cl.RunFanIn(workload.FanIn{Clients: 2, MessageBytes: 4, Messages: 1}); err == nil {
		t.Error("message below the identity header size did not error")
	}
	if _, err := cl.RunFanIn(workload.FanIn{Clients: 2, MessageBytes: 1024}); err == nil {
		t.Error("zero messages did not error")
	}
}
