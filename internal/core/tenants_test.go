package core

import (
	"encoding/json"
	"testing"

	"repro/internal/fbuf"
)

// TestTenantsSteadyDelivery runs a modest steady multi-tenant workload
// with churn: every tenant's PDUs must arrive, the churn cycles must
// complete, and the fbuf cache must see real eviction pressure once the
// tenant count exceeds its budget.
func TestTenantsSteadyDelivery(t *testing.T) {
	res, err := RunTenants(Options{}, Tenants{Tenants: 24, PDUs: 3, PDUBytes: 1024, Churn: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shortfall != 0 {
		t.Fatalf("steady shortfall %d (delivered %d/%d)", res.Shortfall, res.Delivered, res.Sent)
	}
	if !res.Isolated {
		t.Fatalf("min delivered %d of %d without any misbehaving tenant", res.MinDelivered, res.PDUs)
	}
	if res.ChurnCycles != 8 || res.ChurnDelivered != 8 {
		t.Fatalf("churn cycles %d delivered %d, want 8/8", res.ChurnCycles, res.ChurnDelivered)
	}
	if res.MuxChannels == 0 || res.PeakBoundVCIs < 24 {
		t.Fatalf("mux channels %d, bound VCIs %d", res.MuxChannels, res.PeakBoundVCIs)
	}
	// 24 steady paths + churn over a 16-path budget must evict.
	if res.FbufEvictions == 0 {
		t.Fatal("no fbuf evictions under path churn")
	}
	if res.FbufHits == 0 {
		t.Fatal("no cached fbuf allocations at all")
	}
	if res.Violations != 0 {
		t.Fatalf("%d spurious violations", res.Violations)
	}
	if res.PerPDUCost <= 0 {
		t.Fatal("per-PDU cost not measured")
	}
}

// TestTenantsDeterministic pins that two runs of the same configuration
// serialize to identical bytes — the property the committed
// BENCH_tenants.json artifact relies on.
func TestTenantsDeterministic(t *testing.T) {
	cfg := Tenants{Tenants: 20, PDUs: 2, PDUBytes: 512, Churn: 5, FbufPaths: 8}
	r1, err := RunTenants(Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTenants(Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("tenants run not deterministic:\n%s\n%s", b1, b2)
	}
	// A different seed must still deliver everything (the workload is
	// deterministic in outcome, only event interleaving shifts).
	r3, err := RunTenants(Options{Seed: 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Shortfall != 0 {
		t.Fatalf("seed 7 shortfall %d", r3.Shortfall)
	}
}

// TestTenantsMisbehaverIsolated runs the seeded misbehaving-tenant
// scenario: a full-blast sender whose receiver never reaps shares the
// adaptor with paced innocents. With the fairness mechanisms on, every
// innocent still gets its PDUs through while the hog's are dropped at
// the board.
func TestTenantsMisbehaverIsolated(t *testing.T) {
	res, err := RunTenants(Options{}, Tenants{Tenants: 16, PDUs: 4, PDUBytes: 1024, Misbehave: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isolated {
		t.Fatalf("innocents not isolated: min delivered %d of %d (shortfall %d)",
			res.MinDelivered, res.PDUs, res.Shortfall)
	}
	if res.HogSent == 0 {
		t.Fatal("hog sent nothing; scenario is vacuous")
	}
	if res.QuotaDropped == 0 && res.RingDropped == 0 {
		t.Fatal("no quota or ring drops; the hog was never actually curbed")
	}
}

// TestTenantsScaleOutPastChannels opens 64 tenants over 15 channels
// with a small fbuf budget and checks the per-PDU cost is measured and
// the cache is under genuine pressure — the sweep's smallest interesting
// point, kept cheap enough for the tier-1 suite.
func TestTenantsScaleOutPastChannels(t *testing.T) {
	res, err := RunTenants(Options{}, Tenants{
		Tenants: 64, PDUs: 2, PDUBytes: 1024, Churn: 4,
		FbufPaths: fbuf.DefaultMaxCachedPaths,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shortfall != 0 {
		t.Fatalf("shortfall %d at 64 tenants", res.Shortfall)
	}
	if res.PeakBoundVCIs < 64 {
		t.Fatalf("bound VCIs %d, want >= 64", res.PeakBoundVCIs)
	}
	if res.MuxChannels != 15 {
		t.Fatalf("mux channels %d, want all 15", res.MuxChannels)
	}
	if res.FbufEvictions == 0 || res.FbufDemotions == 0 {
		t.Fatalf("no cache pressure at 64 tenants over a 16-path budget (evictions %d, demotions %d)",
			res.FbufEvictions, res.FbufDemotions)
	}
}

// TestTenantsFbufMissesUnderChurn pins the degraded end of the cache: a
// one-path budget means every define evicts the previous tenant's path,
// so any PDU arriving after its successor's setup must take the
// uncached (miss) route while deliveries right after definition still
// hit.
func TestTenantsFbufMissesUnderChurn(t *testing.T) {
	res, err := RunTenants(Options{}, Tenants{
		Tenants: 8, PDUs: 3, PDUBytes: 8192, FbufPaths: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shortfall != 0 {
		t.Fatalf("shortfall %d", res.Shortfall)
	}
	if res.FbufMisses == 0 {
		t.Fatal("one-path budget produced no misses")
	}
	if res.FbufHits == 0 {
		t.Fatal("no hits at all; even freshly defined paths missed")
	}
}
