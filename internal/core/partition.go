package core

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/sim"
)

// ShardPlan maps a topology onto the engines of a sim.ShardGroup.
//
// The plan keeps one invariant that makes results independent of the
// shard count: the switch fabric always occupies shard 0 alone, and
// every node lands on a shard ≥ 1. Every node↔switch link is therefore
// a cross-shard link at ANY shard count ≥ 2, so the set of cross-shard
// channels — and with it the construction-order channel ids that
// tie-break the canonical event order — is identical whether the nodes
// spread over one shard or seven. Raising the shard count only changes
// which engine executes a node's events, never how they are stamped,
// which is why fig3/table1/fan-in are byte-identical at shards=1/2/4.
type ShardPlan struct {
	Shards      int   // engines in the group
	FabricShard int   // shard running the switch (clusters only)
	NodeShard   []int // node index → shard
}

// clusterPlan partitions an n-node switched cluster over up to
// requested shards: the fabric alone on shard 0, node i on shard
// 1 + i mod (k-1). requested is clamped to n+1 (more shards than
// components would leave engines permanently idle). Callers ensure
// requested ≥ 2.
func clusterPlan(requested, nodes int) ShardPlan {
	k := requested
	if max := nodes + 1; k > max {
		k = max
	}
	p := ShardPlan{Shards: k, FabricShard: 0, NodeShard: make([]int, nodes)}
	for i := range p.NodeShard {
		p.NodeShard[i] = 1 + i%(k-1)
	}
	return p
}

// testbedPlan partitions the two-node back-to-back testbed: host A on
// shard 0, host B on shard 1. There is no fabric, so two shards is
// always the whole plan; any higher request clamps to 2.
func testbedPlan() ShardPlan {
	return ShardPlan{Shards: 2, FabricShard: -1, NodeShard: []int{0, 1}}
}

// checkShardable refuses configurations whose per-cell randomness is
// drawn from the shared engine RNG: that stream is consumed in delivery
// order, which depends on the partition, so no shard layout can
// reproduce the serial draws. The deterministic fault plane
// (Link.Fault) is fine — injectors draw from site-derived streams.
func checkShardable(opt Options) {
	if opt.Link.DrawsEngineRand() {
		panic(fmt.Sprintf("core: Shards=%d is incompatible with a link config that draws from the shared engine RNG per cell (LossRate=%v, Skew=%T); run with Shards=1 or express the randomness as a fault injector (Link.Fault)", opt.Shards, opt.Link.LossRate, opt.Link.Skew))
	}
}

// Plan reports how the cluster's components were mapped onto shards
// (Shards == 1 for a serial cluster).
func (cl *Cluster) Plan() ShardPlan { return cl.plan }

// EngFor returns the engine node i runs on (the single engine for a
// serial cluster).
func (cl *Cluster) EngFor(node int) *sim.Engine {
	if cl.Group == nil {
		return cl.Eng
	}
	return cl.engs[node]
}

// Go spawns a simulated process on node i's engine. Experiment drivers
// must place each proc on the shard of the node whose state it touches;
// cross-node interaction happens only through the links.
func (cl *Cluster) Go(node int, name string, fn func(p *sim.Proc)) *sim.Proc {
	return cl.EngFor(node).Go(name, fn)
}

// Run executes the simulation to quiescence — Engine.Run for a serial
// cluster, the conservative window loop for a sharded one — and returns
// the virtual time reached.
func (cl *Cluster) Run() sim.Time {
	if cl.Group == nil {
		return cl.Eng.Run()
	}
	return cl.Group.Run()
}

// RunUntil executes until the virtual clock would pass t.
func (cl *Cluster) RunUntil(t sim.Time) sim.Time {
	if cl.Group == nil {
		return cl.Eng.RunUntil(t)
	}
	return cl.Group.RunUntil(t)
}

// Now returns the current virtual time (the latest shard clock, for a
// sharded cluster).
func (cl *Cluster) Now() sim.Time {
	if cl.Group == nil {
		return cl.Eng.Now()
	}
	return cl.Group.Now()
}

// Events returns the cumulative executed-event count across the whole
// simulation — the denominator for events/sec measurements.
func (cl *Cluster) Events() uint64 {
	if cl.Group == nil {
		return cl.Eng.Events()
	}
	return cl.Group.Events()
}

// DerivedSites returns every DeriveRand site name the simulation has
// derived, sorted — identical across shard counts by construction, and
// pinned so by the partition-independence regression tests.
func (cl *Cluster) DerivedSites() []string {
	if cl.Group == nil {
		return cl.Eng.DerivedSites()
	}
	return cl.Group.DerivedSites()
}

// buildShardedCluster assembles the n-node switched topology across a
// shard group according to plan, wiring every node to the fabric with
// cross-shard stripe groups.
func buildShardedCluster(opt Options, n int, plan ShardPlan) *Cluster {
	g := sim.NewShardGroup(opt.Seed, plan.Shards)
	cl := &Cluster{Group: g, Opt: opt, plan: plan}
	width := opt.Board.StripeWidth
	if width == 0 {
		width = atm.StripeWidth
	}
	cl.engs = make([]*sim.Engine, n)
	for i := 0; i < n; i++ {
		cl.engs[i] = g.Engine(plan.NodeShard[i])
		cl.Nodes = append(cl.Nodes, buildNode(cl.engs[i], opt, fmt.Sprintf("n%d", i), proto.HostAddr(i+1)))
	}
	cl.Fabric = atm.NewShardedSwitch(g, g.Engine(plan.FabricShard), cl.engs, atm.SwitchConfig{
		Width:         width,
		Link:          opt.Link,
		QueueCells:    opt.FabricQueueCells,
		MarkThreshold: opt.FabricMarkThreshold,
		PerCellFabric: opt.PerCellFabric,
	})
	for i, nd := range cl.Nodes {
		pt := cl.Fabric.Port(i)
		nd.Board.AttachTxLinks(pt.Ingress().Links())
		nd.Board.AttachRxLinks(pt.Egress())
	}
	cl.Fabric.RegisterMetrics(opt.Metrics, "fabric")
	cl.registerEngineDiag()
	return cl
}

// registerEngineDiag registers the execution substrate's telemetry.
// Every metric here is diagnostic (SampleDiag): event counts depend on
// how the topology is partitioned, and the shard group's stall time is
// wall clock — none of it may appear in a canonical snapshot, which
// must be byte-identical at any shard count.
func (cl *Cluster) registerEngineDiag() {
	r := cl.Opt.Metrics
	if r == nil {
		return
	}
	if cl.Group == nil {
		e := cl.Eng
		r.SampleDiag("engine/events", metrics.KindCounter, func() int64 { return int64(e.Events()) })
		return
	}
	g := cl.Group
	r.SampleDiag("engine/events", metrics.KindCounter, func() int64 { return int64(g.Events()) })
	r.SampleDiag("engine/windows", metrics.KindCounter, func() int64 { return int64(g.Stats().Windows) })
	r.SampleDiag("engine/cross_shard_injected", metrics.KindCounter, func() int64 { return int64(g.Stats().Injected) })
	r.SampleDiag("engine/max_merge_depth", metrics.KindHighWater, func() int64 { return int64(g.Stats().MaxMergeDepth) })
	r.SampleDiag("engine/barrier_stall_ns", metrics.KindCounter, func() int64 { return g.Stats().BarrierStallNS })
	for i := 0; i < cl.plan.Shards; i++ {
		e := g.Engine(i)
		r.SampleDiag(fmt.Sprintf("engine/shard%d/events", i), metrics.KindCounter, func() int64 { return int64(e.Events()) })
	}
}
