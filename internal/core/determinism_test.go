package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/sim"
)

// These tests guard the event-core overhaul's contract: event pooling,
// cell-train delivery, and the zero-length-sleep fast path are pure
// performance changes — a fixed seed must yield bit-for-bit identical
// simulated results. Each experiment runs twice on fresh systems and
// the outcomes are compared exactly (no tolerance).

func TestLatencyDeterministic(t *testing.T) {
	run := func() time.Duration {
		tb := NewTestbed(alOptions())
		defer tb.Shutdown()
		d, err := tb.RunLatency(UDPIP, 1024, 3)
		if err != nil {
			t.Fatalf("RunLatency: %v", err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Errorf("latency not deterministic: %v vs %v", a, b)
	}
}

func TestFigure3ReceiveDeterministic(t *testing.T) {
	run := func() (float64, board.Stats, sim.Time) {
		opt := alOptions()
		opt.Board = board.Config{RxDMA: board.DoubleCell}
		tb := NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunReceiveThroughput(16384, 8)
		if err != nil {
			t.Fatalf("RunReceiveThroughput: %v", err)
		}
		return mbps, tb.B.Board.Stats(), tb.Eng.Now()
	}
	m1, s1, n1 := run()
	m2, s2, n2 := run()
	if m1 != m2 {
		t.Errorf("throughput not deterministic: %v vs %v Mbps", m1, m2)
	}
	if s1 != s2 {
		t.Errorf("board stats not deterministic:\n  %+v\n  %+v", s1, s2)
	}
	if n1 != n2 {
		t.Errorf("final clock not deterministic: %v vs %v", n1, n2)
	}
}

// TestLossSweepDeterministic is the fault plane's acceptance gate: a
// fault-injected loss sweep (burst loss plus corruption and
// duplication, so every injector and every degradation path draws from
// its stream) must deliver byte-exact payloads, leak nothing, and
// marshal to bit-identical JSON across two runs with the same seed.
func TestLossSweepDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := RunLossSweep(LossSweep{
			Rates:       []float64{0.001, 0.01},
			CorruptProb: 0.001,
			DupProb:     0.001,
			Messages:    12,
			Seed:        77,
		})
		if err != nil {
			t.Fatalf("RunLossSweep: %v", err)
		}
		var totalLost int64
		for _, pt := range res.Points {
			// At these rates the session must survive: every message
			// delivered intact, not merely accounted for.
			if pt.Failed != 0 || pt.Delivered != pt.Sent || pt.Corrupt != 0 {
				t.Errorf("rate %g: failed=%d delivered=%d/%d corrupt=%d",
					pt.MeanLoss, pt.Failed, pt.Delivered, pt.Sent, pt.Corrupt)
			}
			if pt.OpenReassemblies != 0 || pt.HeldReasmBufs != 0 {
				t.Errorf("rate %g: leaked reassembly state: open=%d held=%d",
					pt.MeanLoss, pt.OpenReassemblies, pt.HeldReasmBufs)
			}
			totalLost += pt.CellsLost
		}
		if totalLost == 0 {
			t.Error("injectors dropped no cells across the sweep — it tested nothing")
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("loss sweep not deterministic:\n%s\n%s", a, b)
	}
}

// TestLossSweepWorkerInvariance is the parallel runner's acceptance
// gate on the fault plane: fanning the per-rate runs across a parexp
// pool must not change a byte of the report relative to the serial
// path, because each rate is an independent engine seeded only by
// (sweep seed, rate).
func TestLossSweepWorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		res, err := RunLossSweep(LossSweep{
			Rates:       []float64{0.001, 0.01, 0.05},
			CorruptProb: 0.001,
			DupProb:     0.001,
			Messages:    10,
			Seed:        77,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("RunLossSweep(workers=%d): %v", workers, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	serial, parallel := run(1), run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("loss sweep differs between 1 and 4 workers:\n%s\n%s", serial, parallel)
	}
}
