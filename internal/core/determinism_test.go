package core

import (
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/sim"
)

// These tests guard the event-core overhaul's contract: event pooling,
// cell-train delivery, and the zero-length-sleep fast path are pure
// performance changes — a fixed seed must yield bit-for-bit identical
// simulated results. Each experiment runs twice on fresh systems and
// the outcomes are compared exactly (no tolerance).

func TestLatencyDeterministic(t *testing.T) {
	run := func() time.Duration {
		tb := NewTestbed(alOptions())
		defer tb.Shutdown()
		d, err := tb.RunLatency(UDPIP, 1024, 3)
		if err != nil {
			t.Fatalf("RunLatency: %v", err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Errorf("latency not deterministic: %v vs %v", a, b)
	}
}

func TestFigure3ReceiveDeterministic(t *testing.T) {
	run := func() (float64, board.Stats, sim.Time) {
		opt := alOptions()
		opt.Board = board.Config{RxDMA: board.DoubleCell}
		tb := NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunReceiveThroughput(16384, 8)
		if err != nil {
			t.Fatalf("RunReceiveThroughput: %v", err)
		}
		return mbps, tb.B.Board.Stats(), tb.Eng.Now()
	}
	m1, s1, n1 := run()
	m2, s2, n2 := run()
	if m1 != m2 {
		t.Errorf("throughput not deterministic: %v vs %v Mbps", m1, m2)
	}
	if s1 != s2 {
		t.Errorf("board stats not deterministic:\n  %+v\n  %+v", s1, s2)
	}
	if n1 != n2 {
		t.Errorf("final clock not deterministic: %v vs %v", n1, n2)
	}
}
