package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/board"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/hostsim"
	"repro/internal/msg"
	"repro/internal/parexp"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LossSweep configures the fault-plane experiment: RDP traffic pushed
// across the two-host testbed while both directions' links run a
// Gilbert–Elliott burst-loss injector, swept over mean loss rates. The
// zero value gets sensible defaults from withDefaults.
type LossSweep struct {
	// Rates are the mean burst cell-loss rates to sweep (default
	// DefaultLossRates). A rate of 0 is the fault-free control point.
	Rates []float64
	// BurstLen is the mean number of cells lost per loss burst
	// (default 4) — bursts take out adjacent cells of one PDU,
	// including its Last cell, the case that strands reassembly state.
	BurstLen float64
	// CorruptProb and DupProb add per-cell payload corruption and
	// duplication on top of the loss process (default 0), exercising
	// the board's CRC check and duplicate filter.
	CorruptProb float64
	DupProb     float64
	// Messages and MessageBytes shape the offered load (default 32
	// messages of 4096 bytes; keep MessageBytes under the MTU so each
	// RDP segment is one IP datagram).
	Messages     int
	MessageBytes int
	// Window is the RDP send window in segments (default 4).
	Window int
	// RetransmitTimeout is RDP's base retransmission interval
	// (default 2 ms).
	RetransmitTimeout time.Duration
	// MaxRetries caps RDP's consecutive barren timeout rounds
	// (default 32): the sweep must terminate even at loss rates that
	// kill a session, and a terminated session is itself a data point.
	MaxRetries int
	// ReasmTimeout bounds how long the receiving board holds a partial
	// reassembly (default 5 ms).
	ReasmTimeout time.Duration
	// Seed seeds every point's fresh simulation (0 selects
	// DefaultSeed; ZeroSeed requests a literal zero).
	Seed int64
	// AdaptiveColumn additionally runs every swept rate a second time
	// over the adaptive transport (RTT-estimated retransmission timer,
	// AIMD congestion window) with the same seed and fault stream, and
	// records the outcome in each point's Adaptive block — the
	// fixed-timer vs RTT-estimated recovery comparison, side by side.
	AdaptiveColumn bool
	// Workers fans the per-rate runs across a parexp pool. Each rate
	// is an independent, seeded simulation, and the points are merged
	// back in rate order, so the result — and its JSON encoding — is
	// byte-identical for any worker count. 0 or 1 runs the rates
	// serially on the calling goroutine; negative selects GOMAXPROCS.
	Workers int
}

// DefaultLossRates is the swept mean cell-loss grid: a clean control
// point, the acceptance floor 1e-3, and rates up through loss heavy
// enough that most PDUs need at least one retransmission.
func DefaultLossRates() []float64 {
	return []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}
}

func (c LossSweep) withDefaults() LossSweep {
	if c.Rates == nil {
		c.Rates = DefaultLossRates()
	}
	if c.BurstLen == 0 {
		c.BurstLen = 4
	}
	if c.Messages == 0 {
		c.Messages = 32
	}
	if c.MessageBytes == 0 {
		c.MessageBytes = 4096
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 2 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 32
	}
	if c.ReasmTimeout == 0 {
		c.ReasmTimeout = 5 * time.Millisecond
	}
	return c
}

// LossSweepPoint is one swept rate's outcome. Every field is a fixed
// function of (config, seed): two runs with the same seed must marshal
// to identical JSON. No maps, so the encoding order is stable.
type LossSweepPoint struct {
	MeanLoss float64 `json:"mean_loss"`
	BurstLen float64 `json:"burst_len"`

	// End-to-end outcome.
	Sent        int     `json:"sent"`
	Delivered   int     `json:"delivered"`
	Corrupt     int     `json:"corrupt"` // deliveries failing byte-exact verification
	Failed      int64   `json:"failed"`  // sessions closed by ErrMaxRetries
	GoodputMbps float64 `json:"goodput_mbps"`
	ElapsedNS   int64   `json:"elapsed_ns"` // first push to last delivery

	// RDP recovery effort.
	Retransmits int64 `json:"retransmits"`
	Timeouts    int64 `json:"timeouts"`

	// Injected faults, summed over both directions' links.
	CellsOffered    int64 `json:"cells_offered"`
	CellsLost       int64 `json:"cells_lost"`
	CellsCorrupted  int64 `json:"cells_corrupted"`
	CellsDuplicated int64 `json:"cells_duplicated"`

	// Receiver-side degradation and reclamation.
	PDUsTimedOut   int64 `json:"pdus_timed_out"` // reassemblies reclaimed by timeout
	RxAbortMarkers int64 `json:"rx_abort_markers"`
	RxAborted      int64 `json:"rx_aborted"`       // driver-side partial-PDU discards
	PDUsCRCDropped int64 `json:"pdus_crc_dropped"` // corrupt PDUs caught by the AAL5 CRC
	DupCellsRej    int64 `json:"dup_cells_rejected"`

	// Leak check: both must be zero at exit on every board.
	OpenReassemblies int `json:"open_reassemblies"`
	HeldReasmBufs    int `json:"held_reasm_bufs"`

	// Adaptive is the same rate rerun over the adaptive transport
	// (LossSweep.AdaptiveColumn); nil when the column was not requested,
	// and omitted from the JSON so legacy sweeps encode unchanged.
	Adaptive *LossSweepAdaptive `json:"adaptive,omitempty"`
}

// LossSweepAdaptive is the adaptive-transport column of one swept rate:
// the same workload, seed, and fault stream recovered by the
// RTT-estimated timer instead of the fixed backoff schedule.
type LossSweepAdaptive struct {
	Delivered   int     `json:"delivered"`
	Failed      int64   `json:"failed"`
	GoodputMbps float64 `json:"goodput_mbps"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	Retransmits int64   `json:"retransmits"`
	Timeouts    int64   `json:"timeouts"`
	FastRetx    int64   `json:"fast_retx"`
	RTTSamples  int64   `json:"rtt_samples"`
}

// LossSweepResult is the whole sweep, JSON-stable for a fixed seed.
type LossSweepResult struct {
	Seed         int64            `json:"seed"`
	Messages     int              `json:"messages"`
	MessageBytes int              `json:"message_bytes"`
	Window       int              `json:"window"`
	MaxRetries   int              `json:"max_retries"`
	Points       []LossSweepPoint `json:"points"`
}

// lossPayload builds message i's payload: distinct per message and
// verifiable byte for byte at the receiver.
func lossPayload(n, i int) []byte {
	data := make([]byte, n)
	for j := range data {
		data[j] = byte(j*7 + i*131 + 3)
	}
	return data
}

// RunLossSweep drives the fault-plane capstone: for each swept rate it
// builds a fresh testbed whose links (both directions, independent
// deterministic streams) run the configured burst-loss injector, opens
// one RDP connection A→B, pushes the configured messages, and runs the
// simulation to quiescence — MaxRetries on the sender and ReasmTimeout
// on the boards guarantee the event queue drains even when every cell
// is lost. The receiver verifies each delivery byte for byte.
//
// Correctness bugs — corrupt deliveries, leaked reassembly state, an
// incomplete sender — return an error; a session killed by the retry
// cap at a brutal rate is a legitimate outcome and is recorded in the
// point instead.
func RunLossSweep(cfg LossSweep) (*LossSweepResult, error) {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	switch seed {
	case 0:
		seed = DefaultSeed
	case ZeroSeed:
		seed = 0
	}
	res := &LossSweepResult{
		Seed:         seed,
		Messages:     cfg.Messages,
		MessageBytes: cfg.MessageBytes,
		Window:       cfg.Window,
		MaxRetries:   cfg.MaxRetries,
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1 // zero value keeps the historical serial behavior
	}
	jobs := make([]parexp.Job, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		rate := rate
		jobs[i] = parexp.Job{
			Name: fmt.Sprintf("faults/rate=%g", rate),
			Seed: seed,
			// Heavier loss means more retransmission rounds and a longer
			// simulated run; start those first.
			Cost: rate,
			Run: func() (any, error) {
				pt, err := runLossPoint(cfg, rate)
				if err != nil {
					return nil, err
				}
				return pt, nil
			},
		}
	}
	for i, r := range parexp.Run(workers, jobs) {
		if r.Err != nil {
			return nil, fmt.Errorf("core: loss sweep at rate %g: %w", cfg.Rates[i], r.Err)
		}
		res.Points = append(res.Points, r.Value.(LossSweepPoint))
	}
	return res, nil
}

func runLossPoint(cfg LossSweep, rate float64) (LossSweepPoint, error) {
	pt, _, err := runLossRun(cfg, rate, false)
	if err != nil {
		return pt, err
	}
	if cfg.AdaptiveColumn {
		apt, ast, err := runLossRun(cfg, rate, true)
		if err != nil {
			return pt, fmt.Errorf("adaptive column: %w", err)
		}
		pt.Adaptive = &LossSweepAdaptive{
			Delivered:   apt.Delivered,
			Failed:      apt.Failed,
			GoodputMbps: apt.GoodputMbps,
			ElapsedNS:   apt.ElapsedNS,
			Retransmits: apt.Retransmits,
			Timeouts:    apt.Timeouts,
			FastRetx:    ast.FastRetx,
			RTTSamples:  ast.RTTSamples,
		}
	}
	return pt, nil
}

func runLossRun(cfg LossSweep, rate float64, adaptive bool) (LossSweepPoint, proto.RDPStats, error) {
	pt := LossSweepPoint{MeanLoss: rate, BurstLen: cfg.BurstLen, Sent: cfg.Messages}

	var fc *fault.Config
	if rate > 0 || cfg.CorruptProb > 0 || cfg.DupProb > 0 {
		fc = &fault.Config{
			CorruptProb: cfg.CorruptProb,
			DupProb:     cfg.DupProb,
		}
		if rate > 0 {
			fc.Loss = fault.BurstLoss(rate, cfg.BurstLen)
		}
	}
	tb := NewTestbed(Options{
		Profile: hostsim.DEC3000_600(),
		// Small receive buffers make a PDU span several of them, so a
		// reassembly cut down mid-PDU has already streamed buffers to
		// the host — exercising the abort-marker path, not just the
		// silent board-side reclaim.
		Driver: driver.Config{Cache: driver.CacheNone, RxBufBytes: 2048},
		Board: board.Config{
			ReasmTimeout:     cfg.ReasmTimeout,
			CheckCRC:         true,
			RejectDuplicates: true,
		},
		Link: atm.LinkConfig{Fault: fc},
		Seed: cfg.Seed,
	})
	defer tb.Shutdown()

	v := tb.allocVCI()
	txSess, err := tb.A.RDP.Open(proto.RDPOpen{
		Remote: tb.B.Addr, VCI: v, Window: cfg.Window,
		RetransmitTimeout: cfg.RetransmitTimeout, MaxRetries: cfg.MaxRetries,
		Adaptive: adaptive,
	})
	if err != nil {
		return pt, proto.RDPStats{}, err
	}
	rxSess, err := tb.B.RDP.Open(proto.RDPOpen{Remote: tb.A.Addr, VCI: v, Window: cfg.Window, Adaptive: adaptive})
	if err != nil {
		return pt, proto.RDPStats{}, err
	}

	var start, last sim.Time
	rxSess.SetHandler(func(p *sim.Proc, m *msg.Message) {
		data, err := m.Bytes()
		if err != nil || !bytes.Equal(data, lossPayload(cfg.MessageBytes, pt.Delivered)) {
			pt.Corrupt++
			return
		}
		pt.Delivered++
		last = p.Now()
	})

	senderDone := false
	var pushErr error
	tb.Eng.Go("loss-sweep-sender", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < cfg.Messages; i++ {
			m, free, err := allocFrom(tb.A.Host.Kernel, lossPayload(cfg.MessageBytes, i))
			if err != nil {
				pushErr = err
				return
			}
			if err := txSess.Push(p, m); err != nil {
				free()
				if errors.Is(err, proto.ErrMaxRetries) {
					break // the retry cap killed the session: a valid data point
				}
				pushErr = err
				return
			}
			tb.A.Drv.Flush(p)
			free()
		}
		txSess.(proto.WaitAckedSession).WaitAcked(p)
		senderDone = true
	})
	// MaxRetries and ReasmTimeout bound every timer, so the run
	// quiesces on its own even at 100% loss.
	tb.Eng.Run()

	if pushErr != nil {
		return pt, proto.RDPStats{}, pushErr
	}
	if !senderDone {
		return pt, proto.RDPStats{}, fmt.Errorf("sender wedged after %d deliveries", pt.Delivered)
	}
	if pt.Corrupt != 0 {
		return pt, proto.RDPStats{}, fmt.Errorf("%d corrupt deliveries (loss must surface as missing PDUs, never damaged ones)", pt.Corrupt)
	}

	st := tb.A.RDP.Stats()
	pt.Retransmits = st.Retransmits
	pt.Timeouts = st.Timeouts
	pt.Failed = st.Failed
	if pt.Failed == 0 && pt.Delivered != pt.Sent {
		return pt, st, fmt.Errorf("healthy session delivered %d/%d", pt.Delivered, pt.Sent)
	}
	if pt.Delivered > 0 {
		pt.ElapsedNS = int64(last - start)
		pt.GoodputMbps = stats.Mbps(int64(pt.Delivered)*int64(cfg.MessageBytes), time.Duration(pt.ElapsedNS))
	}

	for _, g := range []*atm.StripeGroup{tb.AB, tb.BA} {
		fs := g.FaultStats()
		pt.CellsOffered += fs.Cells
		pt.CellsLost += fs.Dropped + fs.DownDropped
		pt.CellsCorrupted += fs.Corrupted
		pt.CellsDuplicated += fs.Duplicated
	}
	for _, nd := range []*Node{tb.A, tb.B} {
		bs := nd.Board.Stats()
		pt.PDUsTimedOut += bs.PDUsTimedOut
		pt.RxAbortMarkers += bs.RxAbortMarkers
		pt.PDUsCRCDropped += bs.PDUsCRCDropped
		pt.DupCellsRej += bs.CellsDuplicate
		pt.RxAborted += nd.Drv.Stats().RxAborted
		pt.OpenReassemblies += nd.Board.OpenReassemblies()
		pt.HeldReasmBufs += nd.Board.HeldReasmBufs()
	}
	if pt.OpenReassemblies != 0 || pt.HeldReasmBufs != 0 {
		return pt, st, fmt.Errorf("leaked reassembly state at exit: open=%d held=%d", pt.OpenReassemblies, pt.HeldReasmBufs)
	}
	return pt, st, nil
}
