package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/fault"
	"repro/internal/workload"
)

// These tests are the sharded engine's acceptance gate: partitioning a
// topology over a conservative-parallel ShardGroup is a pure
// performance change, so every calibrated experiment must produce
// byte-identical results at any shard count. Each fingerprint includes
// the final virtual clock and the behavioural counters, compared
// exactly (no tolerance) against the serial inline path.

var shardCounts = []int{1, 2, 4}

func requireInvariant(t *testing.T, name string, run func(shards int) string) {
	t.Helper()
	want := run(1)
	for _, k := range shardCounts[1:] {
		if got := run(k); got != want {
			t.Errorf("%s diverges at shards=%d:\nserial:  %s\nsharded: %s", name, k, want, got)
		}
	}
}

// TestLatencyShardInvariance pins Table 1's apparatus: the ping-pong
// crosses the shard boundary twice per round, so every cross-shard
// delivery stamp is load-bearing for the measured RTT.
func TestLatencyShardInvariance(t *testing.T) {
	requireInvariant(t, "latency", func(shards int) string {
		out := ""
		for _, kind := range []ProtoKind{ATMRaw, UDPIP} {
			opt := alOptions()
			opt.Shards = shards
			tb := NewTestbed(opt)
			d, err := tb.RunLatency(kind, 1024, 3)
			if err != nil {
				t.Fatalf("RunLatency(%v, shards=%d): %v", kind, shards, err)
			}
			out += fmt.Sprintf("%v rtt=%v now=%v ab=%+v ba=%+v\n",
				kind, d, tb.Now(), tb.AB.Stats(), tb.BA.Stats())
			tb.Shutdown()
		}
		return out
	})
}

// TestFigure3ShardInvariance pins the receive-throughput apparatus.
// Fictitious traffic never leaves host B's shard; the test checks that
// the group scheduler itself (windows, clock advance, horizon) is
// invisible to a single-shard workload.
func TestFigure3ShardInvariance(t *testing.T) {
	requireInvariant(t, "figure3", func(shards int) string {
		opt := alOptions()
		opt.Board = board.Config{RxDMA: board.DoubleCell}
		opt.Shards = shards
		tb := NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunReceiveThroughput(16384, 6)
		if err != nil {
			t.Fatalf("RunReceiveThroughput(shards=%d): %v", shards, err)
		}
		return fmt.Sprintf("mbps=%v now=%v board=%+v", mbps, tb.Now(), tb.B.Board.Stats())
	})
}

// TestFigure4ShardInvariance pins the isolated-transmit apparatus
// (no links at all, so the group runs with no registered lookahead).
func TestFigure4ShardInvariance(t *testing.T) {
	requireInvariant(t, "figure4", func(shards int) string {
		opt := dsOptions()
		opt.TxIsolated = true
		opt.Shards = shards
		tb := NewTestbed(opt)
		defer tb.Shutdown()
		mbps, err := tb.RunTransmitThroughput(16384, 6)
		if err != nil {
			t.Fatalf("RunTransmitThroughput(shards=%d): %v", shards, err)
		}
		cells, bytes := tb.SinkStats()
		return fmt.Sprintf("mbps=%v now=%v cells=%d bytes=%d", mbps, tb.Now(), cells, bytes)
	})
}

// TestFanInShardInvariance pins the switched-cluster incast: with the
// fabric on its own shard and three client nodes spread over the rest,
// every cell crosses two shard boundaries and the server's per-client
// accounting depends on the exact merged delivery order.
func TestFanInShardInvariance(t *testing.T) {
	requireInvariant(t, "fanin", func(shards int) string {
		opt := dsOptions()
		opt.Shards = shards
		cl := NewCluster(opt, 4)
		defer cl.Shutdown()
		res, err := cl.RunFanIn(workload.FanIn{
			Clients:      3,
			MessageBytes: 2048,
			Messages:     6,
			Gap:          500 * time.Microsecond,
			Stagger:      100 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("RunFanIn(shards=%d): %v", shards, err)
		}
		return fmt.Sprintf("%+v now=%v", res, cl.Now())
	})
}

// TestFanInFaultShardInvariance exercises the paced cross-shard link
// path: a fault plane on the fabric links (burst loss, corruption,
// duplication) forces every link onto the per-cell pacing machine,
// whose injector draws come from partition-independent site-derived
// streams — so even the lossy run must be byte-identical at any shard
// count.
func TestFanInFaultShardInvariance(t *testing.T) {
	requireInvariant(t, "fanin-fault", func(shards int) string {
		opt := dsOptions()
		opt.Shards = shards
		opt.Link.Fault = &fault.Config{
			Loss:        fault.BurstLoss(0.002, 2),
			CorruptProb: 0.001,
			DupProb:     0.001,
		}
		cl := NewCluster(opt, 4)
		defer cl.Shutdown()
		res, err := cl.RunFanIn(workload.FanIn{
			Clients:      3,
			MessageBytes: 2048,
			Messages:     6,
			Gap:          500 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("RunFanIn(shards=%d): %v", shards, err)
		}
		// Corrupt deliveries are possible here (UDP checksum off), but
		// they are deterministic, so they belong in the fingerprint.
		return fmt.Sprintf("%+v now=%v fault=%+v", res, cl.Now(), cl.Fabric.FaultStats())
	})
}

// TestDeriveRandSitesPartitionIndependent pins the site sets: the same
// topology must derive exactly the same DeriveRand sites — collision-
// free by the group's duplicate panic — no matter how it is sharded,
// because every derived stream is a pure function of (seed, site).
func TestDeriveRandSitesPartitionIndependent(t *testing.T) {
	sites := func(shards int) string {
		opt := dsOptions()
		opt.Shards = shards
		opt.Link.Fault = &fault.Config{CorruptProb: 0.001}
		cl := NewCluster(opt, 4)
		defer cl.Shutdown()
		if _, err := cl.RunFanIn(workload.FanIn{Clients: 3, MessageBytes: 1024, Messages: 2}); err != nil {
			t.Fatalf("RunFanIn(shards=%d): %v", shards, err)
		}
		return fmt.Sprintf("%q", cl.DerivedSites())
	}
	want := sites(1)
	if want == `[]` {
		t.Fatal("fault-injected cluster derived no sites — the test covers nothing")
	}
	for _, k := range shardCounts[1:] {
		if got := sites(k); got != want {
			t.Errorf("derived sites differ at shards=%d:\nserial:  %s\nsharded: %s", k, want, got)
		}
	}
}

// TestShardedClusterNoGoroutineLeak: the shard workers, every engine's
// procs, and the cross-link machinery must all be gone after Shutdown
// (the parexp leak-check pattern).
func TestShardedClusterNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		opt := dsOptions()
		opt.Shards = 4
		cl := NewCluster(opt, 4)
		if _, err := cl.RunFanIn(workload.FanIn{Clients: 3, MessageBytes: 1024, Messages: 2}); err != nil {
			t.Fatalf("RunFanIn: %v", err)
		}
		cl.Shutdown()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Shutdown", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardsRejectEngineRandConfigs: a config drawing per-cell
// randomness from the shared engine RNG must refuse to shard loudly —
// the draws are partition-dependent, and silence here would mean
// silently divergent results.
func TestShardsRejectEngineRandConfigs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster(Shards=2, LossRate>0) did not panic")
		}
	}()
	opt := dsOptions()
	opt.Shards = 2
	opt.Link.LossRate = 0.01
	NewCluster(opt, 2)
}

// TestShardClampAndPlan: shard counts clamp to the component count and
// the fabric always sits alone on shard 0 — the invariant that keeps
// the cross-link set identical at every shard count.
func TestShardClampAndPlan(t *testing.T) {
	opt := dsOptions()
	opt.Shards = 64
	cl := NewCluster(opt, 3)
	defer cl.Shutdown()
	p := cl.Plan()
	if p.Shards != 4 {
		t.Errorf("3-node cluster with Shards=64: got %d shards, want 4", p.Shards)
	}
	if p.FabricShard != 0 {
		t.Errorf("fabric on shard %d, want 0", p.FabricShard)
	}
	for i, s := range p.NodeShard {
		if s == p.FabricShard {
			t.Errorf("node %d shares shard %d with the fabric", i, s)
		}
	}
}
